// Microbenchmarks for the cluster-local similarity kernel layer: the
// gathered zero-dispatch hot path versus the Provider-dispatch path the
// seed shipped with, on the three hot loops C² actually runs (pairwise
// GoldFinger, cluster-local brute force, cluster-local Hyrec).
//
// The *Dispatch baselines are frozen, faithful ports of the seed's
// local solvers — dynamic Provider.Sim per pair, global-id re-slicing,
// duplicate-scan-first list inserts, per-cluster allocations — so the
// Gathered/Dispatch ratio measures exactly what this layer buys. The
// Gathered variants report 0 allocs/op thanks to per-worker scratch
// reuse. See EXPERIMENTS.md for measured numbers and the regression
// workflow these feed.
package c2knn_test

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"c2knn/internal/bruteforce"
	"c2knn/internal/core"
	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/hyrec"
	"c2knn/internal/knng"
	"c2knn/internal/similarity"
	"c2knn/internal/synth"
)

var kernelBench struct {
	once    sync.Once
	data    *dataset.Dataset
	gf      *goldfinger.Set
	cluster []int32 // one 400-user pseudo-cluster
}

func kernelBenchSetup(b *testing.B) (*goldfinger.Set, []int32) {
	b.Helper()
	kernelBench.once.Do(func() {
		d := synth.Generate(synth.ML1M().Scale(0.5))
		kernelBench.data = d
		kernelBench.gf = goldfinger.MustNew(d, goldfinger.DefaultBits, 3)
		rng := rand.New(rand.NewSource(17))
		perm := rng.Perm(d.NumUsers())
		kernelBench.cluster = make([]int32, 400)
		for i := range kernelBench.cluster {
			kernelBench.cluster[i] = int32(perm[i])
		}
	})
	return kernelBench.gf, kernelBench.cluster
}

// --- seed-faithful baseline scaffolding ------------------------------

// seedList replicates the seed's knng.List: the duplicate scan ran
// before the O(1) threshold rejection on every insert.
type seedList struct {
	K int
	H []knng.Neighbor
}

func (l *seedList) contains(v int32) bool {
	for i := range l.H {
		if l.H[i].ID == v {
			return true
		}
	}
	return false
}

func (l *seedList) insert(v int32, sim float64) bool {
	if l.contains(v) {
		return false
	}
	if len(l.H) < l.K {
		l.H = append(l.H, knng.Neighbor{Sim: sim, ID: v, New: true})
		i := len(l.H) - 1
		for i > 0 {
			p := (i - 1) / 2
			if l.H[p].Sim <= l.H[i].Sim {
				break
			}
			l.H[p], l.H[i] = l.H[i], l.H[p]
			i = p
		}
		return true
	}
	if sim <= l.H[0].Sim {
		return false
	}
	l.H[0] = knng.Neighbor{Sim: sim, ID: v, New: true}
	i, n := 0, len(l.H)
	for {
		least := i
		if c := 2*i + 1; c < n && l.H[c].Sim < l.H[least].Sim {
			least = c
		}
		if c := 2*i + 2; c < n && l.H[c].Sim < l.H[least].Sim {
			least = c
		}
		if least == i {
			return true
		}
		l.H[i], l.H[least] = l.H[least], l.H[i]
		i = least
	}
}

func (l *seedList) ids(dst []int32) []int32 {
	for i := range l.H {
		dst = append(dst, l.H[i].ID)
	}
	return dst
}

func (l *seedList) resetNew(dst []int32) []int32 {
	for i := range l.H {
		if l.H[i].New {
			l.H[i].New = false
			dst = append(dst, l.H[i].ID)
		}
	}
	return dst
}

// seedSubset replicates the seed's hyrec.subsetProvider: one extra
// dynamic dispatch plus a global-id translation per pair.
type seedSubset struct {
	ids []int32
	p   similarity.Provider
}

func (s *seedSubset) Sim(u, v int32) float64 { return s.p.Sim(s.ids[u], s.ids[v]) }

// seedBruteForceLocal is the seed's bruteforce.Local: fresh lists per
// cluster, Provider dispatch and global ids on every pair.
func seedBruteForceLocal(ids []int32, k int, p similarity.Provider) []seedList {
	lists := make([]seedList, len(ids))
	for i := range lists {
		lists[i].K = k
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			s := p.Sim(ids[i], ids[j])
			lists[i].insert(ids[j], s)
			lists[j].insert(ids[i], s)
		}
	}
	return lists
}

// seedHyrecLocal is the seed's hyrec.Local (Workers=1): random init and
// map-based candidate refinement through a subsetProvider.
func seedHyrecLocal(ids []int32, k int, p similarity.Provider, o hyrec.Options) []seedList {
	n := len(ids)
	sub := &seedSubset{ids: ids, p: p}
	lists := make([]seedList, n)
	for i := range lists {
		lists[i].K = k
	}
	rng := rand.New(rand.NewSource(o.Seed))
	for u := 0; u < n; u++ {
		for len(lists[u].H) < k && len(lists[u].H) < n-1 {
			v := int32(rng.Intn(n))
			if v == int32(u) || lists[u].contains(v) {
				continue
			}
			lists[u].insert(v, sub.Sim(int32(u), v))
		}
	}
	threshold := int64(o.Delta * float64(k) * float64(n))
	allSnap := make([][]int32, n)
	newSnap := make([][]int32, n)
	for iter := 0; iter < o.MaxIter; iter++ {
		for u := 0; u < n; u++ {
			allSnap[u] = lists[u].ids(allSnap[u][:0])
			newSnap[u] = lists[u].resetNew(newSnap[u][:0])
		}
		updates := int64(0)
		seen := make(map[int32]struct{}, k*k)
		for u := 0; u < n; u++ {
			clear(seen)
			uid := int32(u)
			for _, v := range newSnap[u] {
				for _, w2 := range allSnap[v] {
					seen[w2] = struct{}{}
				}
			}
			for _, v := range allSnap[u] {
				for _, w2 := range newSnap[v] {
					seen[w2] = struct{}{}
				}
			}
		candidates:
			for w2 := range seen {
				if w2 == uid {
					continue
				}
				for _, x := range allSnap[u] {
					if x == w2 {
						continue candidates
					}
				}
				s := sub.Sim(uid, w2)
				if lists[u].insert(w2, s) {
					updates++
				}
				if lists[w2].insert(uid, s) {
					updates++
				}
			}
		}
		if updates < threshold {
			break
		}
	}
	return lists
}

// --- pairwise GoldFinger ---------------------------------------------

func BenchmarkKernelPairsGoldFingerDispatch(b *testing.B) {
	gf, ids := kernelBenchSetup(b)
	var p similarity.Provider = gf // seed hot path: dynamic dispatch per pair
	var acc float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for x := range ids {
			for y := x + 1; y < len(ids); y++ {
				acc += p.Sim(ids[x], ids[y])
			}
		}
	}
	_ = acc
}

func BenchmarkKernelPairsGoldFingerGathered(b *testing.B) {
	gf, ids := kernelBenchSetup(b)
	var loc similarity.Local
	var acc float64
	similarity.GatherInto(gf, ids, &loc) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-gather each round, like a C² worker does per cluster.
		similarity.GatherInto(gf, ids, &loc)
		m := loc.Len()
		for x := 0; x < m; x++ {
			for y := x + 1; y < m; y++ {
				acc += loc.Sim(x, y)
			}
		}
	}
	_ = acc
}

// --- cluster-local brute force ---------------------------------------

func BenchmarkKernelLocalBruteForceDispatch(b *testing.B) {
	gf, ids := kernelBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seedBruteForceLocal(ids, 30, gf)
	}
}

func BenchmarkKernelLocalBruteForceGathered(b *testing.B) {
	gf, ids := kernelBenchSetup(b)
	var loc similarity.Local
	var s bruteforce.Scratch
	similarity.GatherInto(gf, ids, &loc)
	bruteforce.LocalInto(&loc, 30, &s) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		similarity.GatherInto(gf, ids, &loc)
		bruteforce.LocalInto(&loc, 30, &s)
	}
}

// --- full build: pipelined vs barrier --------------------------------

// The pipelined/barrier pair measures what streaming clusters into the
// solver pool buys end to end: the barrier variant materializes every
// cluster serially before the first worker starts (the pre-pipeline
// behaviour), the pipelined variant overlaps hashing with solving. The
// gap tracks ClusterTime — on multicore hardware the pipelined build
// hides it entirely.

func benchBuildOptions() core.Options {
	return core.Options{
		K: 30, B: 256, T: 8, MaxClusterSize: 200,
		Workers: runtime.GOMAXPROCS(0), Seed: 3,
	}
}

func BenchmarkKernelBuildBarrier(b *testing.B) {
	gf, _ := kernelBenchSetup(b)
	opts := benchBuildOptions()
	opts.DisablePipeline = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(kernelBench.data, gf, opts)
	}
}

func BenchmarkKernelBuildPipelined(b *testing.B) {
	gf, _ := kernelBenchSetup(b)
	opts := benchBuildOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(kernelBench.data, gf, opts)
	}
}

// --- cluster-local Hyrec ---------------------------------------------

func BenchmarkKernelLocalHyrecDispatch(b *testing.B) {
	gf, ids := kernelBenchSetup(b)
	o := hyrec.Options{Delta: 0.001, MaxIter: 5, Seed: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seedHyrecLocal(ids, 30, gf, o)
	}
}

func BenchmarkKernelLocalHyrecGathered(b *testing.B) {
	gf, ids := kernelBenchSetup(b)
	o := hyrec.Options{MaxIter: 5, Seed: 7}
	var loc similarity.Local
	var s hyrec.Scratch
	similarity.GatherInto(gf, ids, &loc)
	hyrec.LocalInto(&loc, 30, o, &s) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		similarity.GatherInto(gf, ids, &loc)
		hyrec.LocalInto(&loc, 30, o, &s)
	}
}
