// Serving-layer benchmarks: the frozen CSR query path (what a serving
// process pays per request after loading a snapshot) against the
// mutable build structure it replaces. BenchmarkServeFrozenNeighbors vs
// BenchmarkServeGraphNeighbors is the acceptance pair — the frozen view
// must be allocation-free and at least 2x the alloc-and-sort path.
// scripts/bench-serve.sh records the same comparison as
// benchmarks/BENCH_serve.json for the CI gate.
package c2knn_test

import (
	"sync"
	"testing"

	"c2knn"
	"c2knn/internal/core"
	"c2knn/internal/knng"
	"c2knn/internal/recommend"
)

// serveState is built once per benchmark process: a C² graph over the
// shared benchEnv's ml1M dataset, its frozen form, and a serving index.
var (
	serveOnce sync.Once
	serveG    *knng.Graph
	serveF    *knng.Frozen
	serveIx   *c2knn.Index
)

func serveSetup(b *testing.B) {
	b.Helper()
	serveOnce.Do(func() {
		p := benchEnv.MustPrepare("ml1M")
		bb, t, n := benchEnv.C2Params("ml1M")
		serveG, _ = core.Build(p.Data, p.GF, core.Options{
			K: benchEnv.K, B: bb, T: t, MaxClusterSize: n,
			Workers: benchEnv.Workers, Seed: benchEnv.Seed,
		})
		serveF = serveG.Freeze()
		ix, err := c2knn.NewIndex(serveG, p.Data, p.GF)
		if err != nil {
			panic(err)
		}
		serveIx = ix
	})
}

func BenchmarkServeFrozenNeighbors(b *testing.B) {
	serveSetup(b)
	users := int32(serveF.NumUsers())
	var sink float32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sims := serveF.Neighbors(int32(i) % users)
		if len(sims) > 0 {
			sink += sims[0]
		}
	}
	_ = sink
}

func BenchmarkServeGraphNeighbors(b *testing.B) {
	serveSetup(b)
	users := int32(serveG.NumUsers())
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nbs := serveG.Neighbors(int32(i) % users)
		if len(nbs) > 0 {
			sink += nbs[0].Sim
		}
	}
	_ = sink
}

func BenchmarkServeRecommendFrozen(b *testing.B) {
	serveSetup(b)
	p := benchEnv.MustPrepare("ml1M")
	users := int32(p.Data.NumUsers())
	sc := recommend.NewScorer(p.Data.NumItems)
	rec := make([]int32, 0, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec = sc.Recommend(p.Data, serveF, int32(i)%users, 30, rec[:0])
	}
	_ = rec
}

func BenchmarkServeRecommendGraph(b *testing.B) {
	serveSetup(b)
	p := benchEnv.MustPrepare("ml1M")
	users := int32(p.Data.NumUsers())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recommend.Recommend(p.Data, serveG, int32(i)%users, 30)
	}
}

// BenchmarkServeIndexRecommendParallel is the request-handler shape:
// many goroutines hammering one Index, scratch served from its pool.
func BenchmarkServeIndexRecommendParallel(b *testing.B) {
	serveSetup(b)
	users := int32(serveIx.NumUsers())
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		u := int32(0)
		for pb.Next() {
			serveIx.Recommend(u%users, 30)
			u++
		}
	})
}

// BenchmarkServeLoadIndex measures the load-many side of the split: the
// time from snapshot bytes on disk to a servable index.
func BenchmarkServeLoadIndex(b *testing.B) {
	serveSetup(b)
	path := b.TempDir() + "/index.c2"
	if err := serveIx.Save(path); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := c2knn.LoadIndex(path)
		if err != nil {
			b.Fatal(err)
		}
		// Close releases the iteration's mapping (when mmap-loaded);
		// without it b.N mappings would accumulate for the benchmark's
		// lifetime.
		ix.Close()
	}
}
