// Package c2knn is a Go implementation of Cluster-and-Conquer (C²), the
// KNN-graph construction algorithm of Giakkoupis, Kermarrec, Ruas and
// Taïani ("Cluster-and-Conquer: When Randomness Meets Graph Locality",
// ICDE 2021), together with everything its evaluation depends on: the
// Hyrec, NNDescent and LSH baselines, GoldFinger profile fingerprints,
// the FastRandomHash clustering scheme, calibrated synthetic dataset
// generators, a collaborative-filtering recommender, and a benchmark
// harness that regenerates every table and figure of the paper.
//
// # Quick start
//
//	d, _ := c2knn.Generate("ml1M", 0.1) // 10%-scale MovieLens1M lookalike
//	sim, _ := c2knn.NewGoldFinger(d, 1024)
//	g, stats := c2knn.BuildC2(d, sim, c2knn.BuildOptions{})
//	fmt.Println(stats.Clusters, "clusters,", g.Neighbors(0))
//
// # Cluster-local similarity kernels
//
// The hot path of every local solver runs on gathered, zero-dispatch
// similarity kernels rather than the Similarity interface. A provider
// that implements Localizer (GoldFinger, exact Jaccard, Cosine all do)
// copies a cluster's data once into a worker's reusable LocalSim
// scratch — for GoldFinger, a contiguous signature block plus
// per-member popcounts so each Jaccard estimate is a single
// AND-popcount — after which every pair evaluation is a direct call on
// local indices. Providers without a Localizer transparently fall back
// to per-pair dispatch; both paths produce bit-identical graphs. See
// EXPERIMENTS.md for measured speedups.
//
// # Pipelined clustering
//
// BuildC2 streams clusters into the solver pool as the t clustering
// configurations discover them, instead of materializing all t×b
// clusters before the first worker starts: each configuration hashes
// independently and pushes finalized clusters into a concurrent
// size-prioritized queue drained by the workers, so clustering and
// solving overlap (the assumption of the paper's §II-F cost model).
// C2Stats reports the per-phase wall-clock times and the recovered
// overlap; BuildOptions.DisablePipeline restores the serial barrier.
//
// The package root re-exports the stable surface of the internal
// packages; see the examples directory for complete programs and
// cmd/c2bench for the experiment harness.
package c2knn
