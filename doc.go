// Package c2knn is a Go implementation of Cluster-and-Conquer (C²), the
// KNN-graph construction algorithm of Giakkoupis, Kermarrec, Ruas and
// Taïani ("Cluster-and-Conquer: When Randomness Meets Graph Locality",
// ICDE 2021), together with everything its evaluation depends on: the
// Hyrec, NNDescent and LSH baselines, GoldFinger profile fingerprints,
// the FastRandomHash clustering scheme, calibrated synthetic dataset
// generators, a collaborative-filtering recommender, and a benchmark
// harness that regenerates every table and figure of the paper.
//
// # Quick start
//
//	d, _ := c2knn.Generate("ml1M", 0.1) // 10%-scale MovieLens1M lookalike
//	sim, _ := c2knn.NewGoldFinger(d, 1024)
//	g, stats := c2knn.BuildC2(d, sim, c2knn.BuildOptions{})
//	fmt.Println(stats.Clusters, "clusters,", g.Neighbors(0))
//
// # Cluster-local similarity kernels
//
// The hot path of every local solver runs on gathered, zero-dispatch
// similarity kernels rather than the Similarity interface. A provider
// that implements Localizer (GoldFinger, exact Jaccard, Cosine all do)
// copies a cluster's data once into a worker's reusable LocalSim
// scratch — for GoldFinger, a contiguous signature block plus
// per-member popcounts so each Jaccard estimate is a single
// AND-popcount — after which every pair evaluation is a direct call on
// local indices. Providers without a Localizer transparently fall back
// to per-pair dispatch; both paths produce bit-identical graphs. See
// EXPERIMENTS.md for measured speedups.
//
// # Blocked row kernels and threshold-gated solvers
//
// On top of the gathered kernels, the solvers score row-batched: a
// member's similarities against a whole block of candidates are
// computed in one kernel call (SimRow for contiguous blocks, SimBatch
// for candidate lists; GoldFinger also serves global-id rows straight
// from its signature slab through the RowProvider fast path, which the
// exact brute-force baseline uses). Batching amortizes dispatch,
// keeps the inner AND-popcount loop marching through contiguous
// memory, and lets per-pair float divides pipeline instead of
// serializing against consumption.
//
// Scored rows enter the bounded neighbor lists through a threshold
// gate: a candidate that cannot beat the destination list's current
// minimum (Min/WouldAccept, mirrored into dense per-worker scratch
// inside the sweeps) is dismissed with one comparison of two
// cache-resident scratch reads — no heap access at all — which is the
// fate of the vast majority of candidates once lists warm up. The
// brute-force sweep additionally walks vertical panels so the largest
// clusters' gathered slabs stay cache-resident, offers each candidate
// id to a list exactly once (skipping the duplicate scan entirely),
// and batches the exact baseline's forward edges under a single
// stripe-lock acquisition per row. The blocked paths are bit-for-bit
// graph-identical to their pair-at-a-time references, which are kept
// (LocalIntoScalar) as frozen baselines for the equivalence tests and
// the BenchmarkLocalSolve regression family; EXPERIMENTS.md records
// the measured wins and an honest account of where the remaining time
// goes.
//
// # Vectorized count kernels
//
// The AND-popcount at the bottom of every bit-signature row is served
// by a per-architecture count-kernel layer (internal/similarity
// kernel*.go/.s): hand-written AVX2 assembly on amd64 (VPAND plus the
// VPSHUFB nibble-popcount, with the paper-default 1024-bit width
// specialized and rows processed two at a time) and NEON on arm64
// (VCNT byte counts with an in-register add tree), with pure-Go
// specializations everywhere else. The kernels return exact integer
// intersection counts; the float64 Jaccard division stays in shared Go
// code, so every kernel produces byte-identical similarities —
// equivalence and fuzz tests compare raw float bits across kernels.
//
// Selection is automatic at startup (a dependency-free CPUID/XGETBV
// probe on amd64; AdvSIMD is baseline on arm64) and overridable with
// C2_KERNEL=scalar, which forces the pure-Go path on any machine —
// useful for bisecting, benchmarking the scalar floor, or sidestepping
// a suspect microarchitecture. The active kernel's name is reported by
// similarity.KernelName, surfaced in the daemon's /statsz (sim_kernel)
// and recorded in benchmarks/BENCH_solve.json. New assembly widths
// follow the same pattern: integer counts only, one contiguous run per
// call, scalar tail in Go, and a byte-identity test against the scalar
// reference before dispatch is wired up.
//
// # Pipelined clustering
//
// BuildC2 streams clusters into the solver pool as the t clustering
// configurations discover them, instead of materializing all t×b
// clusters before the first worker starts: each configuration hashes
// independently and pushes finalized clusters into a concurrent
// size-prioritized queue drained by the workers, so clustering and
// solving overlap (the assumption of the paper's §II-F cost model).
// C2Stats reports the per-phase wall-clock times and the recovered
// overlap; BuildOptions.DisablePipeline restores the serial barrier.
//
// # Frozen graphs and the serving layer
//
// Building and serving use different representations. The mutable
// Graph — bounded per-user min-heaps — is what the solvers insert
// into; Freeze flattens it into a FrozenGraph, a CSR triple (flat
// neighbor ids, flat float32 similarities, per-user offsets) with each
// adjacency pre-sorted by decreasing similarity. FrozenGraph.Neighbors
// returns slice views with zero allocations, is immutable and
// therefore lock-free under any number of concurrent readers, and is
// orders of magnitude faster than Graph.Neighbors (which allocates and
// sorts per call).
//
// Index bundles a frozen graph with its training dataset (and
// optionally the GoldFinger fingerprints) into a concurrency-safe
// serving object: Neighbors, TopK and Recommend may be called from any
// number of goroutines, with recommendation scratch pooled per caller
// so steady-state queries touch no maps and allocate only the result.
//
//	g, _ := c2knn.BuildC2(d, sim, c2knn.BuildOptions{})
//	ix, _ := c2knn.NewIndex(g, d, sim)
//	ix.Save("index.c2")              // build once ...
//	ix, _ = c2knn.LoadIndex("index.c2") // ... load in milliseconds, many times
//	items := ix.Recommend(42, 30)
//
// # Snapshot format
//
// Save/LoadIndex (and c2build -snap / c2recommend -graph) use a
// versioned, checksummed binary container. Layout, all little-endian:
// an 8-byte magic "C2SNAP\r\n", a uint32 format version (currently 2),
// and a uint32 section count, followed by sections of {uint32 type,
// uint64 payload length, zero padding to the next 64-byte file offset,
// payload, uint32 CRC-32C of the payload}. Section types: 1 = frozen
// graph (k, user count, edge count, CSR offsets, flat neighbor ids,
// flat float32 similarity bits), 2 = dataset (name, item universe,
// per-user profile lengths, flat item ids), 3 = GoldFinger signatures
// (width in bits, user count, per-user popcounts, flat uint64 words).
// Every array slab inside a payload sits at a 64-byte-aligned file
// offset. Decoding validates framing, checksums, structural invariants
// and cross-section user counts, and on any failure returns an error
// and no snapshot — truncated files, flipped bytes, and version skew
// never panic and never yield a partially populated index. Version-1
// files (the legacy packed layout) still load, via the copy path only.
// See internal/persist for the full specification.
//
// Because version-2 slabs are 64-byte-aligned, LoadIndex can serve an
// index directly from a read-only memory mapping of the file: no
// decode copy, near-constant time-to-first-query regardless of
// snapshot size, and every replica on a host sharing one physical copy
// of the data through the page cache. The mode is selected by the
// C2_LOAD environment variable or LoadIndexMode ("auto" maps when the
// file and platform allow and copy-decodes otherwise; "copy" and
// "mmap" force a path). Mapped indexes report Mapped() and follow the
// Retain/Release/Close lifetime protocol during hot swaps; built or
// copy-loaded indexes are exempt (Retain always succeeds, Close is a
// no-op). One operational rule follows: never modify a snapshot file
// in place while any process may be serving it — replace it atomically
// (write to a temp file, then rename, exactly what Index.Save does),
// which leaves live mappings on the old inode intact.
//
// # Serving over HTTP
//
// cmd/c2serve (built on internal/server) turns a snapshot into a
// long-running query daemon:
//
//	c2build -in data.txt -snap index.c2
//	c2serve -snap index.c2 -addr :8080
//
// Query endpoints come in two forms each: a single-user GET —
// /v1/neighbors?user=U&k=K, /v1/topk?user=U&k=K and
// /v1/recommend?user=U&n=N — and a batched POST taking
// {"users":[...],"k":K} (or "n" for recommend) and returning
// {"results":[...]} in request order. Batches are served by
// Index.TopKBatch/Index.RecommendBatch, which reuse one pooled scoring
// scratch across the whole batch. Out-of-range user ids yield empty
// results, never errors: a stale client must not be able to 500 a
// serving process.
//
// Inside the daemon, a bounded worker pool caps concurrent index work,
// and a sharded LRU caches marshaled response bodies keyed on
// (endpoint, snapshot epoch, params, users) — a cache hit writes bytes
// straight to the wire and allocates nothing. /healthz reports
// liveness plus the current snapshot epoch; /statsz reports qps
// (sliding-window and lifetime), p50/p99 latency, per-endpoint counts
// and the cache hit rate.
//
// Snapshots hot-swap with zero downtime: SIGHUP or POST /admin/reload
// re-reads the snapshot file and atomically replaces the served index.
// In-flight requests finish on the index they started with, later
// requests see the new one, and the epoch in every cache key retires
// stale cached results wholesale. A failed reload (missing, corrupt,
// or version-skewed file) leaves the old index serving; LoadIndex
// failures are classified by the exported sentinels — errors.Is with
// ErrSnapshotVersion means "rebuild with this binary's c2build", with
// ErrSnapshotCorrupt "restore the file" — so the daemon logs the right
// remedy, and /statsz carries the kind and message of the last failed
// reload. SIGINT/SIGTERM drain in-flight requests before exit.
//
// # Operational hardening
//
// Every request into the daemon passes through a composable middleware
// stack (internal/server/middleware): request-ID tagging
// (X-Request-ID, generated or propagated), optional access logging,
// and panic recovery globally; then, on the query endpoints only,
// status accounting, admission control, a body-size cap, and a
// per-request deadline. A handler panic becomes a logged 500 — request
// ID and stack included — and the process keeps serving. Admission
// control sheds load past -inflight concurrent requests with 429 +
// Retry-After instead of queueing without bound; bodies past -max-body
// answer 413; batches past -batch answer 400; work that outlives
// -timeout answers 503. Health, stats and metrics probes bypass
// shedding and deadlines so observability survives overload.
//
// Metrics are exposed in Prometheus text format on /metrics (and on
// the opt-in -pprof admin listener, alongside /debug/pprof) with no
// dependency beyond the standard library: c2_responses_total{code},
// c2_panics_total, c2_shed_total, c2_deadline_expired_total,
// c2_body_too_large_total, c2_inflight_requests, cache and snapshot
// counters, and a c2_request_duration_seconds histogram. cmd/soak is
// the fault-injection soak harness that drives all of this — injected
// panics, oversized bodies, stampedes, slow-loris connections, corrupt
// snapshot reloads — under well-formed load and reconciles /metrics
// against its own accounting; see EXPERIMENTS.md ("Operational
// hardening") for the invariants CI gates.
//
// # Sharded serving
//
// One build can be served by many processes. c2build -shards N
// additionally partitions the snapshot into N per-shard snapshots
// (<snap>.shard0 … <snap>.shardN-1) plus a manifest (<snap>.manifest),
// and c2serve runs in one of two roles: -role shard serves one
// per-shard snapshot exactly like an unsharded daemon, and -role
// router is a stateless scatter-gather tier that fans the same /v1
// wire protocol out over the shard daemons.
//
// Users map to shards through a stable hash: ShardKey(u, buckets)
// places user u in one of buckets (default DefaultShardBuckets = 4096)
// contiguously tiled by per-shard bucket ranges. A shard's snapshot
// keeps the full dataset and fingerprints (scoring a user's neighbors
// needs their profiles) but masks the graph — the artifact that grows
// with the corpus — down to its owned users' rows, preserving the
// global user-id space so any shard can decode any request.
//
// # Shard manifest format
//
// The manifest is a versioned, checksummed binary container, little-
// endian throughout: an 8-byte magic "C2MANI\r\n", a uint32 format
// version, a uint64 payload length, the payload, and a uint32 CRC-32C
// of the payload. The payload holds the bucket count, a common build
// epoch, and one entry per shard: {shard id, bucket range lo..hi
// (inclusive), snapshot path (relative to the manifest), whole-file
// CRC-32C of that snapshot, epoch, owned-user count}. Decoding
// validates framing and checksum; Manifest.Validate additionally
// enforces dense shard ids, a disjoint full cover of [1, buckets], and
// a uniform epoch — a router refuses a table that routes any bucket
// nowhere, twice, or across builds. See internal/persist.
//
// # Scatter-gather routing
//
// The router (internal/router) proxies single-user GETs verbatim from
// the owning shard — status and body bytes untouched — and splits
// batched POSTs into per-shard sub-batches, reassembling the responses
// in request order from the shards' own marshaled bytes, so a routed
// response is byte-identical to what one unsharded daemon would have
// produced. Per-try upstream deadlines, failover to sibling replicas,
// and hedged retries (a second replica is tried after -hedge) keep
// tail latency bounded; when a shard is entirely unreachable the
// router degrades instead of failing — affected users get empty
// results and the response carries an X-C2-Partial header counting
// them. A health loop polls replica /healthz endpoints, prefers
// healthy replicas in rotation, and surfaces a replica stuck on an old
// snapshot epoch after a hot swap ("epoch skew") through the same
// /statsz reload-failure plumbing the shard tier uses, plus
// router-specific /metrics series (c2_router_*). See EXPERIMENTS.md
// ("Sharded serving") for the measured scaling and the CI gates.
//
// # Incremental maintenance
//
// A frozen index can absorb new users and profile updates without a
// rebuild. Index.EnableUpserts attaches a delta overlay
// (internal/delta) on top of the frozen base: Index.Upsert
// fingerprints the incoming profile, places it through the same
// FastRandomHash cluster descent the builder used, and re-solves only
// the touched clusters with the blocked similarity kernels, patching
// reverse edges under strict improvement. Reads merge base + delta
// through an immutable copy-on-write view swapped by atomic pointer —
// lock-free, allocation-free, and epoch-consistent with concurrent
// writers. Delta user ids extend the base contiguously and stay
// stable across compactions.
//
// The daemon exposes the write path as POST /v1/upsert (single or
// batch) behind the -upserts flag; read replicas and routers run
// -read-only and refuse writes with 403 {"kind":"read-only"} — the
// intended topology is exactly one writable daemon per snapshot.
// A background compactor (-compact-every, plus depth/age triggers and
// POST /admin/compact) folds delta + base into a fresh v2 snapshot
// via internal/persist and hot-swaps it through the usual epoch
// machinery; upserts racing the fold survive, with the absorbed
// prefix dropped by sequence marker. Delta depth, age and compaction
// counts surface in /statsz and /metrics, and the router flags
// same-epoch replicas whose delta cursors disagree ("delta skew").
// See EXPERIMENTS.md ("Incremental maintenance") for measured
// latencies and the recall-parity gate.
//
// The package root re-exports the stable surface of the internal
// packages; see the examples directory for complete programs and
// cmd/c2bench for the experiment harness.
package c2knn
