#!/usr/bin/env bash
# Run the HTTP serving-daemon load test (100 concurrent clients against
# internal/server, with a mid-load snapshot hot-swap) on a small preset
# and record benchmarks/BENCH_http.json — the serving-correctness and
# throughput tracker consumed by scripts/bench-compare.sh and CI.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${HTTP_SCALE:-0.02}"
WORKERS="${HTTP_WORKERS:-4}"

mkdir -p benchmarks
go run ./cmd/c2bench -exp serve-http -scale "$SCALE" -workers "$WORKERS" \
  -json benchmarks/BENCH_http.json
echo "wrote benchmarks/BENCH_http.json"
