#!/usr/bin/env bash
# Run the local-solve benchmark (blocked row-kernel cluster solvers vs
# the frozen pair-at-a-time references) on a small preset and record
# benchmarks/BENCH_solve.json — the solver-kernel regression tracker
# consumed by scripts/bench-compare.sh and CI.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${SOLVE_SCALE:-0.02}"
WORKERS="${SOLVE_WORKERS:-4}"

mkdir -p benchmarks
go run ./cmd/c2bench -exp solve -scale "$SCALE" -workers "$WORKERS" \
  -json benchmarks/BENCH_solve.json
KERNEL="$(sed -n 's/.*"kernel": *"\([^"]*\)".*/\1/p' benchmarks/BENCH_solve.json | head -n1)"
echo "wrote benchmarks/BENCH_solve.json (count kernel: ${KERNEL:-unknown})"
