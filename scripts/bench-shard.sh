#!/usr/bin/env bash
# Run the sharded-serving experiment (one C2 index served by a single
# 1-worker daemon vs 2 shard daemons behind the scatter-gather router,
# every routed response byte-compared against the single-process one)
# on a small preset and record benchmarks/BENCH_shard.json — the
# scatter-gather correctness and scaling tracker consumed by
# scripts/bench-compare.sh and CI.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${SHARD_SCALE:-0.02}"
WORKERS="${SHARD_WORKERS:-4}"

mkdir -p benchmarks
go run ./cmd/c2bench -exp shard -scale "$SCALE" -workers "$WORKERS" \
  -json benchmarks/BENCH_shard.json
echo "wrote benchmarks/BENCH_shard.json"
