#!/usr/bin/env bash
# Run the snapshot cold-start benchmark (mmap zero-copy load vs copy
# decode, time-to-first-query and heap-per-replica) and record
# benchmarks/BENCH_load.json — the load-path regression tracker
# consumed by scripts/bench-compare.sh and CI.
set -euo pipefail
cd "$(dirname "$0")/.."

# 3x paper-scale ml1M by default (~14 MB snapshot): the ratio between
# the paths grows with snapshot size and its run-to-run variance
# shrinks, so the tracked number comes from a serving-sized snapshot,
# not the floor-clamped tiny one. Builds and measures in a few seconds.
SCALE="${LOAD_SCALE:-3}"
WORKERS="${LOAD_WORKERS:-4}"

mkdir -p benchmarks
go run ./cmd/c2bench -exp load -scale "$SCALE" -workers "$WORKERS" \
  -json benchmarks/BENCH_load.json
SPEEDUP="$(sed -n 's/.*"load_speedup": *\([0-9.]*\).*/\1/p' benchmarks/BENCH_load.json | head -n1)"
MAPPED="$(sed -n 's/.*"mapped": *\(true\|false\).*/\1/p' benchmarks/BENCH_load.json | head -n1)"
echo "wrote benchmarks/BENCH_load.json (mapped: ${MAPPED:-unknown}, cold-start speedup: ${SPEEDUP:-n/a}x)"
