#!/usr/bin/env bash
# Run the benchmark suite and record results for regression tracking.
# BENCH_PATTERN narrows the run (default: the kernel microbenchmarks,
# which are the fast, low-noise regression canaries; use BENCH_PATTERN=.
# for the full paper suite).
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-BenchmarkKernel}"
COUNT="${BENCH_COUNT:-6}"

mkdir -p benchmarks
go test -run='^$' -bench="$PATTERN" -benchmem -count="$COUNT" . | tee benchmarks/latest.txt
echo "wrote benchmarks/latest.txt"
