#!/usr/bin/env bash
# Run the pipelined-vs-barrier build benchmark on a small preset and
# record benchmarks/BENCH_pipeline.json — the clustering/solving overlap
# tracker consumed by scripts/bench-compare.sh and CI.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${PIPELINE_SCALE:-0.02}"
WORKERS="${PIPELINE_WORKERS:-4}"

mkdir -p benchmarks
go run ./cmd/c2bench -exp pipeline -scale "$SCALE" -workers "$WORKERS" \
  -json benchmarks/BENCH_pipeline.json
echo "wrote benchmarks/BENCH_pipeline.json"
