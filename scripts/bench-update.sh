#!/usr/bin/env bash
# Run the incremental-maintenance benchmark (delta-overlay upsert
# latency, merged-read allocations, compaction time, and the recall of
# an incrementally grown graph versus a from-scratch rebuild) and
# record benchmarks/BENCH_update.json — the freshness regression
# tracker consumed by scripts/bench-compare.sh and CI.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${UPDATE_SCALE:-0.05}"
WORKERS="${UPDATE_WORKERS:-4}"

mkdir -p benchmarks
go run ./cmd/c2bench -exp update -scale "$SCALE" -workers "$WORKERS" \
  -json benchmarks/BENCH_update.json
P99="$(sed -n 's/.*"upsert_p99_ms": *\([0-9.]*\).*/\1/p' benchmarks/BENCH_update.json | head -n1)"
DELTA="$(sed -n 's/.*"recall_delta": *\([0-9.]*\).*/\1/p' benchmarks/BENCH_update.json | head -n1)"
echo "wrote benchmarks/BENCH_update.json (upsert p99 ${P99:-n/a} ms, recall delta ${DELTA:-n/a})"
