#!/usr/bin/env bash
# Run the serving-layer benchmark (frozen CSR path vs mutable build
# structure) on a small preset and record benchmarks/BENCH_serve.json —
# the query-throughput tracker consumed by scripts/bench-compare.sh and
# CI.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${SERVE_SCALE:-0.02}"
WORKERS="${SERVE_WORKERS:-4}"

mkdir -p benchmarks
go run ./cmd/c2bench -exp serve -scale "$SCALE" -workers "$WORKERS" \
  -json benchmarks/BENCH_serve.json
echo "wrote benchmarks/BENCH_serve.json"
