#!/usr/bin/env bash
# Compare benchmarks/latest.txt against benchmarks/baseline.txt and fail
# on time regressions above BENCH_MAX_REGRESSION_PCT (default 5).
# Requires benchstat when available; falls back to a plain ns/op diff of
# matching benchmark names otherwise (no network, no installs).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="benchmarks/baseline.txt"
LATEST="benchmarks/latest.txt"
THRESHOLD="${BENCH_MAX_REGRESSION_PCT:-5}"

# Every JSON gate below is skipped when its record is absent or stale —
# silently passing a leg that *meant* to be judged. skipped() makes
# that loud: it always prints why a gate did not run, and when the
# record is named in BENCH_REQUIRE (space-separated gate names, set by
# the CI leg that just regenerated those records) an unjudged record is
# a hard failure instead of a quiet green.
skipped() { # <gate-name> <path> <reason>
  echo "NOTE: $1 gate did not run: $2 is $3" >&2
  case " ${BENCH_REQUIRE:-} " in
    *" $1 "*)
      echo "record $1 is required (BENCH_REQUIRE='${BENCH_REQUIRE}') but was not judged; failing" >&2
      exit 1 ;;
  esac
}

PIPELINE_JSON="benchmarks/BENCH_pipeline.json"

# Gate the pipelined-build record (scripts/bench-pipeline.sh) when it
# exists and is fresh: the pipelined path must stay quality-equivalent
# to the barrier path (cluster-set identity guarantees ratio ≈ 1) and
# must not be materially slower than it. Speedup is noisy on small
# presets and CPU-starved runners, so only a hard regression (< 0.8x)
# fails. Records older than an hour are skipped rather than judged —
# a stale machine-local file must not gate unrelated later runs (CI
# regenerates the record seconds before comparing).
if [ -f "$PIPELINE_JSON" ] && [ -n "$(find "$PIPELINE_JSON" -mmin -60 2>/dev/null)" ]; then
  echo "pipeline overlap record ($PIPELINE_JSON):"
  cat "$PIPELINE_JSON"
  awk '
    match($0, /"speedup": *[0-9.]+/)       { split(substr($0, RSTART, RLENGTH), a, ": *"); speedup = a[2] + 0 }
    match($0, /"quality_ratio": *[0-9.]+/) { split(substr($0, RSTART, RLENGTH), a, ": *"); quality = a[2] + 0 }
    END {
      if (quality < 0.999) {
        printf("pipeline quality ratio %.4f below the 0.999 parity bound\n", quality) > "/dev/stderr"
        exit 1
      }
      if (speedup < 0.8) {
        printf("pipelined build is a >20%% regression vs barrier (speedup %.2fx)\n", speedup) > "/dev/stderr"
        exit 1
      }
      printf("pipeline gate ok: speedup %.2fx, quality ratio %.4f\n", speedup, quality)
    }
  ' "$PIPELINE_JSON"
elif [ -f "$PIPELINE_JSON" ]; then
  skipped pipeline "$PIPELINE_JSON" "stale (>60 min)"
else
  skipped pipeline "$PIPELINE_JSON" "absent (run scripts/bench-pipeline.sh)"
fi

SERVE_JSON="benchmarks/BENCH_serve.json"

# Gate the serving-layer record (scripts/bench-serve.sh) the same way:
# the frozen CSR neighbor lookup must be allocation-free and at least 2x
# the mutable Graph.Neighbors path (in practice it is 100-1000x, so the
# 2x bound is robust to any runner), and frozen recommendation queries
# must not grossly regress versus the map-scoring path (< 0.8x fails;
# the win itself is dataset-dependent and noisy on shared runners).
if [ -f "$SERVE_JSON" ] && [ -n "$(find "$SERVE_JSON" -mmin -60 2>/dev/null)" ]; then
  echo "serve record ($SERVE_JSON):"
  cat "$SERVE_JSON"
  awk '
    match($0, /"recommend_speedup": *[0-9.]+/)          { split(substr($0, RSTART, RLENGTH), a, ": *"); rec = a[2] + 0 }
    match($0, /"neighbors_speedup": *[0-9.]+/)          { split(substr($0, RSTART, RLENGTH), a, ": *"); nb = a[2] + 0 }
    match($0, /"neighbors_allocs_per_query": *[0-9.]+/) { split(substr($0, RSTART, RLENGTH), a, ": *"); nba = a[2] + 0 }
    END {
      if (nba > 0) {
        printf("frozen neighbor lookups allocate (%.4f allocs/query), want 0\n", nba) > "/dev/stderr"
        exit 1
      }
      if (nb < 2) {
        printf("frozen neighbor lookup only %.2fx over Graph.Neighbors, want >= 2x\n", nb) > "/dev/stderr"
        exit 1
      }
      if (rec < 0.8) {
        printf("frozen recommend path is a >20%% regression vs the map path (%.2fx)\n", rec) > "/dev/stderr"
        exit 1
      }
      printf("serve gate ok: neighbors %.0fx (0 allocs), recommend %.2fx\n", nb, rec)
    }
  ' "$SERVE_JSON"
elif [ -f "$SERVE_JSON" ]; then
  skipped serve "$SERVE_JSON" "stale (>60 min)"
else
  skipped serve "$SERVE_JSON" "absent (run scripts/bench-serve.sh)"
fi

SOLVE_JSON="benchmarks/BENCH_solve.json"

# Gate the local-solve record (scripts/bench-solve.sh): the blocked
# row-kernel solver must be allocation-free in steady state and
# meaningfully faster than the frozen pair-at-a-time reference on the
# large-cluster case (where a real build's O(m²) brute-force time
# concentrates). The floor is kernel-aware: with a vector count kernel
# active (avx2/neon) the blocked path must clear 2.0x — that is the
# whole point of the SIMD layer — while a scalar-only machine keeps the
# pre-SIMD 1.3x floor (the gating/batching win alone; see
# EXPERIMENTS.md). Both floors sit well under the locally measured
# ratios so runner noise cannot flake a true regression signal.
if [ -f "$SOLVE_JSON" ] && [ -n "$(find "$SOLVE_JSON" -mmin -60 2>/dev/null)" ]; then
  echo "local-solve record ($SOLVE_JSON):"
  cat "$SOLVE_JSON"
  awk '
    match($0, /"solve_speedup": *[0-9.]+/)    { split(substr($0, RSTART, RLENGTH), a, ": *"); speedup = a[2] + 0 }
    match($0, /"small_speedup": *[0-9.]+/)    { split(substr($0, RSTART, RLENGTH), a, ": *"); small = a[2] + 0 }
    match($0, /"allocs_per_solve": *[0-9.]+/) { split(substr($0, RSTART, RLENGTH), a, ": *"); allocs = a[2] + 0 }
    match($0, /"kernel": *"[^"]*"/)           { split(substr($0, RSTART, RLENGTH), a, "\""); kernel = a[4] }
    match($0, /"kernel_speedup": *[0-9.]+/)   { split(substr($0, RSTART, RLENGTH), a, ": *"); kspeed = a[2] + 0 }
    match($0, /"hyrec_speedup": *[0-9.]+/)    { split(substr($0, RSTART, RLENGTH), a, ": *"); hyspeed = a[2] + 0 }
    END {
      if (allocs != 0) {
        printf("blocked local solve allocates (%.2f allocs/solve), want 0\n", allocs) > "/dev/stderr"
        exit 1
      }
      floor = 1.3
      if (kernel != "" && kernel != "scalar") floor = 2.0
      if (speedup < floor) {
        printf("blocked local solve only %.2fx over the scalar reference (kernel %s), want >= %.1fx\n", speedup, kernel, floor) > "/dev/stderr"
        exit 1
      }
      if (kernel != "" && kernel != "scalar" && kspeed < 1.1) {
        printf("%s count kernel only %.2fx over forced-scalar counts, want >= 1.1x\n", kernel, kspeed) > "/dev/stderr"
        exit 1
      }
      # Hyrec is candidate-scatter bound (see EXPERIMENTS.md): its
      # gathers touch ~T candidates per user, not a dense block, so the
      # SIMD kernel can only claim the in-row popcount share. The floor
      # is a modest 1.05x — real regressions drop it to ~1.0.
      if (kernel != "" && kernel != "scalar" && hyspeed > 0 && hyspeed < 1.05) {
        printf("hyrec blocked path only %.2fx over its scalar reference under the %s kernel, want >= 1.05x\n", hyspeed, kernel) > "/dev/stderr"
        exit 1
      }
      printf("solve gate ok [kernel %s]: blocked %.2fx scalar on the large cluster (%.2fx small, kernel alone %.2fx, hyrec %.2fx), 0 allocs/solve\n", kernel, speedup, small, kspeed, hyspeed)
    }
  ' "$SOLVE_JSON"
elif [ -f "$SOLVE_JSON" ]; then
  skipped solve "$SOLVE_JSON" "stale (>60 min)"
else
  skipped solve "$SOLVE_JSON" "absent (run scripts/bench-solve.sh)"
fi

HTTP_JSON="benchmarks/BENCH_http.json"

# Gate the HTTP daemon record (scripts/bench-http.sh): under a
# 100-client concurrent load with a mid-load snapshot hot-swap, no
# request may fail and no response may diverge from the serial
# Index.Recommend reference; the cache must actually be hit; and the
# cache-hit fast path must be allocation-free. Throughput and latency
# are recorded but not gated — shared runners are too noisy to judge
# them.
if [ -f "$HTTP_JSON" ] && [ -n "$(find "$HTTP_JSON" -mmin -60 2>/dev/null)" ]; then
  echo "http serving record ($HTTP_JSON):"
  cat "$HTTP_JSON"
  awk '
    match($0, /"failed_requests": *[0-9]+/)                 { split(substr($0, RSTART, RLENGTH), a, ": *"); failed = a[2] + 0 }
    match($0, /"mismatched_responses": *[0-9]+/)            { split(substr($0, RSTART, RLENGTH), a, ": *"); mism = a[2] + 0 }
    match($0, /"hot_swaps": *[0-9]+/)                       { split(substr($0, RSTART, RLENGTH), a, ": *"); swaps = a[2] + 0 }
    match($0, /"cache_hit_rate": *[0-9.]+/)                 { split(substr($0, RSTART, RLENGTH), a, ": *"); hit = a[2] + 0 }
    match($0, /"cache_hit_allocs_per_query": *-?[0-9.]+/)   { split(substr($0, RSTART, RLENGTH), a, ": *"); allocs = a[2] + 0 }
    END {
      if (failed > 0) {
        printf("%d HTTP requests failed under concurrent load, want 0\n", failed) > "/dev/stderr"
        exit 1
      }
      if (mism > 0) {
        printf("%d HTTP responses diverged from Index.Recommend, want 0\n", mism) > "/dev/stderr"
        exit 1
      }
      if (swaps < 1) {
        printf("mid-load hot swap did not complete (%d swaps)\n", swaps) > "/dev/stderr"
        exit 1
      }
      if (allocs != 0) {
        printf("cache-hit path allocates (%.4f allocs/query), want 0\n", allocs) > "/dev/stderr"
        exit 1
      }
      if (hit < 0.2) {
        printf("cache hit rate %.3f below the 0.2 floor for a repeating load\n", hit) > "/dev/stderr"
        exit 1
      }
      printf("http gate ok: 0 failures, 0 mismatches through %d hot swap(s), hit rate %.2f, alloc-free hits\n", swaps, hit)
    }
  ' "$HTTP_JSON"
elif [ -f "$HTTP_JSON" ]; then
  skipped http "$HTTP_JSON" "stale (>60 min)"
else
  skipped http "$HTTP_JSON" "absent (run scripts/bench-http.sh)"
fi

SOAK_JSON="benchmarks/BENCH_soak.json"

# Gate the fault-injection soak record (scripts/bench-soak.sh): the
# hardened daemon must absorb every injected fault class with its
# documented status code — oversized bodies (413), shed stampedes
# (429), recovered panics (500), expired deadlines (503) — while zero
# well-formed requests fail or diverge, the daemon never dies, a
# corrupt snapshot reload keeps the old epoch serving and a later good
# reload recovers, and the /metrics counters reconcile exactly with the
# harness's own per-status accounting. p99 is bounded loosely
# (SOAK_P99_MAX_US, default 1s): on a race-enabled shared runner only a
# pathological stall should trip it.
if [ -f "$SOAK_JSON" ] && [ -n "$(find "$SOAK_JSON" -mmin -60 2>/dev/null)" ]; then
  echo "soak record ($SOAK_JSON):"
  cat "$SOAK_JSON"
  awk -v p99max="${SOAK_P99_MAX_US:-1000000}" '
    match($0, /"failed_requests": *[0-9]+/)       { split(substr($0, RSTART, RLENGTH), a, ": *"); failed = a[2] + 0 }
    match($0, /"mismatched_responses": *[0-9]+/)  { split(substr($0, RSTART, RLENGTH), a, ": *"); mism = a[2] + 0 }
    match($0, /"fault_unexpected": *[0-9]+/)      { split(substr($0, RSTART, RLENGTH), a, ": *"); unexp = a[2] + 0 }
    match($0, /"restarts": *[0-9]+/)              { split(substr($0, RSTART, RLENGTH), a, ": *"); restarts = a[2] + 0 }
    match($0, /"fault_413_oversized": *[0-9]+/)   { split(substr($0, RSTART, RLENGTH), a, ": *"); f413 = a[2] + 0 }
    match($0, /"fault_400_overbatch": *[0-9]+/)   { split(substr($0, RSTART, RLENGTH), a, ": *"); f400 = a[2] + 0 }
    match($0, /"fault_500_panics": *[0-9]+/)      { split(substr($0, RSTART, RLENGTH), a, ": *"); f500 = a[2] + 0 }
    match($0, /"fault_503_deadline": *[0-9]+/)    { split(substr($0, RSTART, RLENGTH), a, ": *"); f503 = a[2] + 0 }
    match($0, /"shed_responses": *[0-9]+/)        { split(substr($0, RSTART, RLENGTH), a, ": *"); shed = a[2] + 0 }
    match($0, /"hot_swaps": *[0-9]+/)             { split(substr($0, RSTART, RLENGTH), a, ": *"); swaps = a[2] + 0 }
    match($0, /"metrics_reconciled": *(true|false)/)       { rec = (index(substr($0, RSTART, RLENGTH), "true") > 0) }
    match($0, /"corrupt_kept_serving": *(true|false)/)     { kept = (index(substr($0, RSTART, RLENGTH), "true") > 0) }
    match($0, /"good_reload_after_corrupt": *(true|false)/) { recov = (index(substr($0, RSTART, RLENGTH), "true") > 0) }
    match($0, /"p99_us": *[0-9.]+/)               { split(substr($0, RSTART, RLENGTH), a, ": *"); p99 = a[2] + 0 }
    END {
      fail = 0
      if (failed > 0)   { printf("%d well-formed requests failed during the soak, want 0\n", failed) > "/dev/stderr"; fail = 1 }
      if (mism > 0)     { printf("%d soak responses diverged from Index.Recommend, want 0\n", mism) > "/dev/stderr"; fail = 1 }
      if (unexp > 0)    { printf("%d fault probes got an undocumented status\n", unexp) > "/dev/stderr"; fail = 1 }
      if (restarts > 0) { printf("the daemon died %d time(s) during the soak\n", restarts) > "/dev/stderr"; fail = 1 }
      if (f413 < 1 || f400 < 1 || f500 < 1 || f503 < 1 || shed < 1) {
        printf("fault classes missing: 413x%d 400x%d 500x%d 503x%d 429x%d (want all >= 1)\n", f413, f400, f500, f503, shed) > "/dev/stderr"; fail = 1
      }
      if (swaps < 1)    { printf("no hot swap completed under soak load\n") > "/dev/stderr"; fail = 1 }
      if (!kept)        { printf("corrupt snapshot reload did not keep the old epoch serving\n") > "/dev/stderr"; fail = 1 }
      if (!recov)       { printf("good reload after the corrupt one did not succeed\n") > "/dev/stderr"; fail = 1 }
      if (!rec)         { printf("/metrics counters drifted from the harness accounting\n") > "/dev/stderr"; fail = 1 }
      if (p99 > p99max) { printf("soak p99 %.0f us over the %d us bound\n", p99, p99max) > "/dev/stderr"; fail = 1 }
      if (fail) exit 1
      printf("soak gate ok: 0 failures through 413x%d 400x%d 500x%d 503x%d 429x%d, %d swap(s), metrics reconciled, p99 %.0f us\n",
             f413, f400, f500, f503, shed, swaps, p99)
    }
  ' "$SOAK_JSON"
elif [ -f "$SOAK_JSON" ]; then
  skipped soak "$SOAK_JSON" "stale (>60 min)"
else
  skipped soak "$SOAK_JSON" "absent (run scripts/bench-soak.sh)"
fi

SHARD_JSON="benchmarks/BENCH_shard.json"

# Gate the sharded-serving record (scripts/bench-shard.sh): every
# routed response must be byte-identical to the single-process daemon's
# (mismatched == 0), no request may fail and none may degrade to a
# partial answer while all replicas are up — those three are
# unconditional. The scaling gate — routed throughput >= 1.8x the
# 1-worker single-process baseline at 2 shards — only applies when the
# runner actually has at least as many cores as shards; on a 1-core box
# two shard workers time-slice one CPU and 1.0x is the physical
# ceiling, so judging speedup there would only test the scheduler.
if [ -f "$SHARD_JSON" ] && [ -n "$(find "$SHARD_JSON" -mmin -60 2>/dev/null)" ]; then
  echo "sharded serving record ($SHARD_JSON):"
  cat "$SHARD_JSON"
  awk -v minspeed="${SHARD_MIN_SPEEDUP:-1.8}" '
    match($0, /"shards": *[0-9]+/)               { split(substr($0, RSTART, RLENGTH), a, ": *"); shards = a[2] + 0 }
    match($0, /"cores": *[0-9]+/)                { split(substr($0, RSTART, RLENGTH), a, ": *"); cores = a[2] + 0 }
    match($0, /"failed_requests": *[0-9]+/)      { split(substr($0, RSTART, RLENGTH), a, ": *"); failed = a[2] + 0 }
    match($0, /"mismatched_responses": *[0-9]+/) { split(substr($0, RSTART, RLENGTH), a, ": *"); mism = a[2] + 0 }
    match($0, /"partial_responses": *[0-9]+/)    { split(substr($0, RSTART, RLENGTH), a, ": *"); part = a[2] + 0 }
    match($0, /"speedup": *[0-9.]+/)             { split(substr($0, RSTART, RLENGTH), a, ": *"); speedup = a[2] + 0 }
    END {
      if (failed > 0) {
        printf("%d routed requests failed, want 0\n", failed) > "/dev/stderr"
        exit 1
      }
      if (mism > 0) {
        printf("%d routed responses were not byte-identical to the single-process daemon, want 0\n", mism) > "/dev/stderr"
        exit 1
      }
      if (part > 0) {
        printf("%d responses degraded to partial with every replica healthy, want 0\n", part) > "/dev/stderr"
        exit 1
      }
      if (cores < shards) {
        printf("shard gate ok (correctness only): 0 failed / 0 mismatched / 0 partial; speedup %.2fx not judged on %d core(s) for %d shards\n", speedup, cores, shards)
        exit 0
      }
      if (speedup < minspeed) {
        printf("routed tier only %.2fx the single-process baseline at %d shards, want >= %.1fx\n", speedup, shards, minspeed) > "/dev/stderr"
        exit 1
      }
      printf("shard gate ok: 0 failed / 0 mismatched / 0 partial, routed %.2fx single-process at %d shards\n", speedup, shards)
    }
  ' "$SHARD_JSON"
elif [ -f "$SHARD_JSON" ]; then
  skipped shard "$SHARD_JSON" "stale (>60 min)"
else
  skipped shard "$SHARD_JSON" "absent (run scripts/bench-shard.sh)"
fi

LOAD_JSON="benchmarks/BENCH_load.json"

# Gate the snapshot cold-start record (scripts/bench-load.sh): the two
# load paths must have decoded the same snapshot into bitwise-identical
# structures answering identical queries (identical == true,
# unconditional). When the mmap path is available on the runner, the
# zero-copy load must reach first query at least LOAD_MIN_SPEEDUP x
# faster than the copy decode (default 5; measured locally at 8-9x on
# the default ~14 MB snapshot, the slack absorbs runner noise) and must
# hold at most half the copy path's heap — the per-replica memory story
# is the point of the mapping. On platforms without mmap support only
# the equivalence clause is judged.
if [ -f "$LOAD_JSON" ] && [ -n "$(find "$LOAD_JSON" -mmin -60 2>/dev/null)" ]; then
  echo "snapshot cold-start record ($LOAD_JSON):"
  cat "$LOAD_JSON"
  awk -v minspeed="${LOAD_MIN_SPEEDUP:-5}" '
    match($0, /"mapped": *(true|false)/)       { mapped = (index(substr($0, RSTART, RLENGTH), "true") > 0) }
    match($0, /"identical": *(true|false)/)    { ident = (index(substr($0, RSTART, RLENGTH), "true") > 0) }
    match($0, /"load_speedup": *[0-9.]+/)      { split(substr($0, RSTART, RLENGTH), a, ": *"); speedup = a[2] + 0 }
    match($0, /"mmap_heap_bytes": *[0-9]+/)    { split(substr($0, RSTART, RLENGTH), a, ": *"); mheap = a[2] + 0 }
    match($0, /"copy_heap_bytes": *[0-9]+/)    { split(substr($0, RSTART, RLENGTH), a, ": *"); cheap = a[2] + 0 }
    END {
      if (!ident) {
        printf("mmap and copy load paths are not bitwise/query identical\n") > "/dev/stderr"
        exit 1
      }
      if (!mapped) {
        printf("load gate ok (equivalence only): mmap path unavailable on this runner\n")
        exit 0
      }
      if (speedup < minspeed) {
        printf("zero-copy load only %.2fx faster to first query than copy decode, want >= %.1fx\n", speedup, minspeed) > "/dev/stderr"
        exit 1
      }
      if (cheap > 0 && mheap > cheap / 2) {
        printf("mapped replica holds %d heap bytes, more than half the copy path%s %d\n", mheap, "\x27s", cheap) > "/dev/stderr"
        exit 1
      }
      printf("load gate ok: zero-copy %.2fx to first query, heap %d vs %d bytes per replica, paths identical\n", speedup, mheap, cheap)
    }
  ' "$LOAD_JSON"
elif [ -f "$LOAD_JSON" ]; then
  skipped load "$LOAD_JSON" "stale (>60 min)"
else
  skipped load "$LOAD_JSON" "absent (run scripts/bench-load.sh)"
fi

UPDATE_JSON="benchmarks/BENCH_update.json"

# Gate the incremental-maintenance record (scripts/bench-update.sh):
# absorbing one profile through the delta overlay must stay sub-second
# at p99 (UPDATE_P99_MAX_MS, default 1000 — measured locally in the
# low hundreds of microseconds, so the bound only catches an
# accidental rebuild on the write path), the merged read path must not
# allocate, and a graph grown through upserts plus one compaction must
# recommend within 0.005 recall of a from-scratch rebuild on the same
# data — the same tolerance the golden recall test grants
# float-ordering jitter. All three clauses are scale-free, so the gate
# holds at CI's reduced dataset scale.
if [ -f "$UPDATE_JSON" ] && [ -n "$(find "$UPDATE_JSON" -mmin -60 2>/dev/null)" ]; then
  echo "incremental maintenance record ($UPDATE_JSON):"
  cat "$UPDATE_JSON"
  awk -v p99max="${UPDATE_P99_MAX_MS:-1000}" '
    match($0, /"upsert_p99_ms": *[0-9.]+/)      { split(substr($0, RSTART, RLENGTH), a, ": *"); p99 = a[2] + 0 }
    match($0, /"merged_read_allocs": *[0-9.]+/) { split(substr($0, RSTART, RLENGTH), a, ": *"); allocs = a[2] + 0 }
    match($0, /"recall_delta": *[0-9.]+/)       { split(substr($0, RSTART, RLENGTH), a, ": *"); rdelta = a[2] + 0 }
    match($0, /"upserts": *[0-9]+/)             { split(substr($0, RSTART, RLENGTH), a, ": *"); ups = a[2] + 0 }
    END {
      if (ups < 1) {
        printf("no upserts were absorbed; the record is empty\n") > "/dev/stderr"
        exit 1
      }
      if (p99 > p99max) {
        printf("upsert p99 %.2f ms over the %.0f ms freshness bound\n", p99, p99max) > "/dev/stderr"
        exit 1
      }
      if (allocs != 0) {
        printf("merged read path allocates (%.4f allocs/read), want 0\n", allocs) > "/dev/stderr"
        exit 1
      }
      if (rdelta > 0.005) {
        printf("incrementally grown graph drifted %.4f recall from a rebuild, want <= 0.005\n", rdelta) > "/dev/stderr"
        exit 1
      }
      printf("update gate ok: upsert p99 %.3f ms, 0 allocs/merged read, recall within %.4f of rebuild over %d upserts\n", p99, rdelta, ups)
    }
  ' "$UPDATE_JSON"
elif [ -f "$UPDATE_JSON" ]; then
  skipped update "$UPDATE_JSON" "stale (>60 min)"
else
  skipped update "$UPDATE_JSON" "absent (run scripts/bench-update.sh)"
fi

if [ ! -f "$BASELINE" ] || ! grep -q '^Benchmark' "$BASELINE"; then
  echo "baseline missing or empty; skipping compare"
  exit 0
fi
if [ ! -f "$LATEST" ] || ! grep -q '^Benchmark' "$LATEST"; then
  echo "benchmarks/latest.txt missing; run scripts/bench.sh first" >&2
  exit 1
fi

if command -v benchstat >/dev/null 2>&1; then
  OUT="$(benchstat "$BASELINE" "$LATEST")"
  echo "$OUT"
  echo "$OUT" > benchmarks/compare.txt
  # Gate on the time (sec/op) section only: -benchmem runs also emit
  # B/op and allocs/op sections, and geomean summary rows, which must
  # not trip a *time* regression gate.
  echo "$OUT" | awk -v thr="$THRESHOLD" '
    /sec\/op/ { insec = 1 }
    /B\/op/ || /allocs\/op/ { insec = 0 }
    insec && !/^geomean/ && match($0, /\+[0-9.]+%/) {
      val = substr($0, RSTART + 1, RLENGTH - 2) + 0
      if (val > thr) {
        printf("time regression > %s%%: %s\n", thr, $0) > "/dev/stderr"
        fail = 1
      }
    }
    END { exit fail }
  '
else
  # Fallback: average ns/op per benchmark name, then diff.
  avg() {
    awk '/^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      sum[name] += $3; n[name]++
    }
    END { for (b in sum) printf("%s %.2f\n", b, sum[b] / n[b]) }' "$1" | sort
  }
  join <(avg "$BASELINE") <(avg "$LATEST") | tee benchmarks/compare.txt |
    awk -v thr="$THRESHOLD" '{
      delta = ($3 - $2) / $2 * 100
      printf("%-50s %12.0f -> %12.0f ns/op  %+.1f%%\n", $1, $2, $3, delta)
      if (delta > thr) {
        printf("regression > %s%%: %s\n", thr, $1) > "/dev/stderr"
        fail = 1
      }
    }
    END { exit fail }'
fi
