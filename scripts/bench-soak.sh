#!/usr/bin/env bash
# Run the fault-injection soak (cmd/soak) race-enabled against the
# hardened serving daemon and record benchmarks/BENCH_soak.json — the
# operational-hardening tracker gated by scripts/bench-compare.sh and
# CI. The soak must provoke and survive every fault class (413, 429,
# 500, 503, slow loris, corrupt snapshot reload) with zero failed
# well-formed requests; cmd/soak itself exits non-zero on any violation,
# and the JSON gate repeats the checks on the record.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${SOAK_SCALE:-0.02}"
WORKERS="${SOAK_WORKERS:-4}"
DURATION="${SOAK_DURATION:-30s}"
CLIENTS="${SOAK_CLIENTS:-8}"

mkdir -p benchmarks
go run -race ./cmd/soak -scale "$SCALE" -workers "$WORKERS" \
  -duration "$DURATION" -clients "$CLIENTS" \
  -json benchmarks/BENCH_soak.json
echo "wrote benchmarks/BENCH_soak.json"
