// Benchmarks regenerating every table and figure of the paper at reduced
// scale. Each table/figure has at least one testing.B entry; the
// cmd/c2bench binary runs the same code paths at arbitrary scales with
// full paper-style reports. See EXPERIMENTS.md for paper-vs-measured
// notes.
package c2knn_test

import (
	"testing"

	"c2knn"
	"c2knn/internal/core"
	"c2knn/internal/experiments"
	"c2knn/internal/frh"
	"c2knn/internal/hyrec"
	"c2knn/internal/lsh"
	"c2knn/internal/nndescent"
	"c2knn/internal/recommend"
	"c2knn/internal/similarity"
)

// benchEnv is shared across benchmarks so datasets and exact graphs are
// generated once per `go test -bench` process.
var benchEnv = &experiments.Env{
	Scale:    0.02,
	MinUsers: 1200,
	Workers:  2,
	K:        30,
	Folds:    2,
	Seed:     42,
}

// --- Table I ---------------------------------------------------------

func BenchmarkTable1DatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := &experiments.Env{Scale: 0.02, MinUsers: 1200, Seed: int64(42 + i)}
		if _, err := env.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table II / Fig 4 / Fig 5 ---------------------------------------
// One benchmark per algorithm on a dense (ml10M) and a sparse (AM)
// dataset: the per-algorithm build is the quantity Table II times.

func benchAlgo(b *testing.B, name, algo string) {
	b.Helper()
	p := benchEnv.MustPrepare(name)
	bb, t, n := benchEnv.C2Params(name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch algo {
		case "C2":
			core.Build(p.Data, p.GF, core.Options{
				K: benchEnv.K, B: bb, T: t, MaxClusterSize: n,
				Workers: benchEnv.Workers, Seed: benchEnv.Seed,
			})
		case "Hyrec":
			hyrec.Build(p.Data.NumUsers(), p.GF, hyrec.Options{
				K: benchEnv.K, Workers: benchEnv.Workers, Seed: benchEnv.Seed,
			})
		case "NNDescent":
			nndescent.Build(p.Data.NumUsers(), p.GF, nndescent.Options{
				K: benchEnv.K, Workers: benchEnv.Workers, Seed: benchEnv.Seed,
			})
		case "LSH":
			lsh.Build(p.Data, p.GF, lsh.Options{
				K: benchEnv.K, Workers: benchEnv.Workers, Seed: benchEnv.Seed,
			})
		}
	}
}

func BenchmarkTable2C2ML10M(b *testing.B)        { benchAlgo(b, "ml10M", "C2") }
func BenchmarkTable2HyrecML10M(b *testing.B)     { benchAlgo(b, "ml10M", "Hyrec") }
func BenchmarkTable2NNDescentML10M(b *testing.B) { benchAlgo(b, "ml10M", "NNDescent") }
func BenchmarkTable2LSHML10M(b *testing.B)       { benchAlgo(b, "ml10M", "LSH") }
func BenchmarkTable2C2AM(b *testing.B)           { benchAlgo(b, "AM", "C2") }
func BenchmarkTable2HyrecAM(b *testing.B)        { benchAlgo(b, "AM", "Hyrec") }
func BenchmarkTable2LSHAM(b *testing.B)          { benchAlgo(b, "AM", "LSH") }

// --- Table III -------------------------------------------------------

func BenchmarkTable3RecommendC2(b *testing.B) {
	p := benchEnv.MustPrepare("ml1M")
	folds := recommend.Split(p.Data, 5, benchEnv.Seed)
	f := folds[0]
	gf := p.GF
	g, _ := core.Build(f.Train, gf, core.Options{
		K: benchEnv.K, Workers: benchEnv.Workers, Seed: benchEnv.Seed,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recommend.EvalRecall(f, g, 30, benchEnv.Workers)
	}
}

// --- Table IV --------------------------------------------------------

func BenchmarkTable4C2MinHashML10M(b *testing.B) {
	p := benchEnv.MustPrepare("ml10M")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(p.Data, p.GF, core.Options{
			K: benchEnv.K, T: 8, UseMinHash: true,
			Workers: benchEnv.Workers, Seed: benchEnv.Seed,
		})
	}
}

func BenchmarkTable4C2FRHML10M(b *testing.B) { benchAlgo(b, "ml10M", "C2") }

// --- Table V ---------------------------------------------------------

func BenchmarkTable5C2RawJaccard(b *testing.B) {
	p := benchEnv.MustPrepare("ml10M")
	bb, t, n := benchEnv.C2Params("ml10M")
	raw := similarity.NewJaccard(p.Data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(p.Data, raw, core.Options{
			K: benchEnv.K, B: bb, T: t, MaxClusterSize: n,
			Workers: benchEnv.Workers, Seed: benchEnv.Seed,
		})
	}
}

func BenchmarkTable5C2GoldFinger(b *testing.B) { benchAlgo(b, "ml10M", "C2") }

// --- Fig 6 -----------------------------------------------------------

func benchFig6(b *testing.B, bb, t int) {
	p := benchEnv.MustPrepare("ml10M")
	n := benchEnv.ScaledN(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(p.Data, p.GF, core.Options{
			K: benchEnv.K, B: bb, T: t, MaxClusterSize: n,
			Workers: benchEnv.Workers, Seed: benchEnv.Seed,
		})
	}
}

func BenchmarkFig6B512T1(b *testing.B)   { benchFig6(b, 512, 1) }
func BenchmarkFig6B512T8(b *testing.B)   { benchFig6(b, 512, 8) }
func BenchmarkFig6B2048T8(b *testing.B)  { benchFig6(b, 2048, 8) }
func BenchmarkFig6B8192T8(b *testing.B)  { benchFig6(b, 8192, 8) }
func BenchmarkFig6B8192T10(b *testing.B) { benchFig6(b, 8192, 10) }

// --- Fig 7 -----------------------------------------------------------

func benchFig7(b *testing.B, n int) {
	p := benchEnv.MustPrepare("ml10M")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(p.Data, p.GF, core.Options{
			K: benchEnv.K, B: 4096, T: 8, MaxClusterSize: benchEnv.ScaledN(n),
			Workers: benchEnv.Workers, Seed: benchEnv.Seed,
		})
	}
}

func BenchmarkFig7N500(b *testing.B)   { benchFig7(b, 500) }
func BenchmarkFig7N3000(b *testing.B)  { benchFig7(b, 3000) }
func BenchmarkFig7N10000(b *testing.B) { benchFig7(b, 10000) }

// --- Fig 8 -----------------------------------------------------------

func benchFig8(b *testing.B, maxSize int) {
	p := benchEnv.MustPrepare("ml10M")
	h := frh.NewHasher(p.Data.NumItems, frh.Options{B: 4096, T: 8, Seed: benchEnv.Seed})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clusters, _ := frh.BuildWithHasher(p.Data, h, frh.Options{
			B: 4096, T: 8, MaxSize: maxSize, Seed: benchEnv.Seed,
		})
		frh.TopSizes(clusters, 100)
	}
}

func BenchmarkFig8Raw(b *testing.B)      { benchFig8(b, -1) }
func BenchmarkFig8Split500(b *testing.B) { benchFig8(b, benchEnv.ScaledN(500)) }

// --- §III theory -----------------------------------------------------

func BenchmarkTheoryValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := &experiments.Env{Scale: 0.02, MinUsers: 400, Seed: int64(7 + i)}
		if _, err := env.Theory(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design choices from DESIGN.md) -----------------------

func benchAblation(b *testing.B, mutate func(*core.Options)) {
	p := benchEnv.MustPrepare("ml10M")
	bb, t, n := benchEnv.C2Params("ml10M")
	opts := core.Options{
		K: benchEnv.K, B: bb, T: t, MaxClusterSize: n,
		Workers: benchEnv.Workers, Seed: benchEnv.Seed,
	}
	mutate(&opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(p.Data, p.GF, opts)
	}
}

func BenchmarkAblationNoSplitting(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.DisableSplitting = true })
}

func BenchmarkAblationFIFOScheduling(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.Scheduling = core.ScheduleFIFO })
}

func BenchmarkAblationForceHyrec(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.LocalSolver = core.SolverHyrec })
}

// --- Similarity estimator comparison (GoldFinger vs alternatives) ----
// GoldFinger's pitch (§II-F) is being faster than minwise signatures at
// equal quality; these benches quantify the per-call gap on this
// hardware.

func benchEstimator(b *testing.B, sim similarity.Provider, n int32) {
	b.Helper()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		u := int32(i) % n
		v := (u + 1) % n
		acc += sim.Sim(u, v)
	}
	_ = acc
}

func BenchmarkEstimatorGoldFinger1024(b *testing.B) {
	p := benchEnv.MustPrepare("ml10M")
	benchEstimator(b, p.GF, int32(p.Data.NumUsers()))
}

func BenchmarkEstimatorRawJaccard(b *testing.B) {
	p := benchEnv.MustPrepare("ml10M")
	benchEstimator(b, similarity.NewJaccard(p.Data), int32(p.Data.NumUsers()))
}

func BenchmarkEstimatorBBitMinHash(b *testing.B) {
	p := benchEnv.MustPrepare("ml10M")
	sim, err := c2knn.NewBBitMinHash(p.Data, 8, 128)
	if err != nil {
		b.Fatal(err)
	}
	benchEstimator(b, sim, int32(p.Data.NumUsers()))
}

func BenchmarkEstimatorBloom(b *testing.B) {
	p := benchEnv.MustPrepare("ml10M")
	sim, err := c2knn.NewBloomProfiles(p.Data, 1024, 2)
	if err != nil {
		b.Fatal(err)
	}
	benchEstimator(b, sim, int32(p.Data.NumUsers()))
}
