package hyrec

import (
	"math"
	"math/rand"
	"testing"

	"c2knn/internal/bruteforce"
	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/knng"
	"c2knn/internal/sets"
	"c2knn/internal/similarity"
)

// ringSim builds a smooth 1-D similarity landscape: users close on a ring
// are similar. Greedy refinement should navigate it near-perfectly.
func ringSim(n int) similarity.Provider {
	return similarity.Func(func(u, v int32) float64 {
		d := math.Abs(float64(u - v))
		if d > float64(n)/2 {
			d = float64(n) - d
		}
		return 1 / (1 + d)
	})
}

func TestBuildConvergesOnRing(t *testing.T) {
	const n, k = 300, 8
	p := ringSim(n)
	g, res := Build(n, p, Options{K: k, Seed: 1, Workers: 2})
	exact := bruteforce.Build(n, k, p, 2)
	q := knng.Quality(g, exact, p)
	if q < 0.95 {
		t.Errorf("quality on ring = %.3f, want ≥ 0.95 (converged greedy)", q)
	}
	if res.Iterations == 0 {
		t.Error("no iterations recorded")
	}
	if len(res.Updates) != res.Iterations {
		t.Errorf("updates len %d != iterations %d", len(res.Updates), res.Iterations)
	}
}

func TestBuildBeatsRandomStart(t *testing.T) {
	const n, k = 200, 5
	p := ringSim(n)
	random := knng.New(n, k)
	knng.RandomInit(random, p, 1)
	g, _ := Build(n, p, Options{K: k, Seed: 1})
	if g.AvgStoredSim() <= random.AvgStoredSim() {
		t.Errorf("refined avg sim %.4f not better than random %.4f",
			g.AvgStoredSim(), random.AvgStoredSim())
	}
}

func TestMaxIterRespected(t *testing.T) {
	const n = 150
	p := ringSim(n)
	_, res := Build(n, p, Options{K: 5, MaxIter: 2, Seed: 1})
	if res.Iterations > 2 {
		t.Errorf("iterations = %d, want ≤ 2", res.Iterations)
	}
}

func TestDeltaTermination(t *testing.T) {
	const n = 150
	p := ringSim(n)
	// A huge delta makes the very first iteration "not enough updates".
	_, res := Build(n, p, Options{K: 5, Delta: 1e9, Seed: 1})
	if res.Iterations != 1 || !res.Converged {
		t.Errorf("huge delta: iterations=%d converged=%v, want 1/true", res.Iterations, res.Converged)
	}
}

func TestBuildDegenerate(t *testing.T) {
	p := ringSim(3)
	g, _ := Build(0, p, Options{K: 3})
	if g.NumUsers() != 0 {
		t.Error("empty population mishandled")
	}
	g, _ = Build(1, p, Options{K: 3})
	if g.Lists[0].Len() != 0 {
		t.Error("singleton population should have no edges")
	}
	g, _ = Build(3, p, Options{K: 5, Seed: 1})
	for u := 0; u < 3; u++ {
		if g.Lists[u].Len() != 2 {
			t.Errorf("user %d degree %d, want 2", u, g.Lists[u].Len())
		}
	}
}

func TestLocalOperatesOnGlobalIDs(t *testing.T) {
	// A cluster of users scattered over a large id space.
	ids := []int32{1000, 1003, 1006, 1009, 1012, 1015, 1018, 1021}
	p := similarity.Func(func(u, v int32) float64 {
		d := math.Abs(float64(u - v))
		return 1 / (1 + d)
	})
	lists := Local(ids, 3, p, Options{Seed: 2})
	if len(lists) != len(ids) {
		t.Fatalf("got %d lists", len(lists))
	}
	valid := make(map[int32]bool)
	for _, id := range ids {
		valid[id] = true
	}
	for i, l := range lists {
		for _, nb := range l.H {
			if !valid[nb.ID] {
				t.Fatalf("list %d holds non-cluster id %d", i, nb.ID)
			}
			if nb.ID == ids[i] {
				t.Fatalf("list %d holds self", i)
			}
			if want := p.Sim(ids[i], nb.ID); nb.Sim != want {
				t.Errorf("list %d: sim %v, want %v", i, nb.Sim, want)
			}
		}
	}
}

// TestLocalSmallClusterExact: on a cluster comfortably covered by the
// iteration budget, Local should essentially match brute force.
func TestLocalSmallClusterExact(t *testing.T) {
	ids := make([]int32, 60)
	for i := range ids {
		ids[i] = int32(i * 7)
	}
	p := similarity.Func(func(u, v int32) float64 {
		d := math.Abs(float64(u - v))
		return 1 / (1 + d/7)
	})
	got := Local(ids, 5, p, Options{Seed: 3})
	want := bruteforce.Local(ids, 5, p)
	match, total := 0, 0
	for i := range ids {
		wantSet := make(map[int32]bool)
		for _, nb := range want[i].H {
			wantSet[nb.ID] = true
		}
		for _, nb := range got[i].H {
			total++
			if wantSet[nb.ID] {
				match++
			}
		}
	}
	if rate := float64(match) / float64(total); rate < 0.9 {
		t.Errorf("local hyrec matches brute force on %.2f of edges, want ≥ 0.9", rate)
	}
}

func TestWorkerCountStability(t *testing.T) {
	// Different worker counts may produce slightly different graphs (ties,
	// iteration interleaving) but quality must stay equivalent.
	const n, k = 250, 6
	p := ringSim(n)
	exact := bruteforce.Build(n, k, p, 2)
	g1, _ := Build(n, p, Options{K: k, Seed: 4, Workers: 1})
	g4, _ := Build(n, p, Options{K: k, Seed: 4, Workers: 4})
	q1 := knng.Quality(g1, exact, p)
	q4 := knng.Quality(g4, exact, p)
	if math.Abs(q1-q4) > 0.05 {
		t.Errorf("quality varies too much with workers: %.3f vs %.3f", q1, q4)
	}
}

func TestSimBound(t *testing.T) {
	if got := SimBound(100, 30, 5); got != 5*30*30*100/2 {
		t.Errorf("SimBound = %d", got)
	}
}

func BenchmarkBuildRing500(b *testing.B) {
	p := ringSim(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(500, p, Options{K: 10, Seed: 1, Workers: 2})
	}
}

// TestLocalIntoScratchReuse: running many clusters through one reused
// Scratch must produce exactly the lists a fresh-scratch Local call
// produces — stale snapshots, marks, or heap storage must never leak
// from one cluster into the next.
func TestLocalIntoScratchReuse(t *testing.T) {
	p := similarity.Func(func(u, v int32) float64 {
		d := math.Abs(float64(u - v))
		return 1 / (1 + d/5)
	})
	var loc similarity.Local
	var s Scratch
	for trial := 0; trial < 6; trial++ {
		m := 10 + (trial*31)%70
		ids := make([]int32, m)
		for i := range ids {
			ids[i] = int32(trial*7 + i*2)
		}
		o := Options{Seed: int64(trial)}
		similarity.GatherInto(p, ids, &loc)
		got := LocalInto(&loc, 6, o, &s)
		want := Local(ids, 6, p, Options{Seed: int64(trial)})
		for i := range want {
			if len(got[i].H) != len(want[i].H) {
				t.Fatalf("trial %d list %d: %d neighbors, want %d", trial, i, len(got[i].H), len(want[i].H))
			}
			for j := range want[i].H {
				if got[i].H[j].ID != want[i].H[j].ID || got[i].H[j].Sim != want[i].H[j].Sim {
					t.Fatalf("trial %d list %d slot %d: (%d,%v) vs (%d,%v)", trial, i, j,
						got[i].H[j].ID, got[i].H[j].Sim, want[i].H[j].ID, want[i].H[j].Sim)
				}
			}
		}
	}
}

// TestLocalDeterministic: the epoch-stamped candidate set iterates in
// insertion order, so local Hyrec is fully deterministic (the old
// map-based candidate set was not).
func TestLocalDeterministic(t *testing.T) {
	ids := make([]int32, 80)
	for i := range ids {
		ids[i] = int32(i * 3)
	}
	p := similarity.Func(func(u, v int32) float64 {
		return float64((int64(u)*2654435761+int64(v)*40503)%1000) / 1000
	})
	a := Local(ids, 7, p, Options{Seed: 5})
	b := Local(ids, 7, p, Options{Seed: 5})
	for i := range a {
		for j := range a[i].H {
			if a[i].H[j] != b[i].H[j] {
				t.Fatalf("list %d slot %d differs across identical runs", i, j)
			}
		}
	}
}

// TestLocalIntoDegenerateKernelTerminates: a kernel yielding NaN for
// every pair must leave LocalInto with empty lists, not spin its random
// init forever (knng.List.Insert rejects degenerate similarities).
func TestLocalIntoDegenerateKernelTerminates(t *testing.T) {
	nan := similarity.Func(func(u, v int32) float64 { return math.NaN() })
	ids := make([]int32, 40)
	for i := range ids {
		ids[i] = int32(i)
	}
	var loc similarity.Local
	similarity.GatherInto(nan, ids, &loc)
	var s Scratch
	lists := LocalInto(&loc, 5, Options{MaxIter: 3, Seed: 1}, &s)
	for i := range lists {
		if lists[i].Len() != 0 {
			t.Fatalf("local user %d retained %d NaN edges", i, lists[i].Len())
		}
	}
}

// TestLocalIntoBlockedMatchesScalar: the batched candidate scoring with
// threshold-gated inserts must leave lists bit-identical to the frozen
// pair-at-a-time refinement on fixed seeds — the random init consumes
// the same draw sequence and every gated-out candidate is one Insert
// would have rejected, so iteration counts and update totals coincide
// too.
func TestLocalIntoBlockedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	profiles := make([][]int32, 400)
	for i := range profiles {
		p := make([]int32, rng.Intn(45))
		for j := range p {
			p[j] = int32(rng.Intn(2200))
		}
		profiles[i] = sets.Normalize(p)
	}
	d := dataset.New("hyblocked", profiles, 2200)
	providers := []similarity.Provider{
		goldfinger.MustNew(d, 1024, 13),
		goldfinger.MustNew(d, 192, 13), // 3 words: unroll tail
		similarity.NewJaccard(d),
		ringSim(len(profiles)),
	}
	var loc similarity.Local
	var sBlocked, sScalar Scratch
	for pi, p := range providers {
		for trial := 0; trial < 4; trial++ {
			m := 40 + rng.Intn(260)
			perm := rng.Perm(len(profiles))
			ids := make([]int32, m)
			for i := range ids {
				ids[i] = int32(perm[i])
			}
			o := Options{Delta: 0.001, MaxIter: 4, Seed: int64(1000*pi + trial)}
			similarity.GatherInto(p, ids, &loc)
			want := LocalIntoScalar(&loc, 20, o, &sScalar)
			similarity.GatherInto(p, ids, &loc)
			got := LocalInto(&loc, 20, o, &sBlocked)
			for i := range got {
				if len(got[i].H) != len(want[i].H) {
					t.Fatalf("provider %d trial %d list %d: %d neighbors vs %d",
						pi, trial, i, len(got[i].H), len(want[i].H))
				}
				for j := range got[i].H {
					if got[i].H[j] != want[i].H[j] {
						t.Fatalf("provider %d trial %d list %d slot %d: %+v vs %+v",
							pi, trial, i, j, got[i].H[j], want[i].H[j])
					}
				}
			}
		}
	}
}
