// Package hyrec implements Hyrec (Boutet et al., Middleware 2014), the
// state-of-the-art greedy KNN-graph algorithm the paper uses both as a
// standalone competitor and as Cluster-and-Conquer's local solver for
// large clusters. Starting from a random k-degree graph, each iteration
// compares every user u against its neighbors-of-neighbors and keeps the k
// best; iteration stops when fewer than δ·k·n updates occur or after a
// fixed number of iterations (§IV-B2).
package hyrec

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"c2knn/internal/knng"
	"c2knn/internal/similarity"
)

// Options parameterizes a Hyrec run. Zero fields take the paper's
// defaults.
type Options struct {
	// K is the neighborhood size (default 30).
	K int
	// Delta is the termination threshold: stop when an iteration performs
	// fewer than Delta·K·n updates (default 0.001).
	Delta float64
	// MaxIter caps the number of iterations (default 30, §IV-C).
	MaxIter int
	// Workers sizes the worker pool (default 1).
	Workers int
	// Seed drives the random initial graph.
	Seed int64
}

func (o *Options) setDefaults() {
	if o.K == 0 {
		o.K = 30
	}
	if o.Delta == 0 {
		o.Delta = 0.001
	}
	if o.MaxIter == 0 {
		o.MaxIter = 30
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
}

// Result reports how a run unfolded.
type Result struct {
	// Iterations is the number of refinement passes executed.
	Iterations int
	// Updates records the number of neighborhood changes per iteration.
	Updates []int
	// Converged is true when the run stopped on the δ·k·n criterion
	// rather than on MaxIter.
	Converged bool
}

// Build constructs an approximate KNN graph over users 0..n-1.
func Build(n int, p similarity.Provider, o Options) (*knng.Graph, Result) {
	o.setDefaults()
	g := knng.New(n, o.K)
	knng.RandomInit(g, p, o.Seed)
	res := refine(g, p, o)
	return g, res
}

// Refine runs Hyrec's iteration on an already-initialized graph; C² does
// not use this directly but it supports warm-started experiments.
func Refine(g *knng.Graph, p similarity.Provider, o Options) Result {
	o.setDefaults()
	return refine(g, p, o)
}

// denseSet deduplicates candidate ids over a dense 0..n-1 universe
// using epoch stamps: mark[v] == epoch means v is already present this
// round, so begin resets the set in O(1). It replaces the per-user
// map[int32]struct{} of earlier versions; unlike map iteration, cand
// preserves insertion order, making candidate generation deterministic.
type denseSet struct {
	mark  []uint32
	epoch uint32
	cand  []int32
}

// resize prepares the set for a universe of n members, reusing prior
// storage when possible.
func (d *denseSet) resize(n int) {
	if cap(d.mark) < n {
		d.mark = make([]uint32, n)
		d.epoch = 0
	} else {
		d.mark = d.mark[:n]
	}
}

// begin starts a new round, discarding the previous round's members.
func (d *denseSet) begin() {
	d.epoch++
	if d.epoch == 0 { // wrapped: all stamps are stale
		// Clear the full capacity: slots beyond the current universe
		// may hold pre-wrap stamps a later resize would re-expose.
		clear(d.mark[:cap(d.mark)])
		d.epoch = 1
	}
	d.cand = d.cand[:0]
}

// stamp marks v as present without collecting it as a candidate.
func (d *denseSet) stamp(v int32) { d.mark[v] = d.epoch }

// add collects v unless already present.
func (d *denseSet) add(v int32) {
	if d.mark[v] != d.epoch {
		d.mark[v] = d.epoch
		d.cand = append(d.cand, v)
	}
}

// collectCandidates stamps u's current neighborhood and gathers u's
// neighbors-of-neighbors into ds.cand: through a fresh u→v edge all of
// v's neighbors qualify, through a stale edge only v's fresh neighbors
// do (the new-flag optimization). The caller must have called ds.begin
// and stamped u itself.
func collectCandidates(ds *denseSet, allSnap, newSnap [][]int32, u int) {
	for _, v := range allSnap[u] {
		ds.stamp(v)
	}
	for _, v := range newSnap[u] {
		for _, w2 := range allSnap[v] {
			ds.add(w2)
		}
	}
	for _, v := range allSnap[u] {
		for _, w2 := range newSnap[v] {
			ds.add(w2)
		}
	}
}

// refine is the core loop shared by Build and Local. It uses the standard
// new-flag optimization: a pair (u, w) reached through v is evaluated only
// if the edge u→v or the edge v→w appeared during the previous iteration,
// so converged regions stop paying for candidate generation.
func refine(g *knng.Graph, p similarity.Provider, o Options) Result {
	n := g.NumUsers()
	res := Result{}
	if n < 2 {
		return res
	}
	threshold := int64(o.Delta * float64(o.K) * float64(n))
	shared := knng.NewShared(g)
	allSnap := make([][]int32, n)
	newSnap := make([][]int32, n)
	// One dense candidate set per worker; the sets persist across
	// iterations (worker w always strides from w), so the O(n) zeroing
	// is paid once per run, not per iteration.
	sets := make([]denseSet, o.Workers)
	for w := range sets {
		sets[w].resize(n)
	}
	for iter := 0; iter < o.MaxIter; iter++ {
		// Snapshot neighborhoods and consume the New flags set during the
		// previous iteration.
		for u := 0; u < n; u++ {
			allSnap[u] = g.Lists[u].IDs(allSnap[u][:0])
			newSnap[u] = g.Lists[u].ResetNew(newSnap[u][:0])
		}
		var updates atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < o.Workers; w++ {
			wg.Add(1)
			go func(ds *denseSet, start int) {
				defer wg.Done()
				for u := start; u < n; u += o.Workers {
					uid := int32(u)
					// Pre-stamp self and u's snapshot so they never enter
					// the candidate list; the snapshot is immutable during
					// the iteration so this read is race-free (Insert
					// re-checks under the stripe lock).
					ds.begin()
					ds.stamp(uid)
					collectCandidates(ds, allSnap, newSnap, u)
					for _, w2 := range ds.cand {
						s := p.Sim(uid, w2)
						ok1 := shared.Insert(uid, w2, s)
						ok2 := shared.Insert(w2, uid, s)
						if ok1 {
							updates.Add(1)
						}
						if ok2 {
							updates.Add(1)
						}
					}
				}
			}(&sets[w], w)
		}
		wg.Wait()
		res.Iterations++
		u := int(updates.Load())
		res.Updates = append(res.Updates, u)
		if int64(u) < threshold {
			res.Converged = true
			break
		}
	}
	return res
}

// Scratch holds the reusable per-worker state of LocalInto: the local
// neighbor lists, the per-iteration snapshots, the epoch-stamped dense
// candidate set, the scored candidate row of the batched refinement,
// and the RNG. The zero value is ready to use; reusing one Scratch
// across clusters makes steady-state solving allocation-free.
type Scratch struct {
	lists   []knng.List
	allSnap [][]int32
	newSnap [][]int32
	set     denseSet
	row     []float64
	mins    []float64
	rng     *rand.Rand
}

// reuseRows recycles a slice of row buffers, preserving the capacity of
// previously grown rows.
func reuseRows(rows [][]int32, n int) [][]int32 {
	if cap(rows) < n {
		grown := make([][]int32, n)
		copy(grown, rows[:cap(rows)])
		return grown
	}
	return rows[:n]
}

// LocalInto runs Hyrec restricted to the gathered cluster loc: the
// candidate universe is loc's members, similarities are served by loc's
// zero-dispatch kernel on local indices, and the returned lists
// (parallel to loc.IDs()) reference global ids. The lists alias s's
// scratch and are valid only until the next LocalInto call on s. This
// is C²'s local solver for clusters at least ρ·k² strong; it is
// sequential (o.Workers is ignored) — parallelism comes from processing
// many clusters at once.
func LocalInto(loc *similarity.Local, k int, o Options, s *Scratch) []knng.List {
	return localInto(loc, k, o, s, refineLocal)
}

// LocalIntoScalar is LocalInto on the frozen pair-at-a-time refinement
// loop (refineLocalScalar) instead of the batched one. It exists for
// the blocked-vs-scalar equivalence tests and the BenchmarkLocalSolve*
// regression family; production callers use LocalInto.
func LocalIntoScalar(loc *similarity.Local, k int, o Options, s *Scratch) []knng.List {
	return localInto(loc, k, o, s, refineLocalScalar)
}

func localInto(loc *similarity.Local, k int, o Options, s *Scratch,
	refineFn func(*similarity.Local, []knng.List, Options, *Scratch)) []knng.List {
	o.K = k
	o.setDefaults()
	m := loc.Len()
	s.lists = knng.ReuseLists(s.lists, m, k)
	lists := s.lists
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(o.Seed))
	} else {
		s.rng.Seed(o.Seed)
	}
	// Random k-degree start over local indices; knng.FillRandom is the
	// same loop RandomInit runs, so a given seed yields the same draw
	// sequence, and its reject bound keeps a kernel yielding degenerate
	// sims from hanging the worker.
	knng.FillRandom(lists, s.rng, loc.Sim)
	refineFn(loc, lists, o, s)
	for i := range lists {
		h := lists[i].H
		for x := range h {
			h[x].ID = loc.ID(int(h[x].ID))
		}
	}
	return lists
}

// refineLocal is the sequential, allocation-free counterpart of refine
// for cluster-local graphs: no stripe locks, no atomics, candidates
// deduplicated through the scratch's epoch-stamped dense set. Each
// user's candidate batch is scored in one SimBatch call into the
// scratch row, then offered to both endpoints' lists behind a dense
// threshold gate: mins[v] mirrors lists[v].Min() across the whole
// refinement, so a below-threshold candidate costs one compare of two
// scratch reads instead of an Insert call chasing into the target
// list's heap. The gate is conservative-exact (mins is -1 while a list
// has room; Insert still arbitrates duplicates and degenerate sims), so
// candidate order, tie-breaking, and the per-iteration update count
// match the pair-at-a-time reference (refineLocalScalar) exactly.
func refineLocal(loc *similarity.Local, lists []knng.List, o Options, s *Scratch) {
	m := len(lists)
	if m < 2 {
		return
	}
	threshold := int64(o.Delta * float64(o.K) * float64(m))
	s.allSnap = reuseRows(s.allSnap, m)
	s.newSnap = reuseRows(s.newSnap, m)
	s.set.resize(m)
	s.mins = similarity.GrowRow(s.mins, m)
	mins := s.mins
	for u := range lists {
		mins[u] = lists[u].Min() // account for the random init's inserts
	}
	for iter := 0; iter < o.MaxIter; iter++ {
		for u := 0; u < m; u++ {
			s.allSnap[u] = lists[u].IDs(s.allSnap[u][:0])
			s.newSnap[u] = lists[u].ResetNew(s.newSnap[u][:0])
		}
		updates := int64(0)
		for u := 0; u < m; u++ {
			s.set.begin()
			s.set.stamp(int32(u))
			collectCandidates(&s.set, s.allSnap, s.newSnap, u)
			cand := s.set.cand
			if len(cand) == 0 {
				continue
			}
			s.row = similarity.GrowRow(s.row, len(cand))
			row := s.row[:len(cand)]
			loc.SimBatch(u, cand, row)
			lu := &lists[u]
			minU := mins[u]
			for x, w2 := range cand {
				sim := row[x]
				if sim > minU {
					if lu.Insert(w2, sim) {
						updates++
						minU = lu.Min()
					}
				}
				if sim > mins[w2] {
					if lists[w2].Insert(int32(u), sim) {
						updates++
						mins[w2] = lists[w2].Min()
					}
				}
			}
			mins[u] = minU
		}
		if updates < threshold {
			return
		}
	}
}

// refineLocalScalar is the frozen pair-at-a-time refinement loop: one
// Sim call and two ungated Insert calls per candidate. Kept as the
// reference the batched refineLocal is proven bit-identical to and as
// the baseline of the BenchmarkLocalSolveHyrec* regression pair.
func refineLocalScalar(loc *similarity.Local, lists []knng.List, o Options, s *Scratch) {
	m := len(lists)
	if m < 2 {
		return
	}
	threshold := int64(o.Delta * float64(o.K) * float64(m))
	s.allSnap = reuseRows(s.allSnap, m)
	s.newSnap = reuseRows(s.newSnap, m)
	s.set.resize(m)
	for iter := 0; iter < o.MaxIter; iter++ {
		for u := 0; u < m; u++ {
			s.allSnap[u] = lists[u].IDs(s.allSnap[u][:0])
			s.newSnap[u] = lists[u].ResetNew(s.newSnap[u][:0])
		}
		updates := int64(0)
		for u := 0; u < m; u++ {
			s.set.begin()
			s.set.stamp(int32(u))
			collectCandidates(&s.set, s.allSnap, s.newSnap, u)
			for _, w2 := range s.set.cand {
				sim := loc.Sim(u, int(w2))
				if lists[u].Insert(w2, sim) {
					updates++
				}
				if lists[w2].Insert(int32(u), sim) {
					updates++
				}
			}
		}
		if updates < threshold {
			return
		}
	}
}

// Local runs Hyrec restricted to the users in ids, gathering p into a
// fresh cluster-local kernel first. The returned lists are parallel to
// ids and hold global ids. Hot callers (core) use LocalInto with
// per-worker scratch instead.
func Local(ids []int32, k int, p similarity.Provider, o Options) []knng.List {
	var loc similarity.Local
	similarity.GatherInto(p, ids, &loc)
	var s Scratch
	return LocalInto(&loc, k, o, &s)
}

// SimBound returns the paper's bound on the number of similarities a
// ρ-iteration Hyrec run computes on a population of size n: ρ·k²·n/2.
func SimBound(n, k, rho int) int64 {
	return int64(rho) * int64(k) * int64(k) * int64(n) / 2
}
