// Package hyrec implements Hyrec (Boutet et al., Middleware 2014), the
// state-of-the-art greedy KNN-graph algorithm the paper uses both as a
// standalone competitor and as Cluster-and-Conquer's local solver for
// large clusters. Starting from a random k-degree graph, each iteration
// compares every user u against its neighbors-of-neighbors and keeps the k
// best; iteration stops when fewer than δ·k·n updates occur or after a
// fixed number of iterations (§IV-B2).
package hyrec

import (
	"sync"
	"sync/atomic"

	"c2knn/internal/knng"
	"c2knn/internal/similarity"
)

// Options parameterizes a Hyrec run. Zero fields take the paper's
// defaults.
type Options struct {
	// K is the neighborhood size (default 30).
	K int
	// Delta is the termination threshold: stop when an iteration performs
	// fewer than Delta·K·n updates (default 0.001).
	Delta float64
	// MaxIter caps the number of iterations (default 30, §IV-C).
	MaxIter int
	// Workers sizes the worker pool (default 1).
	Workers int
	// Seed drives the random initial graph.
	Seed int64
}

func (o *Options) setDefaults() {
	if o.K == 0 {
		o.K = 30
	}
	if o.Delta == 0 {
		o.Delta = 0.001
	}
	if o.MaxIter == 0 {
		o.MaxIter = 30
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
}

// Result reports how a run unfolded.
type Result struct {
	// Iterations is the number of refinement passes executed.
	Iterations int
	// Updates records the number of neighborhood changes per iteration.
	Updates []int
	// Converged is true when the run stopped on the δ·k·n criterion
	// rather than on MaxIter.
	Converged bool
}

// Build constructs an approximate KNN graph over users 0..n-1.
func Build(n int, p similarity.Provider, o Options) (*knng.Graph, Result) {
	o.setDefaults()
	g := knng.New(n, o.K)
	knng.RandomInit(g, p, o.Seed)
	res := refine(g, p, o)
	return g, res
}

// Refine runs Hyrec's iteration on an already-initialized graph; C² does
// not use this directly but it supports warm-started experiments.
func Refine(g *knng.Graph, p similarity.Provider, o Options) Result {
	o.setDefaults()
	return refine(g, p, o)
}

// refine is the core loop shared by Build and Local. It uses the standard
// new-flag optimization: a pair (u, w) reached through v is evaluated only
// if the edge u→v or the edge v→w appeared during the previous iteration,
// so converged regions stop paying for candidate generation.
func refine(g *knng.Graph, p similarity.Provider, o Options) Result {
	n := g.NumUsers()
	res := Result{}
	if n < 2 {
		return res
	}
	threshold := int64(o.Delta * float64(o.K) * float64(n))
	shared := knng.NewShared(g)
	allSnap := make([][]int32, n)
	newSnap := make([][]int32, n)
	for iter := 0; iter < o.MaxIter; iter++ {
		// Snapshot neighborhoods and consume the New flags set during the
		// previous iteration.
		for u := 0; u < n; u++ {
			allSnap[u] = g.Lists[u].IDs(allSnap[u][:0])
			newSnap[u] = g.Lists[u].ResetNew(newSnap[u][:0])
		}
		var updates atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < o.Workers; w++ {
			wg.Add(1)
			go func(start int) {
				defer wg.Done()
				seen := make(map[int32]struct{}, o.K*o.K)
				for u := start; u < n; u += o.Workers {
					clear(seen)
					uid := int32(u)
					// Candidates through a fresh u→v edge: all of v's
					// neighbors.
					for _, v := range newSnap[u] {
						for _, w2 := range allSnap[v] {
							seen[w2] = struct{}{}
						}
					}
					// Candidates through a stale u→v edge: only v's fresh
					// neighbors.
					for _, v := range allSnap[u] {
						for _, w2 := range newSnap[v] {
							seen[w2] = struct{}{}
						}
					}
					for w2 := range seen {
						// Skip self and anything already in u's snapshot;
						// the snapshot is immutable during the iteration so
						// this read is race-free (Insert re-checks under
						// the stripe lock).
						if w2 == uid || containsID(allSnap[u], w2) {
							continue
						}
						s := p.Sim(uid, w2)
						ok1 := shared.Insert(uid, w2, s)
						ok2 := shared.Insert(w2, uid, s)
						if ok1 {
							updates.Add(1)
						}
						if ok2 {
							updates.Add(1)
						}
					}
				}
			}(w)
		}
		wg.Wait()
		res.Iterations++
		u := int(updates.Load())
		res.Updates = append(res.Updates, u)
		if int64(u) < threshold {
			res.Converged = true
			break
		}
	}
	return res
}

func containsID(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Local runs Hyrec restricted to the users in ids: the candidate universe
// is ids, similarities are evaluated through p on global ids, and the
// returned lists (parallel to ids) reference global ids. This is C²'s
// local solver for clusters at least ρ·k² strong.
func Local(ids []int32, k int, p similarity.Provider, o Options) []knng.List {
	o.K = k
	o.Workers = 1
	o.setDefaults()
	sub := &subsetProvider{ids: ids, p: p}
	g := knng.New(len(ids), k)
	knng.RandomInit(g, sub, o.Seed)
	refine(g, sub, o)
	lists := make([]knng.List, len(ids))
	for i := range lists {
		lists[i].K = k
		lists[i].H = append(lists[i].H, g.Lists[i].H...)
		for j := range lists[i].H {
			lists[i].H[j].ID = ids[lists[i].H[j].ID]
		}
	}
	return lists
}

// subsetProvider exposes a cluster as a dense 0..len(ids)-1 population.
type subsetProvider struct {
	ids []int32
	p   similarity.Provider
}

func (s *subsetProvider) Sim(u, v int32) float64 {
	return s.p.Sim(s.ids[u], s.ids[v])
}

// SimBound returns the paper's bound on the number of similarities a
// ρ-iteration Hyrec run computes on a population of size n: ρ·k²·n/2.
func SimBound(n, k, rho int) int64 {
	return int64(rho) * int64(k) * int64(k) * int64(n) / 2
}
