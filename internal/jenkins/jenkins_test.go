package jenkins

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestHash32Deterministic(t *testing.T) {
	if Hash32(42, 7) != Hash32(42, 7) {
		t.Error("Hash32 is not deterministic")
	}
	if Hash32(42, 7) == Hash32(42, 8) {
		t.Error("different seeds should (almost surely) differ on the same key")
	}
	if Hash32(42, 7) == Hash32(43, 7) {
		t.Error("different keys should (almost surely) differ under the same seed")
	}
}

// TestHash32Avalanche checks that flipping one input bit flips a healthy
// fraction of output bits on average (a weak but effective sanity check
// for a mixing function).
func TestHash32Avalanche(t *testing.T) {
	for _, hash := range []struct {
		name string
		fn   func(uint32, uint32) uint32
	}{
		{"Hash32", Hash32},
		{"OneAtATime", OneAtATime},
	} {
		t.Run(hash.name, func(t *testing.T) {
			totalFlips := 0
			samples := 0
			for key := uint32(0); key < 200; key++ {
				base := hash.fn(key*2654435761, 99)
				for bit := 0; bit < 32; bit++ {
					flipped := hash.fn(key*2654435761^(1<<bit), 99)
					totalFlips += bits.OnesCount32(base ^ flipped)
					samples++
				}
			}
			avg := float64(totalFlips) / float64(samples)
			if avg < 12 || avg > 20 {
				t.Errorf("%s: average output-bit flips per input-bit flip = %.2f, want ≈ 16", hash.name, avg)
			}
		})
	}
}

// TestHash32Uniform checks the distribution over a small modulus is
// roughly uniform — FastRandomHash relies on h(i) mod b being balanced.
func TestHash32Uniform(t *testing.T) {
	const b = 64
	const n = 64000
	counts := make([]int, b)
	for i := 0; i < n; i++ {
		counts[Hash32(uint32(i), 12345)%b]++
	}
	want := n / b
	for v, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("bucket %d has %d hits, want ≈ %d", v, c, want)
		}
	}
}

func TestFamilyDeterminism(t *testing.T) {
	f1 := NewFamily(5, 77)
	f2 := NewFamily(5, 77)
	for fn := 0; fn < 5; fn++ {
		for key := uint32(0); key < 100; key++ {
			if f1.Hash(fn, key) != f2.Hash(fn, key) {
				t.Fatalf("family not deterministic at fn=%d key=%d", fn, key)
			}
		}
	}
	if f1.Size() != 5 {
		t.Errorf("Size = %d, want 5", f1.Size())
	}
}

func TestFamilyIndependence(t *testing.T) {
	f := NewFamily(8, 3)
	seen := make(map[uint32]bool)
	for fn := 0; fn < 8; fn++ {
		s := f.Seed(fn)
		if seen[s] {
			t.Fatalf("duplicate seed %#x in family", s)
		}
		seen[s] = true
	}
}

func TestFamilyPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFamily(0, ...) should panic")
		}
	}()
	NewFamily(0, 1)
}

// TestHash32QuickDifferentiates property: two distinct (key, seed) pairs
// rarely collide.
func TestHash32QuickDifferentiates(t *testing.T) {
	collisions := 0
	trials := 0
	f := func(a, b uint32) bool {
		trials++
		if a != b && Hash32(a, 5) == Hash32(b, 5) {
			collisions++
		}
		return collisions < 3 // allow the odd birthday collision
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHash32(b *testing.B) {
	var acc uint32
	for i := 0; i < b.N; i++ {
		acc += Hash32(uint32(i), 7)
	}
	_ = acc
}

func BenchmarkOneAtATime(b *testing.B) {
	var acc uint32
	for i := 0; i < b.N; i++ {
		acc += OneAtATime(uint32(i), 7)
	}
	_ = acc
}
