// Package jenkins implements Bob Jenkins' hash functions over 32-bit keys
// (Dr. Dobb's Journal, 1997), which the paper uses as the generative hash
// functions behind FastRandomHash (§IV-E). Two primitives are provided:
// a seeded single-word mix derived from lookup3's final mixing step, and a
// Family of t independent functions obtained by drawing t seeds from a
// deterministic stream.
package jenkins

// Hash32 hashes a 32-bit key with a 32-bit seed using Jenkins' lookup3
// final() avalanche on the triple (key, seed, golden ratio). It is cheap
// (a handful of arithmetic ops) and passes simple avalanche checks, which
// is all FastRandomHash needs.
func Hash32(key, seed uint32) uint32 {
	a := key + 0x9e3779b9
	b := seed + 0x9e3779b9
	c := uint32(0xdeadbeef)
	// lookup3 final(a,b,c)
	c ^= b
	c -= rot(b, 14)
	a ^= c
	a -= rot(c, 11)
	b ^= a
	b -= rot(a, 25)
	c ^= b
	c -= rot(b, 16)
	a ^= c
	a -= rot(c, 4)
	b ^= a
	b -= rot(a, 14)
	c ^= b
	c -= rot(b, 24)
	return c
}

// OneAtATime is Jenkins' classic one-at-a-time hash over the bytes of a
// 32-bit key, seeded. Slower than Hash32; kept as an alternative family
// member and exercised by the avalanche tests.
func OneAtATime(key, seed uint32) uint32 {
	h := seed
	for i := 0; i < 4; i++ {
		h += key >> (8 * i) & 0xff
		h += h << 10
		h ^= h >> 6
	}
	h += h << 3
	h ^= h >> 11
	h += h << 15
	return h
}

func rot(x uint32, k uint) uint32 { return x<<k | x>>(32-k) }

// Family is a set of t independent seeded hash functions sharing the
// Hash32 kernel. Function i maps a key to Hash32(key, seeds[i]).
type Family struct {
	seeds []uint32
}

// NewFamily derives t seeds from masterSeed with a splitmix-style stream
// and returns the resulting family. Families built from the same
// (t, masterSeed) pair are identical.
func NewFamily(t int, masterSeed int64) *Family {
	if t <= 0 {
		panic("jenkins: family size must be positive")
	}
	seeds := make([]uint32, t)
	s := uint64(masterSeed)
	for i := range seeds {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		z ^= z >> 31
		seeds[i] = uint32(z)
	}
	return &Family{seeds: seeds}
}

// Size returns the number of functions in the family.
func (f *Family) Size() int { return len(f.seeds) }

// Hash applies function fn of the family to key.
func (f *Family) Hash(fn int, key uint32) uint32 {
	return Hash32(key, f.seeds[fn])
}

// Seed exposes the raw seed of function fn; useful for building derived
// per-function tables.
func (f *Family) Seed(fn int) uint32 { return f.seeds[fn] }
