// Package lsh implements the Locality-Sensitive-Hashing baseline of the
// paper (§IV-B3): each user is hashed into one bucket per MinHash
// function, and her neighbors are selected among users sharing a bucket.
// Following the paper's implementation choice, each hash function creates
// its own buckets ("rather than having one bucket per item"), local KNN
// lists are computed per bucket, and the per-bucket results are merged —
// the same merge machinery C² uses.
package lsh

import (
	"sort"

	"c2knn/internal/bruteforce"
	"c2knn/internal/dataset"
	"c2knn/internal/knng"
	"c2knn/internal/minhash"
	"c2knn/internal/schedule"
	"c2knn/internal/similarity"
)

// Options parameterizes an LSH run. Zero fields take the paper's
// defaults.
type Options struct {
	// K is the neighborhood size (default 30).
	K int
	// T is the number of MinHash functions (default 10, §IV-C).
	T int
	// Workers sizes the bucket-processing pool (default 1).
	Workers int
	// Seed selects the MinHash family.
	Seed int64
}

func (o *Options) setDefaults() {
	if o.K == 0 {
		o.K = 30
	}
	if o.T == 0 {
		o.T = 10
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
}

// Stats describes an LSH run.
type Stats struct {
	// Buckets is the number of non-trivial buckets (≥ 2 users) processed.
	Buckets int
	// MaxBucket is the largest bucket size — LSH's known weakness on
	// skewed datasets, the cost the paper's Table II exposes.
	MaxBucket int
	// Singletons counts users that ended alone in a bucket for some
	// function (the fragmentation effect of large item universes).
	Singletons int
}

// Build computes an approximate KNN graph of d using similarity provider
// p (typically GoldFinger estimates, as in the paper's setup where "all
// competitors use the GoldFinger compact datastructure").
func Build(d *dataset.Dataset, p similarity.Provider, o Options) (*knng.Graph, Stats) {
	o.setDefaults()
	n := d.NumUsers()
	g := knng.New(n, o.K)
	fam := minhash.New(o.T, o.Seed)

	var buckets [][]int32
	var stats Stats
	for fn := 0; fn < o.T; fn++ {
		byHash := make(map[uint32][]int32, n/2)
		for u := 0; u < n; u++ {
			v, ok := fam.Value(fn, d.Profiles[u])
			if !ok {
				continue
			}
			byHash[v] = append(byHash[v], int32(u))
		}
		// Visit buckets in sorted key order for run-to-run determinism.
		keys := make([]uint32, 0, len(byHash))
		for k := range byHash {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			users := byHash[k]
			if len(users) < 2 {
				stats.Singletons += len(users)
				continue
			}
			buckets = append(buckets, users)
			if len(users) > stats.MaxBucket {
				stats.MaxBucket = len(users)
			}
		}
	}
	stats.Buckets = len(buckets)

	shared := knng.NewShared(g)
	sizes := make([]int, len(buckets))
	for i := range buckets {
		sizes[i] = len(buckets[i])
	}
	// Per-worker scratch: buckets are gathered once into a cluster-local
	// similarity kernel and solved with reusable buffers, so steady-state
	// bucket processing allocates nothing.
	type workerScratch struct {
		loc similarity.Local
		bf  bruteforce.Scratch
	}
	scratches := make([]workerScratch, o.Workers)
	schedule.Run(o.Workers, schedule.LargestFirst(sizes), func(worker, job int) {
		ids := buckets[job]
		ws := &scratches[worker]
		similarity.GatherInto(p, ids, &ws.loc)
		lists := bruteforce.LocalInto(&ws.loc, o.K, &ws.bf)
		for i := range lists {
			shared.MergeUser(ids[i], lists[i].H)
		}
	})
	return g, stats
}
