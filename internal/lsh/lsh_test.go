package lsh

import (
	"math/rand"
	"testing"

	"c2knn/internal/bruteforce"
	"c2knn/internal/dataset"
	"c2knn/internal/knng"
	"c2knn/internal/sets"
	"c2knn/internal/similarity"
)

// blockDataset builds users in well-separated item blocks: users of the
// same block share most items, so LSH must bucket them together.
func blockDataset(blocks, perBlock, itemsPerBlock int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	profiles := make([][]int32, 0, blocks*perBlock)
	for b := 0; b < blocks; b++ {
		base := int32(b * itemsPerBlock)
		for u := 0; u < perBlock; u++ {
			n := itemsPerBlock/2 + rng.Intn(itemsPerBlock/2)
			p := make([]int32, 0, n)
			for i := 0; i < n; i++ {
				p = append(p, base+int32(rng.Intn(itemsPerBlock)))
			}
			profiles = append(profiles, sets.Normalize(p))
		}
	}
	return dataset.New("blocks", profiles, int32(blocks*itemsPerBlock))
}

func TestBuildFindsBlockNeighbors(t *testing.T) {
	d := blockDataset(6, 40, 50, 1)
	p := similarity.NewJaccard(d)
	g, stats := Build(d, p, Options{K: 10, T: 10, Workers: 2, Seed: 3})
	exact := bruteforce.Build(d.NumUsers(), 10, p, 2)
	if q := knng.Quality(g, exact, p); q < 0.85 {
		t.Errorf("LSH quality on blocks = %.3f, want ≥ 0.85", q)
	}
	if stats.Buckets == 0 {
		t.Error("no buckets processed")
	}
	if stats.MaxBucket < 2 {
		t.Error("max bucket not tracked")
	}
}

func TestNeighborsStayMeaningful(t *testing.T) {
	d := blockDataset(4, 30, 40, 2)
	p := similarity.NewJaccard(d)
	g, _ := Build(d, p, Options{K: 5, Workers: 2, Seed: 4})
	// Every found neighbor must have nonzero similarity (they shared a
	// bucket, i.e. at least the min item).
	for u := 0; u < d.NumUsers(); u++ {
		for _, nb := range g.Lists[u].H {
			if nb.Sim <= 0 {
				t.Fatalf("user %d has a zero-sim neighbor %d", u, nb.ID)
			}
			if want := p.Sim(int32(u), nb.ID); nb.Sim != want {
				t.Fatalf("stored sim %v != provider sim %v", nb.Sim, want)
			}
		}
	}
}

func TestEmptyProfilesSkipped(t *testing.T) {
	d := dataset.New("e", [][]int32{{}, {1, 2}, {1, 2, 3}}, 4)
	p := similarity.NewJaccard(d)
	g, _ := Build(d, p, Options{K: 2, Seed: 1})
	if g.Lists[0].Len() != 0 {
		t.Error("empty-profile user should have no neighbors")
	}
	if g.Lists[1].Len() == 0 {
		t.Error("users 1 and 2 share items and should be bucketed together")
	}
}

func TestDeterminism(t *testing.T) {
	d := blockDataset(3, 20, 30, 5)
	p := similarity.NewJaccard(d)
	g1, s1 := Build(d, p, Options{K: 4, Seed: 9, Workers: 1})
	g2, s2 := Build(d, p, Options{K: 4, Seed: 9, Workers: 3})
	if s1.Buckets != s2.Buckets || s1.MaxBucket != s2.MaxBucket {
		t.Errorf("stats differ across worker counts: %+v vs %+v", s1, s2)
	}
	for u := 0; u < d.NumUsers(); u++ {
		a, b := g1.Neighbors(int32(u)), g2.Neighbors(int32(u))
		if len(a) != len(b) {
			t.Fatalf("user %d: %d vs %d neighbors", u, len(a), len(b))
		}
		for i := range a {
			if a[i].Sim != b[i].Sim {
				t.Fatalf("user %d: sims differ between runs", u)
			}
		}
	}
}

func TestMoreFunctionsMoreCandidates(t *testing.T) {
	d := blockDataset(5, 25, 40, 6)
	p1 := similarity.NewCounting(similarity.NewJaccard(d))
	Build(d, p1, Options{K: 5, T: 2, Seed: 7})
	p2 := similarity.NewCounting(similarity.NewJaccard(d))
	Build(d, p2, Options{K: 5, T: 12, Seed: 7})
	if p2.Count() <= p1.Count() {
		t.Errorf("t=12 computed %d sims vs t=2's %d — more functions should mean more comparisons",
			p2.Count(), p1.Count())
	}
}
