// Package bloom implements Bloom-filter profile summaries (Bloom 1970;
// used for KNN similarity by Gorai et al. and Alaggan et al. — references
// [1], [37], [38] of the paper): each profile is inserted into an m-bit
// filter with h hash functions, and Jaccard similarity is estimated from
// the filters' bitwise AND/OR popcounts. With h=1 this degenerates to
// GoldFinger, which is exactly the comparison the GoldFinger paper makes;
// keeping both lets the benchmarks quantify why the paper's choice of a
// single hash wins on speed at equal memory.
package bloom

import (
	"fmt"
	"math"
	"math/bits"

	"c2knn/internal/dataset"
	"c2knn/internal/jenkins"
)

// Set holds one Bloom filter per user and implements
// similarity.Provider.
type Set struct {
	mBits  int
	hashes int
	words  int
	sigs   []uint64
	n      int
}

// New builds m-bit Bloom filters with h hash functions per item. m must
// be a positive multiple of 64 and h ≥ 1.
func New(d *dataset.Dataset, mBits int, h int, seed int64) (*Set, error) {
	if mBits <= 0 || mBits%64 != 0 {
		return nil, fmt.Errorf("bloom: filter size must be a positive multiple of 64, got %d", mBits)
	}
	if h < 1 {
		return nil, fmt.Errorf("bloom: need at least one hash, got %d", h)
	}
	words := mBits / 64
	fam := jenkins.NewFamily(h, seed)
	s := &Set{mBits: mBits, hashes: h, words: words, n: d.NumUsers(), sigs: make([]uint64, d.NumUsers()*words)}
	// Positions are precomputed per item across all h functions.
	pos := make([]uint32, int(d.NumItems)*h)
	for it := int32(0); it < d.NumItems; it++ {
		for fn := 0; fn < h; fn++ {
			pos[int(it)*h+fn] = fam.Hash(fn, uint32(it)) % uint32(mBits)
		}
	}
	for u, p := range d.Profiles {
		sig := s.sigs[u*words : (u+1)*words]
		for _, it := range p {
			for fn := 0; fn < h; fn++ {
				b := pos[int(it)*h+fn]
				sig[b>>6] |= 1 << (b & 63)
			}
		}
	}
	return s, nil
}

// MustNew is New, panicking on invalid parameters; for tests.
func MustNew(d *dataset.Dataset, mBits, h int, seed int64) *Set {
	s, err := New(d, mBits, h, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Sim estimates Jaccard similarity as popcount(AND)/popcount(OR) over the
// two filters. With h > 1 the same item sets h bits, which inflates both
// counts symmetrically; the estimator stays monotone in the true overlap
// (the property KNN ranking needs) though its bias grows with filter
// saturation.
func (s *Set) Sim(u, v int32) float64 {
	a := s.sigs[int(u)*s.words : (int(u)+1)*s.words]
	b := s.sigs[int(v)*s.words : (int(v)+1)*s.words]
	var inter, union int
	for i := range a {
		inter += bits.OnesCount64(a[i] & b[i])
		union += bits.OnesCount64(a[i] | b[i])
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// FalsePositiveRate returns the classic Bloom false-positive estimate
// (1 − e^{−hn/m})^h for a profile of n items — a guide for sizing m.
func (s *Set) FalsePositiveRate(n int) float64 {
	return math.Pow(1-math.Exp(-float64(s.hashes)*float64(n)/float64(s.mBits)), float64(s.hashes))
}

// Bits returns the filter width in bits.
func (s *Set) Bits() int { return s.mBits }

// Hashes returns the number of hash functions per item.
func (s *Set) Hashes() int { return s.hashes }
