package bloom

import (
	"math"
	"math/rand"
	"testing"

	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/sets"
	"c2knn/internal/similarity"
)

func TestNewValidation(t *testing.T) {
	d := dataset.New("x", [][]int32{{0}}, 1)
	for _, bad := range []int{0, -64, 100} {
		if _, err := New(d, bad, 2, 1); err == nil {
			t.Errorf("mBits=%d accepted", bad)
		}
	}
	if _, err := New(d, 128, 0, 1); err == nil {
		t.Error("h=0 accepted")
	}
}

func TestIdenticalAndDisjoint(t *testing.T) {
	d := dataset.New("id", [][]int32{{1, 5, 9}, {1, 5, 9}, {70, 80, 90}}, 100)
	s := MustNew(d, 1024, 3, 3)
	if got := s.Sim(0, 1); got != 1 {
		t.Errorf("identical profiles estimate %v, want 1", got)
	}
	if got := s.Sim(0, 2); got > 0.3 {
		t.Errorf("disjoint tiny profiles estimate %v, want ≈ 0", got)
	}
}

func TestEmptyProfiles(t *testing.T) {
	d := dataset.New("e", [][]int32{{}, {}}, 1)
	s := MustNew(d, 64, 2, 1)
	if got := s.Sim(0, 1); got != 0 {
		t.Errorf("two empty filters estimate %v, want 0", got)
	}
}

// TestMonotoneInOverlap: the estimator must rank pairs by true overlap —
// the property KNN construction needs from any similarity stand-in.
func TestMonotoneInOverlap(t *testing.T) {
	base := make([]int32, 40)
	for i := range base {
		base[i] = int32(i)
	}
	mkOverlap := func(shared int) []int32 {
		p := append([]int32(nil), base[:shared]...)
		for i := shared; i < 40; i++ {
			p = append(p, int32(1000+i))
		}
		return sets.Normalize(p)
	}
	d := dataset.New("m", [][]int32{base, mkOverlap(30), mkOverlap(10)}, 2000)
	s := MustNew(d, 1024, 2, 5)
	if s.Sim(0, 1) <= s.Sim(0, 2) {
		t.Errorf("higher overlap estimated lower: %v vs %v", s.Sim(0, 1), s.Sim(0, 2))
	}
}

// TestSingleHashMatchesGoldFinger: h=1 Bloom filters are exactly
// GoldFinger fingerprints (same bit per item under the same hash).
func TestSingleHashBehavesLikeGoldFinger(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	profiles := make([][]int32, 20)
	for i := range profiles {
		p := make([]int32, 30)
		base := rng.Intn(200)
		for j := range p {
			p[j] = int32(base + rng.Intn(100))
		}
		profiles[i] = sets.Normalize(p)
	}
	d := dataset.New("gf", profiles, 400)
	b := MustNew(d, 512, 1, 11)
	g := goldfinger.MustNew(d, 512, 11)
	// Same structure (one bit per item), same estimator — estimates agree
	// closely even though the item→bit hash differs.
	var diff float64
	n := 0
	for u := int32(0); u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			diff += math.Abs(b.Sim(u, v) - g.Sim(u, v))
			n++
		}
	}
	if mean := diff / float64(n); mean > 0.08 {
		t.Errorf("h=1 bloom vs goldfinger mean divergence %.4f, want small", mean)
	}
}

// TestAccuracyAgainstExact mirrors the GoldFinger accuracy test.
func TestAccuracyAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	profiles := make([][]int32, 30)
	for i := range profiles {
		p := make([]int32, 60)
		base := rng.Intn(500)
		for j := range p {
			p[j] = int32(base + rng.Intn(200))
		}
		profiles[i] = sets.Normalize(p)
	}
	d := dataset.New("acc", profiles, 1000)
	exact := similarity.NewJaccard(d)
	s := MustNew(d, 2048, 2, 7)
	var errSum float64
	n := 0
	for u := int32(0); u < 30; u++ {
		for v := u + 1; v < 30; v++ {
			errSum += math.Abs(s.Sim(u, v) - exact.Sim(u, v))
			n++
		}
	}
	if mean := errSum / float64(n); mean > 0.08 {
		t.Errorf("mean |estimate − exact| = %.4f, want ≤ 0.08", mean)
	}
}

func TestFalsePositiveRate(t *testing.T) {
	d := dataset.New("f", [][]int32{{0}}, 1)
	s := MustNew(d, 1024, 2, 1)
	small := s.FalsePositiveRate(10)
	big := s.FalsePositiveRate(500)
	if small >= big {
		t.Errorf("FPR should grow with load: %v vs %v", small, big)
	}
	if small < 0 || big > 1 {
		t.Error("FPR out of range")
	}
	if s.Bits() != 1024 || s.Hashes() != 2 {
		t.Error("accessors broken")
	}
}

func BenchmarkSim1024(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	profiles := make([][]int32, 2)
	for i := range profiles {
		p := make([]int32, 90)
		for j := range p {
			p[j] = int32(rng.Intn(10000))
		}
		profiles[i] = sets.Normalize(p)
	}
	s := MustNew(dataset.New("b", profiles, 10000), 1024, 2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sim(0, 1)
	}
}
