package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"

	"c2knn"
)

// testIndex builds a small C² index; seed varies the graph so swap
// tests can install genuinely different content.
func testIndex(tb testing.TB, seed int64) *c2knn.Index {
	tb.Helper()
	d, err := c2knn.Generate("ml1M", 0.03)
	if err != nil {
		tb.Fatal(err)
	}
	sim, err := c2knn.NewGoldFinger(d, 256)
	if err != nil {
		tb.Fatal(err)
	}
	g, _ := c2knn.BuildC2(d, sim, c2knn.BuildOptions{K: 8, Workers: 2, Seed: seed})
	ix, err := c2knn.NewIndex(g, d, sim)
	if err != nil {
		tb.Fatal(err)
	}
	return ix
}

func newTestServer(tb testing.TB, ix *c2knn.Index, cfg Config) (*Server, *httptest.Server) {
	tb.Helper()
	s, err := New(ix, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return s, ts
}

// replaceFile swaps in new file content via temp + rename — the only
// safe way to alter a snapshot a live epoch may have memory-mapped. An
// in-place rewrite would mutate (or, across a truncation, SIGBUS) the
// mapped views mid-serve; the rename leaves the mapped inode untouched.
func replaceFile(tb testing.TB, path string, data []byte) {
	tb.Helper()
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".test-*")
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := tmp.Write(data); err != nil {
		tb.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		tb.Fatal(err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		tb.Fatal(err)
	}
}

func getJSON(tb testing.TB, url string, out any) {
	tb.Helper()
	resp, err := http.Get(url)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		tb.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		tb.Fatalf("GET %s: decode: %v", url, err)
	}
}

func postJSON(tb testing.TB, url string, req, out any) int {
	tb.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			tb.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestServerSingleEndpointsMatchIndex(t *testing.T) {
	ix := testIndex(t, 1)
	_, ts := newTestServer(t, ix, Config{})
	for u := int32(0); u < int32(ix.NumUsers()); u += 7 {
		var rec recommendResult
		getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&n=10", ts.URL, u), &rec)
		if want := ix.Recommend(u, 10); !slices.Equal(rec.Items, emptyNotNil(want)) {
			t.Fatalf("user %d: HTTP items %v, Index.Recommend %v", u, rec.Items, want)
		}

		var nb neighborsResult
		getJSON(t, fmt.Sprintf("%s/v1/neighbors?user=%d", ts.URL, u), &nb)
		ids, sims := ix.Neighbors(u)
		if !slices.Equal(nb.IDs, emptyNotNil(ids)) || len(nb.Sims) != len(sims) {
			t.Fatalf("user %d: HTTP neighbors differ", u)
		}
		for i := range sims {
			if nb.Sims[i] != sims[i] {
				t.Fatalf("user %d: sim %d differs: %v vs %v", u, i, nb.Sims[i], sims[i])
			}
		}

		var tk topkResult
		getJSON(t, fmt.Sprintf("%s/v1/topk?user=%d&k=3", ts.URL, u), &tk)
		want := ix.TopK(u, 3)
		if len(tk.Neighbors) != len(want) {
			t.Fatalf("user %d: topk lengths differ", u)
		}
		for i, nbj := range tk.Neighbors {
			if nbj.ID != want[i].ID || nbj.Sim != want[i].Sim {
				t.Fatalf("user %d: topk[%d] = %+v, want %+v", u, i, nbj, want[i])
			}
		}
	}
	// Out-of-range users: empty results, not errors.
	var rec recommendResult
	getJSON(t, ts.URL+"/v1/recommend?user=999999&n=10", &rec)
	if len(rec.Items) != 0 {
		t.Fatalf("out-of-range user got items %v", rec.Items)
	}
}

// TestServerNeighborsHonorsK: ?k= must truncate the adjacency (its
// prefix is the top-k, since it is pre-sorted by decreasing sim).
func TestServerNeighborsHonorsK(t *testing.T) {
	ix := testIndex(t, 1)
	_, ts := newTestServer(t, ix, Config{})
	ids, sims := ix.Neighbors(3)
	if len(ids) < 3 {
		t.Skip("user 3 has too few neighbors for a truncation check")
	}
	var nb neighborsResult
	getJSON(t, ts.URL+"/v1/neighbors?user=3&k=2", &nb)
	if !slices.Equal(nb.IDs, ids[:2]) || !slices.Equal(nb.Sims, sims[:2]) {
		t.Fatalf("k=2 returned (%v, %v), want the 2-prefix of (%v, %v)", nb.IDs, nb.Sims, ids, sims)
	}
	var batch batchResponse[neighborsResult]
	if code := postJSON(t, ts.URL+"/v1/neighbors", batchRequest{Users: []int32{3}, K: 2}, &batch); code != 200 {
		t.Fatalf("batch status %d", code)
	}
	if !slices.Equal(batch.Results[0].IDs, ids[:2]) {
		t.Fatalf("batched k=2 returned %v, want %v", batch.Results[0].IDs, ids[:2])
	}
}

func TestServerBatchMatchesSerial(t *testing.T) {
	ix := testIndex(t, 1)
	_, ts := newTestServer(t, ix, Config{})
	users := []int32{0, 5, 3, 3, int32(ix.NumUsers()) + 4, 11, -2, 1}
	var rec batchResponse[recommendResult]
	if code := postJSON(t, ts.URL+"/v1/recommend", batchRequest{Users: users, N: 12}, &rec); code != 200 {
		t.Fatalf("batch recommend status %d", code)
	}
	if len(rec.Results) != len(users) {
		t.Fatalf("batch returned %d results for %d users", len(rec.Results), len(users))
	}
	for i, u := range users {
		if rec.Results[i].User != u {
			t.Fatalf("result %d is for user %d, want %d", i, rec.Results[i].User, u)
		}
		if want := emptyNotNil(ix.Recommend(u, 12)); !slices.Equal(rec.Results[i].Items, want) {
			t.Fatalf("user %d: batch items %v, serial %v", u, rec.Results[i].Items, want)
		}
	}

	var tk batchResponse[topkResult]
	if code := postJSON(t, ts.URL+"/v1/topk", batchRequest{Users: users, K: 4}, &tk); code != 200 {
		t.Fatalf("batch topk status %d", code)
	}
	for i, u := range users {
		want := ix.TopK(u, 4)
		if len(tk.Results[i].Neighbors) != len(want) {
			t.Fatalf("user %d: batch topk length %d, serial %d", u, len(tk.Results[i].Neighbors), len(want))
		}
	}

	var nb batchResponse[neighborsResult]
	if code := postJSON(t, ts.URL+"/v1/neighbors", batchRequest{Users: users}, &nb); code != 200 {
		t.Fatalf("batch neighbors status %d", code)
	}
	for i, u := range users {
		ids, _ := ix.Neighbors(u)
		if !slices.Equal(nb.Results[i].IDs, emptyNotNil(ids)) {
			t.Fatalf("user %d: batch neighbor ids differ", u)
		}
	}
}

func TestServerBadRequests(t *testing.T) {
	ix := testIndex(t, 1)
	_, ts := newTestServer(t, ix, Config{MaxBatch: 4})
	for _, url := range []string{
		"/v1/recommend",             // missing user
		"/v1/recommend?user=abc",    // non-numeric
		"/v1/recommend?user=1&n=0",  // zero n
		"/v1/recommend?user=1&n=-3", // negative n
		"/v1/topk?user=1&k=999999",  // above MaxResults
	} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", url, resp.StatusCode)
		}
	}
	if code := postJSON(t, ts.URL+"/v1/recommend", batchRequest{Users: []int32{1, 2, 3, 4, 5}}, nil); code != 400 {
		t.Errorf("over-limit batch: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/recommend", batchRequest{}, nil); code != 400 {
		t.Errorf("empty batch: status %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/v1/recommend", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/recommend", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/admin/reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /admin/reload: status %d, want 405", resp.StatusCode)
	}
}

func TestServerHealthzStatsz(t *testing.T) {
	ix := testIndex(t, 1)
	_, ts := newTestServer(t, ix, Config{})
	var h healthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" || h.Users != ix.NumUsers() || h.K != ix.K() || h.Epoch != 1 {
		t.Fatalf("healthz = %+v", h)
	}
	// Same query twice: second must be a cache hit.
	var rec recommendResult
	getJSON(t, ts.URL+"/v1/recommend?user=1&n=5", &rec)
	getJSON(t, ts.URL+"/v1/recommend?user=1&n=5", &rec)
	var st Snapshot
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Requests != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("statsz after 2 identical queries: %+v", st)
	}
	if st.CacheHitRate != 0.5 || st.CacheEntries != 1 {
		t.Fatalf("statsz cache fields: %+v", st)
	}
	if st.ByEndpoint["recommend"] != 2 {
		t.Fatalf("statsz per-endpoint: %+v", st.ByEndpoint)
	}
	if st.P99Micros <= 0 {
		t.Fatalf("statsz p99 = %v, want > 0 after traffic", st.P99Micros)
	}
}

// TestServerCacheHitZeroAlloc: the whole internal fast path — key
// build, shard lookup, recency update — must not allocate on a hit.
// This is the property the BENCH_http.json gate tracks in CI.
func TestServerCacheHitZeroAlloc(t *testing.T) {
	if RaceEnabled {
		t.Skip("race instrumentation allocates; the non-race run enforces this")
	}
	ix := testIndex(t, 1)
	s, err := New(ix, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if allocs := s.CacheHitAllocs(3, 10, 2000); allocs != 0 {
		t.Errorf("cache-hit path allocates %v per query, want 0", allocs)
	}
}

// TestServerReloadAndErrorKinds exercises /admin/reload end to end:
// a healthy snapshot swaps (epoch bump, cache retired), a version-skewed
// file reports kind=version, a corrupt file kind=corrupt, and in every
// failure case the old index keeps serving.
func TestServerReloadAndErrorKinds(t *testing.T) {
	ix := testIndex(t, 1)
	dir := t.TempDir()
	snap := filepath.Join(dir, "index.c2")
	if err := ix.Save(snap); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, ix, Config{SnapshotPath: snap})

	// Warm the cache, then reload: the swap must flush the dead epoch's
	// entries rather than leave them squatting on the budgets.
	var warm recommendResult
	getJSON(t, ts.URL+"/v1/recommend?user=2&n=5", &warm)
	if s.cache.Len() != 1 {
		t.Fatalf("cache holds %d entries after one query, want 1", s.cache.Len())
	}
	var rr reloadResponse
	if code := postJSON(t, ts.URL+"/admin/reload", struct{}{}, &rr); code != 200 {
		t.Fatalf("reload status %d", code)
	}
	if rr.Status != "ok" || rr.Epoch != 2 || rr.Users != ix.NumUsers() {
		t.Fatalf("reload response %+v", rr)
	}
	if s.Epoch() != 2 {
		t.Fatalf("server epoch %d after reload, want 2", s.Epoch())
	}
	if s.cache.Len() != 0 {
		t.Fatalf("cache holds %d stale entries after the swap, want 0 (flushed)", s.cache.Len())
	}

	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Version skew: the uint32 at offset 8 is the format version.
	skewed := append([]byte(nil), raw...)
	skewed[8] = 99
	replaceFile(t, snap, skewed)
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var fail reloadResponse
	json.NewDecoder(resp.Body).Decode(&fail)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || fail.Kind != "version" {
		t.Fatalf("version-skew reload: status %d, kind %q (want 503, version)", resp.StatusCode, fail.Kind)
	}

	// Corruption: flip a payload byte (past the 16-byte header and the
	// 12-byte section header).
	corrupt := append([]byte(nil), raw...)
	corrupt[40] ^= 0xff
	replaceFile(t, snap, corrupt)
	resp, err = http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	fail = reloadResponse{}
	json.NewDecoder(resp.Body).Decode(&fail)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || fail.Kind != "corrupt" {
		t.Fatalf("corrupt reload: status %d, kind %q (want 503, corrupt)", resp.StatusCode, fail.Kind)
	}

	// Failed reloads must not have disturbed serving.
	if s.Epoch() != 2 {
		t.Fatalf("failed reloads changed the epoch to %d", s.Epoch())
	}
	var rec recommendResult
	getJSON(t, ts.URL+"/v1/recommend?user=1&n=5", &rec)
	if want := emptyNotNil(ix.Recommend(1, 5)); !slices.Equal(rec.Items, want) {
		t.Fatalf("serving diverged after failed reloads")
	}
}

// TestServerHotSwapUnderLoad hammers the server from many goroutines
// while the index is swapped to different content mid-flight: every
// response must be a 200 matching either the old or the new index
// bit-for-bit, and after the swap settles, new requests must see the
// new index (the epoch-keyed cache may not serve stale results).
func TestServerHotSwapUnderLoad(t *testing.T) {
	oldIx := testIndex(t, 1)
	newIx := testIndex(t, 99)
	s, ts := newTestServer(t, oldIx, Config{})

	const nRec = 9
	users := oldIx.NumUsers()
	wantOld := make([][]int32, users)
	wantNew := make([][]int32, users)
	differs := false
	for u := 0; u < users; u++ {
		wantOld[u] = emptyNotNil(oldIx.Recommend(int32(u), nRec))
		wantNew[u] = emptyNotNil(newIx.Recommend(int32(u), nRec))
		if !slices.Equal(wantOld[u], wantNew[u]) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("test indexes are identical; swap would be unobservable")
	}

	const workers = 16
	const perWorker = 60
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	client := ts.Client()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				u := (w*perWorker + i) % users
				resp, err := client.Get(fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", ts.URL, u, nRec))
				if err != nil {
					errs <- err
					return
				}
				var rec recommendResult
				err = json.NewDecoder(resp.Body).Decode(&rec)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("status %d during swap", resp.StatusCode)
					return
				}
				if !slices.Equal(rec.Items, wantOld[u]) && !slices.Equal(rec.Items, wantNew[u]) {
					errs <- fmt.Errorf("user %d: response matches neither index", u)
					return
				}
			}
		}(w)
	}
	s.Swap(newIx)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch %d after swap, want 2", s.Epoch())
	}
	// Post-swap: responses must be the new index's, even for queries the
	// old epoch cached.
	for u := 0; u < users; u++ {
		var rec recommendResult
		getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", ts.URL, u, nRec), &rec)
		if !slices.Equal(rec.Items, wantNew[u]) {
			t.Fatalf("user %d: post-swap response is not the new index's", u)
		}
	}
}

// TestServerLoadModeByteIdentity: a server answering from a zero-copy
// mapped index and one answering from a copy-decoded index of the same
// snapshot must return byte-identical HTTP bodies — the guarantee that
// lets the load mode vary per platform (and per C2_LOAD override)
// without any observable behavior change.
func TestServerLoadModeByteIdentity(t *testing.T) {
	ix := testIndex(t, 7)
	snap := filepath.Join(t.TempDir(), "index.c2")
	if err := ix.Save(snap); err != nil {
		t.Fatal(err)
	}
	cpIx, err := c2knn.LoadIndexMode(snap, c2knn.LoadCopy)
	if err != nil {
		t.Fatal(err)
	}
	mmIx, err := c2knn.LoadIndexMode(snap, c2knn.LoadMMap)
	if err != nil {
		t.Skipf("mmap unavailable on this platform: %v", err)
	}
	defer mmIx.Close()
	if !mmIx.Mapped() || cpIx.Mapped() {
		t.Fatalf("load modes not honored: mmap Mapped=%v, copy Mapped=%v", mmIx.Mapped(), cpIx.Mapped())
	}
	_, cpTS := newTestServer(t, cpIx, Config{})
	_, mmTS := newTestServer(t, mmIx, Config{})

	body := func(ts *httptest.Server, path string) []byte {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, b)
		}
		return b
	}
	paths := []string{
		"/v1/recommend?user=0&n=10",
		"/v1/recommend?user=17&n=5",
		"/v1/neighbors?user=3&k=8",
		"/v1/neighbors?user=42&k=3",
	}
	for u := 0; u < cpIx.NumUsers(); u += 97 {
		paths = append(paths, fmt.Sprintf("/v1/recommend?user=%d&n=10", u))
	}
	for _, p := range paths {
		if cp, mm := body(cpTS, p), body(mmTS, p); !bytes.Equal(cp, mm) {
			t.Fatalf("GET %s differs between load modes:\ncopy: %s\nmmap: %s", p, cp, mm)
		}
	}
}

// TestServerSwapDrainsMappedEpoch: swapping away from a mapped index
// closes it — new retains are refused, so a request racing the swap
// re-resolves the fresh epoch — while the server keeps answering
// correctly from the new index.
func TestServerSwapDrainsMappedEpoch(t *testing.T) {
	ix := testIndex(t, 1)
	snap := filepath.Join(t.TempDir(), "index.c2")
	if err := ix.Save(snap); err != nil {
		t.Fatal(err)
	}
	mmIx, err := c2knn.LoadIndexMode(snap, c2knn.LoadMMap)
	if err != nil {
		t.Skipf("mmap unavailable on this platform: %v", err)
	}
	s, ts := newTestServer(t, mmIx, Config{})

	var before recommendResult
	getJSON(t, ts.URL+"/v1/recommend?user=5&n=5", &before)

	next := testIndex(t, 2)
	s.Swap(next)
	if mmIx.Retain() {
		t.Fatal("retired mapped epoch still accepts retains after the swap closed it")
	}
	var after recommendResult
	getJSON(t, ts.URL+"/v1/recommend?user=5&n=5", &after)
	want := emptyNotNil(next.Recommend(5, 5))
	if !slices.Equal(after.Items, want) {
		t.Fatalf("post-swap response %v does not match the new index %v", after.Items, want)
	}
}
