package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(64, 4, 0)
	if _, ok := c.Get([]byte("absent")); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put([]byte("a"), []byte("va"))
	if v, ok := c.Get([]byte("a")); !ok || string(v) != "va" {
		t.Fatalf("Get(a) = %q, %v; want va, true", v, ok)
	}
	// Overwrite keeps a single entry.
	c.Put([]byte("a"), []byte("v2"))
	if v, _ := c.Get([]byte("a")); string(v) != "v2" {
		t.Fatalf("after overwrite Get(a) = %q, want v2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after overwriting one key, want 1", c.Len())
	}
}

func TestCacheNilDisabled(t *testing.T) {
	var c *Cache // NewCache(0, ...) returns nil: caching disabled
	if NewCache(0, 8, 0) != nil {
		t.Fatal("NewCache(0) should return nil")
	}
	c.Put([]byte("k"), []byte("v"))
	if _, ok := c.Get([]byte("k")); ok {
		t.Fatal("nil cache reported a hit")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has non-zero Len")
	}
}

// TestCacheLRUEviction drives one shard past capacity and checks that
// the least-recently-used key is the one that leaves.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3, 1, 0) // single shard, capacity 3
	c.Put([]byte("a"), []byte("1"))
	c.Put([]byte("b"), []byte("2"))
	c.Put([]byte("c"), []byte("3"))
	c.Get([]byte("a")) // refresh a; b is now LRU
	c.Put([]byte("d"), []byte("4"))
	if _, ok := c.Get([]byte("b")); ok {
		t.Fatal("LRU key b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get([]byte(k)); !ok {
			t.Fatalf("key %s was evicted, want only b", k)
		}
	}
}

// TestCacheCapacityBound fills far past capacity and checks the bound
// holds and the most recent keys survive.
func TestCacheCapacityBound(t *testing.T) {
	const capacity, shards = 128, 8
	c := NewCache(capacity, shards, 0)
	for i := 0; i < 10*capacity; i++ {
		c.Put([]byte(fmt.Sprintf("key-%d", i)), []byte{byte(i)})
	}
	// Per-shard rounding may admit slightly more than the nominal total.
	if n := c.Len(); n > capacity+shards {
		t.Fatalf("cache holds %d entries, want <= %d", n, capacity+shards)
	}
}

// TestCacheByteBudget: the byte budget, not the entry count, is what
// bounds memory when values are large — filling with big values must
// evict down to the budget, and a value that cannot fit at all must be
// refused rather than blowing the bound.
func TestCacheByteBudget(t *testing.T) {
	c := NewCache(1024, 1, 4096) // one shard, 4 KiB budget, roomy entry cap
	val := make([]byte, 1000)
	for i := 0; i < 16; i++ {
		c.Put([]byte(fmt.Sprintf("big-%d", i)), val)
	}
	if n := c.Len(); n > 4 {
		t.Fatalf("cache holds %d x 1000-byte values under a 4096-byte budget", n)
	}
	if _, ok := c.Get([]byte("big-15")); !ok {
		t.Fatal("most recent value was evicted instead of the oldest")
	}
	if _, ok := c.Get([]byte("big-0")); ok {
		t.Fatal("oldest value survived a full byte-budget sweep")
	}
	// Oversized value: refused, and the existing entries stay.
	before := c.Len()
	c.Put([]byte("huge"), make([]byte, 8192))
	if _, ok := c.Get([]byte("huge")); ok {
		t.Fatal("cached a value larger than the whole shard budget")
	}
	if c.Len() != before {
		t.Fatalf("oversized Put disturbed the cache: %d -> %d entries", before, c.Len())
	}
	// Overwriting with a larger value keeps the budget enforced.
	c.Put([]byte("big-15"), make([]byte, 3000))
	if n := c.Len(); n > 2 {
		t.Fatalf("budget not enforced on overwrite: %d entries", n)
	}
	if v, ok := c.Get([]byte("big-15")); !ok || len(v) != 3000 {
		t.Fatal("overwritten entry lost")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(64, 4, 0)
	for i := 0; i < 20; i++ {
		c.Put([]byte(fmt.Sprintf("k-%d", i)), []byte("v"))
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Flush, want 0", c.Len())
	}
	if _, ok := c.Get([]byte("k-3")); ok {
		t.Fatal("flushed key still readable")
	}
	// The cache must remain fully usable (budgets reset, list rebuilt).
	c.Put([]byte("again"), []byte("v2"))
	if v, ok := c.Get([]byte("again")); !ok || string(v) != "v2" {
		t.Fatal("cache unusable after Flush")
	}
	var nilCache *Cache
	nilCache.Flush() // must not panic
}

func TestCacheGetZeroAlloc(t *testing.T) {
	c := NewCache(64, 4, 0)
	key := []byte("hot-key")
	c.Put(key, []byte("value"))
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.Get(key); !ok {
			t.Fatal("lost the hot key")
		}
	})
	if allocs != 0 {
		t.Errorf("Cache.Get allocates %.1f per hit, want 0", allocs)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines (run
// under -race in CI) and sanity-checks values are never torn.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(256, 8, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 5000; i++ {
				k := byte(rng.Intn(64))
				key := []byte{k}
				if rng.Intn(2) == 0 {
					c.Put(key, []byte{k, k})
				} else if v, ok := c.Get(key); ok {
					if len(v) != 2 || v[0] != k || v[1] != k {
						t.Errorf("torn value %v for key %d", v, k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
