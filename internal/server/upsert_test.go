package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"c2knn"
)

// envLoadMode resolves C2_LOAD the way the daemon binary does, so the
// compaction hot-swap tests exercise whichever load path the CI leg
// forces (the C2_LOAD=copy leg runs them through the copy decoder).
func envLoadMode(tb testing.TB) c2knn.LoadMode {
	tb.Helper()
	mode, err := c2knn.ParseLoadMode(os.Getenv("C2_LOAD"))
	if err != nil {
		tb.Fatal(err)
	}
	return mode
}

func postBody(tb testing.TB, url string, body string) (int, []byte) {
	tb.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestServerUpsertEndpoint(t *testing.T) {
	ix := testIndex(t, 1)
	baseUsers := ix.NumUsers()
	_, ts := newTestServer(t, ix, Config{Upserts: true})

	// Single insert: user omitted means "new user".
	code, body := postBody(t, ts.URL+"/v1/upsert", `{"items":[1,2,3,4,5]}`)
	if code != http.StatusOK {
		t.Fatalf("upsert status %d: %s", code, body)
	}
	var res upsertResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Created || int(res.User) != baseUsers || res.Seq != 1 {
		t.Fatalf("upsert result %+v, want created user %d at seq 1", res, baseUsers)
	}

	// The write is immediately queryable — and the cache cannot serve a
	// pre-upsert body for it, since the delta sequence is in every key.
	var nb neighborsResult
	getJSON(t, fmt.Sprintf("%s/v1/neighbors?user=%d", ts.URL, res.User), &nb)
	if len(nb.IDs) == 0 {
		t.Fatal("new user has no neighbors served")
	}

	// Batch form, including one failing entry (empty items): earlier
	// entries absorb, the bad one reports its error in place.
	code, body = postBody(t, ts.URL+"/v1/upsert",
		fmt.Sprintf(`{"upserts":[{"items":[7,8,9]},{"user":%d,"items":[]},{"user":%d,"items":[6]}]}`, res.User, res.User))
	if code != http.StatusOK {
		t.Fatalf("batch upsert status %d: %s", code, body)
	}
	var batch batchResponse[upsertResult]
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("batch results: %+v", batch.Results)
	}
	if !batch.Results[0].Created || batch.Results[0].Error != "" {
		t.Fatalf("batch entry 0: %+v", batch.Results[0])
	}
	if batch.Results[1].Error == "" {
		t.Fatal("empty-items entry did not report an error")
	}
	if batch.Results[2].Error != "" || batch.Results[2].Created {
		t.Fatalf("existing-user merge entry: %+v", batch.Results[2])
	}

	// Single-form errors are plain 400s.
	if code, _ := postBody(t, ts.URL+"/v1/upsert", `{"items":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty single upsert: status %d, want 400", code)
	}
	if code, _ := postBody(t, ts.URL+"/v1/upsert", `{"upserts":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}

	// Observability: healthz exposes the cursor, statsz the counters.
	var h healthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Users != baseUsers+2 || h.DeltaSeq != 3 || h.Delta == nil || h.Delta.Depth != 3 || h.Delta.Users != 2 {
		t.Fatalf("healthz after upserts: %+v (delta %+v)", h, h.Delta)
	}
	var st Snapshot
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Upserts != 3 || st.UpsertErrors != 2 {
		t.Fatalf("statsz upsert counters: upserts=%d errors=%d", st.Upserts, st.UpsertErrors)
	}
	if st.Delta == nil || st.Delta.Depth != 3 || st.Delta.Seq != 3 {
		t.Fatalf("statsz delta block: %+v", st.Delta)
	}
	if st.UpsertP99Micros <= 0 {
		t.Fatalf("statsz upsert p99 = %v, want > 0", st.UpsertP99Micros)
	}
}

func TestServerUpsertRefusals(t *testing.T) {
	// Read-only daemons answer a typed 403 on both write endpoints.
	_, ts := newTestServer(t, testIndex(t, 1), Config{ReadOnly: true})
	for _, ep := range []string{"/v1/upsert", "/admin/compact"} {
		code, body := postBody(t, ts.URL+ep, `{"items":[1]}`)
		if code != http.StatusForbidden {
			t.Fatalf("POST %s on read-only: status %d, want 403", ep, code)
		}
		var ref refusalResponse
		if err := json.Unmarshal(body, &ref); err != nil {
			t.Fatal(err)
		}
		if ref.Kind != "read-only" || ref.Error == "" {
			t.Fatalf("POST %s refusal: %+v", ep, ref)
		}
	}

	// A daemon without -upserts refuses with kind "disabled".
	_, ts2 := newTestServer(t, testIndex(t, 2), Config{})
	code, body := postBody(t, ts2.URL+"/v1/upsert", `{"items":[1]}`)
	var ref refusalResponse
	if err := json.Unmarshal(body, &ref); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusForbidden || ref.Kind != "disabled" {
		t.Fatalf("upsert on plain daemon: status %d, kind %q", code, ref.Kind)
	}

	// The 403s are accounted under their own status code.
	var st Snapshot
	getJSON(t, ts2.URL+"/statsz", &st)
	if st.ByStatus["403"] != 1 {
		t.Fatalf("by_status: %+v", st.ByStatus)
	}
}

func TestServerUpsertInvalidatesCache(t *testing.T) {
	_, ts := newTestServer(t, testIndex(t, 1), Config{Upserts: true})

	// Prime the cache with user 1's recommendations, twice (second is a
	// hit).
	var before recommendResult
	getJSON(t, ts.URL+"/v1/recommend?user=1&n=50", &before)
	getJSON(t, ts.URL+"/v1/recommend?user=1&n=50", &before)

	// Upsert an item into user 1's own profile: a correct daemon must
	// stop recommending it (own items are excluded), which only happens
	// if the cached pre-upsert body is retired.
	if len(before.Items) == 0 {
		t.Skip("user 1 has no recommendations at this scale")
	}
	target := before.Items[0]
	code, body := postBody(t, ts.URL+"/v1/upsert", fmt.Sprintf(`{"user":1,"items":[%d]}`, target))
	if code != http.StatusOK {
		t.Fatalf("upsert status %d: %s", code, body)
	}
	var after recommendResult
	getJSON(t, ts.URL+"/v1/recommend?user=1&n=50", &after)
	if slices.Contains(after.Items, target) {
		t.Fatalf("item %d still recommended to user 1 after being added to its profile (stale cache)", target)
	}
}

func TestServerCompactionUnderLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.c2")
	ix := testIndex(t, 1)
	baseUsers := ix.NumUsers()
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	ix.Close()
	ld, err := c2knn.LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, ld, Config{SnapshotPath: path, Upserts: true, LoadMode: envLoadMode(t)})

	const writers, inserts = 3, 15
	var inserted atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, writers+2)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < inserts; i++ {
				items := fmt.Sprintf(`{"items":[%d,%d,%d]}`, (w*31+i)%40, (w*17+i*3)%40+40, i%20+80)
				code, body := postBody(t, ts.URL+"/v1/upsert", items)
				if code != http.StatusOK {
					errs <- fmt.Errorf("writer %d: status %d: %s", w, code, body)
					return
				}
				inserted.Add(1)
			}
		}(w)
	}
	// A reader hammers queries across the swap boundary; every response
	// must stay well-formed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var nb neighborsResult
			getJSON(t, ts.URL+"/v1/neighbors?user=1", &nb)
			if len(nb.IDs) == 0 {
				errs <- fmt.Errorf("reader: user 1 lost its neighbors mid-compaction")
				return
			}
		}
	}()

	// Compact repeatedly, over HTTP, while the load runs.
	deadline := time.After(30 * time.Second)
	for int(inserted.Load()) < writers*inserts {
		code, body := postBody(t, ts.URL+"/admin/compact", "")
		if code != http.StatusOK {
			t.Fatalf("compact status %d: %s", code, body)
		}
		select {
		case err := <-errs:
			t.Fatal(err)
		case <-deadline:
			t.Fatal("writers did not finish in time")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Final fold: everything absorbed, nothing lost.
	var res CompactResult
	code, body := postBody(t, ts.URL+"/admin/compact", "")
	if code != http.StatusOK {
		t.Fatalf("final compact status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Users != baseUsers+writers*inserts {
		t.Fatalf("after final compact: %d users, want %d", res.Users, baseUsers+writers*inserts)
	}
	var h healthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Delta == nil || h.Delta.Depth != 0 || h.Delta.Users != 0 {
		t.Fatalf("delta not drained after final compact: %+v", h.Delta)
	}
	if h.Epoch < 2 {
		t.Fatalf("epoch %d after compactions, want ≥ 2", h.Epoch)
	}

	// The snapshot on disk now IS the compacted state: a cold load must
	// serve the inserted users.
	fresh, err := c2knn.LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.NumUsers() != baseUsers+writers*inserts {
		t.Fatalf("cold-loaded snapshot has %d users, want %d", fresh.NumUsers(), baseUsers+writers*inserts)
	}
	_ = s
}

func TestServerCompactorBackgroundLoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.c2")
	ix := testIndex(t, 1)
	baseUsers := ix.NumUsers()
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	ix.Close()
	ld, err := c2knn.LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, ld, Config{SnapshotPath: path, Upserts: true, LoadMode: envLoadMode(t)})
	stopCompactor := s.StartCompactor(time.Millisecond, 2, 0)
	defer stopCompactor()

	for i := 0; i < 6; i++ {
		code, body := postBody(t, ts.URL+"/v1/upsert", fmt.Sprintf(`{"items":[%d,%d]}`, i, i+50))
		if code != http.StatusOK {
			t.Fatalf("upsert status %d: %s", code, body)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var h healthResponse
		getJSON(t, ts.URL+"/healthz", &h)
		if h.Delta != nil && h.Delta.Depth < 2 && h.Users == baseUsers+6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compactor never drained the delta: %+v (delta %+v)", h, h.Delta)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var st Snapshot
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Compactions == 0 {
		t.Fatalf("statsz compactions = 0 after background folding")
	}
}
