package server

import (
	"testing"
	"time"
)

// TestBucketRoundTrip: every bucket's representative value must map
// back into that bucket, and bucket indexes must be monotone in the
// duration — otherwise percentiles are meaningless.
func TestBucketRoundTrip(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		upper := bucketUpperMicros(i)
		// The largest duration strictly inside the bucket.
		d := time.Duration(upper-1) * time.Microsecond
		if i == 0 {
			d = 0
		}
		if got := bucketOf(d); got != i {
			t.Fatalf("bucket %d: upper %v µs, bucketOf(upper-1µs) = %d", i, upper, got)
		}
	}
	prev := -1
	for us := 0; us < 1<<20; us = us*2 + 1 {
		b := bucketOf(time.Duration(us) * time.Microsecond)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d µs: %d < %d", us, b, prev)
		}
		prev = b
	}
}

func TestStatsPercentiles(t *testing.T) {
	st := NewStats()
	if p := st.percentile(0.5); p != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", p)
	}
	// 99 fast queries and one slow one: p50 in the fast range, p99+
	// catching the outlier's octave.
	for i := 0; i < 99; i++ {
		st.RecordQuery(EpRecommend, 10*time.Microsecond, 1, false, false)
	}
	st.RecordQuery(EpRecommend, 50*time.Millisecond, 1, false, false)
	if p50 := st.percentile(0.5); p50 < 10 || p50 > 12 {
		t.Errorf("p50 = %v µs, want ~11", p50)
	}
	p999 := st.percentile(0.999)
	if p999 < 50_000 || p999 > 60_000 {
		t.Errorf("p99.9 = %v µs, want ~50000 (within one sub-bucket)", p999)
	}
}

func TestStatsSnapshotCounters(t *testing.T) {
	st := NewStats()
	st.RecordQuery(EpRecommend, time.Millisecond, 1, false, false)
	st.RecordQuery(EpRecommend, time.Millisecond, 8, true, true)
	st.RecordQuery(EpNeighbors, time.Millisecond, 1, false, true)
	st.RecordBadRequest()
	st.RecordSwap()
	s := st.snapshot()
	if s.Requests != 3 || s.Queries != 10 || s.Batched != 1 || s.BadRequests != 1 || s.Swaps != 1 {
		t.Fatalf("snapshot counters off: %+v", s)
	}
	if s.ByEndpoint["recommend"] != 2 || s.ByEndpoint["neighbors"] != 1 || s.ByEndpoint["topk"] != 0 {
		t.Fatalf("per-endpoint counters off: %+v", s.ByEndpoint)
	}
	if s.CacheHits != 2 || s.CacheMisses != 1 {
		t.Fatalf("cache counters off: %+v", s)
	}
	if want := 2.0 / 3.0; s.CacheHitRate < want-1e-9 || s.CacheHitRate > want+1e-9 {
		t.Fatalf("hit rate %v, want %v", s.CacheHitRate, want)
	}
}

func TestStatsRecordZeroAlloc(t *testing.T) {
	st := NewStats()
	allocs := testing.AllocsPerRun(1000, func() {
		st.RecordQuery(EpRecommend, 123*time.Microsecond, 1, false, true)
	})
	if allocs != 0 {
		t.Errorf("RecordQuery allocates %.1f per call, want 0", allocs)
	}
}
