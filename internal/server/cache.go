package server

import (
	"math/bits"
	"sync"
)

// Cache is a sharded LRU over immutable byte values, sized for the
// result cache of the serving daemon: keys are (endpoint, epoch, user,
// params) tuples rendered to bytes, values are fully marshaled response
// bodies. Sharding by key hash keeps lock contention proportional to
// 1/shards under concurrent request goroutines, and the hit path —
// hash, one shard lock, map lookup, list splice — performs zero
// allocations, so a cache hit costs no garbage at any request rate.
//
// A nil *Cache is valid and permanently empty (caching disabled).
type Cache struct {
	shards []cacheShard
	mask   uint64
}

type cacheShard struct {
	mu       sync.Mutex
	m        map[string]*cacheEntry
	cap      int
	maxBytes int64 // budget for stored key+value bytes
	bytes    int64
	// Doubly-linked MRU list; head is most recent, tail the eviction
	// victim.
	head, tail *cacheEntry
}

type cacheEntry struct {
	key        string
	val        []byte
	prev, next *cacheEntry
}

func (e *cacheEntry) size() int64 { return int64(len(e.key) + len(e.val)) }

// NewCache returns a cache holding up to entries values and maxBytes of
// key+value payload across shards lock domains (shards is rounded up
// to a power of two; both budgets are divided evenly). Cached bodies
// range from ~100 bytes for a single query to megabytes for a
// max-sized batch, so the entry bound alone would leave memory
// effectively unbounded — the byte budget is what actually caps the
// daemon's footprint, and a value too large for its shard's budget is
// simply not cached. entries <= 0 returns nil: a disabled cache every
// method tolerates. maxBytes <= 0 selects the default (64 MiB).
func NewCache(entries, shards int, maxBytes int64) *Cache {
	if entries <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	n := 1 << bits.Len(uint(shards-1)) // next power of two
	perShard := (entries + n - 1) / n
	bytesPerShard := maxBytes / int64(n)
	if bytesPerShard < 1 {
		bytesPerShard = 1
	}
	c := &Cache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].maxBytes = bytesPerShard
		c.shards[i].m = make(map[string]*cacheEntry, perShard)
	}
	return c
}

// fnv64a hashes key without allocating (FNV-1a).
func fnv64a(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// Get returns the value cached under key, refreshing its recency. The
// returned bytes are shared and immutable — callers must not modify
// them. Zero allocations on both hit and miss.
func (c *Cache) Get(key []byte) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := &c.shards[fnv64a(key)&c.mask]
	s.mu.Lock()
	e, ok := s.m[string(key)] // string(key) in a map index does not allocate
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	s.moveToFront(e)
	v := e.val
	s.mu.Unlock()
	return v, true
}

// Put caches val under key, evicting least-recently-used entries until
// the shard is within both its entry and byte budgets. A value larger
// than the shard's whole byte budget is not cached at all. val is
// retained as-is and must not be mutated afterwards; key is copied.
func (c *Cache) Put(key, val []byte) {
	if c == nil {
		return
	}
	if int64(len(key)+len(val)) > c.shards[0].maxBytes {
		return
	}
	s := &c.shards[fnv64a(key)&c.mask]
	s.mu.Lock()
	if e, ok := s.m[string(key)]; ok {
		s.bytes += int64(len(val) - len(e.val))
		e.val = val
		s.moveToFront(e)
	} else {
		e := &cacheEntry{key: string(key), val: val}
		s.m[e.key] = e
		s.pushFront(e)
		s.bytes += e.size()
	}
	for len(s.m) > s.cap || s.bytes > s.maxBytes {
		victim := s.tail
		s.unlink(victim)
		delete(s.m, victim.key)
		s.bytes -= victim.size()
	}
	s.mu.Unlock()
}

// Flush discards every cached entry. The server calls it on snapshot
// swap: the epoch baked into every key already makes old entries
// unreachable, but without a flush they would keep occupying the
// entry/byte budgets — a warm cache would sit half-dead after each
// reload until LRU churn ground the stale tail out.
func (c *Cache) Flush() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[string]*cacheEntry, s.cap)
		s.head, s.tail = nil, nil
		s.bytes = 0
		s.mu.Unlock()
	}
}

// Len returns the number of cached entries (for tests and /statsz).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
