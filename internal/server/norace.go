//go:build !race

package server

// RaceEnabled reports whether the race detector is compiled in; see
// race.go.
const RaceEnabled = false
