package server

import (
	"fmt"
	"net/http"
	"time"
)

// Prometheus text exposition of the daemon's counters, written by hand
// so serving needs no dependency beyond the standard library. The
// metric names below are the operational contract documented in
// EXPERIMENTS.md ("Operational hardening"); the soak harness
// reconciles several of them against its own request accounting.
//
// Scope note: c2_responses_total covers the query (/v1/*) and admin
// (/admin/*) surfaces only — probes of /healthz, /statsz and /metrics
// itself are not traffic and would otherwise make the counters
// impossible to reconcile with a load generator's.

// metricsBucketsSecs are the latency histogram upper bounds (seconds)
// exposed on /metrics. The internal HDR histogram is ~30× finer; the
// exposition downsamples to a conventional le ladder, attributing each
// HDR bucket to the first ladder rung at or above its upper edge so
// percentiles derived from the exposition never flatter the server.
var metricsBucketsSecs = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// MetricsHandler returns the /metrics endpoint as a standalone handler,
// for mounting on an admin mux alongside pprof (see cmd/c2serve).
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(s.serveMetrics)
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.st.Load()
	stats := s.stats
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	counter := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	counter("c2_requests_total", "Successfully answered query requests by endpoint.")
	for ep := Endpoint(0); ep < numEndpoints; ep++ {
		fmt.Fprintf(w, "c2_requests_total{endpoint=%q} %d\n", ep.String(), stats.byEndpoint[ep].Load())
	}
	counter("c2_queries_total", "User-queries answered (a batch counts each of its users).")
	fmt.Fprintf(w, "c2_queries_total %d\n", stats.queries.Load())

	counter("c2_responses_total", "Responses on the query and admin surfaces by status code.")
	for i, code := range knownStatusCodes {
		if n := stats.byStatus[i].Load(); n > 0 {
			fmt.Fprintf(w, "c2_responses_total{code=\"%d\"} %d\n", code, n)
		}
	}
	if n := stats.byStatus[len(knownStatusCodes)].Load(); n > 0 {
		fmt.Fprintf(w, "c2_responses_total{code=\"other\"} %d\n", n)
	}

	counter("c2_bad_requests_total", "Requests rejected before reaching an index (400).")
	fmt.Fprintf(w, "c2_bad_requests_total %d\n", stats.badRequest.Load())
	counter("c2_panics_total", "Handler panics recovered into 500 responses.")
	fmt.Fprintf(w, "c2_panics_total %d\n", stats.panics.Load())
	counter("c2_shed_total", "Requests refused with 429 by admission control.")
	fmt.Fprintf(w, "c2_shed_total %d\n", stats.shed.Load())
	counter("c2_deadline_expired_total", "Requests whose per-request deadline expired (503).")
	fmt.Fprintf(w, "c2_deadline_expired_total %d\n", stats.timeouts.Load())
	counter("c2_body_too_large_total", "Request bodies over the configured cap (413).")
	fmt.Fprintf(w, "c2_body_too_large_total %d\n", stats.tooLarge.Load())

	gauge("c2_inflight_requests", "Requests currently inside the admission-control stage.")
	fmt.Fprintf(w, "c2_inflight_requests %d\n", stats.inFlight.Load())

	counter("c2_cache_hits_total", "Result-cache hits.")
	fmt.Fprintf(w, "c2_cache_hits_total %d\n", stats.cacheHits.Load())
	counter("c2_cache_misses_total", "Result-cache misses.")
	fmt.Fprintf(w, "c2_cache_misses_total %d\n", stats.cacheMiss.Load())
	gauge("c2_cache_entries", "Result-cache resident entries.")
	fmt.Fprintf(w, "c2_cache_entries %d\n", s.cache.Len())

	counter("c2_upserts_total", "Profiles absorbed through /v1/upsert.")
	fmt.Fprintf(w, "c2_upserts_total %d\n", stats.upserts.Load())
	counter("c2_upsert_errors_total", "Upsert entries rejected (bad items or user id).")
	fmt.Fprintf(w, "c2_upsert_errors_total %d\n", stats.upsertErrors.Load())
	counter("c2_compactions_total", "Completed delta compaction swaps.")
	fmt.Fprintf(w, "c2_compactions_total %d\n", stats.compactions.Load())
	counter("c2_compaction_failures_total", "Compaction cycles that failed (old state kept serving).")
	fmt.Fprintf(w, "c2_compaction_failures_total %d\n", stats.compactFail.Load())
	if ds, ok := st.ix.DeltaStats(); ok {
		gauge("c2_delta_depth", "Upserts absorbed but not yet folded into a snapshot.")
		fmt.Fprintf(w, "c2_delta_depth %d\n", ds.Depth)
		gauge("c2_delta_users", "Delta users beyond the base snapshot.")
		fmt.Fprintf(w, "c2_delta_users %d\n", ds.Users)
		gauge("c2_delta_age_seconds", "Age of the oldest un-compacted upsert.")
		fmt.Fprintf(w, "c2_delta_age_seconds %.3f\n", ds.AgeSec)
	}

	gauge("c2_snapshot_epoch", "Epoch of the currently served snapshot.")
	fmt.Fprintf(w, "c2_snapshot_epoch %d\n", st.epoch)
	counter("c2_snapshot_swaps_total", "Successful snapshot hot-swaps.")
	fmt.Fprintf(w, "c2_snapshot_swaps_total %d\n", stats.swaps.Load())
	counter("c2_reload_failures_total", "Snapshot reloads refused (old epoch kept serving).")
	fmt.Fprintf(w, "c2_reload_failures_total %d\n", stats.reloadFail.Load())

	gauge("c2_uptime_seconds", "Seconds since the daemon started.")
	fmt.Fprintf(w, "c2_uptime_seconds %.3f\n", time.Since(stats.start).Seconds())

	// Latency histogram over successfully answered queries.
	uppers := make([]float64, len(metricsBucketsSecs))
	for i, s := range metricsBucketsSecs {
		uppers[i] = s * 1e6 // the internal histogram is in microseconds
	}
	cum, total := stats.lat.CumulativeAtMost(uppers)
	fmt.Fprintf(w, "# HELP c2_request_duration_seconds Query latency (successful requests).\n")
	fmt.Fprintf(w, "# TYPE c2_request_duration_seconds histogram\n")
	for i, le := range metricsBucketsSecs {
		fmt.Fprintf(w, "c2_request_duration_seconds_bucket{le=\"%g\"} %d\n", le, cum[i])
	}
	fmt.Fprintf(w, "c2_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", total)
	fmt.Fprintf(w, "c2_request_duration_seconds_sum %.6f\n", float64(stats.lat.SumMicros())/1e6)
	fmt.Fprintf(w, "c2_request_duration_seconds_count %d\n", total)

	// Upsert latency histogram (one observation per absorbed profile),
	// emitted once the write path has been exercised.
	if stats.upserts.Load() > 0 {
		ucum, utotal := stats.upsertLat.CumulativeAtMost(uppers)
		fmt.Fprintf(w, "# HELP c2_upsert_duration_seconds Upsert latency (absorbed profiles).\n")
		fmt.Fprintf(w, "# TYPE c2_upsert_duration_seconds histogram\n")
		for i, le := range metricsBucketsSecs {
			fmt.Fprintf(w, "c2_upsert_duration_seconds_bucket{le=\"%g\"} %d\n", le, ucum[i])
		}
		fmt.Fprintf(w, "c2_upsert_duration_seconds_bucket{le=\"+Inf\"} %d\n", utotal)
		fmt.Fprintf(w, "c2_upsert_duration_seconds_sum %.6f\n", float64(stats.upsertLat.SumMicros())/1e6)
		fmt.Fprintf(w, "c2_upsert_duration_seconds_count %d\n", utotal)
	}
}
