package server

import (
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Endpoint identifies one of the query endpoints for per-endpoint
// accounting.
type Endpoint int

const (
	EpNeighbors Endpoint = iota
	EpTopK
	EpRecommend
	numEndpoints
)

func (e Endpoint) String() string {
	switch e {
	case EpNeighbors:
		return "neighbors"
	case EpTopK:
		return "topk"
	case EpRecommend:
		return "recommend"
	}
	return "unknown"
}

// Latency histogram layout: exact 1 µs buckets below 16 µs, then 16
// log-linear sub-buckets per octave (HDR-style, ~6% relative error),
// capped at histBuckets. The representative value of a bucket is its
// upper bound, so reported percentiles never flatter the server.
const (
	histSubBuckets = 16
	histOctaves    = 28 // covers up to 16 µs << 28 ≈ 4500 s
	histBuckets    = histSubBuckets * (histOctaves + 1)
)

func bucketOf(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	if us < histSubBuckets {
		return int(us)
	}
	exp := bits.Len64(us) - 5 // halvings that bring us into [16, 32)
	i := exp*histSubBuckets + int(us>>uint(exp))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpperMicros returns the exclusive upper bound (in µs) of bucket
// i — the value percentiles report.
func bucketUpperMicros(i int) float64 {
	if i < histSubBuckets {
		return float64(i + 1)
	}
	// Invert bucketOf: i = exp*16 + mant with mant in [16, 32).
	exp := i/histSubBuckets - 1
	mant := i - histSubBuckets*exp
	return float64(uint64(mant+1) << uint(exp))
}

// LatencyHist is the lock-free HDR-style latency histogram described
// above, bundled with a running sum so a Prometheus exposition can emit
// both _bucket and _sum series. The zero value is ready to use; all
// methods are safe for concurrent callers. It is exported so other
// serving tiers (the scatter-gather router) account latency with the
// exact same bucket layout — percentiles from a shard and from the
// router in front of it are then directly comparable.
type LatencyHist struct {
	hist      [histBuckets]atomic.Uint64
	sumMicros atomic.Uint64
}

// Record accounts one observation.
func (h *LatencyHist) Record(d time.Duration) {
	h.hist[bucketOf(d)].Add(1)
	h.sumMicros.Add(uint64(d / time.Microsecond))
}

// SumMicros returns the running sum of recorded latencies in
// microseconds.
func (h *LatencyHist) SumMicros() uint64 { return h.sumMicros.Load() }

// Percentile returns the p-quantile (0 < p <= 1) of recorded latencies
// in microseconds, or 0 when nothing has been recorded. The histogram
// is read without synchronization against writers; under load the
// result is an instantaneous estimate, which is what /statsz wants.
func (h *LatencyHist) Percentile(p float64) float64 {
	var total uint64
	var counts [histBuckets]uint64
	for i := range h.hist {
		counts[i] = h.hist[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(p * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen > rank {
			return bucketUpperMicros(i)
		}
	}
	return bucketUpperMicros(histBuckets - 1)
}

// CumulativeAtMost returns, for each upper bound in uppersMicros
// (ascending), the number of recorded latencies at most that many
// microseconds, plus the grand total — the cumulative bucket counts a
// Prometheus histogram exposition needs. A recorded value falling in an
// HDR bucket that straddles an upper bound is attributed to the next
// bound (its bucket's own upper edge), so the exposition never
// under-reports a latency.
func (h *LatencyHist) CumulativeAtMost(uppersMicros []float64) (counts []uint64, total uint64) {
	counts = make([]uint64, len(uppersMicros))
	for i := 0; i < histBuckets; i++ {
		c := h.hist[i].Load()
		if c == 0 {
			continue
		}
		total += c
		upper := bucketUpperMicros(i)
		for j, le := range uppersMicros {
			if upper <= le {
				counts[j] += c
				break
			}
		}
	}
	// Make counts cumulative.
	for j := 1; j < len(counts); j++ {
		counts[j] += counts[j-1]
	}
	return counts, total
}

// qpsWindowSlots is the size of the per-second request-count ring the
// sliding-window rate is computed over.
const qpsWindowSlots = 16

// Stats aggregates the serving daemon's observability counters. All
// recording methods are lock-free (atomics only) and allocation-free,
// so they are safe on the cache-hit fast path.
type Stats struct {
	start time.Time

	requests   atomic.Uint64
	byEndpoint [numEndpoints]atomic.Uint64
	batched    atomic.Uint64 // batch requests (subset of requests)
	queries    atomic.Uint64 // user-queries answered (batch counts each user)
	badRequest atomic.Uint64
	cacheHits  atomic.Uint64
	cacheMiss  atomic.Uint64
	swaps      atomic.Uint64

	// Hardening counters (fed by the middleware stack and the
	// handlers' failure paths; see /metrics for their exported names).
	panics     atomic.Uint64 // recovered handler panics
	shed       atomic.Uint64 // requests refused with 429
	timeouts   atomic.Uint64 // per-request deadlines expired (503)
	tooLarge   atomic.Uint64 // request bodies over the cap (413)
	inFlight   atomic.Int64  // requests currently inside the shed stage
	byStatus   [len(knownStatusCodes) + 1]atomic.Uint64
	reloadFail atomic.Uint64

	reloadErrMu    sync.Mutex // guards the two strings below
	lastReloadKind string
	lastReloadErr  string

	// Write-path counters (fed by /v1/upsert and the compactor).
	upserts      atomic.Uint64 // profiles absorbed
	upsertErrors atomic.Uint64 // upsert entries rejected (bad items, bad user)
	compactions  atomic.Uint64 // completed compaction swaps
	compactFail  atomic.Uint64 // compaction cycles that failed (old state kept)
	upsertLat    LatencyHist   // per-absorbed-profile latency

	compactErrMu   sync.Mutex
	lastCompactErr string

	lat LatencyHist

	qpsCounts [qpsWindowSlots]atomic.Uint64
	qpsStamps [qpsWindowSlots]atomic.Int64
}

// NewStats returns a Stats anchored at now.
func NewStats() *Stats {
	return &Stats{start: time.Now()}
}

// RecordQuery accounts one answered request on endpoint ep: latency d,
// nQueries user-queries (1 for single requests, the batch length for
// batched ones), and whether the result came from the cache.
func (st *Stats) RecordQuery(ep Endpoint, d time.Duration, nQueries int, batched, cacheHit bool) {
	st.requests.Add(1)
	st.byEndpoint[ep].Add(1)
	st.queries.Add(uint64(nQueries))
	if batched {
		st.batched.Add(1)
	}
	if cacheHit {
		st.cacheHits.Add(1)
	} else {
		st.cacheMiss.Add(1)
	}
	st.lat.Record(d)

	sec := time.Now().Unix()
	slot := sec % qpsWindowSlots
	if old := st.qpsStamps[slot].Load(); old != sec {
		// One winner resets the slot for the new second; losers just add
		// to it. A request racing the reset can be dropped from the
		// window — acceptable for a rate estimate, never for totals.
		if st.qpsStamps[slot].CompareAndSwap(old, sec) {
			st.qpsCounts[slot].Store(0)
		}
	}
	st.qpsCounts[slot].Add(1)
}

// RecordBadRequest accounts a request rejected before reaching an index
// (malformed body, bad params).
func (st *Stats) RecordBadRequest() { st.badRequest.Add(1) }

// RecordSwap accounts one successful snapshot hot-swap.
func (st *Stats) RecordSwap() { st.swaps.Add(1) }

// RecordPanic accounts one recovered handler panic (the request was
// answered with 500 and the daemon kept running).
func (st *Stats) RecordPanic() { st.panics.Add(1) }

// RecordShed accounts one request refused with 429 by admission
// control.
func (st *Stats) RecordShed() { st.shed.Add(1) }

// RecordTimeout accounts one request whose per-request deadline expired
// (answered 503).
func (st *Stats) RecordTimeout() { st.timeouts.Add(1) }

// RecordTooLarge accounts one request body over the configured cap
// (answered 413).
func (st *Stats) RecordTooLarge() { st.tooLarge.Add(1) }

// RecordUpsert accounts one absorbed profile and its write latency.
func (st *Stats) RecordUpsert(d time.Duration) {
	st.upserts.Add(1)
	st.upsertLat.Record(d)
}

// RecordUpsertError accounts one rejected upsert entry.
func (st *Stats) RecordUpsertError() { st.upsertErrors.Add(1) }

// RecordCompaction accounts one completed compaction swap.
func (st *Stats) RecordCompaction() { st.compactions.Add(1) }

// RecordCompactionFailure accounts one failed compaction cycle and
// remembers its message for /statsz (sticky, like reload failures).
func (st *Stats) RecordCompactionFailure(msg string) {
	st.compactFail.Add(1)
	st.compactErrMu.Lock()
	st.lastCompactErr = msg
	st.compactErrMu.Unlock()
}

// InFlightGauge exposes the live in-flight gauge the shed stage
// maintains.
func (st *Stats) InFlightGauge() *atomic.Int64 { return &st.inFlight }

// knownStatusCodes are the statuses the daemon emits on its query and
// admin surfaces; anything else lands in the trailing "other" slot.
// /metrics exports these as c2_responses_total{code="..."}.
var knownStatusCodes = [...]int{200, 400, 403, 404, 405, 413, 429, 500, 503}

// RecordStatus accounts one finished response on the query/admin
// surface by status code.
func (st *Stats) RecordStatus(code int) {
	for i, c := range knownStatusCodes {
		if c == code {
			st.byStatus[i].Add(1)
			return
		}
	}
	st.byStatus[len(knownStatusCodes)].Add(1)
}

// RecordReloadFailure accounts one failed snapshot reload and remembers
// its classification (server.ReloadErrorKind) and message for /statsz —
// the operator-visible trace that the daemon refused a bad snapshot and
// kept serving the old epoch. The last failure is sticky across later
// successful reloads; ReloadFailures says whether it is ancient
// history.
func (st *Stats) RecordReloadFailure(kind, msg string) {
	st.reloadFail.Add(1)
	st.reloadErrMu.Lock()
	st.lastReloadKind, st.lastReloadErr = kind, msg
	st.reloadErrMu.Unlock()
}

// Hist exposes the request-latency histogram (for /metrics and for
// tiers that stack their own accounting on a Stats).
func (st *Stats) Hist() *LatencyHist { return &st.lat }

// percentile is kept as a shorthand over the histogram.
func (st *Stats) percentile(p float64) float64 { return st.lat.Percentile(p) }

// windowRate returns requests/sec over the trailing full seconds of the
// sliding window (the current partial second is excluded).
func (st *Stats) windowRate(now time.Time) float64 {
	cur := now.Unix()
	var n uint64
	secs := 0
	for i := 0; i < qpsWindowSlots; i++ {
		stamp := st.qpsStamps[i].Load()
		if stamp >= cur-qpsWindowSlots+1 && stamp < cur {
			n += st.qpsCounts[i].Load()
			secs++
		}
	}
	if secs == 0 {
		return 0
	}
	return float64(n) / float64(secs)
}

// Snapshot is the JSON shape of /statsz.
type Snapshot struct {
	UptimeSec float64 `json:"uptime_sec"`

	Requests    uint64            `json:"requests"`
	ByEndpoint  map[string]uint64 `json:"by_endpoint"`
	Batched     uint64            `json:"batched_requests"`
	Queries     uint64            `json:"queries"`
	BadRequests uint64            `json:"bad_requests"`

	QPSWindow   float64 `json:"qps_window"`   // trailing sliding window
	QPSLifetime float64 `json:"qps_lifetime"` // requests / uptime
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`

	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`

	Swaps uint64 `json:"snapshot_swaps"`
	Epoch uint64 `json:"snapshot_epoch"`
	Users int    `json:"users"`
	K     int    `json:"k"`

	// SimKernel names the similarity count kernel this process selected
	// at startup ("avx2", "neon", "scalar") — operators reading /statsz
	// can tell at a glance whether a replica is running vectorized.
	SimKernel string `json:"sim_kernel,omitempty"`

	// Hardening counters.
	Panics          uint64            `json:"panics_total"`
	Shed            uint64            `json:"shed_total"`
	DeadlineExpired uint64            `json:"deadline_expired_total"`
	BodyTooLarge    uint64            `json:"body_too_large_total"`
	InFlight        int64             `json:"inflight"`
	ByStatus        map[string]uint64 `json:"by_status"`

	// Reload failure trace: count plus the classification and message
	// of the most recent failure (sticky; compare ReloadFailures across
	// scrapes to tell old news from new).
	ReloadFailures  uint64 `json:"reload_failures"`
	LastReloadKind  string `json:"last_reload_kind,omitempty"`
	LastReloadError string `json:"last_reload_error,omitempty"`

	// Write-path counters; Delta is present on upsert-enabled daemons
	// only (the server fills it from the overlay).
	ReadOnly           bool           `json:"read_only,omitempty"`
	Upserts            uint64         `json:"upserts_total,omitempty"`
	UpsertErrors       uint64         `json:"upsert_errors_total,omitempty"`
	UpsertP50Micros    float64        `json:"upsert_p50_us,omitempty"`
	UpsertP99Micros    float64        `json:"upsert_p99_us,omitempty"`
	Compactions        uint64         `json:"compactions_total,omitempty"`
	CompactionFailures uint64         `json:"compaction_failures_total,omitempty"`
	LastCompactError   string         `json:"last_compaction_error,omitempty"`
	Delta              *DeltaSnapshot `json:"delta,omitempty"`
}

// DeltaSnapshot is the overlay block of /statsz: the amount of
// absorbed-but-not-compacted state the daemon holds, and where its
// sequence cursor stands.
type DeltaSnapshot struct {
	Depth       int     `json:"depth"`
	Users       int     `json:"users"`
	PatchedRows int     `json:"patched_rows"`
	AgeSec      float64 `json:"age_sec"`
	Seq         uint64  `json:"seq"`
	Marker      uint64  `json:"marker"`
}

// Snapshot renders the counters into the /statsz JSON shape. Fields the
// server owns (cacheEntries, epoch, users, k) are left zero; the serving
// handler fills them in. Exported so the router can embed a Stats and
// extend the same snapshot rather than reinvent it.
func (st *Stats) Snapshot() Snapshot { return st.snapshot() }

// snapshot renders the counters; cacheEntries, epoch, users and k come
// from the server, which owns those.
func (st *Stats) snapshot() Snapshot {
	now := time.Now()
	up := now.Sub(st.start).Seconds()
	s := Snapshot{
		UptimeSec:   up,
		Requests:    st.requests.Load(),
		ByEndpoint:  make(map[string]uint64, numEndpoints),
		Batched:     st.batched.Load(),
		Queries:     st.queries.Load(),
		BadRequests: st.badRequest.Load(),
		QPSWindow:   st.windowRate(now),
		P50Micros:   st.percentile(0.50),
		P99Micros:   st.percentile(0.99),
		CacheHits:   st.cacheHits.Load(),
		CacheMisses: st.cacheMiss.Load(),
		Swaps:       st.swaps.Load(),
	}
	s.Panics = st.panics.Load()
	s.Shed = st.shed.Load()
	s.DeadlineExpired = st.timeouts.Load()
	s.BodyTooLarge = st.tooLarge.Load()
	s.InFlight = st.inFlight.Load()
	s.ReloadFailures = st.reloadFail.Load()
	s.Upserts = st.upserts.Load()
	s.UpsertErrors = st.upsertErrors.Load()
	if s.Upserts > 0 {
		s.UpsertP50Micros = st.upsertLat.Percentile(0.50)
		s.UpsertP99Micros = st.upsertLat.Percentile(0.99)
	}
	s.Compactions = st.compactions.Load()
	s.CompactionFailures = st.compactFail.Load()
	st.compactErrMu.Lock()
	s.LastCompactError = st.lastCompactErr
	st.compactErrMu.Unlock()
	st.reloadErrMu.Lock()
	s.LastReloadKind, s.LastReloadError = st.lastReloadKind, st.lastReloadErr
	st.reloadErrMu.Unlock()
	s.ByStatus = make(map[string]uint64, len(knownStatusCodes)+1)
	for i, code := range knownStatusCodes {
		if n := st.byStatus[i].Load(); n > 0 {
			s.ByStatus[strconv.Itoa(code)] = n
		}
	}
	if n := st.byStatus[len(knownStatusCodes)].Load(); n > 0 {
		s.ByStatus["other"] = n
	}
	for ep := Endpoint(0); ep < numEndpoints; ep++ {
		s.ByEndpoint[ep.String()] = st.byEndpoint[ep].Load()
	}
	if up > 0 {
		s.QPSLifetime = float64(s.Requests) / up
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
	}
	return s
}
