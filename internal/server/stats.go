package server

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Endpoint identifies one of the query endpoints for per-endpoint
// accounting.
type Endpoint int

const (
	EpNeighbors Endpoint = iota
	EpTopK
	EpRecommend
	numEndpoints
)

func (e Endpoint) String() string {
	switch e {
	case EpNeighbors:
		return "neighbors"
	case EpTopK:
		return "topk"
	case EpRecommend:
		return "recommend"
	}
	return "unknown"
}

// Latency histogram layout: exact 1 µs buckets below 16 µs, then 16
// log-linear sub-buckets per octave (HDR-style, ~6% relative error),
// capped at histBuckets. The representative value of a bucket is its
// upper bound, so reported percentiles never flatter the server.
const (
	histSubBuckets = 16
	histOctaves    = 28 // covers up to 16 µs << 28 ≈ 4500 s
	histBuckets    = histSubBuckets * (histOctaves + 1)
)

func bucketOf(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	if us < histSubBuckets {
		return int(us)
	}
	exp := bits.Len64(us) - 5 // halvings that bring us into [16, 32)
	i := exp*histSubBuckets + int(us>>uint(exp))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpperMicros returns the exclusive upper bound (in µs) of bucket
// i — the value percentiles report.
func bucketUpperMicros(i int) float64 {
	if i < histSubBuckets {
		return float64(i + 1)
	}
	// Invert bucketOf: i = exp*16 + mant with mant in [16, 32).
	exp := i/histSubBuckets - 1
	mant := i - histSubBuckets*exp
	return float64(uint64(mant+1) << uint(exp))
}

// qpsWindowSlots is the size of the per-second request-count ring the
// sliding-window rate is computed over.
const qpsWindowSlots = 16

// Stats aggregates the serving daemon's observability counters. All
// recording methods are lock-free (atomics only) and allocation-free,
// so they are safe on the cache-hit fast path.
type Stats struct {
	start time.Time

	requests   atomic.Uint64
	byEndpoint [numEndpoints]atomic.Uint64
	batched    atomic.Uint64 // batch requests (subset of requests)
	queries    atomic.Uint64 // user-queries answered (batch counts each user)
	badRequest atomic.Uint64
	cacheHits  atomic.Uint64
	cacheMiss  atomic.Uint64
	swaps      atomic.Uint64

	hist [histBuckets]atomic.Uint64

	qpsCounts [qpsWindowSlots]atomic.Uint64
	qpsStamps [qpsWindowSlots]atomic.Int64
}

// NewStats returns a Stats anchored at now.
func NewStats() *Stats {
	return &Stats{start: time.Now()}
}

// RecordQuery accounts one answered request on endpoint ep: latency d,
// nQueries user-queries (1 for single requests, the batch length for
// batched ones), and whether the result came from the cache.
func (st *Stats) RecordQuery(ep Endpoint, d time.Duration, nQueries int, batched, cacheHit bool) {
	st.requests.Add(1)
	st.byEndpoint[ep].Add(1)
	st.queries.Add(uint64(nQueries))
	if batched {
		st.batched.Add(1)
	}
	if cacheHit {
		st.cacheHits.Add(1)
	} else {
		st.cacheMiss.Add(1)
	}
	st.hist[bucketOf(d)].Add(1)

	sec := time.Now().Unix()
	slot := sec % qpsWindowSlots
	if old := st.qpsStamps[slot].Load(); old != sec {
		// One winner resets the slot for the new second; losers just add
		// to it. A request racing the reset can be dropped from the
		// window — acceptable for a rate estimate, never for totals.
		if st.qpsStamps[slot].CompareAndSwap(old, sec) {
			st.qpsCounts[slot].Store(0)
		}
	}
	st.qpsCounts[slot].Add(1)
}

// RecordBadRequest accounts a request rejected before reaching an index
// (malformed body, bad params).
func (st *Stats) RecordBadRequest() { st.badRequest.Add(1) }

// RecordSwap accounts one successful snapshot hot-swap.
func (st *Stats) RecordSwap() { st.swaps.Add(1) }

// percentile returns the p-quantile (0 < p <= 1) of recorded latencies
// in microseconds, or 0 when nothing has been recorded. The histogram
// is read without synchronization against writers; under load the
// result is an instantaneous estimate, which is what /statsz wants.
func (st *Stats) percentile(p float64) float64 {
	var total uint64
	var counts [histBuckets]uint64
	for i := range st.hist {
		counts[i] = st.hist[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(p * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen > rank {
			return bucketUpperMicros(i)
		}
	}
	return bucketUpperMicros(histBuckets - 1)
}

// windowRate returns requests/sec over the trailing full seconds of the
// sliding window (the current partial second is excluded).
func (st *Stats) windowRate(now time.Time) float64 {
	cur := now.Unix()
	var n uint64
	secs := 0
	for i := 0; i < qpsWindowSlots; i++ {
		stamp := st.qpsStamps[i].Load()
		if stamp >= cur-qpsWindowSlots+1 && stamp < cur {
			n += st.qpsCounts[i].Load()
			secs++
		}
	}
	if secs == 0 {
		return 0
	}
	return float64(n) / float64(secs)
}

// Snapshot is the JSON shape of /statsz.
type Snapshot struct {
	UptimeSec float64 `json:"uptime_sec"`

	Requests    uint64            `json:"requests"`
	ByEndpoint  map[string]uint64 `json:"by_endpoint"`
	Batched     uint64            `json:"batched_requests"`
	Queries     uint64            `json:"queries"`
	BadRequests uint64            `json:"bad_requests"`

	QPSWindow   float64 `json:"qps_window"`   // trailing sliding window
	QPSLifetime float64 `json:"qps_lifetime"` // requests / uptime
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`

	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`

	Swaps uint64 `json:"snapshot_swaps"`
	Epoch uint64 `json:"snapshot_epoch"`
	Users int    `json:"users"`
	K     int    `json:"k"`
}

// snapshot renders the counters; cacheEntries, epoch, users and k come
// from the server, which owns those.
func (st *Stats) snapshot() Snapshot {
	now := time.Now()
	up := now.Sub(st.start).Seconds()
	s := Snapshot{
		UptimeSec:   up,
		Requests:    st.requests.Load(),
		ByEndpoint:  make(map[string]uint64, numEndpoints),
		Batched:     st.batched.Load(),
		Queries:     st.queries.Load(),
		BadRequests: st.badRequest.Load(),
		QPSWindow:   st.windowRate(now),
		P50Micros:   st.percentile(0.50),
		P99Micros:   st.percentile(0.99),
		CacheHits:   st.cacheHits.Load(),
		CacheMisses: st.cacheMiss.Load(),
		Swaps:       st.swaps.Load(),
	}
	for ep := Endpoint(0); ep < numEndpoints; ep++ {
		s.ByEndpoint[ep.String()] = st.byEndpoint[ep].Load()
	}
	if up > 0 {
		s.QPSLifetime = float64(s.Requests) / up
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
	}
	return s
}
