// Package middleware provides the composable HTTP hardening stages the
// serving daemon wraps around its handlers: panic recovery, request-ID
// generation/propagation, structured access logging, response-status
// observation, per-request deadlines, request-body size limits, and
// admission control (load shedding).
//
// Every stage is a plain func(http.Handler) http.Handler with no
// dependency beyond the standard library, so stages compose in any
// order with Chain and are testable in isolation. The order the daemon
// uses (outermost first) is:
//
//	RequestID → AccessLog → Recover → mux
//	    └─ query routes: CountStatus → Shed → BodyLimit → Deadline → handler
//
// RequestID runs first so every later stage (including the access log
// and panic logs) can tag its output; Recover sits inside the loggers
// so a panic-turned-500 is logged like any other response; Shed runs
// before any per-request work so an overloaded server refuses cheaply;
// BodyLimit arms before the handler reads; Deadline bounds everything
// the handler does after admission.
//
// Two stages deliberately do NOT write error responses themselves:
// Deadline only attaches a context deadline — handlers convert expiry
// into 503 (keeping the response shape theirs) — and BodyLimit arms
// http.MaxBytesReader, whose overflow surfaces as *http.MaxBytesError
// at the handler's read (413 there); BodyLimit itself rejects only the
// a-priori case of a Content-Length already above the cap.
package middleware

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"
)

// Middleware is one composable handler-wrapping stage.
type Middleware func(http.Handler) http.Handler

// Chain wraps h in stages so that stages[0] is the outermost: the
// request passes stages[0], stages[1], …, then h.
func Chain(h http.Handler, stages ...Middleware) http.Handler {
	for i := len(stages) - 1; i >= 0; i-- {
		h = stages[i](h)
	}
	return h
}

// StatusRecorder wraps a ResponseWriter and remembers the status code
// and body byte count that passed through it. Status stays 0 until the
// handler writes anything, which is how observers distinguish "handler
// never responded" (a panic mid-flight) from a real response.
type StatusRecorder struct {
	http.ResponseWriter
	Status int
	Bytes  int64
}

func (r *StatusRecorder) WriteHeader(code int) {
	if r.Status == 0 {
		r.Status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *StatusRecorder) Write(b []byte) (int, error) {
	if r.Status == 0 {
		r.Status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.Bytes += int64(n)
	return n, err
}

// ---- request IDs ----

// HeaderRequestID is the header request IDs arrive and leave on.
const HeaderRequestID = "X-Request-ID"

type ctxKey int

const requestIDKey ctxKey = iota

// ridPrefix makes IDs from concurrent daemon instances distinguishable:
// a per-process random prefix plus a per-request counter is cheaper
// than per-request randomness and sorts chronologically within one
// process's logs.
var ridPrefix = func() string {
	var b [4]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b[:])
}()

var ridCounter atomic.Uint64

// RequestID propagates a caller-supplied X-Request-ID (so IDs follow a
// request across tiers) or generates one, stores it in the request
// context, and echoes it on the response.
func RequestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(HeaderRequestID)
			if id == "" || len(id) > 128 {
				id = ridPrefix + "-" + strconv.FormatUint(ridCounter.Add(1), 16)
			}
			w.Header().Set(HeaderRequestID, id)
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
		})
	}
}

// GetRequestID returns the request's ID, or "" outside a RequestID
// stage.
func GetRequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// ---- panic recovery ----

// Recover turns a handler panic into a 500 (when nothing has been
// written yet), logs it with the request ID and a stack trace through
// logf, calls onPanic (counter hook), and keeps the process alive.
// http.ErrAbortHandler is re-panicked: it is net/http's sanctioned way
// to abort a response and must keep working.
func Recover(logf func(format string, args ...any), onPanic func()) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := &StatusRecorder{ResponseWriter: w}
			defer func() {
				v := recover()
				if v == nil {
					return
				}
				if v == http.ErrAbortHandler {
					panic(v)
				}
				if onPanic != nil {
					onPanic()
				}
				if logf != nil {
					logf("panic serving %s %s (request %s): %v\n%s",
						r.Method, r.URL.Path, GetRequestID(r.Context()), v, debug.Stack())
				}
				if rec.Status == 0 {
					http.Error(rec, "internal server error", http.StatusInternalServerError)
				}
			}()
			next.ServeHTTP(rec, r)
		})
	}
}

// ---- access logging ----

// AccessLog writes one line per completed request through logf:
// request ID, remote address, method, path, status, response bytes and
// wall time. A request that panicked before writing logs status 0 (the
// recovery stage, which runs inside this one, normally converts those
// to 500 first).
func AccessLog(logf func(format string, args ...any)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := &StatusRecorder{ResponseWriter: w}
			start := time.Now()
			defer func() {
				logf("access rid=%s remote=%s method=%s path=%s status=%d bytes=%d dur=%s",
					GetRequestID(r.Context()), r.RemoteAddr, r.Method, r.URL.Path,
					rec.Status, rec.Bytes, time.Since(start).Round(time.Microsecond))
			}()
			next.ServeHTTP(rec, r)
		})
	}
}

// ---- status observation ----

// CountStatus reports each response's status code to fn once the
// request finishes. Requests that never wrote (status 0 — an aborted
// or panicking handler whose 500 is written further out) are not
// reported; the recovery stage accounts those itself.
func CountStatus(fn func(status int)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := &StatusRecorder{ResponseWriter: w}
			defer func() {
				if rec.Status != 0 {
					fn(rec.Status)
				}
			}()
			next.ServeHTTP(rec, r)
		})
	}
}

// ---- per-request deadlines ----

// Deadline attaches a context deadline of d to every request. It does
// not write the 503 itself: handlers that block (worker-pool admission,
// long waits) select on the context and convert expiry into 503, which
// keeps response bodies in the handler's format and the fast path free
// of buffering. See server.(*Server).answer.
func Deadline(d time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// ---- body size limits ----

// BodyLimit caps the request body at n bytes. A declared Content-Length
// above the cap is rejected immediately with 413 (onTooLarge fires);
// otherwise the body is wrapped in http.MaxBytesReader, so a lying or
// chunked client trips *http.MaxBytesError at the handler's read and
// the handler responds 413 there.
func BodyLimit(n int64, onTooLarge func()) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.ContentLength > n {
				if onTooLarge != nil {
					onTooLarge()
				}
				w.Header().Set("Connection", "close")
				http.Error(w, fmt.Sprintf("request body exceeds the %d-byte limit", n),
					http.StatusRequestEntityTooLarge)
				return
			}
			if r.Body != nil {
				r.Body = http.MaxBytesReader(w, r.Body, n)
			}
			next.ServeHTTP(w, r)
		})
	}
}

// ---- admission control / load shedding ----

// Shed bounds the number of requests past this stage at limit: request
// limit+1 is refused with 429 and a Retry-After hint instead of
// queueing unboundedly behind the worker pool. inFlight is the live
// gauge (exported via /metrics); onShed fires per refused request.
//
// The limit is deliberately above the worker-pool size: requests
// between the pool size and the limit wait briefly at the pool's
// semaphore (cheap, bounded), and only genuine stampedes — more waiters
// than the deadline could ever drain — are refused.
func Shed(limit int, retryAfter time.Duration, inFlight *atomic.Int64, onShed func()) Middleware {
	retrySecs := strconv.Itoa(int((retryAfter + time.Second - 1) / time.Second))
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if n := inFlight.Add(1); n > int64(limit) {
				inFlight.Add(-1)
				if onShed != nil {
					onShed()
				}
				w.Header().Set("Retry-After", retrySecs)
				http.Error(w, "server overloaded, retry later", http.StatusTooManyRequests)
				return
			}
			defer inFlight.Add(-1)
			next.ServeHTTP(w, r)
		})
	}
}
