package middleware

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoHandler writes 200 and the request ID it sees in its context.
var echoHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	io.WriteString(w, GetRequestID(r.Context()))
})

func TestChainOrder(t *testing.T) {
	var order []string
	stage := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		order = append(order, "handler")
	}), stage("outer"), stage("inner"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if got := strings.Join(order, ","); got != "outer,inner,handler" {
		t.Fatalf("chain order %s, want outer,inner,handler", got)
	}
}

func TestRequestID(t *testing.T) {
	h := Chain(echoHandler, RequestID())
	tests := []struct {
		name   string
		header string
		echoed bool // response body/header must equal the supplied header
	}{
		{"generated when absent", "", false},
		{"propagated when supplied", "upstream-req-7", true},
		{"regenerated when oversized", strings.Repeat("x", 200), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("GET", "/", nil)
			if tc.header != "" {
				req.Header.Set(HeaderRequestID, tc.header)
			}
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			hdr := rr.Header().Get(HeaderRequestID)
			if hdr == "" || rr.Body.String() != hdr {
				t.Fatalf("header %q, context-visible id %q; want non-empty and equal", hdr, rr.Body.String())
			}
			if tc.echoed && hdr != tc.header {
				t.Fatalf("supplied id %q, echoed %q", tc.header, hdr)
			}
			if !tc.echoed && hdr == tc.header {
				t.Fatalf("oversized/absent id %q was echoed verbatim", tc.header)
			}
		})
	}
	// Two generated IDs must differ.
	a, b := httptest.NewRecorder(), httptest.NewRecorder()
	h.ServeHTTP(a, httptest.NewRequest("GET", "/", nil))
	h.ServeHTTP(b, httptest.NewRequest("GET", "/", nil))
	if a.Header().Get(HeaderRequestID) == b.Header().Get(HeaderRequestID) {
		t.Fatal("two generated request IDs collided")
	}
}

func TestRecover(t *testing.T) {
	var logs []string
	var panics atomic.Int64
	logf := func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) }
	onPanic := func() { panics.Add(1) }

	tests := []struct {
		name       string
		handler    http.HandlerFunc
		wantStatus int
		wantPanics int64
	}{
		{"panic before write becomes 500", func(w http.ResponseWriter, r *http.Request) {
			panic("boom")
		}, http.StatusInternalServerError, 1},
		{"normal response passes through", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusTeapot)
		}, http.StatusTeapot, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			logs = nil
			panics.Store(0)
			h := Chain(tc.handler, RequestID(), Recover(logf, onPanic))
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/x", nil))
			if rr.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d", rr.Code, tc.wantStatus)
			}
			if panics.Load() != tc.wantPanics {
				t.Fatalf("onPanic fired %d times, want %d", panics.Load(), tc.wantPanics)
			}
			if tc.wantPanics > 0 {
				if len(logs) != 1 || !strings.Contains(logs[0], "boom") || !strings.Contains(logs[0], "request ") {
					t.Fatalf("panic log missing value or request id: %q", logs)
				}
			}
		})
	}

	// ErrAbortHandler must pass through untouched (net/http contract).
	h := Recover(logf, onPanic)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler was swallowed")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

func TestAccessLog(t *testing.T) {
	var line string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		io.WriteString(w, "four")
	}), RequestID(), AccessLog(func(format string, args ...any) { line = fmt.Sprintf(format, args...) }))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/topk", nil))
	for _, want := range []string{"method=POST", "path=/v1/topk", "status=202", "bytes=4", "rid="} {
		if !strings.Contains(line, want) {
			t.Fatalf("access line %q missing %q", line, want)
		}
	}
}

func TestCountStatus(t *testing.T) {
	tests := []struct {
		name    string
		handler http.HandlerFunc
		want    int // 0 = fn must not fire
	}{
		{"explicit status", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(503) }, 503},
		{"implicit 200 via write", func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "ok") }, 200},
		{"no write, no count", func(w http.ResponseWriter, r *http.Request) {}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := 0
			h := CountStatus(func(s int) { got = s })(tc.handler)
			h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
			if got != tc.want {
				t.Fatalf("counted status %d, want %d", got, tc.want)
			}
		})
	}
}

// TestDeadline: the stage attaches the deadline; a cooperating handler
// converts expiry into 503 (the daemon's handlers do exactly this).
func TestDeadline(t *testing.T) {
	cooperating := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			w.WriteHeader(http.StatusServiceUnavailable)
		case <-time.After(5 * time.Second):
			w.WriteHeader(http.StatusOK)
		}
	})
	rr := httptest.NewRecorder()
	Chain(cooperating, Deadline(5*time.Millisecond)).
		ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: status %d, want 503", rr.Code)
	}

	// A fast handler must see a live context and an actual deadline.
	rr = httptest.NewRecorder()
	Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); !ok {
			t.Error("no deadline on request context")
		}
		if r.Context().Err() != nil {
			t.Errorf("context already dead: %v", r.Context().Err())
		}
		w.WriteHeader(http.StatusOK)
	}), Deadline(time.Minute)).ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("fast handler under deadline: status %d, want 200", rr.Code)
	}
}

func TestBodyLimit(t *testing.T) {
	var tooLarge atomic.Int64
	readAll := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := io.ReadAll(r.Body); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				tooLarge.Add(1)
				http.Error(w, "too large", http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	h := Chain(readAll, BodyLimit(8, func() { tooLarge.Add(1) }))

	tests := []struct {
		name       string
		body       string
		wantStatus int
		wantCount  int64
	}{
		{"under the cap", "1234", http.StatusOK, 0},
		{"content-length over the cap rejected early", strings.Repeat("x", 64), http.StatusRequestEntityTooLarge, 1},
		{"exactly at the cap", "12345678", http.StatusOK, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tooLarge.Store(0)
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("POST", "/", strings.NewReader(tc.body)))
			if rr.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d", rr.Code, tc.wantStatus)
			}
			if tooLarge.Load() != tc.wantCount {
				t.Fatalf("tooLarge count %d, want %d", tooLarge.Load(), tc.wantCount)
			}
		})
	}

	// A lying client (chunked / no Content-Length) trips MaxBytesReader
	// at the handler's read instead.
	tooLarge.Store(0)
	req := httptest.NewRequest("POST", "/", strings.NewReader(strings.Repeat("y", 64)))
	req.ContentLength = -1
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusRequestEntityTooLarge || tooLarge.Load() != 1 {
		t.Fatalf("chunked overflow: status %d, count %d; want 413, 1", rr.Code, tooLarge.Load())
	}
}

func TestShed(t *testing.T) {
	var gauge atomic.Int64
	var shed atomic.Int64
	block := make(chan struct{})
	started := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-block
		w.WriteHeader(http.StatusOK)
	}), Shed(2, 3*time.Second, &gauge, func() { shed.Add(1) }))

	// Fill both slots with blocked requests.
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
			codes[i] = rr.Code
		}(i)
		<-started
	}
	if g := gauge.Load(); g != 2 {
		t.Fatalf("in-flight gauge %d with 2 blocked requests, want 2", g)
	}

	// The third request must be refused with 429 + Retry-After.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit request: status %d, want 429", rr.Code)
	}
	if ra := rr.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", ra)
	}
	if shed.Load() != 1 {
		t.Fatalf("onShed fired %d times, want 1", shed.Load())
	}

	close(block)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("admitted request %d: status %d, want 200", i, c)
		}
	}
	if g := gauge.Load(); g != 0 {
		t.Fatalf("in-flight gauge %d after drain, want 0", g)
	}
}

// TestShedGaugeSurvivesPanic: a panicking admitted request must still
// release its slot (the decrement is deferred).
func TestShedGaugeSurvivesPanic(t *testing.T) {
	var gauge atomic.Int64
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), Recover(nil, nil), Shed(1, time.Second, &gauge, nil))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if g := gauge.Load(); g != 0 {
		t.Fatalf("gauge %d after panicking request, want 0", g)
	}
}

// TestContextPlumb: GetRequestID on a bare context is empty, not a
// panic.
func TestContextPlumb(t *testing.T) {
	if id := GetRequestID(context.Background()); id != "" {
		t.Fatalf("bare context yielded id %q", id)
	}
}
