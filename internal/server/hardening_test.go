// Regression tests for the production-hardening layer: panic recovery,
// body-size caps, admission control, per-request deadlines, request-ID
// plumbing, reload-failure surfacing and the /metrics exposition. Each
// failure mode must map to its distinct status code (500/413/429/503)
// and its own counter, and none may take the daemon down.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestServerPanicRecovery: an injected handler panic must answer 500,
// log with the request ID, bump panics_total — and the very next
// request must be served normally (the satellite's regression: a panic
// used to kill the connection with no log or counter).
func TestServerPanicRecovery(t *testing.T) {
	ix := testIndex(t, 1)
	var mu sync.Mutex
	var logs []string
	s, ts := newTestServer(t, ix, Config{
		FaultInjection: true,
		Logf: func(format string, args ...any) {
			mu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/admin/panic", nil)
	req.Header.Set("X-Request-ID", "panic-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("the panicking request failed at transport level (connection dropped?): %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected panic: status %d, want 500", resp.StatusCode)
	}
	mu.Lock()
	joined := strings.Join(logs, "\n")
	mu.Unlock()
	if !strings.Contains(joined, "panic-probe-1") || !strings.Contains(joined, "/admin/panic") {
		t.Fatalf("panic log missing request id or path:\n%s", joined)
	}

	// The daemon survived: queries still answer, and the counter shows.
	var rec recommendResult
	getJSON(t, ts.URL+"/v1/recommend?user=1&n=5", &rec)
	if want := emptyNotNil(ix.Recommend(1, 5)); !slices.Equal(rec.Items, want) {
		t.Fatalf("post-panic query diverged: %v vs %v", rec.Items, want)
	}
	var st Snapshot
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Panics != 1 {
		t.Fatalf("panics_total = %d after one injected panic, want 1", st.Panics)
	}
	if st.ByStatus["500"] != 1 {
		t.Fatalf("by_status[500] = %d, want 1 (%v)", st.ByStatus["500"], st.ByStatus)
	}
	if s.Stats() == nil {
		t.Fatal("stats accessor broke")
	}
}

// TestServerBodyLimit413: oversized batch bodies are refused with 413
// (both the declared-length fast path and the lying-client read path),
// counted, and distinct from 400.
func TestServerBodyLimit413(t *testing.T) {
	ix := testIndex(t, 1)
	_, ts := newTestServer(t, ix, Config{MaxBodyBytes: 512})

	big := []byte(`{"users":[` + strings.Repeat("1,", 600) + `1],"n":5}`)
	resp, err := http.Post(ts.URL+"/v1/recommend", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}

	// A chunked request hides its length; the cap must still hold.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/recommend", io.NopCloser(bytes.NewReader(big)))
	req.ContentLength = -1
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("chunked oversized body: status %d, want 413", resp.StatusCode)
	}

	var st Snapshot
	getJSON(t, ts.URL+"/statsz", &st)
	if st.BodyTooLarge != 2 {
		t.Fatalf("body_too_large_total = %d, want 2", st.BodyTooLarge)
	}
	// An under-cap but over-batch request stays a 400 (fan-out cap), not
	// a 413 (byte cap) — the two limits are distinct failure modes.
	if code := postJSON(t, ts.URL+"/v1/recommend", batchRequest{Users: []int32{1, 2, 3}, N: 5}, nil); code != 200 {
		t.Fatalf("in-bounds batch: status %d", code)
	}
	over := batchRequest{Users: make([]int32, 60)}
	_, ts2 := newTestServer(t, ix, Config{MaxBodyBytes: 512, MaxBatch: 8})
	if code := postJSON(t, ts2.URL+"/v1/recommend", over, nil); code != 400 {
		t.Fatalf("over-batch under-cap request: status %d, want 400", code)
	}
}

// TestServerShed429: with admission capped, requests beyond the limit
// are refused with 429 + Retry-After while the admitted ones complete;
// the in-flight gauge and shed counter account for it.
func TestServerShed429(t *testing.T) {
	ix := testIndex(t, 1)
	_, ts := newTestServer(t, ix, Config{
		FaultInjection: true,
		MaxInFlight:    2,
		ShedRetryAfter: 2 * time.Second,
		RequestTimeout: 10 * time.Second,
	})

	// Two delay requests occupy both admission slots.
	var wg sync.WaitGroup
	var held [2]int
	for i := range held {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/admin/delay?d=800ms")
			if err != nil {
				held[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			held[i] = resp.StatusCode
		}(i)
	}
	// Wait until the gauge shows both slots taken.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st Snapshot
		getJSON(t, ts.URL+"/statsz", &st)
		if st.InFlight >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in-flight gauge never reached 2 (at %d)", st.InFlight)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/recommend?user=1&n=5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-admission query: status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	wg.Wait()
	for i, code := range held {
		if code != http.StatusOK {
			t.Fatalf("admitted delay request %d finished with %d, want 200", i, code)
		}
	}

	var st Snapshot
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Shed < 1 || st.ByStatus["429"] < 1 {
		t.Fatalf("shed accounting: shed_total=%d by_status[429]=%d, want >=1 both", st.Shed, st.ByStatus["429"])
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight gauge %d after drain, want 0", st.InFlight)
	}
	// Shedding must not poison later traffic.
	var rec recommendResult
	getJSON(t, ts.URL+"/v1/recommend?user=1&n=5", &rec)
}

// TestServerDeadline503: a request that cannot finish inside the
// per-request deadline answers 503 and bumps deadline_expired_total.
func TestServerDeadline503(t *testing.T) {
	ix := testIndex(t, 1)
	_, ts := newTestServer(t, ix, Config{
		FaultInjection: true,
		RequestTimeout: 50 * time.Millisecond,
	})
	resp, err := http.Get(ts.URL + "/admin/delay?d=5s")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-deadline request: status %d, want 503 (body %s)", resp.StatusCode, body)
	}
	var st Snapshot
	getJSON(t, ts.URL+"/statsz", &st)
	if st.DeadlineExpired != 1 || st.ByStatus["503"] != 1 {
		t.Fatalf("deadline accounting: expired=%d by_status[503]=%d, want 1 both", st.DeadlineExpired, st.ByStatus["503"])
	}
	// Fast queries sail under the same deadline.
	var rec recommendResult
	getJSON(t, ts.URL+"/v1/recommend?user=1&n=5", &rec)
}

// TestServerRequestID: supplied IDs echo back; absent ones are
// generated; both arrive on every surface (including errors).
func TestServerRequestID(t *testing.T) {
	ix := testIndex(t, 1)
	_, ts := newTestServer(t, ix, Config{})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/recommend?user=1&n=5", nil)
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Fatalf("supplied request id came back as %q", got)
	}

	resp, err = http.Get(ts.URL + "/v1/recommend?user=abc") // a 400 still carries an id
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("no generated request id on an error response")
	}
}

// TestServerReloadFailureSurfacing: a truncated then a byte-flipped
// snapshot must each be refused (503, old epoch keeps serving), be
// classified in /statsz with the typed-error kind, and a subsequent
// good reload must succeed — the full operator loop of the corrupt-
// snapshot runbook.
func TestServerReloadFailureSurfacing(t *testing.T) {
	ix := testIndex(t, 1)
	dir := t.TempDir()
	snap := filepath.Join(dir, "index.c2")
	if err := ix.Save(snap); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, ix, Config{SnapshotPath: snap})
	good, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	wantItems := emptyNotNil(ix.Recommend(1, 5))

	reload := func() (int, reloadResponse) {
		resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var rr reloadResponse
		json.NewDecoder(resp.Body).Decode(&rr)
		resp.Body.Close()
		return resp.StatusCode, rr
	}

	for i, corrupt := range [][]byte{
		good[:len(good)/2], // truncated
		append(append([]byte{}, good[:40]...), good[41:]...), // byte removed mid-payload
	} {
		replaceFile(t, snap, corrupt)
		code, rr := reload()
		if code != http.StatusServiceUnavailable || rr.Kind != "corrupt" {
			t.Fatalf("corrupt reload %d: status %d kind %q, want 503/corrupt", i, code, rr.Kind)
		}
		if s.Epoch() != 1 {
			t.Fatalf("corrupt reload %d advanced the epoch to %d", i, s.Epoch())
		}
		// The old epoch keeps serving identical answers.
		var rec recommendResult
		getJSON(t, ts.URL+"/v1/recommend?user=1&n=5", &rec)
		if !slices.Equal(rec.Items, wantItems) {
			t.Fatalf("serving diverged after refused reload %d", i)
		}
		var st Snapshot
		getJSON(t, ts.URL+"/statsz", &st)
		if st.ReloadFailures != uint64(i+1) || st.LastReloadKind != "corrupt" || st.LastReloadError == "" {
			t.Fatalf("statsz after refused reload %d: failures=%d kind=%q err=%q",
				i, st.ReloadFailures, st.LastReloadKind, st.LastReloadError)
		}
	}

	// Restore and reload: the daemon recovers without a restart.
	replaceFile(t, snap, good)
	code, rr := reload()
	if code != http.StatusOK || rr.Epoch != 2 {
		t.Fatalf("good reload after corruption: status %d epoch %d, want 200/2", code, rr.Epoch)
	}
	var st Snapshot
	getJSON(t, ts.URL+"/statsz", &st)
	if st.ReloadFailures != 2 || st.Epoch != 2 {
		t.Fatalf("final statsz: failures=%d epoch=%d, want 2/2", st.ReloadFailures, st.Epoch)
	}
}

// TestServerMetricsReconcile drives a known request mix and checks the
// /metrics exposition agrees with the client's own accounting — the
// unit-scale version of the soak harness's reconciliation gate.
func TestServerMetricsReconcile(t *testing.T) {
	ix := testIndex(t, 1)
	_, ts := newTestServer(t, ix, Config{MaxBodyBytes: 512})

	const okSingles = 7
	for i := 0; i < okSingles; i++ {
		var rec recommendResult
		getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&n=5", ts.URL, i%3), &rec)
	}
	var batch batchResponse[recommendResult]
	if code := postJSON(t, ts.URL+"/v1/recommend", batchRequest{Users: []int32{0, 1, 2, 3}, N: 5}, &batch); code != 200 {
		t.Fatalf("batch status %d", code)
	}
	// One 400 and one 413.
	resp, _ := http.Get(ts.URL + "/v1/recommend?user=abc")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	big := bytes.Repeat([]byte("x"), 1024)
	resp, _ = http.Post(ts.URL+"/v1/recommend", "application/json", bytes.NewReader(big))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	m := parseMetrics(t, string(text))

	wantOK := uint64(okSingles + 1)
	if m[`c2_responses_total{code="200"}`] != wantOK {
		t.Fatalf("responses 200 = %d, want %d", m[`c2_responses_total{code="200"}`], wantOK)
	}
	if m[`c2_responses_total{code="400"}`] != 1 || m[`c2_responses_total{code="413"}`] != 1 {
		t.Fatalf("responses 400=%d 413=%d, want 1 each",
			m[`c2_responses_total{code="400"}`], m[`c2_responses_total{code="413"}`])
	}
	if m[`c2_requests_total{endpoint="recommend"}`] != wantOK {
		t.Fatalf("requests{recommend} = %d, want %d", m[`c2_requests_total{endpoint="recommend"}`], wantOK)
	}
	if m["c2_queries_total"] != uint64(okSingles+4) {
		t.Fatalf("queries_total = %d, want %d", m["c2_queries_total"], okSingles+4)
	}
	if m["c2_bad_requests_total"] != 1 || m["c2_body_too_large_total"] != 1 {
		t.Fatalf("bad=%d too_large=%d, want 1 each", m["c2_bad_requests_total"], m["c2_body_too_large_total"])
	}
	if m["c2_request_duration_seconds_count"] != wantOK {
		t.Fatalf("histogram count %d, want %d", m["c2_request_duration_seconds_count"], wantOK)
	}
	if m[`c2_request_duration_seconds_bucket{le="+Inf"}`] != wantOK {
		t.Fatalf("+Inf bucket %d, want %d", m[`c2_request_duration_seconds_bucket{le="+Inf"}`], wantOK)
	}
	if m["c2_snapshot_epoch"] != 1 {
		t.Fatalf("snapshot epoch gauge %d, want 1", m["c2_snapshot_epoch"])
	}
	// Cache: the 3 distinct single queries miss, the 4 repeats hit, the
	// batch misses.
	if hits, misses := m["c2_cache_hits_total"], m["c2_cache_misses_total"]; hits != 4 || misses != 4 {
		t.Fatalf("cache hits=%d misses=%d, want 4/4", hits, misses)
	}
	// Bucket monotonicity.
	prev := uint64(0)
	re := regexp.MustCompile(`^c2_request_duration_seconds_bucket\{le="[^+]`)
	for _, line := range strings.Split(string(text), "\n") {
		if re.MatchString(line) {
			v := m[strings.Fields(line)[0]]
			if v < prev {
				t.Fatalf("histogram buckets not monotone at %q", line)
			}
			prev = v
		}
	}
}

// parseMetrics reads a Prometheus text exposition into name{labels} →
// integer value (float metrics are truncated; the reconciled counters
// are all integers).
func parseMetrics(t *testing.T, text string) map[string]uint64 {
	t.Helper()
	m := make(map[string]uint64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("unparseable metrics value %q: %v", line, err)
		}
		m[fields[0]] = uint64(v)
	}
	return m
}

// TestServerInFlightGaugeUnderLoad: the gauge must return to zero after
// a concurrent burst (no leaked slots), even with mixed outcomes.
func TestServerInFlightGaugeUnderLoad(t *testing.T) {
	ix := testIndex(t, 1)
	_, ts := newTestServer(t, ix, Config{MaxInFlight: 8})
	var wg sync.WaitGroup
	var bad atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/v1/recommend?user=%d&n=5", ts.URL, i))
			if err != nil {
				bad.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 && resp.StatusCode != 429 {
				bad.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d requests ended with an unexpected status", bad.Load())
	}
	var st Snapshot
	getJSON(t, ts.URL+"/statsz", &st)
	if st.InFlight != 0 {
		t.Fatalf("in-flight gauge %d after the burst drained, want 0", st.InFlight)
	}
}
