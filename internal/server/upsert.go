package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"c2knn"
)

// The write path of the serving daemon: POST /v1/upsert absorbs
// profiles into the served index's delta overlay (sub-second, no
// rebuild), and the compactor — POST /admin/compact or the background
// loop StartCompactor runs — folds base + delta into a fresh snapshot
// on disk and hot-swaps it in without dropping the overlay or any
// upsert that raced in during the fold.
//
// Topology contract: exactly one writable daemon per snapshot. Read
// replicas and routers run -read-only and refuse writes with 403
// (kind "read-only"), so a misdirected client learns immediately that
// its writes would be lost rather than silently diverging one replica.

// upsertEntry is one profile write: user -1 (or omitted) inserts a new
// user, an existing id merges the items into that user's profile.
type upsertEntry struct {
	User  *int32  `json:"user,omitempty"`
	Items []int32 `json:"items"`
}

func (e upsertEntry) user() int32 {
	if e.User == nil {
		return -1
	}
	return *e.User
}

// upsertRequest accepts both request forms: a single entry inline
// ({"user":U,"items":[...]}) or a batch ({"upserts":[...]}).
type upsertRequest struct {
	upsertEntry
	Upserts []upsertEntry `json:"upserts,omitempty"`
}

// upsertResult is one entry's outcome; failed entries carry Error and
// a zero result (a batch is not transactional — earlier entries stay
// absorbed).
type upsertResult struct {
	c2knn.UpsertResult
	Error string `json:"error,omitempty"`
}

// refusalResponse is the typed 403 body of the write surface: kind
// "read-only" means this replica never accepts writes (find the
// writable daemon), "disabled" means the served index has no delta
// overlay (start the daemon with -upserts, on a snapshot that carries
// fingerprints).
type refusalResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func (s *Server) refuseWrite(w http.ResponseWriter, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusForbidden)
	json.NewEncoder(w).Encode(refusalResponse{Error: msg, Kind: kind})
}

// serveUpsert handles POST /v1/upsert. Writes serialize on the
// overlay's writer lock; the handler still passes through the worker
// pool so a write stampede cannot starve reads of pool slots.
func (s *Server) serveUpsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "upsert requires POST", http.StatusMethodNotAllowed)
		return
	}
	if s.cfg.ReadOnly {
		s.refuseWrite(w, "read-only", "this replica is read-only; send writes to the writable daemon")
		return
	}
	var req upsertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.tooLarge(w)
			return
		}
		s.badRequest(w, "invalid JSON body: "+err.Error())
		return
	}
	batch := req.Upserts != nil
	entries := req.Upserts
	if !batch {
		entries = []upsertEntry{req.upsertEntry}
	}
	if len(entries) == 0 {
		s.badRequest(w, `"upserts" must be a non-empty array`)
		return
	}
	if len(entries) > s.cfg.MaxBatch {
		s.badRequest(w, fmt.Sprintf("batch of %d upserts exceeds the maximum of %d", len(entries), s.cfg.MaxBatch))
		return
	}

	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		s.answerError(w, r, r.Context().Err())
		return
	}
	defer func() { <-s.sem }()
	// Pin the index across the writes, exactly as answer does for reads:
	// a compaction swap displacing this index must not unmap its base
	// pages while an upsert is scoring against them.
	var st *state
	for {
		st = s.st.Load()
		if st.ix.Retain() {
			break
		}
	}
	defer st.ix.Release()
	if !st.ix.Upserts() {
		s.refuseWrite(w, "disabled", "upserts are not enabled on this daemon (start with -upserts)")
		return
	}

	results := make([]upsertResult, len(entries))
	for i, e := range entries {
		start := time.Now()
		res, err := st.ix.Upsert(e.user(), e.Items)
		if err != nil {
			results[i] = upsertResult{Error: err.Error()}
			s.stats.RecordUpsertError()
			continue
		}
		results[i] = upsertResult{UpsertResult: res}
		s.stats.RecordUpsert(time.Since(start))
	}
	w.Header().Set("Content-Type", "application/json")
	if !batch {
		if results[0].Error != "" {
			s.badRequest(w, results[0].Error)
			return
		}
		json.NewEncoder(w).Encode(results[0])
		return
	}
	json.NewEncoder(w).Encode(batchResponse[upsertResult]{Results: results})
}

// CompactResult reports one completed compaction swap.
type CompactResult struct {
	Status   string  `json:"status"`
	Epoch    uint64  `json:"epoch"`
	Users    int     `json:"users"`
	Absorbed uint64  `json:"absorbed"`
	TookSec  float64 `json:"took_sec"`
}

// CompactNow folds the served index's delta into a fresh snapshot at
// Config.SnapshotPath, reloads it, carries the overlay (and any upsert
// that raced in during the fold) onto the new index, and swaps it into
// service — the full freshness cycle, with queries and upserts running
// throughout. Serialized with Reload/Swap on the same lock.
func (s *Server) CompactNow() (CompactResult, error) {
	if s.cfg.SnapshotPath == "" {
		return CompactResult{}, errors.New("server: no snapshot path configured; cannot compact")
	}
	start := time.Now()
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	old := s.st.Load()
	ds, ok := old.ix.DeltaStats()
	if !ok {
		return CompactResult{}, c2knn.ErrUpsertsDisabled
	}
	marker, err := old.ix.CompactInto(s.cfg.SnapshotPath)
	if err != nil {
		err = fmt.Errorf("server: compact into %s: %w", s.cfg.SnapshotPath, err)
		s.stats.RecordCompactionFailure(err.Error())
		return CompactResult{}, err
	}
	ix, err := c2knn.LoadIndexMode(s.cfg.SnapshotPath, s.cfg.LoadMode)
	if err != nil {
		err = fmt.Errorf("server: reload compacted %s: %w", s.cfg.SnapshotPath, err)
		s.stats.RecordCompactionFailure(err.Error())
		return CompactResult{}, err
	}
	if err := ix.AdoptDeltaFrom(old.ix, marker); err != nil {
		ix.Close()
		err = fmt.Errorf("server: adopt delta after compaction: %w", err)
		s.stats.RecordCompactionFailure(err.Error())
		return CompactResult{}, err
	}
	s.st.Store(&state{ix: ix, epoch: old.epoch + 1})
	s.cache.Flush()
	s.stats.RecordSwap()
	s.stats.RecordCompaction()
	// Readers still draining on the old index fall back to its plain
	// base rows (memory-safe; the overlay now serves through the new
	// index only). Its mapping unmaps once the last of them releases.
	old.ix.DetachDelta()
	old.ix.Close()
	return CompactResult{
		Status:   "ok",
		Epoch:    old.epoch + 1,
		Users:    ix.NumUsers(),
		Absorbed: uint64(ds.Depth),
		TookSec:  time.Since(start).Seconds(),
	}, nil
}

// serveCompact handles POST /admin/compact: one synchronous compaction
// cycle. Mirrors /admin/reload's discipline (observed, never shed or
// deadlined — folding a big snapshot may legitimately outlive a query
// deadline).
func (s *Server) serveCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "compact requires POST", http.StatusMethodNotAllowed)
		return
	}
	if s.cfg.ReadOnly {
		s.refuseWrite(w, "read-only", "this replica is read-only; compact on the writable daemon")
		return
	}
	res, err := s.CompactNow()
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		if errors.Is(err, c2knn.ErrUpsertsDisabled) {
			s.refuseWrite(w, "disabled", "upserts are not enabled on this daemon (start with -upserts)")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
		return
	}
	json.NewEncoder(w).Encode(res)
}

// StartCompactor launches the background compaction loop: every period
// it checks the overlay and runs a compaction cycle once the delta is
// at least depth upserts deep or its oldest un-folded upsert is older
// than age (either threshold ≤ 0 disables that trigger). The returned
// stop function halts the loop and waits for an in-progress cycle.
func (s *Server) StartCompactor(period time.Duration, depth int, age time.Duration) (stop func()) {
	if period <= 0 {
		period = 5 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
			case <-done:
				return
			}
			ds, ok := s.st.Load().ix.DeltaStats()
			if !ok || ds.Depth == 0 {
				continue
			}
			if (depth <= 0 || ds.Depth < depth) && (age <= 0 || ds.AgeSec < age.Seconds()) {
				continue
			}
			if res, err := s.CompactNow(); err != nil {
				if s.cfg.Logf != nil {
					s.cfg.Logf("compactor: %v", err)
				}
			} else if s.cfg.Logf != nil {
				s.cfg.Logf("compactor: folded %d upserts into %s in %.3fs (epoch %d, %d users)",
					res.Absorbed, s.cfg.SnapshotPath, res.TookSec, res.Epoch, res.Users)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
