// Package server implements the c2knn HTTP serving daemon: a
// long-running process that loads a persist snapshot into a
// c2knn.Index and answers neighbor/top-k/recommendation queries over
// HTTP, which is how the paper's "cheap clustering makes KNN graphs
// servable" claim meets actual traffic.
//
// Design, from the request inward:
//
//   - Every query endpoint (/v1/neighbors, /v1/topk, /v1/recommend)
//     accepts a single-user GET (?user=U&k=K / &n=N) and a batched POST
//     ({"users":[...],"k":K} / {"users":[...],"n":N}), the latter served
//     by the Index batch methods so scoring scratch amortizes over the
//     batch.
//   - A bounded worker pool (a semaphore of Config.MaxConcurrent slots)
//     caps the number of requests touching an index at once; excess
//     requests queue at the semaphore rather than stampeding the CPU.
//   - Results are cached in a sharded LRU keyed on (endpoint, snapshot
//     epoch, params, users). Values are fully marshaled response bodies,
//     so a hit writes bytes straight to the wire; the hit path performs
//     zero allocations.
//   - The served index is an atomic pointer. Swap/Reload install a new
//     snapshot without pausing traffic: in-flight requests keep the
//     index they started with, later requests see the new one, and the
//     epoch in every cache key retires stale entries wholesale
//     (zero-downtime hot swap; wired to SIGHUP and POST /admin/reload
//     by cmd/c2serve).
//   - /healthz reports liveness and the current snapshot; /statsz
//     reports qps (sliding window and lifetime), p50/p99 latency,
//     per-endpoint counts, and cache hit rate.
package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"c2knn"
	"c2knn/internal/server/middleware"
	"c2knn/internal/similarity"
)

// Config parameterizes a Server; the zero value gets sensible defaults.
type Config struct {
	// SnapshotPath is the file Reload re-reads; empty disables Reload
	// (Swap still works).
	SnapshotPath string
	// LoadMode selects how Reload materializes the snapshot (mmap'd
	// views vs copy-decode); the zero value is c2knn.LoadAuto. cmd's
	// -load flag sets it.
	LoadMode c2knn.LoadMode
	// MaxConcurrent bounds the worker pool: at most this many requests
	// execute index work simultaneously (default 4×GOMAXPROCS).
	MaxConcurrent int
	// CacheEntries sizes the result cache (default 4096; negative
	// disables caching).
	CacheEntries int
	// CacheShards is the lock-domain count of the result cache
	// (default 16, rounded up to a power of two).
	CacheShards int
	// CacheMaxBytes bounds the cache's total key+value payload
	// (default 64 MiB) — the entry count alone would not cap memory,
	// since batched response bodies can reach megabytes each.
	CacheMaxBytes int64
	// MaxBatch bounds the user count of one batched request
	// (default 1024).
	MaxBatch int
	// MaxResults bounds k/n in a request (default 1000).
	MaxResults int
	// MaxBodyBytes bounds a request body (default 1 MiB); over-cap
	// requests are refused with 413.
	MaxBodyBytes int64
	// RequestTimeout is the per-request deadline on query endpoints:
	// a request that cannot be answered within it gets 503
	// (default 10s; negative disables).
	RequestTimeout time.Duration
	// MaxInFlight is the admission-control bound: at most this many
	// requests may be past the shed stage at once — the excess is
	// refused with 429 + Retry-After instead of queueing unboundedly
	// behind the worker pool (default 64×MaxConcurrent; negative
	// disables shedding).
	MaxInFlight int
	// ShedRetryAfter is the Retry-After hint on shed responses
	// (default 1s).
	ShedRetryAfter time.Duration
	// Logf receives panic reports (with stacks and request IDs); nil
	// discards them. cmd/c2serve passes log.Printf.
	Logf func(format string, args ...any)
	// AccessLogf, when non-nil, enables the access-log stage: one line
	// per completed request.
	AccessLogf func(format string, args ...any)
	// FaultInjection mounts /admin/panic (a handler that panics, to
	// prove recovery) and /admin/delay?d= (a handler that sleeps, to
	// provoke deadline expiry and occupy admission slots). For tests
	// and the soak harness only — never enable it on a reachable
	// production port.
	FaultInjection bool
	// Upserts enables the write path: a delta overlay is attached to the
	// served index (which must carry fingerprints), POST /v1/upsert
	// absorbs profiles into it, and POST /admin/compact (or the
	// background loop StartCompactor runs) folds base + delta back into
	// SnapshotPath and hot-swaps the result. Reload attaches a fresh
	// overlay to the reloaded snapshot — un-compacted upserts do not
	// carry across an explicit reload (compaction is the path that
	// preserves them).
	Upserts bool
	// UpsertParams parameterizes the overlay when Upserts is set; the
	// zero value matches c2build's defaults.
	UpsertParams c2knn.UpsertConfig
	// ReadOnly marks this daemon a read replica: /v1/upsert and
	// /admin/compact refuse with 403 and a typed body (kind
	// "read-only") instead of accepting writes that a reload would
	// silently discard. Mutually exclusive with Upserts.
	ReadOnly bool
}

func (c *Config) setDefaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxResults <= 0 {
		c.MaxResults = 1000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxInFlight == 0 {
		// Far above the pool so only stampedes shed: waiters up to the
		// limit queue briefly at the pool semaphore, which the request
		// deadline bounds.
		c.MaxInFlight = 64 * c.MaxConcurrent
	}
	if c.ShedRetryAfter <= 0 {
		c.ShedRetryAfter = time.Second
	}
}

// state is the unit of hot swap: an index and the epoch it was
// installed at, replaced together so a request can never observe a new
// index with an old epoch (which would let stale cache entries answer
// for the new snapshot).
type state struct {
	ix    *c2knn.Index
	epoch uint64
}

// Server is the HTTP serving daemon core. Construct with New, mount
// Handler on an http.Server, and hot-swap snapshots with Swap or
// Reload. All methods are safe for concurrent use.
type Server struct {
	cfg     Config
	st      atomic.Pointer[state]
	cache   *Cache
	stats   *Stats
	sem     chan struct{}
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the global middleware stack

	reloadMu sync.Mutex // serializes Reload/Swap epoch assignment
	keys     sync.Pool  // *[]byte cache-key scratch
}

// New returns a Server serving ix under cfg.
func New(ix *c2knn.Index, cfg Config) (*Server, error) {
	if ix == nil {
		return nil, errors.New("server: need a non-nil index")
	}
	cfg.setDefaults()
	if cfg.Upserts && cfg.ReadOnly {
		return nil, errors.New("server: Upserts and ReadOnly are mutually exclusive")
	}
	if cfg.Upserts {
		if err := ix.EnableUpserts(cfg.UpsertParams); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	s := &Server{
		cfg:   cfg,
		cache: NewCache(cfg.CacheEntries, cfg.CacheShards, cfg.CacheMaxBytes),
		stats: NewStats(),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
	}
	s.keys.New = func() any { b := make([]byte, 0, 256); return &b }
	s.st.Store(&state{ix: ix, epoch: 1})

	// Per-route hardening chain for the query surface, innermost last:
	// status accounting (reconcilable with a load generator), admission
	// control, body cap, request deadline. /healthz, /statsz and
	// /metrics bypass all of it — an overloaded daemon must still
	// answer its operators.
	observe := middleware.CountStatus(s.stats.RecordStatus)
	var queryStages []middleware.Middleware
	queryStages = append(queryStages, observe)
	if cfg.MaxInFlight > 0 {
		queryStages = append(queryStages,
			middleware.Shed(cfg.MaxInFlight, cfg.ShedRetryAfter, s.stats.InFlightGauge(), s.stats.RecordShed))
	}
	queryStages = append(queryStages, middleware.BodyLimit(cfg.MaxBodyBytes, s.stats.RecordTooLarge))
	if cfg.RequestTimeout > 0 {
		queryStages = append(queryStages, middleware.Deadline(cfg.RequestTimeout))
	}
	query := func(h http.HandlerFunc) http.Handler { return middleware.Chain(h, queryStages...) }

	s.mux = http.NewServeMux()
	s.mux.Handle("/v1/neighbors", query(func(w http.ResponseWriter, r *http.Request) { s.serveQuery(w, r, EpNeighbors) }))
	s.mux.Handle("/v1/topk", query(func(w http.ResponseWriter, r *http.Request) { s.serveQuery(w, r, EpTopK) }))
	s.mux.Handle("/v1/recommend", query(func(w http.ResponseWriter, r *http.Request) { s.serveQuery(w, r, EpRecommend) }))
	s.mux.Handle("/v1/upsert", query(s.serveUpsert))
	s.mux.HandleFunc("/healthz", s.serveHealthz)
	s.mux.HandleFunc("/statsz", s.serveStatsz)
	s.mux.HandleFunc("/metrics", s.serveMetrics)
	// Reload is observed but never shed or deadlined: reloading is how
	// an operator fixes an overloaded or misbehaving daemon, and a big
	// snapshot may legitimately take longer than a query deadline.
	s.mux.Handle("/admin/reload", middleware.Chain(http.HandlerFunc(s.serveReload), observe))
	s.mux.Handle("/admin/compact", middleware.Chain(http.HandlerFunc(s.serveCompact), observe))
	if cfg.FaultInjection {
		s.mux.Handle("/admin/panic", middleware.Chain(http.HandlerFunc(s.servePanic), observe))
		s.mux.Handle("/admin/delay", query(s.serveDelay))
	}

	// Global stack, outermost first: request IDs tag everything;
	// optional access logging sees final statuses; recovery sits inside
	// the loggers so a panic-turned-500 is logged like any response.
	global := []middleware.Middleware{middleware.RequestID()}
	if cfg.AccessLogf != nil {
		global = append(global, middleware.AccessLog(cfg.AccessLogf))
	}
	global = append(global, middleware.Recover(cfg.Logf, func() {
		s.stats.RecordPanic()
		s.stats.RecordStatus(http.StatusInternalServerError)
	}))
	s.handler = middleware.Chain(s.mux, global...)
	return s, nil
}

// Handler returns the daemon's HTTP handler: the route mux wrapped in
// the hardening middleware stack (see package middleware for the
// order).
func (s *Server) Handler() http.Handler { return s.handler }

// Index returns the currently served index.
func (s *Server) Index() *c2knn.Index { return s.st.Load().ix }

// Epoch returns the current snapshot epoch (starts at 1, incremented by
// every successful Swap/Reload).
func (s *Server) Epoch() uint64 { return s.st.Load().epoch }

// Stats exposes the server's counters (for tests and embedding).
func (s *Server) Stats() *Stats { return s.stats }

// Swap atomically installs ix as the served index. In-flight requests
// finish on the index they started with; no request ever fails or
// blocks because of a swap. The epoch bump retires all cached results
// of earlier snapshots.
//
// The server takes ownership of the displaced index: it is Closed, so
// if it served from a memory-mapped snapshot its mapping is released as
// soon as the last in-flight request referencing it drains (requests
// hold per-query references — see answer). Swapping the currently
// served index in again is a no-op close-wise.
func (s *Server) Swap(ix *c2knn.Index) {
	s.reloadMu.Lock()
	old := s.st.Load()
	s.st.Store(&state{ix: ix, epoch: old.epoch + 1})
	s.reloadMu.Unlock()
	// Old-epoch entries are unreachable (the epoch is in every key);
	// flush so they stop occupying the cache budgets too. A racing
	// old-epoch Put landing after the flush is harmless: its key can no
	// longer be asked for, and LRU evicts it like any cold entry.
	s.cache.Flush()
	s.stats.RecordSwap()
	if old.ix != ix {
		old.ix.Close()
	}
}

// Reload re-reads Config.SnapshotPath and swaps the result in. The old
// index keeps serving until the new one has fully loaded and validated;
// on any error the old index stays and the error is returned. Reloads
// are serialized — concurrent calls queue rather than racing the load.
func (s *Server) Reload() error {
	if s.cfg.SnapshotPath == "" {
		return errors.New("server: no snapshot path configured; cannot reload")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	ix, err := c2knn.LoadIndexMode(s.cfg.SnapshotPath, s.cfg.LoadMode)
	if err != nil {
		err = fmt.Errorf("server: reload %s: %w", s.cfg.SnapshotPath, err)
		// Surface the refusal on /statsz and /metrics: the old epoch
		// keeps serving, but operators must be able to see that the
		// snapshot on disk is bad.
		s.stats.RecordReloadFailure(ReloadErrorKind(err), err.Error())
		return err
	}
	if s.cfg.Upserts {
		// A fresh overlay for the fresh snapshot; an explicit reload
		// replaces state from disk wholesale, so un-compacted upserts on
		// the old index do not carry over (CompactNow is the path that
		// preserves them).
		if err := ix.EnableUpserts(s.cfg.UpsertParams); err != nil {
			ix.Close()
			err = fmt.Errorf("server: reload %s: %w", s.cfg.SnapshotPath, err)
			s.stats.RecordReloadFailure(ReloadErrorKind(err), err.Error())
			return err
		}
	}
	old := s.st.Load()
	s.st.Store(&state{ix: ix, epoch: old.epoch + 1})
	s.cache.Flush() // see Swap: free the budgets the dead epoch held
	s.stats.RecordSwap()
	// The displaced index's mapping (if any) is released once its last
	// in-flight request drains.
	old.ix.Close()
	return nil
}

// ReloadErrorKind classifies a Reload failure for operator logs:
// "version" means the snapshot was written by an incompatible format
// version and needs a rebuild (c2build -snap) with the current binary;
// "corrupt" means the file is damaged and needs restoring; "other"
// covers I/O errors and missing files.
func ReloadErrorKind(err error) string {
	switch {
	case errors.Is(err, c2knn.ErrSnapshotVersion):
		return "version"
	case errors.Is(err, c2knn.ErrSnapshotCorrupt):
		return "corrupt"
	default:
		return "other"
	}
}

// ---- request/response wire shapes ----

type batchRequest struct {
	Users []int32 `json:"users"`
	K     int     `json:"k,omitempty"`
	N     int     `json:"n,omitempty"`
}

type neighborsResult struct {
	User int32     `json:"user"`
	IDs  []int32   `json:"ids"`
	Sims []float32 `json:"sims"`
}

type neighborJSON struct {
	ID  int32   `json:"id"`
	Sim float64 `json:"sim"`
}

type topkResult struct {
	User      int32          `json:"user"`
	Neighbors []neighborJSON `json:"neighbors"`
}

type recommendResult struct {
	User  int32   `json:"user"`
	Items []int32 `json:"items"`
}

type batchResponse[T any] struct {
	Results []T `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- handlers ----

func (s *Server) badRequest(w http.ResponseWriter, msg string) {
	s.stats.RecordBadRequest()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

func writeJSONBytes(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// parseCount parses a k/n query parameter, applying def when absent and
// the configured bound.
func (s *Server) parseCount(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("must be a positive integer, got %q", raw)
	}
	if v > s.cfg.MaxResults {
		return 0, fmt.Errorf("exceeds the maximum of %d", s.cfg.MaxResults)
	}
	return v, nil
}

// serveQuery handles both request forms of a query endpoint: GET with
// ?user= (single) and POST with a JSON {"users":[...]} body (batched).
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, ep Endpoint) {
	switch r.Method {
	case http.MethodGet:
		s.serveSingle(w, r, ep)
	case http.MethodPost:
		s.serveBatch(w, r, ep)
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "use GET for single queries, POST for batches", http.StatusMethodNotAllowed)
	}
}

// defaultCount returns the default k/n for ep: the served graph's k
// for neighbor queries, 30 (the paper's recommendation list size) for
// recommend.
func (s *Server) defaultCount(ep Endpoint) int {
	if ep == EpRecommend {
		return 30
	}
	return s.st.Load().ix.K()
}

// answer resolves one already-validated query (single when batch is
// nil, batched otherwise) through the pool, the cache, and the index.
// The worker-pool slot is held only here — never across the response
// write, so a slow-reading client cannot park index capacity behind a
// stalled socket. Admission to the pool honors the request deadline:
// a request that would wait past its deadline returns ctx.Err()
// instead of occupying the queue (the handler answers 503). Returns
// the marshaled body and whether it was a cache hit.
func (s *Server) answer(ctx context.Context, ep Endpoint, u int32, batch []int32, count int) ([]byte, bool, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	defer func() { <-s.sem }()
	// Pin the index for the query's lifetime. For unmapped indexes
	// Retain is a free nil check; for mmap-backed ones it takes a
	// mapping reference, so a hot swap that displaces this epoch cannot
	// unmap pages under us — the munmap waits until the last in-flight
	// reference here is released. Retain only fails when Close already
	// won a race against our Load; the new state is installed before the
	// old index is closed, so reloading observes the fresh epoch.
	var st *state
	for {
		st = s.st.Load()
		if st.ix.Retain() {
			break
		}
	}
	defer st.ix.Release()

	kb := s.keys.Get().(*[]byte)
	// The delta sequence joins the epoch in every key: within one
	// snapshot epoch, each absorbed upsert retires all earlier cached
	// results, so reads-after-writes never serve a pre-upsert body.
	// Indexes without an overlay report 0 and key exactly as before.
	key := appendKeyHeader((*kb)[:0], ep, st.epoch, st.ix.DeltaSeq(), count, batch != nil)
	if batch == nil {
		key = binary.LittleEndian.AppendUint32(key, uint32(u))
	} else {
		for _, v := range batch {
			key = binary.LittleEndian.AppendUint32(key, uint32(v))
		}
	}
	body, hit := s.cache.Get(key)
	var err error
	if !hit {
		if batch == nil {
			body, err = marshalSingle(st.ix, ep, u, count)
		} else {
			body, err = marshalBatch(st.ix, ep, batch, count)
		}
		if err == nil {
			s.cache.Put(key, body)
		}
	}
	*kb = key
	s.keys.Put(kb)
	return body, hit, err
}

func (s *Server) serveSingle(w http.ResponseWriter, r *http.Request, ep Endpoint) {
	start := time.Now()
	q := r.URL.Query()
	user64, err := strconv.ParseInt(q.Get("user"), 10, 32)
	if err != nil {
		s.badRequest(w, "user must be a 32-bit integer")
		return
	}
	u := int32(user64)
	count, err := s.parseCount(q.Get(countParam(ep)), s.defaultCount(ep))
	if err != nil {
		s.badRequest(w, countParam(ep)+" "+err.Error())
		return
	}
	body, hit, err := s.answer(r.Context(), ep, u, nil, count)
	if err != nil {
		s.answerError(w, r, err)
		return
	}
	// The latency recorded is the query's, not the client's read speed.
	s.stats.RecordQuery(ep, time.Since(start), 1, false, hit)
	writeJSONBytes(w, body)
}

// answerError maps an answer failure onto the wire: an expired
// per-request deadline is 503 (the hardening contract — an overloaded
// or stalled server refuses rather than hangs), a client that went
// away gets nothing, and anything else is an internal error.
func (s *Server) answerError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.stats.RecordTimeout()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(errorResponse{Error: "request deadline expired"})
	case errors.Is(err, context.Canceled):
		// Client disconnected; nothing useful to write.
	default:
		http.Error(w, "encoding failure", http.StatusInternalServerError)
	}
}

// tooLarge answers 413 for a body over the configured cap.
func (s *Server) tooLarge(w http.ResponseWriter) {
	s.stats.RecordTooLarge()
	w.Header().Set("Connection", "close")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusRequestEntityTooLarge)
	json.NewEncoder(w).Encode(errorResponse{
		Error: fmt.Sprintf("request body exceeds the %d-byte limit", s.cfg.MaxBodyBytes),
	})
}

func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request, ep Endpoint) {
	start := time.Now()
	var req batchRequest
	// The body arrives through the BodyLimit stage's MaxBytesReader, so
	// an over-cap body surfaces here as *http.MaxBytesError — a 413,
	// distinct from malformed JSON's 400. (Direct callers without the
	// middleware stack are unlimited; Handler() is the hardened path.)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.tooLarge(w)
			return
		}
		s.badRequest(w, "invalid JSON body: "+err.Error())
		return
	}
	if len(req.Users) == 0 {
		s.badRequest(w, `"users" must be a non-empty array`)
		return
	}
	if len(req.Users) > s.cfg.MaxBatch {
		s.badRequest(w, fmt.Sprintf("batch of %d users exceeds the maximum of %d", len(req.Users), s.cfg.MaxBatch))
		return
	}
	count := req.K
	if ep == EpRecommend {
		count = req.N
	}
	if count == 0 {
		count = s.defaultCount(ep)
	}
	if count < 0 || count > s.cfg.MaxResults {
		s.badRequest(w, fmt.Sprintf("%s must be in [1, %d]", countParam(ep), s.cfg.MaxResults))
		return
	}
	body, hit, err := s.answer(r.Context(), ep, 0, req.Users, count)
	if err != nil {
		s.answerError(w, r, err)
		return
	}
	s.stats.RecordQuery(ep, time.Since(start), len(req.Users), true, hit)
	writeJSONBytes(w, body)
}

func countParam(ep Endpoint) string {
	if ep == EpRecommend {
		return "n"
	}
	return "k"
}

// appendKeyHeader starts a cache key: endpoint, batch marker, snapshot
// epoch, delta sequence, and the k/n parameter. User ids follow.
func appendKeyHeader(key []byte, ep Endpoint, epoch, deltaSeq uint64, count int, batch bool) []byte {
	key = append(key, byte(ep))
	if batch {
		key = append(key, 1)
	} else {
		key = append(key, 0)
	}
	key = binary.LittleEndian.AppendUint64(key, epoch)
	key = binary.LittleEndian.AppendUint64(key, deltaSeq)
	key = binary.LittleEndian.AppendUint32(key, uint32(count))
	return key
}

// neighborsAt returns u's adjacency views truncated to the requested
// k (the adjacency is pre-sorted by decreasing similarity, so a prefix
// IS the top-k of the edge list).
func neighborsAt(ix *c2knn.Index, u int32, k int) ([]int32, []float32) {
	ids, sims := ix.Neighbors(u)
	if k < len(ids) {
		ids, sims = ids[:k], sims[:k]
	}
	return ids, sims
}

func marshalSingle(ix *c2knn.Index, ep Endpoint, u int32, count int) ([]byte, error) {
	switch ep {
	case EpNeighbors:
		ids, sims := neighborsAt(ix, u, count)
		return json.Marshal(neighborsResult{User: u, IDs: emptyNotNil(ids), Sims: emptyNotNilF(sims)})
	case EpTopK:
		return json.Marshal(topkToJSON(u, ix.TopK(u, count)))
	default:
		return json.Marshal(recommendResult{User: u, Items: emptyNotNil(ix.Recommend(u, count))})
	}
}

func marshalBatch(ix *c2knn.Index, ep Endpoint, users []int32, count int) ([]byte, error) {
	switch ep {
	case EpNeighbors:
		res := make([]neighborsResult, len(users))
		for i, u := range users {
			ids, sims := neighborsAt(ix, u, count)
			res[i] = neighborsResult{User: u, IDs: emptyNotNil(ids), Sims: emptyNotNilF(sims)}
		}
		return json.Marshal(batchResponse[neighborsResult]{Results: res})
	case EpTopK:
		tops := ix.TopKBatch(users, count)
		res := make([]topkResult, len(users))
		for i, u := range users {
			res[i] = topkToJSON(u, tops[i])
		}
		return json.Marshal(batchResponse[topkResult]{Results: res})
	default:
		recs := ix.RecommendBatch(users, count)
		res := make([]recommendResult, len(users))
		for i, u := range users {
			res[i] = recommendResult{User: u, Items: emptyNotNil(recs[i])}
		}
		return json.Marshal(batchResponse[recommendResult]{Results: res})
	}
}

func topkToJSON(u int32, nbs []c2knn.Neighbor) topkResult {
	out := topkResult{User: u, Neighbors: make([]neighborJSON, len(nbs))}
	for i, nb := range nbs {
		out.Neighbors[i] = neighborJSON{ID: nb.ID, Sim: nb.Sim}
	}
	return out
}

// emptyNotNil maps nil slices to empty ones so out-of-range users
// serialize as [] rather than null — friendlier to clients, and it
// keeps single and batch responses byte-consistent.
func emptyNotNil(s []int32) []int32 {
	if s == nil {
		return []int32{}
	}
	return s
}

func emptyNotNilF(s []float32) []float32 {
	if s == nil {
		return []float32{}
	}
	return s
}

// ---- health, stats, admin ----

type healthResponse struct {
	Status string `json:"status"`
	Users  int    `json:"users"`
	K      int    `json:"k"`
	Epoch  uint64 `json:"epoch"`
	// DeltaSeq and Delta appear on upsert-enabled daemons only. The
	// router's health poll reads DeltaSeq to detect writes landing on a
	// replica that should be read-only (delta skew).
	DeltaSeq uint64       `json:"delta_seq,omitempty"`
	Delta    *deltaHealth `json:"delta,omitempty"`
}

// deltaHealth is the freshness block of /healthz: how much absorbed-
// but-not-compacted state the daemon holds.
type deltaHealth struct {
	Depth  int     `json:"depth"`
	Users  int     `json:"users"`
	AgeSec float64 `json:"age_sec"`
}

func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.st.Load()
	h := healthResponse{
		Status: "ok", Users: st.ix.NumUsers(), K: st.ix.K(), Epoch: st.epoch,
	}
	if ds, ok := st.ix.DeltaStats(); ok {
		h.DeltaSeq = ds.Seq
		h.Delta = &deltaHealth{Depth: ds.Depth, Users: ds.Users, AgeSec: ds.AgeSec}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

func (s *Server) serveStatsz(w http.ResponseWriter, r *http.Request) {
	st := s.st.Load()
	snap := s.stats.snapshot()
	snap.CacheEntries = s.cache.Len()
	snap.Epoch = st.epoch
	snap.Users = st.ix.NumUsers()
	snap.K = st.ix.K()
	snap.SimKernel = similarity.KernelName()
	snap.ReadOnly = s.cfg.ReadOnly
	if ds, ok := st.ix.DeltaStats(); ok {
		snap.Delta = &DeltaSnapshot{
			Depth: ds.Depth, Users: ds.Users, PatchedRows: ds.PatchedRows,
			AgeSec: ds.AgeSec, Seq: ds.Seq, Marker: ds.Marker,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}

type reloadResponse struct {
	Status string `json:"status"`
	Kind   string `json:"kind,omitempty"` // failure class: version | corrupt | other
	Error  string `json:"error,omitempty"`
	Epoch  uint64 `json:"epoch"`
	Users  int    `json:"users"`
}

func (s *Server) serveReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "reload requires POST", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.Reload(); err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		st := s.st.Load()
		json.NewEncoder(w).Encode(reloadResponse{
			Status: "error", Kind: ReloadErrorKind(err), Error: err.Error(),
			Epoch: st.epoch, Users: st.ix.NumUsers(),
		})
		return
	}
	st := s.st.Load()
	json.NewEncoder(w).Encode(reloadResponse{Status: "ok", Epoch: st.epoch, Users: st.ix.NumUsers()})
}

// ---- fault injection (Config.FaultInjection only) ----

// servePanic panics on purpose: the recovery middleware must convert
// it into a 500, log it with the request ID, bump panics_total, and
// leave the daemon serving. Mounted only under Config.FaultInjection;
// the soak harness and the recovery regression test are its users.
func (s *Server) servePanic(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "fault injection requires POST", http.StatusMethodNotAllowed)
		return
	}
	panic("injected fault: panic requested via /admin/panic")
}

// serveDelay holds a request open for ?d= (a Go duration, capped at a
// minute) while honoring the per-request deadline — the deterministic
// way to occupy admission slots (provoking 429s) and to outlive the
// deadline (provoking 503s). Mounted only under Config.FaultInjection.
func (s *Server) serveDelay(w http.ResponseWriter, r *http.Request) {
	d, err := time.ParseDuration(r.URL.Query().Get("d"))
	if err != nil || d < 0 || d > time.Minute {
		s.badRequest(w, "d must be a duration in (0, 1m]")
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"status": "slept", "d": d.String()})
	case <-r.Context().Done():
		s.answerError(w, r, r.Context().Err())
	}
}

// CacheHitAllocs measures the allocations per cache-hit query on the
// recommend fast path: it primes the cache with one (user, n) query,
// then replays it iters times and returns the mean allocation count per
// replay, as runtime.MemStats sees it. Zero is the contract the
// BENCH_http.json gate enforces. Call it on an otherwise idle server
// from a single goroutine (concurrent traffic would pollute the
// counter).
func (s *Server) CacheHitAllocs(u int32, n, iters int) float64 {
	s.answer(context.Background(), EpRecommend, u, nil, n) // prime (marshal + insert)
	runtime.GC()
	// Re-warm the key-scratch pool: the GC above may have demoted its
	// buffers, and a first Get would then count one allocation that no
	// steady-state query pays.
	if _, hit, _ := s.answer(context.Background(), EpRecommend, u, nil, n); !hit {
		return -1
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if _, hit, _ := s.answer(context.Background(), EpRecommend, u, nil, n); !hit {
			return -1 // evicted mid-measurement; report as failure
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(iters)
}
