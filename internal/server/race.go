//go:build race

package server

// RaceEnabled reports whether the race detector is compiled in. Its
// instrumentation allocates on paths that are allocation-free in
// normal builds, so zero-alloc assertions consult this and skip
// themselves under -race (the property is still enforced by the
// non-race test run and the BENCH_http.json gate).
const RaceEnabled = true
