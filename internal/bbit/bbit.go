// Package bbit implements b-bit minwise hashing (Li & König, CACM 2011 —
// reference [18] of the paper): each of t MinHash values is truncated to
// its lowest b bits, shrinking signatures by 32/b at a quantified loss of
// estimator precision. The paper cites it among the compact structures
// that can replace GoldFinger in the similarity fast path; this package
// makes that trade-off measurable inside this repository (see the
// benchmarks comparing it to GoldFinger).
package bbit

import (
	"fmt"

	"c2knn/internal/dataset"
	"c2knn/internal/minhash"
)

// Set holds truncated minwise signatures for every user of a dataset and
// implements similarity.Provider with the unbiased b-bit estimator.
type Set struct {
	bits    uint // bits kept per hash (1..16)
	t       int  // number of hash functions
	mask    uint16
	sigs    []uint16 // t entries per user
	n       int
	cFactor float64 // collision-correction constant C ≈ 2^-b
}

// New builds b-bit signatures with t hash functions. bits must be in
// [1, 16].
func New(d *dataset.Dataset, bits uint, t int, seed int64) (*Set, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("bbit: bits must be in [1,16], got %d", bits)
	}
	if t < 1 {
		return nil, fmt.Errorf("bbit: need at least one hash function, got %d", t)
	}
	fam := minhash.New(t, seed)
	s := &Set{
		bits: bits, t: t,
		mask:    uint16(1<<bits - 1),
		sigs:    make([]uint16, d.NumUsers()*t),
		n:       d.NumUsers(),
		cFactor: 1 / float64(uint64(1)<<bits),
	}
	for u := 0; u < d.NumUsers(); u++ {
		row := s.sigs[u*t : (u+1)*t]
		for fn := 0; fn < t; fn++ {
			v, ok := fam.Value(fn, d.Profiles[u])
			if !ok {
				// Empty profile: mark with all-ones beyond the mask…
				// impossible after masking, so use the mask itself and
				// rely on matches against other empties being corrected
				// by the estimator's floor at 0.
				v = 0
			}
			row[fn] = uint16(v) & s.mask
		}
	}
	return s, nil
}

// MustNew is New, panicking on invalid parameters; for tests.
func MustNew(d *dataset.Dataset, bits uint, t int, seed int64) *Set {
	s, err := New(d, bits, t, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Sim estimates the Jaccard similarity of users u and v. With b-bit
// truncation, unrelated hashes still match with probability C = 2^-b, so
// the raw match rate E is debiased as (E − C) / (1 − C), clamped to
// [0, 1]. It implements similarity.Provider.
func (s *Set) Sim(u, v int32) float64 {
	a := s.sigs[int(u)*s.t : (int(u)+1)*s.t]
	b := s.sigs[int(v)*s.t : (int(v)+1)*s.t]
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	e := float64(match) / float64(s.t)
	j := (e - s.cFactor) / (1 - s.cFactor)
	if j < 0 {
		return 0
	}
	if j > 1 {
		return 1
	}
	return j
}

// Bits returns the truncation width.
func (s *Set) Bits() uint { return s.bits }

// Functions returns the signature length t.
func (s *Set) Functions() int { return s.t }

// BytesPerUser returns the storage cost of one signature in bytes
// (signatures are stored in uint16 slots regardless of b; the packed
// theoretical cost is t·b bits).
func (s *Set) BytesPerUser() int { return s.t * 2 }
