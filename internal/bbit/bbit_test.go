package bbit

import (
	"math"
	"math/rand"
	"testing"

	"c2knn/internal/dataset"
	"c2knn/internal/sets"
	"c2knn/internal/similarity"
)

func TestNewValidation(t *testing.T) {
	d := dataset.New("x", [][]int32{{0}}, 1)
	for _, bad := range []uint{0, 17, 64} {
		if _, err := New(d, bad, 8, 1); err == nil {
			t.Errorf("bits=%d accepted", bad)
		}
	}
	if _, err := New(d, 8, 0, 1); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := New(d, 8, 16, 1); err != nil {
		t.Errorf("valid parameters rejected: %v", err)
	}
}

func TestIdenticalProfiles(t *testing.T) {
	d := dataset.New("id", [][]int32{{1, 5, 9}, {1, 5, 9}}, 10)
	s := MustNew(d, 8, 64, 3)
	if got := s.Sim(0, 1); got != 1 {
		t.Errorf("identical profiles estimate %v, want 1", got)
	}
}

func TestDisjointProfilesNearZero(t *testing.T) {
	d := dataset.New("dj", [][]int32{{1, 2, 3, 4}, {100, 200, 300, 400}}, 500)
	s := MustNew(d, 12, 256, 3)
	if got := s.Sim(0, 1); got > 0.1 {
		t.Errorf("disjoint profiles estimate %v, want ≈ 0 after debiasing", got)
	}
}

// TestEstimatorAccuracy: with enough functions the debiased b-bit
// estimator tracks exact Jaccard.
func TestEstimatorAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	profiles := make([][]int32, 30)
	for i := range profiles {
		p := make([]int32, 60)
		base := rng.Intn(500)
		for j := range p {
			p[j] = int32(base + rng.Intn(200))
		}
		profiles[i] = sets.Normalize(p)
	}
	d := dataset.New("acc", profiles, 1000)
	exact := similarity.NewJaccard(d)
	s := MustNew(d, 8, 512, 7)
	var errSum float64
	n := 0
	for u := int32(0); u < 30; u++ {
		for v := u + 1; v < 30; v++ {
			errSum += math.Abs(s.Sim(u, v) - exact.Sim(u, v))
			n++
		}
	}
	if mean := errSum / float64(n); mean > 0.06 {
		t.Errorf("mean |estimate − exact| = %.4f, want ≤ 0.06", mean)
	}
}

// TestFewerBitsMoreBias: 1-bit signatures need debiasing and stay within
// range; accuracy improves with b at fixed t.
func TestFewerBitsMoreBias(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	profiles := make([][]int32, 20)
	for i := range profiles {
		p := make([]int32, 50)
		base := rng.Intn(300)
		for j := range p {
			p[j] = int32(base + rng.Intn(150))
		}
		profiles[i] = sets.Normalize(p)
	}
	d := dataset.New("b", profiles, 600)
	exact := similarity.NewJaccard(d)
	err1 := meanErr(d, exact, 1)
	err12 := meanErr(d, exact, 12)
	if err12 > err1+0.02 {
		t.Errorf("12-bit error %.4f worse than 1-bit %.4f", err12, err1)
	}
	s1 := MustNew(d, 1, 256, 7)
	for u := int32(0); u < 20; u++ {
		for v := int32(0); v < 20; v++ {
			if got := s1.Sim(u, v); got < 0 || got > 1 {
				t.Fatalf("estimate %v out of range", got)
			}
		}
	}
}

func meanErr(d *dataset.Dataset, exact similarity.Provider, bits uint) float64 {
	s := MustNew(d, bits, 256, 7)
	var sum float64
	n := 0
	for u := int32(0); u < int32(d.NumUsers()); u++ {
		for v := u + 1; v < int32(d.NumUsers()); v++ {
			sum += math.Abs(s.Sim(u, v) - exact.Sim(u, v))
			n++
		}
	}
	return sum / float64(n)
}

func TestAccessors(t *testing.T) {
	d := dataset.New("a", [][]int32{{0}}, 1)
	s := MustNew(d, 4, 32, 1)
	if s.Bits() != 4 || s.Functions() != 32 || s.BytesPerUser() != 64 {
		t.Errorf("accessors: %d %d %d", s.Bits(), s.Functions(), s.BytesPerUser())
	}
}

func BenchmarkSim256Fns(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	profiles := make([][]int32, 2)
	for i := range profiles {
		p := make([]int32, 90)
		for j := range p {
			p[j] = int32(rng.Intn(10000))
		}
		profiles[i] = sets.Normalize(p)
	}
	s := MustNew(dataset.New("b", profiles, 10000), 8, 256, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sim(0, 1)
	}
}
