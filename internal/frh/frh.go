// Package frh implements FastRandomHash, the clustering scheme at the
// heart of Cluster-and-Conquer (§II-D). A generative hash function
// h : I → [1, b] maps items to a small bounded range; a user's hash is the
// minimum hash over her profile, H(u) = min_{i∈P_u} h(i). Each of t
// independent generative functions yields one clustering configuration of
// b clusters, so similar users — who share items — collide in at least one
// configuration with probability growing exponentially in t (Theorem 1).
//
// The min aggregation biases users towards low cluster indices, so
// oversized clusters are recursively split (§II-D, Fig. 3): a cluster C
// with index η_C larger than MaxSize redistributes its users by
// H\η_C(u) = min{h(i) : i ∈ P_u, h(i) > η_C}. Users with no item hashed
// above η_C (in particular single-item users) and users who would land
// alone in their new cluster remain in C.
package frh

import (
	"sort"

	"c2knn/internal/dataset"
	"c2knn/internal/jenkins"
)

// Options parameterizes the clustering. Zero fields take the paper's
// defaults.
type Options struct {
	// B is the number of clusters per hash function (default 4096).
	B int
	// T is the number of hash functions, i.e. clustering configurations
	// (default 8; the paper uses 15 on DBLP and Gowalla).
	T int
	// MaxSize is the recursive-splitting threshold N (default 2000).
	// Negative disables splitting.
	MaxSize int
	// Seed selects the family of generative hash functions.
	Seed int64
}

// DefaultB, DefaultT and DefaultMaxSize are the paper's default
// parameters (§IV-C).
const (
	DefaultB       = 4096
	DefaultT       = 8
	DefaultMaxSize = 2000
)

func (o *Options) setDefaults() {
	if o.B == 0 {
		o.B = DefaultB
	}
	if o.T == 0 {
		o.T = DefaultT
	}
	if o.MaxSize == 0 {
		o.MaxSize = DefaultMaxSize
	}
}

// Cluster is one cluster of one clustering configuration.
type Cluster struct {
	// Fn identifies the generative hash function (configuration) in
	// [0, T).
	Fn int
	// Index is the FastRandomHash value η_C shared by the cluster's
	// users, in [1, B]. After a split, the index of a child cluster is
	// the (higher) hash value that formed it.
	Index uint32
	// Users lists the member user ids.
	Users []int32
}

// Stats describes the outcome of a clustering run.
type Stats struct {
	// Clusters is the total number of clusters across all configurations.
	Clusters int
	// Splits counts split operations performed.
	Splits int
	// MaxCluster is the size of the largest final cluster.
	MaxCluster int
	// Depth is the deepest recursion reached by the splitting.
	Depth int
	// PerFn is the number of clusters per configuration.
	PerFn []int
}

// Hasher precomputes, for each configuration, the hash of every item, so
// user hashes are simple scans of profile-indexed tables.
type Hasher struct {
	b      int
	t      int
	tables [][]uint16 // tables[fn][item] ∈ [1, b]
}

// NewHasher builds the per-item hash tables for a dataset. b must be at
// most 65535 (values are stored in uint16; the paper's default is 4096).
func NewHasher(numItems int32, o Options) *Hasher {
	o.setDefaults()
	if o.B > 0xffff {
		panic("frh: B must fit in 16 bits")
	}
	fam := jenkins.NewFamily(o.T, o.Seed)
	h := &Hasher{b: o.B, t: o.T, tables: make([][]uint16, o.T)}
	for fn := 0; fn < o.T; fn++ {
		tab := make([]uint16, numItems)
		seed := fam.Seed(fn)
		for it := int32(0); it < numItems; it++ {
			tab[it] = uint16(jenkins.Hash32(uint32(it), seed)%uint32(o.B)) + 1
		}
		h.tables[fn] = tab
	}
	return h
}

// B returns the number of clusters per configuration.
func (h *Hasher) B() int { return h.b }

// T returns the number of configurations.
func (h *Hasher) T() int { return h.t }

// ItemHash returns h_fn(item) ∈ [1, B].
func (h *Hasher) ItemHash(fn int, item int32) uint32 {
	return uint32(h.tables[fn][item])
}

// UserHash returns H_fn(u) = min over the profile's item hashes. Empty
// profiles report ok=false.
func (h *Hasher) UserHash(fn int, profile []int32) (uint32, bool) {
	if len(profile) == 0 {
		return 0, false
	}
	tab := h.tables[fn]
	best := tab[profile[0]]
	for _, it := range profile[1:] {
		if v := tab[it]; v < best {
			best = v
		}
	}
	return uint32(best), true
}

// UserHashAbove returns H\η(u) = min{h(i) : h(i) > η}, the splitting hash
// of §II-D. ok is false when no item hashes above η (such users remain in
// the cluster being split).
func (h *Hasher) UserHashAbove(fn int, profile []int32, eta uint32) (uint32, bool) {
	tab := h.tables[fn]
	best := uint32(0)
	for _, it := range profile {
		v := uint32(tab[it])
		if v > eta && (best == 0 || v < best) {
			best = v
		}
	}
	return best, best != 0
}

// Build runs the full clustering of d: t configurations of b clusters
// each, recursively splitting clusters larger than MaxSize. Users with an
// empty profile are assigned to cluster 1 of every configuration (their
// hash is undefined; any fixed choice preserves the algorithm's
// guarantees, which only concern users that share items).
func Build(d *dataset.Dataset, o Options) ([]Cluster, Stats) {
	o.setDefaults()
	h := NewHasher(d.NumItems, o)
	return BuildWithHasher(d, h, o)
}

// BuildWithHasher is Build with a caller-provided Hasher, so experiments
// sweeping MaxSize (Fig. 7 and 8) reuse the same hash tables across runs.
func BuildWithHasher(d *dataset.Dataset, h *Hasher, o Options) ([]Cluster, Stats) {
	o.setDefaults()
	var clusters []Cluster
	stats := Stats{PerFn: make([]int, h.t)}
	for fn := 0; fn < h.t; fn++ {
		buckets := make([][]int32, h.b+1) // index 0 unused; hashes ∈ [1, b]
		for u, p := range d.Profiles {
			idx, ok := h.UserHash(fn, p)
			if !ok {
				idx = 1
			}
			buckets[idx] = append(buckets[idx], int32(u))
		}
		for idx, users := range buckets {
			if len(users) == 0 {
				continue
			}
			final := splitRecursive(d, h, &stats, o, fn, Cluster{Fn: fn, Index: uint32(idx), Users: users}, 0)
			clusters = append(clusters, final...)
			stats.PerFn[fn] += len(final)
		}
	}
	stats.Clusters = len(clusters)
	for i := range clusters {
		if len(clusters[i].Users) > stats.MaxCluster {
			stats.MaxCluster = len(clusters[i].Users)
		}
	}
	return clusters, stats
}

// splitRecursive applies the recursive splitting rule to c and returns the
// final clusters it decomposes into. The remainder cluster — users with no
// item hashed above c.Index plus users returned from singleton children —
// keeps c's index and is final: re-splitting it with the same η would
// reproduce the same partition and never terminate, which is why the paper
// leaves those users in C.
func splitRecursive(d *dataset.Dataset, h *Hasher, stats *Stats, o Options, fn int, c Cluster, depth int) []Cluster {
	if o.MaxSize < 0 || len(c.Users) <= o.MaxSize {
		if depth > stats.Depth {
			stats.Depth = depth
		}
		return []Cluster{c}
	}
	stats.Splits++
	children := make(map[uint32][]int32)
	var remainder []int32
	for _, u := range c.Users {
		idx, ok := h.UserHashAbove(fn, d.Profiles[u], c.Index)
		if !ok {
			remainder = append(remainder, u)
			continue
		}
		children[idx] = append(children[idx], u)
	}
	// Iterate children in index order: map iteration order would make
	// the cluster list differ between identical runs.
	indices := make([]uint32, 0, len(children))
	for idx := range children {
		indices = append(indices, idx)
	}
	sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })
	var out []Cluster
	for _, idx := range indices {
		users := children[idx]
		if len(users) == 1 {
			// Singleton children return to C (§II-D).
			remainder = append(remainder, users[0])
			continue
		}
		out = append(out, splitRecursive(d, h, stats, o, fn, Cluster{Fn: fn, Index: idx, Users: users}, depth+1)...)
	}
	if len(remainder) > 0 {
		if depth > stats.Depth {
			stats.Depth = depth
		}
		out = append(out, Cluster{Fn: fn, Index: c.Index, Users: remainder})
	}
	return out
}

// Sizes returns the sizes of the given clusters.
func Sizes(clusters []Cluster) []int {
	s := make([]int, len(clusters))
	for i := range clusters {
		s[i] = len(clusters[i].Users)
	}
	return s
}

// TopSizes returns the sizes of the m largest clusters in decreasing
// order (fewer if there are fewer clusters) — the series plotted in
// Fig. 8.
func TopSizes(clusters []Cluster, m int) []int {
	s := Sizes(clusters)
	sort.Sort(sort.Reverse(sort.IntSlice(s)))
	if len(s) > m {
		s = s[:m]
	}
	return s
}
