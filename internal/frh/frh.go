// Package frh implements FastRandomHash, the clustering scheme at the
// heart of Cluster-and-Conquer (§II-D). A generative hash function
// h : I → [1, b] maps items to a small bounded range; a user's hash is the
// minimum hash over her profile, H(u) = min_{i∈P_u} h(i). Each of t
// independent generative functions yields one clustering configuration of
// b clusters, so similar users — who share items — collide in at least one
// configuration with probability growing exponentially in t (Theorem 1).
//
// The min aggregation biases users towards low cluster indices, so
// oversized clusters are recursively split (§II-D, Fig. 3): a cluster C
// with index η_C larger than MaxSize redistributes its users by
// H\η_C(u) = min{h(i) : i ∈ P_u, h(i) > η_C}. Users with no item hashed
// above η_C (in particular single-item users) and users who would land
// alone in their new cluster remain in C.
package frh

import (
	"sort"

	"c2knn/internal/dataset"
	"c2knn/internal/jenkins"
	"c2knn/internal/schedule"
)

// Options parameterizes the clustering. Zero fields take the paper's
// defaults.
type Options struct {
	// B is the number of clusters per hash function (default 4096).
	B int
	// T is the number of hash functions, i.e. clustering configurations
	// (default 8; the paper uses 15 on DBLP and Gowalla).
	T int
	// MaxSize is the recursive-splitting threshold N (default 2000).
	// Negative disables splitting.
	MaxSize int
	// Seed selects the family of generative hash functions.
	Seed int64
	// Parallelism bounds how many configurations are clustered
	// concurrently: the t configurations are independent, so Build and
	// Stream fan them out by default (0 = one goroutine per
	// configuration). 1 reproduces the serial pre-pipeline behaviour;
	// the resulting clusters are identical either way.
	Parallelism int
}

// DefaultB, DefaultT and DefaultMaxSize are the paper's default
// parameters (§IV-C).
const (
	DefaultB       = 4096
	DefaultT       = 8
	DefaultMaxSize = 2000
)

func (o *Options) setDefaults() {
	if o.B == 0 {
		o.B = DefaultB
	}
	if o.T == 0 {
		o.T = DefaultT
	}
	if o.MaxSize == 0 {
		o.MaxSize = DefaultMaxSize
	}
}

// Cluster is one cluster of one clustering configuration.
type Cluster struct {
	// Fn identifies the generative hash function (configuration) in
	// [0, T).
	Fn int
	// Index is the FastRandomHash value η_C shared by the cluster's
	// users, in [1, B]. After a split, the index of a child cluster is
	// the (higher) hash value that formed it.
	Index uint32
	// Users lists the member user ids.
	Users []int32
}

// Stats describes the outcome of a clustering run.
type Stats struct {
	// Clusters is the total number of clusters across all configurations.
	Clusters int
	// Splits counts split operations performed.
	Splits int
	// MaxCluster is the size of the largest final cluster.
	MaxCluster int
	// Depth is the deepest recursion reached by the splitting.
	Depth int
	// PerFn is the number of clusters per configuration.
	PerFn []int
}

// Hasher precomputes, for each configuration, the hash of every item, so
// user hashes are simple scans of profile-indexed tables.
type Hasher struct {
	b      int
	t      int
	tables [][]uint16 // tables[fn][item] ∈ [1, b]
	seeds  []uint32   // per-configuration seeds, for items beyond the tables
}

// NewHasher builds the per-item hash tables for a dataset. b must be at
// most 65535 (values are stored in uint16; the paper's default is 4096).
func NewHasher(numItems int32, o Options) *Hasher {
	o.setDefaults()
	if o.B > 0xffff {
		panic("frh: B must fit in 16 bits")
	}
	fam := jenkins.NewFamily(o.T, o.Seed)
	h := &Hasher{b: o.B, t: o.T, tables: make([][]uint16, o.T), seeds: make([]uint32, o.T)}
	for fn := 0; fn < o.T; fn++ {
		tab := make([]uint16, numItems)
		seed := fam.Seed(fn)
		h.seeds[fn] = seed
		for it := int32(0); it < numItems; it++ {
			tab[it] = uint16(jenkins.Hash32(uint32(it), seed)%uint32(o.B)) + 1
		}
		h.tables[fn] = tab
	}
	return h
}

// itemHashAny returns h_fn(item) for any non-negative item id: a table
// lookup inside the precomputed universe, a direct hash beyond it.
// Profiles arriving through the delta-overlay path may reference items
// the build never saw; both ranges use the same seeded hash, so the two
// paths agree wherever they overlap.
func (h *Hasher) itemHashAny(fn int, item int32) uint32 {
	if tab := h.tables[fn]; int(item) < len(tab) {
		return uint32(tab[item])
	}
	return jenkins.Hash32(uint32(item), h.seeds[fn])%uint32(h.b) + 1
}

// UserHashAny is UserHash for profiles that may carry item ids beyond
// the precomputed tables (incremental upserts with new items). On
// profiles inside the build universe it returns exactly UserHash's
// value.
func (h *Hasher) UserHashAny(fn int, profile []int32) (uint32, bool) {
	if len(profile) == 0 {
		return 0, false
	}
	best := h.itemHashAny(fn, profile[0])
	for _, it := range profile[1:] {
		if v := h.itemHashAny(fn, it); v < best {
			best = v
		}
	}
	return best, true
}

// UserHashAboveAny is UserHashAbove for profiles that may carry item
// ids beyond the precomputed tables; see UserHashAny.
func (h *Hasher) UserHashAboveAny(fn int, profile []int32, eta uint32) (uint32, bool) {
	best := uint32(0)
	for _, it := range profile {
		v := h.itemHashAny(fn, it)
		if v > eta && (best == 0 || v < best) {
			best = v
		}
	}
	return best, best != 0
}

// B returns the number of clusters per configuration.
func (h *Hasher) B() int { return h.b }

// T returns the number of configurations.
func (h *Hasher) T() int { return h.t }

// ItemHash returns h_fn(item) ∈ [1, B].
func (h *Hasher) ItemHash(fn int, item int32) uint32 {
	return uint32(h.tables[fn][item])
}

// UserHash returns H_fn(u) = min over the profile's item hashes. Empty
// profiles report ok=false.
func (h *Hasher) UserHash(fn int, profile []int32) (uint32, bool) {
	if len(profile) == 0 {
		return 0, false
	}
	tab := h.tables[fn]
	best := tab[profile[0]]
	for _, it := range profile[1:] {
		if v := tab[it]; v < best {
			best = v
		}
	}
	return uint32(best), true
}

// UserHashAbove returns H\η(u) = min{h(i) : h(i) > η}, the splitting hash
// of §II-D. ok is false when no item hashes above η (such users remain in
// the cluster being split).
func (h *Hasher) UserHashAbove(fn int, profile []int32, eta uint32) (uint32, bool) {
	tab := h.tables[fn]
	best := uint32(0)
	for _, it := range profile {
		v := uint32(tab[it])
		if v > eta && (best == 0 || v < best) {
			best = v
		}
	}
	return best, best != 0
}

// Build runs the full clustering of d: t configurations of b clusters
// each, recursively splitting clusters larger than MaxSize. Users with an
// empty profile are skipped: their hash is undefined, and since they
// cannot share an item with anyone their similarity to every other user
// is zero, so clustering them (historically into cluster 1 of every
// configuration) only inflated that cluster's O(|C|²) local work with
// guaranteed-zero-similarity pairs. The algorithm's guarantees only
// concern users that share items, so skipping preserves them.
func Build(d *dataset.Dataset, o Options) ([]Cluster, Stats) {
	o.setDefaults()
	h := NewHasher(d.NumItems, o)
	return BuildWithHasher(d, h, o)
}

// BuildWithHasher is Build with a caller-provided Hasher, so experiments
// sweeping MaxSize (Fig. 7 and 8) reuse the same hash tables across runs.
// The t configurations are clustered concurrently (see
// Options.Parallelism); the returned slice is always in the same
// deterministic configuration-major order.
func BuildWithHasher(d *dataset.Dataset, h *Hasher, o Options) ([]Cluster, Stats) {
	o.setDefaults()
	perFn := make([][]Cluster, h.t)
	fnStats := ForEachFn(h.t, o.Parallelism, func(fn int) Stats {
		return buildFn(d, h, o, fn, func(c Cluster) {
			perFn[fn] = append(perFn[fn], c)
		})
	})
	var clusters []Cluster
	for fn := range perFn {
		clusters = append(clusters, perFn[fn]...)
	}
	return clusters, MergeStats(fnStats)
}

// Stream clusters d like Build but emits each cluster as soon as it is
// finalized instead of materializing the full list — the producer side
// of the pipelined C² build. emit is invoked concurrently from the
// configuration goroutines and must be safe for concurrent use. Within
// one configuration, clusters arrive in the same deterministic order
// BuildWithHasher would list them; the interleaving across
// configurations is scheduling-dependent, but the emitted cluster *set*
// is identical to BuildWithHasher's for the same seed. Stream returns
// once every configuration has finished emitting.
func Stream(d *dataset.Dataset, o Options, emit func(Cluster)) Stats {
	o.setDefaults()
	h := NewHasher(d.NumItems, o)
	return StreamWithHasher(d, h, o, emit)
}

// StreamWithHasher is Stream with a caller-provided Hasher.
func StreamWithHasher(d *dataset.Dataset, h *Hasher, o Options, emit func(Cluster)) Stats {
	o.setDefaults()
	fnStats := ForEachFn(h.t, o.Parallelism, func(fn int) Stats {
		return buildFn(d, h, o, fn, emit)
	})
	return MergeStats(fnStats)
}

// ForEachFn runs build for every configuration on up to parallelism
// goroutines (0 = one per configuration) and returns the per-
// configuration stats. It is the fan-out shared by the FRH producers
// here and core's MinHash producer.
func ForEachFn(t, parallelism int, build func(fn int) Stats) []Stats {
	fnStats := make([]Stats, t)
	if parallelism <= 0 || parallelism > t {
		parallelism = t
	}
	schedule.Run(parallelism, schedule.FIFO(t), func(_, fn int) {
		fnStats[fn] = build(fn)
	})
	return fnStats
}

// buildFn clusters one configuration, invoking emit for every finalized
// cluster in a deterministic order (buckets by increasing index, split
// children depth-first by increasing split hash). The returned Stats
// describe this configuration only; PerFn is left nil for the caller to
// assemble.
func buildFn(d *dataset.Dataset, h *Hasher, o Options, fn int, emit func(Cluster)) Stats {
	var stats Stats
	buckets := make([][]int32, h.b+1) // index 0 unused; hashes ∈ [1, b]
	for u, p := range d.Profiles {
		idx, ok := h.UserHash(fn, p)
		if !ok {
			continue // empty profile: see Build
		}
		buckets[idx] = append(buckets[idx], int32(u))
	}
	for idx, users := range buckets {
		if len(users) == 0 {
			continue
		}
		final := splitRecursive(d, h, &stats, o, fn, Cluster{Fn: fn, Index: uint32(idx), Users: users}, 0)
		for _, c := range final {
			if len(c.Users) > stats.MaxCluster {
				stats.MaxCluster = len(c.Users)
			}
			stats.Clusters++
			emit(c)
		}
	}
	return stats
}

// MergeStats folds per-configuration stats into the aggregate view
// Build has always reported.
func MergeStats(fnStats []Stats) Stats {
	merged := Stats{PerFn: make([]int, len(fnStats))}
	for fn, s := range fnStats {
		merged.Clusters += s.Clusters
		merged.Splits += s.Splits
		merged.PerFn[fn] = s.Clusters
		if s.MaxCluster > merged.MaxCluster {
			merged.MaxCluster = s.MaxCluster
		}
		if s.Depth > merged.Depth {
			merged.Depth = s.Depth
		}
	}
	return merged
}

// splitRecursive applies the recursive splitting rule to c and returns the
// final clusters it decomposes into. The remainder cluster — users with no
// item hashed above c.Index plus users returned from singleton children —
// keeps c's index and is final: re-splitting it with the same η would
// reproduce the same partition and never terminate, which is why the paper
// leaves those users in C.
func splitRecursive(d *dataset.Dataset, h *Hasher, stats *Stats, o Options, fn int, c Cluster, depth int) []Cluster {
	if o.MaxSize < 0 || len(c.Users) <= o.MaxSize {
		if depth > stats.Depth {
			stats.Depth = depth
		}
		return []Cluster{c}
	}
	stats.Splits++
	children := make(map[uint32][]int32)
	var remainder []int32
	for _, u := range c.Users {
		idx, ok := h.UserHashAbove(fn, d.Profiles[u], c.Index)
		if !ok {
			remainder = append(remainder, u)
			continue
		}
		children[idx] = append(children[idx], u)
	}
	// Iterate children in index order: map iteration order would make
	// the cluster list differ between identical runs.
	indices := make([]uint32, 0, len(children))
	for idx := range children {
		indices = append(indices, idx)
	}
	sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })
	var out []Cluster
	for _, idx := range indices {
		users := children[idx]
		if len(users) == 1 {
			// Singleton children return to C (§II-D).
			remainder = append(remainder, users[0])
			continue
		}
		out = append(out, splitRecursive(d, h, stats, o, fn, Cluster{Fn: fn, Index: idx, Users: users}, depth+1)...)
	}
	if len(remainder) > 0 {
		if depth > stats.Depth {
			stats.Depth = depth
		}
		out = append(out, Cluster{Fn: fn, Index: c.Index, Users: remainder})
	}
	return out
}

// Sizes returns the sizes of the given clusters.
func Sizes(clusters []Cluster) []int {
	s := make([]int, len(clusters))
	for i := range clusters {
		s[i] = len(clusters[i].Users)
	}
	return s
}

// TopSizes returns the sizes of the m largest clusters in decreasing
// order (fewer if there are fewer clusters) — the series plotted in
// Fig. 8.
func TopSizes(clusters []Cluster, m int) []int {
	s := Sizes(clusters)
	sort.Sort(sort.Reverse(sort.IntSlice(s)))
	if len(s) > m {
		s = s[:m]
	}
	return s
}
