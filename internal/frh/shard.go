// Shard keys: the stable user → bucket-range mapping shared by the
// snapshot partitioner (c2build -shards) and the serving router
// (c2serve -role router).
//
// Cluster-and-Conquer's FRH bucketing makes similarity computation
// cluster-local, so user ranges partition cleanly with no cross-shard
// coupling: a user's neighbors, and the profiles recommendation scores
// against, are all reachable from that user's own serving rows. The
// shard key reuses the same generative-hash machinery (jenkins.Hash32
// into a small bounded range [1, B]) but applies it to the user id
// rather than the profile: the router must place a user knowing only
// the id on the wire — it holds no profiles — and an id hash spreads
// users uniformly across buckets regardless of profile skew. Contiguous
// bucket ranges then map to shards, so a manifest stays B-independent
// re-balanceable: moving a boundary moves ~uniform slices of users.
//
// Stability is a wire contract: ShardKey must return the same bucket
// for the same (user, buckets) on every build and every binary version,
// or routers and partitioners would disagree about ownership. The seed
// is a package constant for that reason; shard_test.go pins golden
// values.
package frh

import (
	"fmt"
	"sort"

	"c2knn/internal/jenkins"
)

// shardSeed fixes the hash family of the shard key. Changing it would
// silently reshuffle every user onto a different shard, so it is not
// configurable: new layouts come from new manifests, not new seeds.
const shardSeed uint32 = 0x5a17c2c2

// DefaultShardBuckets is the default shard-key space size. Like the
// paper's B it is far larger than any plausible shard count, so range
// boundaries can move in fine steps.
const DefaultShardBuckets = 4096

// ShardKey maps a user id to its bucket in [1, buckets]. The mapping is
// a pure function of (u, buckets) — stable across processes, builds and
// binary versions — so a partitioner and a router that agree on the
// bucket count agree on every user's bucket.
func ShardKey(u int32, buckets int) uint32 {
	return jenkins.Hash32(uint32(u), shardSeed)%uint32(buckets) + 1
}

// BucketRange is a contiguous inclusive range [Lo, Hi] of shard-key
// buckets. A shard owns the users whose ShardKey falls in its range.
type BucketRange struct {
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`
}

// Contains reports whether bucket b falls in the range.
func (r BucketRange) Contains(b uint32) bool { return r.Lo <= b && b <= r.Hi }

// Buckets returns the number of buckets the range spans.
func (r BucketRange) Buckets() int { return int(r.Hi - r.Lo + 1) }

// Validate checks that the range is well-formed within a buckets-sized
// key space.
func (r BucketRange) Validate(buckets int) error {
	if r.Lo < 1 || r.Hi > uint32(buckets) || r.Lo > r.Hi {
		return fmt.Errorf("frh: bucket range [%d, %d] invalid for %d buckets", r.Lo, r.Hi, buckets)
	}
	return nil
}

// PartitionBuckets splits the key space [1, buckets] into shards
// contiguous near-equal ranges (the first buckets%shards ranges are one
// bucket larger). It panics if shards exceeds buckets or either is
// non-positive — a layout with empty shards is a configuration error,
// not a servable manifest.
func PartitionBuckets(buckets, shards int) []BucketRange {
	if buckets <= 0 || shards <= 0 || shards > buckets {
		panic(fmt.Sprintf("frh: cannot split %d buckets into %d shards", buckets, shards))
	}
	out := make([]BucketRange, shards)
	per, extra := buckets/shards, buckets%shards
	lo := uint32(1)
	for i := range out {
		span := per
		if i < extra {
			span++
		}
		out[i] = BucketRange{Lo: lo, Hi: lo + uint32(span) - 1}
		lo += uint32(span)
	}
	return out
}

// ShardOf returns the index of the range containing u's bucket, or -1
// when no range does. ranges must be sorted by Lo (manifest order);
// with overlapping ranges the first owner wins — callers that must see
// every owner (the router's merge path) use OwnersOf.
func ShardOf(u int32, buckets int, ranges []BucketRange) int {
	key := ShardKey(u, buckets)
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].Hi >= key })
	if i < len(ranges) && ranges[i].Contains(key) {
		return i
	}
	// Overlapping ranges can hide an owner before i (a wide range whose
	// Hi sorts later); fall back to a scan only then.
	for j := range ranges {
		if ranges[j].Contains(key) {
			return j
		}
	}
	return -1
}

// OwnersOf appends the indices of every range containing u's bucket to
// dst (in range order) and returns it. Disjoint manifests yield at most
// one owner; overlap — a resharding migration serving a user from both
// its old and new shard — yields several.
func OwnersOf(u int32, buckets int, ranges []BucketRange, dst []int) []int {
	key := ShardKey(u, buckets)
	for i := range ranges {
		if ranges[i].Contains(key) {
			dst = append(dst, i)
		}
	}
	return dst
}
