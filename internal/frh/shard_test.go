package frh

import (
	"testing"
)

// The shard key is a wire contract: partitioners and routers built from
// different binaries must agree on every user's bucket. Pin golden
// values so an accidental seed or hash change fails loudly.
func TestShardKeyGolden(t *testing.T) {
	golden := map[int32]uint32{} // filled from the current implementation, checked below
	cases := []int32{0, 1, 2, 41, 4095, 1 << 20, 1<<31 - 1}
	want := []uint32{}
	for _, u := range cases {
		want = append(want, ShardKey(u, DefaultShardBuckets))
		golden[u] = ShardKey(u, DefaultShardBuckets)
	}
	// Re-evaluate: the mapping must be a pure function (no hidden state).
	for i, u := range cases {
		if got := ShardKey(u, DefaultShardBuckets); got != want[i] {
			t.Fatalf("ShardKey(%d) unstable: %d then %d", u, want[i], got)
		}
	}
	// Golden pin: these values must never change (see shardSeed).
	pinned := map[int32]uint32{0: 2951, 1: 1606, 41: 431, 4095: 2824}
	for u, exp := range pinned {
		if got := golden[u]; got != exp {
			t.Fatalf("ShardKey(%d, %d) = %d, golden value is %d — the shard-key contract changed",
				u, DefaultShardBuckets, got, exp)
		}
	}
}

func TestShardKeyRange(t *testing.T) {
	for _, buckets := range []int{1, 2, 7, 4096} {
		for u := int32(0); u < 10000; u++ {
			k := ShardKey(u, buckets)
			if k < 1 || k > uint32(buckets) {
				t.Fatalf("ShardKey(%d, %d) = %d outside [1, %d]", u, buckets, k, buckets)
			}
		}
	}
}

// Buckets must spread users roughly uniformly: with 4096 buckets and
// 100k sequential ids, no bucket should be grossly over-occupied
// (sequential ids are exactly what real datasets use).
func TestShardKeyBalance(t *testing.T) {
	const users = 100000
	counts := make([]int, DefaultShardBuckets+1)
	for u := int32(0); u < users; u++ {
		counts[ShardKey(u, DefaultShardBuckets)]++
	}
	mean := float64(users) / DefaultShardBuckets
	for b := 1; b <= DefaultShardBuckets; b++ {
		if float64(counts[b]) > 4*mean+8 {
			t.Fatalf("bucket %d holds %d users, mean is %.1f — id hashing is skewed", b, counts[b], mean)
		}
	}
	// And a 2-way split of those buckets lands near 50/50.
	ranges := PartitionBuckets(DefaultShardBuckets, 2)
	half := 0
	for u := int32(0); u < users; u++ {
		if ShardOf(u, DefaultShardBuckets, ranges) == 0 {
			half++
		}
	}
	if half < users*4/10 || half > users*6/10 {
		t.Fatalf("2-shard split put %d of %d users on shard 0, want ~half", half, users)
	}
}

func TestPartitionBuckets(t *testing.T) {
	for _, tc := range []struct{ buckets, shards int }{
		{4096, 1}, {4096, 2}, {4096, 3}, {10, 10}, {7, 3},
	} {
		ranges := PartitionBuckets(tc.buckets, tc.shards)
		if len(ranges) != tc.shards {
			t.Fatalf("PartitionBuckets(%d, %d) returned %d ranges", tc.buckets, tc.shards, len(ranges))
		}
		next := uint32(1)
		total := 0
		for i, r := range ranges {
			if err := r.Validate(tc.buckets); err != nil {
				t.Fatalf("range %d: %v", i, err)
			}
			if r.Lo != next {
				t.Fatalf("range %d starts at %d, want %d (contiguous cover)", i, r.Lo, next)
			}
			next = r.Hi + 1
			total += r.Buckets()
		}
		if total != tc.buckets || next != uint32(tc.buckets)+1 {
			t.Fatalf("ranges cover %d of %d buckets", total, tc.buckets)
		}
		// Near-equal: sizes differ by at most one bucket.
		min, max := ranges[0].Buckets(), ranges[0].Buckets()
		for _, r := range ranges {
			if b := r.Buckets(); b < min {
				min = b
			} else if b > max {
				max = b
			}
		}
		if max-min > 1 {
			t.Fatalf("range sizes span [%d, %d], want near-equal", min, max)
		}
	}
}

func TestShardOfAndOwners(t *testing.T) {
	ranges := PartitionBuckets(DefaultShardBuckets, 3)
	for u := int32(0); u < 5000; u++ {
		s := ShardOf(u, DefaultShardBuckets, ranges)
		if s < 0 || s > 2 {
			t.Fatalf("user %d unowned under a full-cover layout (shard %d)", u, s)
		}
		if !ranges[s].Contains(ShardKey(u, DefaultShardBuckets)) {
			t.Fatalf("user %d assigned to shard %d whose range excludes its bucket", u, s)
		}
		owners := OwnersOf(u, DefaultShardBuckets, ranges, nil)
		if len(owners) != 1 || owners[0] != s {
			t.Fatalf("user %d owners %v under a disjoint layout, want [%d]", u, owners, s)
		}
	}
	// Overlap: a migration layout where shard 1's range also covers
	// shard 0's upper half must report both owners, old shard first.
	overlap := []BucketRange{{Lo: 1, Hi: 2048}, {Lo: 1025, Hi: 4096}}
	seenBoth := false
	for u := int32(0); u < 5000; u++ {
		key := ShardKey(u, DefaultShardBuckets)
		owners := OwnersOf(u, DefaultShardBuckets, overlap, nil)
		if key >= 1025 && key <= 2048 {
			if len(owners) != 2 || owners[0] != 0 || owners[1] != 1 {
				t.Fatalf("user %d (bucket %d) owners %v, want [0 1]", u, key, owners)
			}
			seenBoth = true
			if ShardOf(u, DefaultShardBuckets, overlap) != 0 {
				t.Fatalf("user %d: ShardOf must pick the first owner under overlap", u)
			}
		} else if len(owners) != 1 {
			t.Fatalf("user %d (bucket %d) owners %v, want one", u, key, owners)
		}
	}
	if !seenBoth {
		t.Fatal("no user landed in the overlapping window; test is vacuous")
	}
	// No owner: a gap layout.
	gap := []BucketRange{{Lo: 1, Hi: 1}}
	found := false
	for u := int32(0); u < 100 && !found; u++ {
		if ShardKey(u, DefaultShardBuckets) != 1 {
			if ShardOf(u, DefaultShardBuckets, gap) != -1 {
				t.Fatalf("user %d outside every range must map to -1", u)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("every probe user hashed to bucket 1; gap case unexercised")
	}
}
