package frh

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"c2knn/internal/dataset"
	"c2knn/internal/sets"
)

func randomDataset(users, items, meanProfile int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	profiles := make([][]int32, users)
	for u := range profiles {
		n := 1 + rng.Intn(2*meanProfile)
		p := make([]int32, n)
		for i := range p {
			p[i] = int32(rng.Intn(items))
		}
		profiles[u] = sets.Normalize(p)
	}
	return dataset.New("rand", profiles, int32(items))
}

func TestUserHashIsMinOfItemHashes(t *testing.T) {
	d := randomDataset(20, 100, 10, 1)
	h := NewHasher(d.NumItems, Options{B: 16, T: 3, Seed: 7})
	for fn := 0; fn < 3; fn++ {
		for u, p := range d.Profiles {
			got, ok := h.UserHash(fn, p)
			if !ok {
				t.Fatalf("user %d: unexpected undefined hash", u)
			}
			want := uint32(1 << 30)
			for _, it := range p {
				if v := h.ItemHash(fn, it); v < want {
					want = v
				}
			}
			if got != want {
				t.Errorf("fn %d user %d: H = %d, want min %d", fn, u, got, want)
			}
			if got < 1 || got > 16 {
				t.Errorf("H = %d outside [1, b]", got)
			}
		}
	}
}

func TestUserHashEmptyProfile(t *testing.T) {
	h := NewHasher(5, Options{B: 8, T: 1, Seed: 1})
	if _, ok := h.UserHash(0, nil); ok {
		t.Error("empty profile should have undefined hash")
	}
}

func TestUserHashAbove(t *testing.T) {
	d := randomDataset(50, 200, 15, 2)
	h := NewHasher(d.NumItems, Options{B: 8, T: 1, Seed: 3})
	for u, p := range d.Profiles {
		base, _ := h.UserHash(0, p)
		got, ok := h.UserHashAbove(0, p, base)
		// Verify against a direct computation.
		want := uint32(0)
		for _, it := range p {
			v := h.ItemHash(0, it)
			if v > base && (want == 0 || v < want) {
				want = v
			}
		}
		if ok != (want != 0) || got != want {
			t.Errorf("user %d: H\\%d = (%d,%v), want (%d,%v)", u, base, got, ok, want, want != 0)
		}
		if ok && got <= base {
			t.Errorf("user %d: split hash %d not above threshold %d", u, got, base)
		}
	}
}

// TestBuildPartition: per configuration, every user appears in exactly
// one cluster.
func TestBuildPartition(t *testing.T) {
	d := randomDataset(300, 50, 8, 3)
	for _, maxSize := range []int{-1, 10, 50, 1000} {
		clusters, stats := Build(d, Options{B: 8, T: 4, MaxSize: maxSize, Seed: 5})
		counts := make([]map[int32]int, 4)
		for i := range counts {
			counts[i] = make(map[int32]int)
		}
		for _, c := range clusters {
			if c.Fn < 0 || c.Fn >= 4 {
				t.Fatalf("cluster with bad fn %d", c.Fn)
			}
			for _, u := range c.Users {
				counts[c.Fn][u]++
			}
		}
		for fn, m := range counts {
			if len(m) != d.NumUsers() {
				t.Errorf("maxSize %d fn %d: %d users clustered, want %d", maxSize, fn, len(m), d.NumUsers())
			}
			for u, n := range m {
				if n != 1 {
					t.Errorf("maxSize %d fn %d: user %d in %d clusters", maxSize, fn, u, n)
				}
			}
		}
		if stats.Clusters != len(clusters) {
			t.Errorf("stats.Clusters = %d, want %d", stats.Clusters, len(clusters))
		}
	}
}

// TestBuildRespectsMaxSizeWhenSplittable: split clusters may only exceed
// MaxSize if they are unsplittable remainders (users sharing one minimum)
// — with diverse random profiles that should not happen at these sizes.
func TestBuildRespectsMaxSize(t *testing.T) {
	d := randomDataset(500, 400, 12, 4)
	const maxSize = 40
	clusters, stats := Build(d, Options{B: 16, T: 2, MaxSize: maxSize, Seed: 5})
	over := 0
	for _, c := range clusters {
		if len(c.Users) > maxSize {
			over++
		}
	}
	if over > 2 {
		t.Errorf("%d clusters exceed MaxSize=%d (want almost none)", over, maxSize)
	}
	if stats.Splits == 0 {
		t.Error("expected at least one split with b=16 and 500 users")
	}
	if stats.MaxCluster <= 0 {
		t.Error("stats.MaxCluster not tracked")
	}
}

func TestSplittingDisabled(t *testing.T) {
	d := randomDataset(500, 400, 12, 4)
	clusters, stats := Build(d, Options{B: 16, T: 2, MaxSize: -1, Seed: 5})
	if stats.Splits != 0 {
		t.Errorf("splits = %d with splitting disabled", stats.Splits)
	}
	// Without splitting there are at most b clusters per configuration.
	perFn := make(map[int]int)
	for _, c := range clusters {
		perFn[c.Fn]++
	}
	for fn, n := range perFn {
		if n > 16 {
			t.Errorf("fn %d has %d clusters, want ≤ b=16", fn, n)
		}
	}
}

// TestSplitPreservesMembership: splitting only repartitions the users of
// the oversized cluster; the union of all clusters per fn is unchanged.
func TestSplitDeterminism(t *testing.T) {
	d := randomDataset(400, 300, 10, 6)
	a, _ := Build(d, Options{B: 8, T: 3, MaxSize: 30, Seed: 9})
	b, _ := Build(d, Options{B: 8, T: 3, MaxSize: 30, Seed: 9})
	if len(a) != len(b) {
		t.Fatalf("non-deterministic cluster count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Fn != b[i].Fn || a[i].Index != b[i].Index || len(a[i].Users) != len(b[i].Users) {
			t.Fatalf("cluster %d differs between identical runs", i)
		}
	}
}

// TestSimilarUsersCollide: two users with identical profiles always land
// in the same cluster of every configuration (Theorem 1 with J=1, κ=0
// implies P=1).
func TestIdenticalUsersAlwaysTogether(t *testing.T) {
	f := func(itemsRaw []uint16, seed int64) bool {
		if len(itemsRaw) == 0 {
			return true
		}
		p := make([]int32, len(itemsRaw))
		for i, v := range itemsRaw {
			p[i] = int32(v % 1000)
		}
		p = sets.Normalize(p)
		d := dataset.New("q", [][]int32{append([]int32(nil), p...), append([]int32(nil), p...)}, 1000)
		clusters, _ := Build(d, Options{B: 64, T: 3, MaxSize: -1, Seed: seed})
		for _, c := range clusters {
			if len(c.Users) != 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCollisionRateTracksSimilarity: pairs with higher Jaccard collide
// more often across configurations (the monotonicity Theorem 1 implies).
func TestCollisionRateTracksSimilarity(t *testing.T) {
	base := make([]int32, 40)
	for i := range base {
		base[i] = int32(i)
	}
	similar := append(append([]int32{}, base[:35]...), 100, 101, 102, 103, 104) // J = 35/45
	dissimilar := []int32{200, 201, 202, 203, 204, 205, 206, 207, 208, 209}     // J = 0
	d := dataset.New("mono", [][]int32{base, sets.Normalize(similar), dissimilar}, 300)
	const T = 400
	h := NewHasher(d.NumItems, Options{B: 64, T: T, Seed: 11})
	simHits, disHits := 0, 0
	for fn := 0; fn < T; fn++ {
		h0, _ := h.UserHash(fn, d.Profiles[0])
		h1, _ := h.UserHash(fn, d.Profiles[1])
		h2, _ := h.UserHash(fn, d.Profiles[2])
		if h0 == h1 {
			simHits++
		}
		if h0 == h2 {
			disHits++
		}
	}
	if simHits <= disHits {
		t.Errorf("similar pair collided %d times, dissimilar %d — monotonicity violated", simHits, disHits)
	}
	if float64(simHits)/T < 0.5 {
		t.Errorf("similar pair (J≈0.78) collision rate %.2f, want > 0.5", float64(simHits)/T)
	}
}

// TestEmptyProfileSkipped: empty-profile users have zero similarity to
// everyone, so they are skipped at bucketing instead of being dumped
// into cluster 1 of every configuration (which inflated that cluster's
// O(|C|²) local work with guaranteed-zero-similarity pairs).
func TestEmptyProfileSkipped(t *testing.T) {
	d := dataset.New("e", [][]int32{{}, {1, 2}, {1, 2}}, 3)
	clusters, stats := Build(d, Options{B: 4, T: 2, MaxSize: -1, Seed: 1})
	perFn := make(map[int]int)
	for _, c := range clusters {
		perFn[c.Fn]++
		for _, u := range c.Users {
			if u == 0 {
				t.Errorf("empty-profile user clustered into fn %d index %d", c.Fn, c.Index)
			}
		}
		if len(c.Users) != 2 {
			t.Errorf("fn %d index %d has %d users, want the 2 identical ones", c.Fn, c.Index, len(c.Users))
		}
	}
	for fn := 0; fn < 2; fn++ {
		if perFn[fn] != 1 {
			t.Errorf("fn %d has %d clusters, want 1", fn, perFn[fn])
		}
	}
	if stats.Clusters != len(clusters) {
		t.Errorf("stats.Clusters = %d, want %d", stats.Clusters, len(clusters))
	}
}

// clusterKey canonically identifies a cluster for set comparisons:
// within one configuration the user sets are disjoint, so (Fn, Index,
// first user) is unique.
type clusterKey struct {
	fn    int
	index uint32
	first int32
	size  int
}

func keyOf(c Cluster) clusterKey {
	return clusterKey{fn: c.Fn, index: c.Index, first: c.Users[0], size: len(c.Users)}
}

// TestStreamMatchesBuild: the streamed cluster set must be identical to
// the materialized one — same clusters, same memberships — regardless
// of the concurrent emission interleaving.
func TestStreamMatchesBuild(t *testing.T) {
	d := randomDataset(400, 300, 10, 8)
	o := Options{B: 16, T: 4, MaxSize: 30, Seed: 9}
	built, bstats := Build(d, o)

	var mu sync.Mutex
	streamed := make(map[clusterKey][]int32)
	sstats := Stream(d, o, func(c Cluster) {
		users := append([]int32(nil), c.Users...)
		mu.Lock()
		if _, dup := streamed[keyOf(c)]; dup {
			t.Error("duplicate cluster emitted")
		}
		streamed[keyOf(c)] = users
		mu.Unlock()
	})

	if len(streamed) != len(built) {
		t.Fatalf("stream emitted %d clusters, build returned %d", len(streamed), len(built))
	}
	for _, c := range built {
		got, ok := streamed[keyOf(c)]
		if !ok {
			t.Fatalf("cluster fn=%d idx=%d missing from stream", c.Fn, c.Index)
		}
		for i := range got {
			if got[i] != c.Users[i] {
				t.Fatalf("cluster fn=%d idx=%d memberships differ", c.Fn, c.Index)
			}
		}
	}
	if sstats.Clusters != bstats.Clusters || sstats.Splits != bstats.Splits ||
		sstats.MaxCluster != bstats.MaxCluster || sstats.Depth != bstats.Depth {
		t.Errorf("stream stats %+v differ from build stats %+v", sstats, bstats)
	}
	for fn := range bstats.PerFn {
		if sstats.PerFn[fn] != bstats.PerFn[fn] {
			t.Errorf("PerFn[%d]: stream %d vs build %d", fn, sstats.PerFn[fn], bstats.PerFn[fn])
		}
	}
}

// TestParallelismInvariance: serial and fully-parallel configuration
// builds must return byte-identical cluster lists.
func TestParallelismInvariance(t *testing.T) {
	d := randomDataset(500, 400, 12, 4)
	for _, par := range []int{1, 2, 0} {
		o := Options{B: 16, T: 3, MaxSize: 40, Seed: 5, Parallelism: par}
		got, _ := Build(d, o)
		want, _ := Build(d, Options{B: 16, T: 3, MaxSize: 40, Seed: 5, Parallelism: 1})
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d clusters vs %d serial", par, len(got), len(want))
		}
		for i := range got {
			if got[i].Fn != want[i].Fn || got[i].Index != want[i].Index || len(got[i].Users) != len(want[i].Users) {
				t.Fatalf("parallelism %d: cluster %d differs from serial build", par, i)
			}
			for j := range got[i].Users {
				if got[i].Users[j] != want[i].Users[j] {
					t.Fatalf("parallelism %d: cluster %d memberships differ", par, i)
				}
			}
		}
	}
}

func TestTopSizes(t *testing.T) {
	clusters := []Cluster{
		{Users: make([]int32, 5)},
		{Users: make([]int32, 9)},
		{Users: make([]int32, 2)},
	}
	top := TopSizes(clusters, 2)
	if len(top) != 2 || top[0] != 9 || top[1] != 5 {
		t.Errorf("TopSizes = %v, want [9 5]", top)
	}
	all := TopSizes(clusters, 10)
	if len(all) != 3 {
		t.Errorf("TopSizes with large m = %v, want all 3", all)
	}
}

func TestNewHasherPanicsOnHugeB(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHasher should panic when B exceeds uint16")
		}
	}()
	NewHasher(10, Options{B: 1 << 17, T: 1})
}

func BenchmarkBuildClustering(b *testing.B) {
	d := randomDataset(2000, 1000, 40, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(d, Options{B: 256, T: 8, MaxSize: 100, Seed: 5})
	}
}
