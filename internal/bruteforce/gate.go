package bruteforce

// maskWords is the size of the per-row gate bitmasks: one bit per
// column of a colBlock-wide panel row.
const maskWords = colBlock / 64

// gateMasksGo is the portable gate scan: bit x of fwd is set when
// row[x] beats the row owner's threshold (minI, as of row start), bit
// x of rev when row[x] beats column x's threshold. It is the reference
// the AVX form (gate_amd64.s) must match bit for bit — both sides use
// the same ordered `>` (NaN fails), so the masks agree exactly.
//
// The fwd mask is a superset of the true forward accepts: minI can
// only rise while the row is processed, so the sweep rechecks sim >
// minI before each forward offer. The rev mask is exact: mins[x] is
// updated only by column x's own insert, and each column appears once
// per row.
func gateMasksGo(row, mins []float64, minI float64, fwd, rev *[maskWords]uint64) {
	*fwd = [maskWords]uint64{}
	*rev = [maskWords]uint64{}
	for x, sim := range row {
		if sim > minI {
			fwd[x>>6] |= 1 << uint(x&63)
		}
		if sim > mins[x] {
			rev[x>>6] |= 1 << uint(x&63)
		}
	}
}
