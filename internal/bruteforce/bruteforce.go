// Package bruteforce computes exact KNN graphs by exhaustive pairwise
// comparison — the paper's reference baseline (§IV-B1, n(n−1)/2 similarity
// computations) and also the local solver Cluster-and-Conquer applies to
// small clusters (§II-F).
package bruteforce

import (
	"sync"

	"c2knn/internal/knng"
	"c2knn/internal/similarity"
)

// Build computes the exact KNN graph over users 0..n-1 with neighborhoods
// of size k, parallelized over `workers` goroutines. Each unordered pair
// is evaluated exactly once and the result feeds both endpoints' lists.
func Build(n, k int, p similarity.Provider, workers int) *knng.Graph {
	g := knng.New(n, k)
	if n < 2 {
		return g
	}
	if workers < 1 {
		workers = 1
	}
	shared := knng.NewShared(g)
	// Rows are distributed in strided fashion: row u costs n-u-1
	// similarity computations, so striding balances work across workers
	// without a queue.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for u := start; u < n; u += workers {
				for v := u + 1; v < n; v++ {
					s := p.Sim(int32(u), int32(v))
					shared.Insert(int32(u), int32(v), s)
					shared.Insert(int32(v), int32(u), s)
				}
			}
		}(w)
	}
	wg.Wait()
	return g
}

// Local computes the exact KNN lists of the users in ids, restricted to
// candidates within ids. The returned lists are parallel to ids and hold
// global user ids; this is the per-cluster solver used by C² and LSH.
// Local is sequential: parallelism comes from processing many clusters at
// once.
func Local(ids []int32, k int, p similarity.Provider) []knng.List {
	lists := make([]knng.List, len(ids))
	for i := range lists {
		lists[i].K = k
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			s := p.Sim(ids[i], ids[j])
			lists[i].Insert(ids[j], s)
			lists[j].Insert(ids[i], s)
		}
	}
	return lists
}

// PairCount returns the number of similarity computations Build/Local
// perform for a population of size n: n(n−1)/2. It is the cost model C²
// uses when choosing between brute force and Hyrec for a cluster.
func PairCount(n int) int64 {
	return int64(n) * int64(n-1) / 2
}
