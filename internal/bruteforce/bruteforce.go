// Package bruteforce computes exact KNN graphs by exhaustive pairwise
// comparison — the paper's reference baseline (§IV-B1, n(n−1)/2 similarity
// computations) and also the local solver Cluster-and-Conquer applies to
// small clusters (§II-F).
package bruteforce

import (
	"sync"

	"c2knn/internal/knng"
	"c2knn/internal/similarity"
)

// Build computes the exact KNN graph over users 0..n-1 with neighborhoods
// of size k, parallelized over `workers` goroutines. Each unordered pair
// is evaluated exactly once and the result feeds both endpoints' lists.
func Build(n, k int, p similarity.Provider, workers int) *knng.Graph {
	g := knng.New(n, k)
	if n < 2 {
		return g
	}
	if workers < 1 {
		workers = 1
	}
	shared := knng.NewShared(g)
	// Rows are distributed in strided fashion: row u costs n-u-1
	// similarity computations, so striding balances work across workers
	// without a queue.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for u := start; u < n; u += workers {
				for v := u + 1; v < n; v++ {
					s := p.Sim(int32(u), int32(v))
					shared.Insert(int32(u), int32(v), s)
					shared.Insert(int32(v), int32(u), s)
				}
			}
		}(w)
	}
	wg.Wait()
	return g
}

// Scratch holds the reusable per-worker state of LocalInto. The zero
// value is ready to use; reusing one Scratch across clusters makes
// steady-state solving allocation-free.
type Scratch struct {
	lists []knng.List
}

// LocalInto computes the exact KNN lists of the gathered cluster loc,
// evaluating every unordered member pair once through loc's zero-
// dispatch kernel. The returned lists are parallel to loc.IDs(), hold
// global user ids, and alias s's scratch: they are valid only until the
// next LocalInto call on s. This is the per-cluster solver used by C²
// and LSH; it is sequential — parallelism comes from processing many
// clusters at once.
func LocalInto(loc *similarity.Local, k int, s *Scratch) []knng.List {
	m := loc.Len()
	s.lists = knng.ReuseLists(s.lists, m, k)
	lists := s.lists
	// The inner loop runs on local indices; ids are remapped once at the
	// end (k entries per member) instead of once per pair.
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			sim := loc.Sim(i, j)
			lists[i].Insert(int32(j), sim)
			lists[j].Insert(int32(i), sim)
		}
	}
	for i := range lists {
		h := lists[i].H
		for x := range h {
			h[x].ID = loc.ID(int(h[x].ID))
		}
	}
	return lists
}

// Local computes the exact KNN lists of the users in ids, restricted to
// candidates within ids, gathering p into a fresh cluster-local kernel
// first. The returned lists are parallel to ids and hold global user
// ids. Hot callers (core, lsh) use LocalInto with per-worker scratch
// instead.
func Local(ids []int32, k int, p similarity.Provider) []knng.List {
	var loc similarity.Local
	similarity.GatherInto(p, ids, &loc)
	var s Scratch
	return LocalInto(&loc, k, &s)
}

// PairCount returns the number of similarity computations Build/Local
// perform for a population of size n: n(n−1)/2. It is the cost model C²
// uses when choosing between brute force and Hyrec for a cluster.
func PairCount(n int) int64 {
	return int64(n) * int64(n-1) / 2
}
