// Package bruteforce computes exact KNN graphs by exhaustive pairwise
// comparison — the paper's reference baseline (§IV-B1, n(n−1)/2 similarity
// computations) and also the local solver Cluster-and-Conquer applies to
// small clusters (§II-F).
//
// Both the global baseline and the cluster-local solver run row-batched:
// a user's similarities against a whole block of candidates are scored
// in one kernel call (similarity.Local.SimRow locally,
// similarity.RowProvider globally when available) into a scratch row,
// and results enter the bounded neighbor lists through a threshold gate
// (knng.List's Min/WouldAccept fast path, mirrored into dense scratch
// inside the local sweep) that dismisses the vast majority of
// candidates with one comparison once lists warm up. The blocked path
// is bit-for-bit graph-identical to the pair-at-a-time formulation —
// LocalIntoScalar keeps that formulation as the frozen reference the
// equivalence tests and regression benchmarks compare against.
package bruteforce

import (
	"math/bits"
	"sync"

	"c2knn/internal/knng"
	"c2knn/internal/similarity"
)

// Build computes the exact KNN graph over users 0..n-1 with neighborhoods
// of size k, parallelized over `workers` goroutines. Each unordered pair
// is evaluated exactly once and the result feeds both endpoints' lists.
// Rows are scored in one batch — through p's RowProvider fast path when
// it has one — and each row's forward edges enter the graph under a
// single stripe-lock acquisition (knng.Shared.InsertRun), halving the
// baseline's lock traffic versus the historical two locks per pair.
func Build(n, k int, p similarity.Provider, workers int) *knng.Graph {
	g := knng.New(n, k)
	if n < 2 {
		return g
	}
	if workers < 1 {
		workers = 1
	}
	shared := knng.NewShared(g)
	rp, _ := p.(similarity.RowProvider)
	// Rows are distributed in strided fashion: row u costs n-u-1
	// similarity computations, so striding balances work across workers
	// without a queue.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			var row []float64
			for u := start; u < n; u += workers {
				cnt := n - u - 1
				if cnt == 0 {
					continue
				}
				row = similarity.GrowRow(row, cnt)
				if rp != nil {
					rp.SimRow(int32(u), int32(u+1), int32(n), row)
				} else {
					for v := u + 1; v < n; v++ {
						row[v-u-1] = p.Sim(int32(u), int32(v))
					}
				}
				// Forward edges batched under one lock; reverse edges
				// fan out to n-u-1 distinct users and keep per-pair
				// locking. Per list, the insert sequence is the same as
				// the historical interleaved loop, so single-worker
				// results are identical.
				shared.InsertRun(int32(u), int32(u+1), row)
				for v := u + 1; v < n; v++ {
					shared.Insert(int32(v), int32(u), row[v-u-1])
				}
			}
		}(w)
	}
	wg.Wait()
	return g
}

// Scratch holds the reusable per-worker state of LocalInto: the neighbor
// lists under construction, the scored similarity row of the blocked
// sweep, and the dense per-list gate thresholds. The zero value is
// ready to use; reusing one Scratch across clusters makes steady-state
// solving allocation-free.
type Scratch struct {
	lists []knng.List
	slab  []knng.Neighbor
	row   []float64
	mins  []float64
	// hsims/hids/lens are the sweep's parallel-array heaps: list v's
	// heap lives in hsims[v·k:(v+1)·k] / hids[v·k:(v+1)·k] with lens[v]
	// entries, and is materialized into slab's knng.Neighbor form only
	// once the sweep finishes. Splitting Sim and ID halves the bytes a
	// sift level touches (8-byte keys instead of 16-byte structs), which
	// matters once the scoring kernel is vectorized and the sift loops
	// become the solve's largest term.
	hsims []float64
	hids  []int32
	lens  []int32
}

// growInt32 is similarity.GrowRow for int32 scratch.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// LocalInto computes the exact KNN lists of the gathered cluster loc,
// evaluating every unordered member pair once through loc's zero-
// dispatch kernel. The returned lists are parallel to loc.IDs(), hold
// global user ids, and alias s's scratch: they are valid only until the
// next LocalInto call on s. This is the per-cluster solver used by C²
// and LSH; it is sequential — parallelism comes from processing many
// clusters at once.
//
// The sweep is triangular and blocked: member i's similarities against
// members i+1..m-1 are scored in one SimRow call into the scratch row,
// then offered to both endpoints' lists behind a threshold gate. The
// gate thresholds live in a dense scratch array (mins[v] mirrors
// lists[v].Min(), with the row-owner's threshold held in a local), so a
// rejected candidate — the overwhelming majority once lists warm up —
// costs one compare of two contiguous scratch reads instead of an
// Insert call chasing into the target list's heap storage. The gate is
// conservative-exact: sim > mins[v] admits every candidate Insert could
// accept (mins is -1 while a list has room; InsertDistinct still
// rejects degenerate sims).
//
// Bit-for-bit equivalence with the pair-at-a-time loop
// (LocalIntoScalar) holds because each list's state evolves
// independently and its candidate arrival order is unchanged — list v
// still sees (i, v) for i < v in ascending i, then (v, j) for j > v in
// ascending j — and a gated-out candidate is precisely one Insert would
// reject without changing the list, so tie-breaking is identical and
// both paths produce bit-identical lists.
func LocalInto(loc *similarity.Local, k int, s *Scratch) []knng.List {
	m := loc.Len()
	// One contiguous slab backs every list's heap; for the large
	// clusters of the brute-force regime this also spares thousands of
	// first-use heap allocations per fresh Scratch.
	s.lists, s.slab = knng.ReuseListsIn(s.lists, s.slab, m, k)
	lists := s.lists
	if m < 2 {
		return lists
	}
	s.row = similarity.GrowRow(s.row, min(m-1, colBlock))
	s.mins = similarity.GrowRow(s.mins, m)
	mins := s.mins
	for v := range mins {
		mins[v] = -1 // empty lists accept anything well-formed
	}
	// The sweep walks vertical panels of colBlock columns, row-major
	// inside each panel: for clusters whose gathered kernel outgrows the
	// cache, a row pass then touches only the panel's slice of the
	// signature slab (and of the list slab), instead of streaming the
	// whole cluster's signatures through the cache once per row.
	//
	// Lists run on local indices; ids are remapped once at the end
	// (k entries per member) instead of once per pair.
	// The sweep runs on parallel-array heaps (hsims/hids, one k-slot
	// stripe per list) rather than on knng.List directly: the sift
	// decisions and moves below are exactly List's, so the array state
	// matches the Neighbor heap List would hold index for index, but a
	// sift level touches half the bytes. Lists are materialized — and
	// ids remapped to global — in one pass after the sweep.
	s.hsims = similarity.GrowRow(s.hsims, m*k)
	s.hids = growInt32(s.hids, m*k)
	s.lens = growInt32(s.lens, m)
	hsims, hids, lens := s.hsims, s.hids, s.lens
	for v := range lens {
		lens[v] = 0
	}
	for c0 := 1; c0 < m; c0 += colBlock {
		c1 := min(c0+colBlock, m)
		for i := 0; i < c1-1; i++ {
			lo := max(i+1, c0)
			row := s.row[:c1-lo]
			loc.SimRow(i, lo, c1, row)
			iBase := i * k
			simsI, idsI := hsims[iBase:iBase+k], hids[iBase:iBase+k]
			nI := int(lens[i])
			minI := mins[i] // reverse inserts into list i precede row i
			// minsPane realigns the gate thresholds to the row so the
			// per-pair reads are provably in bounds.
			minsPane := mins[lo:c1]
			minsPane = minsPane[:len(row)]
			// Gate scan: one branchless compare kernel builds per-row
			// accept bitmasks (gateMasks — AVX under the vector
			// kernel), and the offer loops below touch only set bits.
			// Once lists warm up ~90% of pairs fail both gates; the
			// masks turn those from two mispredictable branches per
			// pair into a TrailingZeros walk over sparse words. The
			// scan is exact, not heuristic: the rev mask equals the
			// per-column gate (minsPane[x] is updated only by column
			// x's own insert, and each column appears once per row),
			// the fwd mask is a superset frozen at row start (minI
			// only rises) and each forward offer rechecks the live
			// minI. Each list's own candidate arrival order is
			// untouched, so the result stays bit-identical.
			var fwdM, revM [maskWords]uint64
			gateMasks(row, minsPane, minI, &fwdM, &revM)
			nw := (len(row) + 63) / 64
			for w := 0; w < nw; w++ {
				// heapOffer, not Insert-with-duplicate-scan: the
				// triangular sweep offers (j to list i, i to list j)
				// exactly once each, so the scan is provably dead.
				for b := fwdM[w]; b != 0; b &= b - 1 {
					x := w<<6 + bits.TrailingZeros64(b)
					if sim := row[x]; sim > minI {
						nI = heapOffer(simsI, idsI, nI, k, int32(lo+x), sim)
						if nI == k {
							minI = simsI[0]
						}
					}
				}
				// Prefetch the reverse targets' heap stripes now: the
				// sift loop's loads are a dependent chain into a
				// stripe that is cold by the time its list is hit
				// again, and the hint streams those lines in while
				// the remaining words are scanned.
				for b := revM[w]; b != 0; b &= b - 1 {
					jBase := (lo + w<<6 + bits.TrailingZeros64(b)) * k
					prefetchStripe(&hsims[jBase], &hids[jBase], k)
				}
			}
			lens[i] = int32(nI)
			mins[i] = minI
			// Insert phase: drain the accepted reverse offers.
			for w := 0; w < nw; w++ {
				for b := revM[w]; b != 0; b &= b - 1 {
					x := w<<6 + bits.TrailingZeros64(b)
					j := lo + x
					jBase := j * k
					simsJ, idsJ := hsims[jBase:jBase+k], hids[jBase:jBase+k]
					nJ := heapOffer(simsJ, idsJ, int(lens[j]), k, int32(i), row[x])
					lens[j] = int32(nJ)
					if nJ == k {
						minsPane[x] = simsJ[0]
					}
				}
			}
		}
	}
	// Materialize: copy each heap stripe into the list's Neighbor slab
	// (every entry was inserted this solve, hence New) and remap local
	// member indices to global user ids in the same pass.
	for v := range lists {
		n := int(lens[v])
		h := s.slab[v*k : v*k+n]
		base := v * k
		for x := range h {
			h[x] = knng.Neighbor{
				Sim: hsims[base+x],
				ID:  loc.ID(int(hids[base+x])),
				New: true,
			}
		}
		lists[v].H = h
	}
	return lists
}

// heapOffer offers (id, sim) to the k-bounded parallel-array min-heap
// holding n entries in sims/ids and returns the new entry count. Its
// decisions — degenerate-sim rejection, strict threshold on a full
// heap, hole-push sifts with List's child-selection and tie rules —
// are verbatim knng.List.InsertDistinct's, so the array heap evolves
// into exactly the layout the List heap would have.
func heapOffer(sims []float64, ids []int32, n, k int, id int32, sim float64) int {
	if sim != sim || sim < 0 {
		return n
	}
	if n >= k {
		if sim <= sims[0] {
			return n
		}
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			// Conditional-move child pick, as in List.siftDown.
			if c2 := c + 1; c2 < n {
				if sims[c2] < sims[c] {
					c = c2
				}
			}
			if sims[c] >= sim {
				break
			}
			sims[i], ids[i] = sims[c], ids[c]
			i = c
		}
		sims[i], ids[i] = sim, id
		return n
	}
	i := n
	for i > 0 {
		p := (i - 1) / 2
		if sims[p] <= sim {
			break
		}
		sims[i], ids[i] = sims[p], ids[p]
		i = p
	}
	sims[i], ids[i] = sim, id
	return n + 1
}

// colBlock is the panel width of LocalInto's blocked sweep. 512
// columns keep a panel's signature slice (64 KB at the paper's
// 1024-bit fingerprints) and its slice of the list slab (≈240 KB at
// k=30) L2-resident across the whole sweep — without panels a cluster
// near the splitting threshold streams its entire gathered slab
// through the cache once per row, and the solve turns bandwidth-bound
// (measured ≈25% slower at 1600 members). 128 through 512 measure
// within noise of each other; what matters is staying well under the
// cache while keeping SimRow calls long.
const colBlock = 512

// LocalIntoScalar is the frozen pair-at-a-time formulation of LocalInto:
// one Sim call and two ungated heap-insert calls per unordered pair,
// running the insert path exactly as it stood before the blocked sweep
// landed (scalarInsert below — threshold check, duplicate scan on
// acceptance, swap-based sifts). It is kept as the reference
// implementation the blocked sweep is proven bit-identical to
// (TestLocalIntoBlockedMatchesScalar) and as the baseline of the
// BenchmarkLocalSolve* regression family, so later knng.List
// improvements do not silently inflate the baseline; production callers
// use LocalInto.
func LocalIntoScalar(loc *similarity.Local, k int, s *Scratch) []knng.List {
	m := loc.Len()
	s.lists = knng.ReuseLists(s.lists, m, k)
	lists := s.lists
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			sim := loc.Sim(i, j)
			scalarInsert(&lists[i], int32(j), sim)
			scalarInsert(&lists[j], int32(i), sim)
		}
	}
	remapIDs(loc, lists)
	return lists
}

// scalarInsert is a verbatim port of knng.List.Insert (and its
// swap-based sifts) as of the pair-at-a-time solver, operating on the
// exported List fields. Decisions and resulting heap layout are
// identical to the live Insert, so LocalIntoScalar's output stays a
// valid equivalence reference; only its cost profile is frozen.
func scalarInsert(l *knng.List, v int32, sim float64) bool {
	if sim != sim || sim < 0 {
		return false
	}
	if len(l.H) >= l.K {
		if sim <= l.H[0].Sim || l.Contains(v) {
			return false
		}
		l.H[0] = knng.Neighbor{ID: v, Sim: sim, New: true}
		i, n := 0, len(l.H)
		for {
			least := i
			if c := 2*i + 1; c < n && l.H[c].Sim < l.H[least].Sim {
				least = c
			}
			if c := 2*i + 2; c < n && l.H[c].Sim < l.H[least].Sim {
				least = c
			}
			if least == i {
				return true
			}
			l.H[i], l.H[least] = l.H[least], l.H[i]
			i = least
		}
	}
	if l.Contains(v) {
		return false
	}
	l.H = append(l.H, knng.Neighbor{ID: v, Sim: sim, New: true})
	for i := len(l.H) - 1; i > 0; {
		p := (i - 1) / 2
		if l.H[p].Sim <= l.H[i].Sim {
			break
		}
		l.H[p], l.H[i] = l.H[i], l.H[p]
		i = p
	}
	return true
}

// remapIDs rewrites the lists' local member indices to global user ids.
func remapIDs(loc *similarity.Local, lists []knng.List) {
	for i := range lists {
		h := lists[i].H
		for x := range h {
			h[x].ID = loc.ID(int(h[x].ID))
		}
	}
}

// Local computes the exact KNN lists of the users in ids, restricted to
// candidates within ids, gathering p into a fresh cluster-local kernel
// first. The returned lists are parallel to ids and hold global user
// ids. Hot callers (core, lsh) use LocalInto with per-worker scratch
// instead.
func Local(ids []int32, k int, p similarity.Provider) []knng.List {
	var loc similarity.Local
	similarity.GatherInto(p, ids, &loc)
	var s Scratch
	return LocalInto(&loc, k, &s)
}

// PairCount returns the number of similarity computations Build/Local
// perform for a population of size n: n(n−1)/2. It is the cost model C²
// uses when choosing between brute force and Hyrec for a cluster.
func PairCount(n int) int64 {
	return int64(n) * int64(n-1) / 2
}
