package bruteforce

import "c2knn/internal/similarity"

// gateScanAVX fills the leading n bits of the fwd/rev masks from groups
// of four VCMPPD/VMOVMSKPD compares; n must be a multiple of 4 and ≥ 4.
// The compare predicate is GT_OQ — ordered, quiet — which is exactly
// Go's `>` on float64 (NaN compares false), so the masks match
// gateMasksGo bit for bit.
//
//go:noescape
func gateScanAVX(row *float64, mins *float64, minI float64, fwd, rev *uint64, n int)

// gateMasks computes the row's gate bitmasks (see gateMasksGo for the
// contract), through the AVX scan when the vector similarity kernel is
// active — the probe that admitted AVX2 covers everything the scan
// uses — and through the portable loop otherwise, including under
// C2_KERNEL=scalar so that mode exercises pure-Go gating end to end.
func gateMasks(row, mins []float64, minI float64, fwd, rev *[maskWords]uint64) {
	if similarity.KernelName() != "avx2" {
		gateMasksGo(row, mins, minI, fwd, rev)
		return
	}
	*fwd = [maskWords]uint64{}
	*rev = [maskWords]uint64{}
	n := len(row)
	nb := n &^ 3
	if nb > 0 {
		gateScanAVX(&row[0], &mins[0], minI, &fwd[0], &rev[0], nb)
	}
	for x := nb; x < n; x++ {
		sim := row[x]
		if sim > minI {
			fwd[x>>6] |= 1 << uint(x&63)
		}
		if sim > mins[x] {
			rev[x>>6] |= 1 << uint(x&63)
		}
	}
}
