//go:build !amd64

package bruteforce

func gateMasks(row, mins []float64, minI float64, fwd, rev *[maskWords]uint64) {
	gateMasksGo(row, mins, minI, fwd, rev)
}
