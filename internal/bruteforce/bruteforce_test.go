package bruteforce

import (
	"math/rand"
	"testing"

	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/sets"
	"c2knn/internal/similarity"
)

// pairSim is a deterministic synthetic metric.
func pairSim(u, v int32) float64 {
	if u > v {
		u, v = v, u
	}
	return float64((int64(u)*7919+int64(v)*104729)%9973) / 9973
}

func TestBuildMatchesNaive(t *testing.T) {
	const n, k = 60, 5
	p := similarity.Func(pairSim)
	g := Build(n, k, p, 3)
	for u := int32(0); u < n; u++ {
		want := naiveTopK(n, k, u)
		got := g.Neighbors(u)
		if len(got) != k {
			t.Fatalf("user %d has %d neighbors, want %d", u, len(got), k)
		}
		for i := range want {
			if got[i].Sim != want[i] {
				t.Errorf("user %d rank %d: sim %v, want %v", u, i, got[i].Sim, want[i])
			}
		}
	}
}

func naiveTopK(n, k int, u int32) []float64 {
	var sims []float64
	for v := int32(0); v < int32(n); v++ {
		if v != u {
			sims = append(sims, pairSim(u, v))
		}
	}
	// insertion sort descending
	for i := 1; i < len(sims); i++ {
		for j := i; j > 0 && sims[j] > sims[j-1]; j-- {
			sims[j], sims[j-1] = sims[j-1], sims[j]
		}
	}
	return sims[:k]
}

func TestBuildComputesEachPairOnce(t *testing.T) {
	const n = 40
	c := similarity.NewCounting(similarity.Func(pairSim))
	Build(n, 3, c, 4)
	if got, want := c.Count(), PairCount(n); got != want {
		t.Errorf("similarity computations = %d, want %d", got, want)
	}
}

func TestBuildDegenerate(t *testing.T) {
	p := similarity.Func(pairSim)
	if g := Build(0, 3, p, 2); g.NumUsers() != 0 {
		t.Error("empty population mishandled")
	}
	if g := Build(1, 3, p, 2); g.Lists[0].Len() != 0 {
		t.Error("single user should have no neighbors")
	}
	g := Build(2, 3, p, 2)
	if g.Lists[0].Len() != 1 || g.Lists[1].Len() != 1 {
		t.Error("pair population should be mutually connected")
	}
}

func TestBuildWorkerCountIrrelevant(t *testing.T) {
	const n, k = 80, 4
	p := similarity.Func(pairSim)
	g1 := Build(n, k, p, 1)
	g4 := Build(n, k, p, 4)
	for u := int32(0); u < n; u++ {
		a, b := g1.Neighbors(u), g4.Neighbors(u)
		for i := range a {
			if a[i].Sim != b[i].Sim {
				t.Fatalf("user %d: results depend on worker count", u)
			}
		}
	}
}

func TestLocalRestrictsToSubset(t *testing.T) {
	ids := []int32{3, 9, 14, 27, 41}
	lists := Local(ids, 3, similarity.Func(pairSim))
	if len(lists) != len(ids) {
		t.Fatalf("got %d lists, want %d", len(lists), len(ids))
	}
	inSubset := make(map[int32]bool)
	for _, id := range ids {
		inSubset[id] = true
	}
	for i, l := range lists {
		if l.Len() != 3 {
			t.Errorf("list %d has %d neighbors, want 3", i, l.Len())
		}
		for _, nb := range l.H {
			if !inSubset[nb.ID] {
				t.Errorf("list %d contains out-of-cluster id %d", i, nb.ID)
			}
			if nb.ID == ids[i] {
				t.Errorf("list %d contains self", i)
			}
			if nb.Sim != pairSim(ids[i], nb.ID) {
				t.Errorf("list %d stores wrong sim", i)
			}
		}
	}
}

func TestLocalSingleton(t *testing.T) {
	lists := Local([]int32{5}, 3, similarity.Func(pairSim))
	if len(lists) != 1 || lists[0].Len() != 0 {
		t.Error("singleton cluster should produce one empty list")
	}
}

func TestPairCount(t *testing.T) {
	cases := map[int]int64{0: 0, 1: 0, 2: 1, 10: 45, 100: 4950}
	for n, want := range cases {
		if got := PairCount(n); got != want {
			t.Errorf("PairCount(%d) = %d, want %d", n, got, want)
		}
	}
}

func BenchmarkBuild500(b *testing.B) {
	p := similarity.Func(pairSim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(500, 10, p, 2)
	}
}

// TestLocalIntoScratchReuse: solving many clusters of varying sizes
// through one reused Scratch must match fresh Local calls exactly.
func TestLocalIntoScratchReuse(t *testing.T) {
	p := similarity.Func(pairSim)
	var loc similarity.Local
	var s Scratch
	for trial := 0; trial < 8; trial++ {
		m := 2 + (trial*13)%37
		ids := make([]int32, m)
		for i := range ids {
			ids[i] = int32(trial*100 + i*3)
		}
		similarity.GatherInto(p, ids, &loc)
		got := LocalInto(&loc, 5, &s)
		want := Local(ids, 5, p)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d lists, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if len(got[i].H) != len(want[i].H) {
				t.Fatalf("trial %d list %d: %d neighbors, want %d", trial, i, len(got[i].H), len(want[i].H))
			}
			for j := range got[i].H {
				if got[i].H[j] != want[i].H[j] {
					t.Fatalf("trial %d list %d slot %d: %+v vs %+v", trial, i, j, got[i].H[j], want[i].H[j])
				}
			}
		}
	}
}

// TestLocalIntoBlockedMatchesScalar: the blocked triangular sweep must
// produce lists bit-identical to the frozen pair-at-a-time reference on
// fixed seeds — same heap layout, same ids, same sims, same New flags —
// on real GoldFinger kernels (whose row path exercises BitSimRow) and
// on the generic fallback.
func TestLocalIntoBlockedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	profiles := make([][]int32, 700)
	for i := range profiles {
		p := make([]int32, rng.Intn(50))
		for j := range p {
			p[j] = int32(rng.Intn(2500))
		}
		profiles[i] = sets.Normalize(p)
	}
	d := dataset.New("blocked", profiles, 2500)
	gf := goldfinger.MustNew(d, 1024, 7)
	gfOdd := goldfinger.MustNew(d, 320, 7) // odd word count: generic bit loop

	providers := []similarity.Provider{gf, gfOdd, similarity.NewJaccard(d), similarity.Func(pairSim)}
	var loc similarity.Local
	var sBlocked, sScalar Scratch
	for pi, p := range providers {
		for trial := 0; trial < 7; trial++ {
			m := 2 + rng.Intn(120)
			if trial == 6 {
				// Larger than colBlock: the sweep's panel boundaries —
				// including a partial trailing panel — must not disturb
				// per-list candidate order.
				m = 600
			}
			perm := rng.Perm(len(profiles))
			ids := make([]int32, m)
			for i := range ids {
				ids[i] = int32(perm[i])
			}
			k := 1 + rng.Intn(31)
			similarity.GatherInto(p, ids, &loc)
			want := LocalIntoScalar(&loc, k, &sScalar)
			similarity.GatherInto(p, ids, &loc)
			got := LocalInto(&loc, k, &sBlocked)
			if len(got) != len(want) {
				t.Fatalf("provider %d trial %d: %d lists vs %d", pi, trial, len(got), len(want))
			}
			for i := range got {
				if len(got[i].H) != len(want[i].H) {
					t.Fatalf("provider %d trial %d list %d: %d neighbors vs %d",
						pi, trial, i, len(got[i].H), len(want[i].H))
				}
				for j := range got[i].H {
					if got[i].H[j] != want[i].H[j] {
						t.Fatalf("provider %d trial %d list %d slot %d: %+v vs %+v",
							pi, trial, i, j, got[i].H[j], want[i].H[j])
					}
				}
			}
		}
	}
}

// TestBuildRowProviderMatchesFallback: Build through the RowProvider
// fast path (GoldFinger's global slab) must equal Build through plain
// per-pair dispatch of the same metric.
func TestBuildRowProviderMatchesFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	profiles := make([][]int32, 150)
	for i := range profiles {
		p := make([]int32, 1+rng.Intn(40))
		for j := range p {
			p[j] = int32(rng.Intn(1500))
		}
		profiles[i] = sets.Normalize(p)
	}
	d := dataset.New("rowbuild", profiles, 1500)
	gf := goldfinger.MustNew(d, 1024, 11)
	if _, ok := similarity.Provider(gf).(similarity.RowProvider); !ok {
		t.Fatal("goldfinger.Set must implement RowProvider")
	}
	// similarity.Func hides the row path, forcing the scalar fallback.
	fallback := similarity.Func(gf.Sim)
	gRow := Build(len(profiles), 10, gf, 1)
	gScalar := Build(len(profiles), 10, fallback, 1)
	for u := int32(0); u < int32(len(profiles)); u++ {
		a, b := gRow.Neighbors(u), gScalar.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("user %d: %d vs %d neighbors", u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("user %d rank %d: %+v vs %+v", u, i, a[i], b[i])
			}
		}
	}
}
