// See gate_amd64.go. Branchless gate scan: four float64 compares per
// iteration against the broadcast row threshold and the marching
// column thresholds, VMOVMSKPD packing each into 4 mask bits. Bits
// accumulate in registers and spill one uint64 per 64 columns; a
// partial final word is flushed on exit (the caller pre-zeroes the
// mask arrays, so unwritten trailing words stay zero).

#include "textflag.h"

// func gateScanAVX(row *float64, mins *float64, minI float64, fwd, rev *uint64, n int)
TEXT ·gateScanAVX(SB), NOSPLIT, $0-48
	MOVQ row+0(FP), SI
	MOVQ mins+8(FP), BX
	MOVQ fwd+24(FP), DI
	MOVQ rev+32(FP), R8
	MOVQ n+40(FP), R14

	VBROADCASTSD minI+16(FP), Y0

	XORQ R9, R9   // bit position within the current mask word
	XORQ R10, R10 // fwd accumulator
	XORQ R11, R11 // rev accumulator

loop4:
	CMPQ R14, $4
	JLT  flush

	VMOVUPD   (SI), Y1
	VCMPPD    $30, Y0, Y1, Y2 // GT_OQ: row > minI
	VMOVMSKPD Y2, AX
	VMOVUPD   (BX), Y3
	VCMPPD    $30, Y3, Y1, Y3 // GT_OQ: row > mins
	VMOVMSKPD Y3, DX

	MOVQ R9, CX
	SHLQ CL, AX
	SHLQ CL, DX
	ORQ  AX, R10
	ORQ  DX, R11

	ADDQ $32, SI
	ADDQ $32, BX
	SUBQ $4, R14
	ADDQ $4, R9
	CMPQ R9, $64
	JLT  loop4

	MOVQ R10, (DI)
	MOVQ R11, (R8)
	ADDQ $8, DI
	ADDQ $8, R8
	XORQ R9, R9
	XORQ R10, R10
	XORQ R11, R11
	JMP  loop4

flush:
	TESTQ R9, R9
	JZ    done
	MOVQ  R10, (DI)
	MOVQ  R11, (R8)

done:
	VZEROUPPER
	RET
