//go:build !amd64

package bruteforce

// Ports without a prefetch helper: the sweep still works, the insert
// phase just pays the cold-stripe latency the hint would have hidden.
func prefetchStripe(sims *float64, ids *int32, k int) {}
