// See prefetch_amd64.go. Hints, not loads: PREFETCHT0 never faults and
// retires immediately, so over-prefetching past the stripe's true
// length only costs a few spare line fills.

#include "textflag.h"

// func prefetchStripe(sims *float64, ids *int32, k int)
TEXT ·prefetchStripe(SB), NOSPLIT, $0-24
	MOVQ sims+0(FP), AX
	MOVQ ids+8(FP), BX
	MOVQ k+16(FP), CX

	// Every cache line of sims[0:k] (8 floats per line)...
	MOVQ CX, DX
	SHLQ $3, DX // DX = k*8 bytes

simsLoop:
	PREFETCHT0 (AX)
	ADDQ $64, AX
	SUBQ $64, DX
	JG   simsLoop

	// ...and of ids[0:k] (16 ids per line).
	MOVQ CX, DX
	SHLQ $2, DX // DX = k*4 bytes

idsLoop:
	PREFETCHT0 (BX)
	ADDQ $64, BX
	SUBQ $64, DX
	JG   idsLoop

	RET
