package bruteforce

// prefetchStripe issues non-blocking PREFETCHT0 hints for one list's
// parallel-array heap stripe (k float64 sims plus k int32 ids — up to
// 512 B, eight cache lines). The blocked sweep calls it from the gate
// scan, several pairs before the insert phase walks the stripe: the
// sift loop's loads are a dependent chain (each level's child index
// comes from the previous comparison), so without the hint a cold
// stripe costs a serial string of L2 hits; with it the lines stream in
// parallel while the scan finishes the row.
//
// Implemented in assembly because Go has no prefetch intrinsic and a
// pure-Go "touch" load is dead-code the compiler may delete.
//
//go:noescape
func prefetchStripe(sims *float64, ids *int32, k int)
