package experiments

import (
	"time"

	"c2knn/internal/core"
	"c2knn/internal/knng"
)

// PipelineRow is one mode of the clustering/solving overlap experiment:
// the same C² configuration built with the streaming pipeline or with
// the historical barrier (serial clustering, then solving).
type PipelineRow struct {
	Dataset       string
	Mode          string // "pipelined" or "barrier"
	Total         time.Duration
	Cluster       time.Duration
	KNN           time.Duration
	Overlap       time.Duration
	MaxQueueDepth int
	Clusters      int
	Quality       float64
}

// PipelineSummary condenses a pipeline run into the flat record the CI
// benchmark tracks (benchmarks/BENCH_pipeline.json).
type PipelineSummary struct {
	Dataset      string  `json:"dataset"`
	Workers      int     `json:"workers"`
	PipelinedMS  float64 `json:"pipelined_ms"`
	BarrierMS    float64 `json:"barrier_ms"`
	Speedup      float64 `json:"speedup"`
	OverlapMS    float64 `json:"overlap_ms"`
	QualityRatio float64 `json:"quality_ratio"`
}

// Pipeline measures what pipelining clustering into the solver pool
// buys on the dense sensitivity dataset (ml10M): end-to-end wall clock
// with and without the streaming producer/consumer overlap, at the
// Env's worker count, plus the quality-parity check the determinism
// contract requires (same seed ⇒ same cluster set ⇒ quality within
// noise of the barrier path).
func (e *Env) Pipeline() ([]PipelineRow, *PipelineSummary, error) {
	e.setDefaults()
	const name = "ml10M"
	e.printf("Pipeline: clustering/solving overlap on %s (scale %.3g, %d workers)\n",
		name, e.Scale, e.Workers)
	p, err := e.Prepare(name)
	if err != nil {
		return nil, nil, err
	}
	exact := p.Exact()
	b, t, n := e.C2Params(name)
	base := core.Options{K: e.K, B: b, T: t, MaxClusterSize: n, Workers: e.Workers, Seed: e.Seed}

	run := func(mode string, disable bool) PipelineRow {
		opts := base
		opts.DisablePipeline = disable
		g, stats := core.Build(p.Data, p.GF, opts)
		return PipelineRow{
			Dataset:       name,
			Mode:          mode,
			Total:         stats.TotalTime,
			Cluster:       stats.ClusterTime,
			KNN:           stats.KNNTime,
			Overlap:       stats.OverlapTime,
			MaxQueueDepth: stats.MaxQueueDepth,
			Clusters:      stats.Clusters,
			Quality:       knng.Quality(g, exact, p.Raw),
		}
	}
	// Pipelined first: the second run inherits whatever warm-cache and
	// grown-heap advantage one process offers, so handing it to the
	// barrier biases the measured speedup (barrier/pipelined) DOWNWARD —
	// an honest-to-conservative estimate of the pipeline's win. The
	// bench-compare.sh gate threshold is a lenient 0.8x precisely
	// because this ordering, plus runner noise, works against the
	// pipelined side.
	pipelined := run("pipelined", false)
	barrier := run("barrier", true)
	rows := []PipelineRow{pipelined, barrier}
	for _, r := range rows {
		e.printf("  %-10s total=%-12v cluster=%-12v knn=%-12v overlap=%-12v qdepth=%-6d quality=%.3f\n",
			r.Mode, r.Total.Round(time.Millisecond), r.Cluster.Round(time.Millisecond),
			r.KNN.Round(time.Millisecond), r.Overlap.Round(time.Millisecond),
			r.MaxQueueDepth, r.Quality)
	}
	sum := &PipelineSummary{
		Dataset:     name,
		Workers:     e.Workers,
		PipelinedMS: float64(pipelined.Total) / float64(time.Millisecond),
		BarrierMS:   float64(barrier.Total) / float64(time.Millisecond),
		OverlapMS:   float64(pipelined.Overlap) / float64(time.Millisecond),
	}
	if pipelined.Total > 0 {
		sum.Speedup = float64(barrier.Total) / float64(pipelined.Total)
	}
	if barrier.Quality > 0 {
		sum.QualityRatio = pipelined.Quality / barrier.Quality
	}
	e.printf("  speedup=%.2fx quality-ratio=%.4f\n", sum.Speedup, sum.QualityRatio)
	return rows, sum, nil
}
