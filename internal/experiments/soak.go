package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"c2knn"
	"c2knn/internal/core"
	"c2knn/internal/server"
)

// SoakOptions sizes the fault-injection soak (see Env.Soak).
type SoakOptions struct {
	// Duration is the wall-clock load window (default 20s; the short
	// regression test uses ~2s, CI uses the bench-soak.sh default).
	Duration time.Duration
	// Clients is the number of concurrent well-formed clients
	// (default 8).
	Clients int
}

// SoakSummary condenses the soak into the flat record CI tracks
// (benchmarks/BENCH_soak.json). The invariants are hard gates in
// scripts/bench-compare.sh: zero failed or mismatched well-formed
// requests, zero daemon deaths, every fault class provoked and answered
// with its documented status code, a corrupt snapshot reload survived
// without dropping the old epoch, and the /metrics counters reconciled
// exactly against the harness's own accounting. Latency is recorded for
// tracking; only a grossly pathological p99 is gated.
type SoakSummary struct {
	Dataset      string  `json:"dataset"`
	Users        int     `json:"users"`
	Workers      int     `json:"workers"`
	DurationSecs float64 `json:"duration_secs"`
	Clients      int     `json:"clients"`

	Requests        int `json:"requests"` // well-formed requests answered
	Queries         int `json:"queries"`  // user-queries inside them (batches count each user)
	FailedReqs      int `json:"failed_requests"`
	MismatchedResps int `json:"mismatched_responses"`
	Retried429      int `json:"retried_429"` // well-formed requests that hit shedding and retried

	Fault413        int `json:"fault_413_oversized"`
	Fault400        int `json:"fault_400_overbatch"`
	Fault500        int `json:"fault_500_panics"`
	Fault503        int `json:"fault_503_deadline"`
	Shed429         int `json:"shed_responses"`
	LorisConns      int `json:"loris_connections"`
	FaultUnexpected int `json:"fault_unexpected"` // fault probes answered with the wrong status

	HotSwaps               int  `json:"hot_swaps"`
	CorruptReloads         int  `json:"corrupt_reloads"`
	CorruptKeptServing     bool `json:"corrupt_kept_serving"`
	GoodReloadAfterCorrupt bool `json:"good_reload_after_corrupt"`
	Restarts               int  `json:"restarts"` // daemon deaths; in-process, so any nonzero is a crash

	MetricsReconciled bool   `json:"metrics_reconciled"`
	MetricsDiff       string `json:"metrics_diff,omitempty"`

	QPS       float64 `json:"qps"` // well-formed requests/sec
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

// Soak is the long-haul fault-injection experiment: it serves a C²
// snapshot through the full hardened middleware stack on a real TCP
// listener, keeps a pool of paced well-formed clients running — every
// response checked bit-for-bit against Index.Recommend — and
// concurrently injects every fault class the stack is built to absorb:
// oversized bodies (413), over-cap batches (400), handler panics (500),
// deadline-exceeding requests (503), admission-control stampedes (429),
// slow-loris connections (cut by the read timeouts), and a mid-load
// snapshot corruption with reload (old epoch keeps serving, typed
// "corrupt" error, later good reload succeeds). At the end it scrapes
// /metrics and reconciles the server's counters against the harness's
// own per-status accounting — every response either side saw must match.
func (e *Env) Soak(opts SoakOptions) (*SoakSummary, error) {
	e.setDefaults()
	if opts.Duration <= 0 {
		opts.Duration = 20 * time.Second
	}
	if opts.Clients <= 0 {
		opts.Clients = 8
	}
	const name = "ml1M"
	const nRec = 30
	const (
		maxInFlight = 8
		reqTimeout  = 750 * time.Millisecond
		maxBody     = 64 << 10
		maxBatch    = 64
		batchSize   = 8
	)
	e.printf("Soak: %v fault-injection soak on %s (%d clients, %d-worker pool, inflight cap %d)\n",
		opts.Duration.Round(time.Second), name, opts.Clients, e.Workers, maxInFlight)

	p, err := e.Prepare(name)
	if err != nil {
		return nil, err
	}
	b, t, n := e.C2Params(name)
	g, _ := core.Build(p.Data, p.GF, core.Options{
		K: e.K, B: b, T: t, MaxClusterSize: n, Workers: e.Workers, Seed: e.Seed,
	})
	ix, err := c2knn.NewIndex(g, p.Data, p.GF)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "c2soak")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "index.c2")
	if err := ix.Save(snap); err != nil {
		return nil, err
	}
	good, err := os.ReadFile(snap)
	if err != nil {
		return nil, err
	}

	srv, err := server.New(ix, server.Config{
		SnapshotPath:   snap,
		MaxConcurrent:  e.Workers,
		MaxBatch:       maxBatch,
		MaxBodyBytes:   maxBody,
		RequestTimeout: reqTimeout,
		MaxInFlight:    maxInFlight,
		FaultInjection: true,
		// Injected panics log a full stack each; keep the report readable.
		Logf: func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 2 * time.Second, // cuts header-stage slow loris
		ReadTimeout:       5 * time.Second, // cuts body-stage slow loris
		IdleTimeout:       time.Minute,
	}
	// Any Serve return before we initiate shutdown is a daemon death —
	// exactly what the panic-recovery stack exists to prevent.
	var shuttingDown, died atomic.Bool
	go func() {
		err := httpSrv.Serve(ln)
		if !shuttingDown.Load() && err != nil {
			died.Store(true)
		}
	}()
	defer func() {
		shuttingDown.Store(true)
		httpSrv.Close()
	}()
	base := "http://" + ln.Addr().String()

	users := p.Data.NumUsers()
	hotSet := users
	if hotSet > 100 {
		hotSet = 100
	}
	expected := make([][]int32, hotSet)
	for u := 0; u < hotSet; u++ {
		expected[u] = ix.Recommend(int32(u), nRec)
	}

	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        4 * (opts.Clients + maxInFlight),
			MaxIdleConnsPerHost: 4 * (opts.Clients + maxInFlight),
		},
	}

	// Every response observed on the query/admin surfaces, by status
	// code — the other half of the /metrics reconciliation.
	var statusMu sync.Mutex
	statusCount := map[string]int{}
	countStatus := func(code int) {
		statusMu.Lock()
		statusCount[fmt.Sprintf("%d", code)]++
		statusMu.Unlock()
	}

	var (
		queries    atomic.Int64 // user-queries answered 200 (batch counts each user)
		shed429    atomic.Int64
		fault503   atomic.Int64
		fault500   atomic.Int64
		fault413   atomic.Int64
		fault400   atomic.Int64
		unexpected atomic.Int64
		lorisConns atomic.Int64
	)

	start := time.Now()
	deadline := start.Add(opts.Duration)

	// --- Well-formed load: paced clients over a hot set, bit-for-bit
	// checked. A 429 is backpressure, not a failure: the client honors it
	// by backing off and retrying the same request, as the middleware
	// package documents.
	type wfResult struct {
		latencies  []time.Duration
		requests   int
		failed     int
		mismatched int
		retried    int
	}
	results := make([]wfResult, opts.Clients)
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := &results[c]
			do := func(req func() (*http.Response, error)) (*http.Response, bool) {
				for retryUntil := deadline.Add(2 * time.Second); ; {
					resp, err := req()
					if err != nil {
						res.failed++
						return nil, false
					}
					countStatus(resp.StatusCode)
					if resp.StatusCode != http.StatusTooManyRequests {
						return resp, true
					}
					resp.Body.Close()
					res.retried++
					shed429.Add(1)
					if time.Now().After(retryUntil) {
						res.failed++
						return nil, false
					}
					time.Sleep(10 * time.Millisecond)
				}
			}
			for i := 0; time.Now().Before(deadline); i++ {
				u := (c*9973 + i) % hotSet
				t0 := time.Now()
				if i%5 == 4 {
					span := make([]int32, batchSize)
					for j := range span {
						span[j] = int32((u/batchSize*batchSize + j) % hotSet)
					}
					body, _ := json.Marshal(map[string]any{"users": span, "n": nRec})
					resp, ok := do(func() (*http.Response, error) {
						return client.Post(base+"/v1/recommend", "application/json", bytes.NewReader(body))
					})
					if !ok {
						continue
					}
					var br struct {
						Results []struct {
							User  int32   `json:"user"`
							Items []int32 `json:"items"`
						} `json:"results"`
					}
					err := json.NewDecoder(resp.Body).Decode(&br)
					resp.Body.Close()
					res.latencies = append(res.latencies, time.Since(t0))
					res.requests++
					if err != nil || resp.StatusCode != 200 || len(br.Results) != batchSize {
						res.failed++
						continue
					}
					queries.Add(batchSize)
					for j, r := range br.Results {
						if !slices.Equal(r.Items, expected[span[j]]) {
							res.mismatched++
						}
					}
				} else {
					resp, ok := do(func() (*http.Response, error) {
						return client.Get(fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", base, u, nRec))
					})
					if !ok {
						continue
					}
					var rec struct {
						Items []int32 `json:"items"`
					}
					err := json.NewDecoder(resp.Body).Decode(&rec)
					resp.Body.Close()
					res.latencies = append(res.latencies, time.Since(t0))
					res.requests++
					if err != nil || resp.StatusCode != 200 {
						res.failed++
						continue
					}
					queries.Add(1)
					if !slices.Equal(rec.Items, expected[u]) {
						res.mismatched++
					}
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(c)
	}

	// probe issues one fault request and verifies the status the stack
	// must answer it with; anything else is a harness-visible bug.
	probe := func(resp *http.Response, err error, want int, got *atomic.Int64) {
		if err != nil {
			unexpected.Add(1)
			return
		}
		drain(resp)
		countStatus(resp.StatusCode)
		if resp.StatusCode == want {
			got.Add(1)
		} else {
			unexpected.Add(1)
		}
	}

	// --- Fault injector: cycles every fault class while the well-formed
	// load runs; the corrupt-reload sequence fires once past halfway.
	sum := &SoakSummary{
		Dataset: name, Users: users, Workers: e.Workers, Clients: opts.Clients,
	}
	oversized := []byte(`{"users":[` + strings.Repeat("0,", maxBody/2) + `0]}`)
	overbatch, _ := json.Marshal(map[string]any{
		"users": make([]int32, maxBatch+1), "n": nRec,
	})
	var lorisWG sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		half := start.Add(opts.Duration / 2)
		corruptDone := false
		for cycle := 0; cycle == 0 || time.Now().Before(deadline); cycle++ {
			// 413: a valid JSON body over the byte cap.
			resp, err := client.Post(base+"/v1/recommend", "application/json", bytes.NewReader(oversized))
			probe(resp, err, http.StatusRequestEntityTooLarge, &fault413)

			// 400: a batch over the fan-out cap, well under the byte cap.
			resp, err = client.Post(base+"/v1/recommend", "application/json", bytes.NewReader(overbatch))
			probe(resp, err, http.StatusBadRequest, &fault400)

			// 500: an injected handler panic the daemon must survive.
			resp, err = client.Post(base+"/admin/panic", "application/json", nil)
			probe(resp, err, http.StatusInternalServerError, &fault500)

			// 503: a request that outlives the per-request deadline.
			resp, err = client.Get(base + "/admin/delay?d=" + (reqTimeout + 500*time.Millisecond).String())
			probe(resp, err, http.StatusServiceUnavailable, &fault503)

			// 429: a stampede wider than the in-flight cap; the surplus
			// must shed, the admitted must finish.
			var burst sync.WaitGroup
			for j := 0; j < maxInFlight+4; j++ {
				burst.Add(1)
				go func() {
					defer burst.Done()
					resp, err := client.Get(base + "/admin/delay?d=150ms")
					if err != nil {
						unexpected.Add(1)
						return
					}
					drain(resp)
					countStatus(resp.StatusCode)
					switch resp.StatusCode {
					case http.StatusOK:
					case http.StatusTooManyRequests:
						shed429.Add(1)
					default:
						unexpected.Add(1)
					}
				}()
			}
			burst.Wait()

			// Slow loris: trickle a never-completing request; the read
			// timeouts must cut it without disturbing anyone else.
			lorisWG.Add(1)
			go func() {
				defer lorisWG.Done()
				conn, err := net.Dial("tcp", ln.Addr().String())
				if err != nil {
					return
				}
				defer conn.Close()
				lorisConns.Add(1)
				conn.Write([]byte("GET /v1/topk?user=0 HTTP/1.1\r\nHost: soak\r\nX-Loris: "))
				for i := 0; i < 20; i++ { // 6s of trickle vs a 2s header timeout
					if _, err := conn.Write([]byte("z")); err != nil {
						return // server cut us off, as it must
					}
					time.Sleep(300 * time.Millisecond)
				}
			}()

			// Good hot-swap under load: the identical snapshot re-read and
			// swapped in; in-flight well-formed requests must not notice.
			resp, err = client.Post(base+"/admin/reload", "application/json", nil)
			if err == nil {
				drain(resp)
				countStatus(resp.StatusCode)
				if resp.StatusCode == http.StatusOK {
					sum.HotSwaps++
				} else {
					unexpected.Add(1)
				}
			} else {
				unexpected.Add(1)
			}

			if !corruptDone && time.Now().After(half) {
				corruptDone = true
				runCorrupt(sum, client, base, srv, snap, good, expected, nRec, countStatus, &queries, &unexpected)
			}
			time.Sleep(100 * time.Millisecond)
		}
		if !corruptDone {
			runCorrupt(sum, client, base, srv, snap, good, expected, nRec, countStatus, &queries, &unexpected)
		}
	}()

	wg.Wait()
	elapsed := time.Since(start)
	lorisWG.Wait()

	var all []time.Duration
	for i := range results {
		sum.Requests += results[i].requests
		sum.FailedReqs += results[i].failed
		sum.MismatchedResps += results[i].mismatched
		sum.Retried429 += results[i].retried
		all = append(all, results[i].latencies...)
	}
	sum.DurationSecs = elapsed.Seconds()
	sum.Queries = int(queries.Load())
	sum.Fault413 = int(fault413.Load())
	sum.Fault400 = int(fault400.Load())
	sum.Fault500 = int(fault500.Load())
	sum.Fault503 = int(fault503.Load())
	sum.Shed429 = int(shed429.Load())
	sum.LorisConns = int(lorisConns.Load())
	sum.FaultUnexpected = int(unexpected.Load())
	if died.Load() {
		sum.Restarts = 1
	}
	sum.QPS = float64(sum.Requests) / elapsed.Seconds()
	slices.Sort(all)
	if len(all) > 0 {
		sum.P50Micros = float64(all[len(all)/2]) / float64(time.Microsecond)
		sum.P99Micros = float64(all[len(all)*99/100]) / float64(time.Microsecond)
	}

	// --- Reconcile /metrics against the harness's own accounting. All
	// load has stopped; every counter the server kept must now equal
	// what the clients saw — any drift means a response was double- or
	// never-counted somewhere in the middleware stack.
	sum.MetricsDiff = reconcileMetrics(client, base, statusCount, map[string]int{
		"c2_queries_total":          sum.Queries,
		"c2_panics_total":           sum.Fault500,
		"c2_shed_total":             sum.Shed429,
		"c2_deadline_expired_total": sum.Fault503,
		"c2_body_too_large_total":   sum.Fault413,
	})
	sum.MetricsReconciled = sum.MetricsDiff == ""

	e.printf("  %d well-formed requests (%d queries) in %v: %.0f req/s, p50 %.0f µs, p99 %.0f µs\n",
		sum.Requests, sum.Queries, elapsed.Round(time.Millisecond), sum.QPS, sum.P50Micros, sum.P99Micros)
	e.printf("  failed %d, mismatched %d (both must be 0); %d retried through shedding\n",
		sum.FailedReqs, sum.MismatchedResps, sum.Retried429)
	e.printf("  faults: 413×%d 400×%d 500×%d 503×%d 429×%d loris×%d unexpected×%d\n",
		sum.Fault413, sum.Fault400, sum.Fault500, sum.Fault503, sum.Shed429, sum.LorisConns, sum.FaultUnexpected)
	e.printf("  reloads: %d hot swaps, %d corrupt (kept serving: %v, recovered: %v); restarts %d\n",
		sum.HotSwaps, sum.CorruptReloads, sum.CorruptKeptServing, sum.GoodReloadAfterCorrupt, sum.Restarts)
	if sum.MetricsReconciled {
		e.printf("  /metrics reconciled exactly against harness accounting\n")
	} else {
		e.printf("  /metrics FAILED to reconcile: %s\n", sum.MetricsDiff)
	}
	return sum, nil
}

// runCorrupt damages the snapshot on disk, asks the daemon to reload it
// (must refuse with 503/"corrupt" and keep serving the old epoch,
// bit-for-bit), then restores the good bytes and reloads again (must
// succeed and advance the epoch) — the operator runbook, mid-load.
//
// The damage is done by atomic replacement (temp + rename), never by
// writing the path in place: the serving epoch may be a MAP_SHARED
// view of the file's inode, so in-place truncation would SIGBUS the
// daemon mid-query and in-place byte edits would silently corrupt live
// answers. Rename swaps the directory entry and leaves the mapped
// inode untouched — the same contract persist.WriteFile gives every
// legitimate snapshot writer.
func runCorrupt(sum *SoakSummary, client *http.Client, base string, srv *server.Server,
	snap string, good []byte, expected [][]int32, nRec int, countStatus func(int),
	queries, unexpected *atomic.Int64) {
	epochBefore := srv.Epoch()
	if err := replaceFile(snap, good[:len(good)/2]); err != nil {
		unexpected.Add(1)
		return
	}
	resp, err := client.Post(base+"/admin/reload", "application/json", nil)
	if err != nil {
		unexpected.Add(1)
		return
	}
	drain(resp)
	countStatus(resp.StatusCode)
	if resp.StatusCode != http.StatusServiceUnavailable {
		unexpected.Add(1)
		return
	}
	sum.CorruptReloads++

	// The old epoch must still answer, identically.
	kept := srv.Epoch() == epochBefore
	resp, err = client.Get(fmt.Sprintf("%s/v1/recommend?user=0&n=%d", base, nRec))
	if err != nil {
		unexpected.Add(1)
		return
	}
	countStatus(resp.StatusCode)
	var rec struct {
		Items []int32 `json:"items"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&rec)
	resp.Body.Close()
	if resp.StatusCode == 200 {
		queries.Add(1)
	}
	sum.CorruptKeptServing = kept && decErr == nil && resp.StatusCode == 200 &&
		slices.Equal(rec.Items, expected[0])

	// Restore and reload: the runbook's recovery step.
	if err := replaceFile(snap, good); err != nil {
		unexpected.Add(1)
		return
	}
	resp, err = client.Post(base+"/admin/reload", "application/json", nil)
	if err != nil {
		unexpected.Add(1)
		return
	}
	drain(resp)
	countStatus(resp.StatusCode)
	if resp.StatusCode == http.StatusOK && srv.Epoch() == epochBefore+1 {
		sum.GoodReloadAfterCorrupt = true
		sum.HotSwaps++
	} else {
		unexpected.Add(1)
	}
}

// reconcileMetrics scrapes /metrics and compares the server's counters
// against the harness's accounting: the full c2_responses_total{code}
// map must match statusCount exactly in both directions, and each named
// counter must equal its expected value. Returns "" on success, else a
// semicolon-joined list of mismatches.
func reconcileMetrics(client *http.Client, base string, statusCount map[string]int, want map[string]int) string {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return "scrape failed: " + err.Error()
	}
	defer resp.Body.Close()
	metrics := map[string]float64{}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &v); err == nil {
			metrics[line[:sp]] = v
		}
	}

	var diffs []string
	for code, n := range statusCount {
		key := fmt.Sprintf("c2_responses_total{code=%q}", code)
		if int(metrics[key]) != n {
			diffs = append(diffs, fmt.Sprintf("%s=%d want %d", key, int(metrics[key]), n))
		}
	}
	for key, v := range metrics {
		if !strings.HasPrefix(key, "c2_responses_total{") {
			continue
		}
		code := strings.TrimSuffix(strings.TrimPrefix(key, `c2_responses_total{code="`), `"}`)
		if _, ok := statusCount[code]; !ok && v != 0 {
			diffs = append(diffs, fmt.Sprintf("%s=%d unseen by harness", key, int(v)))
		}
	}
	for key, n := range want {
		if int(metrics[key]) != n {
			diffs = append(diffs, fmt.Sprintf("%s=%d want %d", key, int(metrics[key]), n))
		}
	}
	slices.Sort(diffs)
	return strings.Join(diffs, "; ")
}

// replaceFile atomically replaces path's directory entry with the given
// bytes via a same-directory temp file and rename, leaving the old
// inode — possibly still memory-mapped by a serving epoch — untouched.
func replaceFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".soak-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// drain empties and closes a response body so its connection can be
// reused by the shared transport.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
