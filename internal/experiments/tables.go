package experiments

import (
	"fmt"
	"time"

	"c2knn/internal/core"
	"c2knn/internal/dataset"
	"c2knn/internal/hyrec"
	"c2knn/internal/knng"
	"c2knn/internal/lsh"
	"c2knn/internal/nndescent"
	"c2knn/internal/recommend"
	"c2knn/internal/similarity"
)

// AlgoRow is one line of a Table II-style comparison.
type AlgoRow struct {
	Dataset string
	Algo    string
	Time    time.Duration
	Quality float64
	Sims    int64 // similarity computations performed
}

// Table1 regenerates the dataset-description table: it generates the six
// calibrated datasets and reports their statistics next to the paper's
// targets.
func (e *Env) Table1() ([]dataset.Stats, error) {
	e.setDefaults()
	e.printf("Table I: datasets (scale %.3g)\n", e.Scale)
	var out []dataset.Stats
	for _, name := range AllDatasets() {
		p, err := e.Prepare(name)
		if err != nil {
			return nil, err
		}
		st := p.Data.ComputeStats()
		out = append(out, st)
		e.printf("  %s\n", st)
	}
	return out, nil
}

// runAlgo executes one named algorithm on a prepared dataset using the
// given provider and returns its row (quality filled in by the caller).
func (e *Env) runAlgo(p *Prepared, algo string, prov similarity.Provider) (*knng.Graph, AlgoRow) {
	counting := similarity.NewCounting(prov)
	start := time.Now()
	var g *knng.Graph
	switch algo {
	case "Hyrec":
		g, _ = hyrec.Build(p.Data.NumUsers(), counting, hyrec.Options{
			K: e.K, Workers: e.Workers, Seed: e.Seed,
		})
	case "NNDescent":
		g, _ = nndescent.Build(p.Data.NumUsers(), counting, nndescent.Options{
			K: e.K, Workers: e.Workers, Seed: e.Seed,
		})
	case "LSH":
		g, _ = lsh.Build(p.Data, counting, lsh.Options{
			K: e.K, Workers: e.Workers, Seed: e.Seed,
		})
	case "C2":
		b, t, n := e.C2Params(p.Cfg.Name)
		g, _ = core.Build(p.Data, counting, core.Options{
			K: e.K, B: b, T: t, MaxClusterSize: n,
			Workers: e.Workers, Seed: e.Seed,
		})
	default:
		panic("experiments: unknown algorithm " + algo)
	}
	elapsed := time.Since(start)
	return g, AlgoRow{Dataset: p.Cfg.Name, Algo: algo, Time: elapsed, Sims: counting.Count()}
}

// Table2 reproduces the paper's headline comparison (Table II, Figs. 4
// and 5): computation time and KNN quality of Hyrec, NNDescent, LSH and
// C² on the given datasets (all six when names is nil). Every algorithm
// uses GoldFinger estimates, as in the paper; quality is measured against
// the exact raw-Jaccard graph.
func (e *Env) Table2(names []string) ([]AlgoRow, error) {
	e.setDefaults()
	if names == nil {
		names = AllDatasets()
	}
	e.printf("Table II: computation time and KNN quality (scale %.3g, k=%d, GoldFinger %d bits)\n",
		e.Scale, e.K, e.GFBits)
	var rows []AlgoRow
	for _, name := range names {
		p, err := e.Prepare(name)
		if err != nil {
			return nil, err
		}
		exact := p.Exact()
		var best AlgoRow
		var dsRows []AlgoRow
		for _, algo := range []string{"Hyrec", "NNDescent", "LSH", "C2"} {
			g, row := e.runAlgo(p, algo, p.GF)
			row.Quality = knng.Quality(g, exact, p.Raw)
			dsRows = append(dsRows, row)
			if algo != "C2" && (best.Algo == "" || row.Time < best.Time) {
				best = row
			}
		}
		for _, row := range dsRows {
			marker := ""
			if row.Algo == best.Algo {
				marker = " (best baseline)"
			}
			if row.Algo == "C2" {
				gain := 100 * (1 - row.Time.Seconds()/best.Time.Seconds())
				marker = fmt.Sprintf("  gain=%.2f%%  speedup=x%.2f  Δq=%+.2f",
					gain, best.Time.Seconds()/row.Time.Seconds(), row.Quality-best.Quality)
			}
			e.printf("  %-6s %-10s time=%-12v quality=%.3f sims=%-10d%s\n",
				row.Dataset, row.Algo, row.Time.Round(time.Millisecond), row.Quality, row.Sims, marker)
		}
		rows = append(rows, dsRows...)
	}
	return rows, nil
}

// RecRow is one line of Table III: recommendation recall with the exact
// brute-force graph vs the C² graph.
type RecRow struct {
	Dataset    string
	BruteForce float64
	C2         float64
	Delta      float64
}

// Table3 reproduces the recommendation experiment (§V-B, Table III):
// 30 items are recommended to every user with user-based collaborative
// filtering on (a) the exact graph and (b) the C² graph, under k-fold
// cross-validation; the reported recalls are fold averages.
func (e *Env) Table3(names []string) ([]RecRow, error) {
	e.setDefaults()
	if names == nil {
		names = AllDatasets()
	}
	const nRec = 30
	e.printf("Table III: recommendation recall@%d (%d-fold CV, scale %.3g)\n", nRec, e.Folds, e.Scale)
	var rows []RecRow
	for _, name := range names {
		p, err := e.Prepare(name)
		if err != nil {
			return nil, err
		}
		folds := recommend.Split(p.Data, e.Folds, e.Seed)
		var bfSum, c2Sum float64
		for _, f := range folds {
			raw := similarity.NewJaccard(f.Train)
			gf, err := trainGoldFinger(e, f.Train)
			if err != nil {
				return nil, err
			}
			exact := bruteForceGraph(e, f.Train, raw)
			b, t, n := e.C2Params(name)
			g, _ := core.Build(f.Train, gf, core.Options{
				K: e.K, B: b, T: t, MaxClusterSize: n, Workers: e.Workers, Seed: e.Seed,
			})
			bfSum += recommend.EvalRecall(f, exact, nRec, e.Workers)
			c2Sum += recommend.EvalRecall(f, g, nRec, e.Workers)
		}
		row := RecRow{
			Dataset:    name,
			BruteForce: bfSum / float64(len(folds)),
			C2:         c2Sum / float64(len(folds)),
		}
		row.Delta = row.C2 - row.BruteForce
		rows = append(rows, row)
		e.printf("  %-6s bruteforce=%.3f C2=%.3f Δ=%+.3f\n", row.Dataset, row.BruteForce, row.C2, row.Delta)
	}
	return rows, nil
}

// Table4 reproduces the FastRandomHash ablation (§V-C, Table IV): C² with
// FRH clustering vs C² with MinHash clustering on ml10M and AM. Gains are
// relative to the best baseline of Table II, so the method recomputes the
// baselines for the two datasets.
func (e *Env) Table4() ([]AlgoRow, error) {
	return e.variantTable("Table IV: FastRandomHash vs MinHash inside C2",
		[]variant{
			{"C2/MinHash", func(p *Prepared) (*knng.Graph, int64) {
				counting := similarity.NewCounting(p.GF)
				g, _ := core.Build(p.Data, counting, core.Options{
					K: e.K, T: 8, UseMinHash: true, Workers: e.Workers, Seed: e.Seed,
				})
				return g, counting.Count()
			}},
			{"C2/FRH", func(p *Prepared) (*knng.Graph, int64) {
				counting := similarity.NewCounting(p.GF)
				b, t, n := e.C2Params(p.Cfg.Name)
				g, _ := core.Build(p.Data, counting, core.Options{
					K: e.K, B: b, T: t, MaxClusterSize: n, Workers: e.Workers, Seed: e.Seed,
				})
				return g, counting.Count()
			}},
		})
}

// Table5 reproduces the GoldFinger ablation (§V-D, Table V): C² on raw
// Jaccard vs C² on GoldFinger estimates, on ml10M and AM.
func (e *Env) Table5() ([]AlgoRow, error) {
	return e.variantTable("Table V: raw data vs GoldFinger inside C2",
		[]variant{
			{"C2/raw", func(p *Prepared) (*knng.Graph, int64) {
				counting := similarity.NewCounting(p.Raw)
				b, t, n := e.C2Params(p.Cfg.Name)
				g, _ := core.Build(p.Data, counting, core.Options{
					K: e.K, B: b, T: t, MaxClusterSize: n, Workers: e.Workers, Seed: e.Seed,
				})
				return g, counting.Count()
			}},
			{"C2/GoldFinger", func(p *Prepared) (*knng.Graph, int64) {
				counting := similarity.NewCounting(p.GF)
				b, t, n := e.C2Params(p.Cfg.Name)
				g, _ := core.Build(p.Data, counting, core.Options{
					K: e.K, B: b, T: t, MaxClusterSize: n, Workers: e.Workers, Seed: e.Seed,
				})
				return g, counting.Count()
			}},
		})
}

// variant names one C² configuration of an ablation table.
type variant struct {
	name string
	run  func(p *Prepared) (*knng.Graph, int64)
}

func (e *Env) variantTable(title string, variants []variant) ([]AlgoRow, error) {
	e.setDefaults()
	e.printf("%s (scale %.3g)\n", title, e.Scale)
	var rows []AlgoRow
	for _, name := range SensitivityDatasets() {
		p, err := e.Prepare(name)
		if err != nil {
			return nil, err
		}
		exact := p.Exact()
		for _, v := range variants {
			start := time.Now()
			g, sims := v.run(p)
			row := AlgoRow{
				Dataset: name, Algo: v.name,
				Time: time.Since(start), Sims: sims,
				Quality: knng.Quality(g, exact, p.Raw),
			}
			rows = append(rows, row)
			e.printf("  %-6s %-14s time=%-12v quality=%.3f sims=%d\n",
				row.Dataset, row.Algo, row.Time.Round(time.Millisecond), row.Quality, row.Sims)
		}
	}
	return rows, nil
}

// trainGoldFinger builds fingerprints for a fold's training dataset.
func trainGoldFinger(e *Env, d *dataset.Dataset) (similarity.Provider, error) {
	gf, err := newGoldFinger(d, e.GFBits, uint32(e.Seed)+0x60fd)
	if err != nil {
		return nil, err
	}
	return gf, nil
}
