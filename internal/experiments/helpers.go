package experiments

import (
	"c2knn/internal/bruteforce"
	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/knng"
	"c2knn/internal/similarity"
)

// bruteForceGraph builds the exact graph of an arbitrary dataset (used by
// the cross-validation folds, which cannot reuse the Prepared cache since
// every fold has different training profiles).
func bruteForceGraph(e *Env, d *dataset.Dataset, p similarity.Provider) *knng.Graph {
	return bruteforce.Build(d.NumUsers(), e.K, p, e.Workers)
}

// newGoldFinger isolates the goldfinger dependency so tables.go reads at
// the level of the experiment.
func newGoldFinger(d *dataset.Dataset, bits int, seed uint32) (*goldfinger.Set, error) {
	return goldfinger.New(d, bits, seed)
}
