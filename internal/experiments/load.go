package experiments

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"

	"c2knn/internal/core"
	"c2knn/internal/persist"
	"c2knn/internal/recommend"
)

// LoadSummary condenses the cold-start experiment into the flat record
// CI tracks (benchmarks/BENCH_load.json): how fast a serving replica
// goes from a snapshot file on a warm page cache to its first answered
// recommendation, and how much heap each replica then holds, for the
// mmap (zero-copy view) load path versus the copy-decode path.
type LoadSummary struct {
	Dataset       string `json:"dataset"`
	Users         int    `json:"users"`
	Edges         int    `json:"edges"`
	SnapshotBytes int64  `json:"snapshot_bytes"`

	// Mapped reports whether the mmap path is available here (unix,
	// little-endian). When false only the copy numbers are real and the
	// bench-compare gate skips the mmap clauses.
	Mapped bool `json:"mapped"`

	// Cold-start-to-first-query: open the snapshot, materialize the
	// index artifacts, build scoring scratch, answer one recommendation.
	// Page cache warm (the restart/new-replica case the mmap path
	// targets), best-of interleaved passes.
	MMapFirstQueryMS float64 `json:"mmap_first_query_ms"`
	CopyFirstQueryMS float64 `json:"copy_first_query_ms"`
	LoadSpeedup      float64 `json:"load_speedup"` // copy / mmap

	// Heap held per loaded replica (MemStats.HeapAlloc delta after GC):
	// the copy path owns every decoded array; the mmap path owns slice
	// headers and scratch while the slabs stay in the (shared) page
	// cache. This is the RSS-per-replica story — N mapped replicas on a
	// host share one physical copy of the slabs.
	MMapHeapBytes int64 `json:"mmap_heap_bytes"`
	CopyHeapBytes int64 `json:"copy_heap_bytes"`

	// Identical is the equivalence verdict: both paths loaded the same
	// file into bitwise-identical structures (raw float bits compared)
	// answering identical queries. Trivially true when the mmap path is
	// unavailable (nothing to diverge).
	Identical bool `json:"identical"`
}

// Load measures the snapshot cold-start paths on the ml1M preset: one
// C² graph is built and persisted once, then repeatedly loaded through
// persist.LoadFileMode under both modes, timing load-to-first-query and
// measuring the per-replica heap, with a full bitwise equivalence check
// between the two decoded snapshots.
func (e *Env) Load() (*LoadSummary, error) {
	e.setDefaults()
	const name = "ml1M"
	const nRec = 30
	e.printf("Load: snapshot cold start, mmap vs copy, on %s (scale %.3g)\n", name, e.Scale)
	p, err := e.Prepare(name)
	if err != nil {
		return nil, err
	}
	b, t, n := e.C2Params(name)
	g, _ := core.Build(p.Data, p.GF, core.Options{
		K: e.K, B: b, T: t, MaxClusterSize: n, Workers: e.Workers, Seed: e.Seed,
	})
	frozen := g.Freeze()

	dir, err := os.MkdirTemp("", "c2load-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "index.c2")
	if err := persist.WriteFile(path, &persist.Snapshot{
		Graph: frozen, Train: p.Data, GoldFinger: p.GF,
	}); err != nil {
		return nil, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	sum := &LoadSummary{
		Dataset:       name,
		Users:         frozen.NumUsers(),
		Edges:         frozen.NumEdges(),
		SnapshotBytes: fi.Size(),
		Identical:     true,
	}
	// Warm the page cache: the scenario is a restart or a new replica on
	// a host that already serves the snapshot, not first contact with
	// cold storage.
	if _, err := os.ReadFile(path); err != nil {
		return nil, err
	}

	// Equivalence: both paths must decode the same file into bitwise-
	// identical structures and answer identical queries.
	mapped, err := persist.LoadFileMode(path, persist.LoadMMap)
	switch {
	case err == nil:
		sum.Mapped = true
		copied, err := persist.LoadFileMode(path, persist.LoadCopy)
		if err != nil {
			mapped.Close()
			return nil, err
		}
		if err := snapshotsEqual(mapped, copied); err != nil {
			sum.Identical = false
			e.printf("  EQUIVALENCE FAILURE: %v\n", err)
		} else if err := queriesEqual(mapped, copied, nRec); err != nil {
			sum.Identical = false
			e.printf("  EQUIVALENCE FAILURE: %v\n", err)
		}
		mapped.Close()
	case errors.Is(err, persist.ErrMapUnavailable):
		e.printf("  mmap path unavailable here (%v); copy numbers only\n", err)
	default:
		return nil, err
	}

	// Cold-start-to-first-query: everything a fresh replica pays —
	// open+materialize the snapshot, allocate scoring scratch, answer
	// one recommendation — then tear down, so every pass is a true cold
	// start against the warm page cache.
	var loadErr error
	var sink int
	firstQuery := func(mode persist.LoadMode) func() {
		return func() {
			s, err := persist.LoadFileMode(path, mode)
			if err != nil {
				loadErr = err
				return
			}
			sc := recommend.NewScorer(s.Train.NumItems)
			sink += len(sc.Recommend(s.Train, s.Graph, 0, nRec, nil))
			s.Close()
		}
	}
	if sum.Mapped {
		sum.MMapFirstQueryMS, sum.CopyFirstQueryMS = solvePair(
			firstQuery(persist.LoadMMap), firstQuery(persist.LoadCopy))
		if sum.MMapFirstQueryMS > 0 {
			sum.LoadSpeedup = sum.CopyFirstQueryMS / sum.MMapFirstQueryMS
		}
	} else {
		sum.CopyFirstQueryMS = solveRounds(firstQuery(persist.LoadCopy))
	}
	if loadErr != nil {
		return nil, loadErr
	}
	_ = sink

	if sum.Mapped {
		if sum.MMapHeapBytes, err = heapHeldByLoad(path, persist.LoadMMap); err != nil {
			return nil, err
		}
	}
	if sum.CopyHeapBytes, err = heapHeldByLoad(path, persist.LoadCopy); err != nil {
		return nil, err
	}

	if sum.Mapped {
		e.printf("  first query: mmap %.2f ms, copy %.2f ms, speedup %.1fx (snapshot %d bytes)\n",
			sum.MMapFirstQueryMS, sum.CopyFirstQueryMS, sum.LoadSpeedup, sum.SnapshotBytes)
		e.printf("  heap per replica: mmap %d bytes, copy %d bytes (identical: %v)\n",
			sum.MMapHeapBytes, sum.CopyHeapBytes, sum.Identical)
	} else {
		e.printf("  first query: copy %.2f ms (snapshot %d bytes, heap %d bytes)\n",
			sum.CopyFirstQueryMS, sum.SnapshotBytes, sum.CopyHeapBytes)
	}
	return sum, nil
}

// heapHeldByLoad returns how much heap a loaded snapshot holds at
// steady state: HeapAlloc delta across the load, after a GC on each
// side so transient decode garbage does not count.
func heapHeldByLoad(path string, mode persist.LoadMode) (int64, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	s, err := persist.LoadFileMode(path, mode)
	if err != nil {
		return 0, err
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(s)
	held := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	s.Close()
	if held < 0 {
		held = 0
	}
	return held, nil
}

// snapshotsEqual compares two decoded snapshots bitwise — similarity
// floats by raw IEEE-754 bits, so a mmap view and a decoded copy must
// agree to the bit, not merely approximately.
func snapshotsEqual(a, b *persist.Snapshot) error {
	ga, gb := a.Graph, b.Graph
	if ga.K != gb.K || ga.NumUsers() != gb.NumUsers() || ga.NumEdges() != gb.NumEdges() {
		return fmt.Errorf("graph shapes differ: k=%d/%d users=%d/%d edges=%d/%d",
			ga.K, gb.K, ga.NumUsers(), gb.NumUsers(), ga.NumEdges(), gb.NumEdges())
	}
	for i := range ga.Offsets {
		if ga.Offsets[i] != gb.Offsets[i] {
			return fmt.Errorf("graph offsets differ at %d", i)
		}
	}
	for i := range ga.IDs {
		if ga.IDs[i] != gb.IDs[i] {
			return fmt.Errorf("graph ids differ at edge %d", i)
		}
		if math.Float32bits(ga.Sims[i]) != math.Float32bits(gb.Sims[i]) {
			return fmt.Errorf("graph sims differ at edge %d (bits %08x vs %08x)",
				i, math.Float32bits(ga.Sims[i]), math.Float32bits(gb.Sims[i]))
		}
	}
	da, db := a.Train, b.Train
	if da.Name != db.Name || da.NumItems != db.NumItems || da.NumUsers() != db.NumUsers() {
		return fmt.Errorf("dataset headers differ")
	}
	for u := range da.Profiles {
		pa, pb := da.Profiles[u], db.Profiles[u]
		if len(pa) != len(pb) {
			return fmt.Errorf("profile %d lengths differ", u)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				return fmt.Errorf("profile %d differs at %d", u, i)
			}
		}
	}
	fa, fb := a.GoldFinger, b.GoldFinger
	if (fa == nil) != (fb == nil) {
		return fmt.Errorf("one snapshot carries fingerprints, the other does not")
	}
	if fa != nil {
		if fa.Bits() != fb.Bits() || fa.NumUsers() != fb.NumUsers() {
			return fmt.Errorf("fingerprint shapes differ")
		}
		sa, sb := fa.Signatures(), fb.Signatures()
		for i := range sa {
			if sa[i] != sb[i] {
				return fmt.Errorf("fingerprint words differ at %d", i)
			}
		}
		for u := 0; u < fa.NumUsers(); u++ {
			if fa.Ones(int32(u)) != fb.Ones(int32(u)) {
				return fmt.Errorf("fingerprint popcounts differ at user %d", u)
			}
		}
	}
	return nil
}

// queriesEqual answers the same recommendation queries through both
// snapshots and demands identical results — the end-to-end check that
// the serving path, not just the storage, agrees across load paths.
func queriesEqual(a, b *persist.Snapshot, nRec int) error {
	sca := recommend.NewScorer(a.Train.NumItems)
	scb := recommend.NewScorer(b.Train.NumItems)
	users := a.Graph.NumUsers()
	step := users/100 + 1
	for u := 0; u < users; u += step {
		ra := sca.Recommend(a.Train, a.Graph, int32(u), nRec, nil)
		rb := scb.Recommend(b.Train, b.Graph, int32(u), nRec, nil)
		if len(ra) != len(rb) {
			return fmt.Errorf("recommendation counts differ for user %d", u)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				return fmt.Errorf("recommendations differ for user %d at rank %d", u, i)
			}
		}
	}
	return nil
}
