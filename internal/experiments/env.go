// Package experiments contains one runner per table and figure of the
// paper's evaluation (§IV–§VI). Each runner generates (or reuses) the
// calibrated synthetic datasets, executes the algorithms under the
// paper's parameters, and returns structured rows mirroring what the
// paper reports — computation time, KNN quality, recall, cluster sizes —
// while also rendering a paper-style text table to Env.Out. The
// cmd/c2bench binary and the repository's testing.B benchmarks are thin
// wrappers over this package.
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"c2knn/internal/bruteforce"
	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/knng"
	"c2knn/internal/similarity"
	"c2knn/internal/synth"
)

// Env carries the execution parameters shared by all runners. The zero
// value is usable: defaults are applied on first use.
type Env struct {
	// Scale multiplies the paper's dataset sizes (1 = paper scale).
	// Default 0.05, which keeps the full suite laptop-sized.
	Scale float64
	// Workers sizes every worker pool (default GOMAXPROCS).
	Workers int
	// K is the neighborhood size (default 30, §IV-C).
	K int
	// GFBits is the GoldFinger width (default 1024, §IV-C).
	GFBits int
	// Folds is the cross-validation fold count for Table III
	// (default 5, §IV-D).
	Folds int
	// Seed drives every random component.
	Seed int64
	// MinUsers floors per-dataset populations (default 4000): below a
	// few thousand users every algorithm is candidate-starved and the
	// comparison stops being informative. Tests lower it.
	MinUsers int
	// Out receives the rendered tables; nil discards them.
	Out io.Writer

	mu    sync.Mutex
	cache map[string]*Prepared
}

func (e *Env) setDefaults() {
	if e.Scale == 0 {
		e.Scale = 0.05
	}
	if e.Workers == 0 {
		e.Workers = runtime.GOMAXPROCS(0)
	}
	if e.K == 0 {
		e.K = 30
	}
	if e.GFBits == 0 {
		e.GFBits = goldfinger.DefaultBits
	}
	if e.Folds == 0 {
		e.Folds = 5
	}
	if e.Seed == 0 {
		e.Seed = 42
	}
	if e.MinUsers == 0 {
		e.MinUsers = minBenchUsers
	}
	if e.Out == nil {
		e.Out = io.Discard
	}
	if e.cache == nil {
		e.cache = make(map[string]*Prepared)
	}
}

// printf writes a formatted line to the report writer.
func (e *Env) printf(format string, args ...any) {
	fmt.Fprintf(e.Out, format, args...)
}

// Prepared bundles a generated dataset with the similarity providers and
// the exact reference graph shared across runs.
type Prepared struct {
	Cfg  synth.Config
	Data *dataset.Dataset
	Raw  *similarity.Jaccard
	GF   *goldfinger.Set

	exactOnce sync.Once
	exact     *knng.Graph
	exactTime time.Duration
	env       *Env
}

// Prepare generates (once per Env) the named preset dataset at the Env's
// scale with its raw-Jaccard and GoldFinger providers.
func (e *Env) Prepare(name string) (*Prepared, error) {
	e.setDefaults()
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.cache[name]; ok {
		return p, nil
	}
	cfg, ok := synth.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown dataset preset %q", name)
	}
	cfg = cfg.Scale(e.EffScale(name))
	cfg.Seed += e.Seed
	d := synth.Generate(cfg)
	gf, err := goldfinger.New(d, e.GFBits, uint32(e.Seed)+0x60fd)
	if err != nil {
		return nil, err
	}
	p := &Prepared{Cfg: cfg, Data: d, Raw: similarity.NewJaccard(d), GF: gf, env: e}
	e.cache[name] = p
	return p, nil
}

// MustPrepare is Prepare, panicking on error; for benchmarks.
func (e *Env) MustPrepare(name string) *Prepared {
	p, err := e.Prepare(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Exact returns the exact KNN graph of the dataset under raw Jaccard,
// computing it on first use (brute force) and caching it. This is the
// quality denominator of Eq. (2) and the recommendation reference of
// Table III.
func (p *Prepared) Exact() *knng.Graph {
	p.exactOnce.Do(func() {
		start := time.Now()
		p.exact = bruteforce.Build(p.Data.NumUsers(), p.env.K, p.Raw, p.env.Workers)
		p.exactTime = time.Since(start)
	})
	return p.exact
}

// ExactTime returns how long the exact graph took to build (zero if it
// has not been requested).
func (p *Prepared) ExactTime() time.Duration { return p.exactTime }

// C2Params returns the per-dataset C² parameters of §IV-C: t=8 except
// DBLP and GW (t=15); N=2000 except ml20M (N=4000); b=4096. N is scaled
// with the dataset so the splitting regime matches the paper's at any
// scale; b is kept at the paper's value because quality improves with b
// regardless of population (Fig. 6) — see EXPERIMENTS.md for the
// scale-artifact discussion.
func (e *Env) C2Params(name string) (b, t, n int) {
	e.setDefaults()
	b = 4096
	t = 8
	n = 2000
	switch name {
	case "DBLP", "GW":
		t = 15
	case "ml20M":
		n = 4000
	}
	return b, t, scaleN(n, e.EffScale(name))
}

// minBenchUsers is the default MinUsers floor (see Env.MinUsers).
const minBenchUsers = 4000

// EffScale returns the effective scale factor used for the named preset:
// Scale, raised so the generated population reaches MinUsers (capped
// at 1). Unknown names fall back to Scale.
func (e *Env) EffScale(name string) float64 {
	e.setDefaults()
	if e.Scale >= 1 {
		return e.Scale
	}
	cfg, ok := synth.ByName(name)
	if !ok {
		return e.Scale
	}
	floor := float64(e.MinUsers) / float64(cfg.Users)
	if floor > 1 {
		floor = 1
	}
	if e.Scale < floor {
		return floor
	}
	return e.Scale
}

// ScaledN scales a paper-sized cluster threshold by the Env's global
// scale, with a floor that keeps clusters meaningful at tiny scales. The
// sensitivity figures (ml10M, AM) use this; Table II uses the
// per-dataset C2Params.
func (e *Env) ScaledN(n int) int {
	e.setDefaults()
	return scaleN(n, e.Scale)
}

func scaleN(n int, scale float64) int {
	if scale >= 1 {
		return n
	}
	s := int(math.Round(float64(n) * scale))
	if s < 64 {
		s = 64
	}
	return s
}

// ScaledB scales a paper-sized cluster count to the Env's dataset scale:
// the quantity that drives C²'s behaviour is users-per-cluster, so b must
// shrink with the user population to stay in the paper's regime.
func (e *Env) ScaledB(b int) int {
	e.setDefaults()
	if e.Scale >= 1 {
		return b
	}
	s := int(math.Round(float64(b) * e.Scale))
	if s < 32 {
		s = 32
	}
	return s
}

// AllDatasets lists the six Table I presets in the paper's order.
func AllDatasets() []string {
	return []string{"ml1M", "ml10M", "ml20M", "AM", "DBLP", "GW"}
}

// SensitivityDatasets lists the two presets used by the sensitivity
// analysis of §VI (dense vs sparse).
func SensitivityDatasets() []string { return []string{"ml10M", "AM"} }
