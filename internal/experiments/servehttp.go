package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"c2knn"
	"c2knn/internal/core"
	"c2knn/internal/server"
)

// HTTPSummary condenses the HTTP serving-daemon load test into the flat
// record CI tracks (benchmarks/BENCH_http.json). The correctness fields
// are hard gates in scripts/bench-compare.sh: FailedRequests and
// MismatchedResponses must be zero even though a snapshot hot-swap runs
// mid-load, and CacheHitAllocsPerQuery must be zero (the cache-hit fast
// path may not produce garbage). The throughput/latency fields are
// recorded for tracking, not gated — shared runners are too noisy.
type HTTPSummary struct {
	Dataset string `json:"dataset"`
	Users   int    `json:"users"`
	Workers int    `json:"workers"` // server worker-pool size

	Clients         int `json:"clients"`
	Requests        int `json:"requests"`  // HTTP requests issued
	Queries         int `json:"queries"`   // user-queries answered (batches count each user)
	HotSwaps        int `json:"hot_swaps"` // snapshot reloads completed mid-load
	FailedReqs      int `json:"failed_requests"`
	MismatchedResps int `json:"mismatched_responses"`

	QPS       float64 `json:"qps"` // client-observed requests/sec
	QueriesPS float64 `json:"queries_per_sec"`
	P50Micros float64 `json:"p50_us"` // client-observed
	P99Micros float64 `json:"p99_us"`

	CacheHitRate           float64 `json:"cache_hit_rate"` // server-reported
	CacheHitAllocsPerQuery float64 `json:"cache_hit_allocs_per_query"`
}

// ServeHTTP is the serving-daemon load experiment: it builds a C² index
// over the ml1M preset, snapshots it, serves it through
// internal/server on a real TCP listener, and fires 100 concurrent
// clients at it — a mix of single GETs and batched POSTs, every
// response checked bit-for-bit against the serial Index.Recommend
// reference — while the snapshot is hot-swapped mid-load. It reports
// client-observed qps/p50/p99, the server's cache hit rate, and the
// allocation count of the cache-hit fast path.
func (e *Env) ServeHTTP() (*HTTPSummary, error) {
	e.setDefaults()
	const name = "ml1M"
	const nRec = 30
	const clients = 100
	e.printf("ServeHTTP: daemon load test on %s (scale %.3g, %d-worker pool, %d clients)\n",
		name, e.Scale, e.Workers, clients)
	p, err := e.Prepare(name)
	if err != nil {
		return nil, err
	}
	b, t, n := e.C2Params(name)
	g, _ := core.Build(p.Data, p.GF, core.Options{
		K: e.K, B: b, T: t, MaxClusterSize: n, Workers: e.Workers, Seed: e.Seed,
	})
	ix, err := c2knn.NewIndex(g, p.Data, p.GF)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "c2http")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "index.c2")
	if err := ix.Save(snap); err != nil {
		return nil, err
	}

	srv, err := server.New(ix, server.Config{
		SnapshotPath:  snap,
		MaxConcurrent: e.Workers,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// Request plan: clients draw from a bounded hot set so the same
	// queries recur and the cache actually gets hit (real traffic is
	// Zipfian; a uniform sweep over every user would never repeat within
	// the test's horizon). Every fifth request is a batch of 8.
	const perClient = 12
	const batchEvery, batchSize = 5, 8
	users := p.Data.NumUsers()
	hotSet := users
	if hotSet > 100 {
		hotSet = 100
	}

	// Serial references for exactly the users the load will touch.
	expected := make([][]int32, hotSet)
	for u := 0; u < hotSet; u++ {
		expected[u] = ix.Recommend(int32(u), nRec)
	}

	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        2 * clients,
			MaxIdleConnsPerHost: 2 * clients,
		},
	}

	type clientResult struct {
		latencies  []time.Duration
		requests   int
		queries    int
		failed     int
		mismatched int
	}
	results := make([]clientResult, clients)
	var done atomic.Int64 // requests issued so far, for swap timing
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := &results[c]
			res.latencies = make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				// Stride by perClient so consecutive requests rotate over
				// the hot set (clients == hotSet is possible, which would
				// make a clients-stride degenerate to one user per client).
				u := (c*perClient + i) % hotSet
				t0 := time.Now()
				done.Add(1)
				if i%batchEvery == batchEvery-1 {
					// Batch starts are aligned so different clients issue
					// identical batches — batched cache keys repeat too.
					span := make([]int32, batchSize)
					for j := range span {
						span[j] = int32((u/batchSize*batchSize + j) % hotSet)
					}
					body, _ := json.Marshal(map[string]any{"users": span, "n": nRec})
					resp, err := client.Post(base+"/v1/recommend", "application/json", bytes.NewReader(body))
					if err != nil {
						res.failed++
						continue
					}
					var br struct {
						Results []struct {
							User  int32   `json:"user"`
							Items []int32 `json:"items"`
						} `json:"results"`
					}
					err = json.NewDecoder(resp.Body).Decode(&br)
					resp.Body.Close()
					res.latencies = append(res.latencies, time.Since(t0))
					res.requests++
					res.queries += batchSize
					if err != nil || resp.StatusCode != 200 || len(br.Results) != batchSize {
						res.failed++
						continue
					}
					for j, r := range br.Results {
						if !slices.Equal(r.Items, expected[span[j]]) {
							res.mismatched++
						}
					}
				} else {
					resp, err := client.Get(fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", base, u, nRec))
					if err != nil {
						res.failed++
						continue
					}
					var rec struct {
						Items []int32 `json:"items"`
					}
					err = json.NewDecoder(resp.Body).Decode(&rec)
					resp.Body.Close()
					res.latencies = append(res.latencies, time.Since(t0))
					res.requests++
					res.queries++
					if err != nil || resp.StatusCode != 200 {
						res.failed++
						continue
					}
					if !slices.Equal(rec.Items, expected[u]) {
						res.mismatched++
					}
				}
			}
		}(c)
	}

	// Mid-load hot swap: wait until roughly a third of the load is in
	// flight, then re-read the (identical) snapshot and swap it in.
	// Identity must hold across the swap because the content is
	// unchanged — any failure or mismatch below means the swap broke a
	// request in flight.
	total := int64(clients * perClient)
	for deadline := time.Now().Add(30 * time.Second); done.Load() < total/3 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	swaps := 0
	swapResp, err := http.Post(base+"/admin/reload", "application/json", nil)
	if err == nil {
		swapResp.Body.Close()
		if swapResp.StatusCode == http.StatusOK {
			swaps++
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := &HTTPSummary{
		Dataset: name, Users: users, Workers: e.Workers,
		Clients: clients, HotSwaps: swaps,
	}
	var all []time.Duration
	for i := range results {
		sum.Requests += results[i].requests
		sum.Queries += results[i].queries
		sum.FailedReqs += results[i].failed
		sum.MismatchedResps += results[i].mismatched
		all = append(all, results[i].latencies...)
	}
	sum.QPS = float64(sum.Requests) / elapsed.Seconds()
	sum.QueriesPS = float64(sum.Queries) / elapsed.Seconds()
	slices.Sort(all)
	if len(all) > 0 {
		sum.P50Micros = float64(all[len(all)/2]) / float64(time.Microsecond)
		sum.P99Micros = float64(all[len(all)*99/100]) / float64(time.Microsecond)
	}

	// Server-side cache hit rate, read the way an operator would.
	statsResp, err := http.Get(base + "/statsz")
	if err == nil {
		var st struct {
			CacheHitRate float64 `json:"cache_hit_rate"`
		}
		json.NewDecoder(statsResp.Body).Decode(&st)
		statsResp.Body.Close()
		sum.CacheHitRate = st.CacheHitRate
	}

	// Allocation count of the cache-hit fast path, measured on the idle
	// server (single goroutine, no competing traffic).
	sum.CacheHitAllocsPerQuery = srv.CacheHitAllocs(1, nRec, 20000)

	e.printf("  %d requests (%d queries) from %d clients in %v: %.0f req/s, %.0f q/s\n",
		sum.Requests, sum.Queries, clients, elapsed.Round(time.Millisecond), sum.QPS, sum.QueriesPS)
	e.printf("  latency p50 %.0f µs, p99 %.0f µs; cache hit rate %.2f; hit-path allocs %.4f\n",
		sum.P50Micros, sum.P99Micros, sum.CacheHitRate, sum.CacheHitAllocsPerQuery)
	e.printf("  hot swaps mid-load: %d; failed %d, mismatched %d (both must be 0)\n",
		sum.HotSwaps, sum.FailedReqs, sum.MismatchedResps)
	return sum, nil
}
