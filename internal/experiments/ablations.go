package experiments

import (
	"fmt"
	"time"

	"c2knn/internal/core"
	"c2knn/internal/knng"
	"c2knn/internal/similarity"
)

// AblationRow is one line of the design-choice ablation study: a C²
// variant with exactly one mechanism changed from the paper's defaults.
type AblationRow struct {
	Dataset string
	Variant string
	Time    time.Duration
	Quality float64
	Sims    int64
}

// Ablations exercises the design choices DESIGN.md calls out, on the
// dense sensitivity dataset (ml10M) where each mechanism matters most:
// recursive splitting on/off, largest-first vs FIFO scheduling, the
// hybrid local solver vs forced brute force / forced Hyrec, and a
// GoldFinger width sweep.
func (e *Env) Ablations() ([]AblationRow, error) {
	e.setDefaults()
	e.printf("Ablations: C2 design choices on ml10M (scale %.3g)\n", e.Scale)
	p, err := e.Prepare("ml10M")
	if err != nil {
		return nil, err
	}
	exact := p.Exact()
	b, t, n := e.C2Params("ml10M")
	base := core.Options{K: e.K, B: b, T: t, MaxClusterSize: n, Workers: e.Workers, Seed: e.Seed}

	type ablation struct {
		name string
		opts func() core.Options
		prov func() (similarity.Provider, error)
	}
	gfProv := func() (similarity.Provider, error) { return p.GF, nil }
	cases := []ablation{
		{"default", func() core.Options { return base }, gfProv},
		{"no-splitting", func() core.Options { o := base; o.DisableSplitting = true; return o }, gfProv},
		{"fifo-scheduling", func() core.Options { o := base; o.Scheduling = core.ScheduleFIFO; return o }, gfProv},
		{"force-bruteforce", func() core.Options { o := base; o.LocalSolver = core.SolverBruteForce; return o }, gfProv},
		{"force-hyrec", func() core.Options { o := base; o.LocalSolver = core.SolverHyrec; return o }, gfProv},
	}
	for _, bits := range []int{64, 256, 4096} {
		bits := bits
		cases = append(cases, ablation{
			name: fmt.Sprintf("goldfinger-%db", bits),
			opts: func() core.Options { return base },
			prov: func() (similarity.Provider, error) {
				return newGoldFinger(p.Data, bits, uint32(e.Seed)+0x60fd)
			},
		})
	}

	var rows []AblationRow
	for _, c := range cases {
		prov, err := c.prov()
		if err != nil {
			return nil, err
		}
		counting := similarity.NewCounting(prov)
		start := time.Now()
		g, _ := core.Build(p.Data, counting, c.opts())
		row := AblationRow{
			Dataset: "ml10M", Variant: c.name,
			Time:    time.Since(start),
			Quality: knng.Quality(g, exact, p.Raw),
			Sims:    counting.Count(),
		}
		rows = append(rows, row)
		e.printf("  %-18s time=%-12v quality=%.3f sims=%d\n",
			row.Variant, row.Time.Round(time.Millisecond), row.Quality, row.Sims)
	}
	return rows, nil
}
