package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"c2knn"
	"c2knn/internal/core"
	"c2knn/internal/router"
	"c2knn/internal/server"
)

// ShardSummary condenses the sharded-serving experiment into the flat
// record CI tracks (benchmarks/BENCH_shard.json). The correctness
// fields are hard gates in scripts/bench-compare.sh: FailedReqs,
// MismatchedResps (routed bodies byte-compared against the
// single-process daemon's) and Partials must all be zero, and Speedup —
// routed throughput over the single-process baseline at the same
// per-process worker budget — must clear 1.8x at 2 shards, or the
// scatter-gather tier is costing more than the parallelism it buys.
type ShardSummary struct {
	Dataset string `json:"dataset"`
	Users   int    `json:"users"`
	Shards  int    `json:"shards"`
	Workers int    `json:"workers_per_process"`
	// Cores is GOMAXPROCS at run time. Sharded speedup needs real
	// parallel hardware: on a 1-core box two shard workers time-slice
	// one CPU and the best possible speedup is 1.0x, so the
	// bench-compare gate only judges Speedup when Cores >= Shards.
	Cores int `json:"cores"`

	Clients   int `json:"clients"`
	BatchSize int `json:"batch_size"`
	Requests  int `json:"requests"` // per phase (same plan both phases)

	FailedReqs      int `json:"failed_requests"`
	MismatchedResps int `json:"mismatched_responses"` // routed body != single-process body
	Partials        int `json:"partial_responses"`

	SingleQPS float64 `json:"qps_single"`
	RoutedQPS float64 `json:"qps_routed"`
	Speedup   float64 `json:"speedup"`
}

// Shard is the sharded-serving experiment: one C² index served two
// ways — a single-process daemon, and the same index partitioned into 2
// shard servers behind a scatter-gather router — under an identical
// heavy-batch recommend load, with every routed response byte-compared
// against the single-process daemon's. Each serving process gets a
// 1-worker pool and no cache, so the only parallelism in play is the
// one the shard split buys; the routed tier must therefore approach 2x
// the baseline's throughput, and any JSON it returns differently is a
// routing bug, not noise.
func (e *Env) Shard() (*ShardSummary, error) {
	e.setDefaults()
	const name = "ml1M"
	const nRec = 30
	const shards = 2
	const clients = 8
	const batchSize = 128
	e.printf("Shard: scatter-gather serving on %s (scale %.3g, %d shards, %d clients, batches of %d)\n",
		name, e.Scale, shards, clients, batchSize)
	p, err := e.Prepare(name)
	if err != nil {
		return nil, err
	}
	b, t, n := e.C2Params(name)
	g, _ := core.Build(p.Data, p.GF, core.Options{
		K: e.K, B: b, T: t, MaxClusterSize: n, Workers: e.Workers, Seed: e.Seed,
	})
	ix, err := c2knn.NewIndex(g, p.Data, p.GF)
	if err != nil {
		return nil, err
	}
	users := p.Data.NumUsers()

	// Per-process serving config: 1 worker, no cache. The baseline is a
	// deliberately CPU-starved single daemon so the measured speedup
	// isolates what sharding adds, instead of drowning it in pool-level
	// parallelism both tiers would share.
	serveCfg := server.Config{MaxConcurrent: 1, CacheEntries: -1, Logf: discardLogf}
	single, err := server.New(ix, serveCfg)
	if err != nil {
		return nil, err
	}
	singleBase, closeSingle, err := listenOn(single.Handler())
	if err != nil {
		return nil, err
	}
	defer closeSingle()

	ranges := c2knn.PartitionShardBuckets(c2knn.DefaultShardBuckets, shards)
	parts, _, err := c2knn.PartitionIndex(ix, c2knn.DefaultShardBuckets, ranges)
	if err != nil {
		return nil, err
	}
	rcfg := router.Config{Buckets: c2knn.DefaultShardBuckets, Logf: discardLogf}
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	for i, part := range parts {
		shardSrv, err := server.New(part, serveCfg)
		if err != nil {
			return nil, err
		}
		base, closeShard, err := listenOn(shardSrv.Handler())
		if err != nil {
			return nil, err
		}
		closers = append(closers, closeShard)
		rcfg.Shards = append(rcfg.Shards, router.ShardSpec{ID: i, Range: ranges[i], Replicas: []string{base}})
	}
	rt, err := router.New(rcfg)
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	routedBase, closeRouter, err := listenOn(rt.Handler())
	if err != nil {
		return nil, err
	}
	defer closeRouter()

	// Request plan: contiguous batches of batchSize users tiling the
	// whole population — every batch spans both shards' bucket ranges,
	// so each routed request exercises split + stitch, and each request
	// is heavy enough that fan-out overhead must be amortized, not
	// hidden.
	var bodies [][]byte
	for lo := 0; lo < users; lo += batchSize {
		span := make([]int32, 0, batchSize)
		for u := lo; u < lo+batchSize && u < users; u++ {
			span = append(span, int32(u))
		}
		body, _ := json.Marshal(map[string]any{"users": span, "n": nRec})
		bodies = append(bodies, body)
	}

	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        2 * clients,
			MaxIdleConnsPerHost: 2 * clients,
		},
	}

	// The byte reference: each distinct batch's body as the
	// single-process daemon serves it. Routed answers must match these
	// bit-for-bit — the router's contract, checked on every response.
	expected := make([][]byte, len(bodies))
	for i, body := range bodies {
		raw, _, err := postBatch(client, singleBase, body)
		if err != nil {
			return nil, fmt.Errorf("reference fetch %d: %w", i, err)
		}
		expected[i] = raw
	}

	const rounds = 4 // each client replays the full batch plan this many times
	sum := &ShardSummary{
		Dataset: name, Users: users, Shards: shards, Workers: 1,
		Cores:   runtime.GOMAXPROCS(0),
		Clients: clients, BatchSize: batchSize, Requests: clients * rounds * len(bodies),
	}

	load := func(base string, check bool) (time.Duration, error) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					for i := range bodies {
						// Rotate the start index per client so the two
						// shards see interleaved, not phase-locked, load.
						j := (i + c) % len(bodies)
						raw, partial, err := postBatch(client, base, bodies[j])
						mu.Lock()
						switch {
						case err != nil:
							sum.FailedReqs++
							if firstErr == nil {
								firstErr = err
							}
						case partial:
							sum.Partials++
						case check && !bytes.Equal(raw, expected[j]):
							sum.MismatchedResps++
						}
						mu.Unlock()
					}
				}
			}(c)
		}
		wg.Wait()
		return time.Since(start), firstErr
	}

	elapsedSingle, err := load(singleBase, false)
	if err != nil {
		return nil, err
	}
	elapsedRouted, err := load(routedBase, true)
	if err != nil {
		return nil, err
	}
	sum.SingleQPS = float64(sum.Requests) / elapsedSingle.Seconds()
	sum.RoutedQPS = float64(sum.Requests) / elapsedRouted.Seconds()
	sum.Speedup = sum.RoutedQPS / sum.SingleQPS

	e.printf("  %d requests x %d users: single %.0f req/s (%v), routed %.0f req/s (%v) — %.2fx\n",
		sum.Requests, batchSize, sum.SingleQPS, elapsedSingle.Round(time.Millisecond),
		sum.RoutedQPS, elapsedRouted.Round(time.Millisecond), sum.Speedup)
	e.printf("  failed %d, mismatched %d, partial %d (all must be 0)\n",
		sum.FailedReqs, sum.MismatchedResps, sum.Partials)
	return sum, nil
}

// postBatch POSTs one pre-marshalled batch body and returns the raw
// response bytes plus whether the router flagged it partial.
func postBatch(client *http.Client, base string, body []byte) ([]byte, bool, error) {
	resp, err := client.Post(base+"/v1/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	partial := resp.Header.Get(router.HeaderPartial) != ""
	if resp.StatusCode != http.StatusOK {
		return nil, partial, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return raw, partial, nil
}

// listenOn serves a handler on a fresh loopback port, returning the
// base URL and a closer.
func listenOn(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// discardLogf drops serving-tier logs: experiment output goes through
// Env.Out, not the daemons' operational logging.
func discardLogf(string, ...any) {}
