package experiments

import (
	"math"
	"math/rand"
	"runtime"
	"time"

	"c2knn/internal/bruteforce"
	"c2knn/internal/hyrec"
	"c2knn/internal/similarity"
)

// SolveSummary condenses the local-solve experiment into the flat
// record CI tracks (benchmarks/BENCH_solve.json): the cost of solving
// one gathered cluster through the blocked row-kernel path
// (bruteforce.LocalInto / hyrec.LocalInto) versus the frozen
// pair-at-a-time references (LocalIntoScalar), on the paper's default
// GoldFinger configuration.
type SolveSummary struct {
	Dataset string `json:"dataset"`
	K       int    `json:"k"`

	// Brute-force solves at the historical 400-member kernel-bench
	// cluster and at 1600 members (near the splitting threshold, where
	// the O(m²) cost of a real build concentrates). The gate reads the
	// large-cluster speedup — that is where the wall-clock lives — and
	// the allocation count of the blocked path.
	ClusterSmall   int     `json:"cluster_small"`
	SmallBlockedMS float64 `json:"small_blocked_ms"`
	SmallScalarMS  float64 `json:"small_scalar_ms"`
	SmallSpeedup   float64 `json:"small_speedup"`
	ClusterLarge   int     `json:"cluster_large"`
	LargeBlockedMS float64 `json:"large_blocked_ms"`
	LargeScalarMS  float64 `json:"large_scalar_ms"`
	SolveSpeedup   float64 `json:"solve_speedup"`
	AllocsPerSolve float64 `json:"allocs_per_solve"`

	// Kernel is the similarity count kernel the blocked numbers above
	// were measured with ("scalar", "avx2", "neon"); KernelSpeedup is
	// the large blocked solve under that kernel versus the same solve
	// with the kernel forced to scalar — the vectorization's isolated
	// contribution (1.0 when the active kernel already is scalar).
	Kernel         string  `json:"kernel"`
	KernelSpeedup  float64 `json:"kernel_speedup"`
	HyrecBlockedMS float64 `json:"hyrec_blocked_ms"`
	HyrecScalarMS  float64 `json:"hyrec_scalar_ms"`
	HyrecSpeedup   float64 `json:"hyrec_speedup"`
}

// solveRounds times fn over enough repetitions to dominate timer noise
// and returns the per-call duration in milliseconds.
func solveRounds(fn func()) float64 {
	fn() // warm scratch so the timed region is steady-state
	rounds := 1
	for {
		start := time.Now()
		for r := 0; r < rounds; r++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed > 60*time.Millisecond || rounds >= 1<<16 {
			return float64(elapsed) / float64(rounds) / float64(time.Millisecond)
		}
		rounds *= 2
	}
}

// solvePair measures two competing solvers interleaved (a, b, a, b, …)
// and returns each one's best-of-passes per-call time: interleaving
// cancels slow frequency/thermal drift on shared runners, best-of
// discards interruptions — both sides get the same treatment, so the
// ratio stays honest.
func solvePair(a, b func()) (aMS, bMS float64) {
	const passes = 3
	aMS, bMS = math.Inf(1), math.Inf(1)
	for p := 0; p < passes; p++ {
		if t := solveRounds(a); t < aMS {
			aMS = t
		}
		if t := solveRounds(b); t < bMS {
			bMS = t
		}
	}
	return aMS, bMS
}

// Solve measures the blocked local-solve kernels on the ml1M preset:
// pseudo-clusters are drawn from a fixed permutation, gathered once,
// and solved repeatedly through the blocked and the frozen scalar
// paths. Both paths produce bit-identical lists (the equivalence tests
// pin that); this experiment records what the blocking is worth in
// wall-clock, plus the blocked path's steady-state allocation count
// (which must be zero).
func (e *Env) Solve() (*SolveSummary, error) {
	e.setDefaults()
	const name = "ml1M"
	const small, large = 400, 1600
	e.printf("Solve: blocked vs pair-at-a-time cluster solvers on %s (k=%d)\n", name, e.K)
	p, err := e.Prepare(name)
	if err != nil {
		return nil, err
	}

	cluster := func(m int) []int32 {
		rng := rand.New(rand.NewSource(17))
		perm := rng.Perm(p.Data.NumUsers())
		if m > len(perm) {
			m = len(perm)
		}
		ids := make([]int32, m)
		for i := range ids {
			ids[i] = int32(perm[i])
		}
		return ids
	}

	var loc similarity.Local
	var bf bruteforce.Scratch
	sum := &SolveSummary{Dataset: name, K: e.K, ClusterSmall: small}

	similarity.GatherInto(p.GF, cluster(small), &loc)
	sum.SmallBlockedMS, sum.SmallScalarMS = solvePair(
		func() { bruteforce.LocalInto(&loc, e.K, &bf) },
		func() { bruteforce.LocalIntoScalar(&loc, e.K, &bf) })
	if sum.SmallBlockedMS > 0 {
		sum.SmallSpeedup = sum.SmallScalarMS / sum.SmallBlockedMS
	}

	largeIDs := cluster(large)
	sum.ClusterLarge = len(largeIDs)
	similarity.GatherInto(p.GF, largeIDs, &loc)
	sum.LargeBlockedMS, sum.LargeScalarMS = solvePair(
		func() { bruteforce.LocalInto(&loc, e.K, &bf) },
		func() { bruteforce.LocalIntoScalar(&loc, e.K, &bf) })
	if sum.LargeBlockedMS > 0 {
		sum.SolveSpeedup = sum.LargeScalarMS / sum.LargeBlockedMS
	}

	// Isolate the count kernel's contribution: the same blocked solve
	// with the vector kernel active versus forced to scalar. Selection
	// happens inside each closure so solvePair's interleaving holds for
	// the kernels too; the reference LocalIntoScalar path never touches
	// the vector kernel, so SolveSpeedup above is unaffected by which
	// kernel C2_KERNEL picked.
	sum.Kernel = similarity.KernelName()
	sum.KernelSpeedup = 1
	if active := sum.Kernel; active != "scalar" {
		vecMS, scalMS := solvePair(
			func() { similarity.SelectKernel(active); bruteforce.LocalInto(&loc, e.K, &bf) },
			func() { similarity.SelectKernel("scalar"); bruteforce.LocalInto(&loc, e.K, &bf) })
		if _, err := similarity.SelectKernel(active); err != nil {
			return nil, err
		}
		if vecMS > 0 {
			sum.KernelSpeedup = scalMS / vecMS
		}
	}

	// Steady-state allocation count of the blocked path, measured the
	// way testing.AllocsPerRun does: pinned to one P so other
	// goroutines' allocations stay off the global counters, and
	// integer-divided so sub-run runtime noise cannot smear a true
	// zero. The pin is scoped to this closure so the Hyrec timings
	// below run under the same scheduler regime as the brute-force
	// ones above.
	func() {
		const allocSolves = 10
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < allocSolves; i++ {
			bruteforce.LocalInto(&loc, e.K, &bf)
		}
		runtime.ReadMemStats(&after)
		sum.AllocsPerSolve = float64((after.Mallocs - before.Mallocs) / allocSolves)
	}()

	var hy hyrec.Scratch
	o := hyrec.Options{MaxIter: 5, Seed: 7}
	similarity.GatherInto(p.GF, cluster(small), &loc)
	sum.HyrecBlockedMS, sum.HyrecScalarMS = solvePair(
		func() { hyrec.LocalInto(&loc, e.K, o, &hy) },
		func() { hyrec.LocalIntoScalar(&loc, e.K, o, &hy) })
	if sum.HyrecBlockedMS > 0 {
		sum.HyrecSpeedup = sum.HyrecScalarMS / sum.HyrecBlockedMS
	}

	e.printf("  brute force %d: blocked %.2f ms, scalar %.2f ms, speedup %.2fx\n",
		small, sum.SmallBlockedMS, sum.SmallScalarMS, sum.SmallSpeedup)
	e.printf("  brute force %d: blocked %.2f ms, scalar %.2f ms, speedup %.2fx (%.2f allocs/solve)\n",
		sum.ClusterLarge, sum.LargeBlockedMS, sum.LargeScalarMS, sum.SolveSpeedup, sum.AllocsPerSolve)
	e.printf("  count kernel %s: %.2fx over forced-scalar on the %d-member blocked solve\n",
		sum.Kernel, sum.KernelSpeedup, sum.ClusterLarge)
	e.printf("  hyrec %d: blocked %.2f ms, scalar %.2f ms, speedup %.2fx\n",
		small, sum.HyrecBlockedMS, sum.HyrecScalarMS, sum.HyrecSpeedup)
	return sum, nil
}
