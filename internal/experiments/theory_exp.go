package experiments

import (
	"math/rand"

	"c2knn/internal/theory"
)

// TheoryResult reports the empirical validation of §III, matching the
// worked example after Theorem 2.
type TheoryResult struct {
	// Ell and B are the joint-profile size and hash range (256 and 4096
	// in the paper's example).
	Ell int
	B   int
	// Jaccard is the exact similarity of the two constructed profiles.
	Jaccard float64
	// Empirical is P[H(u1)=H(u2)] estimated over Trials random functions.
	Empirical float64
	Trials    int
	// Below and Above are the paper's deviations (0.078 and 0.234):
	// Jaccard−Below ≤ P ≤ Jaccard+Above should hold w.p. ≥ Prob.
	Below, Above, Prob float64
	// WithinBounds reports whether the empirical probability fell inside
	// the interval.
	WithinBounds bool
	// DensityOK is the empirical fraction of functions whose collision
	// density κ/ℓ stayed below the Theorem 2 threshold; it should be at
	// least Prob.
	DensityOK float64
}

// Theory validates Theorems 1 and 2 on the paper's worked example: two
// profiles with ℓ = |P1 ∪ P2| = 256 and b = 4096. Note: reproducing the
// paper's numbers (0.078, 0.234, 0.998) requires d = 1.5, i.e.
// (1+d) = 2.5 — with the printed d = 0.5 the formulas of Theorem 2 give
// (0.047, 0.140, 0.578), so the paper's "d = 0.5" is read here as a typo
// for the deviation parameter that actually produces its numbers.
func (e *Env) Theory() (TheoryResult, error) {
	e.setDefaults()
	const (
		ell    = 256
		b      = 4096
		d      = 1.5
		trials = 4000
	)
	// Two profiles with |P1|=|P2|=160 and an overlap of 64:
	// ℓ = 160+160−64 = 256, J = 64/256 = 0.25.
	rng := rand.New(rand.NewSource(e.Seed))
	items := rng.Perm(1 << 20)
	p1 := make([]int32, 0, 160)
	p2 := make([]int32, 0, 160)
	for i := 0; i < 64; i++ { // shared items
		p1 = append(p1, int32(items[i]))
		p2 = append(p2, int32(items[i]))
	}
	for i := 64; i < 160; i++ { // p1-only
		p1 = append(p1, int32(items[i]))
	}
	for i := 160; i < 256; i++ { // p2-only
		p2 = append(p2, int32(items[i]))
	}
	sortInt32(p1)
	sortInt32(p2)

	res := TheoryResult{Ell: ell, B: b, Trials: trials}
	res.Jaccard = theory.Jaccard(p1, p2)
	res.Below, res.Above, res.Prob = theory.PaperExample(ell, b, d)
	res.Empirical = theory.EmpiricalCollision(p1, p2, b, trials, e.Seed+7)
	res.WithinBounds = res.Empirical >= res.Jaccard-res.Below && res.Empirical <= res.Jaccard+res.Above

	threshold, _ := theory.Theorem2(ell, b, d)
	okCount := 0
	fam := newSeedStream(trials, e.Seed+13)
	for _, seed := range fam {
		kappa, l := theory.Collisions(p1, p2, b, seed)
		if float64(kappa)/float64(l) < threshold {
			okCount++
		}
	}
	res.DensityOK = float64(okCount) / float64(trials)

	e.printf("Theory: ℓ=%d b=%d J=%.3f  P̂=%.4f ∈ [J−%.3f, J+%.3f]? %v  (claimed prob %.4f)\n",
		res.Ell, res.B, res.Jaccard, res.Empirical, res.Below, res.Above, res.WithinBounds, res.Prob)
	e.printf("        κ/ℓ < %.4f in %.4f of %d functions (bound: ≥ %.4f)\n",
		threshold, res.DensityOK, trials, res.Prob)
	return res, nil
}

// sortInt32 sorts s ascending (tiny local insertion sort would do; reuse
// the sets invariantless path via a simple comparison sort).
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// newSeedStream derives n deterministic 32-bit seeds.
func newSeedStream(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32()
	}
	return out
}
