package experiments

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"time"

	"c2knn/internal/core"
	"c2knn/internal/dataset"
	"c2knn/internal/delta"
	"c2knn/internal/recommend"
)

// UpdateSummary condenses the incremental-maintenance experiment into
// the flat record CI tracks (benchmarks/BENCH_update.json): how fast
// the delta overlay absorbs a profile (the sub-second freshness
// headline), whether the merged read path stays allocation-free, and —
// the quality clause — how far a graph grown through upserts plus one
// compaction lands from the graph a from-scratch rebuild would produce
// on the same data.
type UpdateSummary struct {
	Dataset   string `json:"dataset"`
	K         int    `json:"k"`
	BaseUsers int    `json:"base_users"`

	// Upserts profiles were absorbed one at a time through the overlay;
	// the percentiles are per-absorbed-profile wall times. The p99 is
	// the freshness number the gate bounds at one second — each of
	// these placements re-solved only the clusters the profile hashes
	// into, never the graph.
	Upserts     int     `json:"upserts"`
	UpsertP50MS float64 `json:"upsert_p50_ms"`
	UpsertP99MS float64 `json:"upsert_p99_ms"`

	// MergedReadAllocs is the allocation count per merged neighbor+
	// profile read against the overlay view (gate: exactly 0 — the
	// serving hot path must not regress when upserts are enabled).
	MergedReadAllocs float64 `json:"merged_read_allocs"`

	// CompactMS is one background fold: base + delta re-assembled into
	// fresh validated artifacts (snapshot write excluded — that cost is
	// the load path's story, tracked by BENCH_load.json).
	CompactMS float64 `json:"compact_ms"`

	// Recall of the rebuilt-from-scratch graph versus the graph that
	// reached the same user set incrementally (build on a truncated
	// base, upsert the held-out profiles, compact). The delta between
	// them is scale-free and gated at 0.005 — the same tolerance the
	// golden recall test grants legitimate float-ordering jitter.
	RecallRebuild     float64 `json:"recall_rebuild"`
	RecallIncremental float64 `json:"recall_incremental"`
	RecallDelta       float64 `json:"recall_delta"`
}

// Update measures incremental maintenance on the ml1M preset: a
// from-scratch build on fold 0's full training set is the quality
// reference; the measured path rebuilds on the same set minus the last
// users, streams exactly their profiles through Overlay.Upsert (timing
// each), checks the merged read path allocates nothing, folds the
// overlay with Compact, and evaluates both graphs on the same held-out
// ratings.
func (e *Env) Update() (*UpdateSummary, error) {
	e.setDefaults()
	const name = "ml1M"
	e.printf("Update: delta-overlay incremental maintenance on %s (scale %.3g)\n", name, e.Scale)
	p, err := e.Prepare(name)
	if err != nil {
		return nil, err
	}
	folds := recommend.Split(p.Data, e.Folds, e.Seed)
	f := folds[0]
	n := f.Train.NumUsers()

	// Hold out the last ids (capped at 64 and at 20% of the fold) so
	// the overlay's contiguous id assignment reproduces them and the
	// fold's test sets line up without remapping. Users with an empty
	// training profile cannot be re-inserted, so the tail stops there.
	maxHeld := min(64, n/5)
	heldOut := 0
	for heldOut < maxHeld && len(f.Train.Profiles[n-1-heldOut]) > 0 {
		heldOut++
	}
	if heldOut == 0 {
		return nil, fmt.Errorf("experiments: no upsertable tail users at scale %g", e.Scale)
	}

	b, t, mc := e.C2Params(name)
	opts := core.Options{K: e.K, B: b, T: t, MaxClusterSize: mc, Workers: e.Workers, Seed: e.Seed}
	sum := &UpdateSummary{Dataset: name, K: e.K, BaseUsers: n - heldOut, Upserts: heldOut}

	// Quality reference: the graph a full rebuild produces.
	gfFull, err := newGoldFinger(f.Train, e.GFBits, uint32(e.Seed)+0x60fd)
	if err != nil {
		return nil, err
	}
	gFull, _ := core.Build(f.Train, gfFull, opts)
	sum.RecallRebuild = recommend.EvalRecall(f, gFull, e.K, e.Workers)

	// Measured path: build without the tail, then stream it back in.
	base := dataset.New(f.Train.Name, f.Train.Profiles[:n-heldOut], f.Train.NumItems)
	gfBase, err := newGoldFinger(base, e.GFBits, uint32(e.Seed)+0x60fd)
	if err != nil {
		return nil, err
	}
	gBase, _ := core.Build(base, gfBase, opts)
	ov, err := delta.Attach(gBase.Freeze(), base, gfBase, delta.Config{
		GFSeed: uint32(e.Seed) + 0x60fd,
	})
	if err != nil {
		return nil, err
	}
	lat := make([]time.Duration, 0, heldOut)
	for u := n - heldOut; u < n; u++ {
		start := time.Now()
		res, err := ov.Upsert(-1, f.Train.Profiles[u])
		if err != nil {
			return nil, fmt.Errorf("upsert user %d: %w", u, err)
		}
		lat = append(lat, time.Since(start))
		if int(res.User) != u {
			return nil, fmt.Errorf("upsert assigned id %d, want %d", res.User, u)
		}
	}
	slices.Sort(lat)
	sum.UpsertP50MS = float64(lat[len(lat)/2]) / float64(time.Millisecond)
	sum.UpsertP99MS = float64(lat[len(lat)*99/100]) / float64(time.Millisecond)

	sum.MergedReadAllocs = mergedReadAllocs(ov.View(), int32(n))

	start := time.Now()
	cmp, err := ov.Compact()
	if err != nil {
		return nil, err
	}
	sum.CompactMS = float64(time.Since(start)) / float64(time.Millisecond)
	if cmp.Train.NumUsers() != n {
		return nil, fmt.Errorf("compacted to %d users, want %d", cmp.Train.NumUsers(), n)
	}
	sum.RecallIncremental = recommend.EvalRecallFrozen(f, cmp.Graph, e.K, e.Workers)
	sum.RecallDelta = math.Abs(sum.RecallIncremental - sum.RecallRebuild)

	e.printf("  upserts: %d profiles, p50 %.3f ms, p99 %.3f ms (base %d users)\n",
		sum.Upserts, sum.UpsertP50MS, sum.UpsertP99MS, sum.BaseUsers)
	e.printf("  merged reads: %.4f allocs/read; compact: %.2f ms\n",
		sum.MergedReadAllocs, sum.CompactMS)
	e.printf("  recall@%d: rebuild %.4f, incremental %.4f (delta %.4f)\n",
		e.K, sum.RecallRebuild, sum.RecallIncremental, sum.RecallDelta)
	return sum, nil
}

// mergedReadAllocs measures steady-state allocations per merged
// neighbor-row + profile read through the overlay view, the same way
// testing.AllocsPerRun does: pinned to one P, warmed once, counted over
// enough rounds that one stray allocation shows as a fraction, not a
// flake.
func mergedReadAllocs(v *delta.View, users int32) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	const rounds = 4096
	read := func(u int32) {
		ids, sims := v.Neighbors(u)
		_, _ = ids, sims
		v.Profile(u)
	}
	read(0) // warm
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		read(int32(i) % users)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(rounds)
}
