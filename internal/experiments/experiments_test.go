package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"c2knn/internal/server"
)

// tinyEnv keeps experiment tests fast: minimum populations, 2 folds.
func tinyEnv() *Env {
	return &Env{Scale: 0.02, Workers: 2, K: 10, Folds: 2, Seed: 7, MinUsers: 400}
}

func TestPrepareCachesDatasets(t *testing.T) {
	e := tinyEnv()
	a, err := e.Prepare("ml1M")
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Prepare("ml1M")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Prepare should cache per dataset")
	}
	if _, err := e.Prepare("nope"); err == nil {
		t.Error("unknown preset should fail")
	}
}

func TestExactGraphLazy(t *testing.T) {
	e := tinyEnv()
	p := e.MustPrepare("ml1M")
	if p.ExactTime() != 0 {
		t.Error("exact graph computed eagerly")
	}
	g := p.Exact()
	if g.NumUsers() != p.Data.NumUsers() {
		t.Error("exact graph has wrong size")
	}
	if p.ExactTime() <= 0 {
		t.Error("exact time not recorded")
	}
	if p.Exact() != g {
		t.Error("exact graph not cached")
	}
}

func TestC2Params(t *testing.T) {
	e := &Env{Scale: 1}
	for _, c := range []struct {
		name    string
		b, t, n int
	}{
		{"ml1M", 4096, 8, 2000},
		{"ml10M", 4096, 8, 2000},
		{"ml20M", 4096, 8, 4000},
		{"AM", 4096, 8, 2000},
		{"DBLP", 4096, 15, 2000},
		{"GW", 4096, 15, 2000},
	} {
		b, tt, n := e.C2Params(c.name)
		if b != c.b || tt != c.t || n != c.n {
			t.Errorf("%s: params (%d,%d,%d), want (%d,%d,%d)", c.name, b, tt, n, c.b, c.t, c.n)
		}
	}
	// At reduced scale N shrinks, b and t do not.
	es := &Env{Scale: 0.1}
	b, tt, n := es.C2Params("ml10M")
	if b != 4096 || tt != 8 {
		t.Errorf("scaled params changed b/t: %d/%d", b, tt)
	}
	if n >= 2000 || n < 64 {
		t.Errorf("scaled N = %d out of range", n)
	}
}

func TestEffScaleFloorsSmallDatasets(t *testing.T) {
	e := &Env{Scale: 0.05}
	if got := e.EffScale("ml20M"); got != 0.05 {
		t.Errorf("ml20M eff scale = %v, want 0.05", got)
	}
	if got := e.EffScale("DBLP"); got <= 0.05 || got > 1 {
		t.Errorf("DBLP eff scale = %v, want floored above 0.05", got)
	}
	e1 := &Env{Scale: 1}
	if got := e1.EffScale("DBLP"); got != 1 {
		t.Errorf("full-scale eff = %v, want 1", got)
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	e := tinyEnv()
	e.Out = &buf
	stats, err := e.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 6 {
		t.Fatalf("got %d datasets, want 6", len(stats))
	}
	if !strings.Contains(buf.String(), "ml10M") {
		t.Error("report missing dataset rows")
	}
}

func TestTable2SingleDataset(t *testing.T) {
	e := tinyEnv()
	rows, err := e.Table2([]string{"ml1M"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 algorithms", len(rows))
	}
	algos := map[string]bool{}
	for _, r := range rows {
		algos[r.Algo] = true
		if r.Time <= 0 {
			t.Errorf("%s: non-positive time", r.Algo)
		}
		if r.Quality <= 0 || r.Quality > 1.2 {
			t.Errorf("%s: quality %v out of range", r.Algo, r.Quality)
		}
		if r.Sims <= 0 {
			t.Errorf("%s: no similarity computations recorded", r.Algo)
		}
	}
	for _, want := range []string{"Hyrec", "NNDescent", "LSH", "C2"} {
		if !algos[want] {
			t.Errorf("missing algorithm %s", want)
		}
	}
}

func TestTable3SingleDataset(t *testing.T) {
	e := tinyEnv()
	rows, err := e.Table3([]string{"ml1M"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.BruteForce <= 0 {
		t.Error("brute-force recall is zero")
	}
	if r.C2 <= 0 {
		t.Error("C2 recall is zero")
	}
	if r.Delta != r.C2-r.BruteForce {
		t.Error("delta inconsistent")
	}
}

func TestTheoryExperiment(t *testing.T) {
	e := tinyEnv()
	res, err := e.Theory()
	if err != nil {
		t.Fatal(err)
	}
	if !res.WithinBounds {
		t.Errorf("empirical collision probability %.4f outside the paper interval [%.3f, %.3f] around J=%.3f",
			res.Empirical, res.Below, res.Above, res.Jaccard)
	}
	if res.DensityOK < res.Prob-0.01 {
		t.Errorf("density concentration %.4f below bound %.4f", res.DensityOK, res.Prob)
	}
	if res.Jaccard != 0.25 {
		t.Errorf("constructed J = %v, want 0.25", res.Jaccard)
	}
}

func TestFig8Shapes(t *testing.T) {
	e := tinyEnv()
	rows, err := e.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// Find raw and N=500 rows for ml10M; splitting must shrink the max.
	var raw, split *Fig8Row
	for i := range rows {
		r := &rows[i]
		if strings.HasPrefix(r.Dataset, "ml10M") || r.Dataset == "ml10M" {
			switch r.N {
			case 0:
				raw = r
			case 500:
				split = r
			}
		}
	}
	if raw == nil || split == nil {
		t.Fatal("missing ml10M rows")
	}
	if len(raw.Top) == 0 || len(split.Top) == 0 {
		t.Fatal("empty top sizes")
	}
	if split.Top[0] >= raw.Top[0] {
		t.Errorf("splitting did not shrink the biggest cluster: %d vs raw %d",
			split.Top[0], raw.Top[0])
	}
	for i := 1; i < len(raw.Top); i++ {
		if raw.Top[i] > raw.Top[i-1] {
			t.Error("top sizes not sorted decreasing")
			break
		}
	}
}

// TestAblationsRun exercises the ablation runner end to end (small data).
func TestAblationsRun(t *testing.T) {
	e := tinyEnv()
	rows, err := e.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("got %d ablation rows", len(rows))
	}
	for _, r := range rows {
		if r.Quality <= 0 {
			t.Errorf("%s: quality %v", r.Variant, r.Quality)
		}
	}
}

// TestServeHTTPRun drives the daemon load experiment end to end on a
// tiny preset: the correctness gates CI enforces on BENCH_http.json
// must hold here too — no failed or mismatched responses through the
// mid-load hot swap, and an allocation-free cache-hit path.
func TestServeHTTPRun(t *testing.T) {
	e := tinyEnv()
	sum, err := e.ServeHTTP()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requests == 0 || sum.Queries < sum.Requests {
		t.Fatalf("degenerate load: %+v", sum)
	}
	if sum.FailedReqs != 0 {
		t.Errorf("%d failed requests during the load", sum.FailedReqs)
	}
	if sum.MismatchedResps != 0 {
		t.Errorf("%d responses diverged from Index.Recommend", sum.MismatchedResps)
	}
	if sum.HotSwaps < 1 {
		t.Errorf("hot swap did not complete (%d)", sum.HotSwaps)
	}
	if sum.CacheHitAllocsPerQuery != 0 && !server.RaceEnabled {
		t.Errorf("cache-hit path allocates %v per query, want 0", sum.CacheHitAllocsPerQuery)
	}
	if sum.CacheHitRate <= 0 {
		t.Errorf("cache hit rate %v after a repeating load, want > 0", sum.CacheHitRate)
	}
	if sum.QPS <= 0 || sum.P99Micros <= 0 {
		t.Errorf("degenerate throughput/latency: %+v", sum)
	}
}

// TestSoakRun drives the fault-injection soak end to end on a tiny
// preset with a short window: every invariant the CI gate enforces on
// BENCH_soak.json must hold here too — zero failed/mismatched
// well-formed requests, every fault class provoked and answered with
// its documented status, the corrupt-reload runbook survived, and the
// /metrics counters reconciled exactly with the harness accounting.
func TestSoakRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak")
	}
	e := tinyEnv()
	sum, err := e.Soak(SoakOptions{Duration: 2 * time.Second, Clients: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requests == 0 {
		t.Fatal("no well-formed requests completed")
	}
	if sum.FailedReqs != 0 {
		t.Errorf("%d well-formed requests failed", sum.FailedReqs)
	}
	if sum.MismatchedResps != 0 {
		t.Errorf("%d responses diverged from Index.Recommend", sum.MismatchedResps)
	}
	if sum.FaultUnexpected != 0 {
		t.Errorf("%d fault probes got the wrong status", sum.FaultUnexpected)
	}
	if sum.Restarts != 0 {
		t.Errorf("daemon died %d time(s)", sum.Restarts)
	}
	if sum.Fault413 < 1 || sum.Fault400 < 1 || sum.Fault500 < 1 || sum.Fault503 < 1 || sum.Shed429 < 1 {
		t.Errorf("fault classes missing: 413×%d 400×%d 500×%d 503×%d 429×%d",
			sum.Fault413, sum.Fault400, sum.Fault500, sum.Fault503, sum.Shed429)
	}
	if sum.LorisConns < 1 {
		t.Errorf("no slow-loris connection was attempted")
	}
	if sum.HotSwaps < 1 {
		t.Errorf("no hot swap completed under load (%d)", sum.HotSwaps)
	}
	if sum.CorruptReloads < 1 || !sum.CorruptKeptServing || !sum.GoodReloadAfterCorrupt {
		t.Errorf("corrupt-reload runbook failed: reloads=%d kept=%v recovered=%v",
			sum.CorruptReloads, sum.CorruptKeptServing, sum.GoodReloadAfterCorrupt)
	}
	if !sum.MetricsReconciled {
		t.Errorf("/metrics drifted from harness accounting: %s", sum.MetricsDiff)
	}
}

// TestPipelineRun exercises the overlap experiment end to end (small
// data) and checks the summary the CI benchmark records.
func TestPipelineRun(t *testing.T) {
	e := tinyEnv()
	rows, sum, err := e.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d pipeline rows, want 2", len(rows))
	}
	modes := map[string]PipelineRow{}
	for _, r := range rows {
		modes[r.Mode] = r
		if r.Quality <= 0 || r.Total <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Mode, r)
		}
	}
	if modes["pipelined"].Clusters != modes["barrier"].Clusters {
		t.Errorf("cluster sets differ across modes: %d vs %d",
			modes["pipelined"].Clusters, modes["barrier"].Clusters)
	}
	if modes["barrier"].Overlap != 0 {
		t.Errorf("barrier overlap = %v, want 0", modes["barrier"].Overlap)
	}
	if sum == nil || sum.Speedup <= 0 || sum.QualityRatio <= 0 {
		t.Fatalf("degenerate summary %+v", sum)
	}
	// On tiny data the speedup is noise, but quality parity is not.
	if sum.QualityRatio < 0.999 {
		t.Errorf("quality ratio %.4f below the 0.999 parity bound", sum.QualityRatio)
	}
}

// TestShardRun drives the sharded-serving experiment end to end on a
// tiny preset: the correctness invariants the CI gate enforces on
// BENCH_shard.json must hold here too — zero failed requests, every
// routed response byte-identical to the single-process daemon's, and
// zero partial responses while all replicas are up. Speedup is only
// checked for sanity (> 0): it is hardware-dependent and gated
// conditionally by scripts/bench-compare.sh, not here.
func TestShardRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second serving comparison")
	}
	e := tinyEnv()
	sum, err := e.Shard()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if sum.FailedReqs != 0 {
		t.Errorf("%d routed requests failed", sum.FailedReqs)
	}
	if sum.MismatchedResps != 0 {
		t.Errorf("%d routed responses were not byte-identical to the single-process daemon", sum.MismatchedResps)
	}
	if sum.Partials != 0 {
		t.Errorf("%d responses degraded to partial with all replicas healthy", sum.Partials)
	}
	if sum.Speedup <= 0 || sum.SingleQPS <= 0 || sum.RoutedQPS <= 0 {
		t.Errorf("degenerate throughput record: single %.2f, routed %.2f, speedup %.2f",
			sum.SingleQPS, sum.RoutedQPS, sum.Speedup)
	}
	if sum.Shards != 2 || sum.Workers != 1 {
		t.Errorf("experiment shape drifted: %d shards, %d workers per process", sum.Shards, sum.Workers)
	}
}
