package experiments

import (
	"runtime"
	"sync"
	"time"

	"c2knn/internal/core"
	"c2knn/internal/recommend"
)

// ServeSummary condenses the serving-layer experiment into the flat
// record CI tracks (benchmarks/BENCH_serve.json): query cost on the
// frozen CSR path versus the mutable build structure, for both the
// neighbor-lookup primitive and full recommendation queries.
type ServeSummary struct {
	Dataset string `json:"dataset"`
	Workers int    `json:"workers"`
	Queries int    `json:"queries"`

	// Full recommendation queries (user-based CF, top-30).
	QueriesPerSec    float64 `json:"queries_per_sec"`    // concurrent, frozen path
	NsPerQuery       float64 `json:"ns_per_query"`       // serial, frozen path
	AllocsPerQuery   float64 `json:"allocs_per_query"`   // serial, frozen path
	GraphNsPerQuery  float64 `json:"graph_ns_per_query"` // serial, mutable-graph map path
	RecommendSpeedup float64 `json:"recommend_speedup"`  // graph / frozen

	// Bare neighbor lookups — the primitive every serving read pays.
	NeighborsNs      float64 `json:"neighbors_ns"`               // frozen view
	GraphNeighborsNs float64 `json:"graph_neighbors_ns"`         // alloc + sort per call
	NeighborsSpeedup float64 `json:"neighbors_speedup"`          // graph / frozen
	NeighborsAllocs  float64 `json:"neighbors_allocs_per_query"` // frozen; must be 0
}

// Serve measures the build/serve split on the ml1M preset: one C² graph
// is built, frozen, and then queried the way a serving process would —
// recommendation queries against per-worker pooled scratch, and raw
// Neighbors lookups — with the mutable Graph structure as the baseline
// each number is compared to. Allocation counts come from
// runtime.MemStats deltas measured on a single goroutine.
func (e *Env) Serve() (*ServeSummary, error) {
	e.setDefaults()
	const name = "ml1M"
	const nRec = 30
	e.printf("Serve: frozen-graph query path on %s (scale %.3g, %d workers)\n",
		name, e.Scale, e.Workers)
	p, err := e.Prepare(name)
	if err != nil {
		return nil, err
	}
	b, t, n := e.C2Params(name)
	g, _ := core.Build(p.Data, p.GF, core.Options{
		K: e.K, B: b, T: t, MaxClusterSize: n, Workers: e.Workers, Seed: e.Seed,
	})
	frozen := g.Freeze()
	users := p.Data.NumUsers()

	// Enough query rounds to dominate timer noise on small populations.
	rounds := 1 + 8000/users
	queries := users * rounds

	// Serial frozen recommendations, with an allocation count.
	sc := recommend.NewScorer(p.Data.NumItems)
	rec := make([]int32, 0, nRec)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for u := 0; u < users; u++ {
			rec = sc.Recommend(p.Data, frozen, int32(u), nRec, rec[:0])
		}
	}
	frozenNs := float64(time.Since(start)) / float64(queries)
	runtime.ReadMemStats(&after)
	allocsPerQuery := float64(after.Mallocs-before.Mallocs) / float64(queries)

	// Serial mutable-graph recommendations (per-query map churn).
	start = time.Now()
	for r := 0; r < rounds; r++ {
		for u := 0; u < users; u++ {
			recommend.Recommend(p.Data, g, int32(u), nRec)
		}
	}
	graphNs := float64(time.Since(start)) / float64(queries)

	// Concurrent frozen throughput at the Env's worker count.
	var wg sync.WaitGroup
	start = time.Now()
	for w := 0; w < e.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsc := recommend.NewScorer(p.Data.NumItems)
			wrec := make([]int32, 0, nRec)
			for r := 0; r < rounds; r++ {
				for u := w; u < users; u += e.Workers {
					wrec = wsc.Recommend(p.Data, frozen, int32(u), nRec, wrec[:0])
				}
			}
		}(w)
	}
	wg.Wait()
	qps := float64(queries) / time.Since(start).Seconds()

	// Neighbor-lookup primitive: rounds scaled up, the per-call cost is
	// tiny. The sink keeps the views from being optimized away.
	nbRounds := rounds * 20
	var sink float32
	runtime.GC()
	runtime.ReadMemStats(&before)
	start = time.Now()
	for r := 0; r < nbRounds; r++ {
		for u := 0; u < users; u++ {
			_, sims := frozen.Neighbors(int32(u))
			if len(sims) > 0 {
				sink += sims[0]
			}
		}
	}
	frozenNbNs := float64(time.Since(start)) / float64(nbRounds*users)
	runtime.ReadMemStats(&after)
	nbAllocs := float64(after.Mallocs-before.Mallocs) / float64(nbRounds*users)

	var sink64 float64
	start = time.Now()
	for r := 0; r < nbRounds; r++ {
		for u := 0; u < users; u++ {
			nbs := g.Neighbors(int32(u))
			if len(nbs) > 0 {
				sink64 += nbs[0].Sim
			}
		}
	}
	graphNbNs := float64(time.Since(start)) / float64(nbRounds*users)
	_, _ = sink, sink64

	sum := &ServeSummary{
		Dataset:          name,
		Workers:          e.Workers,
		Queries:          queries,
		QueriesPerSec:    qps,
		NsPerQuery:       frozenNs,
		AllocsPerQuery:   allocsPerQuery,
		GraphNsPerQuery:  graphNs,
		NeighborsNs:      frozenNbNs,
		GraphNeighborsNs: graphNbNs,
		NeighborsAllocs:  nbAllocs,
	}
	if frozenNs > 0 {
		sum.RecommendSpeedup = graphNs / frozenNs
	}
	if frozenNbNs > 0 {
		sum.NeighborsSpeedup = graphNbNs / frozenNbNs
	}
	e.printf("  recommend: frozen %.0f ns/query (%.2f allocs), graph %.0f ns/query, speedup %.2fx\n",
		frozenNs, allocsPerQuery, graphNs, sum.RecommendSpeedup)
	e.printf("  neighbors: frozen %.1f ns (%.3f allocs), graph %.1f ns, speedup %.2fx\n",
		frozenNbNs, nbAllocs, graphNbNs, sum.NeighborsSpeedup)
	e.printf("  concurrent: %.0f queries/sec with %d workers\n", qps, e.Workers)
	return sum, nil
}
