package experiments

import (
	"time"

	"c2knn/internal/core"
	"c2knn/internal/frh"
	"c2knn/internal/knng"
)

// Fig6Row is one point of the Fig. 6 time×quality trade-off: a (b, t)
// configuration of C².
type Fig6Row struct {
	Dataset string
	B       int
	T       int
	Time    time.Duration
	Quality float64
}

// Fig6 reproduces the hash-function/cluster-count sensitivity analysis
// (§VI-A, Fig. 6): C² is run for b ∈ {512, 2048, 8192} and
// t ∈ {1, 2, 4, 8, 10} on ml10M and AM; each (b, t) point reports
// computation time and KNN quality. The expected shape: t trades time for
// quality with diminishing returns beyond 8, while larger b improves
// both.
func (e *Env) Fig6() ([]Fig6Row, error) {
	e.setDefaults()
	e.printf("Fig 6: effect of t and b on C2 (scale %.3g)\n", e.Scale)
	bs := []int{512, 2048, 8192}
	ts := []int{1, 2, 4, 8, 10}
	var rows []Fig6Row
	for _, name := range SensitivityDatasets() {
		p, err := e.Prepare(name)
		if err != nil {
			return nil, err
		}
		exact := p.Exact()
		for _, b := range bs {
			for _, t := range ts {
				start := time.Now()
				g, _ := core.Build(p.Data, p.GF, core.Options{
					K: e.K, B: b, T: t, MaxClusterSize: e.ScaledN(2000),
					Workers: e.Workers, Seed: e.Seed,
				})
				row := Fig6Row{
					Dataset: name, B: b, T: t,
					Time:    time.Since(start),
					Quality: knng.Quality(g, exact, p.Raw),
				}
				rows = append(rows, row)
				e.printf("  %-6s b=%-5d t=%-3d time=%-12v quality=%.3f\n",
					name, b, t, row.Time.Round(time.Millisecond), row.Quality)
			}
		}
	}
	return rows, nil
}

// Fig7Row is one point of the Fig. 7 N sweep on ml10M.
type Fig7Row struct {
	Dataset string
	N       int // paper-scale threshold; the run uses ScaledN(N)
	Time    time.Duration
	Quality float64
}

// Fig7 reproduces the maximum-cluster-size sensitivity analysis (§VI-B,
// Fig. 7): C² on ml10M for N from 500 to 10000 (scaled with the dataset).
// Expected shape: larger N trades time for quality with a knee around
// N=3000; AM is insensitive (its raw clusters never exceed N), which
// Fig8 demonstrates via the cluster-size distributions.
func (e *Env) Fig7() ([]Fig7Row, error) {
	e.setDefaults()
	e.printf("Fig 7: effect of max cluster size N on C2/ml10M (scale %.3g)\n", e.Scale)
	p, err := e.Prepare("ml10M")
	if err != nil {
		return nil, err
	}
	exact := p.Exact()
	var rows []Fig7Row
	for _, n := range []int{500, 1000, 3000, 5000, 7500, 10000} {
		start := time.Now()
		g, _ := core.Build(p.Data, p.GF, core.Options{
			K: e.K, B: 4096, T: 8, MaxClusterSize: e.ScaledN(n),
			Workers: e.Workers, Seed: e.Seed,
		})
		row := Fig7Row{
			Dataset: "ml10M", N: n,
			Time:    time.Since(start),
			Quality: knng.Quality(g, exact, p.Raw),
		}
		rows = append(rows, row)
		e.printf("  N=%-6d (effective %-5d) time=%-12v quality=%.3f\n",
			n, e.ScaledN(n), row.Time.Round(time.Millisecond), row.Quality)
	}
	return rows, nil
}

// Fig8Row reports the sizes of the biggest clusters of one dataset under
// one splitting threshold.
type Fig8Row struct {
	Dataset string
	N       int   // paper-scale threshold (0 = splitting disabled)
	Top     []int // decreasing sizes of the biggest clusters
}

// Fig8 reproduces the cluster-size distributions (§VI-B, Fig. 8): the 100
// biggest FastRandomHash clusters of ml10M and AM for N from 500 to
// 10000, plus the raw (unsplit) distribution. Expected shape: ml10M's raw
// clusters are strongly unbalanced and capped near N once splitting is
// on; AM's biggest raw cluster is already small so N has no effect.
func (e *Env) Fig8() ([]Fig8Row, error) {
	e.setDefaults()
	e.printf("Fig 8: biggest clusters per N (scale %.3g)\n", e.Scale)
	const top = 100
	var rows []Fig8Row
	for _, name := range SensitivityDatasets() {
		p, err := e.Prepare(name)
		if err != nil {
			return nil, err
		}
		h := frh.NewHasher(p.Data.NumItems, frh.Options{B: 4096, T: 8, Seed: e.Seed})
		for _, n := range []int{0, 500, 1000, 2500, 5000, 7500, 10000} {
			opts := frh.Options{B: 4096, T: 8, Seed: e.Seed}
			if n == 0 {
				opts.MaxSize = -1 // raw clustering
			} else {
				opts.MaxSize = e.ScaledN(n)
			}
			clusters, _ := frh.BuildWithHasher(p.Data, h, opts)
			row := Fig8Row{Dataset: name, N: n, Top: frh.TopSizes(clusters, top)}
			rows = append(rows, row)
			label := "raw"
			if n > 0 {
				label = ""
			}
			e.printf("  %-6s N=%-6d %-4s biggest=%v\n", name, n, label, head(row.Top, 8))
		}
	}
	return rows, nil
}

// head returns the first n elements of s (or all of them).
func head(s []int, n int) []int {
	if len(s) > n {
		return s[:n]
	}
	return s
}
