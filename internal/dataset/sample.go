package dataset

import (
	"math/rand"

	"c2knn/internal/sets"
)

// SampleProfiles returns a copy of d in which every profile larger than
// maxSize is reduced to a uniform random sample of maxSize items. This is
// the profile-sampling speed-up of Kermarrec, Ruas and Taïani ("Nobody
// cares if you liked Star Wars: KNN graph construction on the cheap",
// Euro-Par 2018), cited by the paper as a related compaction technique:
// capping profiles bounds the cost of every Jaccard evaluation at a small
// accuracy cost. maxSize ≤ 0 returns an unmodified deep copy.
func (d *Dataset) SampleProfiles(maxSize int, seed int64) *Dataset {
	out := d.Clone()
	if maxSize <= 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for u, p := range out.Profiles {
		if len(p) <= maxSize {
			continue
		}
		rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
		out.Profiles[u] = sets.Normalize(p[:maxSize])
	}
	return out
}
