package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d := New("round", [][]int32{{0, 2, 5}, {}, {1}}, 10)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "round" {
		t.Errorf("name = %q, want %q (from the header comment)", got.Name, "round")
	}
	if got.NumItems != 10 {
		t.Errorf("NumItems = %d, want 10", got.NumItems)
	}
	if got.NumUsers() != 3 {
		t.Fatalf("NumUsers = %d, want 3", got.NumUsers())
	}
	for u := range d.Profiles {
		if len(got.Profiles[u]) != len(d.Profiles[u]) {
			t.Errorf("profile %d length mismatch", u)
		}
		for i := range d.Profiles[u] {
			if got.Profiles[u][i] != d.Profiles[u][i] {
				t.Errorf("profile %d item %d mismatch", u, i)
			}
		}
	}
}

func TestReadWithoutHeader(t *testing.T) {
	in := "1 2 3\n\n5\n"
	d, err := Read(strings.NewReader(in), "bare")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "bare" {
		t.Errorf("name = %q, want bare", d.Name)
	}
	if d.NumItems != 6 {
		t.Errorf("NumItems = %d, want 6 (inferred)", d.NumItems)
	}
	if d.NumUsers() != 3 {
		t.Errorf("NumUsers = %d, want 3 (middle user empty)", d.NumUsers())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"1 banana 3\n",
		"@items notanumber\n",
		"99999999999999999999\n", // overflows int32
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in), "bad"); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}

func TestReadComments(t *testing.T) {
	in := "# a comment\n# dataset named\n1 2\n"
	d, err := Read(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "named" {
		t.Errorf("name = %q, want named", d.Name)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.txt")
	d := New("tiny", [][]int32{{1, 2}, {0}}, 3)
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumUsers() != 2 || got.NumItems != 3 {
		t.Errorf("round trip mismatch: %d users %d items", got.NumUsers(), got.NumItems)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.txt")); err == nil {
		t.Error("ReadFile on a missing path should fail")
	}
}
