// Package dataset models the item-based datasets the paper computes KNN
// graphs over: a set of users U, a set of items I, and one profile
// P_u ⊆ I per user. It covers the paper's preprocessing pipeline
// (binarization keeping ratings > 3, dropping users with fewer than 20
// ratings, §IV-A), a plain-text on-disk format, and the Table I statistics.
package dataset

import (
	"errors"
	"fmt"

	"c2knn/internal/sets"
)

// Rating is one (user, item, value) triple of a raw dataset before
// binarization.
type Rating struct {
	User  int32
	Item  int32
	Value float64
}

// Dataset is a binarized item-based dataset: Profiles[u] is the sorted,
// duplicate-free slice of item ids associated with user u. User ids are
// dense in [0, NumUsers); item ids live in [0, NumItems).
type Dataset struct {
	// Name identifies the dataset in reports (e.g. "ml10M").
	Name string
	// NumItems is the size of the item universe |I|. Item ids in
	// profiles are < NumItems.
	NumItems int32
	// Profiles holds one sorted item-id slice per user.
	Profiles [][]int32
}

// Options controls the conversion of raw ratings into a Dataset.
type Options struct {
	// PositiveThreshold keeps only ratings with Value > PositiveThreshold
	// (the paper keeps ratings strictly above 3 on MovieLens). A negative
	// threshold keeps everything.
	PositiveThreshold float64
	// MinProfile drops users whose binarized profile has fewer items
	// (the paper uses 20). Zero keeps every user with at least one
	// positive rating; users whose profile is empty after binarization
	// are always dropped, whatever MinProfile says — they carry no
	// signal for clustering or similarity.
	MinProfile int
	// KeepItemUniverse preserves the original item-universe size even if
	// filtering removed all occurrences of some items (the paper removes
	// cold users "from the user set but not from the item set").
	KeepItemUniverse bool
}

// FromRatings builds a Dataset from raw ratings according to opts.
// User ids are re-densified: users surviving the MinProfile filter are
// renumbered 0..n-1 in order of their original id. Item ids are preserved.
func FromRatings(name string, ratings []Rating, opts Options) *Dataset {
	var maxUser, maxItem int32 = -1, -1
	for _, r := range ratings {
		if r.User > maxUser {
			maxUser = r.User
		}
		if r.Item > maxItem {
			maxItem = r.Item
		}
	}
	profiles := make([][]int32, maxUser+1)
	for _, r := range ratings {
		if r.Value > opts.PositiveThreshold {
			profiles[r.User] = append(profiles[r.User], r.Item)
		}
	}
	kept := make([][]int32, 0, len(profiles))
	for _, p := range profiles {
		p = sets.Normalize(p)
		if len(p) >= opts.MinProfile && len(p) > 0 {
			kept = append(kept, p)
		}
	}
	d := &Dataset{Name: name, NumItems: maxItem + 1, Profiles: kept}
	if !opts.KeepItemUniverse {
		d.CompactItems()
	}
	return d
}

// New builds a Dataset directly from profiles; each profile is normalized
// in place. numItems may be zero, in which case it is inferred as
// max(item)+1.
func New(name string, profiles [][]int32, numItems int32) *Dataset {
	var maxItem int32 = -1
	for i, p := range profiles {
		profiles[i] = sets.Normalize(p)
		for _, it := range profiles[i] {
			if it > maxItem {
				maxItem = it
			}
		}
	}
	if numItems <= maxItem {
		numItems = maxItem + 1
	}
	return &Dataset{Name: name, NumItems: numItems, Profiles: profiles}
}

// NumUsers returns |U|.
func (d *Dataset) NumUsers() int { return len(d.Profiles) }

// NumRatings returns the total number of (user, item) associations.
func (d *Dataset) NumRatings() int {
	n := 0
	for _, p := range d.Profiles {
		n += len(p)
	}
	return n
}

// Profile returns user u's profile. The returned slice must not be
// mutated.
func (d *Dataset) Profile(u int32) []int32 { return d.Profiles[u] }

// Validate checks the structural invariants: profiles sorted and
// duplicate-free, item ids within [0, NumItems).
func (d *Dataset) Validate() error {
	for u, p := range d.Profiles {
		if !sets.IsNormalized(p) {
			return fmt.Errorf("dataset %s: profile of user %d is not sorted/deduped", d.Name, u)
		}
		if len(p) > 0 && (p[0] < 0 || p[len(p)-1] >= d.NumItems) {
			return fmt.Errorf("dataset %s: profile of user %d has item ids outside [0,%d)", d.Name, u, d.NumItems)
		}
	}
	return nil
}

// ValidateBounds checks only that every item id lies in [0, NumItems) —
// the invariant that makes indexing per-item arrays (scorers, popularity
// counts) memory-safe. Unlike Validate it does not require profiles to
// be sorted and duplicate-free: those are value-level properties whose
// violation skews scores but cannot read out of bounds. The snapshot
// view path uses this after checksumming the section bytes.
func (d *Dataset) ValidateBounds() error {
	// Unsigned compare folds the it < 0 and it >= NumItems checks into
	// one test (negative ids map high); the per-profile max-reduce runs
	// branch-free, and this scan dominates zero-copy snapshot loads.
	limit := uint32(d.NumItems)
	for u, p := range d.Profiles {
		if len(p) > 0 && maxItemID(p) >= limit {
			return fmt.Errorf("dataset %s: profile of user %d has item ids outside [0,%d)", d.Name, u, d.NumItems)
		}
	}
	return nil
}

// maxItemID returns the maximum of p reinterpreted as unsigned values.
// Four independent accumulators keep the dependency chains short so the
// compiler emits conditional moves.
func maxItemID(p []int32) uint32 {
	var m0, m1, m2, m3 uint32
	i := 0
	for ; i+4 <= len(p); i += 4 {
		if v := uint32(p[i]); v > m0 {
			m0 = v
		}
		if v := uint32(p[i+1]); v > m1 {
			m1 = v
		}
		if v := uint32(p[i+2]); v > m2 {
			m2 = v
		}
		if v := uint32(p[i+3]); v > m3 {
			m3 = v
		}
	}
	for ; i < len(p); i++ {
		if v := uint32(p[i]); v > m0 {
			m0 = v
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	return m0
}

// CompactItems renumbers item ids densely (dropping unused ids) and
// updates NumItems. Profiles stay sorted because the renumbering is
// monotone.
func (d *Dataset) CompactItems() {
	seen := make([]bool, d.NumItems)
	for _, p := range d.Profiles {
		for _, it := range p {
			seen[it] = true
		}
	}
	remap := make([]int32, d.NumItems)
	var next int32
	for i, s := range seen {
		if s {
			remap[i] = next
			next++
		}
	}
	for _, p := range d.Profiles {
		for i := range p {
			p[i] = remap[p[i]]
		}
	}
	d.NumItems = next
}

// Clone returns a deep copy of d.
func (d *Dataset) Clone() *Dataset {
	profiles := make([][]int32, len(d.Profiles))
	for i, p := range d.Profiles {
		cp := make([]int32, len(p))
		copy(cp, p)
		profiles[i] = cp
	}
	return &Dataset{Name: d.Name, NumItems: d.NumItems, Profiles: profiles}
}

// ItemPopularity returns, for each item id, the number of profiles that
// contain it.
func (d *Dataset) ItemPopularity() []int {
	pop := make([]int, d.NumItems)
	for _, p := range d.Profiles {
		for _, it := range p {
			pop[it]++
		}
	}
	return pop
}

// ErrEmpty is returned by operations that need a non-empty dataset.
var ErrEmpty = errors.New("dataset: empty")
