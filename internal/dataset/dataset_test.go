package dataset

import (
	"testing"
	"testing/quick"

	"c2knn/internal/sets"
)

func ratingsFixture() []Rating {
	return []Rating{
		{User: 0, Item: 0, Value: 5},
		{User: 0, Item: 1, Value: 2}, // filtered: not positive
		{User: 0, Item: 2, Value: 4},
		{User: 1, Item: 2, Value: 5},
		{User: 1, Item: 2, Value: 5}, // duplicate association
		{User: 1, Item: 3, Value: 4},
		{User: 2, Item: 1, Value: 1}, // user 2 ends up empty
		{User: 4, Item: 0, Value: 5}, // user 3 has no ratings at all
	}
}

func TestFromRatingsBinarization(t *testing.T) {
	d := FromRatings("fix", ratingsFixture(), Options{PositiveThreshold: 3, KeepItemUniverse: true})
	if got := d.NumUsers(); got != 3 {
		t.Fatalf("NumUsers = %d, want 3 (users 0, 1 and 4 survive)", got)
	}
	if !sets.Equal(d.Profiles[0], []int32{0, 2}) {
		t.Errorf("profile 0 = %v, want [0 2]", d.Profiles[0])
	}
	if !sets.Equal(d.Profiles[1], []int32{2, 3}) {
		t.Errorf("profile 1 = %v, want [2 3] (duplicate collapsed)", d.Profiles[1])
	}
	if !sets.Equal(d.Profiles[2], []int32{0}) {
		t.Errorf("profile 2 = %v, want [0]", d.Profiles[2])
	}
	if d.NumItems != 4 {
		t.Errorf("NumItems = %d, want 4 (universe preserved)", d.NumItems)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFromRatingsMinProfile(t *testing.T) {
	d := FromRatings("fix", ratingsFixture(), Options{PositiveThreshold: 3, MinProfile: 2})
	if got := d.NumUsers(); got != 2 {
		t.Fatalf("NumUsers = %d, want 2 (singleton profile dropped)", got)
	}
}

// TestFromRatingsDropsEmptyProfiles pins the documented MinProfile=0
// contract: a user whose every rating falls below the positive
// threshold — or who has no ratings at all — is dropped even though
// MinProfile "keeps all users"; only users with at least one positive
// rating survive.
func TestFromRatingsDropsEmptyProfiles(t *testing.T) {
	d := FromRatings("fix", ratingsFixture(), Options{PositiveThreshold: 3, MinProfile: 0})
	if got := d.NumUsers(); got != 3 {
		t.Fatalf("NumUsers = %d, want 3 (users 2 and 3 binarize to empty and are dropped)", got)
	}
	for u, p := range d.Profiles {
		if len(p) == 0 {
			t.Errorf("user %d kept with an empty profile", u)
		}
	}
}

func TestFromRatingsCompactsItems(t *testing.T) {
	d := FromRatings("fix", []Rating{
		{User: 0, Item: 100, Value: 5},
		{User: 0, Item: 900, Value: 5},
	}, Options{})
	if d.NumItems != 2 {
		t.Errorf("NumItems = %d, want 2 after compaction", d.NumItems)
	}
	if !sets.Equal(d.Profiles[0], []int32{0, 1}) {
		t.Errorf("profile = %v, want [0 1]", d.Profiles[0])
	}
}

func TestNewNormalizesProfiles(t *testing.T) {
	d := New("n", [][]int32{{3, 1, 3, 2}}, 0)
	if !sets.Equal(d.Profiles[0], []int32{1, 2, 3}) {
		t.Errorf("profile = %v, want [1 2 3]", d.Profiles[0])
	}
	if d.NumItems != 4 {
		t.Errorf("NumItems = %d, want 4 (inferred max+1)", d.NumItems)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := New("v", [][]int32{{1, 2}}, 5)
	d.Profiles[0] = []int32{2, 1} // corrupt ordering behind Validate's back
	if err := d.Validate(); err == nil {
		t.Error("Validate should reject unsorted profile")
	}
	d2 := New("v2", [][]int32{{1, 2}}, 5)
	d2.Profiles[0] = []int32{1, 9} // out of universe
	if err := d2.Validate(); err == nil {
		t.Error("Validate should reject out-of-range item")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := New("c", [][]int32{{1, 2}, {3}}, 5)
	c := d.Clone()
	c.Profiles[0][0] = 99
	if d.Profiles[0][0] == 99 {
		t.Error("Clone shares profile storage with the original")
	}
}

func TestStats(t *testing.T) {
	d := New("s", [][]int32{{0, 1, 2}, {1, 2}, {2}}, 4)
	st := d.ComputeStats()
	if st.Users != 3 || st.Items != 4 || st.Ratings != 6 {
		t.Errorf("stats basic counts wrong: %+v", st)
	}
	if st.AvgUser != 2.0 {
		t.Errorf("AvgUser = %v, want 2", st.AvgUser)
	}
	if st.UsedItem != 3 {
		t.Errorf("UsedItem = %v, want 3 (item 3 unused)", st.UsedItem)
	}
	if st.AvgItem != 2.0 {
		t.Errorf("AvgItem = %v, want 2 (6 ratings / 3 used items)", st.AvgItem)
	}
	if st.MaxUser != 3 {
		t.Errorf("MaxUser = %v, want 3", st.MaxUser)
	}
	wantDensity := 6.0 / 12.0
	if st.Density != wantDensity {
		t.Errorf("Density = %v, want %v", st.Density, wantDensity)
	}
	if st.String() == "" {
		t.Error("Stats.String is empty")
	}
}

func TestItemPopularity(t *testing.T) {
	d := New("p", [][]int32{{0, 1}, {1}}, 3)
	pop := d.ItemPopularity()
	want := []int{1, 2, 0}
	for i := range want {
		if pop[i] != want[i] {
			t.Errorf("pop[%d] = %d, want %d", i, pop[i], want[i])
		}
	}
}

// TestFromRatingsAlwaysValid: whatever raw ratings come in, the resulting
// dataset satisfies its invariants.
func TestFromRatingsAlwaysValid(t *testing.T) {
	f := func(raw []struct {
		U, I uint8
		V    float64
	}) bool {
		ratings := make([]Rating, len(raw))
		for i, r := range raw {
			ratings[i] = Rating{User: int32(r.U), Item: int32(r.I), Value: r.V}
		}
		d := FromRatings("q", ratings, Options{PositiveThreshold: 0.5})
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
