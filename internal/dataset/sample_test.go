package dataset

import (
	"testing"

	"c2knn/internal/sets"
)

func TestSampleProfilesCapsSizes(t *testing.T) {
	d := New("s", [][]int32{
		{0, 1, 2, 3, 4, 5, 6, 7},
		{0, 1},
		{},
	}, 8)
	s := d.SampleProfiles(3, 1)
	if len(s.Profiles[0]) != 3 {
		t.Errorf("profile 0 sampled to %d items, want 3", len(s.Profiles[0]))
	}
	if len(s.Profiles[1]) != 2 || len(s.Profiles[2]) != 0 {
		t.Error("small profiles must be untouched")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("sampled dataset invalid: %v", err)
	}
	// Sampled items must come from the original profile.
	for _, it := range s.Profiles[0] {
		if !sets.Contains(d.Profiles[0], it) {
			t.Errorf("sampled item %d not in the original profile", it)
		}
	}
	// The original dataset is untouched.
	if len(d.Profiles[0]) != 8 {
		t.Error("SampleProfiles mutated its receiver")
	}
}

func TestSampleProfilesDeterministic(t *testing.T) {
	d := New("s", [][]int32{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}, 10)
	a := d.SampleProfiles(4, 7)
	b := d.SampleProfiles(4, 7)
	if !sets.Equal(a.Profiles[0], b.Profiles[0]) {
		t.Error("sampling not deterministic for equal seeds")
	}
}

func TestSampleProfilesNoCap(t *testing.T) {
	d := New("s", [][]int32{{0, 1, 2}}, 3)
	s := d.SampleProfiles(0, 1)
	if !sets.Equal(s.Profiles[0], d.Profiles[0]) {
		t.Error("maxSize ≤ 0 should deep-copy unchanged")
	}
}
