package dataset

import "fmt"

// Stats gathers the per-dataset statistics reported in Table I of the
// paper.
type Stats struct {
	Name     string
	Users    int
	Items    int // size of the item universe |I|
	Ratings  int
	AvgUser  float64 // mean |P_u|
	AvgItem  float64 // mean |P_i| over items that occur at least once
	Density  float64 // Ratings / (Users × Items)
	MaxUser  int     // largest profile
	UsedItem int     // items occurring in at least one profile
}

// ComputeStats derives Table I-style statistics for d.
func (d *Dataset) ComputeStats() Stats {
	s := Stats{Name: d.Name, Users: d.NumUsers(), Items: int(d.NumItems)}
	pop := d.ItemPopularity()
	for _, p := range d.Profiles {
		s.Ratings += len(p)
		if len(p) > s.MaxUser {
			s.MaxUser = len(p)
		}
	}
	for _, c := range pop {
		if c > 0 {
			s.UsedItem++
		}
	}
	if s.Users > 0 {
		s.AvgUser = float64(s.Ratings) / float64(s.Users)
	}
	if s.UsedItem > 0 {
		s.AvgItem = float64(s.Ratings) / float64(s.UsedItem)
	}
	if s.Users > 0 && s.Items > 0 {
		s.Density = float64(s.Ratings) / (float64(s.Users) * float64(s.Items))
	}
	return s
}

// String renders the stats as one aligned row (Table I layout).
func (s Stats) String() string {
	return fmt.Sprintf("%-8s users=%-7d items=%-7d ratings=%-9d |Pu|=%-7.2f |Pi|=%-7.2f density=%.3f%%",
		s.Name, s.Users, s.Items, s.Ratings, s.AvgUser, s.AvgItem, 100*s.Density)
}
