package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The on-disk format is line oriented:
//
//	# optional comment lines
//	@items <numItems>
//	<item> <item> <item> ...        (one line per user, may be empty)
//
// Item ids are base-10. The "@items" header is optional; without it the
// universe size is inferred from the largest id seen.

// Write serializes d to w in the plain-text profile format.
func Write(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dataset %s\n@items %d\n", d.Name, d.NumItems); err != nil {
		return err
	}
	for _, p := range d.Profiles {
		for i, it := range p {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatInt(int64(it), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the plain-text profile format. name is used when the stream
// carries no "# dataset" comment.
func Read(r io.Reader, name string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var profiles [][]int32
	var numItems int32
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "# dataset "):
			name = strings.TrimSpace(strings.TrimPrefix(line, "# dataset "))
			continue
		case strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "@items "):
			v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, "@items ")), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad @items header: %v", lineNo, err)
			}
			numItems = int32(v)
			continue
		}
		fields := strings.Fields(line)
		p := make([]int32, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad item id %q: %v", lineNo, f, err)
			}
			p = append(p, int32(v))
		}
		profiles = append(profiles, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	d := New(name, profiles, numItems)
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteFile writes d to path, creating or truncating it.
func WriteFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a dataset from path; the file's base name (sans
// extension) becomes the default dataset name.
func ReadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	if i := strings.LastIndexByte(name, '.'); i > 0 {
		name = name[:i]
	}
	return Read(f, name)
}
