package knng

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"c2knn/internal/similarity"
)

func TestListInsertBasics(t *testing.T) {
	l := List{K: 3}
	if l.Worst() != -1 {
		t.Errorf("Worst of empty list = %v, want -1", l.Worst())
	}
	if !l.Insert(1, 0.5) || !l.Insert(2, 0.3) || !l.Insert(3, 0.8) {
		t.Fatal("inserts into non-full list must succeed")
	}
	if l.Insert(1, 0.5) {
		t.Error("duplicate insert must fail")
	}
	if l.Worst() != 0.3 {
		t.Errorf("Worst = %v, want 0.3", l.Worst())
	}
	if l.Insert(4, 0.3) {
		t.Error("insert equal to worst on a full list must fail (strictness)")
	}
	if !l.Insert(4, 0.4) {
		t.Error("insert better than worst must succeed")
	}
	if l.Contains(2) {
		t.Error("evicted neighbor still present")
	}
	if l.Worst() != 0.4 {
		t.Errorf("Worst after eviction = %v, want 0.4", l.Worst())
	}
}

func TestListHeapInvariantUnderRandomOps(t *testing.T) {
	f := func(sims []float64) bool {
		l := List{K: 8}
		for i, s := range sims {
			// Map into [0,1] deterministically.
			if s < 0 {
				s = -s
			}
			s = s - float64(int(s))
			l.Insert(int32(i), s)
			if !l.checkHeap() {
				return false
			}
			if l.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestListRejectsDegenerateSims is the regression test for the NaN
// insertion bug: on a full list, a NaN candidate failed the
// `sim <= worst` rejection (every comparison with NaN is false), was
// accepted, and silently broke the min-heap invariant that the C² merge
// and the greedy refinement loops rely on.
func TestListRejectsDegenerateSims(t *testing.T) {
	l := List{K: 3}
	// NaN and negative sims must be rejected on a non-full list too.
	if l.Insert(1, math.NaN()) {
		t.Error("NaN insert into non-full list succeeded")
	}
	if l.Insert(2, -0.5) {
		t.Error("negative insert into non-full list succeeded")
	}
	if l.Len() != 0 {
		t.Fatalf("degenerate inserts left %d entries", l.Len())
	}
	for i, s := range []float64{0.5, 0.2, 0.8} {
		if !l.Insert(int32(10+i), s) {
			t.Fatalf("valid insert %d rejected", i)
		}
	}
	// The historical failure mode: full list, NaN candidate.
	if l.Insert(99, math.NaN()) {
		t.Error("NaN insert into full list succeeded")
	}
	if !l.checkHeap() {
		t.Error("heap invariant broken after NaN insert")
	}
	if l.Contains(99) {
		t.Error("NaN candidate retained")
	}
	if l.Insert(98, math.Inf(-1)) {
		t.Error("-Inf insert succeeded")
	}
	if !l.Insert(97, 0.9) || !l.checkHeap() {
		t.Error("list no longer usable after degenerate candidates")
	}
	if l.Worst() != 0.5 {
		t.Errorf("Worst = %v, want 0.5", l.Worst())
	}
}

// TestListKeepsTopK: after many inserts, the list holds exactly the k
// best similarities.
func TestListKeepsTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		const k = 10
		l := List{K: k}
		n := 40 + rng.Intn(100)
		sims := make([]float64, n)
		for i := range sims {
			sims[i] = rng.Float64()
			l.Insert(int32(i), sims[i])
		}
		sort.Float64s(sims)
		want := sims[n-k:]
		var got []float64
		for _, nb := range l.H {
			got = append(got, nb.Sim)
		}
		sort.Float64s(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: kept %v, want top-k %v", trial, got, want)
			}
		}
	}
}

func TestResetNewAndIDs(t *testing.T) {
	l := List{K: 4}
	l.Insert(1, 0.1)
	l.Insert(2, 0.2)
	fresh := l.ResetNew(nil)
	if len(fresh) != 2 {
		t.Fatalf("ResetNew returned %v, want two ids", fresh)
	}
	if again := l.ResetNew(nil); len(again) != 0 {
		t.Errorf("second ResetNew returned %v, want none", again)
	}
	l.Insert(3, 0.3)
	if third := l.ResetNew(nil); len(third) != 1 || third[0] != 3 {
		t.Errorf("ResetNew after new insert = %v, want [3]", third)
	}
	ids := l.IDs(nil)
	if len(ids) != 3 {
		t.Errorf("IDs = %v, want 3 ids", ids)
	}
}

func TestGraphInsertRejectsSelf(t *testing.T) {
	g := New(3, 2)
	if g.Insert(1, 1, 0.9) {
		t.Error("self edge accepted")
	}
	if !g.Insert(1, 2, 0.9) {
		t.Error("valid edge rejected")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(2, 3)
	g.Insert(0, 1, 0.2)
	g.Insert(0, 1, 0.2) // duplicate ignored
	ns := g.Neighbors(0)
	if len(ns) != 1 || ns[0].ID != 1 {
		t.Fatalf("Neighbors = %v", ns)
	}
	g2 := New(5, 4)
	g2.Insert(0, 1, 0.1)
	g2.Insert(0, 2, 0.9)
	g2.Insert(0, 3, 0.5)
	ns = g2.Neighbors(0)
	for i := 1; i < len(ns); i++ {
		if ns[i].Sim > ns[i-1].Sim {
			t.Errorf("Neighbors not sorted: %v", ns)
		}
	}
}

func TestRandomInitDegreeAndSims(t *testing.T) {
	const n, k = 50, 5
	p := similarity.Func(func(u, v int32) float64 { return 0.5 })
	g := New(n, k)
	RandomInit(g, p, 1)
	for u := 0; u < n; u++ {
		if g.Lists[u].Len() != k {
			t.Fatalf("user %d degree = %d, want %d", u, g.Lists[u].Len(), k)
		}
		for _, nb := range g.Lists[u].H {
			if nb.ID == int32(u) {
				t.Fatalf("user %d has self edge", u)
			}
			if nb.Sim != 0.5 {
				t.Fatalf("edge sim not computed through provider")
			}
		}
	}
}

func TestRandomInitTinyPopulation(t *testing.T) {
	p := similarity.Func(func(u, v int32) float64 { return 1 })
	g := New(3, 10) // k exceeds population
	RandomInit(g, p, 1)
	for u := 0; u < 3; u++ {
		if g.Lists[u].Len() != 2 {
			t.Errorf("user %d degree = %d, want 2 (everyone else)", u, g.Lists[u].Len())
		}
	}
}

func TestAvgSimAndQuality(t *testing.T) {
	p := similarity.Func(func(u, v int32) float64 {
		if (u == 0 && v == 1) || (u == 1 && v == 0) {
			return 1.0
		}
		return 0.2
	})
	exact := New(2, 1)
	exact.Insert(0, 1, 1)
	exact.Insert(1, 0, 1)
	approx := New(2, 1)
	approx.Insert(0, 1, 1) // right edge
	// user 1 has no edge: counts as zero in Eq. (1)
	if got := exact.AvgSim(p); got != 1.0 {
		t.Errorf("exact AvgSim = %v, want 1", got)
	}
	if got := approx.AvgSim(p); got != 0.5 {
		t.Errorf("approx AvgSim = %v, want 0.5 (missing slots count 0)", got)
	}
	if got := Quality(approx, exact, p); got != 0.5 {
		t.Errorf("Quality = %v, want 0.5", got)
	}
}

func TestQualityZeroDenominator(t *testing.T) {
	p := similarity.Func(func(u, v int32) float64 { return 0 })
	if got := Quality(New(2, 1), New(2, 1), p); got != 0 {
		t.Errorf("Quality with empty exact graph = %v, want 0", got)
	}
}

func TestRecall(t *testing.T) {
	exact := New(2, 2)
	exact.Insert(0, 1, 0.9)
	approx := New(2, 2)
	approx.Insert(0, 1, 0.9)
	if got := Recall(approx, exact); got != 1 {
		t.Errorf("Recall = %v, want 1", got)
	}
	approx2 := New(2, 2)
	if got := Recall(approx2, exact); got != 0 {
		t.Errorf("Recall of empty approx = %v, want 0", got)
	}
}

func TestAvgStoredSim(t *testing.T) {
	g := New(2, 2)
	g.Insert(0, 1, 0.4)
	g.Insert(1, 0, 0.4)
	want := (0.4 + 0.4) / 4 // 2 edges over k×n = 4 slots
	if got := g.AvgStoredSim(); got != want {
		t.Errorf("AvgStoredSim = %v, want %v", got, want)
	}
}

// TestSharedConcurrentMerge: hammer one shared graph from many goroutines
// and verify the result equals a sequential merge. Similarities are a
// deterministic function of the pair (as in real use), which makes the
// bounded top-k heap order independent up to ties.
func TestSharedConcurrentMerge(t *testing.T) {
	const n, k, edges = 40, 6, 4000
	rng := rand.New(rand.NewSource(31))
	pairSim := func(u, v int32) float64 {
		return float64((int64(u)*48271+int64(v)*40503)%10007) / 10007
	}
	type edge struct {
		u, v int32
		s    float64
	}
	all := make([]edge, edges)
	for i := range all {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		all[i] = edge{u, v, pairSim(u, v)}
	}
	seq := New(n, k)
	for _, e := range all {
		seq.Insert(e.u, e.v, e.s)
	}
	par := New(n, k)
	shared := NewShared(par)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < edges; i += 8 {
				shared.Insert(all[i].u, all[i].v, all[i].s)
			}
		}(w)
	}
	wg.Wait()
	for u := 0; u < n; u++ {
		a := seq.Neighbors(int32(u))
		b := shared.Graph().Neighbors(int32(u))
		if len(a) != len(b) {
			t.Fatalf("user %d: %d vs %d neighbors", u, len(a), len(b))
		}
		for i := range a {
			if a[i].Sim != b[i].Sim {
				t.Fatalf("user %d: neighbor sims diverge (%v vs %v)", u, a, b)
			}
		}
	}
}

func TestSharedMergeUser(t *testing.T) {
	g := New(2, 2)
	s := NewShared(g)
	s.MergeUser(0, []Neighbor{{ID: 1, Sim: 0.9}, {ID: 0, Sim: 0.5}})
	if !g.Lists[0].Contains(1) {
		t.Error("MergeUser dropped a valid neighbor")
	}
	if g.Lists[0].Contains(0) {
		t.Error("MergeUser accepted a self edge")
	}
}

// nanProvider returns NaN for every pair — the misbehaving-provider
// regression case: RandomInit must terminate with empty lists rather
// than spin now that Insert rejects degenerate similarities.
type nanProvider struct{}

func (nanProvider) Sim(u, v int32) float64 { return math.NaN() }

func TestRandomInitDegenerateProviderTerminates(t *testing.T) {
	g := New(20, 5)
	RandomInit(g, nanProvider{}, 1)
	for u := range g.Lists {
		if g.Lists[u].Len() != 0 {
			t.Fatalf("user %d retained %d NaN edges", u, g.Lists[u].Len())
		}
	}
}
