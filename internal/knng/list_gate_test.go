package knng

import (
	"math"
	"math/rand"
	"testing"
)

// TestFullListNeverAcceptsAtOrBelowMin is the threshold-gate regression
// contract: once a list is full, no candidate with sim ≤ Min() may
// enter it — neither through WouldAccept nor through Insert itself —
// and Min never decreases.
func TestFullListNeverAcceptsAtOrBelowMin(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	l := List{K: 8}
	if l.Min() != -1 {
		t.Fatalf("Min of empty list = %v, want -1", l.Min())
	}
	for v := int32(0); l.Len() < l.K; v++ {
		l.Insert(v, rng.Float64())
	}
	next := int32(1000)
	for trial := 0; trial < 2000; trial++ {
		min := l.Min()
		if min != l.Worst() {
			t.Fatalf("Min %v diverged from Worst %v", min, l.Worst())
		}
		var sim float64
		switch trial % 4 {
		case 0:
			sim = min // exactly the minimum: strictness demands rejection
		case 1:
			sim = min * rng.Float64()
		case 2:
			sim = math.Nextafter(min, 0)
		default:
			sim = min + rng.Float64() // above: may enter
		}
		atOrBelow := sim <= min
		if atOrBelow && l.WouldAccept(sim) {
			t.Fatalf("WouldAccept(%v) = true with Min %v", sim, min)
		}
		changed := l.Insert(next, sim)
		next++
		if atOrBelow && changed {
			t.Fatalf("full list accepted sim %v ≤ min %v", sim, min)
		}
		if l.Min() < min {
			t.Fatalf("Min decreased from %v to %v", min, l.Min())
		}
		if !l.checkHeap() {
			t.Fatal("heap invariant broken")
		}
	}
}

// TestGatedInsertMatchesInsertEverything proves the gate is lossless:
// feeding a candidate stream through "WouldAccept, then Insert" must
// leave a list in exactly the state of the historical insert-everything
// path — including duplicates, NaNs, negatives, and exact ties.
func TestGatedInsertMatchesInsertEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, k := range []int{1, 3, 30} {
		ungated := List{K: k}
		gated := List{K: k}
		for step := 0; step < 5000; step++ {
			v := int32(rng.Intn(60)) // small id space: duplicates are common
			var sim float64
			switch rng.Intn(10) {
			case 0:
				sim = math.NaN()
			case 1:
				sim = -rng.Float64()
			case 2:
				sim = 0.25 // a recurring value: exact ties are common
			default:
				sim = rng.Float64()
			}
			okU := ungated.Insert(v, sim)
			okG := false
			if gated.WouldAccept(sim) {
				okG = gated.Insert(v, sim)
			} else if okU {
				t.Fatalf("k=%d step %d: gate rejected (%d, %v) the ungated list accepted", k, step, v, sim)
			}
			if okU != okG {
				t.Fatalf("k=%d step %d: insert results diverged (%v vs %v) for (%d, %v)",
					k, step, okU, okG, v, sim)
			}
			if len(ungated.H) != len(gated.H) {
				t.Fatalf("k=%d step %d: lengths diverged", k, step)
			}
			for i := range ungated.H {
				if ungated.H[i] != gated.H[i] {
					t.Fatalf("k=%d step %d slot %d: %+v vs %+v",
						k, step, i, ungated.H[i], gated.H[i])
				}
			}
		}
	}
}

// TestWouldAcceptDegenerate pins the gate's handling of the values
// Insert rejects outright.
func TestWouldAcceptDegenerate(t *testing.T) {
	empty := List{K: 2}
	for _, sim := range []float64{math.NaN(), -0.1, math.Inf(-1)} {
		if empty.WouldAccept(sim) {
			t.Errorf("empty list WouldAccept(%v) = true", sim)
		}
	}
	if !empty.WouldAccept(0) || !empty.WouldAccept(0.7) {
		t.Error("empty list must accept well-formed sims")
	}
	full := List{K: 1}
	full.Insert(1, 0.5)
	for _, sim := range []float64{math.NaN(), -0.1, 0.5} {
		if full.WouldAccept(sim) {
			t.Errorf("full list WouldAccept(%v) = true with min 0.5", sim)
		}
	}
	if !full.WouldAccept(0.6) {
		t.Error("full list must accept a sim strictly above its min")
	}
}
