package knng

import (
	"math"
	"math/rand"
	"testing"
)

// randomGraph builds a graph over n users with up to k random neighbors
// each, using a deterministic pseudo-similarity so tests are repeatable
// without pulling in a similarity provider.
func randomGraph(n, k int, seed int64) *Graph {
	g := New(n, k)
	rng := rand.New(rand.NewSource(seed))
	FillRandom(g.Lists, rng, func(u, v int) float64 {
		// Quantized sims force plenty of ties to exercise deterministic
		// tie-breaking.
		return math.Round(rng.Float64()*16) / 16
	})
	return g
}

func TestFreezeMatchesGraphNeighbors(t *testing.T) {
	g := randomGraph(500, 10, 1)
	f := g.Freeze()
	if f.NumUsers() != g.NumUsers() {
		t.Fatalf("NumUsers = %d, want %d", f.NumUsers(), g.NumUsers())
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("Freeze produced an invalid Frozen: %v", err)
	}
	edges := 0
	for u := 0; u < g.NumUsers(); u++ {
		want := g.Neighbors(int32(u))
		ids, sims := f.Neighbors(int32(u))
		if len(ids) != len(want) || len(sims) != len(want) {
			t.Fatalf("user %d: frozen degree %d, graph degree %d", u, len(ids), len(want))
		}
		for i, nb := range want {
			if ids[i] != nb.ID {
				t.Fatalf("user %d edge %d: frozen id %d, graph id %d", u, i, ids[i], nb.ID)
			}
			if sims[i] != float32(nb.Sim) {
				t.Fatalf("user %d edge %d: frozen sim %v, graph sim %v", u, i, sims[i], nb.Sim)
			}
		}
		edges += len(ids)
	}
	if f.NumEdges() != edges {
		t.Fatalf("NumEdges = %d, want %d", f.NumEdges(), edges)
	}
}

func TestFreezeSharesNoStorage(t *testing.T) {
	g := randomGraph(50, 5, 2)
	f := g.Freeze()
	before, _ := f.Neighbors(0)
	wantLen := len(before)
	// Mutating the graph afterwards must not affect the frozen view.
	for i := 0; i < 100; i++ {
		g.Insert(0, int32(1+i%49), 0.999)
	}
	after, _ := f.Neighbors(0)
	if len(after) != wantLen {
		t.Fatal("frozen graph changed after source mutation")
	}
}

func TestFrozenNeighborsZeroAlloc(t *testing.T) {
	g := randomGraph(200, 10, 3)
	f := g.Freeze()
	var sink float32
	allocs := testing.AllocsPerRun(1000, func() {
		ids, sims := f.Neighbors(17)
		if len(ids) > 0 {
			sink += sims[0]
		}
	})
	if allocs != 0 {
		t.Errorf("Frozen.Neighbors allocates %.1f per call, want 0", allocs)
	}
	_ = sink
}

func TestFrozenTopK(t *testing.T) {
	g := New(3, 3)
	g.Insert(0, 1, 0.5)
	g.Insert(0, 2, 0.9)
	f := g.Freeze()
	top := f.TopK(0, 1, nil)
	if len(top) != 1 || top[0].ID != 2 || top[0].Sim != float64(float32(0.9)) {
		t.Errorf("TopK(0,1) = %+v, want neighbor 2 at 0.9", top)
	}
	if got := f.TopK(0, 10, nil); len(got) != 2 {
		t.Errorf("TopK beyond degree returned %d neighbors, want 2", len(got))
	}
}

func TestFrozenAvgStoredSimMatchesGraph(t *testing.T) {
	g := randomGraph(300, 8, 4)
	f := g.Freeze()
	got, want := f.AvgStoredSim(), g.AvgStoredSim()
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("AvgStoredSim: frozen %v, graph %v", got, want)
	}
}

func TestNewFrozenValidates(t *testing.T) {
	cases := []struct {
		name    string
		k       int
		offsets []int64
		ids     []int32
		sims    []float32
	}{
		{"empty offsets", 2, nil, nil, nil},
		{"nonzero first offset", 2, []int64{1, 2}, []int32{1, 0}, []float32{1, 1}},
		{"offsets decrease", 2, []int64{0, 2, 1}, []int32{1, 2}, []float32{1, 1}},
		{"length mismatch", 2, []int64{0, 2}, []int32{1, 0}, []float32{1}},
		{"degree exceeds k", 1, []int64{0, 2}, []int32{1, 1}, []float32{1, 1}},
		{"id out of range", 2, []int64{0, 1}, []int32{7}, []float32{1}},
		{"negative id", 2, []int64{0, 1, 1}, []int32{-1}, []float32{1}},
		{"self edge", 2, []int64{0, 1, 1}, []int32{0}, []float32{1}},
		{"nan sim", 2, []int64{0, 1, 1}, []int32{1}, []float32{float32(math.NaN())}},
		{"negative sim", 2, []int64{0, 1, 1}, []int32{1}, []float32{-0.5}},
		{"unsorted sims", 2, []int64{0, 2, 2, 2}, []int32{1, 2}, []float32{0.1, 0.9}},
		{"tied sims unsorted ids", 2, []int64{0, 2, 2, 2}, []int32{2, 1}, []float32{0.5, 0.5}},
		{"duplicate neighbor", 2, []int64{0, 2, 2, 2}, []int32{1, 1}, []float32{0.5, 0.5}},
	}
	for _, tc := range cases {
		if _, err := NewFrozen(tc.k, tc.offsets, tc.ids, tc.sims); err == nil {
			t.Errorf("%s: NewFrozen accepted invalid input", tc.name)
		}
	}
	// And a well-formed graph passes.
	if _, err := NewFrozen(2, []int64{0, 2, 2, 3}, []int32{1, 2, 0}, []float32{0.9, 0.1, 0.4}); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

// TestFreezeFloat32CollapsedTies: float64 sims that are distinct but
// collapse to the same float32 are ties in the CSR; Freeze must order
// them by id so the result passes Validate (regression: sorting on the
// pre-narrowing values put the higher-float64 neighbor first even with
// a larger id, and Encode/Save then rejected a legitimately built
// graph).
func TestFreezeFloat32CollapsedTies(t *testing.T) {
	g := New(3, 2)
	exact := 0.3333333333333333
	g.Insert(0, 2, exact)
	g.Insert(0, 1, float64(float32(exact)))
	f := g.Freeze()
	if err := f.Validate(); err != nil {
		t.Fatalf("Freeze output fails Validate on collapsed-tie sims: %v", err)
	}
	ids, sims := f.Neighbors(0)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("collapsed ties ordered %v, want id-ascending [1 2]", ids)
	}
	if sims[0] != sims[1] {
		t.Fatalf("sims %v should have collapsed to the same float32", sims)
	}
}

func TestGraphNeighborsDeterministicTies(t *testing.T) {
	g := New(4, 3)
	g.Insert(0, 3, 0.5)
	g.Insert(0, 1, 0.5)
	g.Insert(0, 2, 0.5)
	want := []int32{1, 2, 3}
	for trial := 0; trial < 5; trial++ {
		nbs := g.Neighbors(0)
		for i, nb := range nbs {
			if nb.ID != want[i] {
				t.Fatalf("trial %d: tied neighbors ordered %v, want ids ascending %v", trial, nbs, want)
			}
		}
	}
}
