package knng

import (
	"cmp"
	"fmt"
	"slices"
)

// Frozen is the immutable serving representation of a KNN graph: the
// per-user neighbor lists of a Graph flattened into CSR form, with each
// user's adjacency pre-sorted by decreasing similarity (ties broken by
// ascending neighbor id). Where Graph is built for cheap bounded
// inserts — a binary min-heap per user, mutated millions of times
// during construction — Frozen is built for reads: Neighbors is a
// zero-allocation slice view, the whole structure is three flat arrays
// that persist verbatim to disk, and because nothing ever mutates it,
// any number of goroutines may query it concurrently without locks.
//
// The exported fields describe the CSR layout and exist for the
// persistence codec and tests; treat them as read-only. Use NewFrozen
// to construct a Frozen from untrusted (e.g. decoded) slices — it
// checks every structural invariant Freeze guarantees.
type Frozen struct {
	// K is the neighborhood bound the graph was built with; individual
	// users may hold fewer neighbors.
	K int
	// Offsets has NumUsers+1 entries: user u's adjacency occupies
	// IDs[Offsets[u]:Offsets[u+1]] and Sims likewise.
	Offsets []int64
	// IDs holds all neighbor ids, concatenated per user.
	IDs []int32
	// Sims holds the similarity of each corresponding edge in IDs,
	// narrowed to float32 (every metric maps into [0, 1], where float32
	// keeps ~7 significant digits — far below estimator noise).
	Sims []float32
}

// sortNeighbors orders s by decreasing similarity, ties by ascending id,
// the canonical adjacency order shared by Graph.Neighbors and Freeze
// (deterministic ties make the two representations comparable
// edge-for-edge).
func sortNeighbors(s []Neighbor) {
	slices.SortFunc(s, func(a, b Neighbor) int {
		if a.Sim != b.Sim {
			if a.Sim > b.Sim {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// sortNeighborsNarrowed orders s like sortNeighbors but compares the
// similarities after narrowing to float32 — the values a Frozen
// actually stores. Freeze must sort this way: two float64 sims that
// are distinct but collapse to the same float32 are a tie in the CSR,
// and sorting them by the pre-narrowing values could order them
// id-descending, violating the canonical (sim desc, id asc) invariant
// Validate enforces.
func sortNeighborsNarrowed(s []Neighbor) {
	slices.SortFunc(s, func(a, b Neighbor) int {
		as, bs := float32(a.Sim), float32(b.Sim)
		if as != bs {
			if as > bs {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// SortCanonical orders s into the adjacency order a Frozen stores —
// decreasing float32-narrowed similarity, ties by ascending id (see
// sortNeighborsNarrowed). Exported for the delta overlay, whose patched
// rows must interleave with frozen rows edge-for-edge.
func SortCanonical(s []Neighbor) { sortNeighborsNarrowed(s) }

// Freeze flattens the graph into its immutable CSR serving form. The
// graph itself is not modified and may keep evolving afterwards; the
// returned Frozen shares no storage with it.
func (g *Graph) Freeze() *Frozen {
	n := g.NumUsers()
	total := 0
	for u := range g.Lists {
		total += g.Lists[u].Len()
	}
	f := &Frozen{
		K:       g.K,
		Offsets: make([]int64, n+1),
		IDs:     make([]int32, 0, total),
		Sims:    make([]float32, 0, total),
	}
	scratch := make([]Neighbor, 0, g.K)
	for u := range g.Lists {
		scratch = append(scratch[:0], g.Lists[u].H...)
		sortNeighborsNarrowed(scratch)
		for _, nb := range scratch {
			f.IDs = append(f.IDs, nb.ID)
			f.Sims = append(f.Sims, float32(nb.Sim))
		}
		f.Offsets[u+1] = int64(len(f.IDs))
	}
	return f
}

// NewFrozen assembles a Frozen from raw CSR slices, validating every
// invariant Freeze guarantees. It is the single entry point for
// untrusted data (the snapshot decoder): a Frozen that exists is a
// Frozen the serving paths can index into without bounds anxiety.
func NewFrozen(k int, offsets []int64, ids []int32, sims []float32) (*Frozen, error) {
	f := &Frozen{K: k, Offsets: offsets, IDs: ids, Sims: sims}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// Validate checks the CSR invariants: well-formed monotone offsets,
// matching array lengths, per-user degrees within K, neighbor ids in
// range and non-self, similarities finite and non-negative, and each
// adjacency sorted by decreasing similarity with ties by ascending id.
func (f *Frozen) Validate() error {
	if f.K < 0 {
		return fmt.Errorf("knng: frozen graph has negative k %d", f.K)
	}
	if len(f.Offsets) == 0 || f.Offsets[0] != 0 {
		return fmt.Errorf("knng: frozen graph offsets must start with 0")
	}
	n := len(f.Offsets) - 1
	if int64(len(f.IDs)) != f.Offsets[n] || len(f.Sims) != len(f.IDs) {
		return fmt.Errorf("knng: frozen graph arrays disagree: offsets end %d, %d ids, %d sims",
			f.Offsets[n], len(f.IDs), len(f.Sims))
	}
	for u := 0; u < n; u++ {
		lo, hi := f.Offsets[u], f.Offsets[u+1]
		if hi < lo {
			return fmt.Errorf("knng: frozen graph offsets decrease at user %d", u)
		}
		if hi-lo > int64(f.K) {
			return fmt.Errorf("knng: user %d has %d neighbors, exceeding k=%d", u, hi-lo, f.K)
		}
		for i := lo; i < hi; i++ {
			id, sim := f.IDs[i], f.Sims[i]
			if id < 0 || int(id) >= n {
				return fmt.Errorf("knng: user %d has neighbor id %d outside [0,%d)", u, id, n)
			}
			if int(id) == u {
				return fmt.Errorf("knng: user %d has a self edge", u)
			}
			if sim != sim || sim < 0 {
				return fmt.Errorf("knng: user %d edge %d has degenerate similarity %v", u, id, sim)
			}
			if i > lo {
				prev, prevSim := f.IDs[i-1], f.Sims[i-1]
				if sim > prevSim || (sim == prevSim && id <= prev) {
					return fmt.Errorf("knng: user %d adjacency not sorted (sim desc, id asc) at edge %d", u, i-lo)
				}
			}
		}
	}
	return nil
}

// NewFrozenView assembles a Frozen from CSR slices that may alias
// read-only storage (a memory-mapped snapshot section), checking only
// the bounds invariants — see ValidateBounds for what that covers and
// what it deliberately skips. The caller must have integrity evidence
// for the bytes (the snapshot loader checksums every section before
// building views); data of unknown provenance goes through NewFrozen.
func NewFrozenView(k int, offsets []int64, ids []int32, sims []float32) (*Frozen, error) {
	f := &Frozen{K: k, Offsets: offsets, IDs: ids, Sims: sims}
	if err := f.ValidateBounds(); err != nil {
		return nil, err
	}
	return f, nil
}

// ValidateBounds checks the invariants that make every serving-path
// access memory-safe: offsets anchored at 0, monotone, ending exactly
// at len(IDs); array lengths agreeing; every neighbor id in
// [0, NumUsers). It does not check the value-level invariants Validate
// does (degree ≤ K, no self edges, finite similarities, sort order) —
// violating those yields wrong answers, never out-of-bounds access,
// and checking them touches every edge twice on a path whose whole
// point is to avoid touching the edge arrays at load time.
func (f *Frozen) ValidateBounds() error {
	if f.K < 0 {
		return fmt.Errorf("knng: frozen graph has negative k %d", f.K)
	}
	if len(f.Offsets) == 0 || f.Offsets[0] != 0 {
		return fmt.Errorf("knng: frozen graph offsets must start with 0")
	}
	n := len(f.Offsets) - 1
	if int64(len(f.IDs)) != f.Offsets[n] || len(f.Sims) != len(f.IDs) {
		return fmt.Errorf("knng: frozen graph arrays disagree: offsets end %d, %d ids, %d sims",
			f.Offsets[n], len(f.IDs), len(f.Sims))
	}
	for u := 0; u < n; u++ {
		if f.Offsets[u+1] < f.Offsets[u] {
			return fmt.Errorf("knng: frozen graph offsets decrease at user %d", u)
		}
	}
	// Unsigned compare folds the id < 0 and id >= n checks into one test
	// (negative ids map high); the max-reduce runs branch-free, and this
	// scan is the load-time cost floor of the view path.
	if len(f.IDs) > 0 && maxU32(f.IDs) >= uint32(n) {
		for i, id := range f.IDs {
			if uint32(id) >= uint32(n) {
				return fmt.Errorf("knng: edge %d has neighbor id %d outside [0,%d)", i, id, n)
			}
		}
	}
	return nil
}

// maxU32 returns the maximum of xs reinterpreted as unsigned values.
// Four independent accumulators keep the dependency chains short so the
// compiler emits conditional moves; zero-copy snapshot loads spend most
// of their time in this scan and its dataset twin.
func maxU32(xs []int32) uint32 {
	var m0, m1, m2, m3 uint32
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		if v := uint32(xs[i]); v > m0 {
			m0 = v
		}
		if v := uint32(xs[i+1]); v > m1 {
			m1 = v
		}
		if v := uint32(xs[i+2]); v > m2 {
			m2 = v
		}
		if v := uint32(xs[i+3]); v > m3 {
			m3 = v
		}
	}
	for ; i < len(xs); i++ {
		if v := uint32(xs[i]); v > m0 {
			m0 = v
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	return m0
}

// NumUsers returns the number of users the graph is defined over.
func (f *Frozen) NumUsers() int { return len(f.Offsets) - 1 }

// NumEdges returns the total number of directed edges stored.
func (f *Frozen) NumEdges() int { return len(f.IDs) }

// Degree returns the number of neighbors stored for u.
func (f *Frozen) Degree(u int32) int {
	return int(f.Offsets[u+1] - f.Offsets[u])
}

// Neighbors returns views of u's neighbor ids and similarities, sorted
// by decreasing similarity. The slices alias the graph's storage — do
// not mutate them — and the call performs no allocation, so it is safe
// and cheap on every query of a serving hot path.
func (f *Frozen) Neighbors(u int32) (ids []int32, sims []float32) {
	lo, hi := f.Offsets[u], f.Offsets[u+1]
	return f.IDs[lo:hi], f.Sims[lo:hi]
}

// TopK appends u's best min(k, Degree(u)) neighbors to dst as Neighbor
// values and returns the extended slice; pass a recycled dst for
// allocation-free use.
func (f *Frozen) TopK(u int32, k int, dst []Neighbor) []Neighbor {
	ids, sims := f.Neighbors(u)
	if k > len(ids) {
		k = len(ids)
	}
	for i := 0; i < k; i++ {
		dst = append(dst, Neighbor{ID: ids[i], Sim: float64(sims[i])})
	}
	return dst
}

// AvgStoredSim averages the similarities recorded on the edges over k×n
// slots, mirroring Graph.AvgStoredSim (absent edges count as zero).
func (f *Frozen) AvgStoredSim() float64 {
	n := f.NumUsers()
	if n == 0 || f.K == 0 {
		return 0
	}
	total := 0.0
	for _, s := range f.Sims {
		total += float64(s)
	}
	return total / float64(f.K*n)
}
