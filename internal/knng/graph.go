package knng

import (
	"math/rand"
	"sync"

	"c2knn/internal/similarity"
)

// Graph is a directed KNN graph: one bounded best-k List per user.
type Graph struct {
	K     int
	Lists []List
}

// New returns an empty graph over n users with neighborhoods of size k.
func New(n, k int) *Graph {
	g := &Graph{K: k, Lists: make([]List, n)}
	for i := range g.Lists {
		g.Lists[i].K = k
	}
	return g
}

// NumUsers returns the number of users the graph is defined over.
func (g *Graph) NumUsers() int { return len(g.Lists) }

// Insert offers the directed edge (u → v, sim) and reports whether u's
// neighborhood changed. Self edges are ignored.
func (g *Graph) Insert(u, v int32, sim float64) bool {
	if u == v {
		return false
	}
	return g.Lists[u].Insert(v, sim)
}

// Neighbors returns u's current neighbors sorted by decreasing
// similarity, ties by ascending id (the same canonical order Freeze
// uses). The result is freshly allocated — this is the build-time
// inspection path; serving hot paths should Freeze the graph and read
// through Frozen.Neighbors, which is a zero-allocation view.
func (g *Graph) Neighbors(u int32) []Neighbor {
	l := g.Lists[u]
	out := make([]Neighbor, len(l.H))
	copy(out, l.H)
	sortNeighbors(out)
	return out
}

// RandomInit connects every user to k distinct random peers, computing the
// corresponding similarities with p. This is the random starting
// configuration of the greedy algorithms (§II-B); the paper's C²
// contribution is precisely about replacing it with a cluster-aware one.
func RandomInit(g *Graph, p similarity.Provider, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	FillRandom(g.Lists, rng, func(u, v int) float64 { return p.Sim(int32(u), int32(v)) })
}

// FillRandom connects every list to up to its K random distinct peers
// with similarities from sim over indices [0, len(lists)) — the shared
// random start of RandomInit and the local solvers' in-cluster
// initialization (which runs it over local kernel indices; for a given
// rng state both produce the same draw sequence).
//
// An insert that passes the self/duplicate guards can only fail because
// sim returned a degenerate (NaN or negative) value, which List.Insert
// rejects; those failures are bounded so a misbehaving similarity
// source degrades to partially filled lists instead of spinning the
// fill loop forever. Well-behaved sources never trip the bound, keeping
// the draw sequence unchanged.
func FillRandom(lists []List, rng *rand.Rand, sim func(u, v int) float64) {
	n := len(lists)
	for u := range lists {
		rejects := 0
		for lists[u].Len() < lists[u].K && lists[u].Len() < n-1 && rejects < n+lists[u].K {
			v := rng.Intn(n)
			if v == u || lists[u].Contains(int32(v)) {
				continue
			}
			if !lists[u].Insert(int32(v), sim(u, v)) {
				rejects++
			}
		}
	}
}

// AvgSim recomputes every stored edge's similarity with p and returns the
// average over k×n edge slots (Eq. 1 of the paper: absent edges count as
// zero). Passing the exact raw-profile metric here yields the paper's
// quality numerator even for graphs built on GoldFinger estimates.
func (g *Graph) AvgSim(p similarity.Provider) float64 {
	if g.NumUsers() == 0 || g.K == 0 {
		return 0
	}
	total := 0.0
	for u := range g.Lists {
		for _, nb := range g.Lists[u].H {
			total += p.Sim(int32(u), nb.ID)
		}
	}
	return total / float64(g.K*g.NumUsers())
}

// AvgStoredSim averages the similarities recorded on the edges themselves
// (whatever metric built the graph), again over k×n slots.
func (g *Graph) AvgStoredSim() float64 {
	if g.NumUsers() == 0 || g.K == 0 {
		return 0
	}
	total := 0.0
	for u := range g.Lists {
		total += g.Lists[u].SumSim()
	}
	return total / float64(g.K*g.NumUsers())
}

// Quality returns avg_sim(approx)/avg_sim(exact), both recomputed with p
// (Eq. 2 of the paper). A value close to 1 means the approximate graph can
// stand in for the exact one.
func Quality(approx, exact *Graph, p similarity.Provider) float64 {
	denom := exact.AvgSim(p)
	if denom == 0 {
		return 0
	}
	return approx.AvgSim(p) / denom
}

// Recall returns the average fraction of exact KNN edges recovered by
// approx — a stricter metric than Quality, reported as a supplementary
// diagnostic by the harness.
func Recall(approx, exact *Graph) float64 {
	if approx.NumUsers() == 0 {
		return 0
	}
	total := 0.0
	counted := 0
	for u := range exact.Lists {
		el := &exact.Lists[u]
		if el.Len() == 0 {
			continue
		}
		hits := 0
		for _, nb := range el.H {
			if approx.Lists[u].Contains(nb.ID) {
				hits++
			}
		}
		total += float64(hits) / float64(el.Len())
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// Shared wraps a Graph with striped per-user locking so independent
// workers can merge partial results concurrently (C² step 3: merging is
// "performed at the granularity of individual users").
type Shared struct {
	g  *Graph
	mu []sync.Mutex
}

// NewShared wraps g. The stripe count bounds contention; 256 stripes keep
// the memory cost negligible while making collisions rare for the worker
// counts involved.
func NewShared(g *Graph) *Shared {
	return &Shared{g: g, mu: make([]sync.Mutex, 256)}
}

// Insert offers (u → v, sim) under u's stripe lock.
func (s *Shared) Insert(u, v int32, sim float64) bool {
	m := &s.mu[int(u)&(len(s.mu)-1)]
	m.Lock()
	ok := s.g.Insert(u, v, sim)
	m.Unlock()
	return ok
}

// InsertRun offers the directed edges (u → v0+x, sims[x]) for every x
// under a single acquisition of u's stripe lock — the row-batched
// insert of the exact brute-force baseline, which scores user u against
// a contiguous id run and previously paid one lock round-trip per pair.
// Insertion order within the run matches the equivalent per-pair loop,
// so tie-breaking among equal similarities is unchanged.
func (s *Shared) InsertRun(u, v0 int32, sims []float64) {
	m := &s.mu[int(u)&(len(s.mu)-1)]
	m.Lock()
	l := &s.g.Lists[u]
	for x, sim := range sims {
		// WouldAccept pre-gate: skip the insert call outright for sims
		// that cannot change the list (Insert would reject them with
		// the same comparison, but only after a call and a self-check).
		if l.WouldAccept(sim) {
			s.g.Insert(u, v0+int32(x), sim)
		}
	}
	m.Unlock()
}

// MergeUser folds a batch of candidate neighbors into u's list under one
// lock acquisition, reusing the similarities already computed by the
// partial graphs (the paper is "careful to reuse similarity values").
func (s *Shared) MergeUser(u int32, neigh []Neighbor) {
	m := &s.mu[int(u)&(len(s.mu)-1)]
	m.Lock()
	l := &s.g.Lists[u]
	for _, nb := range neigh {
		// WouldAccept pre-gate, as in InsertRun: once a user's global
		// list has warmed past a cluster's partial sims, the whole
		// batch merges with one comparison per neighbor.
		if l.WouldAccept(nb.Sim) {
			s.g.Insert(u, nb.ID, nb.Sim)
		}
	}
	m.Unlock()
}

// Graph returns the underlying graph; callers must ensure all concurrent
// merging has completed.
func (s *Shared) Graph() *Graph { return s.g }
