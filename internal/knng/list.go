// Package knng provides the KNN-graph substrate shared by every algorithm
// in this repository: bounded best-k neighbor lists, the graph itself,
// random initialization (the greedy algorithms' starting point), the
// user-by-user merge used by Cluster-and-Conquer's step 3, and the
// average-similarity / quality metrics of §II-A.
package knng

// Neighbor is one directed edge of a KNN graph together with the
// similarity that justified it. Fields are ordered widest-first so the
// struct packs into 16 bytes (instead of 24 with Sim in the middle) —
// graphs store k·n of these.
type Neighbor struct {
	Sim float64
	ID  int32
	// New marks entries that were inserted since the last ResetNew call;
	// the greedy algorithms (Hyrec, NNDescent) use it to avoid
	// re-examining pairs that were already compared.
	New bool
}

// List is a bounded set of the k best neighbors seen so far, maintained as
// a binary min-heap keyed on Sim so the worst retained neighbor is O(1)
// away. The zero List with K set is ready to use.
type List struct {
	K int
	// H is the heap storage; element 0 is the worst neighbor once the
	// list is full. Exposed for read-only iteration.
	H []Neighbor
}

// Len returns the number of neighbors currently held.
func (l *List) Len() int { return len(l.H) }

// Worst returns the smallest similarity currently retained, or -1 when
// the list is not yet full (any candidate is then acceptable).
func (l *List) Worst() float64 {
	if len(l.H) < l.K {
		return -1
	}
	return l.H[0].Sim
}

// Min returns the similarity a candidate must strictly beat to enter
// the list: the heap minimum once the list is full, -1 while it still
// has room. It is Worst under the name the threshold-gating solvers
// use.
func (l *List) Min() float64 { return l.Worst() }

// WouldAccept reports whether Insert(_, sim) could possibly change the
// list: false exactly when Insert is guaranteed to reject sim without
// looking at the candidate id (degenerate sim, or a full list whose
// minimum sim does not strictly beat). It is the O(1) gate of the
// blocked solvers' insertion loops — two inlined comparisons instead of
// an Insert call for the overwhelming majority of candidates once lists
// warm up. WouldAccept true does not promise acceptance: Insert still
// rejects duplicates, so gating with WouldAccept before Insert leaves
// the list's state evolution bit-identical to calling Insert on every
// candidate.
func (l *List) WouldAccept(sim float64) bool {
	if len(l.H) >= l.K {
		// A NaN fails this comparison too, mirroring Insert's rejection.
		return sim > l.H[0].Sim
	}
	// Not yet full: anything non-degenerate enters (NaN fails >= as well).
	return sim >= 0
}

// Contains reports whether v is already a neighbor. Linear scan: k is
// small (30 in the paper) and the slice is contiguous.
func (l *List) Contains(v int32) bool {
	for i := range l.H {
		if l.H[i].ID == v {
			return true
		}
	}
	return false
}

// Insert offers (v, sim) to the list and reports whether the list changed.
// A candidate is rejected when it is already present or when the list is
// full and sim does not strictly beat the current worst similarity
// (strictness guarantees greedy refinement loops terminate). The O(1)
// threshold rejection runs before the O(k) duplicate scan: on a full
// list — the steady state of every solver's hot loop — most candidates
// are dismissed with a single comparison.
//
// Degenerate similarities are rejected outright: every metric in this
// repository maps into [0, 1], a NaN would slip past the `sim <= worst`
// rejection below (all comparisons with NaN are false) and then poison
// the heap ordering the merge and refinement loops rely on, and a
// negative sim would defeat Worst()'s -1 "not yet full" sentinel.
func (l *List) Insert(v int32, sim float64) bool {
	if sim != sim || sim < 0 {
		return false
	}
	if len(l.H) >= l.K {
		if sim <= l.H[0].Sim || l.Contains(v) {
			return false
		}
		l.H[0] = Neighbor{ID: v, Sim: sim, New: true}
		l.siftDown(0)
		return true
	}
	if l.Contains(v) {
		return false
	}
	l.H = append(l.H, Neighbor{ID: v, Sim: sim, New: true})
	l.siftUp(len(l.H) - 1)
	return true
}

// InsertDistinct is Insert for callers that can prove v is not already
// in the list, skipping the O(k) duplicate scan on acceptance. The
// blocked brute-force sweep qualifies — its triangular iteration offers
// every candidate id to each list exactly once — and the scan is where
// a fifth of its solve time went. Apart from the missing duplicate
// check the semantics (degenerate-sim rejection, strict threshold,
// resulting heap layout) are exactly Insert's.
func (l *List) InsertDistinct(v int32, sim float64) bool {
	if sim != sim || sim < 0 {
		return false
	}
	if len(l.H) >= l.K {
		if sim <= l.H[0].Sim {
			return false
		}
		l.H[0] = Neighbor{ID: v, Sim: sim, New: true}
		l.siftDown(0)
		return true
	}
	l.H = append(l.H, Neighbor{ID: v, Sim: sim, New: true})
	l.siftUp(len(l.H) - 1)
	return true
}

// siftUp and siftDown restore the heap invariant hole-push style: the
// displaced element rides in a register while blockers shift one slot,
// one write per level instead of a full 16-byte swap. Level-by-level
// decisions (including the prefer-left tie rule on equal children) are
// those of the classic swap formulation, so the resulting array layout
// is identical.
func (l *List) siftUp(i int) {
	h := l.H
	item := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if h[p].Sim <= item.Sim {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = item
}

func (l *List) siftDown(i int) {
	h := l.H
	n := len(h)
	item := h[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		// Child selection reads both siblings and picks via conditional
		// move — the left/right choice is data-dependent and effectively
		// random, so a branch here would mispredict half the time.
		if c2 := c + 1; c2 < n {
			cs, c2s := h[c].Sim, h[c2].Sim
			if c2s < cs {
				c = c2
			}
		}
		if h[c].Sim >= item.Sim {
			break
		}
		h[i] = h[c]
		i = c
	}
	h[i] = item
}

// checkHeap verifies the min-heap invariant; used by tests.
func (l *List) checkHeap() bool {
	for i := 1; i < len(l.H); i++ {
		if l.H[(i-1)/2].Sim > l.H[i].Sim {
			return false
		}
	}
	return true
}

// ResetNew appends the ids of neighbors flagged New to dst, clears their
// flags, and returns the extended slice.
func (l *List) ResetNew(dst []int32) []int32 {
	for i := range l.H {
		if l.H[i].New {
			l.H[i].New = false
			dst = append(dst, l.H[i].ID)
		}
	}
	return dst
}

// IDs appends all neighbor ids to dst and returns the extended slice.
func (l *List) IDs(dst []int32) []int32 {
	for i := range l.H {
		dst = append(dst, l.H[i].ID)
	}
	return dst
}

// ReuseLists returns n empty Lists with capacity k, recycling both the
// slice and each List's heap storage from lists. It is the allocation-
// free reset the per-worker cluster solvers rely on: after the first
// few clusters a worker's lists stop allocating entirely.
func ReuseLists(lists []List, n, k int) []List {
	if cap(lists) < n {
		grown := make([]List, n)
		copy(grown, lists[:cap(lists)])
		lists = grown
	} else {
		lists = lists[:n]
	}
	for i := range lists {
		lists[i].K = k
		lists[i].H = lists[i].H[:0]
	}
	return lists
}

// ReuseListsIn is ReuseLists with every heap carved out of one
// contiguous Neighbor slab (list i owns slab[i·k : (i+1)·k], handed out
// empty with capacity k). Solvers that stream inserts across many lists
// — the blocked brute-force sweep touches lists j, j+1, … in order —
// get sequential heap storage instead of n scattered allocations, which
// is where a large share of their sift time went. The possibly regrown
// slab is returned alongside the lists for the caller's scratch.
func ReuseListsIn(lists []List, slab []Neighbor, n, k int) ([]List, []Neighbor) {
	if cap(lists) < n {
		lists = make([]List, n)
	} else {
		lists = lists[:n]
	}
	if need := n * k; cap(slab) < need {
		slab = make([]Neighbor, need)
	} else {
		slab = slab[:need]
	}
	for i := range lists {
		lists[i].K = k
		lists[i].H = slab[i*k : i*k : (i+1)*k]
	}
	return lists, slab
}

// SumSim returns the sum of retained similarities.
func (l *List) SumSim() float64 {
	s := 0.0
	for i := range l.H {
		s += l.H[i].Sim
	}
	return s
}
