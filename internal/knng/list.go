// Package knng provides the KNN-graph substrate shared by every algorithm
// in this repository: bounded best-k neighbor lists, the graph itself,
// random initialization (the greedy algorithms' starting point), the
// user-by-user merge used by Cluster-and-Conquer's step 3, and the
// average-similarity / quality metrics of §II-A.
package knng

// Neighbor is one directed edge of a KNN graph together with the
// similarity that justified it. Fields are ordered widest-first so the
// struct packs into 16 bytes (instead of 24 with Sim in the middle) —
// graphs store k·n of these.
type Neighbor struct {
	Sim float64
	ID  int32
	// New marks entries that were inserted since the last ResetNew call;
	// the greedy algorithms (Hyrec, NNDescent) use it to avoid
	// re-examining pairs that were already compared.
	New bool
}

// List is a bounded set of the k best neighbors seen so far, maintained as
// a binary min-heap keyed on Sim so the worst retained neighbor is O(1)
// away. The zero List with K set is ready to use.
type List struct {
	K int
	// H is the heap storage; element 0 is the worst neighbor once the
	// list is full. Exposed for read-only iteration.
	H []Neighbor
}

// Len returns the number of neighbors currently held.
func (l *List) Len() int { return len(l.H) }

// Worst returns the smallest similarity currently retained, or -1 when
// the list is not yet full (any candidate is then acceptable).
func (l *List) Worst() float64 {
	if len(l.H) < l.K {
		return -1
	}
	return l.H[0].Sim
}

// Contains reports whether v is already a neighbor. Linear scan: k is
// small (30 in the paper) and the slice is contiguous.
func (l *List) Contains(v int32) bool {
	for i := range l.H {
		if l.H[i].ID == v {
			return true
		}
	}
	return false
}

// Insert offers (v, sim) to the list and reports whether the list changed.
// A candidate is rejected when it is already present or when the list is
// full and sim does not strictly beat the current worst similarity
// (strictness guarantees greedy refinement loops terminate). The O(1)
// threshold rejection runs before the O(k) duplicate scan: on a full
// list — the steady state of every solver's hot loop — most candidates
// are dismissed with a single comparison.
//
// Degenerate similarities are rejected outright: every metric in this
// repository maps into [0, 1], a NaN would slip past the `sim <= worst`
// rejection below (all comparisons with NaN are false) and then poison
// the heap ordering the merge and refinement loops rely on, and a
// negative sim would defeat Worst()'s -1 "not yet full" sentinel.
func (l *List) Insert(v int32, sim float64) bool {
	if sim != sim || sim < 0 {
		return false
	}
	if len(l.H) >= l.K {
		if sim <= l.H[0].Sim || l.Contains(v) {
			return false
		}
		l.H[0] = Neighbor{ID: v, Sim: sim, New: true}
		l.siftDown(0)
		return true
	}
	if l.Contains(v) {
		return false
	}
	l.H = append(l.H, Neighbor{ID: v, Sim: sim, New: true})
	l.siftUp(len(l.H) - 1)
	return true
}

func (l *List) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if l.H[p].Sim <= l.H[i].Sim {
			return
		}
		l.H[p], l.H[i] = l.H[i], l.H[p]
		i = p
	}
}

func (l *List) siftDown(i int) {
	n := len(l.H)
	for {
		least := i
		if c := 2*i + 1; c < n && l.H[c].Sim < l.H[least].Sim {
			least = c
		}
		if c := 2*i + 2; c < n && l.H[c].Sim < l.H[least].Sim {
			least = c
		}
		if least == i {
			return
		}
		l.H[i], l.H[least] = l.H[least], l.H[i]
		i = least
	}
}

// checkHeap verifies the min-heap invariant; used by tests.
func (l *List) checkHeap() bool {
	for i := 1; i < len(l.H); i++ {
		if l.H[(i-1)/2].Sim > l.H[i].Sim {
			return false
		}
	}
	return true
}

// ResetNew appends the ids of neighbors flagged New to dst, clears their
// flags, and returns the extended slice.
func (l *List) ResetNew(dst []int32) []int32 {
	for i := range l.H {
		if l.H[i].New {
			l.H[i].New = false
			dst = append(dst, l.H[i].ID)
		}
	}
	return dst
}

// IDs appends all neighbor ids to dst and returns the extended slice.
func (l *List) IDs(dst []int32) []int32 {
	for i := range l.H {
		dst = append(dst, l.H[i].ID)
	}
	return dst
}

// ReuseLists returns n empty Lists with capacity k, recycling both the
// slice and each List's heap storage from lists. It is the allocation-
// free reset the per-worker cluster solvers rely on: after the first
// few clusters a worker's lists stop allocating entirely.
func ReuseLists(lists []List, n, k int) []List {
	if cap(lists) < n {
		grown := make([]List, n)
		copy(grown, lists[:cap(lists)])
		lists = grown
	} else {
		lists = lists[:n]
	}
	for i := range lists {
		lists[i].K = k
		lists[i].H = lists[i].H[:0]
	}
	return lists
}

// SumSim returns the sum of retained similarities.
func (l *List) SumSim() float64 {
	s := 0.0
	for i := range l.H {
		s += l.H[i].Sim
	}
	return s
}
