// Package minhash implements min-wise hashing over user profiles
// (Broder 1997): function i maps a profile to the minimum of a seeded hash
// over its items, approximating a random permutation of the item universe.
// MinHash underpins the LSH baseline (§IV-B3) and the C²/MinHash ablation
// of Table IV. Unlike FastRandomHash, the hash values range over the full
// 32-bit space, so the induced buckets are "one per item" — the dispersion
// the paper contrasts FRH against (§II-E).
package minhash

import "c2knn/internal/jenkins"

// Family is a set of t independent min-wise hash functions.
type Family struct {
	f *jenkins.Family
}

// New returns a family of t functions derived from seed.
func New(t int, seed int64) *Family {
	return &Family{f: jenkins.NewFamily(t, seed)}
}

// Size returns the number of functions.
func (m *Family) Size() int { return m.f.Size() }

// Value returns the min-hash of profile under function fn:
// min_{i∈profile} h_fn(i). The second return value is false when the
// profile is empty (the min-hash is undefined).
func (m *Family) Value(fn int, profile []int32) (uint32, bool) {
	if len(profile) == 0 {
		return 0, false
	}
	best := m.f.Hash(fn, uint32(profile[0]))
	for _, it := range profile[1:] {
		if h := m.f.Hash(fn, uint32(it)); h < best {
			best = h
		}
	}
	return best, true
}

// Signature returns the t-dimensional min-hash signature of profile.
// Empty profiles yield a zero signature.
func (m *Family) Signature(profile []int32) []uint32 {
	sig := make([]uint32, m.Size())
	for fn := range sig {
		sig[fn], _ = m.Value(fn, profile)
	}
	return sig
}

// EstimateJaccard estimates J(a, b) as the fraction of matching signature
// positions — the classic MinHash estimator, exercised by tests to check
// the family behaves min-wise independently enough.
func EstimateJaccard(sigA, sigB []uint32) float64 {
	if len(sigA) == 0 || len(sigA) != len(sigB) {
		return 0
	}
	match := 0
	for i := range sigA {
		if sigA[i] == sigB[i] {
			match++
		}
	}
	return float64(match) / float64(len(sigA))
}
