// Package minhash implements min-wise hashing over user profiles
// (Broder 1997): function i maps a profile to the minimum of a seeded hash
// over its items, approximating a random permutation of the item universe.
// MinHash underpins the LSH baseline (§IV-B3) and the C²/MinHash ablation
// of Table IV. Unlike FastRandomHash, the hash values range over the full
// 32-bit space, so the induced buckets are "one per item" — the dispersion
// the paper contrasts FRH against (§II-E).
package minhash

import (
	"sort"

	"c2knn/internal/jenkins"
)

// Family is a set of t independent min-wise hash functions.
type Family struct {
	f *jenkins.Family
}

// New returns a family of t functions derived from seed.
func New(t int, seed int64) *Family {
	return &Family{f: jenkins.NewFamily(t, seed)}
}

// Size returns the number of functions.
func (m *Family) Size() int { return m.f.Size() }

// Value returns the min-hash of profile under function fn:
// min_{i∈profile} h_fn(i). The second return value is false when the
// profile is empty (the min-hash is undefined).
func (m *Family) Value(fn int, profile []int32) (uint32, bool) {
	if len(profile) == 0 {
		return 0, false
	}
	best := m.f.Hash(fn, uint32(profile[0]))
	for _, it := range profile[1:] {
		if h := m.f.Hash(fn, uint32(it)); h < best {
			best = h
		}
	}
	return best, true
}

// Signature returns the t-dimensional min-hash signature of profile.
// Empty profiles yield a zero signature.
func (m *Family) Signature(profile []int32) []uint32 {
	sig := make([]uint32, m.Size())
	for fn := range sig {
		sig[fn], _ = m.Value(fn, profile)
	}
	return sig
}

// Bucket groups the users whose min-hash under one function equals
// Value — one cluster of the C²/MinHash ablation.
type Bucket struct {
	Value uint32
	Users []int32
}

// Buckets returns function fn's non-singleton buckets over profiles in
// increasing Value order — the cluster emission consumed by the
// C²/MinHash variant's producer. The deterministic order makes the
// emitted cluster sequence reproducible per configuration, which the
// pipelined build's seeding relies on. Singleton buckets contribute no
// candidate pairs and are skipped, as are empty profiles (their
// min-hash is undefined).
func (m *Family) Buckets(fn int, profiles [][]int32) []Bucket {
	byHash := make(map[uint32][]int32)
	for u, p := range profiles {
		v, ok := m.Value(fn, p)
		if !ok {
			continue
		}
		byHash[v] = append(byHash[v], int32(u))
	}
	values := make([]uint32, 0, len(byHash))
	for v, users := range byHash {
		if len(users) < 2 {
			continue
		}
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	out := make([]Bucket, len(values))
	for i, v := range values {
		out[i] = Bucket{Value: v, Users: byHash[v]}
	}
	return out
}

// EstimateJaccard estimates J(a, b) as the fraction of matching signature
// positions — the classic MinHash estimator, exercised by tests to check
// the family behaves min-wise independently enough.
func EstimateJaccard(sigA, sigB []uint32) float64 {
	if len(sigA) == 0 || len(sigA) != len(sigB) {
		return 0
	}
	match := 0
	for i := range sigA {
		if sigA[i] == sigB[i] {
			match++
		}
	}
	return float64(match) / float64(len(sigA))
}
