package minhash

import (
	"math"
	"math/rand"
	"testing"

	"c2knn/internal/sets"
)

func TestValueEmptyProfile(t *testing.T) {
	f := New(3, 1)
	if _, ok := f.Value(0, nil); ok {
		t.Error("empty profile should have no min-hash")
	}
}

func TestValueIsMin(t *testing.T) {
	f := New(2, 7)
	profile := []int32{3, 17, 99, 250}
	for fn := 0; fn < 2; fn++ {
		got, ok := f.Value(fn, profile)
		if !ok {
			t.Fatal("unexpected undefined value")
		}
		for _, it := range profile {
			// The family is deterministic: recompute single-item hashes
			// via singleton profiles.
			h, _ := f.Value(fn, []int32{it})
			if h < got {
				t.Fatalf("fn %d: Value %d is not the minimum (item %d has %d)", fn, got, it, h)
			}
		}
	}
}

func TestSignatureDeterministic(t *testing.T) {
	f := New(5, 3)
	p := []int32{1, 2, 3}
	a := f.Signature(p)
	b := f.Signature(p)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signature not deterministic")
		}
	}
	if len(a) != 5 {
		t.Errorf("signature length = %d, want 5", len(a))
	}
}

// TestMinHashEstimatesJaccard: the classic property — the fraction of
// matching signature entries estimates the Jaccard similarity.
func TestMinHashEstimatesJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const fns = 800
	f := New(fns, 11)
	for trial := 0; trial < 5; trial++ {
		shared := 10 + rng.Intn(40)
		only := 10 + rng.Intn(40)
		var a, b []int32
		base := int32(trial * 10000)
		for i := 0; i < shared; i++ {
			a = append(a, base+int32(i))
			b = append(b, base+int32(i))
		}
		for i := 0; i < only; i++ {
			a = append(a, base+1000+int32(i))
			b = append(b, base+2000+int32(i))
		}
		a, b = sets.Normalize(a), sets.Normalize(b)
		j := float64(shared) / float64(shared+2*only)
		est := EstimateJaccard(f.Signature(a), f.Signature(b))
		if math.Abs(est-j) > 0.08 {
			t.Errorf("trial %d: estimate %.3f vs exact %.3f (|Δ| > 0.08)", trial, est, j)
		}
	}
}

func TestEstimateJaccardEdgeCases(t *testing.T) {
	if EstimateJaccard(nil, nil) != 0 {
		t.Error("empty signatures should estimate 0")
	}
	if EstimateJaccard([]uint32{1}, []uint32{1, 2}) != 0 {
		t.Error("mismatched lengths should estimate 0")
	}
	if EstimateJaccard([]uint32{5, 6}, []uint32{5, 6}) != 1 {
		t.Error("identical signatures should estimate 1")
	}
}

func TestIdenticalProfilesAlwaysCollide(t *testing.T) {
	f := New(20, 9)
	p := []int32{4, 8, 15, 16, 23, 42}
	q := append([]int32(nil), p...)
	for fn := 0; fn < 20; fn++ {
		a, _ := f.Value(fn, p)
		b, _ := f.Value(fn, q)
		if a != b {
			t.Fatalf("identical profiles diverge under fn %d", fn)
		}
	}
}

func TestBuckets(t *testing.T) {
	f := New(3, 13)
	profiles := [][]int32{
		{1, 2, 3},       // user 0
		{1, 2, 3},       // user 1: identical to 0, must share its bucket
		{},              // user 2: empty, skipped
		{900},           // user 3: almost surely alone -> singleton, skipped
		{1, 2, 3, 4, 5}, // user 4
	}
	for fn := 0; fn < 3; fn++ {
		buckets := f.Buckets(fn, profiles)
		var prev uint32
		users := map[int32]int{}
		for i, b := range buckets {
			if i > 0 && b.Value <= prev {
				t.Fatalf("fn %d: buckets not in increasing value order", fn)
			}
			prev = b.Value
			if len(b.Users) < 2 {
				t.Fatalf("fn %d: singleton bucket emitted", fn)
			}
			for _, u := range b.Users {
				users[u]++
			}
		}
		if users[2] != 0 {
			t.Errorf("fn %d: empty-profile user bucketed", fn)
		}
		// Users 0 and 1 are identical, so whenever either appears they
		// appear together.
		if users[0] != users[1] {
			t.Errorf("fn %d: identical users 0 and 1 split across buckets", fn)
		}
		for u, n := range users {
			if n > 1 {
				t.Errorf("fn %d: user %d in %d buckets", fn, u, n)
			}
		}
	}
}
