// Package schedule implements the lightweight work scheduling of C²'s
// step 2 (§II-F): clusters are stored in a synchronized queue ordered by
// decreasing size and consumed by a pool of workers, so the largest
// clusters start first and stragglers are minimized. A FIFO policy is
// provided for the scheduling ablation benchmarks.
package schedule

import (
	"sort"
	"sync"
	"sync/atomic"
)

// LargestFirst returns job indices ordered by decreasing sizes[i]
// (ties broken by index for determinism).
func LargestFirst(sizes []int) []int {
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if sizes[ia] != sizes[ib] {
			return sizes[ia] > sizes[ib]
		}
		return ia < ib
	})
	return order
}

// FIFO returns job indices 0..n-1 in submission order.
func FIFO(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// Run processes every job in order on `workers` goroutines. The queue is a
// shared atomic cursor over the order slice: each worker repeatedly claims
// the next unprocessed job, which realizes the paper's "synchronized,
// decreasing priority queue" without locking. fn receives the claiming
// worker's index (0..workers-1) alongside the job, so callers can keep
// per-worker scratch state without synchronization. Run returns once
// every job has completed.
func Run(workers int, order []int, fn func(worker, job int)) {
	if workers < 1 {
		workers = 1
	}
	if len(order) == 0 {
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(order) {
					return
				}
				fn(worker, order[i])
			}
		}(w)
	}
	wg.Wait()
}
