package schedule

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// Property-based coverage for Queue: the example-based tests in
// queue_test.go pin individual behaviours; these generate hundreds of
// random workloads and check the invariants that the pipelined build
// actually depends on — no item is ever lost or duplicated under any
// Push/Pop/Close interleaving, and delivery order follows the declared
// discipline (largest-first with arrival tiebreak, or FIFO).

// popAll drains a closed queue from one goroutine.
func popAll[T any](q *Queue[T]) []T {
	var out []T
	for {
		v, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// TestQueuePropertyLargestFirstPopsInSizeOrder: for random push
// sequences, draining afterwards must yield exactly the (size desc,
// arrival asc) order — the streaming generalization of the paper's
// decreasing priority queue, checked against a reference sort.
func TestQueuePropertyLargestFirstPopsInSizeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC2))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(120)
		type item struct{ id, size int }
		items := make([]item, n)
		q := NewQueue[int](false)
		for i := range items {
			// A narrow size range forces plenty of ties.
			items[i] = item{id: i, size: rng.Intn(8)}
			q.Push(items[i].id, items[i].size)
		}
		q.Close()
		want := append([]item(nil), items...)
		sort.SliceStable(want, func(a, b int) bool { return want[a].size > want[b].size })
		got := popAll(q)
		if len(got) != n {
			t.Fatalf("trial %d: popped %d of %d items", trial, len(got), n)
		}
		for i, id := range got {
			if id != want[i].id {
				t.Fatalf("trial %d: pop %d returned item %d (size %d), want item %d (size %d)",
					trial, i, id, items[id].size, want[i].id, want[i].size)
			}
		}
	}
}

// TestQueuePropertyFIFOOrder: in FIFO mode, any push sequence drains in
// exact arrival order.
func TestQueuePropertyFIFOOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(0xF1F0))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(120)
		q := NewQueue[int](true)
		for i := 0; i < n; i++ {
			q.Push(i, rng.Intn(1000)) // size must be irrelevant in FIFO mode
		}
		q.Close()
		got := popAll(q)
		if len(got) != n {
			t.Fatalf("trial %d: popped %d of %d items", trial, len(got), n)
		}
		for i, id := range got {
			if id != i {
				t.Fatalf("trial %d: pop %d returned item %d, want %d", trial, i, id, i)
			}
		}
	}
}

// TestQueuePropertyInterleavedPopsReturnCurrentMax: a single goroutine
// interleaves pushes and pops at random; every pop must return the
// largest (earliest on ties) of the items pushed-but-not-yet-popped,
// tracked by a reference model.
func TestQueuePropertyInterleavedPopsReturnCurrentMax(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		type item struct{ seq, size int }
		var model []item // items pushed and not yet popped
		q := NewQueue[int](false)
		pushed := 0
		for op := 0; op < 200; op++ {
			if len(model) == 0 || rng.Intn(2) == 0 {
				it := item{seq: pushed, size: rng.Intn(10)}
				q.Push(it.seq, it.size)
				model = append(model, it)
				pushed++
				continue
			}
			best := 0
			for i, it := range model {
				if it.size > model[best].size {
					best = i
				}
			}
			v, ok := q.Pop()
			if !ok {
				t.Fatalf("trial %d: Pop reported closed with %d items outstanding", trial, len(model))
			}
			if want := model[best].seq; v != want {
				t.Fatalf("trial %d op %d: Pop = item %d, want current max item %d", trial, op, v, want)
			}
			model = append(model[:best], model[best+1:]...)
		}
		if q.Len() != len(model) {
			t.Fatalf("trial %d: Len = %d, model holds %d", trial, q.Len(), len(model))
		}
		if q.Pushed() != pushed {
			t.Fatalf("trial %d: Pushed = %d, want %d", trial, q.Pushed(), pushed)
		}
		q.Close()
		if got := popAll(q); len(got) != len(model) {
			t.Fatalf("trial %d: drain returned %d items, model holds %d", trial, len(got), len(model))
		}
	}
}

// TestQueuePropertyNoLossNoDupUnderConcurrency: random producer/
// consumer/mode combinations with Close racing the consumers. Every
// pushed item must be popped exactly once, across both modes, with
// Pushed/Len/MaxDepth staying consistent.
func TestQueuePropertyNoLossNoDupUnderConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		producers := 1 + rng.Intn(4)
		consumers := 1 + rng.Intn(4)
		perProducer := rng.Intn(150)
		fifo := rng.Intn(2) == 1
		total := producers * perProducer
		q := NewQueue[int](fifo)

		var wgProd sync.WaitGroup
		for p := 0; p < producers; p++ {
			wgProd.Add(1)
			go func(p int, seed int64) {
				defer wgProd.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < perProducer; i++ {
					q.Push(p*perProducer+i, r.Intn(64))
					if r.Intn(8) == 0 {
						runtime.Gosched()
					}
				}
			}(p, rng.Int63())
		}

		results := make([][]int, consumers)
		var wgCons sync.WaitGroup
		for c := 0; c < consumers; c++ {
			wgCons.Add(1)
			go func(c int) {
				defer wgCons.Done()
				for {
					v, ok := q.Pop()
					if !ok {
						return
					}
					results[c] = append(results[c], v)
				}
			}(c)
		}

		wgProd.Wait()
		q.Close()
		wgCons.Wait()

		seen := make([]int, total)
		popped := 0
		for _, rs := range results {
			for _, v := range rs {
				if v < 0 || v >= total {
					t.Fatalf("trial %d: popped out-of-range item %d", trial, v)
				}
				seen[v]++
				popped++
			}
		}
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("trial %d (fifo=%v, %dp/%dc): item %d popped %d times, want exactly once",
					trial, fifo, producers, consumers, v, n)
			}
		}
		if popped != total {
			t.Fatalf("trial %d: popped %d of %d items", trial, popped, total)
		}
		if q.Pushed() != total {
			t.Fatalf("trial %d: Pushed = %d, want %d", trial, q.Pushed(), total)
		}
		if q.Len() != 0 {
			t.Fatalf("trial %d: Len = %d after full drain", trial, q.Len())
		}
		if d := q.MaxDepth(); d < 0 || d > total {
			t.Fatalf("trial %d: MaxDepth = %d outside [0, %d]", trial, d, total)
		}
		// Post-close pops must keep reporting done without blocking.
		if _, ok := q.Pop(); ok {
			t.Fatalf("trial %d: Pop returned an item after drain", trial)
		}
	}
}

// TestQueuePropertyCloseWakesAllBlockedConsumers: consumers block on an
// empty queue; Close must release every one of them exactly once, with
// any concurrently pushed items delivered exactly once.
func TestQueuePropertyCloseWakesAllBlockedConsumers(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		consumers := 2 + rng.Intn(6)
		late := rng.Intn(5) // items pushed while consumers are blocked
		q := NewQueue[int](rng.Intn(2) == 1)
		var wg sync.WaitGroup
		got := make(chan int, consumers*4)
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					v, ok := q.Pop()
					if !ok {
						return
					}
					got <- v
				}
			}()
		}
		runtime.Gosched()
		for i := 0; i < late; i++ {
			q.Push(i, i)
		}
		q.Close()
		wg.Wait()
		close(got)
		seen := make(map[int]int)
		for v := range got {
			seen[v]++
		}
		if len(seen) != late {
			t.Fatalf("trial %d: %d distinct items delivered, want %d", trial, len(seen), late)
		}
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("trial %d: item %d delivered %d times", trial, v, n)
			}
		}
	}
}
