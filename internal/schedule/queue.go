package schedule

import "sync"

// Queue is the concurrent cluster queue of the pipelined C² build: the
// clustering configurations push finalized clusters as they discover
// them, while the solver pool pops concurrently — so step 2 starts on
// the first clusters while step 1 is still hashing. Pop hands out the
// largest currently-available item (the streaming generalization of the
// paper's "synchronized, decreasing priority queue", §II-F); a FIFO
// mode preserves arrival order for the scheduling ablation.
//
// All methods are safe for concurrent use by any number of producers
// and consumers.
type Queue[T any] struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	items    []queueItem[T] // largest-first heap, or FIFO backlog from head
	head     int            // FIFO read cursor (heap mode keeps it 0)
	fifo     bool
	closed   bool
	seq      int64 // total items ever pushed; also the arrival tiebreak
	maxDepth int
}

type queueItem[T any] struct {
	v    T
	size int
	seq  int64
}

// NewQueue returns an empty queue. fifo selects arrival-order delivery
// instead of largest-first.
func NewQueue[T any](fifo bool) *Queue[T] {
	q := &Queue[T]{fifo: fifo}
	q.notEmpty.L = &q.mu
	return q
}

// Push makes (v, size) available to consumers. Pushing to a closed
// queue panics: it indicates a producer outliving Close.
func (q *Queue[T]) Push(v T, size int) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		panic("schedule: Push on closed Queue")
	}
	q.items = append(q.items, queueItem[T]{v: v, size: size, seq: q.seq})
	q.seq++
	if !q.fifo {
		q.up(len(q.items) - 1)
	}
	if d := len(q.items) - q.head; d > q.maxDepth {
		q.maxDepth = d
	}
	q.mu.Unlock()
	q.notEmpty.Signal()
}

// Close marks the end of production: consumers drain the backlog, then
// Pop reports ok=false. Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
}

// Pop blocks until an item is available or the queue is closed and
// drained, in which case it returns ok=false. In the default mode the
// returned item is the largest among those currently available (ties
// broken by arrival order); in FIFO mode it is the oldest.
func (q *Queue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items)-q.head == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if len(q.items)-q.head == 0 {
		return v, false
	}
	if q.fifo {
		v = q.items[q.head].v
		q.items[q.head] = queueItem[T]{} // release the payload
		q.head++
		if q.head > len(q.items)/2 {
			n := copy(q.items, q.items[q.head:])
			clear(q.items[n:])
			q.items = q.items[:n]
			q.head = 0
		}
		return v, true
	}
	v = q.items[0].v
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = queueItem[T]{}
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return v, true
}

// Len returns the number of items currently waiting.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

// Pushed returns the total number of items ever pushed.
func (q *Queue[T]) Pushed() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return int(q.seq)
}

// MaxDepth returns the high-water mark of waiting items — how far
// production ran ahead of consumption.
func (q *Queue[T]) MaxDepth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.maxDepth
}

// before orders the heap: larger sizes first, earlier arrivals on ties
// (mirroring LargestFirst's tie-by-index determinism).
func (q *Queue[T]) before(a, b queueItem[T]) bool {
	if a.size != b.size {
		return a.size > b.size
	}
	return a.seq < b.seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.before(q.items[i], q.items[p]) {
			return
		}
		q.items[p], q.items[i] = q.items[i], q.items[p]
		i = p
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		best := i
		if c := 2*i + 1; c < n && q.before(q.items[c], q.items[best]) {
			best = c
		}
		if c := 2*i + 2; c < n && q.before(q.items[c], q.items[best]) {
			best = c
		}
		if best == i {
			return
		}
		q.items[i], q.items[best] = q.items[best], q.items[i]
		i = best
	}
}
