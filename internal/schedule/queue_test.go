package schedule

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueLargestFirstWhenPrefilled(t *testing.T) {
	q := NewQueue[int](false)
	sizes := []int{3, 9, 1, 9, 5}
	for i, s := range sizes {
		q.Push(i, s)
	}
	q.Close()
	want := []int{1, 3, 4, 0, 2} // 9(first pushed), 9, 5, 3, 1
	for _, w := range want {
		v, ok := q.Pop()
		if !ok || v != w {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on drained closed queue must report ok=false")
	}
}

func TestQueueFIFOMode(t *testing.T) {
	q := NewQueue[int](true)
	for i := 0; i < 10; i++ {
		q.Push(i, 10-i) // sizes decreasing: FIFO must ignore them
	}
	q.Close()
	for i := 0; i < 10; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("FIFO Pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
}

func TestQueuePrioritizesAmongAvailable(t *testing.T) {
	// A small item pushed first is popped only after a larger one that
	// arrived before the consumer looked.
	q := NewQueue[string](false)
	q.Push("small", 1)
	q.Push("large", 100)
	v, _ := q.Pop()
	if v != "large" {
		t.Errorf("Pop = %q, want the larger available item", v)
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := NewQueue[int](false)
	got := make(chan int)
	go func() {
		v, ok := q.Pop()
		if !ok {
			t.Error("Pop returned ok=false before Close")
		}
		got <- v
	}()
	time.Sleep(5 * time.Millisecond) // let the consumer block
	q.Push(42, 1)
	select {
	case v := <-got:
		if v != 42 {
			t.Errorf("Pop = %d, want 42", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop did not wake on Push")
	}
	q.Close()
}

// TestQueueCloseWhilePop: consumers blocked inside Pop must all wake and
// report ok=false once the queue closes empty.
func TestQueueCloseWhilePop(t *testing.T) {
	for _, fifo := range []bool{false, true} {
		q := NewQueue[int](fifo)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, ok := q.Pop(); ok {
					t.Error("Pop returned an item from an empty closed queue")
				}
			}()
		}
		time.Sleep(5 * time.Millisecond) // let consumers block
		q.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("consumers did not wake on Close")
		}
	}
}

// TestQueueConcurrentProducersConsumers is the pipeline shape under
// -race: several producers stream items while consumers drain, Close
// fires after the last push, and every item is delivered exactly once.
func TestQueueConcurrentProducersConsumers(t *testing.T) {
	for _, fifo := range []bool{false, true} {
		const producers, consumers, perProducer = 4, 6, 500
		q := NewQueue[int](fifo)
		var prodWG sync.WaitGroup
		for p := 0; p < producers; p++ {
			prodWG.Add(1)
			go func(p int) {
				defer prodWG.Done()
				for i := 0; i < perProducer; i++ {
					id := p*perProducer + i
					q.Push(id, id%97)
				}
			}(p)
		}
		go func() { prodWG.Wait(); q.Close() }()

		seen := make([]atomic.Int32, producers*perProducer)
		var consWG sync.WaitGroup
		for c := 0; c < consumers; c++ {
			consWG.Add(1)
			go func() {
				defer consWG.Done()
				for {
					v, ok := q.Pop()
					if !ok {
						return
					}
					seen[v].Add(1)
				}
			}()
		}
		consWG.Wait()
		for i := range seen {
			if n := seen[i].Load(); n != 1 {
				t.Fatalf("fifo=%v: item %d delivered %d times", fifo, i, n)
			}
		}
		if q.Pushed() != producers*perProducer {
			t.Errorf("Pushed = %d, want %d", q.Pushed(), producers*perProducer)
		}
		if q.MaxDepth() < 1 || q.MaxDepth() > producers*perProducer {
			t.Errorf("MaxDepth = %d out of range", q.MaxDepth())
		}
		if q.Len() != 0 {
			t.Errorf("Len = %d after drain, want 0", q.Len())
		}
	}
}

func TestQueuePushAfterClosePanics(t *testing.T) {
	q := NewQueue[int](false)
	q.Close()
	defer func() {
		if recover() == nil {
			t.Error("Push after Close should panic")
		}
	}()
	q.Push(1, 1)
}
