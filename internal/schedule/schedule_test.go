package schedule

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestLargestFirstOrdering(t *testing.T) {
	sizes := []int{3, 9, 1, 9, 5}
	order := LargestFirst(sizes)
	want := []int{1, 3, 4, 0, 2} // 9(idx1), 9(idx3 — tie by index), 5, 3, 1
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order = %v, want %v", order, want)
			break
		}
	}
}

func TestLargestFirstIsPermutation(t *testing.T) {
	f := func(raw []uint8) bool {
		sizes := make([]int, len(raw))
		for i, v := range raw {
			sizes[i] = int(v)
		}
		order := LargestFirst(sizes)
		if len(order) != len(sizes) {
			return false
		}
		seen := make(map[int]bool)
		for i, idx := range order {
			if idx < 0 || idx >= len(sizes) || seen[idx] {
				return false
			}
			seen[idx] = true
			if i > 0 && sizes[order[i-1]] < sizes[idx] {
				return false // not decreasing
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFIFO(t *testing.T) {
	order := FIFO(4)
	for i, v := range order {
		if v != i {
			t.Errorf("FIFO = %v", order)
			break
		}
	}
	if len(FIFO(0)) != 0 {
		t.Error("FIFO(0) should be empty")
	}
}

func TestRunExecutesEveryJobExactlyOnce(t *testing.T) {
	const jobs = 500
	counts := make([]atomic.Int32, jobs)
	Run(8, FIFO(jobs), func(_, job int) {
		counts[job].Add(1)
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times", i, got)
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	ran := false
	Run(4, nil, func(int, int) { ran = true })
	if ran {
		t.Error("callback invoked with no jobs")
	}
}

func TestRunSingleWorkerPreservesOrder(t *testing.T) {
	var mu sync.Mutex
	var got []int
	order := []int{4, 2, 0, 3, 1}
	Run(1, order, func(_, job int) {
		mu.Lock()
		got = append(got, job)
		mu.Unlock()
	})
	for i := range order {
		if got[i] != order[i] {
			t.Fatalf("single worker order = %v, want %v", got, order)
		}
	}
}

func TestRunClampsWorkers(t *testing.T) {
	n := 0
	Run(0, FIFO(3), func(int, int) { n++ }) // workers < 1 clamps to 1
	if n != 3 {
		t.Errorf("ran %d jobs, want 3", n)
	}
}

// TestRunLargestFirstReducesMakespan is a coarse behavioural check: with
// one straggler job and many small ones, starting the straggler first
// cannot be slower than starting it last.
func TestRunConcurrent(t *testing.T) {
	sizes := make([]int, 64)
	for i := range sizes {
		sizes[i] = i
	}
	var total atomic.Int64
	Run(4, LargestFirst(sizes), func(_, job int) {
		total.Add(int64(sizes[job]))
	})
	want := int64(63 * 64 / 2)
	if total.Load() != want {
		t.Errorf("total = %d, want %d", total.Load(), want)
	}
}
