package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"c2knn/internal/dataset"
	"c2knn/internal/frh"
	"c2knn/internal/knng"
)

func testManifest() *Manifest {
	ranges := frh.PartitionBuckets(frh.DefaultShardBuckets, 3)
	m := &Manifest{Buckets: frh.DefaultShardBuckets, Epoch: 1723100000}
	for i, r := range ranges {
		m.Shards = append(m.Shards, ShardEntry{
			ID: i, Range: r, Path: "index.c2.shard" + string(rune('0'+i)),
			CRC: uint32(0xdead0000 + i), Epoch: m.Epoch, Users: 100 * (i + 1),
		})
	}
	return m
}

func TestManifestRoundTrip(t *testing.T) {
	m := testManifest()
	var buf bytes.Buffer
	if err := EncodeManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Buckets != m.Buckets || got.Epoch != m.Epoch || len(got.Shards) != len(m.Shards) {
		t.Fatalf("round trip mangled the header: %+v vs %+v", got, m)
	}
	for i := range m.Shards {
		if got.Shards[i] != m.Shards[i] {
			t.Fatalf("shard %d round-tripped as %+v, want %+v", i, got.Shards[i], m.Shards[i])
		}
	}
}

func TestManifestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.c2.manifest")
	m := testManifest()
	if err := WriteManifestFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Shards) != 3 || got.Shards[2].CRC != m.Shards[2].CRC {
		t.Fatalf("file round trip mangled shards: %+v", got.Shards)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after atomic write")
	}
}

// Every flipped byte must be detected: the payload is checksummed and
// the header fields are plausibility-bounded.
func TestManifestCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeManifest(&buf, testManifest()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for off := 0; off < len(raw); off++ {
		mut := slices.Clone(raw)
		mut[off] ^= 0x40
		if _, err := DecodeManifest(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte flip at offset %d went undetected", off)
		}
	}
	// Truncations at every length.
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeManifest(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
	// Trailing junk.
	if _, err := DecodeManifest(bytes.NewReader(append(slices.Clone(raw), 0))); err == nil {
		t.Fatal("trailing byte went undetected")
	}
}

func TestManifestVersionSkew(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeManifest(&buf, testManifest()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8] = 99 // version field
	_, err := DecodeManifest(bytes.NewReader(raw))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew classified as %v, want ErrVersion", err)
	}
}

func TestManifestValidateRejectsBadLayouts(t *testing.T) {
	base := testManifest()
	mutate := func(f func(*Manifest)) *Manifest {
		m := &Manifest{Buckets: base.Buckets, Epoch: base.Epoch, Shards: slices.Clone(base.Shards)}
		f(m)
		return m
	}
	cases := map[string]*Manifest{
		"gap":            mutate(func(m *Manifest) { m.Shards[1].Range.Lo++ }),
		"overlap":        mutate(func(m *Manifest) { m.Shards[1].Range.Lo-- }),
		"short cover":    mutate(func(m *Manifest) { m.Shards[2].Range.Hi-- }),
		"id out of seq":  mutate(func(m *Manifest) { m.Shards[1].ID = 5 }),
		"epoch mismatch": mutate(func(m *Manifest) { m.Shards[0].Epoch++ }),
		"empty path":     mutate(func(m *Manifest) { m.Shards[0].Path = "" }),
		"no shards":      {Buckets: 16, Epoch: 1},
	}
	for name, m := range cases {
		if err := m.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted a broken layout", name)
		}
		var buf bytes.Buffer
		if err := EncodeManifest(&buf, m); err == nil {
			t.Fatalf("%s: EncodeManifest accepted a broken layout", name)
		}
	}
}

// MaskFrozen must keep owned rows bit-identical and empty the rest,
// and the masked graph must still validate (ids are global).
func TestMaskFrozenAndPartition(t *testing.T) {
	// A small synthetic frozen graph: 40 users, ring-ish edges.
	g := knng.New(40, 4)
	for u := int32(0); u < 40; u++ {
		for d := int32(1); d <= 3; d++ {
			g.Insert(u, (u+d)%40, 1.0/float64(d))
		}
	}
	f := g.Freeze()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	owns := func(u int32) bool { return u%3 == 0 }
	masked := MaskFrozen(f, owns)
	if err := masked.Validate(); err != nil {
		t.Fatalf("masked graph does not validate: %v", err)
	}
	if masked.NumUsers() != f.NumUsers() {
		t.Fatalf("masking changed the user space: %d vs %d", masked.NumUsers(), f.NumUsers())
	}
	for u := int32(0); u < 40; u++ {
		ids, sims := masked.Neighbors(u)
		if owns(u) {
			wantIDs, wantSims := f.Neighbors(u)
			if !slices.Equal(ids, wantIDs) || !slices.Equal(sims, wantSims) {
				t.Fatalf("owned user %d row changed under masking", u)
			}
		} else if len(ids) != 0 {
			t.Fatalf("non-owned user %d kept %d edges", u, len(ids))
		}
	}

	// PartitionSnapshot: every user owned exactly once across shards,
	// per-shard counts consistent, dataset shared.
	profiles := make([][]int32, 40)
	for u := range profiles {
		profiles[u] = []int32{int32(u % 7), int32(7 + u%5)}
	}
	ds := &dataset.Dataset{Name: "t", NumItems: 16, Profiles: profiles}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Graph: f, Train: ds}
	ranges := frh.PartitionBuckets(frh.DefaultShardBuckets, 2)
	shards, users, err := PartitionSnapshot(snap, frh.DefaultShardBuckets, ranges)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 || users[0]+users[1] != 40 {
		t.Fatalf("partition lost users: counts %v", users)
	}
	totalEdges := 0
	for i, sh := range shards {
		if sh.Train != ds {
			t.Fatalf("shard %d does not share the dataset", i)
		}
		if err := sh.Graph.Validate(); err != nil {
			t.Fatalf("shard %d graph invalid: %v", i, err)
		}
		totalEdges += sh.Graph.NumEdges()
		owned := 0
		for u := int32(0); u < 40; u++ {
			mine := frh.ShardOf(u, frh.DefaultShardBuckets, ranges) == i
			ids, _ := sh.Graph.Neighbors(u)
			if mine {
				owned++
				wantIDs, _ := f.Neighbors(u)
				if !slices.Equal(ids, wantIDs) {
					t.Fatalf("shard %d user %d row diverged", i, u)
				}
			} else if len(ids) != 0 {
				t.Fatalf("shard %d serves foreign user %d", i, u)
			}
		}
		if owned != users[i] {
			t.Fatalf("shard %d reports %d users, counted %d", i, users[i], owned)
		}
	}
	if totalEdges != f.NumEdges() {
		t.Fatalf("shards hold %d edges, original %d — partition must conserve edges", totalEdges, f.NumEdges())
	}

	// Each shard snapshot must round-trip through the codec (the real
	// artifact path c2build writes and c2serve loads).
	var buf bytes.Buffer
	if err := Encode(&buf, shards[0]); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Graph.NumEdges() != shards[0].Graph.NumEdges() {
		t.Fatalf("shard snapshot round trip changed edges: %d vs %d",
			back.Graph.NumEdges(), shards[0].Graph.NumEdges())
	}
}

func TestFileCRC32C(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	if err := os.WriteFile(p, []byte("hello crc"), 0o644); err != nil {
		t.Fatal(err)
	}
	c1, err := FileCRC32C(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("hello crd"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := FileCRC32C(p)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("CRC did not change with content")
	}
}
