//go:build !unix

package persist

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errors.New("mmap not supported on this platform")
}

func munmap(b []byte) error { return nil }
