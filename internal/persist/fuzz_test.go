package persist

import (
	"bytes"
	"testing"
)

// FuzzDecode drives arbitrary bytes through both snapshot decoders.
// The invariants: never panic, never return a snapshot alongside an
// error, anything that decodes successfully must survive a re-encode /
// re-decode cycle (i.e. only self-consistent snapshots are accepted),
// and the streaming copy decoder and the whole-image view decoder (the
// mmap path, run over a 64-byte-aligned copy) must agree on accept vs
// reject for every input — the property that makes load-mode fallback
// safe.
func FuzzDecode(f *testing.F) {
	f.Add(encodeBytes(f, tinySnapshot(f)))
	v1, _ := v1TinyFile(f)
	f.Add(v1)
	full := tinySnapshot(f)
	f.Add(encodeBytes(f, &Snapshot{Graph: full.Graph}))
	f.Add(encodeBytes(f, &Snapshot{Train: full.Train}))
	f.Add(encodeBytes(f, &Snapshot{GoldFinger: full.GoldFinger}))
	f.Add([]byte("C2SNAP\r\n"))
	f.Add([]byte{})
	corrupt := encodeBytes(f, full)
	corrupt[len(corrupt)/2] ^= 0x10
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(bytes.NewReader(data))
		vsnap, verr := decodeAll(alignedCopy(data), true)
		if (err == nil) != (verr == nil) {
			t.Fatalf("copy/view decoders disagree: copy err=%v, view err=%v", err, verr)
		}
		if verr != nil && vsnap != nil {
			t.Fatal("view decode returned a snapshot together with an error")
		}
		if err != nil {
			if snap != nil {
				t.Fatal("Decode returned a snapshot together with an error")
			}
			return
		}
		if snap == nil || (snap.Graph == nil && snap.Train == nil && snap.GoldFinger == nil) {
			t.Fatal("Decode succeeded with an empty snapshot")
		}
		var buf bytes.Buffer
		if err := Encode(&buf, snap); err != nil {
			t.Fatalf("re-encode of an accepted snapshot failed: %v", err)
		}
		again, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil || again == nil {
			t.Fatalf("re-decode of a re-encoded snapshot failed: %v", err)
		}
	})
}
