//go:build unix

package persist

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform has the mmap syscalls the
// zero-copy load path needs; the !unix stub sets it false and LoadAuto
// falls back to copy-decode.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared (replicas of one
// host share the page-cache copy).
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}
