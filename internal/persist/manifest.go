package persist

// The shard manifest: the versioned artifact that describes one build
// partitioned across N snapshot shards. c2build -shards writes it next
// to the shard snapshots; c2serve -role router reads it to construct
// its immutable-after-start shard table. See doc.go ("Shard manifest
// format") for the byte-level spec.
//
// A manifest answers three questions the router and operators need:
// which bucket range each shard owns (frh.ShardKey space), which
// snapshot file serves it (path + whole-file CRC-32C, so a copied or
// regenerated file can be verified against the layout it claims to
// implement), and which build generation the shards came from (Epoch —
// shards from different builds must never serve behind one router, or
// cross-shard answers would mix graphs).

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"c2knn/internal/frh"
	"c2knn/internal/knng"
)

// ManifestVersion is the shard-manifest format version this build reads
// and writes.
const ManifestVersion = 1

var manifestMagic = [8]byte{'C', '2', 'M', 'A', 'N', 'I', '\r', '\n'}

// maxManifestShards bounds the shard count a decoder will accept; a
// corrupted count field beyond it fails fast. 4096 shards is the whole
// default key space at one bucket per shard.
const maxManifestShards = 4096

// ShardEntry describes one shard of a partitioned build.
type ShardEntry struct {
	// ID is the shard's index in [0, len(Shards)); routers key replica
	// address lists by it.
	ID int
	// Range is the inclusive shard-key bucket range the shard owns.
	Range frh.BucketRange
	// Path is the shard's snapshot file, relative to the manifest's own
	// directory (so the build tree can be moved or copied wholesale).
	Path string
	// CRC is the CRC-32C of the snapshot file's full contents.
	CRC uint32
	// Epoch is the build generation the shard was partitioned from; all
	// entries of one manifest share it (duplicated per entry so a lone
	// entry pasted into another manifest is detectable).
	Epoch uint64
	// Users is the number of users the shard owns (its graph rows are
	// non-empty only for those).
	Users int
}

// Manifest is the shard layout of one partitioned build.
type Manifest struct {
	// Buckets is the shard-key space size the ranges partition
	// (frh.ShardKey's second argument). Routers must hash with exactly
	// this value.
	Buckets int
	// Epoch is the build generation stamp (c2build uses the build's
	// unix time).
	Epoch uint64
	// Shards lists the shards in id order; their ranges must be
	// disjoint and cover [1, Buckets] completely.
	Shards []ShardEntry
}

// Validate checks the layout invariants a router relies on: ids dense
// in order, ranges valid, sorted, disjoint, covering the whole key
// space (no user may be unroutable), and epochs consistent.
func (m *Manifest) Validate() error {
	if m.Buckets < 1 {
		return fmt.Errorf("persist: manifest has %d buckets", m.Buckets)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("persist: manifest lists no shards")
	}
	next := uint32(1)
	for i, sh := range m.Shards {
		if sh.ID != i {
			return fmt.Errorf("persist: shard %d carries id %d; ids must be dense and ordered", i, sh.ID)
		}
		if err := sh.Range.Validate(m.Buckets); err != nil {
			return err
		}
		if sh.Range.Lo != next {
			return fmt.Errorf("persist: shard %d range starts at bucket %d, want %d (ranges must tile [1, %d])",
				i, sh.Range.Lo, next, m.Buckets)
		}
		next = sh.Range.Hi + 1
		if sh.Epoch != m.Epoch {
			return fmt.Errorf("persist: shard %d epoch %d differs from manifest epoch %d", i, sh.Epoch, m.Epoch)
		}
		if sh.Path == "" {
			return fmt.Errorf("persist: shard %d has no snapshot path", i)
		}
		if sh.Users < 0 {
			return fmt.Errorf("persist: shard %d has negative user count", i)
		}
	}
	if next != uint32(m.Buckets)+1 {
		return fmt.Errorf("persist: shard ranges end at bucket %d, want %d", next-1, m.Buckets)
	}
	return nil
}

// Ranges returns the shards' bucket ranges in id order — the slice
// frh.ShardOf/OwnersOf take.
func (m *Manifest) Ranges() []frh.BucketRange {
	out := make([]frh.BucketRange, len(m.Shards))
	for i := range m.Shards {
		out[i] = m.Shards[i].Range
	}
	return out
}

// EncodeManifest writes m to w in the manifest format.
func EncodeManifest(w io.Writer, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	var payload []byte
	payload = binary.LittleEndian.AppendUint64(payload, m.Epoch)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(m.Buckets))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(m.Shards)))
	for _, sh := range m.Shards {
		if len(sh.Path) > math.MaxUint16 {
			return fmt.Errorf("persist: shard %d path longer than %d bytes", sh.ID, math.MaxUint16)
		}
		payload = binary.LittleEndian.AppendUint32(payload, uint32(sh.ID))
		payload = binary.LittleEndian.AppendUint32(payload, sh.Range.Lo)
		payload = binary.LittleEndian.AppendUint32(payload, sh.Range.Hi)
		payload = binary.LittleEndian.AppendUint64(payload, sh.Epoch)
		payload = binary.LittleEndian.AppendUint32(payload, sh.CRC)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(sh.Users))
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(sh.Path)))
		payload = append(payload, sh.Path...)
	}
	hdr := make([]byte, 0, 20)
	hdr = append(hdr, manifestMagic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, ManifestVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, crcTable))
	_, err := w.Write(crc[:])
	return err
}

// DecodeManifest reads a manifest from r. Like Decode it never panics
// on hostile input and never returns a partially populated manifest:
// the payload is checksummed, every length validated, and the decoded
// layout must pass Validate.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: manifest header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:8], manifestMagic[:]) {
		return nil, fmt.Errorf("%w: bad manifest magic %q", ErrCorrupt, hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != ManifestVersion {
		return nil, fmt.Errorf("%w: manifest has version %d, this build reads %d", ErrVersion, v, ManifestVersion)
	}
	length := binary.LittleEndian.Uint64(hdr[12:20])
	// 16 bytes of fixed payload plus 34 per shard is the minimum; the
	// section-style chunked read bounds memory against a lying length.
	payload, err := readPayload(r, length)
	if err != nil {
		return nil, fmt.Errorf("%w: manifest payload: %v", ErrCorrupt, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return nil, fmt.Errorf("%w: manifest checksum: %v", ErrCorrupt, err)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(crc[:]); got != want {
		return nil, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	var probe [1]byte
	if _, err := io.ReadFull(r, probe[:]); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after manifest", ErrCorrupt)
	}
	if len(payload) < 16 {
		return nil, fmt.Errorf("%w: manifest payload too short (%d bytes)", ErrCorrupt, len(payload))
	}
	d := &dec{b: payload}
	m := &Manifest{}
	m.Epoch = d.u64()
	m.Buckets = int(d.u32())
	count := d.u32()
	if count == 0 || count > maxManifestShards {
		return nil, fmt.Errorf("%w: implausible shard count %d", ErrCorrupt, count)
	}
	for i := uint32(0); i < count; i++ {
		if len(payload)-d.off < 34 {
			return nil, fmt.Errorf("%w: manifest truncated inside shard %d", ErrCorrupt, i)
		}
		var sh ShardEntry
		sh.ID = int(d.u32())
		sh.Range.Lo = d.u32()
		sh.Range.Hi = d.u32()
		sh.Epoch = d.u64()
		sh.CRC = d.u32()
		sh.Users = int(d.u64())
		pathLen := int(d.u16())
		if len(payload)-d.off < pathLen {
			return nil, fmt.Errorf("%w: manifest truncated inside shard %d path", ErrCorrupt, i)
		}
		sh.Path = string(payload[d.off : d.off+pathLen])
		d.off += pathLen
		m.Shards = append(m.Shards, sh)
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("%w: %d stray bytes after the last shard entry", ErrCorrupt, len(payload)-d.off)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return m, nil
}

// WriteManifestFile atomically writes m to path (same unique-temp,
// fsync-rename discipline as WriteFile).
func WriteManifestFile(path string, m *Manifest) error {
	return writeFileAtomic(path, func(w io.Writer) error { return EncodeManifest(w, m) })
}

// ReadManifestFile loads a manifest from path.
func ReadManifestFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeManifest(bufio.NewReader(f))
}

// FileCRC32C returns the CRC-32C of a file's full contents — the value
// recorded per shard in a manifest.
func FileCRC32C(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc32.New(crcTable)
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}

// MaskFrozen returns a copy of f keeping only the adjacency rows of
// users owns reports true for; every other user's row is empty. The
// user-id space is unchanged — neighbor ids still reference global ids —
// so a masked graph validates and serves exactly like the original for
// owned users, while its edge storage shrinks to the owned share. This
// is the per-shard serving artifact: the shard answers its own users
// bit-for-bit identically to the unpartitioned snapshot and answers
// empty for everyone else (whom the router never sends it).
func MaskFrozen(f *knng.Frozen, owns func(u int32) bool) *knng.Frozen {
	n := f.NumUsers()
	kept := 0
	for u := 0; u < n; u++ {
		if owns(int32(u)) {
			kept += f.Degree(int32(u))
		}
	}
	out := &knng.Frozen{
		K:       f.K,
		Offsets: make([]int64, n+1),
		IDs:     make([]int32, 0, kept),
		Sims:    make([]float32, 0, kept),
	}
	for u := 0; u < n; u++ {
		if owns(int32(u)) {
			lo, hi := f.Offsets[u], f.Offsets[u+1]
			out.IDs = append(out.IDs, f.IDs[lo:hi]...)
			out.Sims = append(out.Sims, f.Sims[lo:hi]...)
		}
		out.Offsets[u+1] = int64(len(out.IDs))
	}
	return out
}

// PartitionSnapshot splits s into one snapshot per bucket range: shard
// i's graph keeps exactly the rows of users whose frh.ShardKey (over
// buckets) falls in ranges[i]. The training dataset and fingerprints
// are shared by reference — recommendation scores against neighbors'
// profiles, and a user's neighbors may live anywhere in the id space,
// so every shard carries the full profile set (the graph, which
// dominates a serving snapshot, is what partitions). The returned
// per-shard user counts align with the snapshots.
func PartitionSnapshot(s *Snapshot, buckets int, ranges []frh.BucketRange) ([]*Snapshot, []int, error) {
	if s == nil || s.Graph == nil {
		return nil, nil, fmt.Errorf("persist: partitioning needs a snapshot with a graph")
	}
	shards := make([]*Snapshot, len(ranges))
	users := make([]int, len(ranges))
	n := s.Graph.NumUsers()
	// One pass over the id space computes every user's owner; the mask
	// closures then test precomputed ownership instead of re-hashing.
	owner := make([]int16, n)
	for u := 0; u < n; u++ {
		owner[u] = int16(frh.ShardOf(int32(u), buckets, ranges))
		if owner[u] >= 0 {
			users[owner[u]]++
		}
	}
	for i := range ranges {
		i := i
		shards[i] = &Snapshot{
			Graph:      MaskFrozen(s.Graph, func(u int32) bool { return int(owner[u]) == i }),
			Train:      s.Train,
			GoldFinger: s.GoldFinger,
		}
	}
	return shards, users, nil
}
