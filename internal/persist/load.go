package persist

// The mmap load path. MapFile maps a version-2 snapshot file read-only
// and serves the artifact structures as unsafe.Slice views over the
// mapping: no decode copy, no per-element work beyond the CRC pass and
// bounds validation, and N replicas of one host share one physical copy
// of the slabs through the page cache. Lifetime is explicit — the
// returned Snapshot carries a refcounted Mapping, and callers (the
// serving Index) must hold a reference across every access, because
// after the last Release the pages are gone and a stale view is a
// segfault, not a recoverable error.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"sync/atomic"
	"unsafe"
)

// ErrMapUnavailable tags MapFile failures that mean "this file or
// platform cannot be memory-mapped" rather than "this file is bad":
// version-1 snapshots (unaligned layout), non-mmap platforms,
// big-endian hosts, or an mmap syscall the filesystem refuses.
// LoadFileMode's auto mode falls back to copy-decode exactly when
// errors.Is(err, ErrMapUnavailable); corruption never triggers
// fallback, so a damaged file fails loudly on every path.
var ErrMapUnavailable = errors.New("persist: snapshot cannot be memory-mapped")

// hostLittleEndian reports whether the host stores integers
// little-endian — the byte order the format fixes. On a big-endian host
// views would transpose every integer, so the mmap path declines and
// the portable copy decoder runs instead.
var hostLittleEndian = func() bool {
	var buf [2]byte
	binary.NativeEndian.PutUint16(buf[:], 0x0102)
	return buf[0] == 0x02
}()

// Mapping is a refcounted read-only memory mapping backing a Snapshot's
// views. It starts with one reference (the creating caller's); Retain
// adds one for each additional holder and Release drops one, unmapping
// when the count reaches zero. After unmap every view into the mapping
// is poison — the refcount is the only thing standing between a hot
// swap and a segfault in a still-draining request.
type Mapping struct {
	data []byte
	refs atomic.Int64
}

// Retain adds a reference and reports success. It fails — leaving the
// count untouched — once the count has reached zero: a mapping that has
// started unmapping can never be resurrected, so a loser of a
// swap/retain race simply observes false and retries against the new
// epoch's mapping.
func (m *Mapping) Retain() bool {
	for {
		r := m.refs.Load()
		if r <= 0 {
			return false
		}
		if m.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release drops one reference, unmapping when the last one goes.
// Releasing more times than retained is a lifetime bug; it panics
// rather than corrupt the count.
func (m *Mapping) Release() {
	if m == nil {
		return
	}
	switch r := m.refs.Add(-1); {
	case r == 0:
		data := m.data
		m.data = nil
		munmap(data)
	case r < 0:
		panic("persist: Mapping released more times than retained")
	}
}

// Refs returns the current reference count (for tests and stats).
func (m *Mapping) Refs() int64 {
	if m == nil {
		return 0
	}
	return m.refs.Load()
}

// Size returns the mapped file size in bytes, 0 after unmap.
func (m *Mapping) Size() int {
	if m == nil {
		return 0
	}
	return len(m.data)
}

// MapFile maps the snapshot at path read-only and returns a Snapshot
// whose artifacts view the mapping directly. Every section's CRC is
// verified and bounds-validated before the snapshot is returned (see
// the package comment on validation depth), so integrity cover equals
// the copy path's. The returned snapshot's Mapping holds one reference;
// the caller owns it and must Release (via Snapshot.Close or a
// take-over by c2knn.Index) when the views are no longer reachable.
//
// Files that cannot be mapped — version 1, non-mmap platform,
// big-endian host — fail with ErrMapUnavailable; corrupt files fail
// with ErrCorrupt. Use LoadFileMode for automatic fallback.
func MapFile(path string) (*Snapshot, error) {
	if !mmapSupported {
		return nil, fmt.Errorf("%w: no mmap on this platform", ErrMapUnavailable)
	}
	if !hostLittleEndian {
		return nil, fmt.Errorf("%w: big-endian host", ErrMapUnavailable)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < 16 {
		return nil, fmt.Errorf("%w: header: file is %d bytes", ErrCorrupt, st.Size())
	}
	if st.Size() > math.MaxInt {
		return nil, fmt.Errorf("%w: file is %d bytes", ErrMapUnavailable, st.Size())
	}
	data, err := mmapFile(f, int(st.Size()))
	if err != nil {
		// An mmap refusal on an exotic filesystem is an availability
		// problem, not a corruption one; let auto mode fall back.
		return nil, fmt.Errorf("%w: mmap: %v", ErrMapUnavailable, err)
	}
	if len(data) >= 16 && string(data[:8]) == string(magic[:]) &&
		binary.LittleEndian.Uint32(data[8:12]) == 1 {
		munmap(data)
		return nil, fmt.Errorf("%w: version-1 snapshots have no aligned layout", ErrMapUnavailable)
	}
	snap, err := decodeAll(data, true)
	if err != nil {
		munmap(data)
		return nil, err
	}
	m := &Mapping{data: data}
	m.refs.Store(1)
	snap.Mapping = m
	return snap, nil
}

// LoadMode selects how a snapshot file is materialized.
type LoadMode int

const (
	// LoadAuto memory-maps when the file and platform allow it and
	// copy-decodes otherwise — the default everywhere.
	LoadAuto LoadMode = iota
	// LoadCopy always copy-decodes (heap-owned structures, no mapping).
	LoadCopy
	// LoadMMap requires the mmap path and fails if it is unavailable.
	LoadMMap
)

func (m LoadMode) String() string {
	switch m {
	case LoadAuto:
		return "auto"
	case LoadCopy:
		return "copy"
	case LoadMMap:
		return "mmap"
	}
	return fmt.Sprintf("LoadMode(%d)", int(m))
}

// ParseLoadMode parses a load-mode name as accepted by the C2_LOAD
// environment variable and the c2serve -load flag; the empty string
// means auto.
func ParseLoadMode(s string) (LoadMode, error) {
	switch s {
	case "", "auto":
		return LoadAuto, nil
	case "copy":
		return LoadCopy, nil
	case "mmap":
		return LoadMMap, nil
	}
	return 0, fmt.Errorf("persist: unknown load mode %q (want auto, copy, or mmap)", s)
}

// LoadFileMode loads the snapshot at path under the given mode.
func LoadFileMode(path string, mode LoadMode) (*Snapshot, error) {
	switch mode {
	case LoadCopy:
		return ReadFile(path)
	case LoadMMap:
		return MapFile(path)
	default:
		s, err := MapFile(path)
		if errors.Is(err, ErrMapUnavailable) {
			return ReadFile(path)
		}
		return s, err
	}
}

// LoadFile loads the snapshot at path under the mode named by the
// C2_LOAD environment variable ("auto" when unset).
func LoadFile(path string) (*Snapshot, error) {
	mode, err := ParseLoadMode(os.Getenv("C2_LOAD"))
	if err != nil {
		return nil, err
	}
	return LoadFileMode(path, mode)
}

// sliceI64 returns b reinterpreted as little-endian int64s: an aliasing
// view when view is set (b must be 8-byte-aligned — the format's
// 64-byte slab alignment over a page-aligned mapping guarantees it), an
// owned decoded copy otherwise.
func sliceI64(b []byte, view bool) ([]int64, error) {
	n := len(b) / 8
	if n == 0 {
		return []int64{}, nil
	}
	if view {
		if err := checkAligned(b, 8); err != nil {
			return nil, err
		}
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

func sliceI32(b []byte, view bool) ([]int32, error) {
	n := len(b) / 4
	if n == 0 {
		return []int32{}, nil
	}
	if view {
		if err := checkAligned(b, 4); err != nil {
			return nil, err
		}
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

func sliceF32(b []byte, view bool) ([]float32, error) {
	n := len(b) / 4
	if n == 0 {
		return []float32{}, nil
	}
	if view {
		if err := checkAligned(b, 4); err != nil {
			return nil, err
		}
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

func sliceU64(b []byte, view bool) ([]uint64, error) {
	n := len(b) / 8
	if n == 0 {
		return []uint64{}, nil
	}
	if view {
		if err := checkAligned(b, 8); err != nil {
			return nil, err
		}
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out, nil
}

// checkAligned guards the unsafe.Slice casts: the format guarantees
// slab alignment, so a misaligned base means the caller handed
// decodeAll a buffer that is not mapping-grade (e.g. an arbitrary
// []byte in a test). Failing beats a silent unaligned view.
func checkAligned(b []byte, align uintptr) error {
	if uintptr(unsafe.Pointer(&b[0]))%align != 0 {
		return fmt.Errorf("view base %p not %d-byte aligned (buffer is not mapping-grade)", &b[0], align)
	}
	return nil
}
