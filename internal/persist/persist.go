// Package persist implements the c2knn snapshot format: a versioned,
// checksummed binary container that round-trips the immutable serving
// artifacts — a frozen KNN graph, its training dataset, and optional
// GoldFinger fingerprints — so an index built once (minutes of
// similarity computations) can be loaded by any number of serving
// processes in milliseconds.
//
// # Format (version 2)
//
// All integers are little-endian. A snapshot is a fixed header followed
// by a sequence of self-checksummed sections:
//
//	offset  size  field
//	0       8     magic "C2SNAP\r\n" (the CRLF catches text-mode mangling)
//	8       4     format version (uint32, currently 2)
//	12      4     section count (uint32)
//
// then, for each section:
//
//	4     section type (uint32)
//	8     payload length in bytes (uint64)
//	0–63  zero padding to the next 64-byte file offset (verified zero)
//	...   payload (its first byte sits at a 64-byte-aligned file offset)
//	4     CRC-32C (Castagnoli) of the payload
//
// Section types: 1 = frozen graph, 2 = dataset, 3 = GoldFinger
// signatures. Each type appears at most once; unknown types are an
// error (format evolution bumps the version). The stream must end
// exactly after the last section.
//
// Every payload opens with a 64-byte header block (unused tail bytes
// zero) and lays its arrays out at 64-byte-aligned payload offsets —
// alignUp(x) below rounds x up to the next multiple of 64:
//
//	graph:      {0: u32 k · 4: u32 reserved(0) · 8: u64 numUsers ·
//	            16: u64 numEdges} · 64: (numUsers+1)×i64 CSR offsets ·
//	            alignUp: numEdges×i32 neighbor ids ·
//	            alignUp: numEdges×f32 similarities (IEEE-754 bits)
//	dataset:    {0: u32 nameLen · 4: u32 numItems · 8: u64 numUsers ·
//	            16: u64 numRatings} · 64: name bytes ·
//	            alignUp: numUsers×u32 profile lengths ·
//	            alignUp: numRatings×i32 item ids
//	goldfinger: {0: u32 bits · 4: u32 reserved(0) · 8: u64 numUsers} ·
//	            64: numUsers×i32 fingerprint popcounts ·
//	            alignUp: numUsers×(bits/64)×u64 signature words
//
// Because payloads start 64-byte-aligned in the file and an mmap base
// is page-aligned, every array slab is 64-byte-aligned in memory too:
// MapFile serves knng.Frozen / dataset.Dataset / goldfinger.Set
// directly as unsafe.Slice views over the mapping, with no decode copy
// and cache-line/vector-friendly slab bases. Version 2 stores what the
// runtime structures hold (CSR offsets rather than degrees, build-time
// popcounts alongside signatures) precisely so views need no
// recomputation.
//
// # Version 1 compatibility
//
// Readers also accept the legacy version-1 layout (no alignment,
// degrees instead of offsets, no persisted popcounts); v1 files always
// load through the copy path and get the full value-level validation
// they always did. Writers emit version 2 only.
//
// # Robustness
//
// Decode never panics on hostile input and never returns a partially
// populated snapshot: every length is validated against the payload
// size before allocation, every payload is checksummed, framing pads
// must be zero, cross-section user counts must agree, and any failure
// returns (nil, error). Truncated files, flipped bytes, and version
// skew are all detected, on the copy path and the mmap path alike.
//
// Validation depth differs by version. Version-1 payloads pass their
// packages' full validators (knng.Frozen.Validate, dataset.Validate).
// Version-2 payloads — on both load paths, so the two stay
// accept/reject-identical — pass the bounds-level validators
// (knng.Frozen.ValidateBounds, dataset.ValidateBounds,
// goldfinger.FromParts): everything needed for memory-safe serving is
// checked, while value-level invariants (adjacency sort order, profile
// dedup, popcount accuracy) are vouched for by the CRC over the
// encoder's output. Forging bytes past a CRC can skew answers; it
// cannot move an access out of bounds.
//
// # Snapshot files must be replaced, never edited in place
//
// A snapshot that any process may have memory-mapped must only ever be
// updated by atomic replacement: write the new content to a temp file
// in the same directory and rename it over the path — exactly what
// WriteFile does. The rename leaves a live mapping pointing at the old
// inode, untouched, until its last reference drains. Editing the file
// in place instead would corrupt every mapped epoch silently (MAP_SHARED
// views are coherent with the page cache), and truncating it would turn
// the next page access past the new EOF into a SIGBUS — a crash, not an
// error return. The CRC pass at load time cannot help: it ran before
// the bytes changed.
package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/knng"
)

// Version is the snapshot format version this build writes; Decode
// additionally reads version 1.
const Version = 2

var magic = [8]byte{'C', '2', 'S', 'N', 'A', 'P', '\r', '\n'}

const (
	secGraph      = 1
	secDataset    = 2
	secGoldFinger = 3

	// maxSections bounds the header's section count; the format defines
	// three section types and each may appear once.
	maxSections = 16
	// maxSectionBytes is a sanity bound on a single section (1 TiB); a
	// corrupted length field beyond it fails fast. Lengths below it that
	// exceed the actual stream still fail cheaply: payloads are read in
	// chunks, so memory grows only with bytes actually present.
	maxSectionBytes = 1 << 40

	// Plausibility bounds on decoded dimensions. User and item counts
	// must fit int32 — ids are int32 throughout the stack, so a count of
	// 1<<31 would already overflow the last id — and edge/rating counts
	// get a generous 2^38 ceiling that still rejects garbage lengths.
	maxUsers = math.MaxInt32
	maxItems = math.MaxInt32
	maxEdges = 1 << 38
	maxK     = 1 << 20
	maxBits  = 1 << 24
)

// ErrCorrupt tags decoding failures caused by malformed or damaged
// snapshot bytes (bad magic, checksum mismatch, truncation, invalid
// structure). Test with errors.Is.
var ErrCorrupt = errors.New("persist: corrupt snapshot")

// ErrVersion tags snapshots written by an incompatible format version.
var ErrVersion = errors.New("persist: unsupported snapshot version")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// alignUp rounds x up to the next multiple of 64 — the in-file (and
// therefore, under a page-aligned mapping, in-memory) alignment of
// every version-2 array slab.
func alignUp(x int) int { return (x + 63) &^ 63 }

// pad64 returns how many zero bytes follow a position at absolute
// offset off before the next 64-byte boundary.
func pad64(off uint64) int { return int(-off & 63) }

// Snapshot is the set of artifacts a snapshot file carries. Any subset
// of fields may be populated; serving (c2knn.LoadIndex) requires Graph
// and Train.
type Snapshot struct {
	// Graph is the frozen CSR serving graph.
	Graph *knng.Frozen
	// Train is the dataset the graph was built over; recommendation
	// scores against its profiles.
	Train *dataset.Dataset
	// GoldFinger optionally carries the fingerprints the graph was
	// built with, so a loaded index can keep estimating similarities.
	GoldFinger *goldfinger.Set
	// Mapping is non-nil when the artifacts above are views over a
	// memory-mapped file (MapFile); it owns the mapping's lifetime. A
	// copy-decoded snapshot has a nil Mapping.
	Mapping *Mapping
}

// Close releases the snapshot's mapping reference, if any. After Close
// the artifact views must not be touched. Copy-decoded snapshots need
// no Close; calling it is a harmless no-op.
func (s *Snapshot) Close() {
	if s != nil && s.Mapping != nil {
		m := s.Mapping
		s.Mapping = nil
		m.Release()
	}
}

// Encode writes s to w in the snapshot format (version 2).
func Encode(w io.Writer, s *Snapshot) error {
	if s == nil || (s.Graph == nil && s.Train == nil && s.GoldFinger == nil) {
		return errors.New("persist: refusing to encode an empty snapshot")
	}
	if s.Graph != nil {
		if err := s.Graph.Validate(); err != nil {
			return fmt.Errorf("persist: refusing to encode invalid graph: %w", err)
		}
	}
	if s.Train != nil {
		if err := s.Train.Validate(); err != nil {
			return fmt.Errorf("persist: refusing to encode invalid dataset: %w", err)
		}
		if len(s.Train.Name) > math.MaxUint16 {
			return fmt.Errorf("persist: dataset name longer than %d bytes", math.MaxUint16)
		}
	}
	if s.Graph != nil && s.Train != nil && s.Graph.NumUsers() != s.Train.NumUsers() {
		return fmt.Errorf("persist: graph has %d users, dataset %d", s.Graph.NumUsers(), s.Train.NumUsers())
	}
	if s.Graph != nil && s.GoldFinger != nil && s.Graph.NumUsers() != s.GoldFinger.NumUsers() {
		return fmt.Errorf("persist: graph has %d users, fingerprints %d", s.Graph.NumUsers(), s.GoldFinger.NumUsers())
	}
	var count uint32
	for _, present := range []bool{s.Graph != nil, s.Train != nil, s.GoldFinger != nil} {
		if present {
			count++
		}
	}
	cw := &countingWriter{w: w}
	hdr := make([]byte, 0, 16)
	hdr = append(hdr, magic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, Version)
	hdr = binary.LittleEndian.AppendUint32(hdr, count)
	if _, err := cw.Write(hdr); err != nil {
		return err
	}
	if s.Graph != nil {
		if err := writeSection(cw, secGraph, encodeGraph(s.Graph)); err != nil {
			return err
		}
	}
	if s.Train != nil {
		if err := writeSection(cw, secDataset, encodeDataset(s.Train)); err != nil {
			return err
		}
	}
	if s.GoldFinger != nil {
		if err := writeSection(cw, secGoldFinger, encodeGoldFinger(s.GoldFinger)); err != nil {
			return err
		}
	}
	return nil
}

// countingWriter tracks the absolute file offset so writeSection can
// emit the padding that 64-aligns each payload.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

var zeros [64]byte

func writeSection(w *countingWriter, typ uint32, payload []byte) error {
	hdr := make([]byte, 0, 12)
	hdr = binary.LittleEndian.AppendUint32(hdr, typ)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if pad := pad64(w.n); pad > 0 {
		if _, err := w.Write(zeros[:pad]); err != nil {
			return err
		}
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, crcTable))
	_, err := w.Write(crc[:])
	return err
}

// graphLayout locates the graph payload's slabs relative to the payload
// start. Offsets are payload-relative; the payload itself starts at a
// 64-byte-aligned file offset, so these are absolute alignments too.
type graphLayout struct{ offs, ids, sims, size int }

func graphLayoutOf(n, m int) graphLayout {
	offs := 64
	ids := alignUp(offs + 8*(n+1))
	sims := alignUp(ids + 4*m)
	return graphLayout{offs: offs, ids: ids, sims: sims, size: sims + 4*m}
}

type dsLayout struct{ name, lens, items, size int }

func dsLayoutOf(nameLen, n, ratings int) dsLayout {
	name := 64
	lens := alignUp(name + nameLen)
	items := alignUp(lens + 4*n)
	return dsLayout{name: name, lens: lens, items: items, size: items + 4*ratings}
}

type gfLayout struct{ ones, sigs, size int }

func gfLayoutOf(n, words int) gfLayout {
	ones := 64
	sigs := alignUp(ones + 4*n)
	return gfLayout{ones: ones, sigs: sigs, size: sigs + 8*n*words}
}

func encodeGraph(f *knng.Frozen) []byte {
	n, m := f.NumUsers(), f.NumEdges()
	lay := graphLayoutOf(n, m)
	b := make([]byte, lay.size)
	binary.LittleEndian.PutUint32(b[0:], uint32(f.K))
	binary.LittleEndian.PutUint64(b[8:], uint64(n))
	binary.LittleEndian.PutUint64(b[16:], uint64(m))
	for i, o := range f.Offsets {
		binary.LittleEndian.PutUint64(b[lay.offs+8*i:], uint64(o))
	}
	for i, id := range f.IDs {
		binary.LittleEndian.PutUint32(b[lay.ids+4*i:], uint32(id))
	}
	for i, s := range f.Sims {
		binary.LittleEndian.PutUint32(b[lay.sims+4*i:], math.Float32bits(s))
	}
	return b
}

func encodeDataset(d *dataset.Dataset) []byte {
	n, ratings := d.NumUsers(), d.NumRatings()
	lay := dsLayoutOf(len(d.Name), n, ratings)
	b := make([]byte, lay.size)
	binary.LittleEndian.PutUint32(b[0:], uint32(len(d.Name)))
	binary.LittleEndian.PutUint32(b[4:], uint32(d.NumItems))
	binary.LittleEndian.PutUint64(b[8:], uint64(n))
	binary.LittleEndian.PutUint64(b[16:], uint64(ratings))
	copy(b[lay.name:], d.Name)
	at := 0
	for u, p := range d.Profiles {
		binary.LittleEndian.PutUint32(b[lay.lens+4*u:], uint32(len(p)))
		for _, it := range p {
			binary.LittleEndian.PutUint32(b[lay.items+4*at:], uint32(it))
			at++
		}
	}
	return b
}

func encodeGoldFinger(s *goldfinger.Set) []byte {
	sigs := s.Signatures()
	n := s.NumUsers()
	words := 0
	if n > 0 {
		words = len(sigs) / n
	}
	lay := gfLayoutOf(n, words)
	b := make([]byte, lay.size)
	binary.LittleEndian.PutUint32(b[0:], uint32(s.Bits()))
	binary.LittleEndian.PutUint64(b[8:], uint64(n))
	for u := 0; u < n; u++ {
		binary.LittleEndian.PutUint32(b[lay.ones+4*u:], uint32(s.Ones(int32(u))))
	}
	for i, w := range sigs {
		binary.LittleEndian.PutUint64(b[lay.sigs+8*i:], w)
	}
	return b
}

// assembler accumulates decoded sections and runs the cross-section
// checks; Decode (streaming) and decodeAll (whole-image, mmap) share it
// so both load paths accept and reject identically.
type assembler struct {
	version uint32
	view    bool
	snap    Snapshot
	seen    map[uint32]bool
}

func newAssembler(version uint32, view bool) *assembler {
	return &assembler{version: version, view: view, seen: make(map[uint32]bool, 3)}
}

func (a *assembler) section(i uint32, typ uint32, payload []byte) error {
	if a.seen[typ] {
		return fmt.Errorf("%w: duplicate section type %d", ErrCorrupt, typ)
	}
	a.seen[typ] = true
	var err error
	switch typ {
	case secGraph:
		if a.version == 1 {
			a.snap.Graph, err = decodeGraphV1(payload)
		} else {
			a.snap.Graph, err = decodeGraph(payload, a.view)
		}
	case secDataset:
		if a.version == 1 {
			a.snap.Train, err = decodeDatasetV1(payload)
		} else {
			a.snap.Train, err = decodeDataset(payload, a.view)
		}
	case secGoldFinger:
		if a.version == 1 {
			a.snap.GoldFinger, err = decodeGoldFingerV1(payload)
		} else {
			a.snap.GoldFinger, err = decodeGoldFinger(payload, a.view)
		}
	default:
		err = fmt.Errorf("unknown section type %d", typ)
	}
	if err != nil {
		return fmt.Errorf("%w: section %d: %v", ErrCorrupt, i, err)
	}
	return nil
}

func (a *assembler) finish() (*Snapshot, error) {
	s := &a.snap
	// Cross-section consistency: every artifact describes the same users.
	if s.Graph != nil && s.Train != nil && s.Graph.NumUsers() != s.Train.NumUsers() {
		return nil, fmt.Errorf("%w: graph has %d users, dataset %d",
			ErrCorrupt, s.Graph.NumUsers(), s.Train.NumUsers())
	}
	if s.Graph != nil && s.GoldFinger != nil && s.Graph.NumUsers() != s.GoldFinger.NumUsers() {
		return nil, fmt.Errorf("%w: graph has %d users, fingerprints %d",
			ErrCorrupt, s.Graph.NumUsers(), s.GoldFinger.NumUsers())
	}
	return s, nil
}

// checkHeader validates the 16-byte file header and returns the version
// and section count.
func checkHeader(hdr []byte) (version, count uint32, err error) {
	if !bytes.Equal(hdr[:8], magic[:]) {
		return 0, 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:8])
	}
	version = binary.LittleEndian.Uint32(hdr[8:12])
	if version != 1 && version != Version {
		return 0, 0, fmt.Errorf("%w: file has version %d, this build reads 1 and %d", ErrVersion, version, Version)
	}
	count = binary.LittleEndian.Uint32(hdr[12:16])
	if count == 0 || count > maxSections {
		return 0, 0, fmt.Errorf("%w: implausible section count %d", ErrCorrupt, count)
	}
	return version, count, nil
}

// Decode reads a snapshot from r, accepting format versions 1 and 2.
// This is the copy path: decoded structures own their memory and r is
// read strictly forward in bounded chunks. On any error the returned
// snapshot is nil — a decoded Snapshot is always complete and
// validated.
func Decode(r io.Reader) (*Snapshot, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	version, count, err := checkHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	asm := newAssembler(version, false)
	off := uint64(16)
	for i := uint32(0); i < count; i++ {
		var sh [12]byte
		if _, err := io.ReadFull(r, sh[:]); err != nil {
			return nil, fmt.Errorf("%w: section %d header: %v", ErrCorrupt, i, err)
		}
		off += 12
		typ := binary.LittleEndian.Uint32(sh[0:4])
		length := binary.LittleEndian.Uint64(sh[4:12])
		if version >= 2 {
			var padBuf [64]byte
			pad := pad64(off)
			if _, err := io.ReadFull(r, padBuf[:pad]); err != nil {
				return nil, fmt.Errorf("%w: section %d padding: %v", ErrCorrupt, i, err)
			}
			if !bytes.Equal(padBuf[:pad], zeros[:pad]) {
				return nil, fmt.Errorf("%w: section %d has non-zero padding", ErrCorrupt, i)
			}
			off += uint64(pad)
		}
		payload, err := readPayload(r, length)
		if err != nil {
			return nil, fmt.Errorf("%w: section %d (type %d): %v", ErrCorrupt, i, typ, err)
		}
		off += length
		var crc [4]byte
		if _, err := io.ReadFull(r, crc[:]); err != nil {
			return nil, fmt.Errorf("%w: section %d checksum: %v", ErrCorrupt, i, err)
		}
		off += 4
		if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(crc[:]); got != want {
			return nil, fmt.Errorf("%w: section %d (type %d) checksum mismatch", ErrCorrupt, i, typ)
		}
		if err := asm.section(i, typ, payload); err != nil {
			return nil, err
		}
	}
	// The stream must end exactly here; trailing bytes mean the header's
	// section count was damaged (or the file was concatenated with junk).
	var probe [1]byte
	if _, err := io.ReadFull(r, probe[:]); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after final section", ErrCorrupt)
	}
	return asm.finish()
}

// decodeAll decodes a complete in-memory snapshot image. With view set,
// version-2 array slabs become unsafe.Slice views aliasing data (which
// must then outlive the snapshot and have 64-byte-aligned backing — an
// mmap, or a test buffer via alignedCopy); otherwise all structures own
// their memory. Both modes run the same validation.
func decodeAll(data []byte, view bool) (*Snapshot, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("%w: header: file is %d bytes", ErrCorrupt, len(data))
	}
	version, count, err := checkHeader(data[:16])
	if err != nil {
		return nil, err
	}
	asm := newAssembler(version, view)
	off := uint64(16)
	size := uint64(len(data))
	for i := uint32(0); i < count; i++ {
		if size-off < 12 {
			return nil, fmt.Errorf("%w: section %d header: truncated", ErrCorrupt, i)
		}
		typ := binary.LittleEndian.Uint32(data[off:])
		length := binary.LittleEndian.Uint64(data[off+4:])
		off += 12
		if version >= 2 {
			pad := uint64(pad64(off))
			if size-off < pad {
				return nil, fmt.Errorf("%w: section %d padding: truncated", ErrCorrupt, i)
			}
			if !bytes.Equal(data[off:off+pad], zeros[:pad]) {
				return nil, fmt.Errorf("%w: section %d has non-zero padding", ErrCorrupt, i)
			}
			off += pad
		}
		if length > maxSectionBytes {
			return nil, fmt.Errorf("%w: section %d (type %d): section length %d exceeds the %d-byte bound",
				ErrCorrupt, i, typ, length, int64(maxSectionBytes))
		}
		if size-off < length+4 {
			return nil, fmt.Errorf("%w: section %d (type %d): truncated payload", ErrCorrupt, i, typ)
		}
		payload := data[off : off+length : off+length]
		off += length
		want := binary.LittleEndian.Uint32(data[off:])
		off += 4
		if crc32.Checksum(payload, crcTable) != want {
			return nil, fmt.Errorf("%w: section %d (type %d) checksum mismatch", ErrCorrupt, i, typ)
		}
		if err := asm.section(i, typ, payload); err != nil {
			return nil, err
		}
	}
	if off != size {
		return nil, fmt.Errorf("%w: trailing data after final section", ErrCorrupt)
	}
	return asm.finish()
}

// readPayload reads exactly length bytes in bounded chunks, so a
// corrupted length field against a truncated stream fails after
// allocating at most ~2× the bytes actually present.
func readPayload(r io.Reader, length uint64) ([]byte, error) {
	if length > maxSectionBytes {
		return nil, fmt.Errorf("section length %d exceeds the %d-byte bound", length, int64(maxSectionBytes))
	}
	const chunk = 1 << 20
	capHint := length
	if capHint > chunk {
		capHint = chunk
	}
	buf := make([]byte, 0, capHint)
	for uint64(len(buf)) < length {
		n := length - uint64(len(buf))
		if n > chunk {
			n = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, n)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, fmt.Errorf("truncated payload: %v", err)
		}
	}
	return buf, nil
}

// dec is a cursor over a fully checksummed payload; after the upfront
// exact-size check the fixed-width reads cannot fail.
type dec struct {
	b   []byte
	off int
}

func (d *dec) u16() uint16 {
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// decodeGraph decodes a version-2 graph payload, as aliasing views when
// view is set (payload must be 64-byte-aligned) or as owned copies.
func decodeGraph(payload []byte, view bool) (*knng.Frozen, error) {
	if len(payload) < 64 {
		return nil, fmt.Errorf("graph payload too short (%d bytes)", len(payload))
	}
	k := binary.LittleEndian.Uint32(payload[0:])
	n := binary.LittleEndian.Uint64(payload[8:])
	m := binary.LittleEndian.Uint64(payload[16:])
	if n > maxUsers || m > maxEdges || k > maxK {
		return nil, fmt.Errorf("implausible graph dimensions: k=%d users=%d edges=%d", k, n, m)
	}
	lay := graphLayoutOf(int(n), int(m))
	if len(payload) != lay.size {
		return nil, fmt.Errorf("graph payload is %d bytes, dimensions require %d", len(payload), lay.size)
	}
	offsets, err := sliceI64(payload[lay.offs:lay.offs+8*(int(n)+1)], view)
	if err != nil {
		return nil, err
	}
	ids, err := sliceI32(payload[lay.ids:lay.ids+4*int(m)], view)
	if err != nil {
		return nil, err
	}
	sims, err := sliceF32(payload[lay.sims:lay.sims+4*int(m)], view)
	if err != nil {
		return nil, err
	}
	return knng.NewFrozenView(int(k), offsets, ids, sims)
}

// decodeDataset decodes a version-2 dataset payload.
func decodeDataset(payload []byte, view bool) (*dataset.Dataset, error) {
	if len(payload) < 64 {
		return nil, fmt.Errorf("dataset payload too short (%d bytes)", len(payload))
	}
	nameLen := binary.LittleEndian.Uint32(payload[0:])
	numItems := binary.LittleEndian.Uint32(payload[4:])
	n := binary.LittleEndian.Uint64(payload[8:])
	ratings := binary.LittleEndian.Uint64(payload[16:])
	if n > maxUsers || ratings > maxEdges || numItems > maxItems || nameLen > math.MaxUint16 {
		return nil, fmt.Errorf("implausible dataset dimensions: users=%d ratings=%d items=%d nameLen=%d",
			n, ratings, numItems, nameLen)
	}
	lay := dsLayoutOf(int(nameLen), int(n), int(ratings))
	if len(payload) != lay.size {
		return nil, fmt.Errorf("dataset payload is %d bytes, dimensions require %d", len(payload), lay.size)
	}
	name := string(payload[lay.name : lay.name+int(nameLen)])
	items, err := sliceI32(payload[lay.items:lay.items+4*int(ratings)], view)
	if err != nil {
		return nil, err
	}
	profiles := make([][]int32, n)
	var total uint64
	for u := range profiles {
		l := uint64(binary.LittleEndian.Uint32(payload[lay.lens+4*u:]))
		// Checked add: each length is bounded by the ratings budget still
		// unclaimed, so hostile lengths can neither wrap the sum nor push
		// a profile past the item slab.
		if l > ratings-total {
			return nil, fmt.Errorf("profile lengths exceed the %d ratings the header declares", ratings)
		}
		profiles[u] = items[total : total+l : total+l]
		total += l
	}
	if total != ratings {
		return nil, fmt.Errorf("profile lengths sum to %d, header says %d ratings", total, ratings)
	}
	ds := &dataset.Dataset{Name: name, NumItems: int32(numItems), Profiles: profiles}
	// Bounds-check the flat slab rather than profile by profile: the
	// checked adds above prove every profile is a sub-slice of items, so
	// one (parallel, on big slabs) scan covers them all. This scan is
	// the dominant cost of a zero-copy load. ValidateBounds reruns the
	// per-profile walk only to name the offending user in the error.
	if !boundsOK(items, numItems) {
		if err := ds.ValidateBounds(); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// boundsOK reports whether every id of xs lies in [0, limit), compared
// unsigned so negative ids fail too. Slabs past parallelScanMin are
// split across cores — snapshot loads run on otherwise-idle replicas
// where scan latency is the cold-start floor.
func boundsOK(xs []int32, limit uint32) bool {
	workers := runtime.GOMAXPROCS(0)
	if len(xs) < parallelScanMin || workers < 2 {
		return maxU32(xs) < limit || len(xs) == 0
	}
	if workers > 8 {
		workers = 8
	}
	chunk := (len(xs) + workers - 1) / workers
	var bad atomic.Bool
	var wg sync.WaitGroup
	for start := 0; start < len(xs); start += chunk {
		end := start + chunk
		if end > len(xs) {
			end = len(xs)
		}
		wg.Add(1)
		go func(part []int32) {
			defer wg.Done()
			if maxU32(part) >= limit {
				bad.Store(true)
			}
		}(xs[start:end])
	}
	wg.Wait()
	return !bad.Load()
}

// parallelScanMin is the slab size (in elements) below which boundsOK
// stays single-threaded; under it goroutine fan-out costs more than the
// scan.
const parallelScanMin = 1 << 17

// maxU32 returns the maximum of xs reinterpreted as unsigned values
// (0 for an empty slice). Four independent accumulators keep the
// dependency chains short so the compiler emits conditional moves.
func maxU32(xs []int32) uint32 {
	var m0, m1, m2, m3 uint32
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		if v := uint32(xs[i]); v > m0 {
			m0 = v
		}
		if v := uint32(xs[i+1]); v > m1 {
			m1 = v
		}
		if v := uint32(xs[i+2]); v > m2 {
			m2 = v
		}
		if v := uint32(xs[i+3]); v > m3 {
			m3 = v
		}
	}
	for ; i < len(xs); i++ {
		if v := uint32(xs[i]); v > m0 {
			m0 = v
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	return m0
}

// decodeGoldFinger decodes a version-2 fingerprint payload.
func decodeGoldFinger(payload []byte, view bool) (*goldfinger.Set, error) {
	if len(payload) < 64 {
		return nil, fmt.Errorf("goldfinger payload too short (%d bytes)", len(payload))
	}
	bitsN := binary.LittleEndian.Uint32(payload[0:])
	n := binary.LittleEndian.Uint64(payload[8:])
	if bitsN == 0 || bitsN%64 != 0 || bitsN > maxBits || n > maxUsers {
		return nil, fmt.Errorf("implausible fingerprint dimensions: bits=%d users=%d", bitsN, n)
	}
	words := int(bitsN / 64)
	lay := gfLayoutOf(int(n), words)
	if len(payload) != lay.size {
		return nil, fmt.Errorf("goldfinger payload is %d bytes, dimensions require %d", len(payload), lay.size)
	}
	ones, err := sliceI32(payload[lay.ones:lay.ones+4*int(n)], view)
	if err != nil {
		return nil, err
	}
	sigs, err := sliceU64(payload[lay.sigs:lay.sigs+8*int(n)*words], view)
	if err != nil {
		return nil, err
	}
	return goldfinger.FromParts(int(bitsN), int(n), sigs, ones)
}

// --- version-1 payload decoders (copy only; full value-level validation) ---

func decodeGraphV1(payload []byte) (*knng.Frozen, error) {
	if len(payload) < 20 {
		return nil, fmt.Errorf("graph payload too short (%d bytes)", len(payload))
	}
	d := &dec{b: payload}
	k := d.u32()
	n := d.u64()
	m := d.u64()
	if n > maxUsers || m > maxEdges || k > maxK {
		return nil, fmt.Errorf("implausible graph dimensions: k=%d users=%d edges=%d", k, n, m)
	}
	if need := 20 + 4*n + 8*m; uint64(len(payload)) != need {
		return nil, fmt.Errorf("graph payload is %d bytes, dimensions require %d", len(payload), need)
	}
	offsets := make([]int64, n+1)
	var off int64
	for u := uint64(0); u < n; u++ {
		deg := d.u32()
		off += int64(deg)
		offsets[u+1] = off
	}
	if off != int64(m) {
		return nil, fmt.Errorf("degrees sum to %d, header says %d edges", off, m)
	}
	ids := make([]int32, m)
	for i := range ids {
		ids[i] = int32(d.u32())
	}
	sims := make([]float32, m)
	for i := range sims {
		sims[i] = math.Float32frombits(d.u32())
	}
	return knng.NewFrozen(int(k), offsets, ids, sims)
}

func decodeDatasetV1(payload []byte) (*dataset.Dataset, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("dataset payload too short (%d bytes)", len(payload))
	}
	d := &dec{b: payload}
	nameLen := int(d.u16())
	if len(payload) < 2+nameLen+20 {
		return nil, fmt.Errorf("dataset payload too short for %d-byte name", nameLen)
	}
	name := string(payload[d.off : d.off+nameLen])
	d.off += nameLen
	numItems := d.u32()
	n := d.u64()
	ratings := d.u64()
	if n > maxUsers || ratings > maxEdges || numItems > maxItems {
		return nil, fmt.Errorf("implausible dataset dimensions: users=%d ratings=%d items=%d", n, ratings, numItems)
	}
	if need := uint64(2+nameLen+20) + 4*n + 4*ratings; uint64(len(payload)) != need {
		return nil, fmt.Errorf("dataset payload is %d bytes, dimensions require %d", len(payload), need)
	}
	lens := make([]uint32, n)
	var total uint64
	for i := range lens {
		lens[i] = d.u32()
		// Checked add: a hostile length past the remaining ratings budget
		// would wrap the uint64 sum given enough users; reject it before
		// it accumulates.
		if uint64(lens[i]) > ratings-total {
			return nil, fmt.Errorf("profile lengths exceed the %d ratings the header declares", ratings)
		}
		total += uint64(lens[i])
	}
	if total != ratings {
		return nil, fmt.Errorf("profile lengths sum to %d, header says %d ratings", total, ratings)
	}
	items := make([]int32, ratings)
	for i := range items {
		items[i] = int32(d.u32())
	}
	profiles := make([][]int32, n)
	var at uint64
	for u := range profiles {
		profiles[u] = items[at : at+uint64(lens[u]) : at+uint64(lens[u])]
		at += uint64(lens[u])
	}
	ds := &dataset.Dataset{Name: name, NumItems: int32(numItems), Profiles: profiles}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

func decodeGoldFingerV1(payload []byte) (*goldfinger.Set, error) {
	if len(payload) < 12 {
		return nil, fmt.Errorf("goldfinger payload too short (%d bytes)", len(payload))
	}
	d := &dec{b: payload}
	bitsN := d.u32()
	n := d.u64()
	if bitsN == 0 || bitsN%64 != 0 || bitsN > maxBits || n > maxUsers {
		return nil, fmt.Errorf("implausible fingerprint dimensions: bits=%d users=%d", bitsN, n)
	}
	words := uint64(bitsN / 64)
	if need := 12 + 8*n*words; uint64(len(payload)) != need {
		return nil, fmt.Errorf("goldfinger payload is %d bytes, dimensions require %d", len(payload), need)
	}
	sigs := make([]uint64, n*words)
	for i := range sigs {
		sigs[i] = d.u64()
	}
	return goldfinger.FromSignatures(int(bitsN), int(n), sigs)
}

// WriteFile atomically writes s to path: the snapshot is encoded to a
// unique temp file in path's directory, fsynced, and renamed into
// place, with the containing directory fsynced after the rename — so a
// crash at any point leaves either the old snapshot or the complete new
// one where a serving process expects a valid file, never a torn or
// empty rename victim, and concurrent writers to the same path cannot
// interleave (last rename wins whole).
func WriteFile(path string, s *Snapshot) error {
	return writeFileAtomic(path, func(w io.Writer) error { return Encode(w, s) })
}

// writeFileAtomic runs write against a buffered unique temp file in
// path's directory and publishes it with the fsync-rename-fsync
// discipline WriteFile documents. Temp files abandoned by crashed
// writers are swept opportunistically.
func writeFileAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	base := filepath.Base(path)
	removeStaleTemps(dir, base)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := write(w); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	// Data must be durable before the rename becomes visible, or a power
	// loss can persist the rename ahead of the blocks and leave an
	// empty/partial file at path.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename itself durable. Some platforms/filesystems reject
	// directory fsync; the rename has already succeeded, so that is not
	// worth failing the write over.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// staleTempAge is how old an abandoned temp file must be before
// removeStaleTemps reclaims it; young temps may belong to a live writer.
const staleTempAge = 10 * time.Minute

// removeStaleTemps deletes temp files for base left behind by crashed
// writers (both the CreateTemp pattern and the legacy fixed ".tmp"
// name). Best-effort: sweep failures never fail the write that
// triggered them.
func removeStaleTemps(dir, base string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-staleTempAge)
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), base+".tmp") {
			continue
		}
		if info, err := e.Info(); err == nil && info.ModTime().Before(cutoff) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// ReadFile loads a snapshot from path by copy-decode. LoadFile/
// LoadFileMode select between this and the mmap path.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(bufio.NewReaderSize(f, 1<<20))
}
