// Package persist implements the c2knn snapshot format: a versioned,
// checksummed binary container that round-trips the immutable serving
// artifacts — a frozen KNN graph, its training dataset, and optional
// GoldFinger fingerprints — so an index built once (minutes of
// similarity computations) can be loaded by any number of serving
// processes in milliseconds.
//
// # Format
//
// All integers are little-endian. A snapshot is a fixed header followed
// by a sequence of self-checksummed sections:
//
//	offset  size  field
//	0       8     magic "C2SNAP\r\n" (the CRLF catches text-mode mangling)
//	8       4     format version (uint32, currently 1)
//	12      4     section count (uint32)
//
// then, for each section:
//
//	4     section type (uint32)
//	8     payload length in bytes (uint64)
//	...   payload
//	4     CRC-32C (Castagnoli) of the payload
//
// Section types: 1 = frozen graph, 2 = dataset, 3 = GoldFinger
// signatures. Each type appears at most once; unknown types are an
// error (format evolution bumps the version). The stream must end
// exactly after the last section.
//
// Section payloads:
//
//	graph:      u32 k · u64 numUsers · u64 numEdges ·
//	            numUsers×u32 degrees · numEdges×i32 neighbor ids ·
//	            numEdges×f32 similarities (IEEE-754 bits)
//	dataset:    u16 nameLen · name bytes · u32 numItems · u64 numUsers ·
//	            u64 numRatings · numUsers×u32 profile lengths ·
//	            numRatings×i32 item ids
//	goldfinger: u32 bits · u64 numUsers · numUsers×(bits/64)×u64 words
//
// # Robustness
//
// Decode never panics on hostile input and never returns a partially
// populated snapshot: every length is validated against the payload
// size before allocation, every payload is checksummed, decoded
// structures pass their packages' own validators (knng.Frozen.Validate,
// dataset.Validate), cross-section user counts must agree, and any
// failure returns (nil, error). Truncated files, flipped bytes, and
// version skew are all detected.
package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/knng"
)

// Version is the snapshot format version this build reads and writes.
const Version = 1

var magic = [8]byte{'C', '2', 'S', 'N', 'A', 'P', '\r', '\n'}

const (
	secGraph      = 1
	secDataset    = 2
	secGoldFinger = 3

	// maxSections bounds the header's section count; the format defines
	// three section types and each may appear once.
	maxSections = 16
	// maxSectionBytes is a sanity bound on a single section (1 TiB); a
	// corrupted length field beyond it fails fast. Lengths below it that
	// exceed the actual stream still fail cheaply: payloads are read in
	// chunks, so memory grows only with bytes actually present.
	maxSectionBytes = 1 << 40
)

// ErrCorrupt tags decoding failures caused by malformed or damaged
// snapshot bytes (bad magic, checksum mismatch, truncation, invalid
// structure). Test with errors.Is.
var ErrCorrupt = errors.New("persist: corrupt snapshot")

// ErrVersion tags snapshots written by an incompatible format version.
var ErrVersion = errors.New("persist: unsupported snapshot version")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Snapshot is the set of artifacts a snapshot file carries. Any subset
// of fields may be populated; serving (c2knn.LoadIndex) requires Graph
// and Train.
type Snapshot struct {
	// Graph is the frozen CSR serving graph.
	Graph *knng.Frozen
	// Train is the dataset the graph was built over; recommendation
	// scores against its profiles.
	Train *dataset.Dataset
	// GoldFinger optionally carries the fingerprints the graph was
	// built with, so a loaded index can keep estimating similarities.
	GoldFinger *goldfinger.Set
}

// Encode writes s to w in the snapshot format.
func Encode(w io.Writer, s *Snapshot) error {
	if s == nil || (s.Graph == nil && s.Train == nil && s.GoldFinger == nil) {
		return errors.New("persist: refusing to encode an empty snapshot")
	}
	if s.Graph != nil {
		if err := s.Graph.Validate(); err != nil {
			return fmt.Errorf("persist: refusing to encode invalid graph: %w", err)
		}
	}
	if s.Train != nil {
		if err := s.Train.Validate(); err != nil {
			return fmt.Errorf("persist: refusing to encode invalid dataset: %w", err)
		}
		if len(s.Train.Name) > math.MaxUint16 {
			return fmt.Errorf("persist: dataset name longer than %d bytes", math.MaxUint16)
		}
	}
	if s.Graph != nil && s.Train != nil && s.Graph.NumUsers() != s.Train.NumUsers() {
		return fmt.Errorf("persist: graph has %d users, dataset %d", s.Graph.NumUsers(), s.Train.NumUsers())
	}
	if s.Graph != nil && s.GoldFinger != nil && s.Graph.NumUsers() != s.GoldFinger.NumUsers() {
		return fmt.Errorf("persist: graph has %d users, fingerprints %d", s.Graph.NumUsers(), s.GoldFinger.NumUsers())
	}
	var count uint32
	for _, present := range []bool{s.Graph != nil, s.Train != nil, s.GoldFinger != nil} {
		if present {
			count++
		}
	}
	hdr := make([]byte, 0, 16)
	hdr = append(hdr, magic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, Version)
	hdr = binary.LittleEndian.AppendUint32(hdr, count)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if s.Graph != nil {
		if err := writeSection(w, secGraph, encodeGraph(s.Graph)); err != nil {
			return err
		}
	}
	if s.Train != nil {
		if err := writeSection(w, secDataset, encodeDataset(s.Train)); err != nil {
			return err
		}
	}
	if s.GoldFinger != nil {
		if err := writeSection(w, secGoldFinger, encodeGoldFinger(s.GoldFinger)); err != nil {
			return err
		}
	}
	return nil
}

func writeSection(w io.Writer, typ uint32, payload []byte) error {
	hdr := make([]byte, 0, 12)
	hdr = binary.LittleEndian.AppendUint32(hdr, typ)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, crcTable))
	_, err := w.Write(crc[:])
	return err
}

func encodeGraph(f *knng.Frozen) []byte {
	n, m := f.NumUsers(), f.NumEdges()
	b := make([]byte, 0, 20+4*n+8*m)
	b = binary.LittleEndian.AppendUint32(b, uint32(f.K))
	b = binary.LittleEndian.AppendUint64(b, uint64(n))
	b = binary.LittleEndian.AppendUint64(b, uint64(m))
	for u := 0; u < n; u++ {
		b = binary.LittleEndian.AppendUint32(b, uint32(f.Degree(int32(u))))
	}
	for _, id := range f.IDs {
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
	}
	for _, s := range f.Sims {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(s))
	}
	return b
}

func encodeDataset(d *dataset.Dataset) []byte {
	ratings := d.NumRatings()
	b := make([]byte, 0, 2+len(d.Name)+20+4*d.NumUsers()+4*ratings)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(d.Name)))
	b = append(b, d.Name...)
	b = binary.LittleEndian.AppendUint32(b, uint32(d.NumItems))
	b = binary.LittleEndian.AppendUint64(b, uint64(d.NumUsers()))
	b = binary.LittleEndian.AppendUint64(b, uint64(ratings))
	for _, p := range d.Profiles {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	}
	for _, p := range d.Profiles {
		for _, it := range p {
			b = binary.LittleEndian.AppendUint32(b, uint32(it))
		}
	}
	return b
}

func encodeGoldFinger(s *goldfinger.Set) []byte {
	sigs := s.Signatures()
	b := make([]byte, 0, 12+8*len(sigs))
	b = binary.LittleEndian.AppendUint32(b, uint32(s.Bits()))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.NumUsers()))
	for _, w := range sigs {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	return b
}

// Decode reads a snapshot from r. On any error the returned snapshot is
// nil — a decoded Snapshot is always complete and validated.
func Decode(r io.Reader) (*Snapshot, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:8], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d", ErrVersion, v, Version)
	}
	count := binary.LittleEndian.Uint32(hdr[12:16])
	if count == 0 || count > maxSections {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrCorrupt, count)
	}
	snap := &Snapshot{}
	seen := make(map[uint32]bool, count)
	for i := uint32(0); i < count; i++ {
		var sh [12]byte
		if _, err := io.ReadFull(r, sh[:]); err != nil {
			return nil, fmt.Errorf("%w: section %d header: %v", ErrCorrupt, i, err)
		}
		typ := binary.LittleEndian.Uint32(sh[0:4])
		length := binary.LittleEndian.Uint64(sh[4:12])
		payload, err := readPayload(r, length)
		if err != nil {
			return nil, fmt.Errorf("%w: section %d (type %d): %v", ErrCorrupt, i, typ, err)
		}
		var crc [4]byte
		if _, err := io.ReadFull(r, crc[:]); err != nil {
			return nil, fmt.Errorf("%w: section %d checksum: %v", ErrCorrupt, i, err)
		}
		if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(crc[:]); got != want {
			return nil, fmt.Errorf("%w: section %d (type %d) checksum mismatch", ErrCorrupt, i, typ)
		}
		if seen[typ] {
			return nil, fmt.Errorf("%w: duplicate section type %d", ErrCorrupt, typ)
		}
		seen[typ] = true
		switch typ {
		case secGraph:
			snap.Graph, err = decodeGraph(payload)
		case secDataset:
			snap.Train, err = decodeDataset(payload)
		case secGoldFinger:
			snap.GoldFinger, err = decodeGoldFinger(payload)
		default:
			err = fmt.Errorf("unknown section type %d", typ)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: section %d: %v", ErrCorrupt, i, err)
		}
	}
	// The stream must end exactly here; trailing bytes mean the header's
	// section count was damaged (or the file was concatenated with junk).
	var probe [1]byte
	if _, err := io.ReadFull(r, probe[:]); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after final section", ErrCorrupt)
	}
	// Cross-section consistency: every artifact describes the same users.
	if snap.Graph != nil && snap.Train != nil && snap.Graph.NumUsers() != snap.Train.NumUsers() {
		return nil, fmt.Errorf("%w: graph has %d users, dataset %d",
			ErrCorrupt, snap.Graph.NumUsers(), snap.Train.NumUsers())
	}
	if snap.Graph != nil && snap.GoldFinger != nil && snap.Graph.NumUsers() != snap.GoldFinger.NumUsers() {
		return nil, fmt.Errorf("%w: graph has %d users, fingerprints %d",
			ErrCorrupt, snap.Graph.NumUsers(), snap.GoldFinger.NumUsers())
	}
	return snap, nil
}

// readPayload reads exactly length bytes in bounded chunks, so a
// corrupted length field against a truncated stream fails after
// allocating at most ~2× the bytes actually present.
func readPayload(r io.Reader, length uint64) ([]byte, error) {
	if length > maxSectionBytes {
		return nil, fmt.Errorf("section length %d exceeds the %d-byte bound", length, int64(maxSectionBytes))
	}
	const chunk = 1 << 20
	capHint := length
	if capHint > chunk {
		capHint = chunk
	}
	buf := make([]byte, 0, capHint)
	for uint64(len(buf)) < length {
		n := length - uint64(len(buf))
		if n > chunk {
			n = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, n)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, fmt.Errorf("truncated payload: %v", err)
		}
	}
	return buf, nil
}

// dec is a cursor over a fully checksummed payload; after the upfront
// exact-size check the fixed-width reads cannot fail.
type dec struct {
	b   []byte
	off int
}

func (d *dec) u16() uint16 {
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func decodeGraph(payload []byte) (*knng.Frozen, error) {
	if len(payload) < 20 {
		return nil, fmt.Errorf("graph payload too short (%d bytes)", len(payload))
	}
	d := &dec{b: payload}
	k := d.u32()
	n := d.u64()
	m := d.u64()
	if n > 1<<32 || m > 1<<38 || k > 1<<20 {
		return nil, fmt.Errorf("implausible graph dimensions: k=%d users=%d edges=%d", k, n, m)
	}
	if need := 20 + 4*n + 8*m; uint64(len(payload)) != need {
		return nil, fmt.Errorf("graph payload is %d bytes, dimensions require %d", len(payload), need)
	}
	offsets := make([]int64, n+1)
	var off int64
	for u := uint64(0); u < n; u++ {
		deg := d.u32()
		off += int64(deg)
		offsets[u+1] = off
	}
	if off != int64(m) {
		return nil, fmt.Errorf("degrees sum to %d, header says %d edges", off, m)
	}
	ids := make([]int32, m)
	for i := range ids {
		ids[i] = int32(d.u32())
	}
	sims := make([]float32, m)
	for i := range sims {
		sims[i] = math.Float32frombits(d.u32())
	}
	return knng.NewFrozen(int(k), offsets, ids, sims)
}

func decodeDataset(payload []byte) (*dataset.Dataset, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("dataset payload too short (%d bytes)", len(payload))
	}
	d := &dec{b: payload}
	nameLen := int(d.u16())
	if len(payload) < 2+nameLen+20 {
		return nil, fmt.Errorf("dataset payload too short for %d-byte name", nameLen)
	}
	name := string(payload[d.off : d.off+nameLen])
	d.off += nameLen
	numItems := d.u32()
	n := d.u64()
	ratings := d.u64()
	if n > 1<<32 || ratings > 1<<38 || numItems > 1<<31 {
		return nil, fmt.Errorf("implausible dataset dimensions: users=%d ratings=%d items=%d", n, ratings, numItems)
	}
	if need := uint64(2+nameLen+20) + 4*n + 4*ratings; uint64(len(payload)) != need {
		return nil, fmt.Errorf("dataset payload is %d bytes, dimensions require %d", len(payload), need)
	}
	lens := make([]uint32, n)
	var total uint64
	for i := range lens {
		lens[i] = d.u32()
		total += uint64(lens[i])
	}
	if total != ratings {
		return nil, fmt.Errorf("profile lengths sum to %d, header says %d ratings", total, ratings)
	}
	items := make([]int32, ratings)
	for i := range items {
		items[i] = int32(d.u32())
	}
	profiles := make([][]int32, n)
	var at uint64
	for u := range profiles {
		profiles[u] = items[at : at+uint64(lens[u]) : at+uint64(lens[u])]
		at += uint64(lens[u])
	}
	ds := &dataset.Dataset{Name: name, NumItems: int32(numItems), Profiles: profiles}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

func decodeGoldFinger(payload []byte) (*goldfinger.Set, error) {
	if len(payload) < 12 {
		return nil, fmt.Errorf("goldfinger payload too short (%d bytes)", len(payload))
	}
	d := &dec{b: payload}
	bitsN := d.u32()
	n := d.u64()
	if bitsN == 0 || bitsN%64 != 0 || bitsN > 1<<24 || n > 1<<32 {
		return nil, fmt.Errorf("implausible fingerprint dimensions: bits=%d users=%d", bitsN, n)
	}
	words := uint64(bitsN / 64)
	if need := 12 + 8*n*words; uint64(len(payload)) != need {
		return nil, fmt.Errorf("goldfinger payload is %d bytes, dimensions require %d", len(payload), need)
	}
	sigs := make([]uint64, n*words)
	for i := range sigs {
		sigs[i] = d.u64()
	}
	return goldfinger.FromSignatures(int(bitsN), int(n), sigs)
}

// WriteFile atomically writes s to path: the snapshot is encoded to
// path+".tmp", fsynced, and renamed into place, with the containing
// directory fsynced after the rename — so a crash at any point leaves
// either the old snapshot or the complete new one where a serving
// process expects a valid file, never a torn or empty rename victim.
func WriteFile(path string, s *Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := Encode(w, s); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	// Data must be durable before the rename becomes visible, or a power
	// loss can persist the rename ahead of the blocks and leave an
	// empty/partial file at path.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename itself durable. Some platforms/filesystems reject
	// directory fsync; the rename has already succeeded, so that is not
	// worth failing the write over.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// ReadFile loads a snapshot from path.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(bufio.NewReaderSize(f, 1<<20))
}
