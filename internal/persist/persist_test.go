package persist

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"c2knn/internal/bruteforce"
	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/knng"
	"c2knn/internal/synth"
)

// ml1MSnapshot builds a full snapshot — graph, dataset, fingerprints —
// over the ml1M synthetic preset: the losslessness acceptance check of
// the serving layer.
func ml1MSnapshot(tb testing.TB) *Snapshot {
	tb.Helper()
	d := synth.Generate(synth.ML1M().Scale(0.1))
	gf := goldfinger.MustNew(d, 256, 0x60fd)
	g := bruteforce.Build(d.NumUsers(), 10, gf, 4)
	return &Snapshot{Graph: g.Freeze(), Train: d, GoldFinger: gf}
}

// tinySnapshot is a hand-built snapshot small enough that exhaustive
// corruption sweeps (every truncation length, every byte flipped) stay
// cheap.
func tinySnapshot(tb testing.TB) *Snapshot {
	tb.Helper()
	d := dataset.New("tiny", [][]int32{
		{0, 2, 4},
		{1, 2, 3},
		{0, 1, 4},
		{3},
	}, 5)
	gf := goldfinger.MustNew(d, 64, 0x60fd)
	g := knng.New(d.NumUsers(), 2)
	rng := rand.New(rand.NewSource(9))
	knng.FillRandom(g.Lists, rng, func(u, v int) float64 { return rng.Float64() })
	return &Snapshot{Graph: g.Freeze(), Train: d, GoldFinger: gf}
}

func encodeBytes(tb testing.TB, s *Snapshot) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		tb.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func sameFrozen(tb testing.TB, got, want *knng.Frozen) {
	tb.Helper()
	if got.K != want.K || got.NumUsers() != want.NumUsers() || got.NumEdges() != want.NumEdges() {
		tb.Fatalf("frozen shape mismatch: got k=%d n=%d m=%d, want k=%d n=%d m=%d",
			got.K, got.NumUsers(), got.NumEdges(), want.K, want.NumUsers(), want.NumEdges())
	}
	for u := 0; u < want.NumUsers(); u++ {
		gids, gsims := got.Neighbors(int32(u))
		wids, wsims := want.Neighbors(int32(u))
		if len(gids) != len(wids) {
			tb.Fatalf("user %d: degree %d, want %d", u, len(gids), len(wids))
		}
		for i := range wids {
			if gids[i] != wids[i] || gsims[i] != wsims[i] {
				tb.Fatalf("user %d edge %d: (%d, %v), want (%d, %v)",
					u, i, gids[i], gsims[i], wids[i], wsims[i])
			}
		}
	}
}

func TestRoundTripLosslessML1M(t *testing.T) {
	want := ml1MSnapshot(t)
	got, err := Decode(bytes.NewReader(encodeBytes(t, want)))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	sameFrozen(t, got.Graph, want.Graph)
	if got.Train.Name != want.Train.Name || got.Train.NumItems != want.Train.NumItems {
		t.Fatalf("dataset header mismatch: %q/%d vs %q/%d",
			got.Train.Name, got.Train.NumItems, want.Train.Name, want.Train.NumItems)
	}
	if got.Train.NumUsers() != want.Train.NumUsers() {
		t.Fatalf("dataset users: %d, want %d", got.Train.NumUsers(), want.Train.NumUsers())
	}
	for u, p := range want.Train.Profiles {
		gp := got.Train.Profiles[u]
		if len(gp) != len(p) {
			t.Fatalf("user %d profile length %d, want %d", u, len(gp), len(p))
		}
		for i := range p {
			if gp[i] != p[i] {
				t.Fatalf("user %d item %d: %d, want %d", u, i, gp[i], p[i])
			}
		}
	}
	if got.GoldFinger.Bits() != want.GoldFinger.Bits() {
		t.Fatalf("fingerprint width %d, want %d", got.GoldFinger.Bits(), want.GoldFinger.Bits())
	}
	gs, ws := got.GoldFinger.Signatures(), want.GoldFinger.Signatures()
	if len(gs) != len(ws) {
		t.Fatalf("signature block %d words, want %d", len(gs), len(ws))
	}
	for i := range ws {
		if gs[i] != ws[i] {
			t.Fatalf("signature word %d: %#x, want %#x", i, gs[i], ws[i])
		}
	}
	// The reconstructed provider serves identical similarity estimates.
	n := int32(want.Train.NumUsers())
	for u := int32(0); u < n; u += 7 {
		v := (u + 13) % n
		if got.GoldFinger.Sim(u, v) != want.GoldFinger.Sim(u, v) {
			t.Fatalf("Sim(%d,%d) differs after round trip", u, v)
		}
	}
}

func TestRoundTripFile(t *testing.T) {
	want := tinySnapshot(t)
	path := filepath.Join(t.TempDir(), "snap.c2")
	if err := WriteFile(path, want); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	sameFrozen(t, got.Graph, want.Graph)
}

func TestRoundTripPartialSnapshots(t *testing.T) {
	full := tinySnapshot(t)
	cases := []*Snapshot{
		{Graph: full.Graph},
		{Train: full.Train},
		{Graph: full.Graph, Train: full.Train},
		{GoldFinger: full.GoldFinger},
	}
	for i, s := range cases {
		got, err := Decode(bytes.NewReader(encodeBytes(t, s)))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if (got.Graph != nil) != (s.Graph != nil) ||
			(got.Train != nil) != (s.Train != nil) ||
			(got.GoldFinger != nil) != (s.GoldFinger != nil) {
			t.Fatalf("case %d: presence changed across round trip", i)
		}
	}
}

func TestEncodeRejectsEmptyAndInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, nil); err == nil {
		t.Error("Encode(nil) succeeded")
	}
	if err := Encode(&buf, &Snapshot{}); err == nil {
		t.Error("Encode(empty) succeeded")
	}
	bad := &knng.Frozen{K: 1, Offsets: []int64{0, 5}, IDs: []int32{9}, Sims: []float32{1}}
	if err := Encode(&buf, &Snapshot{Graph: bad}); err == nil {
		t.Error("Encode accepted a structurally invalid graph")
	}
}

// TestDecodeTruncated: every strict prefix of a valid snapshot must fail
// with an error, never panic, never return a snapshot.
func TestDecodeTruncated(t *testing.T) {
	data := encodeBytes(t, tinySnapshot(t))
	for cut := 0; cut < len(data); cut++ {
		snap, err := Decode(bytes.NewReader(data[:cut]))
		if err == nil || snap != nil {
			t.Fatalf("truncation at %d/%d bytes: snap=%v err=%v", cut, len(data), snap, err)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v not tagged ErrCorrupt", cut, err)
		}
	}
}

// TestDecodeBitFlips: flipping any single byte anywhere in the snapshot
// must be detected (magic, version, counts, lengths by framing checks;
// payload bytes by CRC-32C, which catches all single-byte errors).
func TestDecodeBitFlips(t *testing.T) {
	data := encodeBytes(t, tinySnapshot(t))
	mut := make([]byte, len(data))
	for i := range data {
		copy(mut, data)
		mut[i] ^= 0xA5
		snap, err := Decode(bytes.NewReader(mut))
		if err == nil || snap != nil {
			t.Fatalf("flip at byte %d/%d undetected: snap=%v err=%v", i, len(data), snap, err)
		}
	}
}

func TestDecodeVersionSkew(t *testing.T) {
	data := encodeBytes(t, tinySnapshot(t))
	data[8] = Version + 1 // version field, little-endian
	_, err := Decode(bytes.NewReader(data))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("version-skew error = %v, want ErrVersion", err)
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	data := append(encodeBytes(t, tinySnapshot(t)), 0xFF)
	if snap, err := Decode(bytes.NewReader(data)); err == nil || snap != nil {
		t.Fatalf("trailing garbage undetected: snap=%v err=%v", snap, err)
	}
}

func TestDecodeEmptyAndGarbageInputs(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		[]byte("C2SNAP"),
		[]byte("definitely not a snapshot file, just some text"),
		bytes.Repeat([]byte{0}, 64),
	}
	for i, in := range inputs {
		if snap, err := Decode(bytes.NewReader(in)); err == nil || snap != nil {
			t.Fatalf("input %d accepted: snap=%v err=%v", i, snap, err)
		}
	}
}

// TestDecodeLyingLength: a section header claiming a huge payload over a
// truncated stream must fail without attempting a giant allocation.
func TestDecodeLyingLength(t *testing.T) {
	data := encodeBytes(t, tinySnapshot(t))
	// Section 1 header starts at offset 16; its length field at 16+4.
	// Claim ~1 GiB.
	data[20], data[21], data[22], data[23] = 0, 0, 0, 0x40
	if snap, err := Decode(bytes.NewReader(data[:64])); err == nil || snap != nil {
		t.Fatalf("lying length undetected: snap=%v err=%v", snap, err)
	}
}

func TestDecodeMismatchedUserCounts(t *testing.T) {
	full := tinySnapshot(t)
	other := dataset.New("other", [][]int32{{0}, {1}}, 2)
	// Encode refuses to write mismatched sections, so splice two
	// single-section snapshots together by hand: shared header with
	// count=2, then each snapshot's section bytes.
	if err := Encode(bytes.NewBuffer(nil), &Snapshot{Graph: full.Graph, Train: other}); err == nil {
		t.Fatal("Encode accepted mismatched graph/dataset user counts")
	}
	a := encodeBytes(t, &Snapshot{Graph: full.Graph})
	b := encodeBytes(t, &Snapshot{Train: other})
	data := append([]byte{}, a[:12]...) // magic + version
	data = append(data, 2, 0, 0, 0)     // section count 2
	data = append(data, a[16:]...)      // graph section
	data = append(data, b[16:]...)      // dataset section
	if snap, err := Decode(bytes.NewReader(data)); err == nil || snap != nil {
		t.Fatalf("mismatched user counts undetected: snap=%v err=%v", snap, err)
	}
}

func BenchmarkDecodeML1M(b *testing.B) {
	data := encodeBytes(b, ml1MSnapshot(b))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
