package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
	"unsafe"
)

// alignedCopy copies b into a buffer whose base address is 64-byte
// aligned — the alignment a page-aligned mmap gives the real view path,
// and the precondition decodeAll's view mode asserts before casting
// slabs with unsafe.Slice. Tests that drive the view decoder over
// arbitrary byte images must route them through this.
func alignedCopy(b []byte) []byte {
	buf := make([]byte, len(b)+63)
	off := 0
	if r := uintptr(unsafe.Pointer(&buf[0])) % 64; r != 0 {
		off = int(64 - r)
	}
	out := buf[off : off+len(b) : off+len(b)]
	copy(out, b)
	return out
}

// findSection walks the version-2 framing and returns the payload range
// of the first section with the given type. The trailing CRC-32C sits
// at payEnd.
func findSection(tb testing.TB, data []byte, typ uint32) (payStart, payEnd int) {
	tb.Helper()
	count := binary.LittleEndian.Uint32(data[12:16])
	off := 16
	for i := uint32(0); i < count; i++ {
		st := binary.LittleEndian.Uint32(data[off:])
		length := int(binary.LittleEndian.Uint64(data[off+4:]))
		off += 12
		off += pad64(uint64(off))
		if st == typ {
			return off, off + length
		}
		off += length + 4
	}
	tb.Fatalf("no section of type %d in %d-byte image", typ, len(data))
	return 0, 0
}

// patchSection returns a copy of data with the given section's payload
// mutated and its CRC-32C recomputed to match, so the corruption under
// test reaches the payload decoder instead of being caught by the
// checksum.
func patchSection(tb testing.TB, data []byte, typ uint32, mutate func(payload []byte)) []byte {
	tb.Helper()
	out := append([]byte(nil), data...)
	s, e := findSection(tb, out, typ)
	mutate(out[s:e])
	binary.LittleEndian.PutUint32(out[e:], crc32.Checksum(out[s:e], crcTable))
	return out
}

// decodeBothPaths runs the same image through the streaming copy
// decoder and the whole-image view decoder (over an aligned copy) and
// checks they agree on accept vs reject; it returns the copy path's
// result.
func decodeBothPaths(tb testing.TB, data []byte) (*Snapshot, error) {
	tb.Helper()
	cs, cerr := Decode(bytes.NewReader(data))
	vs, verr := decodeAll(alignedCopy(data), true)
	if (cerr == nil) != (verr == nil) {
		tb.Fatalf("copy/view decoders disagree: copy err=%v, view err=%v", cerr, verr)
	}
	if verr == nil && vs == nil {
		tb.Fatal("view decode returned nil snapshot without error")
	}
	return cs, cerr
}

// writeSnap writes s to a fresh temp file and returns its path.
func writeSnap(tb testing.TB, s *Snapshot) string {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "snap.c2")
	if err := WriteFile(path, s); err != nil {
		tb.Fatalf("WriteFile: %v", err)
	}
	return path
}

// mapOrSkip maps path, skipping the test on platforms where the mmap
// path is unavailable (the copy decoder is then the only path and is
// covered elsewhere).
func mapOrSkip(tb testing.TB, path string) *Snapshot {
	tb.Helper()
	s, err := MapFile(path)
	if errors.Is(err, ErrMapUnavailable) {
		tb.Skipf("mmap unavailable on this platform: %v", err)
	}
	if err != nil {
		tb.Fatalf("MapFile: %v", err)
	}
	return s
}

// sameSnapshotBits asserts got and want carry bit-identical artifacts:
// raw CSR arrays (similarities compared as float bits, so a decoder
// that altered a NaN payload or flipped -0/+0 would fail), dataset
// profiles, and fingerprint slabs.
func sameSnapshotBits(tb testing.TB, got, want *Snapshot) {
	tb.Helper()
	g, w := got.Graph, want.Graph
	if g.K != w.K || g.NumUsers() != w.NumUsers() || g.NumEdges() != w.NumEdges() {
		tb.Fatalf("graph shape: k=%d n=%d m=%d, want k=%d n=%d m=%d",
			g.K, g.NumUsers(), g.NumEdges(), w.K, w.NumUsers(), w.NumEdges())
	}
	for i := range w.Offsets {
		if g.Offsets[i] != w.Offsets[i] {
			tb.Fatalf("offset %d: %d, want %d", i, g.Offsets[i], w.Offsets[i])
		}
	}
	for i := range w.IDs {
		if g.IDs[i] != w.IDs[i] {
			tb.Fatalf("id %d: %d, want %d", i, g.IDs[i], w.IDs[i])
		}
	}
	for i := range w.Sims {
		if math.Float32bits(g.Sims[i]) != math.Float32bits(w.Sims[i]) {
			tb.Fatalf("sim %d: %x, want %x", i, math.Float32bits(g.Sims[i]), math.Float32bits(w.Sims[i]))
		}
	}
	gt, wt := got.Train, want.Train
	if gt.Name != wt.Name || gt.NumItems != wt.NumItems || gt.NumUsers() != wt.NumUsers() {
		tb.Fatalf("dataset header: %q/%d/%d, want %q/%d/%d",
			gt.Name, gt.NumItems, gt.NumUsers(), wt.Name, wt.NumItems, wt.NumUsers())
	}
	for u, p := range wt.Profiles {
		gp := gt.Profiles[u]
		if len(gp) != len(p) {
			tb.Fatalf("user %d profile length %d, want %d", u, len(gp), len(p))
		}
		for i := range p {
			if gp[i] != p[i] {
				tb.Fatalf("user %d item %d: %d, want %d", u, i, gp[i], p[i])
			}
		}
	}
	gf, wf := got.GoldFinger, want.GoldFinger
	if gf.Bits() != wf.Bits() || gf.NumUsers() != wf.NumUsers() {
		tb.Fatalf("fingerprints: bits=%d n=%d, want bits=%d n=%d",
			gf.Bits(), gf.NumUsers(), wf.Bits(), wf.NumUsers())
	}
	gs, ws := gf.Signatures(), wf.Signatures()
	for i := range ws {
		if gs[i] != ws[i] {
			tb.Fatalf("signature word %d: %#x, want %#x", i, gs[i], ws[i])
		}
	}
	for u := 0; u < wf.NumUsers(); u++ {
		if gf.Ones(int32(u)) != wf.Ones(int32(u)) {
			tb.Fatalf("ones[%d]: %d, want %d", u, gf.Ones(int32(u)), wf.Ones(int32(u)))
		}
	}
}

// TestMapFileMatchesReadFile: the zero-copy view and the portable copy
// decode of the same file must produce bit-identical artifacts — the
// equivalence the serving layer's load-mode fallback relies on.
func TestMapFileMatchesReadFile(t *testing.T) {
	want := ml1MSnapshot(t)
	path := writeSnap(t, want)
	mm := mapOrSkip(t, path)
	defer mm.Close()
	if mm.Mapping == nil {
		t.Fatal("MapFile returned a snapshot without a Mapping")
	}
	if refs := mm.Mapping.Refs(); refs != 1 {
		t.Fatalf("fresh mapping holds %d refs, want 1", refs)
	}
	cp, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if cp.Mapping != nil {
		t.Fatal("copy decode produced a Mapping")
	}
	sameSnapshotBits(t, mm, cp)
	sameSnapshotBits(t, mm, want)
}

// TestDecodeAllViewTruncated mirrors TestDecodeTruncated on the mmap
// view path: every prefix of a valid image must be rejected.
func TestDecodeAllViewTruncated(t *testing.T) {
	data := encodeBytes(t, tinySnapshot(t))
	for cut := 0; cut < len(data); cut++ {
		snap, err := decodeAll(alignedCopy(data[:cut]), true)
		if err == nil || snap != nil {
			t.Fatalf("view decode of %d/%d-byte truncation: snap=%v err=%v", cut, len(data), snap, err)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v not tagged ErrCorrupt", cut, err)
		}
	}
}

// TestDecodeAllViewBitFlips mirrors TestDecodeBitFlips on the view
// path: a flipped byte anywhere in the image must be detected before a
// snapshot built on poisoned views escapes.
func TestDecodeAllViewBitFlips(t *testing.T) {
	data := encodeBytes(t, tinySnapshot(t))
	mut := make([]byte, len(data))
	for i := range data {
		copy(mut, data)
		mut[i] ^= 0xA5
		snap, err := decodeAll(alignedCopy(mut), true)
		if err == nil || snap != nil {
			t.Fatalf("view decode missed flip at byte %d/%d: snap=%v err=%v", i, len(data), snap, err)
		}
	}
}

// TestMapFileRejectsCorruptFile: damage must fail loudly on the mmap
// path with ErrCorrupt — not ErrMapUnavailable — so auto mode never
// papers over a bad file by silently copy-decoding it.
func TestMapFileRejectsCorruptFile(t *testing.T) {
	good := encodeBytes(t, tinySnapshot(t))
	dir := t.TempDir()
	cases := map[string][]byte{
		"truncated.c2": good[:len(good)/2],
		"flipped.c2":   patchRaw(good, len(good)/2),
	}
	for name, data := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := MapFile(path)
		if errors.Is(err, ErrMapUnavailable) {
			t.Skipf("mmap unavailable on this platform: %v", err)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: MapFile error = %v, want ErrCorrupt", name, err)
		}
		if snap, err := LoadFileMode(path, LoadAuto); err == nil {
			snap.Close()
			t.Fatalf("%s: auto mode fell back to copy-decoding a corrupt file", name)
		}
	}
}

func patchRaw(data []byte, at int) []byte {
	out := append([]byte(nil), data...)
	out[at] ^= 0xA5
	return out
}

// --- version-1 compatibility ---

func le32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func le64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// v1TinyFile hand-builds a version-1 snapshot file (packed layout, no
// alignment padding) carrying tinySnapshot's graph and dataset, using
// the v1 payload encodings this build no longer writes.
func v1TinyFile(tb testing.TB) ([]byte, *Snapshot) {
	tb.Helper()
	want := tinySnapshot(tb)
	f, d := want.Graph, want.Train

	var gp []byte
	gp = le32(gp, uint32(f.K))
	gp = le64(gp, uint64(f.NumUsers()))
	gp = le64(gp, uint64(f.NumEdges()))
	for u := 0; u < f.NumUsers(); u++ {
		gp = le32(gp, uint32(f.Offsets[u+1]-f.Offsets[u]))
	}
	for _, id := range f.IDs {
		gp = le32(gp, uint32(id))
	}
	for _, s := range f.Sims {
		gp = le32(gp, math.Float32bits(s))
	}

	var dp []byte
	dp = binary.LittleEndian.AppendUint16(dp, uint16(len(d.Name)))
	dp = append(dp, d.Name...)
	dp = le32(dp, uint32(d.NumItems))
	dp = le64(dp, uint64(d.NumUsers()))
	dp = le64(dp, uint64(d.NumRatings()))
	for _, p := range d.Profiles {
		dp = le32(dp, uint32(len(p)))
	}
	for _, p := range d.Profiles {
		for _, it := range p {
			dp = le32(dp, uint32(it))
		}
	}

	return v1File(gp, dp), want
}

// v1File frames version-1 sections (graph payload first, dataset
// second; empty payload slices are skipped).
func v1File(graphPayload, dsPayload []byte) []byte {
	type sec struct {
		typ     uint32
		payload []byte
	}
	var secs []sec
	if graphPayload != nil {
		secs = append(secs, sec{secGraph, graphPayload})
	}
	if dsPayload != nil {
		secs = append(secs, sec{secDataset, dsPayload})
	}
	data := append([]byte{}, magic[:]...)
	data = le32(data, 1)
	data = le32(data, uint32(len(secs)))
	for _, s := range secs {
		data = le32(data, s.typ)
		data = le64(data, uint64(len(s.payload)))
		data = append(data, s.payload...)
		data = le32(data, crc32.Checksum(s.payload, crcTable))
	}
	return data
}

// TestV1CompatCopyOnly: version-1 files still decode on the copy path,
// the mmap path declines them with ErrMapUnavailable (their packed
// layout cannot back aligned views), and auto mode falls back to copy.
func TestV1CompatCopyOnly(t *testing.T) {
	data, want := v1TinyFile(t)
	snap, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Decode(v1): %v", err)
	}
	sameFrozen(t, snap.Graph, want.Graph)
	if snap.Train.Name != want.Train.Name || snap.Train.NumUsers() != want.Train.NumUsers() {
		t.Fatalf("v1 dataset mismatch: %q/%d users", snap.Train.Name, snap.Train.NumUsers())
	}

	path := filepath.Join(t.TempDir(), "v1.c2")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MapFile(path); !errors.Is(err, ErrMapUnavailable) {
		t.Fatalf("MapFile(v1) error = %v, want ErrMapUnavailable", err)
	}
	if _, err := LoadFileMode(path, LoadMMap); !errors.Is(err, ErrMapUnavailable) {
		t.Fatalf("LoadFileMode(v1, mmap) error = %v, want ErrMapUnavailable", err)
	}
	auto, err := LoadFileMode(path, LoadAuto)
	if err != nil {
		t.Fatalf("LoadFileMode(v1, auto): %v", err)
	}
	defer auto.Close()
	if auto.Mapping != nil {
		t.Fatal("auto mode mapped a v1 file")
	}
	sameFrozen(t, auto.Graph, want.Graph)
}

// --- satellite regressions ---

// TestDecodeUserCountBoundary pins the plausibility guard at exactly
// math.MaxInt32: user ids are int32 throughout the stack, so the first
// rejected count is MaxInt32+1. The pre-fix guard (n > 1<<32) let
// counts in (MaxInt32, 2^32] through to downstream int casts.
func TestDecodeUserCountBoundary(t *testing.T) {
	base := encodeBytes(t, tinySnapshot(t))
	for _, typ := range []uint32{secGraph, secDataset, secGoldFinger} {
		for _, n := range []uint64{1 << 31, 1 << 32} {
			data := patchSection(t, base, typ, func(p []byte) {
				binary.LittleEndian.PutUint64(p[8:], n)
			})
			_, err := decodeBothPaths(t, data)
			if err == nil {
				t.Fatalf("section %d with n=%d accepted", typ, n)
			}
			if !strings.Contains(err.Error(), "implausible") {
				t.Fatalf("section %d with n=%d: error %v, want the implausible-dimensions rejection", typ, n, err)
			}
		}
		// MaxInt32 itself passes plausibility and must instead be caught
		// by the payload-size cross-check — proving the boundary sits
		// between MaxInt32 and MaxInt32+1.
		data := patchSection(t, base, typ, func(p []byte) {
			binary.LittleEndian.PutUint64(p[8:], math.MaxInt32)
		})
		_, err := decodeBothPaths(t, data)
		if err == nil {
			t.Fatalf("section %d with n=MaxInt32 and a tiny payload accepted", typ)
		}
		if strings.Contains(err.Error(), "implausible") {
			t.Fatalf("section %d: n=MaxInt32 rejected as implausible — guard boundary is off by one: %v", typ, err)
		}
	}
}

// TestDecodeDatasetLengthOverflow: a hostile profile length must be
// rejected by the checked add, on both decode paths and in both format
// versions. Pre-fix, the v2 decoder sliced the item slab with the raw
// sum — a length like 0xFFFFFFFF panicked on slice bounds instead of
// returning an error, and lengths crafted to wrap the uint64 total
// could equal the declared ratings count while pointing profiles past
// the slab.
func TestDecodeDatasetLengthOverflow(t *testing.T) {
	base := encodeBytes(t, tinySnapshot(t))
	lay := func(p []byte) dsLayout {
		nameLen := binary.LittleEndian.Uint32(p[0:])
		n := binary.LittleEndian.Uint64(p[8:])
		ratings := binary.LittleEndian.Uint64(p[16:])
		return dsLayoutOf(int(nameLen), int(n), int(ratings))
	}
	data := patchSection(t, base, secDataset, func(p []byte) {
		binary.LittleEndian.PutUint32(p[lay(p).lens:], 0xFFFFFFFF)
	})
	_, err := decodeBothPaths(t, data)
	if err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Fatalf("hostile v2 profile length: err=%v, want the lengths-exceed-ratings rejection", err)
	}

	// Same attack against the version-1 packed layout.
	v1, _ := v1TinyFile(t)
	snap, err := Decode(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 baseline decode: %v", err)
	}
	nameLen := 2 + len(snap.Train.Name) // u16 + name bytes
	// v1 dataset section is the second section; find its payload by
	// walking the packed framing.
	off := 16
	off += 12 + int(binary.LittleEndian.Uint64(v1[off+4:])) + 4 // skip graph section
	lensOff := off + 12 + nameLen + 20
	binary.LittleEndian.PutUint32(v1[lensOff:], 0xFFFFFFFF)
	payStart, payLen := off+12, int(binary.LittleEndian.Uint64(v1[off+4:]))
	binary.LittleEndian.PutUint32(v1[payStart+payLen:], crc32.Checksum(v1[payStart:payStart+payLen], crcTable))
	_, err = Decode(bytes.NewReader(v1))
	if err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Fatalf("hostile v1 profile length: err=%v, want the lengths-exceed-ratings rejection", err)
	}
}

// TestWriteFileConcurrentWriters: unique temp names mean concurrent
// writers to one path cannot interleave bytes — the file decodes after
// every racing rename, and no temp litter survives. The pre-fix fixed
// ".tmp" name let two writers open the same temp file and corrupt each
// other's output.
func TestWriteFileConcurrentWriters(t *testing.T) {
	snap := tinySnapshot(t)
	path := filepath.Join(t.TempDir(), "race.c2")
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if err := WriteFile(path, snap); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("file corrupt after concurrent writers: %v", err)
	}
	sameFrozen(t, got.Graph, snap.Graph)
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
}

// TestWriteFileSweepsStaleTemps: temps abandoned by crashed writers —
// including the legacy fixed ".tmp" name — are reclaimed once old
// enough, while a young temp (possibly a live writer's) survives.
func TestWriteFileSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.c2")
	old := time.Now().Add(-2 * staleTempAge)
	stale := []string{"snap.c2.tmp", "snap.c2.tmp-dead123"}
	for _, name := range stale {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("abandoned"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	young := filepath.Join(dir, "snap.c2.tmp-live456")
	if err := os.WriteFile(young, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, tinySnapshot(t)); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	for _, name := range stale {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("stale temp %q survived the sweep (err=%v)", name, err)
		}
	}
	if _, err := os.Stat(young); err != nil {
		t.Fatalf("young temp was swept: %v", err)
	}
}

// --- mapping lifetime ---

// TestMappingLifecycle drives the refcount state machine end to end:
// retain/release bracketing, close-to-zero unmapping, and the
// no-resurrection rule that protects hot swaps.
func TestMappingLifecycle(t *testing.T) {
	path := writeSnap(t, tinySnapshot(t))
	snap, err := LoadFileMode(path, LoadMMap)
	if errors.Is(err, ErrMapUnavailable) {
		t.Skipf("mmap unavailable on this platform: %v", err)
	}
	if err != nil {
		t.Fatalf("LoadFileMode(mmap): %v", err)
	}
	m := snap.Mapping
	if m == nil {
		t.Fatal("mmap load returned nil Mapping")
	}
	if m.Refs() != 1 || m.Size() == 0 {
		t.Fatalf("fresh mapping: refs=%d size=%d, want refs=1 and nonzero size", m.Refs(), m.Size())
	}
	if !m.Retain() {
		t.Fatal("Retain on a live mapping failed")
	}
	if m.Refs() != 2 {
		t.Fatalf("refs after Retain = %d, want 2", m.Refs())
	}
	m.Release()
	if m.Refs() != 1 {
		t.Fatalf("refs after Release = %d, want 1", m.Refs())
	}
	snap.Close()
	if m.Refs() != 0 || m.Size() != 0 {
		t.Fatalf("after final Close: refs=%d size=%d, want both 0 (unmapped)", m.Refs(), m.Size())
	}
	if m.Retain() {
		t.Fatal("Retain resurrected an unmapped mapping")
	}
	snap.Close() // idempotent: the snapshot dropped its reference already

	var nilMap *Mapping
	if nilMap.Refs() != 0 || nilMap.Size() != 0 {
		t.Fatal("nil mapping reports live state")
	}
	nilMap.Release() // no-op, must not panic
}

// TestLoadModes covers the mode plumbing: forced copy never maps,
// C2_LOAD selects the mode for LoadFile, and unknown names fail fast.
func TestLoadModes(t *testing.T) {
	path := writeSnap(t, tinySnapshot(t))
	cp, err := LoadFileMode(path, LoadCopy)
	if err != nil {
		t.Fatalf("LoadFileMode(copy): %v", err)
	}
	if cp.Mapping != nil {
		t.Fatal("forced copy load produced a Mapping")
	}

	t.Setenv("C2_LOAD", "copy")
	envCp, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile with C2_LOAD=copy: %v", err)
	}
	if envCp.Mapping != nil {
		t.Fatal("C2_LOAD=copy still mapped the file")
	}

	t.Setenv("C2_LOAD", "sideways")
	if _, err := LoadFile(path); err == nil {
		t.Fatal("unknown C2_LOAD value accepted")
	}

	for _, tc := range []struct {
		in   string
		mode LoadMode
	}{{"", LoadAuto}, {"auto", LoadAuto}, {"copy", LoadCopy}, {"mmap", LoadMMap}} {
		got, err := ParseLoadMode(tc.in)
		if err != nil || got != tc.mode {
			t.Fatalf("ParseLoadMode(%q) = %v, %v; want %v", tc.in, got, err, tc.mode)
		}
	}
	for _, m := range []LoadMode{LoadAuto, LoadCopy, LoadMMap} {
		if rt, err := ParseLoadMode(m.String()); err != nil || rt != m {
			t.Fatalf("mode %v does not round-trip through its name %q", m, m.String())
		}
	}
	if s := LoadMode(42).String(); !strings.Contains(s, "42") {
		t.Fatalf("unknown mode stringer = %q", s)
	}
}

// TestLoadFileModeAutoMapsV2 documents the default: on a platform with
// mmap, auto mode serves a v2 file as views.
func TestLoadFileModeAutoMapsV2(t *testing.T) {
	path := writeSnap(t, tinySnapshot(t))
	if !mmapSupported || !hostLittleEndian {
		t.Skip("no mmap on this platform")
	}
	snap, err := LoadFileMode(path, LoadAuto)
	if err != nil {
		t.Fatalf("LoadFileMode(auto): %v", err)
	}
	defer snap.Close()
	if snap.Mapping == nil {
		t.Fatal("auto mode copy-decoded a mappable v2 file")
	}
}
