// Package sets implements operations on sorted, duplicate-free []int32
// slices, which is how user profiles are represented throughout this
// repository. All binary operations assume both inputs are sorted in
// ascending order and contain no duplicates; Normalize establishes that
// invariant.
package sets

import "sort"

// Normalize sorts s in place, removes duplicates, and returns the
// (possibly shorter) normalized slice. The returned slice aliases s.
func Normalize(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// IsNormalized reports whether s is sorted ascending with no duplicates.
func IsNormalized(s []int32) bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// IntersectCount returns |a ∩ b| using a linear merge, falling back to a
// galloping strategy when the inputs have very different lengths.
func IntersectCount(a, b []int32) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Galloping pays off when one side is much longer than the other.
	if len(a) > 32*len(b) {
		return gallopCount(b, a)
	}
	if len(b) > 32*len(a) {
		return gallopCount(a, b)
	}
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// gallopCount counts the elements of the short slice present in the long
// slice using binary search.
func gallopCount(short, long []int32) int {
	n := 0
	lo := 0
	for _, v := range short {
		idx := lo + sort.Search(len(long)-lo, func(k int) bool { return long[lo+k] >= v })
		if idx < len(long) && long[idx] == v {
			n++
			lo = idx + 1
		} else {
			lo = idx
		}
		if lo >= len(long) {
			break
		}
	}
	return n
}

// UnionCount returns |a ∪ b|.
func UnionCount(a, b []int32) int {
	return len(a) + len(b) - IntersectCount(a, b)
}

// Intersect returns a newly allocated sorted slice holding a ∩ b.
func Intersect(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Union returns a newly allocated sorted slice holding a ∪ b.
func Union(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Contains reports whether sorted slice s contains x.
func Contains(s []int32, x int32) bool {
	i := sort.Search(len(s), func(k int) bool { return s[k] >= x })
	return i < len(s) && s[i] == x
}

// Equal reports whether a and b hold the same elements in the same order.
func Equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
