package sets

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		name string
		in   []int32
		want []int32
	}{
		{"empty", nil, nil},
		{"single", []int32{5}, []int32{5}},
		{"sorted", []int32{1, 2, 3}, []int32{1, 2, 3}},
		{"reverse", []int32{3, 2, 1}, []int32{1, 2, 3}},
		{"dups", []int32{2, 1, 2, 3, 1}, []int32{1, 2, 3}},
		{"alldups", []int32{7, 7, 7}, []int32{7}},
		{"negative", []int32{-1, 3, -1, 0}, []int32{-1, 0, 3}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Normalize(append([]int32(nil), c.in...))
			if !Equal(got, c.want) {
				t.Errorf("Normalize(%v) = %v, want %v", c.in, got, c.want)
			}
			if !IsNormalized(got) {
				t.Errorf("Normalize(%v) = %v is not normalized", c.in, got)
			}
		})
	}
}

func TestIsNormalized(t *testing.T) {
	if !IsNormalized(nil) {
		t.Error("nil should be normalized")
	}
	if !IsNormalized([]int32{1}) {
		t.Error("singleton should be normalized")
	}
	if IsNormalized([]int32{1, 1}) {
		t.Error("duplicates should not be normalized")
	}
	if IsNormalized([]int32{2, 1}) {
		t.Error("descending should not be normalized")
	}
}

func TestIntersectCountBasic(t *testing.T) {
	cases := []struct {
		a, b []int32
		want int
	}{
		{nil, nil, 0},
		{[]int32{1}, nil, 0},
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, 2},
		{[]int32{1, 2, 3}, []int32{4, 5}, 0},
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 3},
		{[]int32{1}, []int32{1}, 1},
	}
	for _, c := range cases {
		if got := IntersectCount(c.a, c.b); got != c.want {
			t.Errorf("IntersectCount(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := IntersectCount(c.b, c.a); got != c.want {
			t.Errorf("IntersectCount(%v, %v) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

// TestIntersectCountGalloping forces the galloping path with very skewed
// lengths and cross-checks against the merge result.
func TestIntersectCountGalloping(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	long := randomSet(rng, 5000, 100000)
	short := randomSet(rng, 20, 100000)
	want := naiveIntersect(short, long)
	if got := IntersectCount(short, long); got != want {
		t.Errorf("gallop short-long = %d, want %d", got, want)
	}
	if got := IntersectCount(long, short); got != want {
		t.Errorf("gallop long-short = %d, want %d", got, want)
	}
	// Short slice fully inside long.
	sub := append([]int32(nil), long[10:25]...)
	if got := IntersectCount(sub, long); got != len(sub) {
		t.Errorf("subset gallop = %d, want %d", got, len(sub))
	}
}

func TestUnionAndIntersectAgree(t *testing.T) {
	f := func(aRaw, bRaw []int16) bool {
		a := toSet(aRaw)
		b := toSet(bRaw)
		inter := Intersect(a, b)
		union := Union(a, b)
		if len(inter) != IntersectCount(a, b) {
			return false
		}
		if len(union) != UnionCount(a, b) {
			return false
		}
		if len(union)+len(inter) != len(a)+len(b) {
			return false // inclusion–exclusion
		}
		if !IsNormalized(inter) || !IsNormalized(union) {
			return false
		}
		for _, v := range inter {
			if !Contains(a, v) || !Contains(b, v) {
				return false
			}
		}
		for _, v := range a {
			if !Contains(union, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	s := []int32{1, 3, 5, 7}
	for _, v := range s {
		if !Contains(s, v) {
			t.Errorf("Contains(%v, %d) = false", s, v)
		}
	}
	for _, v := range []int32{0, 2, 4, 6, 8} {
		if Contains(s, v) {
			t.Errorf("Contains(%v, %d) = true", s, v)
		}
	}
	if Contains(nil, 1) {
		t.Error("Contains(nil, 1) = true")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(nil, nil) || !Equal([]int32{1, 2}, []int32{1, 2}) {
		t.Error("Equal false negatives")
	}
	if Equal([]int32{1}, []int32{2}) || Equal([]int32{1}, []int32{1, 2}) {
		t.Error("Equal false positives")
	}
}

// randomSet returns a normalized random set of approximately n elements
// drawn from [0, max).
func randomSet(rng *rand.Rand, n, max int) []int32 {
	s := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, int32(rng.Intn(max)))
	}
	return Normalize(s)
}

// naiveIntersect is the reference O(n·m) implementation.
func naiveIntersect(a, b []int32) int {
	n := 0
	for _, x := range a {
		for _, y := range b {
			if x == y {
				n++
				break
			}
		}
	}
	return n
}

// toSet converts arbitrary quick-generated values into a normalized set.
func toSet(raw []int16) []int32 {
	out := make([]int32, len(raw))
	for i, v := range raw {
		out[i] = int32(v)
	}
	return Normalize(out)
}

func TestIntersectCountAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a := randomSet(rng, rng.Intn(200), 500)
		b := randomSet(rng, rng.Intn(200), 500)
		if got, want := IntersectCount(a, b), naiveIntersect(a, b); got != want {
			t.Fatalf("trial %d: IntersectCount = %d, want %d", trial, got, want)
		}
	}
}

func BenchmarkIntersectCount(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randomSet(rng, 100, 20000)
	y := randomSet(rng, 100, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectCount(x, y)
	}
}

func BenchmarkIntersectCountGalloping(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randomSet(rng, 30, 1000000)
	y := randomSet(rng, 5000, 1000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectCount(x, y)
	}
}
