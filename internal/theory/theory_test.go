package theory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"c2knn/internal/sets"
)

// makeProfiles builds two profiles with `shared` common items and `only`
// exclusive items each.
func makeProfiles(shared, only int, seed int64) (p1, p2 []int32) {
	rng := rand.New(rand.NewSource(seed))
	used := make(map[int32]bool)
	draw := func() int32 {
		for {
			v := int32(rng.Intn(1 << 24))
			if !used[v] {
				used[v] = true
				return v
			}
		}
	}
	for i := 0; i < shared; i++ {
		v := draw()
		p1 = append(p1, v)
		p2 = append(p2, v)
	}
	for i := 0; i < only; i++ {
		p1 = append(p1, draw())
		p2 = append(p2, draw())
	}
	return sets.Normalize(p1), sets.Normalize(p2)
}

func TestJaccard(t *testing.T) {
	p1, p2 := makeProfiles(10, 10, 1)
	want := 10.0 / 30.0
	if got := Jaccard(p1, p2); math.Abs(got-want) > 1e-12 {
		t.Errorf("Jaccard = %v, want %v", got, want)
	}
	if Jaccard(nil, nil) != 0 {
		t.Error("Jaccard of empties should be 0")
	}
}

func TestCollisionsCount(t *testing.T) {
	p1, p2 := makeProfiles(20, 30, 2)
	kappa, ell := Collisions(p1, p2, 4096, 12345)
	if ell != 80 {
		t.Errorf("ℓ = %d, want 80", ell)
	}
	if kappa < 0 || kappa >= ell {
		t.Errorf("κ = %d out of range", kappa)
	}
	// With b much larger than ℓ, collisions are rare.
	if kappa > ell/4 {
		t.Errorf("κ = %d suspiciously high for b=4096, ℓ=%d", kappa, ell)
	}
}

// TestTheorem1ExactSandwich: for many random functions, the exact
// conditional probability of Eq. (6) must lie within the exact bounds of
// Eq. (9) computed from the same function's κ.
func TestTheorem1ExactSandwich(t *testing.T) {
	p1, p2 := makeProfiles(64, 96, 3) // ℓ=256, J=0.25
	j := Jaccard(p1, p2)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		seed := rng.Uint32()
		kappa, ell := Collisions(p1, p2, 4096, seed)
		lo, hi := Theorem1Exact(j, kappa, ell)
		cond := ConditionalCollision(p1, p2, 4096, seed)
		if cond < lo-1e-9 || cond > hi+1e-9 {
			t.Fatalf("trial %d: conditional P=%.4f outside [%.4f, %.4f] (κ=%d)",
				trial, cond, lo, hi, kappa)
		}
	}
}

// TestTheorem1Empirical: the empirical collision probability over many
// functions respects the paper's worked-example interval.
func TestTheorem1Empirical(t *testing.T) {
	p1, p2 := makeProfiles(64, 96, 5) // ℓ=256, J=0.25
	j := Jaccard(p1, p2)
	below, above, _ := PaperExample(256, 4096, 1.5)
	emp := EmpiricalCollision(p1, p2, 4096, 3000, 6)
	if emp < j-below || emp > j+above {
		t.Errorf("empirical P=%.4f outside [J−%.3f, J+%.3f] with J=%.3f", emp, below, above, j)
	}
	// The estimate should actually be close to J itself.
	if math.Abs(emp-j) > 0.05 {
		t.Errorf("empirical P=%.4f far from J=%.4f", emp, j)
	}
}

// TestEmpiricalMonotoneInSimilarity: more similar pairs collide more.
func TestEmpiricalMonotoneInSimilarity(t *testing.T) {
	high1, high2 := makeProfiles(80, 20, 7) // J = 80/120 ≈ 0.67
	low1, low2 := makeProfiles(10, 90, 8)   // J = 10/190 ≈ 0.05
	pHigh := EmpiricalCollision(high1, high2, 4096, 1500, 9)
	pLow := EmpiricalCollision(low1, low2, 4096, 1500, 9)
	if pHigh <= pLow {
		t.Errorf("P(high J)=%.3f ≤ P(low J)=%.3f", pHigh, pLow)
	}
}

func TestTheorem2Bounds(t *testing.T) {
	threshold, probLB := Theorem2(256, 4096, 1.5)
	if math.Abs(threshold-0.0778) > 0.001 {
		t.Errorf("threshold = %.4f, want ≈ 0.0778 (the paper's 0.078)", threshold)
	}
	if math.Abs(probLB-0.998) > 0.002 {
		t.Errorf("probLB = %.4f, want ≈ 0.998", probLB)
	}
	// d = 0.5 as printed in the paper gives much weaker numbers — the
	// repository treats the printed value as a typo (see Env.Theory).
	th05, p05 := Theorem2(256, 4096, 0.5)
	if th05 > 0.05 && p05 > 0.9 {
		t.Error("d=0.5 unexpectedly reproduces the paper's numbers")
	}
}

// TestTheorem2EmpiricalConcentration: the fraction of functions whose
// collision density stays below the threshold must beat the bound.
func TestTheorem2EmpiricalConcentration(t *testing.T) {
	p1, p2 := makeProfiles(64, 96, 10) // ℓ=256
	threshold, probLB := Theorem2(256, 4096, 1.5)
	rng := rand.New(rand.NewSource(11))
	const trials = 1500
	ok := 0
	for i := 0; i < trials; i++ {
		kappa, ell := Collisions(p1, p2, 4096, rng.Uint32())
		if float64(kappa)/float64(ell) < threshold {
			ok++
		}
	}
	if frac := float64(ok) / trials; frac < probLB-0.01 {
		t.Errorf("concentration %.4f below the bound %.4f", frac, probLB)
	}
}

// TestTheorem1SimpleBoundsOrdering: quick property — lo ≤ hi and the
// interval contains the exact-sandwich interval's center behaviour.
func TestTheorem1SimpleBounds(t *testing.T) {
	f := func(jRaw uint8, kappaRaw, ellRaw uint16) bool {
		ell := int(ellRaw%500) + 2
		kappa := int(kappaRaw) % (ell / 2)
		j := float64(jRaw) / 255
		lo, hi, ok := Theorem1Simple(j, kappa, ell)
		if !ok {
			return true // assumption violated; nothing to check
		}
		return lo <= j && j <= hi && lo <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSameHashDeterministic(t *testing.T) {
	p1, p2 := makeProfiles(5, 5, 12)
	if SameHash(p1, p2, 64, 7) != SameHash(p1, p2, 64, 7) {
		t.Error("SameHash not deterministic")
	}
	if !SameHash(p1, p1, 64, 7) {
		t.Error("identical profiles must share their hash")
	}
}
