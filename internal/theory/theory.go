// Package theory validates the analytical properties of FastRandomHash
// (§III of the paper): Theorem 1 bounds the probability that two users
// hash to the same cluster by their Jaccard similarity plus a collision
// term, and Theorem 2 concentrates that collision term. The functions
// here compute the paper's bounds exactly and estimate the corresponding
// probabilities empirically over many random generative functions, so
// tests and the `c2bench -exp theory` experiment can check the
// inequalities numerically (including the worked example ℓ=256, b=4096,
// d=0.5 ⇒ J−0.078 ≤ P ≤ J+0.234 with probability ≥ 0.998).
package theory

import (
	"math"

	"c2knn/internal/jenkins"
	"c2knn/internal/sets"
)

// hashTo projects item ids onto [1, b] with a seeded Jenkins hash — the
// same construction internal/frh uses.
func hashTo(item int32, seed uint32, b int) uint32 {
	return jenkins.Hash32(uint32(item), seed)%uint32(b) + 1
}

// minHash returns min_{i∈p} h(i) under (seed, b).
func minHash(p []int32, seed uint32, b int) uint32 {
	best := hashTo(p[0], seed, b)
	for _, it := range p[1:] {
		if v := hashTo(it, seed, b); v < best {
			best = v
		}
	}
	return best
}

// Collisions returns κ = ℓ − |h(P1 ∪ P2)| (the number of collisions the
// generative function with the given seed causes on the joint profile)
// and ℓ = |P1 ∪ P2|.
func Collisions(p1, p2 []int32, b int, seed uint32) (kappa, ell int) {
	union := sets.Union(p1, p2)
	ell = len(union)
	image := make(map[uint32]struct{}, ell)
	for _, it := range union {
		image[hashTo(it, seed, b)] = struct{}{}
	}
	return ell - len(image), ell
}

// SameHash reports whether the two profiles receive the same
// FastRandomHash value under (seed, b).
func SameHash(p1, p2 []int32, b int, seed uint32) bool {
	return minHash(p1, seed, b) == minHash(p2, seed, b)
}

// EmpiricalCollision estimates P[H(u1) = H(u2)] over `trials` independent
// generative functions.
func EmpiricalCollision(p1, p2 []int32, b, trials int, seed int64) float64 {
	fam := jenkins.NewFamily(trials, seed)
	same := 0
	for t := 0; t < trials; t++ {
		if SameHash(p1, p2, b, fam.Seed(t)) {
			same++
		}
	}
	return float64(same) / float64(trials)
}

// Jaccard returns J(P1, P2).
func Jaccard(p1, p2 []int32) float64 {
	inter := sets.IntersectCount(p1, p2)
	union := len(p1) + len(p2) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Theorem1Simple returns the simplified bounds of Eq. (4) and (5):
// lo = J − κ/ℓ and hi = J + 3κ/ℓ + (κ/ℓ)². hi is only valid when
// κ ≤ ℓ/2 (the theorem's assumption); ok reports that condition.
func Theorem1Simple(j float64, kappa, ell int) (lo, hi float64, ok bool) {
	r := float64(kappa) / float64(ell)
	return j - r, j + 3*r + r*r, kappa*2 <= ell
}

// Theorem1Exact returns the exact sandwich of Eq. (9):
// (J−κ/ℓ)/(1−κ/ℓ) ≤ P ≤ (J+κ/ℓ)/(1−κ/ℓ).
func Theorem1Exact(j float64, kappa, ell int) (lo, hi float64) {
	r := float64(kappa) / float64(ell)
	return (j - r) / (1 - r), (j + r) / (1 - r)
}

// ConditionalCollision returns the exact conditional probability of
// Eq. (6): |h(P1) ∩ h(P2)| / |h(P1 ∪ P2)| for the function identified by
// seed. Averaged over seeds it converges to P[H(u1) = H(u2)].
func ConditionalCollision(p1, p2 []int32, b int, seed uint32) float64 {
	img1 := make(map[uint32]struct{}, len(p1))
	for _, it := range p1 {
		img1[hashTo(it, seed, b)] = struct{}{}
	}
	imgU := make(map[uint32]struct{}, len(p1)+len(p2))
	for h := range img1 {
		imgU[h] = struct{}{}
	}
	both := 0
	img2 := make(map[uint32]struct{}, len(p2))
	for _, it := range p2 {
		h := hashTo(it, seed, b)
		imgU[h] = struct{}{}
		img2[h] = struct{}{}
	}
	for h := range img2 {
		if _, ok := img1[h]; ok {
			both++
		}
	}
	return float64(both) / float64(len(imgU))
}

// Theorem2 returns the collision-density threshold (1+d)(ℓ−1)/(2b) and
// the probability lower bound 1 − (e^d/(1+d)^(1+d))^{ℓ(ℓ−1)/(2b)} of
// Eq. (10).
func Theorem2(ell, b int, d float64) (threshold, probLB float64) {
	threshold = (1 + d) * float64(ell-1) / (2 * float64(b))
	exponent := float64(ell) * float64(ell-1) / (2 * float64(b))
	base := math.Exp(d) / math.Pow(1+d, 1+d)
	probLB = 1 - math.Pow(base, exponent)
	return threshold, probLB
}

// PaperExample evaluates the worked example after Theorem 2 (ℓ=256,
// b=4096, d=0.5): it returns the deviation δ⁻ below J, the deviation δ⁺
// above J, and the probability with which they hold, i.e. the triple the
// paper rounds to (0.078, 0.234, 0.998).
func PaperExample(ell, b int, d float64) (below, above, prob float64) {
	threshold, probLB := Theorem2(ell, b, d)
	// With κ/ℓ < threshold, Theorem 1 gives
	// J − threshold ≤ P and P ≤ J + 3·threshold + threshold².
	return threshold, 3*threshold + threshold*threshold, probLB
}
