package similarity

import (
	"math"
	"math/rand"
	"testing"
)

// bitsLocal builds a kindBits Local directly over random synthetic
// signatures — the package cannot import goldfinger (import cycle), and
// the row kernels only depend on the packed slab shape, not on how the
// bits were derived. Some members are zeroed so the union==0 branch is
// exercised.
func bitsLocal(t *testing.T, rng *rand.Rand, m, words int) *Local {
	t.Helper()
	ids := make([]int32, m)
	for i := range ids {
		ids[i] = int32(i * 3)
	}
	var loc Local
	sigs, ones := loc.InitBits(ids, words)
	for i := 0; i < m; i++ {
		if i%11 == 3 { // empty fingerprint: union can be 0
			continue
		}
		n := 0
		for w := 0; w < words; w++ {
			v := rng.Uint64() & rng.Uint64() // sparse-ish
			sigs[i*words+w] = v
		}
		for w := 0; w < words; w++ {
			n += popcount(sigs[i*words+w])
		}
		ones[i] = int32(n)
	}
	return &loc
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// checkRowsMatchSim verifies SimRow and SimBatch against per-pair Sim
// for every member and every block size 1..17 at every offset.
func checkRowsMatchSim(t *testing.T, loc *Local) {
	t.Helper()
	m := loc.Len()
	dst := make([]float64, m)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < m; i++ {
		for bs := 1; bs <= 17; bs++ {
			for j0 := 0; j0+bs <= m; j0 += bs {
				j1 := j0 + bs
				loc.SimRow(i, j0, j1, dst)
				for x := 0; x < bs; x++ {
					if got, want := dst[x], loc.Sim(i, j0+x); got != want {
						t.Fatalf("SimRow(%d, %d, %d)[%d] = %v, want Sim(%d,%d) = %v",
							i, j0, j1, x, got, i, j0+x, want)
					}
				}
			}
		}
		// SimBatch over a shuffled arbitrary index list, including i itself.
		js := make([]int32, 0, m)
		for j := 0; j < m; j++ {
			js = append(js, int32(j))
		}
		rng.Shuffle(len(js), func(a, b int) { js[a], js[b] = js[b], js[a] })
		loc.SimBatch(i, js, dst)
		for x, j := range js {
			if got, want := dst[x], loc.Sim(i, int(j)); got != want {
				t.Fatalf("SimBatch(%d)[%d] (j=%d) = %v, want %v", i, x, j, got, want)
			}
		}
	}
}

// TestSimRowBitsEquivalence sweeps the bit-signature kernel across word
// counts straddling every inner-loop regime: the 8/16/32-word
// specializations, exact multiples of the 4-wide unroll, and odd tails
// — under whatever count kernel is active, so a vector-capable build
// pins its assembly against the per-pair scalar Sim.
func TestSimRowBitsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, words := range []int{1, 2, 3, 4, 5, 7, 8, 12, 15, 16, 17, 32, 33} {
		loc := bitsLocal(t, rng, 37, words)
		checkRowsMatchSim(t, loc)
	}
}

func TestSimRowProfileKernelsEquivalence(t *testing.T) {
	d, _ := randomTestData(11)
	ids := make([]int32, 41)
	for i := range ids {
		ids[i] = int32((i * 7) % d.NumUsers())
	}
	for _, p := range []Provider{NewJaccard(d), NewCosine(d)} {
		var loc Local
		GatherInto(p, ids, &loc)
		checkRowsMatchSim(t, &loc)
	}
}

func TestSimRowGenericFallbackEquivalence(t *testing.T) {
	ids := make([]int32, 29)
	for i := range ids {
		ids[i] = int32(i * 5)
	}
	p := Func(func(u, v int32) float64 { return float64(u^v) / 512 })
	var loc Local
	GatherInto(p, ids, &loc)
	checkRowsMatchSim(t, &loc)
}

// TestSimRowCounting verifies the batched paths keep the Counting
// instrumentation exact: one count per scored element, through both the
// gathered-kernel counter and the provider-dispatch fallback.
func TestSimRowCounting(t *testing.T) {
	d, _ := randomTestData(12)
	c := NewCounting(NewJaccard(d))
	ids := []int32{1, 4, 9, 16, 25, 36, 49}
	var loc Local
	GatherInto(c, ids, &loc)
	dst := make([]float64, len(ids))
	loc.SimRow(0, 1, 5, dst)
	if c.Count() != 4 {
		t.Errorf("SimRow of 4 elements counted %d", c.Count())
	}
	loc.SimBatch(2, []int32{0, 1, 3}, dst)
	if c.Count() != 7 {
		t.Errorf("after SimBatch of 3: count = %d, want 7", c.Count())
	}

	// RowProvider path of Counting itself, around a non-RowProvider.
	c2 := NewCounting(Func(func(u, v int32) float64 { return float64(u+v) / 100 }))
	var rp RowProvider = c2
	rp.SimRow(3, 5, 9, dst)
	if c2.Count() != 4 {
		t.Errorf("Counting.SimRow fallback counted %d, want 4", c2.Count())
	}
	for x := 0; x < 4; x++ {
		if dst[x] != float64(3+5+int32(x))/100 {
			t.Errorf("Counting.SimRow fallback dst[%d] = %v", x, dst[x])
		}
	}
}

// FuzzSimRowBits cross-checks the blocked bit kernel against scalar Sim
// on fuzz-chosen member counts, word widths 1..33, and block boundaries
// up to kernel-chunk-straddling run lengths — and re-runs every row
// under the forced scalar kernel, asserting byte-identical output, so
// the fuzzer hammers the vector/scalar bit-identity contract on
// whatever hardware it runs on.
func FuzzSimRowBits(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(20), uint8(0), uint8(7))
	f.Add(int64(2), uint8(1), uint8(3), uint8(1), uint8(2))
	f.Add(int64(3), uint8(17), uint8(9), uint8(4), uint8(5))
	f.Add(int64(4), uint8(32), uint8(129), uint8(0), uint8(130))
	f.Fuzz(func(t *testing.T, seed int64, wordsB, mB, j0B, bsB uint8) {
		defer restoreKernel()
		words := 1 + int(wordsB)%33
		m := 2 + int(mB)%132
		rng := rand.New(rand.NewSource(seed))
		loc := bitsLocal(t, rng, m, words)
		j0 := int(j0B) % m
		j1 := j0 + 1 + int(bsB)%(m-j0)
		if j1 > m {
			j1 = m
		}
		dst := make([]float64, j1-j0)
		i := int(seed>>1) % m
		if i < 0 {
			i = -i
		}
		loc.SimRow(i, j0, j1, dst)
		for x := range dst {
			if got, want := dst[x], loc.Sim(i, j0+x); got != want {
				t.Fatalf("words=%d m=%d i=%d block=[%d,%d): dst[%d]=%v, Sim=%v",
					words, m, i, j0, j1, x, got, want)
			}
		}
		scalar := make([]float64, j1-j0)
		if _, err := SelectKernel("scalar"); err != nil {
			t.Fatal(err)
		}
		loc.SimRow(i, j0, j1, scalar)
		for x := range dst {
			if math.Float64bits(dst[x]) != math.Float64bits(scalar[x]) {
				t.Fatalf("words=%d m=%d i=%d block=[%d,%d): dst[%d]=%x, scalar=%x",
					words, m, i, j0, j1, x,
					math.Float64bits(dst[x]), math.Float64bits(scalar[x]))
			}
		}
	})
}
