// Package similarity defines the similarity metric abstraction the KNN
// algorithms are built on, plus the exact set-based metrics used in the
// paper: Jaccard (§II-A, the paper's default) and cosine over binary
// profiles. A Counting decorator instruments the number of similarity
// computations, the paper's primary cost model.
//
// The package has two call paths. Provider is the global interface:
// Sim(u, v) on global user ids, dynamically dispatched — fine for
// occasional evaluations (quality metrics, random inits). The hot path
// of every cluster-local solver instead goes through Local, a concrete
// gathered kernel built once per cluster (see Localizer and
// GatherInto in local.go): the cluster's data is copied into contiguous
// scratch memory, after which each pair similarity is a direct call on
// local indices with no interface dispatch, no global-id re-slicing,
// and — for bit-signature providers like GoldFinger — half the popcount
// work. Both paths return bit-identical values.
package similarity

import (
	"math"
	"sync/atomic"

	"c2knn/internal/dataset"
	"c2knn/internal/sets"
)

// Provider computes the similarity between two users identified by their
// dense ids. Implementations must be safe for concurrent use.
type Provider interface {
	// Sim returns sim(u, v) in [0, 1].
	Sim(u, v int32) float64
}

// RowProvider is the optional row-batched fast path of a Provider:
// score u against the contiguous global-id run [v0, v1) in one call,
// writing Sim(u, v0+x) into dst[x] (dst must hold at least v1-v0
// elements). Providers whose representation is already a dense
// member-major slab (GoldFinger) serve whole rows without any gather,
// which the exact brute-force baseline exploits. Each dst element must
// be bit-identical to the corresponding Sim call, and implementations
// must be safe for concurrent use.
type RowProvider interface {
	SimRow(u, v0, v1 int32, dst []float64)
}

// Jaccard computes the exact Jaccard similarity
// J(P_u, P_v) = |P_u ∩ P_v| / |P_u ∪ P_v| over raw profiles.
type Jaccard struct {
	profiles [][]int32
}

// NewJaccard returns a Jaccard provider over d's profiles.
func NewJaccard(d *dataset.Dataset) *Jaccard {
	return &Jaccard{profiles: d.Profiles}
}

// Sim implements Provider.
func (j *Jaccard) Sim(u, v int32) float64 {
	a, b := j.profiles[u], j.profiles[v]
	inter := sets.IntersectCount(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Cosine computes the cosine similarity over binary profiles:
// |P_u ∩ P_v| / sqrt(|P_u|·|P_v|). Like Jaccard it is positively
// correlated with the overlap and negatively with the profile sizes, so it
// satisfies the paper's f_sim requirements (§II-A).
type Cosine struct {
	profiles [][]int32
}

// NewCosine returns a Cosine provider over d's profiles.
func NewCosine(d *dataset.Dataset) *Cosine {
	return &Cosine{profiles: d.Profiles}
}

// Sim implements Provider.
func (c *Cosine) Sim(u, v int32) float64 {
	a, b := c.profiles[u], c.profiles[v]
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := sets.IntersectCount(a, b)
	return float64(inter) / math.Sqrt(float64(len(a))*float64(len(b)))
}

// Counting wraps a Provider and counts calls to Sim. It is the
// instrumentation behind the "number of similarity computations" cost
// reported by the experiment harness.
type Counting struct {
	P Provider
	n atomic.Int64
}

// NewCounting wraps p.
func NewCounting(p Provider) *Counting { return &Counting{P: p} }

// Sim implements Provider, incrementing the counter.
func (c *Counting) Sim(u, v int32) float64 {
	c.n.Add(1)
	return c.P.Sim(u, v)
}

// SimRow implements RowProvider, counting one computation per row
// element: the batch is delegated to the wrapped provider's own row
// kernel when it has one and served by per-pair Sim dispatch otherwise
// (still counted once, not double: the fallback calls c.P, not c).
func (c *Counting) SimRow(u, v0, v1 int32, dst []float64) {
	dst = dst[:v1-v0]
	if len(dst) == 0 {
		return
	}
	c.n.Add(int64(len(dst)))
	if rp, ok := c.P.(RowProvider); ok {
		rp.SimRow(u, v0, v1, dst)
		return
	}
	for x := range dst {
		dst[x] = c.P.Sim(u, v0+int32(x))
	}
}

// Count returns the number of Sim calls observed so far.
func (c *Counting) Count() int64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counting) Reset() { c.n.Store(0) }

// Func adapts a plain function to the Provider interface; convenient in
// tests.
type Func func(u, v int32) float64

// Sim implements Provider.
func (f Func) Sim(u, v int32) float64 { return f(u, v) }
