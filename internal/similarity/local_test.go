package similarity

import (
	"math/rand"
	"testing"

	"c2knn/internal/dataset"
)

// randomTestData builds a small dataset with irregular profile sizes,
// including empty profiles, plus random clusters over its users.
func randomTestData(seed int64) (*dataset.Dataset, [][]int32) {
	rng := rand.New(rand.NewSource(seed))
	const users, items = 200, 500
	profiles := make([][]int32, users)
	for u := range profiles {
		n := rng.Intn(40) // 0..39 items; some users stay empty
		seen := map[int32]bool{}
		for len(profiles[u]) < n {
			it := int32(rng.Intn(items))
			if !seen[it] {
				seen[it] = true
				profiles[u] = append(profiles[u], it)
			}
		}
		// keep the sorted, duplicate-free invariant
		for i := 1; i < len(profiles[u]); i++ {
			for j := i; j > 0 && profiles[u][j] < profiles[u][j-1]; j-- {
				profiles[u][j], profiles[u][j-1] = profiles[u][j-1], profiles[u][j]
			}
		}
	}
	d := &dataset.Dataset{Name: "rand", NumItems: items, Profiles: profiles}
	clusters := make([][]int32, 20)
	for c := range clusters {
		m := 2 + rng.Intn(30)
		perm := rng.Perm(users)
		for i := 0; i < m; i++ {
			clusters[c] = append(clusters[c], int32(perm[i]))
		}
	}
	return d, clusters
}

// checkLocalMatchesGlobal asserts that the gathered kernel agrees
// exactly (bit-identically) with the global Provider path on every pair
// of every cluster.
func checkLocalMatchesGlobal(t *testing.T, p Provider, clusters [][]int32) {
	t.Helper()
	var loc Local // reused across clusters, exercising scratch reuse
	for ci, ids := range clusters {
		GatherInto(p, ids, &loc)
		if loc.Len() != len(ids) {
			t.Fatalf("cluster %d: Len() = %d, want %d", ci, loc.Len(), len(ids))
		}
		for i := range ids {
			if loc.ID(i) != ids[i] {
				t.Fatalf("cluster %d: ID(%d) = %d, want %d", ci, i, loc.ID(i), ids[i])
			}
			for j := range ids {
				got, want := loc.Sim(i, j), p.Sim(ids[i], ids[j])
				if got != want {
					t.Fatalf("cluster %d pair (%d,%d): local %v != global %v",
						ci, ids[i], ids[j], got, want)
				}
			}
		}
	}
}

func TestJaccardLocalEquivalence(t *testing.T) {
	d, clusters := randomTestData(1)
	checkLocalMatchesGlobal(t, NewJaccard(d), clusters)
}

func TestCosineLocalEquivalence(t *testing.T) {
	d, clusters := randomTestData(2)
	checkLocalMatchesGlobal(t, NewCosine(d), clusters)
}

func TestGenericFallbackEquivalence(t *testing.T) {
	_, clusters := randomTestData(3)
	// Func does not implement Localizer, so GatherInto must fall back to
	// the Provider-dispatch kernel.
	p := Func(func(u, v int32) float64 { return float64(u^v) / 512 })
	if _, ok := Provider(p).(Localizer); ok {
		t.Fatal("Func unexpectedly implements Localizer; fallback untested")
	}
	checkLocalMatchesGlobal(t, p, clusters)
}

func TestCountingGatherKeepsCounting(t *testing.T) {
	d, clusters := randomTestData(4)

	// Localizer inner: the gathered kernel must bump the counter itself.
	c := NewCounting(NewJaccard(d))
	var loc Local
	GatherInto(c, clusters[0], &loc)
	m := len(clusters[0])
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			loc.Sim(i, j)
		}
	}
	if want := int64(m * (m - 1) / 2); c.Count() != want {
		t.Errorf("counting through gathered kernel: %d sims, want %d", c.Count(), want)
	}

	// Non-Localizer inner: the fallback kernel dispatches through the
	// Counting provider, which counts the calls.
	c2 := NewCounting(Func(func(u, v int32) float64 { return 0.5 }))
	GatherInto(c2, clusters[0], &loc)
	loc.Sim(0, 1)
	loc.Sim(1, 2)
	if c2.Count() != 2 {
		t.Errorf("counting through fallback kernel: %d sims, want 2", c2.Count())
	}
}

func TestLocalScratchReuseAcrossSizes(t *testing.T) {
	d, _ := randomTestData(5)
	p := NewJaccard(d)
	var loc Local
	// Shrinking and growing clusters must not leave stale members behind.
	big := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	small := []int32{9, 10}
	GatherInto(p, big, &loc)
	GatherInto(p, small, &loc)
	if loc.Len() != 2 {
		t.Fatalf("Len after shrink = %d, want 2", loc.Len())
	}
	if got, want := loc.Sim(0, 1), p.Sim(9, 10); got != want {
		t.Errorf("post-shrink Sim = %v, want %v", got, want)
	}
	GatherInto(p, big, &loc)
	if got, want := loc.Sim(6, 7), p.Sim(6, 7); got != want {
		t.Errorf("post-regrow Sim = %v, want %v", got, want)
	}
}
