package similarity

import (
	"fmt"
	"math/bits"
	"os"
)

// This file is the count-kernel layer: every bit-signature similarity in
// the repository bottoms out in "popcount(a AND b)" evaluated either for
// one pair (AndCount) or for one signature against a contiguous run of
// slab rows (countRun). The run shape is where the time goes — the
// blocked cluster solvers and goldfinger's RowProvider score whole rows —
// and it is the shape the vectorized kernels accelerate: AVX2 on amd64
// (VPAND + VPSHUFB nibble popcount) and NEON on arm64 (VAND + VCNT +
// VUADDLV) process 4+ signature words per vector op instead of one
// scalar POPCNT each.
//
// The contract that keeps this layer safe to swap under the solvers:
// kernels return exact integer intersection counts, and the float64
// Jaccard division stays in Go (BitSimRow), so vector and scalar paths
// are trivially bit-identical — there is no floating-point reassociation
// to reason about, and the frozen scalar reference plus the fuzz and
// equivalence tests remain the correctness oracle for both arms.
//
// Kernel selection happens once at init: a dependency-free CPU feature
// probe (CPUID/XGETBV on amd64; NEON is ARMv8 baseline on arm64) picks
// the vector kernel, and the C2_KERNEL environment variable overrides it
// ("scalar" forces the pure-Go path; a kernel name such as "avx2" or
// "neon" demands that kernel and falls back to scalar with a warning
// when the hardware lacks it). The active kernel name is surfaced by
// KernelName — c2serve reports it in /statsz, c2bench records it in
// BENCH_solve.json — so a benchmark record always says which arm it
// measured.

// kernelChunk is the number of rows BitSimRow scores per count-kernel
// call: a [kernelChunk]int32 scratch lives on the caller's stack (512 B
// — small enough that the implicit zeroing is noise, large enough to
// amortize the kernel call to a fraction of a nanosecond per row).
const kernelChunk = 128

var (
	// kernelName is the active kernel ("scalar", "avx2", "neon").
	kernelName = "scalar"

	// useVector routes countRun/countOne into the per-arch assembly
	// kernels (countRunVector / countOneVector). It is a plain bool —
	// not a function value — so the assembly declarations' //go:noescape
	// stays visible to escape analysis and BitSimRow's stack counts
	// scratch never escapes.
	useVector bool
)

func init() {
	if _, err := SelectKernel(os.Getenv("C2_KERNEL")); err != nil {
		// An impossible explicit request (C2_KERNEL=neon on amd64, or a
		// typo) must not kill a serving process at import time: warn and
		// run scalar, which is always correct.
		fmt.Fprintf(os.Stderr, "c2knn/similarity: %v; using scalar kernel\n", err)
	}
}

// KernelName returns the name of the active similarity count kernel:
// "scalar", or a vector kernel such as "avx2" (amd64) or "neon"
// (arm64). Serving and benchmark surfaces report it so every recorded
// number is attributable to the kernel that produced it.
func KernelName() string { return kernelName }

// SelectKernel activates the named count kernel and returns the name of
// the kernel actually in effect. "" and "auto" pick the best kernel the
// CPU supports; "scalar" forces the pure-Go reference path; an explicit
// vector name ("avx2", "neon") demands that kernel and returns an error
// — leaving scalar active — when this build or CPU cannot provide it.
//
// Selection is process-global and not synchronized: call it at startup
// or between benchmark phases, never concurrently with scoring. All
// kernels produce bit-identical results, so a mid-run switch is a
// correctness no-op anyway; the restriction exists for the race
// detector, not for readers.
func SelectKernel(pref string) (string, error) {
	name := vectorName() // "" when this build/CPU has no vector kernel
	switch pref {
	case "", "auto":
		// Best available.
	case "scalar":
		name = ""
	default:
		if pref != name {
			kernelName, useVector = "scalar", false
			return kernelName, fmt.Errorf("kernel %q not available on this CPU (have %q)", pref, availableName(name))
		}
	}
	if name == "" {
		kernelName, useVector = "scalar", false
	} else {
		kernelName, useVector = name, true
	}
	return kernelName, nil
}

func availableName(vec string) string {
	if vec == "" {
		return "scalar"
	}
	return "scalar, " + vec
}

// countRun writes counts[x] = popcount(a AND slab[x·words:(x+1)·words])
// for every x in [0, len(counts)). a must hold exactly `words` words and
// slab at least len(counts)·words. This is the single dispatch point of
// the run-shaped hot path: BitSimRow (and through it every blocked
// solver and goldfinger's RowProvider) calls it once per chunk of rows.
func countRun(counts []int32, a, slab []uint64, words int) {
	n := len(counts)
	if n == 0 {
		return
	}
	_ = a[words-1]
	_ = slab[n*words-1]
	if useVector {
		countRunVector(counts, a, slab, words)
		return
	}
	countRunScalar(counts, a, slab, words)
}

// countRunScalar is the pure-Go run kernel — the reference every vector
// kernel is fuzzed against, and the production path under
// C2_KERNEL=scalar or on ports without assembly. The paper-default 16
// and the 512-/2048-bit widths 8 and 32 dispatch to unrolled
// single-pair counts so common non-default signature sizes do not fall
// through to the word-at-a-time loop.
func countRunScalar(counts []int32, a, slab []uint64, words int) {
	switch words {
	case 16:
		ap := (*[16]uint64)(a)
		base := 0
		for x := range counts {
			counts[x] = int32(andCount16(ap, (*[16]uint64)(slab[base:])))
			base += 16
		}
	case 8:
		ap := (*[8]uint64)(a)
		base := 0
		for x := range counts {
			counts[x] = int32(andCount8(ap, (*[8]uint64)(slab[base:])))
			base += 8
		}
	case 32:
		ap := (*[32]uint64)(a)
		base := 0
		for x := range counts {
			counts[x] = int32(andCount32(ap, (*[32]uint64)(slab[base:])))
			base += 32
		}
	default:
		base := 0
		for x := range counts {
			counts[x] = int32(andCountWords(a, slab[base:base+words]))
			base += words
		}
	}
}

// countOne returns popcount(a AND row) through the active kernel: the
// batch-shaped path (SimBatch gathers scattered slab rows, so there is
// no contiguous run to hand the run kernels) still benefits from the
// vector kernel at the paper-default width, one single-row call at a
// time.
func countOne(a, row []uint64, words int) int {
	if useVector {
		if c, ok := countOneVector(a, row, words); ok {
			return c
		}
	}
	return AndCount(a, row)
}

// AndCount returns popcount(a AND b), the intersection cardinality of
// two equal-width bit signatures, through the scalar specializations
// (8/16/32 words unrolled, 4-wide loop otherwise). It is the per-pair
// form of the count kernels — goldfinger.Set.Sim and the gathered
// Local.Sim run on it.
func AndCount(a, b []uint64) int {
	switch len(a) {
	case 16:
		return andCount16((*[16]uint64)(a), (*[16]uint64)(b))
	case 8:
		return andCount8((*[8]uint64)(a), (*[8]uint64)(b))
	case 32:
		return andCount32((*[32]uint64)(a), (*[32]uint64)(b))
	}
	return andCountWords(a, b)
}

// andCount16 is the unrolled AND-popcount of the paper's default
// 1024-bit fingerprints — the single copy of the body that used to be
// pasted into Sim, BitSimRow and bitSimBatch. Fixed-size array views
// eliminate bounds checks; the 32-intrinsic body is far past the
// inliner's budget, so callers pay one call per pair — the run-shaped
// paths avoid even that by amortizing countRun over whole chunks.
func andCount16(a, b *[16]uint64) int {
	return bits.OnesCount64(a[0]&b[0]) + bits.OnesCount64(a[1]&b[1]) +
		bits.OnesCount64(a[2]&b[2]) + bits.OnesCount64(a[3]&b[3]) +
		bits.OnesCount64(a[4]&b[4]) + bits.OnesCount64(a[5]&b[5]) +
		bits.OnesCount64(a[6]&b[6]) + bits.OnesCount64(a[7]&b[7]) +
		bits.OnesCount64(a[8]&b[8]) + bits.OnesCount64(a[9]&b[9]) +
		bits.OnesCount64(a[10]&b[10]) + bits.OnesCount64(a[11]&b[11]) +
		bits.OnesCount64(a[12]&b[12]) + bits.OnesCount64(a[13]&b[13]) +
		bits.OnesCount64(a[14]&b[14]) + bits.OnesCount64(a[15]&b[15])
}

// andCount8 is the 512-bit specialization.
func andCount8(a, b *[8]uint64) int {
	return bits.OnesCount64(a[0]&b[0]) + bits.OnesCount64(a[1]&b[1]) +
		bits.OnesCount64(a[2]&b[2]) + bits.OnesCount64(a[3]&b[3]) +
		bits.OnesCount64(a[4]&b[4]) + bits.OnesCount64(a[5]&b[5]) +
		bits.OnesCount64(a[6]&b[6]) + bits.OnesCount64(a[7]&b[7])
}

// andCount32 is the 2048-bit specialization.
func andCount32(a, b *[32]uint64) int {
	return andCount16((*[16]uint64)(a[:16]), (*[16]uint64)(b[:16])) +
		andCount16((*[16]uint64)(a[16:]), (*[16]uint64)(b[16:]))
}

// andCountWords is the AND-popcount of two equally sized word slices,
// 4-wide unrolled for the common multiples-of-four widths.
func andCountWords(a, b []uint64) int {
	b = b[:len(a)] // bounds-check elimination in both loops below
	inter := 0
	k := 0
	for ; k+4 <= len(a); k += 4 {
		inter += bits.OnesCount64(a[k]&b[k]) + bits.OnesCount64(a[k+1]&b[k+1]) +
			bits.OnesCount64(a[k+2]&b[k+2]) + bits.OnesCount64(a[k+3]&b[k+3])
	}
	for ; k < len(a); k++ {
		inter += bits.OnesCount64(a[k] & b[k])
	}
	return inter
}
