package similarity

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"c2knn/internal/dataset"
	"c2knn/internal/sets"
)

func fixture() *dataset.Dataset {
	return dataset.New("fix", [][]int32{
		{0, 1, 2},    // u0
		{1, 2, 3},    // u1: |∩|=2, |∪|=4 with u0
		{0, 1, 2},    // u2: identical to u0
		{7, 8},       // u3: disjoint from u0
		{},           // u4: empty
		{0},          // u5
		{0, 1, 2, 3}, // u6: superset of u0
	}, 10)
}

func TestJaccardKnownValues(t *testing.T) {
	j := NewJaccard(fixture())
	cases := []struct {
		u, v int32
		want float64
	}{
		{0, 1, 0.5},
		{0, 2, 1.0},
		{0, 3, 0.0},
		{0, 4, 0.0},
		{4, 4, 0.0}, // empty vs empty: defined as 0
		{0, 5, 1.0 / 3.0},
		{0, 6, 0.75},
	}
	for _, c := range cases {
		if got := j.Sim(c.u, c.v); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("J(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
		if got, rev := j.Sim(c.u, c.v), j.Sim(c.v, c.u); got != rev {
			t.Errorf("J(%d,%d) != J(%d,%d)", c.u, c.v, c.v, c.u)
		}
	}
}

func TestCosineKnownValues(t *testing.T) {
	c := NewCosine(fixture())
	if got := c.Sim(0, 2); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("cos identical = %v, want 1", got)
	}
	if got := c.Sim(0, 3); got != 0 {
		t.Errorf("cos disjoint = %v, want 0", got)
	}
	want := 2.0 / math.Sqrt(9) // |∩|=2, |P0|=|P1|=3
	if got := c.Sim(0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("cos(0,1) = %v, want %v", got, want)
	}
	if got := c.Sim(4, 0); got != 0 {
		t.Errorf("cos with empty = %v, want 0", got)
	}
}

// TestMetricsProperties: range, symmetry, self-similarity on random
// profiles; Jaccard ≤ cosine for binary sets.
func TestMetricsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	profiles := make([][]int32, 40)
	for i := range profiles {
		n := rng.Intn(30)
		p := make([]int32, n)
		for j := range p {
			p[j] = int32(rng.Intn(60))
		}
		profiles[i] = sets.Normalize(p)
	}
	d := dataset.New("prop", profiles, 60)
	j := NewJaccard(d)
	c := NewCosine(d)
	f := func(a, b uint8) bool {
		u := int32(a) % int32(d.NumUsers())
		v := int32(b) % int32(d.NumUsers())
		js, cs := j.Sim(u, v), c.Sim(u, v)
		if js < 0 || js > 1 || cs < 0 || cs > 1 {
			return false
		}
		if js != j.Sim(v, u) || cs != c.Sim(v, u) {
			return false
		}
		if len(d.Profiles[u]) > 0 && j.Sim(u, u) != 1 {
			return false
		}
		// For binary sets, |∩|/|∪| ≤ |∩|/√(|A||B|).
		return js <= cs+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCountingCountsConcurrently(t *testing.T) {
	j := NewCounting(NewJaccard(fixture()))
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				j.Sim(0, 1)
			}
		}()
	}
	wg.Wait()
	if got := j.Count(); got != 4*perWorker {
		t.Errorf("Count = %d, want %d", got, 4*perWorker)
	}
	j.Reset()
	if got := j.Count(); got != 0 {
		t.Errorf("Count after Reset = %d, want 0", got)
	}
}

func TestFuncAdapter(t *testing.T) {
	p := Func(func(u, v int32) float64 { return float64(u + v) })
	if p.Sim(2, 3) != 5 {
		t.Error("Func adapter broken")
	}
}

func BenchmarkJaccard(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	profiles := make([][]int32, 2)
	for i := range profiles {
		p := make([]int32, 90)
		for j := range p {
			p[j] = int32(rng.Intn(10000))
		}
		profiles[i] = sets.Normalize(p)
	}
	j := NewJaccard(dataset.New("b", profiles, 10000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Sim(0, 1)
	}
}
