//go:build !amd64 && !arm64

package similarity

// Ports without assembly kernels: the probe reports no vector kernel,
// so useVector is never set and the hooks below are unreachable — they
// exist so kernel.go compiles unconditionally.

func vectorName() string { return "" }

func countRunVector(counts []int32, a, slab []uint64, words int) {
	countRunScalar(counts, a, slab, words)
}

func countOneVector(a, row []uint64, words int) (int, bool) { return 0, false }
