// AVX2 AND-popcount run kernels. See kernel_amd64.go for the Go
// prototypes and kernel.go for the layer's contract: exact integer
// intersection counts of one signature against a contiguous run of
// slab rows; the float64 Jaccard division stays in Go.
//
// Popcount strategy (Mula's SSSE3/AVX2 nibble method): split each byte
// of a AND b into nibbles, look both up in a VPSHUFB table of nibble
// popcounts, VPADDB the per-byte counts, then VPSADBW against zero to
// widen byte sums into qword lane sums. One 256-bit op covers four
// signature words — versus four scalar POPCNTs — and the byte
// accumulator never overflows: the 16-word kernel folds at most four
// vectors (max 32 per byte lane) before widening, the generic kernel
// widens every vector.

#include "textflag.h"

// Nibble popcount table, both 128-bit lanes (VPSHUFB looks up per lane).
DATA nibblePop<>+0(SB)/8, $0x0302020102010100
DATA nibblePop<>+8(SB)/8, $0x0403030203020201
DATA nibblePop<>+16(SB)/8, $0x0302020102010100
DATA nibblePop<>+24(SB)/8, $0x0403030203020201
GLOBL nibblePop<>(SB), RODATA|NOPTR, $32

DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $32

// func countRun16AVX2(counts *int32, a *uint64, slab *uint64, n int)
//
// The paper-default 1024-bit specialization: the query signature rides
// in Y0–Y3 for the whole run, each row is four VPANDs against the
// marching slab pointer, and the four byte-count vectors fold into one
// VPSADBW + horizontal add.
TEXT ·countRun16AVX2(SB), NOSPLIT, $0-32
	MOVQ counts+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ slab+16(FP), DX
	MOVQ n+24(FP), CX

	VMOVDQU nibblePop<>(SB), Y7
	VMOVDQU nibbleMask<>(SB), Y6
	VPXOR   Y8, Y8, Y8

	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3

	// Two rows per iteration: rows are independent, so running two
	// byte-accumulator chains (Y9, Y11) side by side hides the VPADDB
	// chain latency, and their qword sums reduce together — one
	// unpack/add tree, one 8-byte store of both int32 counts.
	MOVQ CX, R14
	SHRQ $1, R14
	JZ   single16

pair16:
	VPAND   (DX), Y0, Y4
	VPAND   128(DX), Y0, Y10
	VPSRLW  $4, Y4, Y5
	VPSRLW  $4, Y10, Y12
	VPAND   Y6, Y4, Y4
	VPAND   Y6, Y10, Y10
	VPAND   Y6, Y5, Y5
	VPAND   Y6, Y12, Y12
	VPSHUFB Y4, Y7, Y4
	VPSHUFB Y10, Y7, Y10
	VPSHUFB Y5, Y7, Y5
	VPSHUFB Y12, Y7, Y12
	VPADDB  Y5, Y4, Y9
	VPADDB  Y12, Y10, Y11

	VPAND   32(DX), Y1, Y4
	VPAND   160(DX), Y1, Y10
	VPSRLW  $4, Y4, Y5
	VPSRLW  $4, Y10, Y12
	VPAND   Y6, Y4, Y4
	VPAND   Y6, Y10, Y10
	VPAND   Y6, Y5, Y5
	VPAND   Y6, Y12, Y12
	VPSHUFB Y4, Y7, Y4
	VPSHUFB Y10, Y7, Y10
	VPSHUFB Y5, Y7, Y5
	VPSHUFB Y12, Y7, Y12
	VPADDB  Y4, Y9, Y9
	VPADDB  Y10, Y11, Y11
	VPADDB  Y5, Y9, Y9
	VPADDB  Y12, Y11, Y11

	VPAND   64(DX), Y2, Y4
	VPAND   192(DX), Y2, Y10
	VPSRLW  $4, Y4, Y5
	VPSRLW  $4, Y10, Y12
	VPAND   Y6, Y4, Y4
	VPAND   Y6, Y10, Y10
	VPAND   Y6, Y5, Y5
	VPAND   Y6, Y12, Y12
	VPSHUFB Y4, Y7, Y4
	VPSHUFB Y10, Y7, Y10
	VPSHUFB Y5, Y7, Y5
	VPSHUFB Y12, Y7, Y12
	VPADDB  Y4, Y9, Y9
	VPADDB  Y10, Y11, Y11
	VPADDB  Y5, Y9, Y9
	VPADDB  Y12, Y11, Y11

	VPAND   96(DX), Y3, Y4
	VPAND   224(DX), Y3, Y10
	VPSRLW  $4, Y4, Y5
	VPSRLW  $4, Y10, Y12
	VPAND   Y6, Y4, Y4
	VPAND   Y6, Y10, Y10
	VPAND   Y6, Y5, Y5
	VPAND   Y6, Y12, Y12
	VPSHUFB Y4, Y7, Y4
	VPSHUFB Y10, Y7, Y10
	VPSHUFB Y5, Y7, Y5
	VPSHUFB Y12, Y7, Y12
	VPADDB  Y4, Y9, Y9
	VPADDB  Y10, Y11, Y11
	VPADDB  Y5, Y9, Y9
	VPADDB  Y12, Y11, Y11

	// Widen both rows' byte counts to qwords, then reduce the pair
	// together: interleave row A's and row B's qword lanes, add, fold
	// the high lane, and pack the two sums to adjacent int32s.
	VPSADBW      Y8, Y9, Y9   // Y9 = [a0 a1 | a2 a3]
	VPSADBW      Y8, Y11, Y11 // Y11 = [b0 b1 | b2 b3]
	VPUNPCKLQDQ  Y11, Y9, Y4  // [a0 b0 | a2 b2]
	VPUNPCKHQDQ  Y11, Y9, Y5  // [a1 b1 | a3 b3]
	VPADDQ       Y5, Y4, Y4   // [a0+a1 b0+b1 | a2+a3 b2+b3]
	VEXTRACTI128 $1, Y4, X5
	VPADDQ       X5, X4, X4   // [sumA, sumB] as qwords
	VPSHUFD      $0x08, X4, X4
	VMOVQ        X4, (DI)     // counts[x], counts[x+1]

	ADDQ $8, DI
	ADDQ $256, DX
	DECQ R14
	JNZ  pair16

single16:
	TESTQ $1, CX
	JZ    done16

	VPAND   (DX), Y0, Y4
	VPSRLW  $4, Y4, Y5
	VPAND   Y6, Y4, Y4
	VPAND   Y6, Y5, Y5
	VPSHUFB Y4, Y7, Y4
	VPSHUFB Y5, Y7, Y5
	VPADDB  Y5, Y4, Y9

	VPAND   32(DX), Y1, Y4
	VPSRLW  $4, Y4, Y5
	VPAND   Y6, Y4, Y4
	VPAND   Y6, Y5, Y5
	VPSHUFB Y4, Y7, Y4
	VPSHUFB Y5, Y7, Y5
	VPADDB  Y4, Y9, Y9
	VPADDB  Y5, Y9, Y9

	VPAND   64(DX), Y2, Y4
	VPSRLW  $4, Y4, Y5
	VPAND   Y6, Y4, Y4
	VPAND   Y6, Y5, Y5
	VPSHUFB Y4, Y7, Y4
	VPSHUFB Y5, Y7, Y5
	VPADDB  Y4, Y9, Y9
	VPADDB  Y5, Y9, Y9

	VPAND   96(DX), Y3, Y4
	VPSRLW  $4, Y4, Y5
	VPAND   Y6, Y4, Y4
	VPAND   Y6, Y5, Y5
	VPSHUFB Y4, Y7, Y4
	VPSHUFB Y5, Y7, Y5
	VPADDB  Y4, Y9, Y9
	VPADDB  Y5, Y9, Y9

	VPSADBW      Y8, Y9, Y9
	VEXTRACTI128 $1, Y9, X10
	VPADDQ       X10, X9, X9
	VPSRLDQ      $8, X9, X10
	VPADDQ       X10, X9, X9
	MOVQ         X9, AX
	MOVL         AX, (DI)

done16:
	VZEROUPPER
	RET

// func countRunNAVX2(counts *int32, a *uint64, slab *uint64, n, words int)
//
// Generic width: per row, one 4-word vector chunk at a time (widening
// every chunk, so any words fits without byte-lane overflow), then a
// scalar POPCNT tail for the remaining 1–3 words.
TEXT ·countRunNAVX2(SB), NOSPLIT, $0-40
	MOVQ counts+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ slab+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ words+32(FP), R8

	VMOVDQU nibblePop<>(SB), Y7
	VMOVDQU nibbleMask<>(SB), Y6
	VPXOR   Y8, Y8, Y8

	MOVQ R8, R9
	SHRQ $2, R9        // R9 = 4-word chunks per row
	MOVQ R8, R10
	ANDQ $3, R10       // R10 = tail words per row
	MOVQ R8, R11
	SHLQ $3, R11       // R11 = row stride in bytes

rowN:
	MOVQ  SI, R12      // a cursor
	MOVQ  DX, R13      // slab row cursor
	VPXOR Y10, Y10, Y10 // qword accumulator
	MOVQ  R9, R14
	TESTQ R14, R14
	JZ    tailN

chunkN:
	VMOVDQU (R12), Y4
	VPAND   (R13), Y4, Y4
	VPSRLW  $4, Y4, Y5
	VPAND   Y6, Y4, Y4
	VPAND   Y6, Y5, Y5
	VPSHUFB Y4, Y7, Y4
	VPSHUFB Y5, Y7, Y5
	VPADDB  Y5, Y4, Y4
	VPSADBW Y8, Y4, Y4
	VPADDQ  Y4, Y10, Y10
	ADDQ    $32, R12
	ADDQ    $32, R13
	DECQ    R14
	JNZ     chunkN

tailN:
	VEXTRACTI128 $1, Y10, X11
	VPADDQ       X11, X10, X10
	VPSRLDQ      $8, X10, X11
	VPADDQ       X11, X10, X10
	MOVQ         X10, AX

	MOVQ  R10, R14
	TESTQ R14, R14
	JZ    storeN

tailLoopN:
	MOVQ    (R12), BX
	ANDQ    (R13), BX
	POPCNTQ BX, BX
	ADDQ    BX, AX
	ADDQ    $8, R12
	ADDQ    $8, R13
	DECQ    R14
	JNZ     tailLoopN

storeN:
	MOVL AX, (DI)
	ADDQ $4, DI
	ADDQ R11, DX
	DECQ CX
	JNZ  rowN

	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
