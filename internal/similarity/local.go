package similarity

import (
	"math"
	"sync/atomic"

	"c2knn/internal/sets"
)

// Localizer is the optional fast path a Provider may implement for
// cluster-local solvers. Gather copies everything needed to compare the
// users in ids into dst's reusable scratch buffers, after which
// dst.Sim(i, j) serves pair similarities by local index with no
// interface dispatch and no global-id re-slicing — the tight kernel the
// paper's "number of similarity computations" cost model assumes.
//
// Implementations must leave dst fully initialized for ids; dst may
// have been used for a different (differently sized) cluster before.
// Custom providers initialize dst through one of the exported hooks:
// InitBits for dense bit-signature kernels, or InitProvider to serve
// pairs through their own Sim (still skipping the per-pair Localizer
// type assertion and gaining the gathered id table).
type Localizer interface {
	Gather(ids []int32, dst *Local)
}

// localKind selects Local's similarity kernel. Local is deliberately a
// concrete struct dispatching on this enum rather than an interface:
// the per-pair call in the local solvers' hot loops compiles to a
// direct call plus one predictable branch instead of an itab lookup.
type localKind uint8

const (
	// kindProvider falls back to Provider dispatch on global ids.
	kindProvider localKind = iota
	// kindBits is the dense bit-signature kernel (GoldFinger): Jaccard
	// from AND-popcounts over a gathered contiguous block, with the
	// union derived from precomputed per-member popcounts.
	kindBits
	// kindJaccard and kindCosine compare gathered raw-profile slices.
	kindJaccard
	kindCosine
)

// Local is a gathered cluster-local similarity kernel. It answers
// Sim(i, j) for local member indices 0..Len()-1 and maps them back to
// global user ids with ID. The zero value is ready for GatherInto;
// reusing one Local across many clusters reuses its scratch buffers, so
// steady-state gathering allocates nothing.
//
// A Local is confined to the worker that gathered it; it must not be
// shared across goroutines.
type Local struct {
	kind localKind
	ids  []int32

	// Bit-signature kernel: a len(ids)×words contiguous block plus
	// per-member popcounts, so Jaccard needs only the AND popcount per
	// pair (union = ones[i] + ones[j] − inter).
	words int
	sigs  []uint64
	ones  []int32

	// Raw-profile kernels: gathered profile slice headers, indexed by
	// local id (one indirection instead of the global profiles table).
	profs [][]int32

	// Provider fallback.
	p Provider

	// counter, when set, is bumped once per Sim call; Counting providers
	// install it so gathered kernels stay instrumented.
	counter *atomic.Int64
}

// Len returns the number of members gathered.
func (l *Local) Len() int { return len(l.ids) }

// ID returns the global user id of local member i.
func (l *Local) ID(i int) int32 { return l.ids[i] }

// IDs returns the gathered members' global ids. The slice aliases the
// one passed to Gather and must not be mutated.
func (l *Local) IDs() []int32 { return l.ids }

func (l *Local) reset(kind localKind, ids []int32) {
	l.kind = kind
	l.ids = ids
	l.p = nil
	l.counter = nil
}

// InitBits configures l as a dense bit-signature kernel over ids and
// returns the signature block (len(ids)×words uint64s, member i at
// words i·words..(i+1)·words) and the per-member popcount buffer, both
// reused from l's scratch, for the Localizer to fill.
func (l *Local) InitBits(ids []int32, words int) (sigs []uint64, ones []int32) {
	l.reset(kindBits, ids)
	l.words = words
	if need := len(ids) * words; cap(l.sigs) < need {
		l.sigs = make([]uint64, need)
	} else {
		l.sigs = l.sigs[:need]
	}
	if cap(l.ones) < len(ids) {
		l.ones = make([]int32, len(ids))
	} else {
		l.ones = l.ones[:len(ids)]
	}
	return l.sigs, l.ones
}

// InitProvider configures l to serve pairs by dispatching to p on
// global ids — the safe initializer for external Localizer
// implementations that have no dense representation to gather.
func (l *Local) InitProvider(ids []int32, p Provider) {
	l.reset(kindProvider, ids)
	l.p = p
}

// initProfiles configures l as a raw-profile kernel, gathering the
// members' profile slice headers into contiguous scratch.
func (l *Local) initProfiles(kind localKind, ids []int32, profiles [][]int32) {
	l.reset(kind, ids)
	l.profs = l.profs[:0]
	for _, id := range ids {
		l.profs = append(l.profs, profiles[id])
	}
}

// GatherInto prepares dst to serve pair similarities within ids: via
// p's own Localizer implementation when it has one, through a generic
// Provider-dispatch kernel otherwise. dst is reusable across calls of
// any cluster size.
func GatherInto(p Provider, ids []int32, dst *Local) {
	if loc, ok := p.(Localizer); ok {
		loc.Gather(ids, dst)
		return
	}
	dst.InitProvider(ids, p)
}

// Sim returns the similarity of local members i and j. All kernels
// produce bit-identical float64s to the corresponding global
// Provider.Sim — local solvers built on either path yield the same
// graphs.
func (l *Local) Sim(i, j int) float64 {
	if l.counter != nil {
		l.counter.Add(1)
	}
	switch l.kind {
	case kindBits:
		w := l.words
		// Per-pair form of the count kernel: the scalar specializations
		// (andCount16 and friends) — the run-shaped SimRow/SimBatch
		// paths are where the vector kernels engage.
		inter := AndCount(l.sigs[i*w:(i+1)*w], l.sigs[j*w:(j+1)*w])
		union := int(l.ones[i]) + int(l.ones[j]) - inter
		if union == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	case kindJaccard:
		a, b := l.profs[i], l.profs[j]
		inter := sets.IntersectCount(a, b)
		union := len(a) + len(b) - inter
		if union == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	case kindCosine:
		a, b := l.profs[i], l.profs[j]
		if len(a) == 0 || len(b) == 0 {
			return 0
		}
		inter := sets.IntersectCount(a, b)
		return float64(inter) / math.Sqrt(float64(len(a))*float64(len(b)))
	default:
		return l.p.Sim(l.ids[i], l.ids[j])
	}
}

// SimRow scores local member i against the contiguous block of local
// members [j0, j1), writing Sim(i, j0+x) into dst[x]. dst must hold at
// least j1-j0 elements. Each dst entry is bit-identical to the
// corresponding Sim call; what SimRow buys is the batch shape: the
// kernel switch, the counter bump, and member i's data are amortized
// over the whole block, the inner loop walks the gathered slab
// contiguously, and — because consecutive pairs are independent — the
// per-pair float divides pipeline instead of serializing against the
// caller's consumption of each result. This is the hot loop of the
// blocked cluster solvers (bruteforce.LocalInto's triangular sweep,
// hyrec's candidate batches).
func (l *Local) SimRow(i, j0, j1 int, dst []float64) {
	dst = dst[:j1-j0]
	if len(dst) == 0 {
		return
	}
	if l.counter != nil {
		l.counter.Add(int64(len(dst)))
	}
	switch l.kind {
	case kindBits:
		w := l.words
		BitSimRow(dst, l.sigs[i*w:(i+1)*w], int(l.ones[i]), l.sigs, l.ones, j0, w)
	case kindJaccard:
		a := l.profs[i]
		for x := range dst {
			b := l.profs[j0+x]
			inter := sets.IntersectCount(a, b)
			union := len(a) + len(b) - inter
			if union == 0 {
				dst[x] = 0
			} else {
				dst[x] = float64(inter) / float64(union)
			}
		}
	case kindCosine:
		a := l.profs[i]
		for x := range dst {
			b := l.profs[j0+x]
			if len(a) == 0 || len(b) == 0 {
				dst[x] = 0
				continue
			}
			inter := sets.IntersectCount(a, b)
			dst[x] = float64(inter) / math.Sqrt(float64(len(a))*float64(len(b)))
		}
	default:
		gi := l.ids[i]
		for x := range dst {
			dst[x] = l.p.Sim(gi, l.ids[j0+x])
		}
	}
}

// GrowRow returns a float64 slice of length n, reusing buf's storage
// when it is large enough — the scratch-row helper for SimRow/SimBatch
// callers (the solvers keep one row per worker Scratch, so steady-state
// scoring allocates nothing). The returned slice's contents are
// unspecified; kernels overwrite every element they are asked for.
func GrowRow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// SimBatch scores local member i against an arbitrary list of local
// member indices, writing Sim(i, int(js[x])) into dst[x]. dst must hold
// at least len(js) elements. It is SimRow for non-contiguous blocks —
// the shape of Hyrec's candidate sets — trading the contiguous slab
// walk for a gather but keeping the amortized dispatch and pipelined
// divides. Results are bit-identical to per-pair Sim calls.
func (l *Local) SimBatch(i int, js []int32, dst []float64) {
	dst = dst[:len(js)]
	if len(dst) == 0 {
		return
	}
	if l.counter != nil {
		l.counter.Add(int64(len(dst)))
	}
	switch l.kind {
	case kindBits:
		w := l.words
		bitSimBatch(dst, l.sigs[i*w:(i+1)*w], int(l.ones[i]), l.sigs, l.ones, js, w)
	case kindJaccard:
		a := l.profs[i]
		for x, j := range js {
			b := l.profs[j]
			inter := sets.IntersectCount(a, b)
			union := len(a) + len(b) - inter
			if union == 0 {
				dst[x] = 0
			} else {
				dst[x] = float64(inter) / float64(union)
			}
		}
	case kindCosine:
		a := l.profs[i]
		for x, j := range js {
			b := l.profs[j]
			if len(a) == 0 || len(b) == 0 {
				dst[x] = 0
				continue
			}
			inter := sets.IntersectCount(a, b)
			dst[x] = float64(inter) / math.Sqrt(float64(len(a))*float64(len(b)))
		}
	default:
		gi := l.ids[i]
		for x, j := range js {
			dst[x] = l.p.Sim(gi, l.ids[j])
		}
	}
}

// BitSimRow writes into dst the Jaccard estimates of one signature
// against the contiguous run of slab members j0, j0+1, … (one per dst
// element): dst[x] = inter/(aOnes + ones[j0+x] − inter), 0 when the
// union is empty. a must hold exactly `words` words, slab is the packed
// member-major signature block, ones the per-member popcounts. Both the
// gathered Local bits kernel and goldfinger.Set's global RowProvider
// path run on this loop; estimates are bit-identical to the per-pair
// OR-popcount formulation because |A|+|B|−|A∩B| = |A∪B| exactly.
func BitSimRow(dst []float64, a []uint64, aOnes int, slab []uint64, ones []int32, j0, words int) {
	po := ones[j0 : j0+len(dst)]
	// Rows are scored in chunks through the count-kernel dispatch
	// (countRun: AVX2/NEON when available, the scalar specializations
	// otherwise), with the Jaccard division kept here in Go — exact
	// integer counts in, one float64 divide out, so every kernel arm is
	// bit-identical by construction. The counts scratch lives on this
	// frame (the kernel declarations are //go:noescape), keeping the
	// solvers' zero-allocation contract intact.
	if aOnes == 0 {
		// Empty query signature: every intersection is 0, so every
		// Jaccard is exactly the 0 the scalar reference produces
		// (0/union, or the defined 0 for an empty union).
		for x := range dst {
			dst[x] = 0
		}
		return
	}
	var cbuf [kernelChunk]int32
	base := j0 * words
	for x0 := 0; x0 < len(dst); {
		n := len(dst) - x0
		if n > kernelChunk {
			n = kernelChunk
		}
		countRun(cbuf[:n], a, slab[base:base+n*words], words)
		drow := dst[x0 : x0+n]
		prow := po[x0 : x0+n]
		for x, c := range cbuf[:n] {
			// aOnes > 0 bounds the union away from 0: inter ≤
			// min(aOnes, prow[x]), so union ≥ aOnes. No zero-divide
			// branch in the hot loop.
			inter := int(c)
			drow[x] = float64(inter) / float64(aOnes+int(prow[x])-inter)
		}
		base += n * words
		x0 += n
	}
}

// bitSimBatch is BitSimRow over an arbitrary member index list: the
// rows are scattered, so each is counted through the single-row form of
// the kernel dispatch (countOne) instead of a contiguous run call.
func bitSimBatch(dst []float64, a []uint64, aOnes int, slab []uint64, ones []int32, js []int32, words int) {
	for x, j := range js {
		inter := countOne(a, slab[int(j)*words:(int(j)+1)*words], words)
		union := aOnes + int(ones[j]) - inter
		if union == 0 {
			dst[x] = 0
		} else {
			dst[x] = float64(inter) / float64(union)
		}
	}
}

// Gather implements Localizer.
func (j *Jaccard) Gather(ids []int32, dst *Local) {
	dst.initProfiles(kindJaccard, ids, j.profiles)
}

// Gather implements Localizer.
func (c *Cosine) Gather(ids []int32, dst *Local) {
	dst.initProfiles(kindCosine, ids, c.profiles)
}

// Gather implements Localizer: when the wrapped provider has a fast
// gather path it is used and the resulting kernel keeps counting;
// otherwise the generic kernel dispatches through c and counts that
// way.
func (c *Counting) Gather(ids []int32, dst *Local) {
	if loc, ok := c.P.(Localizer); ok {
		loc.Gather(ids, dst)
		dst.counter = &c.n
		return
	}
	dst.InitProvider(ids, c)
}

var (
	_ Localizer = (*Jaccard)(nil)
	_ Localizer = (*Cosine)(nil)
	_ Localizer = (*Counting)(nil)
)
