package similarity

import (
	"math"
	"math/bits"
	"sync/atomic"

	"c2knn/internal/sets"
)

// Localizer is the optional fast path a Provider may implement for
// cluster-local solvers. Gather copies everything needed to compare the
// users in ids into dst's reusable scratch buffers, after which
// dst.Sim(i, j) serves pair similarities by local index with no
// interface dispatch and no global-id re-slicing — the tight kernel the
// paper's "number of similarity computations" cost model assumes.
//
// Implementations must leave dst fully initialized for ids; dst may
// have been used for a different (differently sized) cluster before.
// Custom providers initialize dst through one of the exported hooks:
// InitBits for dense bit-signature kernels, or InitProvider to serve
// pairs through their own Sim (still skipping the per-pair Localizer
// type assertion and gaining the gathered id table).
type Localizer interface {
	Gather(ids []int32, dst *Local)
}

// localKind selects Local's similarity kernel. Local is deliberately a
// concrete struct dispatching on this enum rather than an interface:
// the per-pair call in the local solvers' hot loops compiles to a
// direct call plus one predictable branch instead of an itab lookup.
type localKind uint8

const (
	// kindProvider falls back to Provider dispatch on global ids.
	kindProvider localKind = iota
	// kindBits is the dense bit-signature kernel (GoldFinger): Jaccard
	// from AND-popcounts over a gathered contiguous block, with the
	// union derived from precomputed per-member popcounts.
	kindBits
	// kindJaccard and kindCosine compare gathered raw-profile slices.
	kindJaccard
	kindCosine
)

// Local is a gathered cluster-local similarity kernel. It answers
// Sim(i, j) for local member indices 0..Len()-1 and maps them back to
// global user ids with ID. The zero value is ready for GatherInto;
// reusing one Local across many clusters reuses its scratch buffers, so
// steady-state gathering allocates nothing.
//
// A Local is confined to the worker that gathered it; it must not be
// shared across goroutines.
type Local struct {
	kind localKind
	ids  []int32

	// Bit-signature kernel: a len(ids)×words contiguous block plus
	// per-member popcounts, so Jaccard needs only the AND popcount per
	// pair (union = ones[i] + ones[j] − inter).
	words int
	sigs  []uint64
	ones  []int32

	// Raw-profile kernels: gathered profile slice headers, indexed by
	// local id (one indirection instead of the global profiles table).
	profs [][]int32

	// Provider fallback.
	p Provider

	// counter, when set, is bumped once per Sim call; Counting providers
	// install it so gathered kernels stay instrumented.
	counter *atomic.Int64
}

// Len returns the number of members gathered.
func (l *Local) Len() int { return len(l.ids) }

// ID returns the global user id of local member i.
func (l *Local) ID(i int) int32 { return l.ids[i] }

// IDs returns the gathered members' global ids. The slice aliases the
// one passed to Gather and must not be mutated.
func (l *Local) IDs() []int32 { return l.ids }

func (l *Local) reset(kind localKind, ids []int32) {
	l.kind = kind
	l.ids = ids
	l.p = nil
	l.counter = nil
}

// InitBits configures l as a dense bit-signature kernel over ids and
// returns the signature block (len(ids)×words uint64s, member i at
// words i·words..(i+1)·words) and the per-member popcount buffer, both
// reused from l's scratch, for the Localizer to fill.
func (l *Local) InitBits(ids []int32, words int) (sigs []uint64, ones []int32) {
	l.reset(kindBits, ids)
	l.words = words
	if need := len(ids) * words; cap(l.sigs) < need {
		l.sigs = make([]uint64, need)
	} else {
		l.sigs = l.sigs[:need]
	}
	if cap(l.ones) < len(ids) {
		l.ones = make([]int32, len(ids))
	} else {
		l.ones = l.ones[:len(ids)]
	}
	return l.sigs, l.ones
}

// InitProvider configures l to serve pairs by dispatching to p on
// global ids — the safe initializer for external Localizer
// implementations that have no dense representation to gather.
func (l *Local) InitProvider(ids []int32, p Provider) {
	l.reset(kindProvider, ids)
	l.p = p
}

// initProfiles configures l as a raw-profile kernel, gathering the
// members' profile slice headers into contiguous scratch.
func (l *Local) initProfiles(kind localKind, ids []int32, profiles [][]int32) {
	l.reset(kind, ids)
	l.profs = l.profs[:0]
	for _, id := range ids {
		l.profs = append(l.profs, profiles[id])
	}
}

// GatherInto prepares dst to serve pair similarities within ids: via
// p's own Localizer implementation when it has one, through a generic
// Provider-dispatch kernel otherwise. dst is reusable across calls of
// any cluster size.
func GatherInto(p Provider, ids []int32, dst *Local) {
	if loc, ok := p.(Localizer); ok {
		loc.Gather(ids, dst)
		return
	}
	dst.InitProvider(ids, p)
}

// Sim returns the similarity of local members i and j. All kernels
// produce bit-identical float64s to the corresponding global
// Provider.Sim — local solvers built on either path yield the same
// graphs.
func (l *Local) Sim(i, j int) float64 {
	if l.counter != nil {
		l.counter.Add(1)
	}
	switch l.kind {
	case kindBits:
		w := l.words
		var inter int
		if w == 16 {
			// The paper's default 1024-bit fingerprints: a fully
			// unrolled AND-popcount over fixed-size array views (no
			// loop, no bounds checks).
			a := (*[16]uint64)(l.sigs[i*16:])
			b := (*[16]uint64)(l.sigs[j*16:])
			inter = bits.OnesCount64(a[0]&b[0]) + bits.OnesCount64(a[1]&b[1]) +
				bits.OnesCount64(a[2]&b[2]) + bits.OnesCount64(a[3]&b[3]) +
				bits.OnesCount64(a[4]&b[4]) + bits.OnesCount64(a[5]&b[5]) +
				bits.OnesCount64(a[6]&b[6]) + bits.OnesCount64(a[7]&b[7]) +
				bits.OnesCount64(a[8]&b[8]) + bits.OnesCount64(a[9]&b[9]) +
				bits.OnesCount64(a[10]&b[10]) + bits.OnesCount64(a[11]&b[11]) +
				bits.OnesCount64(a[12]&b[12]) + bits.OnesCount64(a[13]&b[13]) +
				bits.OnesCount64(a[14]&b[14]) + bits.OnesCount64(a[15]&b[15])
		} else {
			a := l.sigs[i*w : (i+1)*w]
			b := l.sigs[j*w : (j+1)*w]
			b = b[:len(a)] // bounds-check elimination in the loop below
			for k := range a {
				inter += bits.OnesCount64(a[k] & b[k])
			}
		}
		union := int(l.ones[i]) + int(l.ones[j]) - inter
		if union == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	case kindJaccard:
		a, b := l.profs[i], l.profs[j]
		inter := sets.IntersectCount(a, b)
		union := len(a) + len(b) - inter
		if union == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	case kindCosine:
		a, b := l.profs[i], l.profs[j]
		if len(a) == 0 || len(b) == 0 {
			return 0
		}
		inter := sets.IntersectCount(a, b)
		return float64(inter) / math.Sqrt(float64(len(a))*float64(len(b)))
	default:
		return l.p.Sim(l.ids[i], l.ids[j])
	}
}

// Gather implements Localizer.
func (j *Jaccard) Gather(ids []int32, dst *Local) {
	dst.initProfiles(kindJaccard, ids, j.profiles)
}

// Gather implements Localizer.
func (c *Cosine) Gather(ids []int32, dst *Local) {
	dst.initProfiles(kindCosine, ids, c.profiles)
}

// Gather implements Localizer: when the wrapped provider has a fast
// gather path it is used and the resulting kernel keeps counting;
// otherwise the generic kernel dispatches through c and counts that
// way.
func (c *Counting) Gather(ids []int32, dst *Local) {
	if loc, ok := c.P.(Localizer); ok {
		loc.Gather(ids, dst)
		dst.counter = &c.n
		return
	}
	dst.InitProvider(ids, c)
}

var (
	_ Localizer = (*Jaccard)(nil)
	_ Localizer = (*Cosine)(nil)
	_ Localizer = (*Counting)(nil)
)
