package similarity

// amd64 vector kernel: AVX2 VPAND + VPSHUFB-nibble popcount, selected by
// a dependency-free CPUID/XGETBV probe (below). The assembly lives in
// kernel_amd64.s; both entry points write exact integer intersection
// counts, so they slot under BitSimRow without touching its float64
// division and stay bit-identical to the scalar reference by
// construction.

// countRun16AVX2 writes counts[x] = popcount(a AND slab[16x:16x+16])
// for x in [0, n) — the paper-default 1024-bit specialization. The
// query signature is held in four ymm registers across the whole run.
//
//go:noescape
func countRun16AVX2(counts *int32, a *uint64, slab *uint64, n int)

// countRunNAVX2 is the generic-width run kernel: any words ≥ 1,
// vectorized over the 4-word-aligned prefix of each row with a scalar
// POPCNT tail for the remaining 1–3 words.
//
//go:noescape
func countRunNAVX2(counts *int32, a *uint64, slab *uint64, n, words int)

// cpuid and xgetbv0 are the raw instruction wrappers behind the AVX2
// probe; implemented in kernel_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// vectorName reports the vector kernel this CPU can run: "avx2" when
// the full chain holds — OSXSAVE enabled, OS saves ymm state (XGETBV
// XCR0 bits 1..2), and CPUID leaf 7 advertises AVX2 (the scalar tail's
// POPCNT is implied by any AVX2-capable part, but is checked anyway) —
// and "" otherwise.
func vectorName() string {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return ""
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave, avx, popcnt = 1 << 27, 1 << 28, 1 << 23
	if ecx1&osxsave == 0 || ecx1&avx == 0 || ecx1&popcnt == 0 {
		return ""
	}
	if eax, _ := xgetbv0(); eax&6 != 6 { // XMM and YMM state OS-enabled
		return ""
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	if ebx7&avx2 == 0 {
		return ""
	}
	return "avx2"
}

// countRunVector dispatches one contiguous run to the AVX2 kernels.
// Only called with useVector set, which implies the probe passed.
func countRunVector(counts []int32, a, slab []uint64, words int) {
	if words == 16 {
		countRun16AVX2(&counts[0], &a[0], &slab[0], len(counts))
		return
	}
	countRunNAVX2(&counts[0], &a[0], &slab[0], len(counts), words)
}

// countOneVector serves the batch-shaped path (scattered rows, no
// contiguous run): a single-row kernel call still beats sixteen scalar
// POPCNTs at the paper-default width; other widths report false and
// fall back to the scalar specializations.
func countOneVector(a, row []uint64, words int) (int, bool) {
	if words != 16 {
		return 0, false
	}
	var c int32
	countRun16AVX2(&c, &a[0], &row[0], 1)
	return int(c), true
}
