package similarity

import (
	"math"
	"math/rand"
	"os"
	"testing"
)

// restoreKernel re-activates whatever kernel the process started with
// (the C2_KERNEL env var's choice, or auto). Tests that call
// SelectKernel must defer it.
func restoreKernel() { SelectKernel(os.Getenv("C2_KERNEL")) }

// refCount is a word-at-a-time AND-popcount oracle, independent of
// every path under test.
func refCount(a, b []uint64) int {
	n := 0
	for i := range a {
		n += popcount(a[i] & b[i])
	}
	return n
}

// TestCountRunMatchesReference drives the active count kernel — vector
// when the build and CPU provide one, scalar otherwise — across word
// widths 1..33, run lengths spanning the chunk and unroll boundaries,
// and unaligned slab offsets, against the independent oracle. Running
// under C2_KERNEL=scalar pins the scalar specializations to the same
// oracle.
func TestCountRunMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	runLens := []int{1, 2, 3, 4, 5, 7, 8, 16, 63, 64, 65, 127, 128, 129, 130}
	for words := 1; words <= 33; words++ {
		const maxRun = 130
		// Slab with one row of headroom so runs can start at odd row
		// offsets (j0 > 0 exercises unaligned vector loads: odd words
		// put rows off 32-byte boundaries).
		slab := make([]uint64, (maxRun+3)*words)
		for i := range slab {
			slab[i] = rng.Uint64() & rng.Uint64()
		}
		a := make([]uint64, words)
		for i := range a {
			a[i] = rng.Uint64()
		}
		counts := make([]int32, maxRun)
		for _, n := range runLens {
			for _, j0 := range []int{0, 1, 3} {
				run := slab[j0*words : (j0+n)*words]
				countRun(counts[:n], a, run, words)
				for x := 0; x < n; x++ {
					want := refCount(a, run[x*words:(x+1)*words])
					if int(counts[x]) != want {
						t.Fatalf("kernel %s: words=%d n=%d j0=%d: counts[%d]=%d, want %d",
							KernelName(), words, n, j0, x, counts[x], want)
					}
				}
			}
		}
	}
}

// TestCountRunDegenerateSignatures pins the all-zero and all-one
// corners at the specialized widths: zero intersections, and the full
// 64·words intersection that peaks every byte lane the vector kernels
// accumulate in.
func TestCountRunDegenerateSignatures(t *testing.T) {
	for _, words := range []int{1, 7, 8, 16, 32, 33} {
		const n = 67
		zero := make([]uint64, words)
		ones := make([]uint64, words)
		for i := range ones {
			ones[i] = ^uint64(0)
		}
		slab := make([]uint64, n*words)
		counts := make([]int32, n)

		countRun(counts, ones, slab, words) // all-one query, all-zero slab
		for x := range counts {
			if counts[x] != 0 {
				t.Fatalf("words=%d all-zero slab: counts[%d]=%d", words, x, counts[x])
			}
		}
		for i := range slab {
			slab[i] = ^uint64(0)
		}
		countRun(counts, ones, slab, words) // saturated: every bit set
		for x := range counts {
			if int(counts[x]) != 64*words {
				t.Fatalf("words=%d saturated: counts[%d]=%d, want %d", words, x, counts[x], 64*words)
			}
		}
		countRun(counts, zero, slab, words) // all-zero query
		for x := range counts {
			if counts[x] != 0 {
				t.Fatalf("words=%d zero query: counts[%d]=%d", words, x, counts[x])
			}
		}
	}
}

// TestSelectKernel exercises the selection state machine: auto picks
// the best kernel, "scalar" forces the reference path, an impossible
// explicit request errors and leaves scalar active, and AndCount keeps
// serving through every state.
func TestSelectKernel(t *testing.T) {
	defer restoreKernel()

	name, err := SelectKernel("")
	if err != nil {
		t.Fatalf("SelectKernel(auto): %v", err)
	}
	if name != KernelName() {
		t.Fatalf("SelectKernel returned %q but KernelName says %q", name, KernelName())
	}
	best := name
	if vec := vectorName(); vec != "" && best != vec {
		t.Fatalf("auto selected %q, vector probe offers %q", best, vec)
	}

	name, err = SelectKernel("scalar")
	if err != nil || name != "scalar" {
		t.Fatalf("SelectKernel(scalar) = %q, %v", name, err)
	}
	if KernelName() != "scalar" {
		t.Fatalf("KernelName after forcing scalar = %q", KernelName())
	}

	name, err = SelectKernel("no-such-kernel")
	if err == nil {
		t.Fatal("SelectKernel(no-such-kernel) did not error")
	}
	if name != "scalar" || KernelName() != "scalar" {
		t.Fatalf("failed selection left kernel %q active, want scalar", KernelName())
	}

	if got := AndCount([]uint64{0xff00ff00ff00ff0f}, []uint64{0x00ff00ff00ff00ff}); got != 4 {
		t.Fatalf("AndCount under scalar = %d, want 4", got)
	}

	if _, err := SelectKernel("auto"); err != nil {
		t.Fatalf("SelectKernel(auto) after error state: %v", err)
	}
	if KernelName() != best {
		t.Fatalf("auto re-selection gave %q, want %q", KernelName(), best)
	}
}

// TestBitSimRowKernelsByteIdentical is the bit-identity contract test:
// the active kernel (vector on capable hardware) and the forced scalar
// kernel must produce byte-for-byte identical similarity rows — not
// merely close — because kernels return exact integer counts and the
// float64 division is shared. On scalar-only hardware both passes run
// the same code and the test degenerates to a self-check.
func TestBitSimRowKernelsByteIdentical(t *testing.T) {
	defer restoreKernel()
	rng := rand.New(rand.NewSource(1234))
	for _, words := range []int{1, 5, 8, 16, 32, 33} {
		const m = 130
		loc := bitsLocal(t, rng, m, words)

		got := make([]float64, m-1)
		want := make([]float64, m-1)
		for i := 0; i < m; i += 17 {
			if _, err := SelectKernel(""); err != nil {
				t.Fatal(err)
			}
			active := KernelName()
			loc.SimRow(i, 0, m-1, got)
			if _, err := SelectKernel("scalar"); err != nil {
				t.Fatal(err)
			}
			loc.SimRow(i, 0, m-1, want)
			for x := range got {
				if math.Float64bits(got[x]) != math.Float64bits(want[x]) {
					t.Fatalf("words=%d i=%d x=%d: kernel %s gave %x, scalar gave %x",
						words, i, x, active,
						math.Float64bits(got[x]), math.Float64bits(want[x]))
				}
			}
		}
	}
}
