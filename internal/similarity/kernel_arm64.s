// NEON AND-popcount run kernels. See kernel_arm64.go for the Go
// prototypes and kernel.go for the layer's contract: exact integer
// intersection counts of one signature against a contiguous run of
// slab rows; the float64 Jaccard division stays in Go.
//
// Popcount strategy: VCNT counts bits per byte in one instruction, so a
// row reduces to AND, per-byte counts, a byte-wise add tree, and one
// VUADDLV widening sum. Byte lanes cannot overflow: the 16-word kernel
// folds eight count vectors (max 64 per byte lane), the generic kernel
// flushes its accumulator every 16 chunks (max 128 per lane).

#include "textflag.h"

// func countRun16NEON(counts *int32, a *uint64, slab *uint64, n int)
TEXT ·countRun16NEON(SB), NOSPLIT, $0-32
	MOVD counts+0(FP), R0
	MOVD a+8(FP), R1
	MOVD slab+16(FP), R2
	MOVD n+24(FP), R3

	// The 128-byte query signature rides in V0–V7 for the whole run.
	VLD1.P 64(R1), [V0.B16, V1.B16, V2.B16, V3.B16]
	VLD1   (R1), [V4.B16, V5.B16, V6.B16, V7.B16]

loop16:
	VLD1.P 64(R2), [V8.B16, V9.B16, V10.B16, V11.B16]
	VLD1.P 64(R2), [V12.B16, V13.B16, V14.B16, V15.B16]

	VAND V0.B16, V8.B16, V8.B16
	VAND V1.B16, V9.B16, V9.B16
	VAND V2.B16, V10.B16, V10.B16
	VAND V3.B16, V11.B16, V11.B16
	VAND V4.B16, V12.B16, V12.B16
	VAND V5.B16, V13.B16, V13.B16
	VAND V6.B16, V14.B16, V14.B16
	VAND V7.B16, V15.B16, V15.B16

	VCNT V8.B16, V8.B16
	VCNT V9.B16, V9.B16
	VCNT V10.B16, V10.B16
	VCNT V11.B16, V11.B16
	VCNT V12.B16, V12.B16
	VCNT V13.B16, V13.B16
	VCNT V14.B16, V14.B16
	VCNT V15.B16, V15.B16

	// Byte-count add tree (lanes peak at 64 < 255), then widen.
	VADD V9.B16, V8.B16, V8.B16
	VADD V11.B16, V10.B16, V10.B16
	VADD V13.B16, V12.B16, V12.B16
	VADD V15.B16, V14.B16, V14.B16
	VADD V10.B16, V8.B16, V8.B16
	VADD V14.B16, V12.B16, V12.B16
	VADD V12.B16, V8.B16, V8.B16

	VUADDLV V8.B16, V16
	VMOV    V16.S[0], R4

	MOVW R4, (R0)
	ADD  $4, R0
	SUB  $1, R3
	CBNZ R3, loop16

	RET

// func countRunNNEON(counts *int32, a *uint64, slab *uint64, n, words int)
//
// Generic width: per row, one 2-word (16-byte) chunk at a time into a
// byte accumulator that flushes to a scalar sum every 16 chunks, then a
// 1-word scalar-register tail when words is odd.
TEXT ·countRunNNEON(SB), NOSPLIT, $0-40
	MOVD counts+0(FP), R0
	MOVD a+8(FP), R1
	MOVD slab+16(FP), R2
	MOVD n+24(FP), R3
	MOVD words+32(FP), R4

	LSR $1, R4, R5 // R5 = 2-word chunks per row
	AND $1, R4, R6 // R6 = 1 when a tail word exists
	LSL $3, R4, R7 // R7 = row stride in bytes

rowN:
	MOVD R1, R8  // a cursor
	MOVD R2, R9  // slab row cursor
	MOVD ZR, R10 // row sum
	VEOR V2.B16, V2.B16, V2.B16
	MOVD $16, R12 // chunks until the next accumulator flush
	MOVD R5, R11
	CBZ  R11, tailN

chunkN:
	VLD1.P 16(R8), [V0.B16]
	VLD1.P 16(R9), [V1.B16]
	VAND   V0.B16, V1.B16, V0.B16
	VCNT   V0.B16, V0.B16
	VADD   V0.B16, V2.B16, V2.B16
	SUB    $1, R11
	SUB    $1, R12
	CBZ    R11, drainN
	CBNZ   R12, chunkN

	// Group flush: keep byte lanes below overflow for any words.
	VUADDLV V2.B16, V3
	VMOV    V3.S[0], R13
	ADD     R13, R10
	VEOR    V2.B16, V2.B16, V2.B16
	MOVD    $16, R12
	B       chunkN

drainN:
	VUADDLV V2.B16, V3
	VMOV    V3.S[0], R13
	ADD     R13, R10

tailN:
	CBZ R6, storeN

	MOVD  (R8), R13
	MOVD  (R9), R14
	AND   R14, R13, R13
	FMOVD R13, F0
	VCNT  V0.B8, V0.B8
	VUADDLV V0.B8, V1
	VMOV  V1.S[0], R13
	ADD   R13, R10

storeN:
	MOVW R10, (R0)
	ADD  $4, R0
	ADD  R7, R2
	SUB  $1, R3
	CBNZ R3, rowN

	RET
