package similarity

// arm64 vector kernel: NEON VAND + VCNT byte popcount with an in-vector
// byte-count tree, widened by VUADDLV. The assembly lives in
// kernel_arm64.s; like the amd64 kernels it returns exact integer
// intersection counts, so BitSimRow's float64 division keeps results
// bit-identical to the scalar reference.

// countRun16NEON writes counts[x] = popcount(a AND slab[16x:16x+16])
// for x in [0, n) — the paper-default 1024-bit specialization with the
// query signature held in eight vector registers across the run.
//
//go:noescape
func countRun16NEON(counts *int32, a *uint64, slab *uint64, n int)

// countRunNNEON is the generic-width run kernel: any words ≥ 1,
// vectorized over 2-word chunks with a group flush well inside the
// byte-lane overflow bound and a 1-word scalar tail.
//
//go:noescape
func countRunNNEON(counts *int32, a *uint64, slab *uint64, n, words int)

// vectorName reports "neon" unconditionally: AdvSIMD is baseline in
// ARMv8-A, which is the floor for Go's arm64 port — there is nothing
// to probe.
func vectorName() string { return "neon" }

// countRunVector dispatches one contiguous run to the NEON kernels.
// Only called with useVector set.
func countRunVector(counts []int32, a, slab []uint64, words int) {
	if words == 16 {
		countRun16NEON(&counts[0], &a[0], &slab[0], len(counts))
		return
	}
	countRunNNEON(&counts[0], &a[0], &slab[0], len(counts), words)
}

// countOneVector serves the batch-shaped path at the paper-default
// width; other widths report false and fall back to the scalar
// specializations.
func countOneVector(a, row []uint64, words int) (int, bool) {
	if words != 16 {
		return 0, false
	}
	var c int32
	countRun16NEON(&c, &a[0], &row[0], 1)
	return int(c), true
}
