package goldfinger

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"c2knn/internal/dataset"
	"c2knn/internal/sets"
	"c2knn/internal/similarity"
)

func TestNewRejectsBadWidths(t *testing.T) {
	d := dataset.New("x", [][]int32{{0}}, 1)
	for _, bits := range []int{0, -64, 32, 100} {
		if _, err := New(d, bits, 1); err == nil {
			t.Errorf("New with bits=%d should fail", bits)
		}
	}
	if _, err := New(d, 128, 1); err != nil {
		t.Errorf("New with bits=128 failed: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid width")
		}
	}()
	MustNew(dataset.New("x", [][]int32{{0}}, 1), 7, 1)
}

func TestIdenticalProfilesEstimateOne(t *testing.T) {
	d := dataset.New("id", [][]int32{{1, 5, 9}, {1, 5, 9}}, 10)
	s := MustNew(d, 256, 3)
	if got := s.Sim(0, 1); got != 1 {
		t.Errorf("identical profiles: estimate = %v, want 1", got)
	}
}

func TestDisjointSmallProfiles(t *testing.T) {
	// With profiles much smaller than the fingerprint width, disjoint
	// profiles should estimate near 0 (collisions are rare).
	d := dataset.New("dj", [][]int32{{1, 2, 3}, {100, 200, 300}}, 400)
	s := MustNew(d, 1024, 3)
	if got := s.Sim(0, 1); got > 0.4 {
		t.Errorf("disjoint tiny profiles: estimate = %v, want ≈ 0", got)
	}
}

func TestEmptyProfile(t *testing.T) {
	d := dataset.New("e", [][]int32{{}, {1}}, 2)
	s := MustNew(d, 64, 3)
	if got := s.Sim(0, 1); got != 0 {
		t.Errorf("empty vs non-empty = %v, want 0", got)
	}
	if got := s.Sim(0, 0); got != 0 {
		t.Errorf("empty vs empty = %v, want 0", got)
	}
	if s.Ones(0) != 0 {
		t.Errorf("Ones(empty) = %d, want 0", s.Ones(0))
	}
}

// TestEstimationAccuracy checks the estimator against exact Jaccard on
// random profile pairs: with 1024-bit fingerprints and ≈100-item
// profiles, the mean absolute error should be small (the property the
// paper's §II-F relies on).
func TestEstimationAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const users = 60
	profiles := make([][]int32, users)
	for i := range profiles {
		p := make([]int32, 100)
		base := rng.Intn(2000)
		for j := range p {
			// Overlapping windows create a range of true similarities.
			p[j] = int32(base + rng.Intn(400))
		}
		profiles[i] = sets.Normalize(p)
	}
	d := dataset.New("acc", profiles, 3000)
	exact := similarity.NewJaccard(d)
	gf := MustNew(d, 1024, 7)
	var absErr float64
	n := 0
	for u := int32(0); u < users; u++ {
		for v := u + 1; v < users; v++ {
			absErr += math.Abs(gf.Sim(u, v) - exact.Sim(u, v))
			n++
		}
	}
	if mean := absErr / float64(n); mean > 0.05 {
		t.Errorf("mean |estimate − exact| = %.4f, want ≤ 0.05", mean)
	}
}

// TestEstimateProperties: symmetry, range, determinism as quick
// properties.
func TestEstimateProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	profiles := make([][]int32, 30)
	for i := range profiles {
		p := make([]int32, 1+rng.Intn(50))
		for j := range p {
			p[j] = int32(rng.Intn(500))
		}
		profiles[i] = sets.Normalize(p)
	}
	d := dataset.New("pr", profiles, 500)
	s := MustNew(d, 512, 5)
	f := func(a, b uint8) bool {
		u := int32(a) % 30
		v := int32(b) % 30
		x := s.Sim(u, v)
		return x >= 0 && x <= 1 && x == s.Sim(v, u) && s.Sim(u, u) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestWidthMonotonicity: wider fingerprints should not be (materially)
// less accurate than narrow ones on the same data.
func TestWidthMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	profiles := make([][]int32, 40)
	for i := range profiles {
		p := make([]int32, 80)
		base := rng.Intn(1000)
		for j := range p {
			p[j] = int32(base + rng.Intn(300))
		}
		profiles[i] = sets.Normalize(p)
	}
	d := dataset.New("w", profiles, 2000)
	exact := similarity.NewJaccard(d)
	err64 := meanAbsErr(t, d, exact, 64)
	err4096 := meanAbsErr(t, d, exact, 4096)
	if err4096 > err64+0.01 {
		t.Errorf("4096-bit error %.4f exceeds 64-bit error %.4f", err4096, err64)
	}
}

func meanAbsErr(t *testing.T, d *dataset.Dataset, exact similarity.Provider, bits int) float64 {
	t.Helper()
	gf := MustNew(d, bits, 7)
	var sum float64
	n := 0
	for u := int32(0); u < int32(d.NumUsers()); u++ {
		for v := u + 1; v < int32(d.NumUsers()); v++ {
			sum += math.Abs(gf.Sim(u, v) - exact.Sim(u, v))
			n++
		}
	}
	return sum / float64(n)
}

func TestSignatureAliasesStorage(t *testing.T) {
	d := dataset.New("sig", [][]int32{{0, 1}, {2}}, 3)
	s := MustNew(d, 64, 3)
	if len(s.Signature(0)) != 1 {
		t.Errorf("signature word count = %d, want 1", len(s.Signature(0)))
	}
	if s.Bits() != 64 || s.NumUsers() != 2 {
		t.Errorf("Bits/NumUsers = %d/%d, want 64/2", s.Bits(), s.NumUsers())
	}
}

func BenchmarkSim1024(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	profiles := make([][]int32, 2)
	for i := range profiles {
		p := make([]int32, 90)
		for j := range p {
			p[j] = int32(rng.Intn(10000))
		}
		profiles[i] = sets.Normalize(p)
	}
	s := MustNew(dataset.New("b", profiles, 10000), 1024, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sim(0, 1)
	}
}

// TestGatherEquivalence: the gathered bit-kernel must agree exactly
// with the global Sim — the AND-popcount plus precomputed per-member
// popcounts computes the same integer intersection and union, so the
// float64 quotient is bit-identical.
func TestGatherEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	profiles := make([][]int32, 120)
	for i := range profiles {
		p := make([]int32, rng.Intn(60))
		for j := range p {
			p[j] = int32(rng.Intn(4000))
		}
		profiles[i] = sets.Normalize(p)
	}
	d := dataset.New("gather", profiles, 4000)
	s := MustNew(d, 256, 9)

	var loc similarity.Local
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.Intn(40)
		perm := rng.Perm(len(profiles))
		ids := make([]int32, m)
		for i := range ids {
			ids[i] = int32(perm[i])
		}
		s.Gather(ids, &loc)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				got, want := loc.Sim(i, j), s.Sim(ids[i], ids[j])
				if got != want {
					t.Fatalf("trial %d pair (%d,%d): gathered %v != global %v",
						trial, ids[i], ids[j], got, want)
				}
			}
		}
	}
}

// TestSimRowMatchesSim: the global RowProvider path must agree exactly
// with per-pair Sim — the ones-based union equals the OR-popcount union
// as integers — across widths hitting the w==16 specialization, the
// 4-wide unroll, and odd word tails.
func TestSimRowMatchesSim(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	profiles := make([][]int32, 90)
	for i := range profiles {
		p := make([]int32, rng.Intn(50))
		for j := range p {
			p[j] = int32(rng.Intn(3000))
		}
		profiles[i] = sets.Normalize(p)
	}
	profiles[7] = nil // empty profile: empty fingerprint, union can be 0
	d := dataset.New("rows", profiles, 3000)
	n := int32(d.NumUsers())

	for _, bitsN := range []int{64, 192, 320, 1024, 1088} {
		s := MustNew(d, bitsN, 5)
		var rp similarity.RowProvider = s
		dst := make([]float64, n)
		for u := int32(0); u < n; u += 3 {
			for bs := int32(1); bs <= 17; bs++ {
				for v0 := int32(0); v0+bs <= n; v0 += 23 {
					rp.SimRow(u, v0, v0+bs, dst)
					for x := int32(0); x < bs; x++ {
						if got, want := dst[x], s.Sim(u, v0+x); got != want {
							t.Fatalf("bits=%d SimRow(%d, %d, %d)[%d] = %v, want %v",
								bitsN, u, v0, v0+bs, x, got, want)
						}
					}
				}
			}
		}
	}
}

// TestLocalSimRowMatchesSim covers the gathered kernel's row path on
// real fingerprints (the synthetic-slab tests live in the similarity
// package, which cannot import goldfinger).
func TestLocalSimRowMatchesSim(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	profiles := make([][]int32, 70)
	for i := range profiles {
		p := make([]int32, rng.Intn(40))
		for j := range p {
			p[j] = int32(rng.Intn(2000))
		}
		profiles[i] = sets.Normalize(p)
	}
	d := dataset.New("rowsLocal", profiles, 2000)

	for _, bitsN := range []int{64, 320, 1024} {
		s := MustNew(d, bitsN, 3)
		perm := rng.Perm(len(profiles))
		ids := make([]int32, 33)
		for i := range ids {
			ids[i] = int32(perm[i])
		}
		var loc similarity.Local
		s.Gather(ids, &loc)
		dst := make([]float64, len(ids))
		for i := range ids {
			for bs := 1; bs <= 17; bs++ {
				for j0 := 0; j0+bs <= len(ids); j0 += bs {
					loc.SimRow(i, j0, j0+bs, dst)
					for x := 0; x < bs; x++ {
						if got, want := dst[x], loc.Sim(i, j0+x); got != want {
							t.Fatalf("bits=%d SimRow(%d, %d, %d)[%d] = %v, want %v",
								bitsN, i, j0, j0+bs, x, got, want)
						}
					}
				}
			}
		}
	}
}
