// Package goldfinger implements the GoldFinger compact profile summaries
// of Guerraoui, Kermarrec, Ruas and Taïani ("Fingerprinting big data: the
// case of KNN graph construction", ICDE 2019), which the paper uses to
// accelerate Jaccard computations in every algorithm it evaluates (§II-F,
// §IV-C). A profile P_u is summarized into a B-bit vector whose bit
// h(i) mod B is set for every item i ∈ P_u; the Jaccard similarity of two
// users is then estimated as popcount(S_u AND S_v) / popcount(S_u OR S_v).
package goldfinger

import (
	"fmt"
	"math/bits"

	"c2knn/internal/dataset"
	"c2knn/internal/jenkins"
	"c2knn/internal/similarity"
)

// Set holds the fingerprints of every user of a dataset, flattened into a
// single []uint64 for cache friendliness. It implements
// similarity.Provider.
type Set struct {
	bits  int
	words int
	sigs  []uint64 // len = numUsers × words
	ones  []int32  // per-user fingerprint popcounts, fixed at build time
	n     int
}

// DefaultBits is the fingerprint width used throughout the paper's
// evaluation (1024-bit vectors, §IV-C).
const DefaultBits = 1024

// New builds B-bit fingerprints for every profile of d. bits must be a
// positive multiple of 64 (the paper sweeps 64 to 8096; we accept any
// multiple of 64). seed selects the item-hash function.
func New(d *dataset.Dataset, bitsN int, seed uint32) (*Set, error) {
	if bitsN <= 0 || bitsN%64 != 0 {
		return nil, fmt.Errorf("goldfinger: bits must be a positive multiple of 64, got %d", bitsN)
	}
	words := bitsN / 64
	s := &Set{bits: bitsN, words: words, n: d.NumUsers(), sigs: make([]uint64, d.NumUsers()*words)}
	// Precompute the bit position of every item once; profiles reference
	// items many times across users.
	pos := make([]uint32, d.NumItems)
	for i := range pos {
		pos[i] = jenkins.Hash32(uint32(i), seed) % uint32(bitsN)
	}
	s.ones = make([]int32, d.NumUsers())
	for u, p := range d.Profiles {
		sig := s.sigs[u*words : (u+1)*words]
		for _, it := range p {
			b := pos[it]
			sig[b>>6] |= 1 << (b & 63)
		}
		n := 0
		for _, w := range sig {
			n += bits.OnesCount64(w)
		}
		s.ones[u] = int32(n)
	}
	return s, nil
}

// Summarize fingerprints a single profile with the same item-hash family
// New uses: bit Hash32(item, seed) mod bits is set for every item of the
// profile. dst must hold exactly bitsN/64 words; it is zeroed first. The
// fingerprint popcount is returned. Summarizing a profile of a dataset
// with New's bits and seed reproduces that user's Set row bit for bit —
// the delta-overlay path relies on this to score freshly upserted
// profiles against a snapshot's signature slab.
func Summarize(profile []int32, bitsN int, seed uint32, dst []uint64) int32 {
	if bitsN <= 0 || bitsN%64 != 0 || len(dst) != bitsN/64 {
		panic(fmt.Sprintf("goldfinger: summarize needs bits%%64==0 and a %d-word dst, got bits=%d len=%d",
			bitsN/64, bitsN, len(dst)))
	}
	clear(dst)
	for _, it := range profile {
		b := jenkins.Hash32(uint32(it), seed) % uint32(bitsN)
		dst[b>>6] |= 1 << (b & 63)
	}
	n := 0
	for _, w := range dst {
		n += bits.OnesCount64(w)
	}
	return int32(n)
}

// MustNew is New, panicking on invalid width; for tests and examples.
func MustNew(d *dataset.Dataset, bitsN int, seed uint32) *Set {
	s, err := New(d, bitsN, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Bits returns the fingerprint width in bits.
func (s *Set) Bits() int { return s.bits }

// NumUsers returns the number of fingerprints held.
func (s *Set) NumUsers() int { return s.n }

// Signature returns user u's fingerprint words. The returned slice aliases
// internal storage and must not be mutated.
func (s *Set) Signature(u int32) []uint64 {
	return s.sigs[int(u)*s.words : (int(u)+1)*s.words]
}

// Sim estimates the Jaccard similarity of users u and v from their
// fingerprints. It implements similarity.Provider.
func (s *Set) Sim(u, v int32) float64 {
	a := s.sigs[int(u)*s.words : (int(u)+1)*s.words]
	b := s.sigs[int(v)*s.words : (int(v)+1)*s.words]
	// One AND-popcount through the shared count kernel; the union comes
	// from the build-time popcounts (|a∪b| = |a| + |b| − |a∩b|), which
	// matches the historical OR-popcount loop exactly and halves its
	// work.
	inter := similarity.AndCount(a, b)
	union := int(s.ones[u]) + int(s.ones[v]) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Gather implements similarity.Localizer: it copies the cluster
// members' fingerprints into dst's contiguous scratch block along with
// their build-time popcounts. The resulting kernel serves Jaccard
// estimates from a single AND-popcount per pair
// (union = ones[i] + ones[j] − inter), halving the popcount work of Sim
// on top of removing the interface dispatch and global-id indexing.
func (s *Set) Gather(ids []int32, dst *similarity.Local) {
	sigs, ones := dst.InitBits(ids, s.words)
	for i, id := range ids {
		copy(sigs[i*s.words:(i+1)*s.words], s.sigs[int(id)*s.words:(int(id)+1)*s.words])
		ones[i] = s.ones[id]
	}
}

// SimRow implements similarity.RowProvider: it scores user u against
// the contiguous user-id run [v0, v1) in one call, writing Sim(u, v0+x)
// into dst[x]. The flattened signature slab is already member-major, so
// rows are served with no gather at all — this is the fast path of the
// exact brute-force baseline, whose triangular sweep scores whole rows
// of the population. Estimates are bit-identical to Sim: the per-pair
// OR-popcount union equals ones[u] + ones[v] − inter exactly.
func (s *Set) SimRow(u, v0, v1 int32, dst []float64) {
	similarity.BitSimRow(dst[:v1-v0], s.Signature(u), int(s.ones[u]), s.sigs, s.ones, int(v0), s.words)
}

var (
	_ similarity.Localizer   = (*Set)(nil)
	_ similarity.RowProvider = (*Set)(nil)
)

// Ones returns the popcount of user u's fingerprint; useful to gauge
// saturation (estimates degrade as fingerprints fill up).
func (s *Set) Ones(u int32) int { return int(s.ones[u]) }

// Signatures returns the flattened fingerprint block: NumUsers × Bits/64
// words, user-major. The slice aliases internal storage and must not be
// mutated; the persistence layer serializes it verbatim.
func (s *Set) Signatures() []uint64 { return s.sigs }

// FromSignatures reconstructs a Set from a previously built signature
// block (e.g. one loaded from a snapshot), recomputing the per-user
// popcounts. sigs must hold exactly n × bits/64 words; it is aliased,
// not copied. The item-hash seed is not needed: fingerprints are
// self-contained for similarity estimation, the seed only matters when
// summarizing new profiles.
func FromSignatures(bitsN, n int, sigs []uint64) (*Set, error) {
	if bitsN <= 0 || bitsN%64 != 0 {
		return nil, fmt.Errorf("goldfinger: bits must be a positive multiple of 64, got %d", bitsN)
	}
	if n < 0 {
		return nil, fmt.Errorf("goldfinger: negative user count %d", n)
	}
	words := bitsN / 64
	if len(sigs) != n*words {
		return nil, fmt.Errorf("goldfinger: signature block has %d words, want %d users × %d words",
			len(sigs), n, words)
	}
	s := &Set{bits: bitsN, words: words, n: n, sigs: sigs, ones: make([]int32, n)}
	for u := 0; u < n; u++ {
		cnt := 0
		for _, w := range sigs[u*words : (u+1)*words] {
			cnt += bits.OnesCount64(w)
		}
		s.ones[u] = int32(cnt)
	}
	return s, nil
}

// FromParts reconstructs a Set from a signature block and its matching
// per-user popcounts, aliasing both slices — the zero-copy counterpart
// of FromSignatures for snapshot formats that persist the popcounts
// alongside the signatures (both slices may view read-only mapped
// memory). Lengths are validated and each popcount range-checked
// against the fingerprint width; popcounts are not recomputed, so the
// caller must have integrity evidence for the bytes (the snapshot
// loader checksums them). A wrong-but-in-range popcount skews the
// similarity estimate; it cannot cause out-of-range indexing.
func FromParts(bitsN, n int, sigs []uint64, ones []int32) (*Set, error) {
	if bitsN <= 0 || bitsN%64 != 0 {
		return nil, fmt.Errorf("goldfinger: bits must be a positive multiple of 64, got %d", bitsN)
	}
	if n < 0 {
		return nil, fmt.Errorf("goldfinger: negative user count %d", n)
	}
	words := bitsN / 64
	if len(sigs) != n*words {
		return nil, fmt.Errorf("goldfinger: signature block has %d words, want %d users × %d words",
			len(sigs), n, words)
	}
	if len(ones) != n {
		return nil, fmt.Errorf("goldfinger: popcount block has %d entries, want %d", len(ones), n)
	}
	for u, c := range ones {
		if c < 0 || int(c) > bitsN {
			return nil, fmt.Errorf("goldfinger: user %d popcount %d outside [0,%d]", u, c, bitsN)
		}
	}
	return &Set{bits: bitsN, words: words, n: n, sigs: sigs, ones: ones}, nil
}
