// Package nndescent implements NN-Descent (Dong, Moses, Li — WWW 2011;
// Bratić et al., WIMS 2018), the second greedy competitor of the paper
// (§IV-B2). Where Hyrec compares u against its neighbors-of-neighbors,
// NN-Descent compares all pairs (u_i, u_j) among u's neighbors and updates
// both. This implementation includes the standard refinements of the
// original algorithm: reverse neighbors and new/old flags, so converged
// regions stop generating candidate pairs.
package nndescent

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"c2knn/internal/knng"
	"c2knn/internal/similarity"
)

// Options parameterizes an NN-Descent run. Zero fields take the paper's
// defaults.
type Options struct {
	// K is the neighborhood size (default 30).
	K int
	// Delta is the termination threshold: stop when an iteration performs
	// fewer than Delta·K·n updates (default 0.001).
	Delta float64
	// MaxIter caps the number of iterations (default 30).
	MaxIter int
	// SampleK caps how many reverse neighbors are considered per user and
	// iteration (default K; the original paper's ρ·K with ρ=1).
	SampleK int
	// Workers sizes the worker pool (default 1).
	Workers int
	// Seed drives the random initial graph and reverse sampling.
	Seed int64
}

func (o *Options) setDefaults() {
	if o.K == 0 {
		o.K = 30
	}
	if o.Delta == 0 {
		o.Delta = 0.001
	}
	if o.MaxIter == 0 {
		o.MaxIter = 30
	}
	if o.SampleK == 0 {
		o.SampleK = o.K
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
}

// Result reports how a run unfolded.
type Result struct {
	Iterations int
	Updates    []int
	Converged  bool
}

// Build constructs an approximate KNN graph over users 0..n-1.
func Build(n int, p similarity.Provider, o Options) (*knng.Graph, Result) {
	o.setDefaults()
	g := knng.New(n, o.K)
	knng.RandomInit(g, p, o.Seed)
	res := refine(g, p, o)
	return g, res
}

func refine(g *knng.Graph, p similarity.Provider, o Options) Result {
	n := g.NumUsers()
	res := Result{}
	if n < 2 {
		return res
	}
	threshold := int64(o.Delta * float64(o.K) * float64(n))
	shared := knng.NewShared(g)
	rng := rand.New(rand.NewSource(o.Seed + 1))

	newFwd := make([][]int32, n) // fresh forward neighbors
	oldFwd := make([][]int32, n) // settled forward neighbors
	newRev := make([][]int32, n) // fresh reverse neighbors (sampled)
	oldRev := make([][]int32, n) // settled reverse neighbors (sampled)

	for iter := 0; iter < o.MaxIter; iter++ {
		for u := 0; u < n; u++ {
			newRev[u] = newRev[u][:0]
			oldRev[u] = oldRev[u][:0]
		}
		for u := 0; u < n; u++ {
			l := &g.Lists[u]
			newFwd[u] = l.ResetNew(newFwd[u][:0])
			oldFwd[u] = oldFwd[u][:0]
			for i := range l.H {
				if !contains(newFwd[u], l.H[i].ID) {
					oldFwd[u] = append(oldFwd[u], l.H[i].ID)
				}
			}
		}
		// Build sampled reverse lists from the snapshots.
		for u := 0; u < n; u++ {
			for _, v := range newFwd[u] {
				newRev[v] = reservoirAppend(newRev[v], int32(u), o.SampleK, rng)
			}
			for _, v := range oldFwd[u] {
				oldRev[v] = reservoirAppend(oldRev[v], int32(u), o.SampleK, rng)
			}
		}
		var updates atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < o.Workers; w++ {
			wg.Add(1)
			go func(start int) {
				defer wg.Done()
				var newSet, oldSet []int32
				for u := start; u < n; u += o.Workers {
					newSet = dedupUnion(newSet[:0], newFwd[u], newRev[u])
					oldSet = dedupUnion(oldSet[:0], oldFwd[u], oldRev[u])
					// new × new pairs.
					for i := 0; i < len(newSet); i++ {
						for j := i + 1; j < len(newSet); j++ {
							updates.Add(compare(shared, p, newFwd, oldFwd, newSet[i], newSet[j]))
						}
					}
					// new × old pairs.
					for _, a := range newSet {
						for _, b := range oldSet {
							if a == b {
								continue
							}
							updates.Add(compare(shared, p, newFwd, oldFwd, a, b))
						}
					}
				}
			}(w)
		}
		wg.Wait()
		res.Iterations++
		u := int(updates.Load())
		res.Updates = append(res.Updates, u)
		if int64(u) < threshold {
			res.Converged = true
			break
		}
	}
	return res
}

// compare evaluates sim(a, b) once and offers it to both endpoints,
// returning the number of neighborhoods that changed. The already-linked
// pre-check reads the per-iteration snapshots (immutable while workers
// run) rather than the live lists, so it is race-free; Insert re-checks
// membership under the stripe lock.
func compare(shared *knng.Shared, p similarity.Provider, newFwd, oldFwd [][]int32, a, b int32) int64 {
	if (contains(newFwd[a], b) || contains(oldFwd[a], b)) &&
		(contains(newFwd[b], a) || contains(oldFwd[b], a)) {
		return 0
	}
	s := p.Sim(a, b)
	var upd int64
	if shared.Insert(a, b, s) {
		upd++
	}
	if shared.Insert(b, a, s) {
		upd++
	}
	return upd
}

// reservoirAppend keeps at most cap elements using reservoir sampling so
// popular users do not accumulate unbounded reverse lists.
func reservoirAppend(dst []int32, v int32, capN int, rng *rand.Rand) []int32 {
	if len(dst) < capN {
		return append(dst, v)
	}
	if j := rng.Intn(len(dst) + 1); j < capN {
		dst[j] = v
	}
	return dst
}

func contains(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// dedupUnion appends the union of a and b (deduplicated, order arbitrary)
// to dst.
func dedupUnion(dst, a, b []int32) []int32 {
	dst = append(dst, a...)
	for _, v := range b {
		if !contains(dst, v) {
			dst = append(dst, v)
		}
	}
	return dst
}
