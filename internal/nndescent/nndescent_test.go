package nndescent

import (
	"math"
	"testing"

	"c2knn/internal/bruteforce"
	"c2knn/internal/knng"
	"c2knn/internal/similarity"
)

func ringSim(n int) similarity.Provider {
	return similarity.Func(func(u, v int32) float64 {
		d := math.Abs(float64(u - v))
		if d > float64(n)/2 {
			d = float64(n) - d
		}
		return 1 / (1 + d)
	})
}

func TestBuildConvergesOnRing(t *testing.T) {
	const n, k = 300, 8
	p := ringSim(n)
	g, res := Build(n, p, Options{K: k, Seed: 1, Workers: 2})
	exact := bruteforce.Build(n, k, p, 2)
	q := knng.Quality(g, exact, p)
	if q < 0.95 {
		t.Errorf("quality on ring = %.3f, want ≥ 0.95", q)
	}
	if !res.Converged && res.Iterations < 30 {
		t.Errorf("run neither converged nor exhausted iterations: %+v", res)
	}
}

func TestUpdatesDecline(t *testing.T) {
	const n = 400
	p := ringSim(n)
	_, res := Build(n, p, Options{K: 6, Seed: 2, Workers: 2})
	if len(res.Updates) < 2 {
		t.Skip("converged too fast to compare iterations")
	}
	first, last := res.Updates[0], res.Updates[len(res.Updates)-1]
	if last >= first {
		t.Errorf("updates did not decline: first=%d last=%d", first, last)
	}
}

func TestMaxIterAndDelta(t *testing.T) {
	p := ringSim(100)
	_, res := Build(100, p, Options{K: 4, MaxIter: 3, Seed: 1})
	if res.Iterations > 3 {
		t.Errorf("iterations = %d, want ≤ 3", res.Iterations)
	}
	_, res = Build(100, p, Options{K: 4, Delta: 1e9, Seed: 1})
	if !res.Converged || res.Iterations != 1 {
		t.Errorf("huge delta: %+v, want immediate convergence", res)
	}
}

func TestBuildDegenerate(t *testing.T) {
	p := ringSim(5)
	g, _ := Build(0, p, Options{K: 3})
	if g.NumUsers() != 0 {
		t.Error("empty population mishandled")
	}
	g, _ = Build(2, p, Options{K: 3, Seed: 1})
	if g.Lists[0].Len() != 1 || g.Lists[1].Len() != 1 {
		t.Error("two users should link to each other")
	}
}

func TestSampleKLimitsWork(t *testing.T) {
	const n, k = 300, 8
	p1 := similarity.NewCounting(ringSim(n))
	Build(n, p1, Options{K: k, SampleK: 2, Seed: 3, Workers: 2})
	p2 := similarity.NewCounting(ringSim(n))
	Build(n, p2, Options{K: k, SampleK: 30, Seed: 3, Workers: 2})
	if p1.Count() >= p2.Count() {
		t.Errorf("SampleK=2 computed %d sims, SampleK=30 computed %d — sampling not limiting work",
			p1.Count(), p2.Count())
	}
}

// TestComparableToHyrecStyleQuality: NNDescent should reach about the
// same quality as brute force recall-wise on a clustered landscape.
func TestClusteredLandscape(t *testing.T) {
	const n, k = 240, 6
	// Three well-separated blobs; in-blob similarity high.
	p := similarity.Func(func(u, v int32) float64 {
		if u%3 == v%3 {
			d := math.Abs(float64(u - v))
			return 1 / (1 + d/10)
		}
		return 0.01
	})
	g, _ := Build(n, p, Options{K: k, Seed: 5, Workers: 2})
	exact := bruteforce.Build(n, k, p, 2)
	if q := knng.Quality(g, exact, p); q < 0.9 {
		t.Errorf("quality on blobs = %.3f, want ≥ 0.9", q)
	}
}

func BenchmarkBuildRing500(b *testing.B) {
	p := ringSim(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(500, p, Options{K: 10, Seed: 1, Workers: 2})
	}
}
