// Package synth generates synthetic users×items datasets standing in for
// the six public datasets of the paper's evaluation (Table I), which
// cannot be downloaded in this offline environment. The generator is
// calibrated so the properties C² is sensitive to are preserved:
//
//   - scale: user count, item-universe size and rating volume match the
//     paper's figures (modulo an optional scale factor);
//   - similarity structure: users belong to latent leaf communities
//     grouped into parent regions, and profiles mix leaf-local,
//     region-local and global draws. The three levels give the dataset a
//     navigable similarity gradient (random-start greedy algorithms can
//     descend from weak global overlaps to strong community overlaps, as
//     they do on real data) and give every item a coherent fan base;
//   - popularity skew: item popularity follows a Zipf law whose exponent
//     differs per preset — dense MovieLens-like datasets have heavy heads
//     (producing the giant FastRandomHash clusters that trigger recursive
//     splitting, Fig. 8a) while sparse Amazon/DBLP/Gowalla-like datasets
//     have flat, huge item universes (no raw cluster exceeds N, Fig. 8b,
//     and LSH fragments them).
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"c2knn/internal/dataset"
	"c2knn/internal/jenkins"
)

// leavesPerParent groups leaf communities into parent regions; the middle
// level of the similarity hierarchy.
const leavesPerParent = 8

// Config describes one synthetic dataset.
type Config struct {
	// Name labels the generated dataset.
	Name string
	// Users and Items size the two populations.
	Users int
	Items int
	// MeanProfile is the target mean |P_u|; actual means land within a
	// few percent after clipping.
	MeanProfile float64
	// ProfileSigma is the σ of the lognormal profile-size distribution.
	ProfileSigma float64
	// MinProfile clips profile sizes from below (the paper keeps users
	// with ≥ 20 ratings).
	MinProfile int
	// Communities is the number of leaf communities.
	Communities int
	// GlobalFrac is the probability that an item draw follows the global
	// popularity distribution (blockbusters: every user can rate them).
	GlobalFrac float64
	// ParentFrac is the probability that a draw comes from the user's
	// parent region (a group of neighboring leaf communities).
	ParentFrac float64
	// ZipfS and ZipfV shape the within-leaf item-popularity law
	// P(rank) ∝ 1/(v+rank)^s; they control how coherent a community's
	// profiles are.
	ZipfS float64
	ZipfV float64
	// GlobalZipfS and GlobalZipfV shape the global (blockbuster) draw;
	// they control the reach of the most popular items and hence the size
	// of the biggest raw FastRandomHash clusters. Zero values fall back
	// to ZipfS/ZipfV.
	GlobalZipfS float64
	GlobalZipfV float64
	// Seed makes generation deterministic.
	Seed int64
}

// Scale returns a copy of c with user, item and community counts (and
// hence rating volume) scaled by f, preserving per-user statistics.
// Communities scale linearly with the populations so that users-per-leaf
// and items-per-leaf — the quantities that set neighbor similarities and
// cluster sizes — are scale invariant. Minimums keep tiny scales usable.
func (c Config) Scale(f float64) Config {
	if f <= 0 || f == 1 {
		return c
	}
	out := c
	out.Users = maxInt(200, int(math.Round(float64(c.Users)*f)))
	out.Items = maxInt(100, int(math.Round(float64(c.Items)*f)))
	out.Communities = maxInt(4, int(math.Round(float64(c.Communities)*f)))
	if float64(out.Items)/2 < c.MeanProfile {
		out.MeanProfile = float64(out.Items) / 2
	}
	out.Name = fmt.Sprintf("%s@%.3g", c.Name, f)
	return out
}

// Generate builds the dataset described by c.
func Generate(c Config) *dataset.Dataset {
	if c.Users <= 0 || c.Items <= 0 {
		panic("synth: config needs positive Users and Items")
	}
	if c.Communities <= 0 {
		c.Communities = 1
	}
	if c.MinProfile <= 0 {
		c.MinProfile = 1
	}
	rng := rand.New(rand.NewSource(c.Seed))

	// Assign items to leaf communities by hash, keeping each leaf's items
	// ordered by global rank so leaf-local draws inherit the global skew
	// (each leaf has its own locally-popular head items).
	leafItems := make([][]int32, c.Communities)
	for it := 0; it < c.Items; it++ {
		leaf := int(jenkins.Hash32(uint32(it), 0x5eed) % uint32(c.Communities))
		leafItems[leaf] = append(leafItems[leaf], int32(it))
	}
	gs, gv := c.GlobalZipfS, c.GlobalZipfV
	if gs == 0 {
		gs = c.ZipfS
	}
	if gv == 0 {
		gv = c.ZipfV
	}
	global := newZipfTable(c.Items, gs, gv)
	local := make([]*zipfTable, c.Communities)
	for leaf := range local {
		if len(leafItems[leaf]) > 0 {
			local[leaf] = newZipfTable(len(leafItems[leaf]), c.ZipfS, c.ZipfV)
		}
	}
	// drawLeaf samples one item from a leaf's local popularity law.
	drawLeaf := func(leaf int) (int32, bool) {
		if len(leafItems[leaf]) == 0 {
			return 0, false
		}
		return leafItems[leaf][local[leaf].Draw(rng)], true
	}

	// Lognormal profile sizes with mean ≈ MeanProfile:
	// E[lognormal(μ,σ)] = exp(μ+σ²/2) ⇒ μ = ln(mean) − σ²/2.
	sigma := c.ProfileSigma
	if sigma <= 0 {
		sigma = 0.5
	}
	mu := math.Log(c.MeanProfile) - sigma*sigma/2

	profiles := make([][]int32, c.Users)
	seen := make(map[int32]struct{}, int(c.MeanProfile)*2)
	for u := 0; u < c.Users; u++ {
		leaf := u % c.Communities
		parent := leaf / leavesPerParent
		size := int(math.Round(math.Exp(rng.NormFloat64()*sigma + mu)))
		if size < c.MinProfile {
			size = c.MinProfile
		}
		if max := c.Items - 1; size > max {
			size = max
		}
		clear(seen)
		p := make([]int32, 0, size)
		for attempts := 0; len(p) < size && attempts < 30*size; attempts++ {
			var it int32
			ok := true
			switch r := rng.Float64(); {
			case r < c.GlobalFrac:
				it = int32(global.Draw(rng))
			case r < c.GlobalFrac+c.ParentFrac:
				// A random sibling leaf within the parent region.
				first := parent * leavesPerParent
				span := minInt(leavesPerParent, c.Communities-first)
				it, ok = drawLeaf(first + rng.Intn(span))
			default:
				it, ok = drawLeaf(leaf)
			}
			if !ok {
				continue
			}
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			p = append(p, it)
		}
		profiles[u] = p
	}
	return dataset.New(c.Name, profiles, int32(c.Items))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
