package synth

import (
	"math"
	"testing"

	"c2knn/internal/similarity"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := ML1M().Scale(0.05)
	a := Generate(cfg)
	b := Generate(cfg)
	if a.NumUsers() != b.NumUsers() || a.NumRatings() != b.NumRatings() {
		t.Fatal("generation is not deterministic")
	}
	for u := range a.Profiles {
		if len(a.Profiles[u]) != len(b.Profiles[u]) {
			t.Fatal("profiles differ between identical runs")
		}
	}
}

func TestGenerateValid(t *testing.T) {
	for _, cfg := range Presets() {
		small := cfg.Scale(0.02)
		d := Generate(small)
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

// TestCalibration: each preset's scaled statistics stay close to the
// paper's per-user figures (Table I).
func TestCalibration(t *testing.T) {
	for _, cfg := range Presets() {
		cfg := cfg.Scale(0.1)
		d := Generate(cfg)
		st := d.ComputeStats()
		if st.Users != cfg.Users {
			t.Errorf("%s: users = %d, want %d", cfg.Name, st.Users, cfg.Users)
		}
		// Mean profile within 25% of target (clipping and dedup shift it).
		if math.Abs(st.AvgUser-cfg.MeanProfile)/cfg.MeanProfile > 0.25 {
			t.Errorf("%s: |P_u| = %.1f, want ≈ %.1f", cfg.Name, st.AvgUser, cfg.MeanProfile)
		}
		// No profile below the configured minimum... after dedup profiles
		// can end slightly short; tolerate 25% slack.
		for u, p := range d.Profiles {
			if len(p) < cfg.MinProfile*3/4 {
				t.Errorf("%s: user %d has only %d items", cfg.Name, u, len(p))
				break
			}
		}
	}
}

// TestCommunityStructure: users of the same leaf community must be far
// more similar on average than random pairs — the property that makes
// KNN quality a discriminating metric.
func TestCommunityStructure(t *testing.T) {
	cfg := ML10M().Scale(0.1)
	d := Generate(cfg)
	sim := similarity.NewJaccard(d)
	c := cfg.Communities
	rng := newTestRand()
	var intra, inter float64
	var nIntra, nInter int
	for u := 0; u < 400; u++ {
		if same := u + c; same < d.NumUsers() { // same leaf (u mod c equal)
			intra += sim.Sim(int32(u), int32(same))
			nIntra++
		}
		// Random pairs are overwhelmingly cross-leaf.
		v := rng.Intn(d.NumUsers())
		if v != u {
			inter += sim.Sim(int32(u), int32(v))
			nInter++
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra < 2*inter {
		t.Errorf("intra-community sim %.4f not ≫ random-pair sim %.4f", intra, inter)
	}
}

// TestDenseVsSparseSkew: the dense preset must produce a far bigger
// biggest-raw-cluster (relative to population) than the sparse preset —
// the property behind Fig. 8.
func TestDenseVsSparseSkew(t *testing.T) {
	dense := Generate(ML10M().Scale(0.04))
	sparse := Generate(AmazonMovies().Scale(0.04))
	densePop := dense.ItemPopularity()
	sparsePop := sparse.ItemPopularity()
	maxShare := func(pop []int, users int) float64 {
		m := 0
		for _, c := range pop {
			if c > m {
				m = c
			}
		}
		return float64(m) / float64(users)
	}
	dShare := maxShare(densePop, dense.NumUsers())
	sShare := maxShare(sparsePop, sparse.NumUsers())
	if dShare < 2*sShare {
		t.Errorf("dense top-item share %.3f not ≫ sparse %.3f", dShare, sShare)
	}
}

func TestScaleBounds(t *testing.T) {
	cfg := ML20M()
	s := cfg.Scale(0.001)
	if s.Users < 200 || s.Items < 100 || s.Communities < 4 {
		t.Errorf("scale floors violated: %+v", s)
	}
	if cfg.Scale(1).Name != cfg.Name {
		t.Error("Scale(1) should be identity")
	}
	if got := cfg.Scale(0.5).Users; got != cfg.Users/2 {
		t.Errorf("Scale(0.5).Users = %d, want %d", got, cfg.Users/2)
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"ml1M", "ml10M", "ml20M", "AM", "DBLP", "GW"} {
		cfg, ok := ByName(want)
		if !ok || cfg.Name != want {
			t.Errorf("ByName(%q) failed", want)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName should reject unknown names")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Generate with zero users should panic")
		}
	}()
	Generate(Config{Users: 0, Items: 10})
}

func TestZipfTable(t *testing.T) {
	z := newZipfTable(100, 1.0, 1)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	// Head ranks must dominate: count draws in top decile.
	counts := make([]int, 100)
	rng := newTestRand()
	for i := 0; i < 20000; i++ {
		counts[z.Draw(rng)]++
	}
	top, bottom := 0, 0
	for i := 0; i < 10; i++ {
		top += counts[i]
	}
	for i := 90; i < 100; i++ {
		bottom += counts[i]
	}
	if top <= 3*bottom {
		t.Errorf("zipf head %d draws vs tail %d — not skewed enough", top, bottom)
	}
}

func TestZipfTablePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty support should panic")
		}
	}()
	newZipfTable(0, 1, 1)
}
