package synth

// The six presets below are calibrated to Table I of the paper. Users,
// Items and the mean profile size |P_u| (and hence the rating volume
// Users × |P_u|) match the table; Zipf exponents and the
// global/parent/leaf draw mix are chosen so the dense MovieLens-like
// presets have the heavy popularity heads that make their raw
// FastRandomHash clusters exceed N=2000 (Fig. 8a), while the sparse
// presets stay below 1000 (Fig. 8b) and fragment under LSH.

// ML1M mirrors MovieLens1M: 6,038 users, 3,533 items, 575,281 ratings,
// |P_u| ≈ 95.3, density 2.7%.
func ML1M() Config {
	return Config{
		Name: "ml1M", Users: 6038, Items: 3533,
		MeanProfile: 95.3, ProfileSigma: 0.85, MinProfile: 20,
		Communities: 30, GlobalFrac: 0.3, ParentFrac: 0.25,
		ZipfS: 1.05, ZipfV: 8, GlobalZipfS: 0.9, GlobalZipfV: 14, Seed: 101,
	}
}

// ML10M mirrors MovieLens10M: 69,816 users, 10,472 items, 5,885,448
// ratings, |P_u| ≈ 84.3, density 0.8%.
func ML10M() Config {
	return Config{
		Name: "ml10M", Users: 69816, Items: 10472,
		MeanProfile: 84.3, ProfileSigma: 0.85, MinProfile: 20,
		Communities: 90, GlobalFrac: 0.3, ParentFrac: 0.25,
		ZipfS: 1.05, ZipfV: 8, GlobalZipfS: 0.9, GlobalZipfV: 14, Seed: 102,
	}
}

// ML20M mirrors MovieLens20M: 138,362 users, 22,884 items, 12,195,566
// ratings, |P_u| ≈ 88.1, density 0.39%.
func ML20M() Config {
	return Config{
		Name: "ml20M", Users: 138362, Items: 22884,
		MeanProfile: 88.1, ProfileSigma: 0.85, MinProfile: 20,
		Communities: 140, GlobalFrac: 0.3, ParentFrac: 0.25,
		ZipfS: 1.05, ZipfV: 8, GlobalZipfS: 0.9, GlobalZipfV: 14, Seed: 103,
	}
}

// AmazonMovies mirrors the AM dataset: 57,430 users, 171,356 items,
// 3,263,050 ratings, |P_u| ≈ 56.8, density 0.033%. The flatter exponent
// and huge universe make it the paper's representative sparse dataset.
func AmazonMovies() Config {
	return Config{
		Name: "AM", Users: 57430, Items: 171356,
		MeanProfile: 56.8, ProfileSigma: 0.8, MinProfile: 20,
		Communities: 360, GlobalFrac: 0.1, ParentFrac: 0.18,
		ZipfS: 1.0, ZipfV: 6, GlobalZipfS: 0.6, GlobalZipfV: 100, Seed: 104,
	}
}

// DBLP mirrors the co-authorship dataset: 18,889 users, 203,030 items,
// 692,752 ratings, |P_u| ≈ 36.7, density 0.018%.
func DBLP() Config {
	return Config{
		Name: "DBLP", Users: 18889, Items: 203030,
		MeanProfile: 36.7, ProfileSigma: 0.65, MinProfile: 20,
		Communities: 500, GlobalFrac: 0.1, ParentFrac: 0.15,
		ZipfS: 1.1, ZipfV: 4, GlobalZipfS: 0.55, GlobalZipfV: 120, Seed: 105,
	}
}

// Gowalla mirrors the GW location-based social network: 20,270 users,
// 135,540 items, 1,107,467 ratings, |P_u| ≈ 54.6, density 0.04%.
func Gowalla() Config {
	return Config{
		Name: "GW", Users: 20270, Items: 135540,
		MeanProfile: 54.6, ProfileSigma: 0.85, MinProfile: 20,
		Communities: 400, GlobalFrac: 0.12, ParentFrac: 0.15,
		ZipfS: 1.0, ZipfV: 6, GlobalZipfS: 0.6, GlobalZipfV: 100, Seed: 106,
	}
}

// Presets returns all six Table I configurations in the paper's order.
func Presets() []Config {
	return []Config{ML1M(), ML10M(), ML20M(), AmazonMovies(), DBLP(), Gowalla()}
}

// ByName returns the preset with the given Name (case-sensitive) and
// whether it exists.
func ByName(name string) (Config, bool) {
	for _, c := range Presets() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}
