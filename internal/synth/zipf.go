package synth

import (
	"math"
	"math/rand"
	"sort"
)

// zipfTable samples from a bounded Zipf-like distribution over ranks
// 0..n-1 with P(k) ∝ 1/(v+k)^s, by inverse-CDF lookup on a precomputed
// prefix-sum table. Unlike math/rand.Zipf it supports any s ≥ 0 (the
// sparse datasets need exponents below 1) and maps ranks through an
// arbitrary permutation supplied by the caller.
type zipfTable struct {
	cum []float64 // cum[k] = Σ_{j≤k} w_j
}

// newZipfTable builds the sampler for n ranks with exponent s and offset
// v (v ≥ 1 flattens the head).
func newZipfTable(n int, s, v float64) *zipfTable {
	if n <= 0 {
		panic("synth: zipf over empty support")
	}
	if v < 1 {
		v = 1
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(v+float64(k), -s)
		cum[k] = total
	}
	return &zipfTable{cum: cum}
}

// Draw samples a rank in [0, n).
func (z *zipfTable) Draw(rng *rand.Rand) int {
	u := rng.Float64() * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, u)
}

// N returns the support size.
func (z *zipfTable) N() int { return len(z.cum) }
