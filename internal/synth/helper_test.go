package synth

import "math/rand"

// newTestRand returns a deterministic RNG for tests.
func newTestRand() *rand.Rand {
	return rand.New(rand.NewSource(99))
}
