package recommend

import (
	"testing"

	"c2knn/internal/bruteforce"
	"c2knn/internal/dataset"
	"c2knn/internal/knng"
	"c2knn/internal/sets"
	"c2knn/internal/similarity"
	"c2knn/internal/synth"
)

func TestSplitPartitionsProfiles(t *testing.T) {
	d := synth.Generate(synth.ML1M().Scale(0.03))
	const folds = 5
	fs := Split(d, folds, 1)
	if len(fs) != folds {
		t.Fatalf("got %d folds", len(fs))
	}
	for u := 0; u < d.NumUsers(); u++ {
		orig := d.Profiles[u]
		var rebuilt []int32
		for fi, f := range fs {
			train := f.Train.Profiles[u]
			test := f.Test[u]
			if len(train)+len(test) != len(orig) {
				t.Fatalf("fold %d user %d: train %d + test %d != profile %d",
					fi, u, len(train), len(test), len(orig))
			}
			// Train and test are disjoint.
			for _, it := range test {
				if sets.Contains(train, it) {
					t.Fatalf("fold %d user %d: item %d in both train and test", fi, u, it)
				}
			}
			rebuilt = append(rebuilt, test...)
		}
		// Across folds, the test parts cover the profile exactly once
		// (users with ≥ folds items).
		if len(orig) >= folds {
			rebuilt = sets.Normalize(rebuilt)
			if !sets.Equal(rebuilt, orig) {
				t.Fatalf("user %d: test folds do not cover the profile", u)
			}
		}
	}
}

func TestSplitSmallProfilesStayInTrain(t *testing.T) {
	d := dataset.New("tiny", [][]int32{{1, 2}, {3, 4, 5, 6, 7, 8}}, 9)
	fs := Split(d, 5, 2)
	for _, f := range fs {
		if len(f.Test[0]) != 0 {
			t.Error("2-item profile should never be split into 5 folds")
		}
		if len(f.Train.Profiles[0]) != 2 {
			t.Error("small profile should remain fully in train")
		}
	}
}

func TestSplitPanicsOnOneFold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Split with 1 fold should panic")
		}
	}()
	Split(dataset.New("x", [][]int32{{1}}, 2), 1, 1)
}

func TestRecommendExcludesOwnItems(t *testing.T) {
	// u0 and u1 are similar; u1 has an extra item that should be
	// recommended to u0; u0's own items must not be.
	d := dataset.New("r", [][]int32{
		{0, 1, 2},
		{0, 1, 2, 3},
		{7, 8},
	}, 9)
	g := knng.New(3, 2)
	g.Insert(0, 1, 0.75)
	g.Insert(0, 2, 0.01)
	recs := Recommend(d, g, 0, 5)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	if recs[0] != 3 {
		t.Errorf("top recommendation = %d, want 3", recs[0])
	}
	for _, it := range recs {
		if sets.Contains(d.Profiles[0], it) {
			t.Errorf("recommended an item u0 already has: %d", it)
		}
	}
}

func TestRecommendScoresBySimilaritySum(t *testing.T) {
	d := dataset.New("s", [][]int32{
		{0},
		{1}, // neighbor A recommends 1
		{2}, // neighbor B recommends 2
		{2}, // neighbor C also recommends 2
	}, 3)
	g := knng.New(4, 3)
	g.Insert(0, 1, 0.5)
	g.Insert(0, 2, 0.3)
	g.Insert(0, 3, 0.3)
	recs := Recommend(d, g, 0, 2)
	// Item 2 scores 0.6 > item 1 at 0.5.
	if len(recs) != 2 || recs[0] != 2 || recs[1] != 1 {
		t.Errorf("recs = %v, want [2 1]", recs)
	}
}

func TestRecall(t *testing.T) {
	if got := Recall([]int32{1, 2, 3}, []int32{2, 3, 9}); got != 2.0/3.0 {
		t.Errorf("Recall = %v, want 2/3", got)
	}
	if got := Recall(nil, []int32{1}); got != 0 {
		t.Errorf("Recall with no recs = %v, want 0", got)
	}
	if got := Recall([]int32{1}, nil); got != -1 {
		t.Errorf("Recall with empty test = %v, want -1 (excluded)", got)
	}
}

// TestEndToEndRecallBeatsRandom: a KNN-graph recommender must beat a
// random-graph recommender on clustered data.
func TestEndToEndRecallBeatsRandom(t *testing.T) {
	d := synth.Generate(synth.ML1M().Scale(0.05))
	folds := Split(d, 5, 3)
	f := folds[0]
	raw := similarity.NewJaccard(f.Train)
	exact := bruteforce.Build(f.Train.NumUsers(), 10, raw, 2)
	random := knng.New(f.Train.NumUsers(), 10)
	knng.RandomInit(random, raw, 4)
	exactRecall := EvalRecall(f, exact, 20, 2)
	randomRecall := EvalRecall(f, random, 20, 2)
	if exactRecall <= randomRecall {
		t.Errorf("exact-graph recall %.4f not better than random-graph %.4f",
			exactRecall, randomRecall)
	}
	if exactRecall <= 0 {
		t.Error("exact-graph recall is zero — recommender broken")
	}
}

func TestEvalRecallDeterministicAcrossWorkers(t *testing.T) {
	d := synth.Generate(synth.ML1M().Scale(0.03))
	f := Split(d, 4, 5)[0]
	raw := similarity.NewJaccard(f.Train)
	g := bruteforce.Build(f.Train.NumUsers(), 5, raw, 2)
	r1 := EvalRecall(f, g, 10, 1)
	r4 := EvalRecall(f, g, 10, 4)
	// Per-worker partial sums reassociate float additions; allow ULP-level
	// drift but nothing structural.
	if diff := r1 - r4; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("recall depends on worker count: %v vs %v", r1, r4)
	}
}
