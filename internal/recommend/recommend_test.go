package recommend

import (
	"math/rand"
	"testing"

	"c2knn/internal/bruteforce"
	"c2knn/internal/dataset"
	"c2knn/internal/knng"
	"c2knn/internal/sets"
	"c2knn/internal/similarity"
	"c2knn/internal/synth"
)

func TestSplitPartitionsProfiles(t *testing.T) {
	d := synth.Generate(synth.ML1M().Scale(0.03))
	const folds = 5
	fs := Split(d, folds, 1)
	if len(fs) != folds {
		t.Fatalf("got %d folds", len(fs))
	}
	for u := 0; u < d.NumUsers(); u++ {
		orig := d.Profiles[u]
		var rebuilt []int32
		for fi, f := range fs {
			train := f.Train.Profiles[u]
			test := f.Test[u]
			if len(train)+len(test) != len(orig) {
				t.Fatalf("fold %d user %d: train %d + test %d != profile %d",
					fi, u, len(train), len(test), len(orig))
			}
			// Train and test are disjoint.
			for _, it := range test {
				if sets.Contains(train, it) {
					t.Fatalf("fold %d user %d: item %d in both train and test", fi, u, it)
				}
			}
			rebuilt = append(rebuilt, test...)
		}
		// Across folds, the test parts cover the profile exactly once
		// (users with ≥ folds items).
		if len(orig) >= folds {
			rebuilt = sets.Normalize(rebuilt)
			if !sets.Equal(rebuilt, orig) {
				t.Fatalf("user %d: test folds do not cover the profile", u)
			}
		}
	}
}

func TestSplitSmallProfilesStayInTrain(t *testing.T) {
	d := dataset.New("tiny", [][]int32{{1, 2}, {3, 4, 5, 6, 7, 8}}, 9)
	fs := Split(d, 5, 2)
	for _, f := range fs {
		if len(f.Test[0]) != 0 {
			t.Error("2-item profile should never be split into 5 folds")
		}
		if len(f.Train.Profiles[0]) != 2 {
			t.Error("small profile should remain fully in train")
		}
	}
}

func TestSplitPanicsOnOneFold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Split with 1 fold should panic")
		}
	}()
	Split(dataset.New("x", [][]int32{{1}}, 2), 1, 1)
}

func TestRecommendExcludesOwnItems(t *testing.T) {
	// u0 and u1 are similar; u1 has an extra item that should be
	// recommended to u0; u0's own items must not be.
	d := dataset.New("r", [][]int32{
		{0, 1, 2},
		{0, 1, 2, 3},
		{7, 8},
	}, 9)
	g := knng.New(3, 2)
	g.Insert(0, 1, 0.75)
	g.Insert(0, 2, 0.01)
	recs := Recommend(d, g, 0, 5)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	if recs[0] != 3 {
		t.Errorf("top recommendation = %d, want 3", recs[0])
	}
	for _, it := range recs {
		if sets.Contains(d.Profiles[0], it) {
			t.Errorf("recommended an item u0 already has: %d", it)
		}
	}
}

func TestRecommendScoresBySimilaritySum(t *testing.T) {
	d := dataset.New("s", [][]int32{
		{0},
		{1}, // neighbor A recommends 1
		{2}, // neighbor B recommends 2
		{2}, // neighbor C also recommends 2
	}, 3)
	g := knng.New(4, 3)
	g.Insert(0, 1, 0.5)
	g.Insert(0, 2, 0.3)
	g.Insert(0, 3, 0.3)
	recs := Recommend(d, g, 0, 2)
	// Item 2 scores 0.6 > item 1 at 0.5.
	if len(recs) != 2 || recs[0] != 2 || recs[1] != 1 {
		t.Errorf("recs = %v, want [2 1]", recs)
	}
}

func TestRecall(t *testing.T) {
	if got := Recall([]int32{1, 2, 3}, []int32{2, 3, 9}); got != 2.0/3.0 {
		t.Errorf("Recall = %v, want 2/3", got)
	}
	if got := Recall(nil, []int32{1}); got != 0 {
		t.Errorf("Recall with no recs = %v, want 0", got)
	}
	if got := Recall([]int32{1}, nil); got != -1 {
		t.Errorf("Recall with empty test = %v, want -1 (excluded)", got)
	}
}

// TestEndToEndRecallBeatsRandom: a KNN-graph recommender must beat a
// random-graph recommender on clustered data.
func TestEndToEndRecallBeatsRandom(t *testing.T) {
	d := synth.Generate(synth.ML1M().Scale(0.05))
	folds := Split(d, 5, 3)
	f := folds[0]
	raw := similarity.NewJaccard(f.Train)
	exact := bruteforce.Build(f.Train.NumUsers(), 10, raw, 2)
	random := knng.New(f.Train.NumUsers(), 10)
	knng.RandomInit(random, raw, 4)
	exactRecall := EvalRecall(f, exact, 20, 2)
	randomRecall := EvalRecall(f, random, 20, 2)
	if exactRecall <= randomRecall {
		t.Errorf("exact-graph recall %.4f not better than random-graph %.4f",
			exactRecall, randomRecall)
	}
	if exactRecall <= 0 {
		t.Error("exact-graph recall is zero — recommender broken")
	}
}

// frozenTestGraph builds a random graph whose similarities are exact
// float32 values (multiples of 1/256), so the float64 map path and the
// float32 frozen path must agree bit-for-bit.
func frozenTestGraph(n, k int, seed int64) *knng.Graph {
	g := knng.New(n, k)
	rng := rand.New(rand.NewSource(seed))
	knng.FillRandom(g.Lists, rng, func(u, v int) float64 {
		return float64(rng.Intn(256)) / 256
	})
	return g
}

func TestScorerMatchesMapRecommend(t *testing.T) {
	d := synth.Generate(synth.ML1M().Scale(0.03))
	g := frozenTestGraph(d.NumUsers(), 8, 11)
	f := g.Freeze()
	sc := NewScorer(d.NumItems)
	var rec []int32
	for _, n := range []int{1, 5, 30} {
		for u := 0; u < d.NumUsers(); u++ {
			want := Recommend(d, g, int32(u), n)
			rec = sc.Recommend(d, f, int32(u), n, rec[:0])
			if len(rec) != len(want) {
				t.Fatalf("n=%d user %d: frozen returned %d items, map path %d", n, u, len(rec), len(want))
			}
			for i := range want {
				if rec[i] != want[i] {
					t.Fatalf("n=%d user %d item %d: frozen %d, map path %d (frozen %v, map %v)",
						n, u, i, rec[i], want[i], rec, want)
				}
			}
		}
	}
}

func TestScorerScratchCleanBetweenQueries(t *testing.T) {
	// Two consecutive queries for the same user through one Scorer must
	// be identical: leftover scores would double-count.
	d := synth.Generate(synth.ML1M().Scale(0.03))
	g := frozenTestGraph(d.NumUsers(), 8, 12)
	f := g.Freeze()
	sc := NewScorer(d.NumItems)
	for u := 0; u < 50; u++ {
		first := append([]int32(nil), sc.Recommend(d, f, int32(u), 20, nil)...)
		second := sc.Recommend(d, f, int32(u), 20, nil)
		if len(first) != len(second) {
			t.Fatalf("user %d: repeat query returned %d items, first %d", u, len(second), len(first))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("user %d: repeat query diverged at %d: %v vs %v", u, i, first, second)
			}
		}
	}
}

func TestScorerGrowsToLargerUniverse(t *testing.T) {
	small := dataset.New("small", [][]int32{{0}, {1}}, 2)
	sc := NewScorer(small.NumItems)
	big := dataset.New("big", [][]int32{{0, 90}, {91, 95}}, 100)
	g := knng.New(2, 1)
	g.Insert(0, 1, 0.5)
	rec := sc.Recommend(big, g.Freeze(), 0, 5, nil)
	if len(rec) != 2 || rec[0] != 91 || rec[1] != 95 {
		t.Errorf("recs after growth = %v, want [91 95]", rec)
	}
}

// TestScorerRecommendBatchMatchesSerial: the batch path is the serial
// path with amortized scratch — results must be identical per user, and
// ids outside the population must yield nil, not panic.
func TestScorerRecommendBatchMatchesSerial(t *testing.T) {
	d := synth.Generate(synth.ML1M().Scale(0.03))
	g := frozenTestGraph(d.NumUsers(), 8, 14)
	f := g.Freeze()
	users := []int32{0, 3, 3, 9, -5, int32(d.NumUsers()), 1}
	sc := NewScorer(d.NumItems)
	got := sc.RecommendBatch(d, f, users, 12, nil)
	if len(got) != len(users) {
		t.Fatalf("batch returned %d results for %d users", len(got), len(users))
	}
	ref := NewScorer(d.NumItems)
	for i, u := range users {
		if u < 0 || int(u) >= d.NumUsers() {
			if got[i] != nil {
				t.Fatalf("out-of-range user %d got %v, want nil", u, got[i])
			}
			continue
		}
		want := ref.Recommend(d, f, u, 12, nil)
		if len(got[i]) != len(want) {
			t.Fatalf("user %d: batch %d items, serial %d", u, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("user %d item %d: batch %d, serial %d", u, j, got[i][j], want[j])
			}
		}
	}
}

func TestEvalRecallFrozenMatchesEvalRecall(t *testing.T) {
	d := synth.Generate(synth.ML1M().Scale(0.03))
	f := Split(d, 4, 6)[0]
	g := frozenTestGraph(f.Train.NumUsers(), 8, 13)
	if a, b := EvalRecall(f, g, 10, 2), EvalRecallFrozen(f, g.Freeze(), 10, 2); a != b {
		t.Errorf("EvalRecall %v != EvalRecallFrozen %v", a, b)
	}
}

func TestEvalRecallDeterministicAcrossWorkers(t *testing.T) {
	d := synth.Generate(synth.ML1M().Scale(0.03))
	f := Split(d, 4, 5)[0]
	raw := similarity.NewJaccard(f.Train)
	g := bruteforce.Build(f.Train.NumUsers(), 5, raw, 2)
	r1 := EvalRecall(f, g, 10, 1)
	r4 := EvalRecall(f, g, 10, 4)
	// Per-worker partial sums reassociate float additions; allow ULP-level
	// drift but nothing structural.
	if diff := r1 - r4; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("recall depends on worker count: %v vs %v", r1, r4)
	}
}

// TestScorerRowMergeExclusion stresses the merge-based own-item
// exclusion of the row-batched scoring loop on adversarial overlap
// shapes: own empty, own a superset of the row, overlap only at the
// row's ends, and interleaved runs — each compared against the
// reference map path item by item.
func TestScorerRowMergeExclusion(t *testing.T) {
	profiles := [][]int32{
		0: {},                 // empty own profile: nothing excluded
		1: {0, 1, 2, 3, 4, 5}, // superset of neighbor rows
		2: {0, 9},             // overlap at both ends only
		3: {2, 4, 6},          // interleaved
		4: {1, 2, 3},          // the recommending neighbor
		5: {0, 3, 5, 7, 9},    // another neighbor, wider row
		6: {100, 101},         // disjoint high items
		7: {5},
	}
	d := dataset.New("merge", profiles, 128)
	g := knng.New(len(profiles), 3)
	for u := 0; u < 4; u++ {
		g.Lists[u].Insert(4, 0.9)
		g.Lists[u].Insert(5, 0.8)
		g.Lists[u].Insert(6, 0.7)
	}
	f := g.Freeze()
	sc := NewScorer(d.NumItems)
	var rec []int32
	for u := int32(0); u < 4; u++ {
		want := Recommend(d, g, u, 10)
		rec = sc.Recommend(d, f, u, 10, rec[:0])
		if len(rec) != len(want) {
			t.Fatalf("user %d: %d items vs %d (%v vs %v)", u, len(rec), len(want), rec, want)
		}
		for i := range want {
			if rec[i] != want[i] {
				t.Fatalf("user %d rank %d: %d vs %d", u, i, rec[i], want[i])
			}
		}
	}
}
