// Package recommend implements the item-recommendation application of
// §V-B: a user-based collaborative filtering procedure on top of a KNN
// graph, evaluated by recall under 5-fold cross-validation. It is how the
// paper demonstrates that C²'s approximate graphs can replace exact ones
// "with almost no discernible impact".
package recommend

import (
	"cmp"
	"math/rand"
	"slices"
	"sync"

	"c2knn/internal/dataset"
	"c2knn/internal/knng"
	"c2knn/internal/sets"
)

// Fold is one train/test split of a cross-validation: Train is a dataset
// with the test items removed from each profile, Test[u] holds user u's
// held-out items (sorted).
type Fold struct {
	Train *dataset.Dataset
	Test  [][]int32
}

// Split produces a k-fold cross-validation of d: each user's profile is
// shuffled once and partitioned into folds; fold i holds out part i.
// Users with fewer items than folds keep everything in Train (their Test
// is empty) so training profiles never vanish.
func Split(d *dataset.Dataset, folds int, seed int64) []Fold {
	if folds < 2 {
		panic("recommend: need at least 2 folds")
	}
	rng := rand.New(rand.NewSource(seed))
	n := d.NumUsers()
	// One shuffled copy per user, partitioned identically across folds.
	shuffled := make([][]int32, n)
	for u, p := range d.Profiles {
		cp := make([]int32, len(p))
		copy(cp, p)
		rng.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
		shuffled[u] = cp
	}
	out := make([]Fold, folds)
	for f := 0; f < folds; f++ {
		train := make([][]int32, n)
		test := make([][]int32, n)
		for u, cp := range shuffled {
			if len(cp) < folds {
				train[u] = append([]int32(nil), cp...)
				continue
			}
			lo := len(cp) * f / folds
			hi := len(cp) * (f + 1) / folds
			test[u] = append([]int32(nil), cp[lo:hi]...)
			train[u] = append(append([]int32(nil), cp[:lo]...), cp[hi:]...)
		}
		for u := range test {
			test[u] = sets.Normalize(test[u])
		}
		out[f] = Fold{
			Train: dataset.New(d.Name, train, d.NumItems),
			Test:  test,
		}
	}
	return out
}

// scored pairs an item with its aggregated neighbor score.
type scored struct {
	item  int32
	score float64
}

// rankScored orders ranked by decreasing score, ties by ascending item
// id (deterministic), truncates to n, and extracts the item ids into
// dst. Shared by the map-based reference path and the frozen scorer.
func rankScored(ranked []scored, n int, dst []int32) []int32 {
	slices.SortFunc(ranked, func(a, b scored) int {
		if a.score != b.score {
			if a.score > b.score {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.item, b.item)
	})
	if len(ranked) > n {
		ranked = ranked[:n]
	}
	for _, r := range ranked {
		dst = append(dst, r.item)
	}
	return dst
}

// Recommend returns up to n items for user u: every item appearing in a
// neighbor's training profile but not in u's own, scored by the sum of
// the recommending neighbors' similarities (classic user-based CF).
// This is the build-structure reference path — it walks the mutable
// graph and allocates a scoring map per call. Serving paths should
// freeze the graph and recommend through a Scorer (or c2knn.Index),
// which touches no maps and reuses all scratch.
func Recommend(train *dataset.Dataset, g *knng.Graph, u int32, n int) []int32 {
	scores := make(map[int32]float64)
	own := train.Profiles[u]
	for _, nb := range g.Lists[u].H {
		if nb.Sim <= 0 {
			continue
		}
		for _, it := range train.Profiles[nb.ID] {
			if sets.Contains(own, it) {
				continue
			}
			scores[it] += nb.Sim
		}
	}
	ranked := make([]scored, 0, len(scores))
	for it, s := range scores {
		ranked = append(ranked, scored{it, s})
	}
	return rankScored(ranked, n, make([]int32, 0, min(n, len(ranked))))
}

// Scorer is the reusable per-worker scratch of the frozen serving path:
// a dense per-item score accumulator plus the touched-item and ranking
// buffers. After the first few queries a Scorer stops allocating
// (beyond the caller's result slice). A Scorer is not safe for
// concurrent use; give each goroutine its own (c2knn.Index pools them).
type Scorer struct {
	scores  []float64 // dense accumulator, indexed by item id
	touched []int32   // items with non-zero score this query
	ranked  []scored
}

// NewScorer returns a Scorer for datasets with up to numItems items;
// it grows transparently if a query meets a larger universe.
func NewScorer(numItems int32) *Scorer {
	return &Scorer{scores: make([]float64, numItems)}
}

// Recommend is the frozen-graph scoring path: identical semantics to
// the package-level Recommend (score = sum of recommending neighbors'
// similarities, u's own items excluded, ties by ascending item id) but
// reading the CSR adjacency and accumulating into the dense scratch —
// no per-query map, no per-query allocation when dst is recycled. The
// item ids are appended to dst; the extended slice is returned.
//
// Neighbor profiles are scored as whole rows: each row is merged
// against u's own (both sorted, duplicate-free) in one linear pass, the
// row-batched counterpart of the per-item binary search the reference
// path runs. Items are visited in the same order either way, so the
// accumulated scores — and the final ranking — are bit-identical.
func (s *Scorer) Recommend(train *dataset.Dataset, g *knng.Frozen, u int32, n int, dst []int32) []int32 {
	if int(train.NumItems) > len(s.scores) {
		s.scores = make([]float64, train.NumItems)
	}
	own := train.Profiles[u]
	ids, sims := g.Neighbors(u)
	for i, v := range ids {
		sim := float64(sims[i])
		if sim <= 0 {
			continue
		}
		s.accumulateRow(own, train.Profiles[v], sim)
	}
	s.ranked = s.ranked[:0]
	for _, it := range s.touched {
		s.ranked = append(s.ranked, scored{it, s.scores[it]})
		s.scores[it] = 0 // reset as we drain: scratch is clean for the next query
	}
	s.touched = s.touched[:0]
	return rankScored(s.ranked, n, dst)
}

// Source is the read surface RecommendSource scores over: a graph-and-
// profiles view that may be merged from several storages (the delta
// overlay's base + patch view is the motivating implementation; a plain
// dataset + frozen pair satisfies it trivially). Neighbors must return
// rows sorted by decreasing similarity, Profile a sorted duplicate-free
// item set, and NumItems a bound on every item id either returns.
type Source interface {
	NumItems() int32
	Profile(u int32) []int32
	Neighbors(u int32) ([]int32, []float32)
}

// RecommendSource is Recommend over a Source instead of a concrete
// dataset + frozen pair — semantics (scores, exclusion, tie order) are
// identical; only the storage the rows and profiles come from differs.
// The serving path for upsert-enabled indexes: neighbor rows and
// profiles resolve through the merged view, so recommendations reflect
// absorbed upserts immediately. Appends to dst and returns the extended
// slice; allocation-free when dst is recycled.
func (s *Scorer) RecommendSource(src Source, u int32, n int, dst []int32) []int32 {
	if int(src.NumItems()) > len(s.scores) {
		s.scores = make([]float64, src.NumItems())
	}
	own := src.Profile(u)
	ids, sims := src.Neighbors(u)
	for i, v := range ids {
		sim := float64(sims[i])
		if sim <= 0 {
			continue
		}
		s.accumulateRow(own, src.Profile(v), sim)
	}
	s.ranked = s.ranked[:0]
	for _, it := range s.touched {
		s.ranked = append(s.ranked, scored{it, s.scores[it]})
		s.scores[it] = 0
	}
	s.touched = s.touched[:0]
	return rankScored(s.ranked, n, dst)
}

// accumulateRow adds sim to the dense score of every item of row not
// present in own. Both slices are sorted and duplicate-free, so the
// exclusion runs as a single merge — own's cursor only ever advances —
// instead of one binary search per item.
func (s *Scorer) accumulateRow(own, row []int32, sim float64) {
	oi := 0
	for _, it := range row {
		for oi < len(own) && own[oi] < it {
			oi++
		}
		if oi < len(own) && own[oi] == it {
			continue
		}
		// Accumulated similarities are strictly positive, so a zero
		// score means "first touch" — no separate seen-set needed.
		if s.scores[it] == 0 {
			s.touched = append(s.touched, it)
		}
		s.scores[it] += sim
	}
}

// RecommendBatch recommends n items to every user of users, reusing
// the scorer's dense scratch across the whole batch — the serving
// batch path: one Scorer checkout amortizes over the batch instead of
// hitting the pool once per user. Each result is appended to out as its
// own freshly allocated slice (results outlive the scorer); users whose
// id falls outside the training population yield a nil entry rather
// than a panic, mirroring the request-facing tolerance of c2knn.Index.
// The extended out is returned.
func (s *Scorer) RecommendBatch(train *dataset.Dataset, g *knng.Frozen, users []int32, n int, out [][]int32) [][]int32 {
	for _, u := range users {
		if u < 0 || int(u) >= train.NumUsers() {
			out = append(out, nil)
			continue
		}
		out = append(out, s.Recommend(train, g, u, n, nil))
	}
	return out
}

// Recall returns |rec ∩ test| / |test|, or -1 when test is empty (the
// user does not participate in the average).
func Recall(rec, test []int32) float64 {
	if len(test) == 0 {
		return -1
	}
	hits := 0
	for _, it := range rec {
		if sets.Contains(test, it) {
			hits++
		}
	}
	return float64(hits) / float64(len(test))
}

// EvalRecall recommends n items to every user of the fold and returns the
// mean recall over users with a non-empty test set. The graph is frozen
// once and evaluation runs on the CSR serving path; pass an existing
// Frozen to EvalRecallFrozen to skip the flattening.
func EvalRecall(f Fold, g *knng.Graph, n, workers int) float64 {
	return EvalRecallFrozen(f, g.Freeze(), n, workers)
}

// EvalRecallFrozen is EvalRecall over a frozen graph: each worker owns a
// Scorer and a recycled result slice, so the whole evaluation performs a
// constant number of allocations regardless of user count.
func EvalRecallFrozen(f Fold, g *knng.Frozen, n, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	users := f.Train.NumUsers()
	partial := make([]float64, workers)
	counts := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := NewScorer(f.Train.NumItems)
			rec := make([]int32, 0, n)
			for u := w; u < users; u += workers {
				if len(f.Test[u]) == 0 {
					continue
				}
				rec = sc.Recommend(f.Train, g, int32(u), n, rec[:0])
				if r := Recall(rec, f.Test[u]); r >= 0 {
					partial[w] += r
					counts[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total, cnt := 0.0, 0
	for w := range partial {
		total += partial[w]
		cnt += counts[w]
	}
	if cnt == 0 {
		return 0
	}
	return total / float64(cnt)
}
