// Package recommend implements the item-recommendation application of
// §V-B: a user-based collaborative filtering procedure on top of a KNN
// graph, evaluated by recall under 5-fold cross-validation. It is how the
// paper demonstrates that C²'s approximate graphs can replace exact ones
// "with almost no discernible impact".
package recommend

import (
	"math/rand"
	"sort"
	"sync"

	"c2knn/internal/dataset"
	"c2knn/internal/knng"
	"c2knn/internal/sets"
)

// Fold is one train/test split of a cross-validation: Train is a dataset
// with the test items removed from each profile, Test[u] holds user u's
// held-out items (sorted).
type Fold struct {
	Train *dataset.Dataset
	Test  [][]int32
}

// Split produces a k-fold cross-validation of d: each user's profile is
// shuffled once and partitioned into folds; fold i holds out part i.
// Users with fewer items than folds keep everything in Train (their Test
// is empty) so training profiles never vanish.
func Split(d *dataset.Dataset, folds int, seed int64) []Fold {
	if folds < 2 {
		panic("recommend: need at least 2 folds")
	}
	rng := rand.New(rand.NewSource(seed))
	n := d.NumUsers()
	// One shuffled copy per user, partitioned identically across folds.
	shuffled := make([][]int32, n)
	for u, p := range d.Profiles {
		cp := make([]int32, len(p))
		copy(cp, p)
		rng.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
		shuffled[u] = cp
	}
	out := make([]Fold, folds)
	for f := 0; f < folds; f++ {
		train := make([][]int32, n)
		test := make([][]int32, n)
		for u, cp := range shuffled {
			if len(cp) < folds {
				train[u] = append([]int32(nil), cp...)
				continue
			}
			lo := len(cp) * f / folds
			hi := len(cp) * (f + 1) / folds
			test[u] = append([]int32(nil), cp[lo:hi]...)
			train[u] = append(append([]int32(nil), cp[:lo]...), cp[hi:]...)
		}
		for u := range test {
			test[u] = sets.Normalize(test[u])
		}
		out[f] = Fold{
			Train: dataset.New(d.Name, train, d.NumItems),
			Test:  test,
		}
	}
	return out
}

// scored pairs an item with its aggregated neighbor score.
type scored struct {
	item  int32
	score float64
}

// Recommend returns up to n items for user u: every item appearing in a
// neighbor's training profile but not in u's own, scored by the sum of
// the recommending neighbors' similarities (classic user-based CF).
func Recommend(train *dataset.Dataset, g *knng.Graph, u int32, n int) []int32 {
	scores := make(map[int32]float64)
	own := train.Profiles[u]
	for _, nb := range g.Lists[u].H {
		if nb.Sim <= 0 {
			continue
		}
		for _, it := range train.Profiles[nb.ID] {
			if sets.Contains(own, it) {
				continue
			}
			scores[it] += nb.Sim
		}
	}
	ranked := make([]scored, 0, len(scores))
	for it, s := range scores {
		ranked = append(ranked, scored{it, s})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].item < ranked[j].item // deterministic ties
	})
	if len(ranked) > n {
		ranked = ranked[:n]
	}
	out := make([]int32, len(ranked))
	for i, r := range ranked {
		out[i] = r.item
	}
	return out
}

// Recall returns |rec ∩ test| / |test|, or -1 when test is empty (the
// user does not participate in the average).
func Recall(rec, test []int32) float64 {
	if len(test) == 0 {
		return -1
	}
	hits := 0
	for _, it := range rec {
		if sets.Contains(test, it) {
			hits++
		}
	}
	return float64(hits) / float64(len(test))
}

// EvalRecall recommends n items to every user of the fold and returns the
// mean recall over users with a non-empty test set.
func EvalRecall(f Fold, g *knng.Graph, n, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	users := f.Train.NumUsers()
	partial := make([]float64, workers)
	counts := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for u := w; u < users; u += workers {
				if len(f.Test[u]) == 0 {
					continue
				}
				rec := Recommend(f.Train, g, int32(u), n)
				if r := Recall(rec, f.Test[u]); r >= 0 {
					partial[w] += r
					counts[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total, cnt := 0.0, 0
	for w := range partial {
		total += partial[w]
		cnt += counts[w]
	}
	if cnt == 0 {
		return 0
	}
	return total / float64(cnt)
}
