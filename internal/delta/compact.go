package delta

import (
	"fmt"
	"time"

	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/knng"
)

// Compacted is the output of one compaction: fresh, fully validated
// build artifacts covering base + delta, plus the sequence marker they
// absorb. The caller persists them (the snapshot writer accepts them
// verbatim), loads the result, and hands the new artifacts back through
// Rebase.
type Compacted struct {
	Graph      *knng.Frozen
	Train      *dataset.Dataset
	GoldFinger *goldfinger.Set
	// Marker is the highest upsert sequence number the artifacts
	// absorb; pass it to Rebase so later upserts survive the swap.
	Marker uint64
	// Absorbed is the number of upserts folded in (relative to the
	// previous compaction).
	Absorbed int
}

// Compact folds the overlay's current view into fresh build artifacts.
// It runs concurrently with upserts and readers — the fold works off
// one immutable view, and upserts landing during the fold simply carry
// sequence numbers above the returned marker, surviving the subsequent
// Rebase. The artifacts are validated with the same checks the builder
// and the snapshot decoder apply; an inconsistent overlay returns an
// error rather than a writable-but-wrong snapshot.
func (o *Overlay) Compact() (*Compacted, error) {
	v := o.view.Load()
	n := int(v.numUsers)
	words := o.words

	profiles := make([][]int32, n)
	sigs := make([]uint64, n*words)
	ones := make([]int32, n)
	edges := 0
	for u := 0; u < n; u++ {
		id := int32(u)
		p := v.Profile(id)
		if len(p) == 0 {
			return nil, fmt.Errorf("delta: user %d has no profile; overlay is inconsistent", u)
		}
		profiles[u] = p
		sw, so := v.signature(id)
		copy(sigs[u*words:(u+1)*words], sw)
		ones[u] = so
		ids, _ := v.Neighbors(id)
		edges += len(ids)
	}

	// Profiles alias base storage (possibly read-only mapped memory), so
	// the dataset is assembled directly instead of through dataset.New,
	// which normalizes in place. Validate reads only.
	train := &dataset.Dataset{Name: v.train.Name, NumItems: v.numItems, Profiles: profiles}
	if err := train.Validate(); err != nil {
		return nil, fmt.Errorf("delta: compacted dataset invalid: %w", err)
	}
	gf, err := goldfinger.FromParts(o.bits, n, sigs, ones)
	if err != nil {
		return nil, fmt.Errorf("delta: compacted fingerprints invalid: %w", err)
	}

	offsets := make([]int64, n+1)
	ids := make([]int32, 0, edges)
	sims := make([]float32, 0, edges)
	for u := 0; u < n; u++ {
		rowIDs, rowSims := v.Neighbors(int32(u))
		ids = append(ids, rowIDs...)
		sims = append(sims, rowSims...)
		offsets[u+1] = int64(len(ids))
	}
	graph, err := knng.NewFrozen(o.cfg.K, offsets, ids, sims)
	if err != nil {
		return nil, fmt.Errorf("delta: compacted graph invalid: %w", err)
	}

	o.mu.Lock()
	absorbed := int(v.seq - o.marker)
	o.mu.Unlock()
	return &Compacted{Graph: graph, Train: train, GoldFinger: gf, Marker: v.seq, Absorbed: absorbed}, nil
}

// Rebase re-anchors the overlay on freshly compacted base artifacts
// (typically a just-loaded snapshot written from Compact's output):
// every patch with a sequence number at or below marker is dropped —
// the new base contains it — and later patches survive verbatim. Delta
// users the new base absorbed become base users under their existing
// ids; survivors keep theirs, so ids are stable across any number of
// compactions. Readers switch atomically: a view loaded before Rebase
// keeps serving the old base consistently until dropped.
//
// The overlay must be detached from the retiring index once its new
// serving index is installed; a reader that resolves the retired index
// afterwards falls back to plain base reads (memory-safe, at most one
// request stale).
func (o *Overlay) Rebase(graph *knng.Frozen, train *dataset.Dataset, gf *goldfinger.Set, marker uint64) error {
	if graph == nil || train == nil || gf == nil {
		return fmt.Errorf("delta: rebase needs a graph, a dataset and fingerprints")
	}
	if gf.Bits() != o.bits {
		return fmt.Errorf("delta: rebase fingerprints are %d bits, overlay uses %d", gf.Bits(), o.bits)
	}
	if graph.K != o.cfg.K {
		return fmt.Errorf("delta: rebase graph has k=%d, overlay uses k=%d", graph.K, o.cfg.K)
	}

	o.mu.Lock()
	defer o.mu.Unlock()
	cur := o.view.Load()
	newBaseN := int32(train.NumUsers())
	if newBaseN < cur.baseN || newBaseN > cur.numUsers {
		return fmt.Errorf("delta: rebase base covers %d users, overlay spans [%d, %d]",
			newBaseN, cur.baseN, cur.numUsers)
	}
	if graph.NumUsers() != int(newBaseN) || gf.NumUsers() != int(newBaseN) {
		return fmt.Errorf("delta: rebase artifacts disagree: %d graph users, %d profiles, %d fingerprints",
			graph.NumUsers(), newBaseN, gf.NumUsers())
	}

	rows := make(map[int32]rowEntry)
	for k, e := range cur.rows {
		if e.seq > marker {
			rows[k] = e
		}
	}
	profiles := make(map[int32]profEntry)
	for k, e := range cur.profiles {
		if e.seq > marker {
			profiles[k] = e
		}
	}
	sigs := make(map[int32]sigEntry)
	for k, e := range cur.sigs {
		if e.seq > marker {
			sigs[k] = e
		}
	}
	// Every surviving delta user must have been created after the
	// capture (ids are assigned contiguously, so absorbed ids are
	// exactly [cur.baseN, newBaseN)); its profile entry therefore
	// survived with it.
	for id := newBaseN; id < cur.numUsers; id++ {
		if _, ok := profiles[id]; !ok {
			return fmt.Errorf("delta: rebase would orphan delta user %d", id)
		}
	}

	next := &View{
		graph:    graph,
		train:    train,
		gf:       gf,
		baseN:    newBaseN,
		numUsers: cur.numUsers,
		numItems: max(train.NumItems, cur.numItems),
		seq:      cur.seq,
		rows:     rows,
		profiles: profiles,
		sigs:     sigs,
	}

	// Writer-side re-filing: absorbed delta users join the base buckets
	// under their current profiles; the delta coarse maps are rebuilt
	// from the survivors (they are small by construction — compaction is
	// what keeps them small).
	for fn := 0; fn < o.cfg.FRH.T; fn++ {
		o.deltaCoarse[fn] = make(map[uint32][]int32)
	}
	for id := cur.baseN; id < cur.numUsers; id++ {
		p := next.Profile(id)
		for fn := 0; fn < o.cfg.FRH.T; fn++ {
			idx, ok := o.hasher.UserHashAny(fn, p)
			if !ok {
				continue
			}
			if id < newBaseN {
				o.buckets[fn][idx] = append(o.buckets[fn][idx], id)
			} else {
				o.deltaCoarse[fn][idx] = append(o.deltaCoarse[fn][idx], id)
			}
		}
	}

	o.view.Store(next)
	if marker > o.marker {
		o.marker = marker
	}
	o.compactions++
	if o.seq <= o.marker {
		o.pending = time.Time{}
	} else {
		// Some upserts raced in during the fold; restart the age clock at
		// the swap rather than tracking each arrival.
		o.pending = o.cfg.now()
	}
	return nil
}
