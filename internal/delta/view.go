package delta

import (
	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/knng"
)

// View is one immutable published state of an overlay: the base
// artifacts plus the patch maps of every user an upsert has touched.
// All methods are read-only, lock-free and allocation-free, and a View
// stays internally consistent forever — readers resolve one View per
// request and see a single point in the upsert sequence, whatever
// writers do meanwhile.
type View struct {
	graph *knng.Frozen
	train *dataset.Dataset
	gf    *goldfinger.Set

	baseN    int32 // users covered by the base snapshot
	numUsers int32 // baseN + delta users
	numItems int32 // item-universe bound across base and delta profiles
	seq      uint64

	// rows holds materialized absolute neighbor rows for every patched
	// base user and every delta user; profiles and sigs likewise. An
	// entry's content supersedes the base arrays wholesale (it is a full
	// row, not a diff), which is what makes compaction pruning safe: a
	// stale entry is always a superset-in-time of the base content.
	rows     map[int32]rowEntry
	profiles map[int32]profEntry
	sigs     map[int32]sigEntry
}

type rowEntry struct {
	ids  []int32
	sims []float32
	seq  uint64
}

type profEntry struct {
	items []int32
	seq   uint64
}

type sigEntry struct {
	words []uint64
	ones  int32
	seq   uint64
}

// NumUsers returns the number of users served: base plus delta.
func (v *View) NumUsers() int { return int(v.numUsers) }

// BaseUsers returns the number of users the base snapshot covers.
func (v *View) BaseUsers() int { return int(v.baseN) }

// NumItems returns the item-universe bound across base and delta
// profiles (every item id is below it). It implements part of
// recommend.Source.
func (v *View) NumItems() int32 { return v.numItems }

// Seq returns the upsert sequence number this view reflects.
func (v *View) Seq() uint64 { return v.seq }

// Valid reports whether u is a served user id.
func (v *View) Valid(u int32) bool { return u >= 0 && u < v.numUsers }

// Neighbors returns u's merged neighbor row — the patched row when an
// upsert touched u, the base CSR row otherwise — sorted in the
// canonical (sim desc, id asc) order. Out-of-range users get empty
// views. Zero allocations; the slices alias view storage and must not
// be mutated.
func (v *View) Neighbors(u int32) ([]int32, []float32) {
	if !v.Valid(u) {
		return nil, nil
	}
	if e, ok := v.rows[u]; ok {
		return e.ids, e.sims
	}
	if u < v.baseN {
		return v.graph.Neighbors(u)
	}
	return nil, nil
}

// Profile returns u's merged training profile (sorted, duplicate-free).
// Out-of-range users get nil. Zero allocations.
func (v *View) Profile(u int32) []int32 {
	if !v.Valid(u) {
		return nil
	}
	if e, ok := v.profiles[u]; ok {
		return e.items
	}
	if u < v.baseN {
		return v.train.Profiles[u]
	}
	return nil
}

// signature returns u's fingerprint words and popcount, preferring the
// delta entry. Callers guarantee u is valid and fingerprinted (base
// users by construction, delta users by Upsert).
func (v *View) signature(u int32) ([]uint64, int32) {
	if e, ok := v.sigs[u]; ok {
		return e.words, e.ones
	}
	return v.gf.Signature(u), int32(v.gf.Ones(u))
}
