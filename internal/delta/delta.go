// Package delta implements the incremental maintenance layer of the
// serving stack: a mutable overlay on top of a frozen KNN graph that
// absorbs new users and new ratings in sub-second time, without a
// rebuild.
//
// The idea follows the local-clustering literature (Spielman–Teng's
// nearly-linear local clustering, Peng's robust clustering oracle):
// cluster structure can be updated with sublinear, local work. C²'s
// FastRandomHash buckets are exactly the locality handle needed — a new
// profile hashes to one bucket per configuration, so only those
// clusters' members can be its neighbors under the C² approximation.
// An upsert therefore costs t localized cluster re-solves (a few
// thousand SIMD AND-popcounts), not a build.
//
// Structure, from the reader inward:
//
//   - View is an immutable published snapshot of the overlay: the base
//     artifacts (frozen graph, training profiles, fingerprints) plus
//     three patch maps — materialized neighbor rows, profiles, and
//     fingerprints — covering every user an upsert has touched. Readers
//     load the current View with one atomic pointer read and never take
//     a lock; every access after that is a map probe or a base-array
//     view, so the merged read path allocates nothing.
//   - Overlay owns the writer state: the FRH hasher, the per-
//     configuration coarse bucket membership of every base user, and
//     the sequence counter. Upsert runs under a single writer mutex,
//     builds fresh copies of the patch maps (copy-on-write — bounded by
//     the compaction depth), and publishes a new View atomically.
//     Concurrent readers keep whichever View they loaded; a View, once
//     published, is never mutated.
//   - Compact folds base + delta into fresh build artifacts (validated
//     end to end) that the caller persists and hot-swaps; Rebase then
//     re-anchors the overlay on the new artifacts, dropping every patch
//     the snapshot absorbed (sequence numbers ≤ the compaction marker)
//     and keeping patches that raced in during the fold. Delta user ids
//     are assigned contiguously after the base ids and survive
//     compaction unchanged, so clients never observe an id remap.
//
// Placement and re-solve, per upsert:
//
//  1. The merged profile is hashed with every configuration's
//     generative function (items the build never saw hash through the
//     same seeded family).
//  2. Within each configuration the coarse bucket is narrowed by the
//     recursive splitting rule (§II-D) — the upserted profile descends
//     the same η-filtered partition the build used, so the candidate
//     set is the cluster the user would have joined, not the whole
//     bucket.
//  3. Candidates from all configurations (plus delta users sharing a
//     bucket and, for profile updates, the user's current neighbors)
//     are deduplicated and scored with the blocked AND-popcount kernel
//     against base and delta fingerprints; the best K become the user's
//     row.
//  4. The edge is symmetrized locally: each new neighbor's row is
//     patched (copy, insert, truncate to K) when the new user beats its
//     worst retained edge — the same strict-improvement rule the
//     builder's bounded heaps apply.
//
// The overlay is an approximation with a deliberate bound: rows of
// users that are *not* among the upserted user's top-K are left
// untouched (reverse edges beyond the local patch appear only at the
// next full rebuild), and a profile update does not re-score rows that
// held the user before the update. The equivalence experiment
// (experiments.Update, BENCH_update.json) measures the effect: recall
// after absorbing a user stream stays within the golden band of a
// from-scratch build.
package delta

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"c2knn/internal/dataset"
	"c2knn/internal/frh"
	"c2knn/internal/goldfinger"
	"c2knn/internal/knng"
	"c2knn/internal/sets"
	"c2knn/internal/similarity"
)

// Config parameterizes an overlay. The FRH options should match the
// parameters the base graph was built with: any consistent family
// yields correct (locality-preserving) placement, but matching the
// build's B/T/MaxSize/Seed makes the candidate clusters the very ones
// the builder solved.
type Config struct {
	// K is the neighborhood bound; zero takes the base graph's K, any
	// other value must equal it (rows merge edge-for-edge).
	K int
	// FRH configures the generative hash family used for placement.
	// Zero fields take the paper's defaults.
	FRH frh.Options
	// GFSeed is the fingerprint item-hash seed the base fingerprints
	// were built with. Snapshots do not record it (fingerprints are
	// self-contained for scoring); it only matters for summarizing
	// incoming profiles, and a mismatched seed degrades placement
	// quality, never safety.
	GFSeed uint32
	// MaxItems bounds accepted item ids: an upsert carrying an item id
	// ≥ MaxItems is rejected. This caps the growth of every per-item
	// structure (scorer scratch, compacted datasets). Zero defaults to
	// twice the base item universe, with a 4096-id floor of headroom.
	MaxItems int32
	// now stubs time.Now in tests.
	now func() time.Time
}

// Overlay is the mutable delta layer over one base snapshot. Reads go
// through View (lock-free, allocation-free); writes serialize on an
// internal mutex. Safe for any number of concurrent readers alongside
// one or more writers.
type Overlay struct {
	cfg   Config
	bits  int // fingerprint width
	words int // fingerprint words (bits/64)

	view atomic.Pointer[View]

	mu          sync.Mutex
	hasher      *frh.Hasher
	buckets     [][][]int32          // [fn][idx] → base users coarsely hashing to idx
	deltaCoarse []map[uint32][]int32 // [fn][idx] → delta users coarsely hashing to idx
	seq         uint64               // last assigned upsert sequence number
	marker      uint64               // highest sequence number absorbed by compaction
	upserts     uint64
	compactions uint64
	pending     time.Time // arrival of the oldest un-compacted upsert (zero: none)

	cand []int32         // candidate scratch, writer-only
	heap []knng.Neighbor // row-sort scratch, writer-only
}

// Result reports one absorbed upsert.
type Result struct {
	// User is the id the profile landed on; for inserts (user < 0) it is
	// the newly assigned id, contiguous after the base ids.
	User int32 `json:"user"`
	// Seq is the overlay sequence number after this upsert; reads made
	// against a view at or above it observe the write.
	Seq uint64 `json:"seq"`
	// Created reports whether a new user id was assigned.
	Created bool `json:"created,omitempty"`
	// Candidates is the number of cluster-local candidates scored.
	Candidates int `json:"candidates,omitempty"`
	// Patched is the number of existing neighbor rows the upsert edited.
	Patched int `json:"patched,omitempty"`
}

// Stats is the observability snapshot of an overlay.
type Stats struct {
	// Depth is the number of upserts not yet folded into a snapshot.
	Depth int `json:"depth"`
	// Users is the number of delta users beyond the base snapshot.
	Users int `json:"users"`
	// PatchedRows is the number of materialized row patches held.
	PatchedRows int `json:"patched_rows"`
	// AgeSec is the age of the oldest un-compacted upsert in seconds.
	AgeSec float64 `json:"age_sec"`
	// Upserts and Compactions are lifetime counters.
	Upserts     uint64 `json:"upserts"`
	Compactions uint64 `json:"compactions"`
	// Seq and Marker expose the sequence cursor and the last compaction
	// marker (Depth = Seq − Marker).
	Seq    uint64 `json:"seq"`
	Marker uint64 `json:"marker"`
}

// Attach builds an overlay over the given base artifacts. The one-time
// cost is hashing every base user into its coarse buckets (linear in
// the ratings); after that each upsert touches only its own clusters.
// The artifacts must be mutually consistent (equal user counts) and gf
// must be present — fingerprints are what upserts are scored with.
func Attach(graph *knng.Frozen, train *dataset.Dataset, gf *goldfinger.Set, cfg Config) (*Overlay, error) {
	if graph == nil || train == nil || gf == nil {
		return nil, fmt.Errorf("delta: attach needs a graph, a dataset and fingerprints (rebuild the snapshot with fingerprints to enable upserts)")
	}
	n := train.NumUsers()
	if graph.NumUsers() != n || gf.NumUsers() != n {
		return nil, fmt.Errorf("delta: inconsistent base: %d graph users, %d profiles, %d fingerprints",
			graph.NumUsers(), n, gf.NumUsers())
	}
	if cfg.K == 0 {
		cfg.K = graph.K
	}
	if cfg.K != graph.K {
		return nil, fmt.Errorf("delta: k=%d does not match the base graph's k=%d", cfg.K, graph.K)
	}
	if cfg.FRH.B == 0 {
		cfg.FRH.B = frh.DefaultB
	}
	if cfg.FRH.T == 0 {
		cfg.FRH.T = frh.DefaultT
	}
	if cfg.FRH.MaxSize == 0 {
		cfg.FRH.MaxSize = frh.DefaultMaxSize
	}
	if cfg.MaxItems <= 0 {
		cfg.MaxItems = train.NumItems + max(train.NumItems, 4096)
	}
	if cfg.MaxItems < train.NumItems {
		return nil, fmt.Errorf("delta: MaxItems=%d below the base item universe %d", cfg.MaxItems, train.NumItems)
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	o := &Overlay{
		cfg:    cfg,
		bits:   gf.Bits(),
		words:  gf.Bits() / 64,
		hasher: frh.NewHasher(train.NumItems, cfg.FRH),
	}
	t := cfg.FRH.T
	o.buckets = make([][][]int32, t)
	o.deltaCoarse = make([]map[uint32][]int32, t)
	frh.ForEachFn(t, cfg.FRH.Parallelism, func(fn int) frh.Stats {
		b := make([][]int32, cfg.FRH.B+1) // index 0 unused; hashes ∈ [1, B]
		for u, p := range train.Profiles {
			if idx, ok := o.hasher.UserHash(fn, p); ok {
				b[idx] = append(b[idx], int32(u))
			}
		}
		o.buckets[fn] = b
		o.deltaCoarse[fn] = make(map[uint32][]int32)
		return frh.Stats{}
	})
	o.view.Store(&View{
		graph:    graph,
		train:    train,
		gf:       gf,
		baseN:    int32(n),
		numUsers: int32(n),
		numItems: train.NumItems,
		rows:     map[int32]rowEntry{},
		profiles: map[int32]profEntry{},
		sigs:     map[int32]sigEntry{},
	})
	return o, nil
}

// View returns the current published view. The result is immutable and
// remains fully usable (and consistent) for as long as the caller holds
// it, however many upserts or compactions happen afterwards.
func (o *Overlay) View() *View { return o.view.Load() }

// Stats snapshots the overlay's counters.
func (o *Overlay) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	v := o.view.Load()
	s := Stats{
		Depth:       int(o.seq - o.marker),
		Users:       int(v.numUsers - v.baseN),
		PatchedRows: len(v.rows),
		Upserts:     o.upserts,
		Compactions: o.compactions,
		Seq:         o.seq,
		Marker:      o.marker,
	}
	if !o.pending.IsZero() {
		s.AgeSec = o.cfg.now().Sub(o.pending).Seconds()
	}
	return s
}

// Upsert absorbs one profile. user < 0 inserts a new user (the assigned
// id is returned); an existing id merges items into that user's profile
// and re-solves it. Items must be non-negative and below
// Config.MaxItems. The absorbed write is visible to every View loaded
// after Upsert returns. Safe for concurrent use with readers and other
// upserters (writers serialize).
func (o *Overlay) Upsert(user int32, items []int32) (Result, error) {
	norm := sets.Normalize(slices.Clone(items))
	if len(norm) == 0 {
		return Result{}, fmt.Errorf("delta: upsert needs a non-empty item set")
	}
	if norm[0] < 0 || norm[len(norm)-1] >= o.cfg.MaxItems {
		return Result{}, fmt.Errorf("delta: item ids must lie in [0, %d)", o.cfg.MaxItems)
	}

	o.mu.Lock()
	defer o.mu.Unlock()
	cur := o.view.Load()

	u := user
	created := false
	var oldProfile []int32
	if user < 0 {
		u = cur.numUsers
		created = true
	} else {
		if user >= cur.numUsers {
			return Result{}, fmt.Errorf("delta: user %d does not exist (upsert with user=-1 to insert)", user)
		}
		oldProfile = cur.Profile(u)
		merged := sets.Union(oldProfile, norm)
		if sets.Equal(merged, oldProfile) {
			// Nothing new: report the current cursor without burning a
			// sequence number or republishing.
			return Result{User: u, Seq: cur.seq}, nil
		}
		norm = merged
	}

	// Fingerprint the merged profile with the base family so it scores
	// against the snapshot's signature slab bit-for-bit.
	sig := make([]uint64, o.words)
	ones := goldfinger.Summarize(norm, o.bits, o.cfg.GFSeed, sig)

	// Localize: the clusters this profile hashes into, across every
	// configuration, plus same-bucket delta users and (for updates) the
	// current neighbors. Sorted + deduplicated for a deterministic solve.
	cand := o.cand[:0]
	for fn := 0; fn < o.cfg.FRH.T; fn++ {
		idx, ok := o.hasher.UserHashAny(fn, norm)
		if !ok {
			continue
		}
		cand = append(cand, o.descend(cur, fn, idx, norm)...)
		cand = append(cand, o.deltaCoarse[fn][idx]...)
	}
	if !created {
		ids, _ := cur.Neighbors(u)
		cand = append(cand, ids...)
	}
	slices.Sort(cand)
	cand = slices.Compact(cand)
	o.cand = cand[:0:cap(cand)]

	// Localized re-solve: score u against the candidates through the
	// blocked AND-popcount kernel, keeping the best K in a bounded heap —
	// the same acceptance rules the builder's solvers apply.
	list := knng.List{K: o.cfg.K, H: o.heap[:0]}
	scored := 0
	for _, v := range cand {
		if v == u {
			continue
		}
		sigV, onesV := cur.signature(v)
		inter := similarity.AndCount(sig, sigV)
		union := int(ones) + int(onesV) - inter
		scored++
		if union > 0 {
			list.Insert(v, float64(inter)/float64(union))
		}
	}
	o.heap = list.H[:0:cap(list.H)]

	// Materialize u's row in canonical frozen order.
	row := slices.Clone(list.H)
	knng.SortCanonical(row)
	rowIDs := make([]int32, len(row))
	rowSims := make([]float32, len(row))
	for i, nb := range row {
		rowIDs[i] = nb.ID
		rowSims[i] = float32(nb.Sim)
	}

	// Copy-on-write: fresh maps, then the new entries. Readers holding
	// the previous view never observe any of this.
	seq := o.seq + 1
	rows := make(map[int32]rowEntry, len(cur.rows)+1+len(rowIDs))
	for k, e := range cur.rows {
		rows[k] = e
	}
	profiles := make(map[int32]profEntry, len(cur.profiles)+1)
	for k, e := range cur.profiles {
		profiles[k] = e
	}
	sigs := make(map[int32]sigEntry, len(cur.sigs)+1)
	for k, e := range cur.sigs {
		sigs[k] = e
	}
	rows[u] = rowEntry{ids: rowIDs, sims: rowSims, seq: seq}
	profiles[u] = profEntry{items: norm, seq: seq}
	sigs[u] = sigEntry{words: sig, ones: ones, seq: seq}

	// Symmetrize locally: offer (u, sim) to each new neighbor's row.
	patched := 0
	for i, v := range rowIDs {
		if ids, sims, ok := patchRow(cur, v, u, rowSims[i], o.cfg.K); ok {
			rows[v] = rowEntry{ids: ids, sims: sims, seq: seq}
			patched++
		}
	}

	next := &View{
		graph:    cur.graph,
		train:    cur.train,
		gf:       cur.gf,
		baseN:    cur.baseN,
		numUsers: cur.numUsers,
		numItems: max(cur.numItems, norm[len(norm)-1]+1),
		seq:      seq,
		rows:     rows,
		profiles: profiles,
		sigs:     sigs,
	}
	if created {
		next.numUsers++
	}
	o.view.Store(next)

	// Writer-side bucket maintenance (readers never see these).
	if created {
		for fn := 0; fn < o.cfg.FRH.T; fn++ {
			if idx, ok := o.hasher.UserHashAny(fn, norm); ok {
				o.deltaCoarse[fn][idx] = append(o.deltaCoarse[fn][idx], u)
			}
		}
	} else {
		o.moveBuckets(u, oldProfile, norm, u < cur.baseN)
	}
	o.seq = seq
	o.upserts++
	if o.pending.IsZero() {
		o.pending = o.cfg.now()
	}
	return Result{User: u, Seq: seq, Created: created, Candidates: scored, Patched: patched}, nil
}

// descend narrows a coarse bucket to the final cluster the profile
// would have joined, replaying the recursive splitting rule (§II-D) on
// the bucket's current members: at each level the members partition by
// their hash above η, the profile follows its own hash — or the
// remainder when no item hashes above η, exactly as the builder leaves
// such users in C. Singleton children return to the remainder, also
// mirroring the builder.
func (o *Overlay) descend(cur *View, fn int, idx uint32, profile []int32) []int32 {
	members := o.buckets[fn][idx]
	if o.cfg.FRH.MaxSize < 0 {
		return members
	}
	eta := idx
	for len(members) > o.cfg.FRH.MaxSize {
		target, ok := o.hasher.UserHashAboveAny(fn, profile, eta)
		var child, remainder []int32
		for _, v := range members {
			hv, vok := o.hasher.UserHashAboveAny(fn, cur.Profile(v), eta)
			switch {
			case !vok:
				remainder = append(remainder, v)
			case ok && hv == target:
				child = append(child, v)
			}
		}
		if !ok || len(child) == 0 {
			// The profile stays in (or returns as a singleton to) the
			// remainder cluster, which is final.
			return remainder
		}
		members, eta = child, target
	}
	return members
}

// moveBuckets re-files a user whose profile changed: its coarse bucket
// in a configuration may have moved (the min-hash can only decrease or
// stay when items are added to the tables' range, but new items beyond
// them hash anywhere). base selects which side (base buckets vs delta
// coarse map) the user is filed on.
func (o *Overlay) moveBuckets(u int32, oldProfile, newProfile []int32, base bool) {
	for fn := 0; fn < o.cfg.FRH.T; fn++ {
		oldIdx, oldOK := o.hasher.UserHashAny(fn, oldProfile)
		newIdx, newOK := o.hasher.UserHashAny(fn, newProfile)
		if oldOK == newOK && oldIdx == newIdx {
			continue
		}
		if oldOK {
			if base {
				o.buckets[fn][oldIdx] = removeID(o.buckets[fn][oldIdx], u)
			} else {
				o.deltaCoarse[fn][oldIdx] = removeID(o.deltaCoarse[fn][oldIdx], u)
			}
		}
		if newOK {
			if base {
				o.buckets[fn][newIdx] = append(o.buckets[fn][newIdx], u)
			} else {
				o.deltaCoarse[fn][newIdx] = append(o.deltaCoarse[fn][newIdx], u)
			}
		}
	}
}

func removeID(s []int32, u int32) []int32 {
	for i, v := range s {
		if v == u {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// patchRow offers the edge (u, sim) to v's current row and, when it is
// accepted, returns a fresh patched row in canonical order. Acceptance
// mirrors the builder's bounded heaps: a room-for-more row takes any
// non-negative sim, a full row only a strict improvement over its worst
// edge; an existing (v → u) edge is re-scored in place when the
// similarity changed (a profile update shifted it).
func patchRow(cur *View, v, u int32, sim float32, k int) ([]int32, []float32, bool) {
	if k <= 0 || sim < 0 || sim != sim {
		return nil, nil, false
	}
	ids, sims := cur.Neighbors(v)
	at := -1
	for i, id := range ids {
		if id == u {
			at = i
			break
		}
	}
	if at >= 0 && sims[at] == sim {
		return nil, nil, false // already present at this similarity
	}
	if at < 0 && len(ids) >= k && sim <= sims[len(sims)-1] {
		return nil, nil, false // full row, no strict improvement
	}
	merged := make([]knng.Neighbor, 0, len(ids)+1)
	for i, id := range ids {
		if i == at {
			continue
		}
		merged = append(merged, knng.Neighbor{ID: id, Sim: float64(sims[i])})
	}
	merged = append(merged, knng.Neighbor{ID: u, Sim: float64(sim)})
	knng.SortCanonical(merged)
	if len(merged) > k {
		merged = merged[:k]
	}
	outIDs := make([]int32, len(merged))
	outSims := make([]float32, len(merged))
	for i, nb := range merged {
		outIDs[i] = nb.ID
		outSims[i] = float32(nb.Sim)
	}
	return outIDs, outSims, true
}
