package delta

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"testing"
	"time"

	"c2knn/internal/core"
	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/knng"
	"c2knn/internal/sets"
	"c2knn/internal/similarity"
	"c2knn/internal/synth"
)

const testGFSeed uint32 = 0x60fd

// testBase builds a small but realistic base: a scaled synthetic ML1M
// dataset, its fingerprints, and the frozen C² graph.
func testBase(t *testing.T, scale float64) (*knng.Frozen, *dataset.Dataset, *goldfinger.Set) {
	t.Helper()
	d := synth.Generate(synth.ML1M().Scale(scale))
	gf := goldfinger.MustNew(d, goldfinger.DefaultBits, testGFSeed)
	g, _ := core.Build(d, similarity.NewCounting(gf), core.Options{
		K: 10, Workers: 2, Seed: 42,
	})
	return g.Freeze(), d, gf
}

func testOverlay(t *testing.T, scale float64) (*Overlay, *dataset.Dataset) {
	t.Helper()
	frozen, d, gf := testBase(t, scale)
	ov, err := Attach(frozen, d, gf, Config{GFSeed: testGFSeed})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	return ov, d
}

// checkRow asserts a merged row is canonical: sorted by sim desc then id
// asc, no duplicates, no self-edge, all ids valid, sims in [0, 1].
func checkRow(t *testing.T, v *View, u int32) {
	t.Helper()
	ids, sims := v.Neighbors(u)
	if len(ids) != len(sims) {
		t.Fatalf("user %d: %d ids vs %d sims", u, len(ids), len(sims))
	}
	seen := make(map[int32]bool)
	for i, id := range ids {
		if id == u {
			t.Fatalf("user %d: self edge at %d", u, i)
		}
		if !v.Valid(id) {
			t.Fatalf("user %d: neighbor %d out of range", u, id)
		}
		if seen[id] {
			t.Fatalf("user %d: duplicate neighbor %d", u, id)
		}
		seen[id] = true
		if sims[i] < 0 || sims[i] > 1 || math.IsNaN(float64(sims[i])) {
			t.Fatalf("user %d: sim[%d] = %v out of range", u, i, sims[i])
		}
		if i > 0 {
			if sims[i] > sims[i-1] || (sims[i] == sims[i-1] && ids[i] <= ids[i-1]) {
				t.Fatalf("user %d: row not canonical at %d: (%d,%v) after (%d,%v)",
					u, i, ids[i], sims[i], ids[i-1], sims[i-1])
			}
		}
	}
}

func TestAttachValidation(t *testing.T) {
	frozen, d, gf := testBase(t, 0.01)
	if _, err := Attach(nil, d, gf, Config{}); err == nil {
		t.Error("Attach accepted a nil graph")
	}
	if _, err := Attach(frozen, d, nil, Config{}); err == nil {
		t.Error("Attach accepted nil fingerprints")
	}
	if _, err := Attach(frozen, d, gf, Config{K: frozen.K + 1}); err == nil {
		t.Error("Attach accepted a mismatched K")
	}
	if _, err := Attach(frozen, d, gf, Config{MaxItems: 1}); err == nil {
		t.Error("Attach accepted MaxItems below the base universe")
	}
	short := &dataset.Dataset{Name: "short", NumItems: d.NumItems, Profiles: d.Profiles[:len(d.Profiles)-1]}
	if _, err := Attach(frozen, short, gf, Config{}); err == nil {
		t.Error("Attach accepted inconsistent user counts")
	}
}

func TestUpsertErrors(t *testing.T) {
	ov, d := testOverlay(t, 0.01)
	if _, err := ov.Upsert(-1, nil); err == nil {
		t.Error("accepted an empty item set")
	}
	if _, err := ov.Upsert(-1, []int32{-3}); err == nil {
		t.Error("accepted a negative item id")
	}
	if _, err := ov.Upsert(-1, []int32{ov.cfg.MaxItems}); err == nil {
		t.Error("accepted an item id at MaxItems")
	}
	if _, err := ov.Upsert(int32(d.NumUsers()), []int32{1}); err == nil {
		t.Error("accepted an out-of-range existing user id")
	}
}

func TestInsertNewUser(t *testing.T) {
	ov, d := testOverlay(t, 0.02)
	baseN := int32(d.NumUsers())

	// Clone an existing profile: the new user must find near-identical
	// neighbors to the clone source's.
	src := int32(7)
	profile := slices.Clone(d.Profiles[src])
	before := ov.View()

	res, err := ov.Upsert(-1, profile)
	if err != nil {
		t.Fatalf("Upsert: %v", err)
	}
	if !res.Created || res.User != baseN {
		t.Fatalf("want created id %d, got %+v", baseN, res)
	}
	if res.Candidates == 0 {
		t.Fatal("upsert scored no candidates — placement found nothing")
	}

	after := ov.View()
	if after.NumUsers() != int(baseN)+1 || before.NumUsers() != int(baseN) {
		t.Fatalf("user counts: before %d after %d", before.NumUsers(), after.NumUsers())
	}
	// The old view must not see the write (epoch consistency).
	if ids, _ := before.Neighbors(baseN); ids != nil {
		t.Fatal("pre-upsert view exposes the new user")
	}
	if got := after.Profile(baseN); !slices.Equal(got, sets.Normalize(slices.Clone(profile))) {
		t.Fatalf("profile mismatch: %v", got)
	}
	checkRow(t, after, baseN)

	// An identical profile shares every item, so the clone source must
	// appear in the row with similarity 1 (fingerprints are equal).
	ids, sims := after.Neighbors(baseN)
	if len(ids) == 0 {
		t.Fatal("new user has an empty row")
	}
	at := slices.Index(ids, src)
	if at < 0 {
		t.Fatalf("clone source %d missing from row %v", src, ids)
	}
	if sims[at] != 1 {
		t.Fatalf("clone similarity = %v, want 1", sims[at])
	}

	// Symmetry: the patched neighbors now hold the new user.
	reverse := 0
	for _, v := range ids {
		nIDs, _ := after.Neighbors(v)
		if slices.Contains(nIDs, baseN) {
			reverse++
		}
	}
	if res.Patched != reverse {
		t.Fatalf("Patched = %d but %d reverse edges found", res.Patched, reverse)
	}
	if reverse == 0 {
		t.Fatal("no reverse edge was patched for an identical profile")
	}
	// Every patched row must still be canonical and within K.
	for _, v := range ids {
		checkRow(t, after, v)
		nIDs, _ := after.Neighbors(v)
		if len(nIDs) > ov.cfg.K {
			t.Fatalf("patched row of %d exceeds K: %d", v, len(nIDs))
		}
	}
}

func TestUpdateExistingUser(t *testing.T) {
	ov, d := testOverlay(t, 0.02)
	u := int32(3)
	old := slices.Clone(d.Profiles[u])

	// No-op: re-upserting a subset of the existing profile must not burn
	// a sequence number.
	seq0 := ov.View().Seq()
	res, err := ov.Upsert(u, old[:1])
	if err != nil {
		t.Fatalf("no-op upsert: %v", err)
	}
	if res.Seq != seq0 || res.Created {
		t.Fatalf("no-op upsert advanced state: %+v", res)
	}

	// Merge in another user's items: the profile must become the union
	// and the row must be re-solved.
	donor := d.Profiles[11]
	res, err = ov.Upsert(u, donor)
	if err != nil {
		t.Fatalf("update upsert: %v", err)
	}
	if res.Created || res.User != u {
		t.Fatalf("update reported %+v", res)
	}
	v := ov.View()
	want := sets.Union(old, sets.Normalize(slices.Clone(donor)))
	if got := v.Profile(u); !slices.Equal(got, want) {
		t.Fatalf("merged profile mismatch:\n got %v\nwant %v", got, want)
	}
	checkRow(t, v, u)
	if v.Seq() != seq0+1 {
		t.Fatalf("seq = %d, want %d", v.Seq(), seq0+1)
	}
}

func TestNewItemsBeyondBaseUniverse(t *testing.T) {
	ov, d := testOverlay(t, 0.01)
	base := int32(d.NumItems)
	items := []int32{base, base + 1, base + 2, base + 100}
	res, err := ov.Upsert(-1, items)
	if err != nil {
		t.Fatalf("Upsert with unseen items: %v", err)
	}
	v := ov.View()
	if v.NumItems() < base+101 {
		t.Fatalf("NumItems = %d, want ≥ %d", v.NumItems(), base+101)
	}
	if got := v.Profile(res.User); !slices.Equal(got, items) {
		t.Fatalf("profile = %v, want %v", got, items)
	}
	checkRow(t, v, res.User)

	// A second user with the same unseen items must find the first at
	// similarity 1: new-item hashing is deterministic.
	res2, err := ov.Upsert(-1, items)
	if err != nil {
		t.Fatalf("second unseen-item upsert: %v", err)
	}
	ids, sims := ov.View().Neighbors(res2.User)
	at := slices.Index(ids, res.User)
	if at < 0 || sims[at] != 1 {
		t.Fatalf("twin not found at sim 1: ids=%v sims=%v", ids, sims)
	}
}

func TestStats(t *testing.T) {
	ov, d := testOverlay(t, 0.01)
	now := time.Unix(1000, 0)
	ov.cfg.now = func() time.Time { return now }

	s := ov.Stats()
	if s.Depth != 0 || s.Users != 0 || s.AgeSec != 0 {
		t.Fatalf("fresh overlay stats: %+v", s)
	}
	if _, err := ov.Upsert(-1, d.Profiles[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := ov.Upsert(2, d.Profiles[9]); err != nil {
		t.Fatal(err)
	}
	now = now.Add(3 * time.Second)
	s = ov.Stats()
	if s.Depth != 2 || s.Users != 1 || s.Upserts != 2 || s.Seq != 2 {
		t.Fatalf("stats after 2 upserts: %+v", s)
	}
	if s.AgeSec != 3 {
		t.Fatalf("AgeSec = %v, want 3", s.AgeSec)
	}
}

func TestCompactRoundTrip(t *testing.T) {
	ov, d := testOverlay(t, 0.02)
	baseN := int32(d.NumUsers())

	// Mix of inserts and updates.
	for i := 0; i < 8; i++ {
		if _, err := ov.Upsert(-1, d.Profiles[i*3]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ov.Upsert(5, d.Profiles[20]); err != nil {
		t.Fatal(err)
	}

	cmp, err := ov.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if cmp.Absorbed != 9 {
		t.Fatalf("Absorbed = %d, want 9", cmp.Absorbed)
	}
	if n := cmp.Train.NumUsers(); n != int(baseN)+8 {
		t.Fatalf("compacted users = %d, want %d", n, baseN+8)
	}

	// The compacted artifacts must reproduce the view's merged state
	// exactly.
	v := ov.View()
	for u := int32(0); u < int32(cmp.Train.NumUsers()); u++ {
		if !slices.Equal(cmp.Train.Profiles[u], v.Profile(u)) {
			t.Fatalf("user %d: compacted profile diverges", u)
		}
		wantIDs, wantSims := v.Neighbors(u)
		gotIDs, gotSims := cmp.Graph.Neighbors(u)
		if !slices.Equal(gotIDs, wantIDs) || !slices.Equal(gotSims, wantSims) {
			t.Fatalf("user %d: compacted row diverges", u)
		}
		wantSig, _ := v.signature(u)
		if !slices.Equal(cmp.GoldFinger.Signature(u), wantSig) {
			t.Fatalf("user %d: compacted signature diverges", u)
		}
	}

	// Upserts racing in after the capture must survive the rebase...
	late, err := ov.Upsert(-1, d.Profiles[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := ov.Rebase(cmp.Graph, cmp.Train, cmp.GoldFinger, cmp.Marker); err != nil {
		t.Fatalf("Rebase: %v", err)
	}
	v = ov.View()
	if v.BaseUsers() != cmp.Train.NumUsers() {
		t.Fatalf("BaseUsers = %d, want %d", v.BaseUsers(), cmp.Train.NumUsers())
	}
	if v.NumUsers() != cmp.Train.NumUsers()+1 {
		t.Fatalf("NumUsers = %d, want %d", v.NumUsers(), cmp.Train.NumUsers()+1)
	}
	if got := v.Profile(late.User); !slices.Equal(got, sets.Normalize(slices.Clone(d.Profiles[1]))) {
		t.Fatal("late upsert lost its profile across the rebase")
	}
	checkRow(t, v, late.User)

	// ...while absorbed patches are pruned (entries at or below the
	// marker are gone; base reads serve them now).
	s := ov.Stats()
	if s.Depth != 1 || s.Users != 1 || s.Compactions != 1 {
		t.Fatalf("post-rebase stats: %+v", s)
	}
	for k, e := range v.rows {
		if e.seq <= cmp.Marker {
			t.Fatalf("row patch for %d at seq %d survived marker %d", k, e.seq, cmp.Marker)
		}
	}

	// A second compaction folds the straggler too.
	cmp2, err := ov.Compact()
	if err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	if cmp2.Absorbed != 1 {
		t.Fatalf("second Absorbed = %d, want 1", cmp2.Absorbed)
	}
	if err := ov.Rebase(cmp2.Graph, cmp2.Train, cmp2.GoldFinger, cmp2.Marker); err != nil {
		t.Fatalf("second Rebase: %v", err)
	}
	s = ov.Stats()
	if s.Depth != 0 || s.Users != 0 || s.AgeSec != 0 {
		t.Fatalf("drained overlay stats: %+v", s)
	}

	// Ids stayed stable: upserting onto a previously-delta id works.
	if _, err := ov.Upsert(late.User, d.Profiles[2]); err != nil {
		t.Fatalf("upsert onto absorbed delta id: %v", err)
	}
	checkRow(t, ov.View(), late.User)
}

func TestRebaseValidation(t *testing.T) {
	ov, d := testOverlay(t, 0.01)
	if _, err := ov.Upsert(-1, d.Profiles[0]); err != nil {
		t.Fatal(err)
	}
	cmp, err := ov.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if err := ov.Rebase(nil, cmp.Train, cmp.GoldFinger, cmp.Marker); err == nil {
		t.Error("Rebase accepted a nil graph")
	}
	// Artifacts that lost the delta user: rebase must refuse, since the
	// marker claims the upsert was absorbed but the base doesn't hold it.
	oldView := ov.View()
	if err := ov.Rebase(oldView.graph, oldView.train, oldView.gf, cmp.Marker); err == nil {
		t.Error("Rebase accepted artifacts missing an absorbed user")
	}
}

// TestConcurrentUpsertsAndReads hammers the overlay with concurrent
// writers and readers; run under -race this is the memory-safety proof
// of the COW view protocol. Readers additionally assert monotone
// sequence numbers and per-view invariants.
func TestConcurrentUpsertsAndReads(t *testing.T) {
	ov, d := testOverlay(t, 0.02)
	const writers, readers, upserts = 4, 4, 40

	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < upserts; i++ {
				p := d.Profiles[(w*upserts+i*7)%d.NumUsers()]
				if _, err := ov.Upsert(-1, p); err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastSeq uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := ov.View()
				if s := v.Seq(); s < lastSeq {
					errc <- fmt.Errorf("reader %d: seq went backwards %d → %d", r, lastSeq, s)
					return
				} else {
					lastSeq = s
				}
				for u := int32(0); u < int32(v.NumUsers()); u += 17 {
					ids, sims := v.Neighbors(u)
					if len(ids) != len(sims) {
						errc <- fmt.Errorf("reader %d: ragged row for %d", r, u)
						return
					}
					for i := 1; i < len(sims); i++ {
						if sims[i] > sims[i-1] {
							errc <- fmt.Errorf("reader %d: unsorted row for %d", r, u)
							return
						}
					}
					if v.Profile(u) == nil {
						errc <- fmt.Errorf("reader %d: user %d has no profile", r, u)
						return
					}
				}
			}
		}(r)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Writers finish first; then release the readers.
	for {
		s := ov.Stats()
		if s.Users == writers*upserts {
			break
		}
		select {
		case err := <-errc:
			t.Fatal(err)
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	<-done
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	v := ov.View()
	if v.NumUsers() != d.NumUsers()+writers*upserts {
		t.Fatalf("NumUsers = %d, want %d", v.NumUsers(), d.NumUsers()+writers*upserts)
	}
	for u := int32(0); u < int32(v.NumUsers()); u++ {
		checkRow(t, v, u)
	}
}

// TestCompactionUnderLoad folds repeatedly while writers keep landing
// upserts; no write may be lost and every intermediate state must
// validate.
func TestCompactionUnderLoad(t *testing.T) {
	ov, d := testOverlay(t, 0.02)
	const writers, upserts = 3, 30

	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < upserts; i++ {
				p := d.Profiles[(w*upserts+i*5)%d.NumUsers()]
				if _, err := ov.Upsert(-1, p); err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	compactions := 0
	for {
		cmp, err := ov.Compact()
		if err != nil {
			t.Fatalf("Compact under load: %v", err)
		}
		if err := ov.Rebase(cmp.Graph, cmp.Train, cmp.GoldFinger, cmp.Marker); err != nil {
			t.Fatalf("Rebase under load: %v", err)
		}
		compactions++
		select {
		case err := <-errc:
			t.Fatal(err)
		case <-done:
			// One final fold for the stragglers.
			cmp, err := ov.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if err := ov.Rebase(cmp.Graph, cmp.Train, cmp.GoldFinger, cmp.Marker); err != nil {
				t.Fatal(err)
			}
			v := ov.View()
			if v.NumUsers() != d.NumUsers()+writers*upserts {
				t.Fatalf("lost upserts: %d users, want %d", v.NumUsers(), d.NumUsers()+writers*upserts)
			}
			if v.BaseUsers() != v.NumUsers() {
				t.Fatalf("final fold left %d delta users", v.NumUsers()-v.BaseUsers())
			}
			s := ov.Stats()
			if s.Depth != 0 {
				t.Fatalf("final depth = %d", s.Depth)
			}
			if s.Compactions != uint64(compactions)+1 {
				t.Fatalf("compactions = %d, want %d", s.Compactions, compactions+1)
			}
			for u := int32(0); u < int32(v.NumUsers()); u++ {
				checkRow(t, v, u)
			}
			return
		default:
		}
	}
}

// TestMergedReadAllocs proves the read hot path of a patched view stays
// allocation-free.
func TestMergedReadAllocs(t *testing.T) {
	ov, d := testOverlay(t, 0.01)
	for i := 0; i < 5; i++ {
		if _, err := ov.Upsert(-1, d.Profiles[i]); err != nil {
			t.Fatal(err)
		}
	}
	v := ov.View()
	users := []int32{0, 1, int32(d.NumUsers()), int32(d.NumUsers()) + 2}
	allocs := testing.AllocsPerRun(100, func() {
		for _, u := range users {
			v.Neighbors(u)
			v.Profile(u)
			v.signature(u)
		}
	})
	if allocs != 0 {
		t.Fatalf("merged reads allocate %v per run, want 0", allocs)
	}
}

// TestDescendMatchesBuilder places a base user's own profile and checks
// the descent lands in a cluster containing that user — the overlay
// replays the builder's partition, so a member must find itself.
func TestDescendMatchesBuilder(t *testing.T) {
	ov, d := testOverlay(t, 0.02)
	v := ov.View()
	for _, u := range []int32{0, 5, 50, int32(d.NumUsers() - 1)} {
		p := d.Profiles[u]
		found := false
		for fn := 0; fn < ov.cfg.FRH.T && !found; fn++ {
			idx, ok := ov.hasher.UserHashAny(fn, p)
			if !ok {
				continue
			}
			members := ov.descend(v, fn, idx, p)
			found = slices.Contains(members, u)
		}
		if !found {
			t.Errorf("user %d does not descend into any cluster containing itself", u)
		}
	}
}
