package router

import (
	"fmt"
	"net/http"
	"sync/atomic"

	"c2knn/internal/server"
)

// Stats extends the shard daemon's counters with the router's own:
// fan-out latency (one observation per upstream try), hedged and
// failed-over tries, upstream errors, and partial responses. Embedding
// *server.Stats means the middleware stack, /statsz and /metrics reuse
// the exact accounting — and metric names — operators already know
// from the shard tier.
type Stats struct {
	*server.Stats

	// Fanout observes every upstream try's latency (hedges and
	// failovers included), in the same HDR layout as request latency so
	// the two are directly comparable.
	Fanout server.LatencyHist

	partials     atomic.Uint64 // responses answered degraded (X-C2-Partial)
	hedges       atomic.Uint64 // tries launched by the hedge timer
	failovers    atomic.Uint64 // tries launched because an earlier one failed
	upstreamErrs atomic.Uint64 // tries that failed (transport or 5xx)
}

func newStats() *Stats { return &Stats{Stats: server.NewStats()} }

// RecordPartial accounts one request answered with degraded (partial)
// results instead of an error.
func (st *Stats) RecordPartial() { st.partials.Add(1) }

// ReplicaStatus is one upstream replica's health as the poll loop last
// saw it.
type ReplicaStatus struct {
	Addr      string `json:"addr"`
	Healthy   bool   `json:"healthy"`
	Epoch     uint64 `json:"epoch"`
	Users     int    `json:"users"`
	DeltaSeq  uint64 `json:"delta_seq,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// ShardStatus is one shard's view in the router /statsz: its bucket
// range, replicas, and whether its replicas disagree about the serving
// epoch (one stuck on an old snapshot after a hot swap).
type ShardStatus struct {
	ID        int             `json:"id"`
	Lo        uint32          `json:"lo"`
	Hi        uint32          `json:"hi"`
	Replicas  []ReplicaStatus `json:"replicas"`
	EpochSkew bool            `json:"epoch_skew"`
	DeltaSkew bool            `json:"delta_skew"`
}

// routerSection is the router-specific block of /statsz.
type routerSection struct {
	Shards         []ShardStatus `json:"shards"`
	Partials       uint64        `json:"partial_responses"`
	Hedges         uint64        `json:"hedged_tries"`
	Failovers      uint64        `json:"failover_tries"`
	UpstreamErrors uint64        `json:"upstream_errors"`
	FanoutP50      float64       `json:"fanout_p50_us"`
	FanoutP99      float64       `json:"fanout_p99_us"`
	EpochSkew      bool          `json:"epoch_skew"`
	EpochMin       uint64        `json:"epoch_min"`
	EpochMax       uint64        `json:"epoch_max"`
	DeltaSkew      bool          `json:"delta_skew"`
}

// statszResponse embeds the shard-tier snapshot (flattened into the
// same JSON keys /statsz has always had) plus the router section.
type statszResponse struct {
	server.Snapshot
	Router routerSection `json:"router"`
}

func (rt *Router) serveStatsz(w http.ResponseWriter, r *http.Request) {
	resp := statszResponse{Snapshot: rt.stats.Snapshot(), Router: rt.routerSection()}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) routerSection() routerSection {
	sec := routerSection{
		Partials:       rt.stats.partials.Load(),
		Hedges:         rt.stats.hedges.Load(),
		Failovers:      rt.stats.failovers.Load(),
		UpstreamErrors: rt.stats.upstreamErrs.Load(),
		FanoutP50:      rt.stats.Fanout.Percentile(0.50),
		FanoutP99:      rt.stats.Fanout.Percentile(0.99),
	}
	first := true
	for _, sh := range rt.shards {
		ss := ShardStatus{ID: sh.spec.ID, Lo: sh.spec.Range.Lo, Hi: sh.spec.Range.Hi}
		var lo, hi, dLo, dHi uint64
		seen := false
		for _, rep := range sh.replicas {
			rs := ReplicaStatus{
				Addr:     rep.base,
				Healthy:  rep.healthy.Load(),
				Epoch:    rep.epoch.Load(),
				Users:    int(rep.users.Load()),
				DeltaSeq: rep.deltaSeq.Load(),
			}
			rep.mu.Lock()
			rs.LastError = rep.lastErr
			rep.mu.Unlock()
			ss.Replicas = append(ss.Replicas, rs)
			if rs.Healthy && rs.Epoch > 0 {
				if !seen || rs.Epoch < lo {
					lo = rs.Epoch
				}
				if !seen || rs.Epoch > hi {
					hi = rs.Epoch
				}
				if !seen || rs.DeltaSeq < dLo {
					dLo = rs.DeltaSeq
				}
				if !seen || rs.DeltaSeq > dHi {
					dHi = rs.DeltaSeq
				}
				seen = true
			}
		}
		ss.EpochSkew = seen && lo != hi
		if ss.EpochSkew {
			sec.EpochSkew = true
		}
		// See PollHealth: cursors only compare within one epoch.
		ss.DeltaSkew = seen && lo == hi && dLo != dHi
		if ss.DeltaSkew {
			sec.DeltaSkew = true
		}
		if seen {
			if first || lo < sec.EpochMin {
				sec.EpochMin = lo
			}
			if first || hi > sec.EpochMax {
				sec.EpochMax = hi
			}
			first = false
		}
		sec.Shards = append(sec.Shards, ss)
	}
	return sec
}

// serveMetrics writes the router's Prometheus exposition: the shared
// request counters under the shard tier's names (same stack, same
// semantics) plus c2_router_* series for fan-out behavior.
func (rt *Router) serveMetrics(w http.ResponseWriter, r *http.Request) {
	snap := rt.stats.Snapshot()
	sec := rt.routerSection()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	counter := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	counter("c2_requests_total", "Successfully answered query requests by endpoint.")
	for ep, n := range snap.ByEndpoint {
		fmt.Fprintf(w, "c2_requests_total{endpoint=%q} %d\n", ep, n)
	}
	counter("c2_responses_total", "Responses on the query and admin surfaces by status code.")
	for code, n := range snap.ByStatus {
		fmt.Fprintf(w, "c2_responses_total{code=%q} %d\n", code, n)
	}
	counter("c2_bad_requests_total", "Requests rejected before any shard was asked (400).")
	fmt.Fprintf(w, "c2_bad_requests_total %d\n", snap.BadRequests)
	counter("c2_panics_total", "Handler panics recovered into 500 responses.")
	fmt.Fprintf(w, "c2_panics_total %d\n", snap.Panics)
	counter("c2_shed_total", "Requests refused with 429 by admission control.")
	fmt.Fprintf(w, "c2_shed_total %d\n", snap.Shed)
	counter("c2_deadline_expired_total", "Requests whose per-request deadline expired (503).")
	fmt.Fprintf(w, "c2_deadline_expired_total %d\n", snap.DeadlineExpired)
	gauge("c2_inflight_requests", "Requests currently inside the admission-control stage.")
	fmt.Fprintf(w, "c2_inflight_requests %d\n", snap.InFlight)
	counter("c2_reload_failures_total", "Degradations surfaced through reload-failure plumbing (incl. epoch skew).")
	fmt.Fprintf(w, "c2_reload_failures_total %d\n", snap.ReloadFailures)
	gauge("c2_uptime_seconds", "Seconds since the router started.")
	fmt.Fprintf(w, "c2_uptime_seconds %.3f\n", snap.UptimeSec)

	counter("c2_router_partial_responses_total", "Requests answered with partial (degraded) results.")
	fmt.Fprintf(w, "c2_router_partial_responses_total %d\n", sec.Partials)
	counter("c2_router_hedged_tries_total", "Upstream tries launched by the hedge timer.")
	fmt.Fprintf(w, "c2_router_hedged_tries_total %d\n", sec.Hedges)
	counter("c2_router_failover_tries_total", "Upstream tries launched after an earlier try failed.")
	fmt.Fprintf(w, "c2_router_failover_tries_total %d\n", sec.Failovers)
	counter("c2_router_upstream_errors_total", "Upstream tries that failed (transport error or 5xx).")
	fmt.Fprintf(w, "c2_router_upstream_errors_total %d\n", sec.UpstreamErrors)
	gauge("c2_router_epoch_skew", "1 when replicas of some shard disagree about the serving epoch.")
	skew := 0
	if sec.EpochSkew {
		skew = 1
	}
	fmt.Fprintf(w, "c2_router_epoch_skew %d\n", skew)
	gauge("c2_router_delta_skew", "1 when same-epoch replicas of some shard disagree about the upsert cursor.")
	dskew := 0
	if sec.DeltaSkew {
		dskew = 1
	}
	fmt.Fprintf(w, "c2_router_delta_skew %d\n", dskew)
	for _, ss := range sec.Shards {
		healthy := 0
		for _, rep := range ss.Replicas {
			if rep.Healthy {
				healthy++
			}
		}
		fmt.Fprintf(w, "c2_router_shard_replicas_healthy{shard=\"%d\"} %d\n", ss.ID, healthy)
	}

	// Fan-out latency histogram (one observation per upstream try).
	uppers := []float64{100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000, 1e6}
	cum, total := rt.stats.Fanout.CumulativeAtMost(uppers)
	fmt.Fprintf(w, "# HELP c2_router_fanout_duration_seconds Upstream try latency.\n")
	fmt.Fprintf(w, "# TYPE c2_router_fanout_duration_seconds histogram\n")
	for i, le := range uppers {
		fmt.Fprintf(w, "c2_router_fanout_duration_seconds_bucket{le=\"%g\"} %d\n", le/1e6, cum[i])
	}
	fmt.Fprintf(w, "c2_router_fanout_duration_seconds_bucket{le=\"+Inf\"} %d\n", total)
	fmt.Fprintf(w, "c2_router_fanout_duration_seconds_sum %.6f\n", float64(rt.stats.Fanout.SumMicros())/1e6)
	fmt.Fprintf(w, "c2_router_fanout_duration_seconds_count %d\n", total)
}
