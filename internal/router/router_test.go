package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"c2knn"
	"c2knn/internal/frh"
	"c2knn/internal/server"
)

func testIndex(tb testing.TB) *c2knn.Index {
	tb.Helper()
	d, err := c2knn.Generate("ml1M", 0.03)
	if err != nil {
		tb.Fatal(err)
	}
	sim, err := c2knn.NewGoldFinger(d, 256)
	if err != nil {
		tb.Fatal(err)
	}
	g, _ := c2knn.BuildC2(d, sim, c2knn.BuildOptions{K: 8, Workers: 2, Seed: 7})
	ix, err := c2knn.NewIndex(g, d, sim)
	if err != nil {
		tb.Fatal(err)
	}
	return ix
}

// startShard serves ix as one shard replica.
func startShard(tb testing.TB, ix *c2knn.Index) (*server.Server, *httptest.Server) {
	tb.Helper()
	s, err := server.New(ix, server.Config{CacheEntries: -1})
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return s, ts
}

func newRouter(tb testing.TB, cfg Config) *Router {
	tb.Helper()
	cfg.HealthEvery = -1 // tests poll explicitly
	rt, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(rt.Close)
	return rt
}

func get(tb testing.TB, h http.Handler, path string) (int, http.Header, []byte) {
	tb.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Header(), rec.Body.Bytes()
}

func post(tb testing.TB, h http.Handler, path, body string) (int, http.Header, []byte) {
	tb.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Header(), rec.Body.Bytes()
}

// TestRoutedByteIdentity is the merge-determinism acceptance test: a
// router over a 1-shard layout must answer byte-identically to (a) the
// direct single-snapshot server and (b) JSON marshaled straight from
// the c2knn.Index — on every endpoint, single and batched, including
// error responses.
func TestRoutedByteIdentity(t *testing.T) {
	ix := testIndex(t)
	_, direct := startShard(t, ix)
	_, shardSrv := startShard(t, ix)
	rt := newRouter(t, Config{
		Shards: []ShardSpec{{ID: 0, Range: frh.BucketRange{Lo: 1, Hi: frh.DefaultShardBuckets}, Replicas: []string{shardSrv.URL}}},
	})

	users := []int32{0, 1, 7, 41, 500, 1<<30 - 1} // incl. out-of-range
	paths := []string{
		"/v1/neighbors?user=%d", "/v1/neighbors?user=%d&k=3",
		"/v1/topk?user=%d&k=5", "/v1/recommend?user=%d&n=10",
		"/v1/neighbors?user=%d&k=0",    // 400 from the shard, proxied
		"/v1/recommend?user=%d&n=9999", // over MaxResults: 400
	}
	for _, u := range users {
		for _, p := range paths {
			path := fmt.Sprintf(p, u)
			wantResp, err := http.Get(direct.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := io.ReadAll(wantResp.Body)
			wantResp.Body.Close()
			code, _, got := get(t, rt.Handler(), path)
			if code != wantResp.StatusCode {
				t.Fatalf("%s: routed status %d, direct %d", path, code, wantResp.StatusCode)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: routed body differs\nrouted: %s\ndirect: %s", path, got, want)
			}
		}
	}

	// Batched POST, order preserved.
	body := `{"users":[41,0,7,500,1],"k":4}`
	wantResp, err := http.Post(direct.URL+"/v1/neighbors", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(wantResp.Body)
	wantResp.Body.Close()
	code, hdr, got := get2(t, rt.Handler(), "/v1/neighbors", body)
	if code != 200 || !bytes.Equal(got, want) {
		t.Fatalf("batch: status %d\nrouted: %s\ndirect: %s", code, got, want)
	}
	if hdr.Get(HeaderPartial) != "" {
		t.Fatal("healthy routed batch flagged partial")
	}

	// Against the index directly: the router's mirrored wire structs
	// must marshal exactly what the server marshals.
	u := int32(41)
	ids, sims := ix.Neighbors(u)
	wantJSON, _ := json.Marshal(neighborsResult{User: u, IDs: ids, Sims: sims})
	code, _, got = get(t, rt.Handler(), fmt.Sprintf("/v1/neighbors?user=%d", u))
	if code != 200 || !bytes.Equal(bytes.TrimRight(got, "\n"), wantJSON) {
		t.Fatalf("routed vs index: %s vs %s", got, wantJSON)
	}
}

func get2(tb testing.TB, h http.Handler, path, body string) (int, http.Header, []byte) {
	return post(tb, h, path, body)
}

// TestRoutedTwoShards proves the scatter-gather path: a 2-shard router
// must still answer byte-identically to one process over the whole
// snapshot, for singles and for batches spanning both shards.
func TestRoutedTwoShards(t *testing.T) {
	ix := testIndex(t)
	_, direct := startShard(t, ix)
	ranges := frh.PartitionBuckets(frh.DefaultShardBuckets, 2)
	parts, users, err := c2knn.PartitionIndex(ix, frh.DefaultShardBuckets, ranges)
	if err != nil {
		t.Fatal(err)
	}
	if users[0]+users[1] != ix.NumUsers() {
		t.Fatalf("partition lost users: %v vs %d", users, ix.NumUsers())
	}
	_, s0 := startShard(t, parts[0])
	_, s1 := startShard(t, parts[1])
	rt := newRouter(t, Config{Shards: []ShardSpec{
		{ID: 0, Range: ranges[0], Replicas: []string{s0.URL}},
		{ID: 1, Range: ranges[1], Replicas: []string{s1.URL}},
	}})

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		us := make([]int32, n)
		for i := range us {
			us[i] = int32(rng.Intn(ix.NumUsers() + 50))
		}
		for _, ep := range []string{"neighbors", "topk", "recommend"} {
			req, _ := json.Marshal(map[string]any{"users": us, "k": 6})
			if ep == "recommend" {
				req, _ = json.Marshal(map[string]any{"users": us, "n": 12})
			}
			wantResp, err := http.Post(direct.URL+"/v1/"+ep, "application/json", bytes.NewReader(req))
			if err != nil {
				t.Fatal(err)
			}
			want, _ := io.ReadAll(wantResp.Body)
			wantResp.Body.Close()
			code, hdr, got := post(t, rt.Handler(), "/v1/"+ep, string(req))
			if code != 200 {
				t.Fatalf("%s: routed status %d: %s", ep, code, got)
			}
			if hdr.Get(HeaderPartial) != "" {
				t.Fatalf("%s: healthy 2-shard batch flagged partial", ep)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s trial %d: routed body differs from single-process\nrouted: %.200s\ndirect: %.200s", ep, trial, got, want)
			}
		}
		// And a few singles.
		u := us[0]
		for _, p := range []string{"/v1/neighbors?user=%d&k=5", "/v1/topk?user=%d", "/v1/recommend?user=%d&n=7"} {
			path := fmt.Sprintf(p, u)
			wantResp, err := http.Get(direct.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := io.ReadAll(wantResp.Body)
			wantResp.Body.Close()
			if _, _, got := get(t, rt.Handler(), path); !bytes.Equal(got, want) {
				t.Fatalf("%s: routed single differs\nrouted: %s\ndirect: %s", path, got, want)
			}
		}
	}
}

// TestFailoverAndPartial: with two replicas, killing one must be
// invisible (failover); killing both must degrade to empty fills with
// the partial header — never a failed request.
func TestFailoverAndPartial(t *testing.T) {
	ix := testIndex(t)
	_, live := startShard(t, ix)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "shard down", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)
	full := frh.BucketRange{Lo: 1, Hi: frh.DefaultShardBuckets}
	rt := newRouter(t, Config{
		HedgeAfter: -1,
		Shards:     []ShardSpec{{ID: 0, Range: full, Replicas: []string{dead.URL, live.URL}}},
	})

	// Every request must succeed despite the 500ing replica being first
	// in some rotations.
	for i := 0; i < 8; i++ {
		code, hdr, body := get(t, rt.Handler(), "/v1/neighbors?user=3")
		if code != 200 || hdr.Get(HeaderPartial) != "" {
			t.Fatalf("try %d: status %d partial=%q body=%s", i, code, hdr.Get(HeaderPartial), body)
		}
	}
	if rt.Stats().failovers.Load() == 0 {
		t.Fatal("no failovers recorded despite a dead replica")
	}

	// All replicas dead: 200 + partial + the exact empty fill.
	rtDead := newRouter(t, Config{
		HedgeAfter: -1, UpstreamTimeout: 200 * time.Millisecond,
		Shards: []ShardSpec{{ID: 0, Range: full, Replicas: []string{dead.URL}}},
	})
	code, hdr, body := get(t, rtDead.Handler(), "/v1/topk?user=5")
	if code != 200 {
		t.Fatalf("dead shard must degrade, got status %d: %s", code, body)
	}
	if hdr.Get(HeaderPartial) != "1" {
		t.Fatalf("partial header = %q, want 1", hdr.Get(HeaderPartial))
	}
	if want := `{"user":5,"neighbors":[]}`; strings.TrimRight(string(body), "\n") != want {
		t.Fatalf("degraded fill = %s, want %s", body, want)
	}
	code, hdr, body = post(t, rtDead.Handler(), "/v1/recommend", `{"users":[1,2,3],"n":5}`)
	if code != 200 || hdr.Get(HeaderPartial) != "3" {
		t.Fatalf("degraded batch: status %d partial=%q body=%s", code, hdr.Get(HeaderPartial), body)
	}
	var env struct {
		Results []recommendResult `json:"results"`
	}
	if err := json.Unmarshal(body, &env); err != nil || len(env.Results) != 3 {
		t.Fatalf("degraded batch body malformed: %s (%v)", body, err)
	}
	for i, r := range env.Results {
		if r.User != int32(i+1) || len(r.Items) != 0 {
			t.Fatalf("degraded batch result %d = %+v", i, r)
		}
	}
	if rtDead.Stats().partials.Load() != 2 {
		t.Fatalf("partials counter = %d, want 2", rtDead.Stats().partials.Load())
	}
}

// TestHedging: a stalled replica must not stall the request — the
// hedge fires and the fast replica answers.
func TestHedging(t *testing.T) {
	ix := testIndex(t)
	_, fast := startShard(t, ix)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
		http.Error(w, "too slow", http.StatusInternalServerError)
	}))
	t.Cleanup(slow.Close)
	rt := newRouter(t, Config{
		HedgeAfter: 30 * time.Millisecond, UpstreamTimeout: 5 * time.Second,
		Shards: []ShardSpec{{ID: 0, Range: frh.BucketRange{Lo: 1, Hi: frh.DefaultShardBuckets},
			Replicas: []string{slow.URL, fast.URL}}},
	})
	start := time.Now()
	code, _, body := get(t, rt.Handler(), "/v1/neighbors?user=1")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("hedge did not rescue the request: took %v", d)
	}
	if rt.Stats().hedges.Load() == 0 {
		t.Fatal("no hedged try recorded")
	}
}

// TestEpochSkewSurfaced is the regression test for the degradation
// satellite: a replica stuck on an old epoch after a hot swap must
// surface on /statsz — both in the per-shard health and through the
// RecordReloadFailure plumbing (kind "epoch-skew").
func TestEpochSkewSurfaced(t *testing.T) {
	ix := testIndex(t)
	srvA, repA := startShard(t, ix)
	_, repB := startShard(t, ix)
	rt := newRouter(t, Config{
		Shards: []ShardSpec{{ID: 0, Range: frh.BucketRange{Lo: 1, Hi: frh.DefaultShardBuckets},
			Replicas: []string{repA.URL, repB.URL}}},
	})
	rt.PollHealth()
	if sec := rt.routerSection(); sec.EpochSkew {
		t.Fatal("skew reported before any swap")
	}

	// Hot-swap replica A only: B is now stuck on epoch 1.
	srvA.Swap(ix)
	rt.PollHealth()
	sec := rt.routerSection()
	if !sec.EpochSkew || !sec.Shards[0].EpochSkew {
		t.Fatalf("epoch skew not surfaced: %+v", sec)
	}
	if sec.EpochMin != 1 || sec.EpochMax != 2 {
		t.Fatalf("epoch bounds [%d, %d], want [1, 2]", sec.EpochMin, sec.EpochMax)
	}
	snap := rt.Stats().Snapshot()
	if snap.ReloadFailures != 1 || snap.LastReloadKind != "epoch-skew" {
		t.Fatalf("skew not routed through reload-failure plumbing: failures=%d kind=%q",
			snap.ReloadFailures, snap.LastReloadKind)
	}
	// Polling again while still skewed must not re-count the incident.
	rt.PollHealth()
	if n := rt.Stats().Snapshot().ReloadFailures; n != 1 {
		t.Fatalf("skew incident double-counted: %d", n)
	}
	// /statsz carries the router section on the wire.
	code, _, body := get(t, rt.Handler(), "/statsz")
	if code != 200 || !bytes.Contains(body, []byte(`"epoch_skew":true`)) {
		t.Fatalf("statsz does not surface skew: %d %s", code, body)
	}
	// Convergence clears the sticky bit so the NEXT incident records.
	srvA.Swap(ix) // A at 3, B still 1: still skewed, but sticky
	rt.PollHealth()
	if n := rt.Stats().Snapshot().ReloadFailures; n != 1 {
		t.Fatalf("still-skewed poll re-counted: %d", n)
	}
}

// TestMergeDeterminism: splitting one user's edges across fake shards
// and merging must reproduce the canonical frozen ordering exactly,
// including float32 tie-breaks by ascending id and overlap dedup.
func TestMergeDeterminism(t *testing.T) {
	full := neighborsResult{User: 9,
		IDs:  []int32{4, 11, 2, 30, 7},
		Sims: []float32{0.9, 0.7, 0.7, 0.5, 0.3},
	}
	// Shard rows: interleaved, with an overlap duplicate (id 2).
	a := neighborsResult{User: 9, IDs: []int32{11, 30}, Sims: []float32{0.7, 0.5}}
	b := neighborsResult{User: 9, IDs: []int32{4, 2, 7}, Sims: []float32{0.9, 0.7, 0.3}}
	c := neighborsResult{User: 9, IDs: []int32{2}, Sims: []float32{0.7}} // overlap copy
	for _, order := range [][]neighborsResult{{a, b, c}, {c, b, a}, {b, c, a}} {
		got := mergeNeighbors(order, 9, -1)
		// Ties (0.7) break by ascending id: 2 before 11.
		wantIDs := []int32{4, 2, 11, 30, 7}
		gj, _ := json.Marshal(got.IDs)
		wj, _ := json.Marshal(wantIDs)
		if !bytes.Equal(gj, wj) {
			t.Fatalf("merge order %v, want %v", got.IDs, wantIDs)
		}
	}
	if got := mergeNeighbors([]neighborsResult{a, b}, 9, 2); len(got.IDs) != 2 {
		t.Fatalf("k truncation failed: %v", got.IDs)
	}
	_ = full

	// topk: float64 wire values that collide only after float32
	// narrowing must still tie-break by id (the frozen graph's rule).
	x := topkResult{User: 1, Neighbors: []neighborJSON{{ID: 8, Sim: 0.30000001}}}
	y := topkResult{User: 1, Neighbors: []neighborJSON{{ID: 3, Sim: 0.30000002}}}
	got := mergeTopK([]topkResult{x, y}, 1, -1)
	if got.Neighbors[0].ID != 3 || got.Neighbors[1].ID != 8 {
		t.Fatalf("narrowed tie-break failed: %+v", got.Neighbors)
	}
}

// TestOverlapMigration: with overlapping ranges (a resharding window),
// answers must come back merged and deduplicated from both owners.
func TestOverlapMigration(t *testing.T) {
	ix := testIndex(t)
	// Both "shards" serve the full index: the overlap window sees the
	// same rows twice and must dedup to the single-snapshot answer.
	_, s0 := startShard(t, ix)
	_, s1 := startShard(t, ix)
	_, direct := startShard(t, ix)
	half := uint32(frh.DefaultShardBuckets / 2)
	rt := newRouter(t, Config{Shards: []ShardSpec{
		{ID: 0, Range: frh.BucketRange{Lo: 1, Hi: half + 200}, Replicas: []string{s0.URL}},
		{ID: 1, Range: frh.BucketRange{Lo: half - 200, Hi: frh.DefaultShardBuckets}, Replicas: []string{s1.URL}},
	}})
	// Find a user inside the overlap window.
	var u int32 = -1
	for cand := int32(0); cand < int32(ix.NumUsers()); cand++ {
		key := frh.ShardKey(cand, frh.DefaultShardBuckets)
		if key >= half-200 && key <= half+200 {
			u = cand
			break
		}
	}
	if u < 0 {
		t.Fatal("no user in the overlap window")
	}
	path := fmt.Sprintf("/v1/neighbors?user=%d&k=5", u)
	wantResp, err := http.Get(direct.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(wantResp.Body)
	wantResp.Body.Close()
	code, _, got := get(t, rt.Handler(), path)
	if code != 200 {
		t.Fatalf("overlap single: status %d: %s", code, got)
	}
	if !bytes.Equal(bytes.TrimRight(got, "\n"), bytes.TrimRight(want, "\n")) {
		t.Fatalf("overlap merge differs from single snapshot\nrouted: %s\ndirect: %s", got, want)
	}
	// Batch with the overlap user in the middle.
	body := fmt.Sprintf(`{"users":[0,%d,1],"k":5}`, u)
	code, _, got = post(t, rt.Handler(), "/v1/neighbors", body)
	if code != 200 {
		t.Fatalf("overlap batch: status %d: %s", code, got)
	}
	var env struct {
		Results []neighborsResult `json:"results"`
	}
	if err := json.Unmarshal(got, &env); err != nil || len(env.Results) != 3 {
		t.Fatalf("overlap batch malformed: %s (%v)", got, err)
	}
	if env.Results[1].User != u {
		t.Fatalf("overlap batch order broken: %+v", env.Results[1])
	}
	wantIDs, _ := ix.Neighbors(u)
	if k := 5; len(wantIDs) > k {
		wantIDs = wantIDs[:k]
	}
	gj, _ := json.Marshal(env.Results[1].IDs)
	wj, _ := json.Marshal(wantIDs)
	if !bytes.Equal(gj, wj) {
		t.Fatalf("overlap batch ids %v, want %v", env.Results[1].IDs, wantIDs)
	}
}

// TestRouterValidation: malformed requests are refused at the router
// without touching any shard.
func TestRouterValidation(t *testing.T) {
	// No shard server at all: validation failures must never fan out.
	rt := newRouter(t, Config{
		Shards: []ShardSpec{{ID: 0, Range: frh.BucketRange{Lo: 1, Hi: frh.DefaultShardBuckets},
			Replicas: []string{"http://127.0.0.1:1"}}},
	})
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{http.MethodGet, "/v1/neighbors?user=notanint", "", 400},
		{http.MethodPost, "/v1/neighbors", `{"users":[]}`, 400},
		{http.MethodPost, "/v1/topk", `not json`, 400},
		{http.MethodPost, "/v1/recommend", `{"users":[1],"n":100000}`, 400},
		{http.MethodDelete, "/v1/neighbors", "", 405},
	} {
		var code int
		if tc.method == http.MethodGet {
			code, _, _ = get(t, rt.Handler(), tc.path)
		} else {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			rt.Handler().ServeHTTP(rec, req)
			code = rec.Code
		}
		if code != tc.want {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, code, tc.want)
		}
	}
	if rt.Stats().upstreamErrs.Load() != 0 {
		t.Fatal("validation failures reached the upstream path")
	}
}

// TestRoutedMappedShards: a routed deployment whose shard replicas
// serve zero-copy mapped snapshots must answer byte-identically to a
// direct copy-decoded server — the sharded tier inherits the load-mode
// equivalence guarantee end to end.
func TestRoutedMappedShards(t *testing.T) {
	ix := testIndex(t)
	snap := filepath.Join(t.TempDir(), "shard.c2")
	if err := ix.Save(snap); err != nil {
		t.Fatal(err)
	}
	cpIx, err := c2knn.LoadIndexMode(snap, c2knn.LoadCopy)
	if err != nil {
		t.Fatal(err)
	}
	mmIx, err := c2knn.LoadIndexMode(snap, c2knn.LoadMMap)
	if err != nil {
		t.Skipf("mmap unavailable on this platform: %v", err)
	}
	defer mmIx.Close()
	if !mmIx.Mapped() {
		t.Fatal("shard index did not load as a mapping")
	}
	_, direct := startShard(t, cpIx)
	_, shardSrv := startShard(t, mmIx)
	rt := newRouter(t, Config{
		Shards: []ShardSpec{{ID: 0, Range: frh.BucketRange{Lo: 1, Hi: frh.DefaultShardBuckets}, Replicas: []string{shardSrv.URL}}},
	})

	for _, u := range []int32{0, 3, 17, 256, 1<<30 - 1} {
		for _, p := range []string{"/v1/neighbors?user=%d&k=5", "/v1/topk?user=%d&k=4", "/v1/recommend?user=%d&n=10"} {
			path := fmt.Sprintf(p, u)
			wantResp, err := http.Get(direct.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := io.ReadAll(wantResp.Body)
			wantResp.Body.Close()
			code, _, got := get(t, rt.Handler(), path)
			if code != wantResp.StatusCode || !bytes.Equal(got, want) {
				t.Fatalf("%s: mapped-shard routed answer differs (status %d vs %d)\nrouted: %s\ndirect: %s",
					path, code, wantResp.StatusCode, got, want)
			}
		}
	}
}
