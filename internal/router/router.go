// Package router implements the scatter-gather tier of the sharded
// serving stack: a stateless process that owns an immutable-after-start
// shard table (bucket range → replica addresses, loaded from a persist
// shard manifest) and fans /v1/{neighbors,topk,recommend} requests out
// to shard daemons over HTTP.
//
// Design, from the request inward:
//
//   - Routing is by shard key: frh.ShardKey hashes the user id into the
//     manifest's bucket space and the owning shard is the range holding
//     that bucket. The router holds no profiles and no graph — only the
//     table — so it is trivially replicable and restarts in
//     milliseconds.
//   - Responses are moved, not re-encoded. A single-user GET is proxied
//     verbatim from the owning shard; a batched POST is split into
//     per-shard sub-batches and the reply stitched back together from
//     the shards' own result bytes in the caller's user order. Routed
//     answers are therefore byte-identical to what one process over one
//     whole snapshot would serve (router_test.go proves it), and the
//     happy path never pays a float re-encode.
//   - Degradation is graceful and bounded. Each upstream try has its
//     own timeout; a failed try fails over to the next replica; a slow
//     try is hedged to another replica after Config.HedgeAfter. Only
//     when every replica of a shard has failed does the router answer
//     anyway — 200 with empty results for that shard's users and an
//     X-C2-Partial header carrying the count — so one dead shard
//     degrades answers instead of failing whole requests.
//   - A background poll watches every replica's /healthz: routing
//     prefers healthy replicas, and disagreement about the serving
//     epoch between replicas of one shard (a hot swap that took on one
//     replica and not the other) is surfaced on /statsz and through the
//     shard tier's reload-failure plumbing (kind "epoch-skew").
//   - Overlapping bucket ranges — a resharding migration serving users
//     from both their old and new shard — take a slow path: typed
//     decode, deterministic merge (similarity descending, ties by
//     ascending id; exactly the frozen CSR order), re-encode.
//
// The router reuses the shard daemon's middleware stack (request IDs
// propagate through X-Request-ID, so one request is traceable across
// tiers), its Stats counters, and its latency histogram layout.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"c2knn/internal/frh"
	"c2knn/internal/server"
	"c2knn/internal/server/middleware"
)

// HeaderPartial is set on responses that were answered with degraded
// (partial) results because some shard could not be reached; its value
// is the number of users answered with empty fills.
const HeaderPartial = "X-C2-Partial"

// ShardSpec names one shard of the table: its manifest id, the bucket
// range it owns, and the base URLs of its replicas (all serving the
// same shard snapshot).
type ShardSpec struct {
	ID       int
	Range    frh.BucketRange
	Replicas []string
}

// Config parameterizes a Router; the zero value of most fields gets
// sensible defaults.
type Config struct {
	// Buckets is the shard-key space size the table's ranges live in
	// (from the manifest; default frh.DefaultShardBuckets).
	Buckets int
	// Shards is the immutable shard table. Ranges must be sorted by Lo.
	Shards []ShardSpec
	// UpstreamTimeout bounds one upstream try (default 2s).
	UpstreamTimeout time.Duration
	// HedgeAfter launches a second try on another replica when the
	// first has not answered within it (default 500ms; negative
	// disables hedging).
	HedgeAfter time.Duration
	// HealthEvery is the replica health-poll period (default 2s;
	// negative disables the background loop — PollHealth still works).
	HealthEvery time.Duration
	// MaxBatch, MaxResults, MaxBodyBytes, RequestTimeout, MaxInFlight,
	// ShedRetryAfter mirror the shard daemon's limits (same defaults).
	MaxBatch       int
	MaxResults     int
	MaxBodyBytes   int64
	RequestTimeout time.Duration
	MaxInFlight    int
	ShedRetryAfter time.Duration
	// Logf receives panic and degradation reports; AccessLogf enables
	// access logging (one line per completed request).
	Logf       func(format string, args ...any)
	AccessLogf func(format string, args ...any)
	// Client overrides the upstream HTTP client (tests). The default
	// allows many idle connections per replica.
	Client *http.Client
}

func (c *Config) setDefaults() {
	if c.Buckets <= 0 {
		c.Buckets = frh.DefaultShardBuckets
	}
	if c.UpstreamTimeout <= 0 {
		c.UpstreamTimeout = 2 * time.Second
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 500 * time.Millisecond
	}
	if c.HealthEvery == 0 {
		c.HealthEvery = 2 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxResults <= 0 {
		c.MaxResults = 1000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256 * runtime.GOMAXPROCS(0)
	}
	if c.ShedRetryAfter <= 0 {
		c.ShedRetryAfter = time.Second
	}
	if c.Client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 256
		tr.MaxIdleConnsPerHost = 64
		c.Client = &http.Client{Transport: tr}
	}
}

// replica is one upstream address plus the health the poll loop last
// observed.
type replica struct {
	base     string
	healthy  atomic.Bool
	epoch    atomic.Uint64
	users    atomic.Int64
	deltaSeq atomic.Uint64 // upsert cursor the replica last reported (0: none)

	mu      sync.Mutex
	lastErr string
}

// shard is one row of the immutable table.
type shard struct {
	spec     ShardSpec
	replicas []*replica
	cursor   atomic.Uint32 // round-robin start for replica selection
}

// Router is the scatter-gather serving tier. Construct with New, mount
// Handler, and Close when done. The shard table is immutable after
// New; topology changes mean a new router (which starts stateless in
// milliseconds).
type Router struct {
	cfg     Config
	shards  []*shard
	ranges  []frh.BucketRange
	stats   *Stats
	handler http.Handler

	skewed      atomic.Bool // current epoch-skew state (edge-triggers the reload-failure record)
	deltaSkewed atomic.Bool // current delta-skew state (same edge discipline)
	healthWG    sync.WaitGroup
	healthCtx   context.Context
	stop        context.CancelFunc
}

// New builds a Router over cfg's shard table and starts the health
// loop. Every shard needs at least one replica; ranges must be valid
// in the bucket space and sorted by Lo (manifest order).
func New(cfg Config) (*Router, error) {
	cfg.setDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: need at least one shard")
	}
	rt := &Router{cfg: cfg, stats: newStats()}
	prevLo := uint32(0)
	for i, spec := range cfg.Shards {
		if err := spec.Range.Validate(cfg.Buckets); err != nil {
			return nil, fmt.Errorf("router: shard %d: %w", spec.ID, err)
		}
		if spec.Range.Lo < prevLo {
			return nil, fmt.Errorf("router: shard table not sorted by range at entry %d", i)
		}
		prevLo = spec.Range.Lo
		if len(spec.Replicas) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", spec.ID)
		}
		sh := &shard{spec: spec}
		for _, addr := range spec.Replicas {
			rep := &replica{base: addr}
			rep.healthy.Store(true) // optimistic until the first poll
			sh.replicas = append(sh.replicas, rep)
		}
		rt.shards = append(rt.shards, sh)
		rt.ranges = append(rt.ranges, spec.Range)
	}

	// Same hardening chain as the shard daemon (see server.New): the
	// query surface is observed, shed, body-capped and deadlined; the
	// operator surface bypasses all of it.
	observe := middleware.CountStatus(rt.stats.RecordStatus)
	queryStages := []middleware.Middleware{observe}
	if cfg.MaxInFlight > 0 {
		queryStages = append(queryStages,
			middleware.Shed(cfg.MaxInFlight, cfg.ShedRetryAfter, rt.stats.InFlightGauge(), rt.stats.RecordShed))
	}
	queryStages = append(queryStages, middleware.BodyLimit(cfg.MaxBodyBytes, rt.stats.RecordTooLarge))
	if cfg.RequestTimeout > 0 {
		queryStages = append(queryStages, middleware.Deadline(cfg.RequestTimeout))
	}
	query := func(h http.HandlerFunc) http.Handler { return middleware.Chain(h, queryStages...) }

	mux := http.NewServeMux()
	mux.Handle("/v1/neighbors", query(func(w http.ResponseWriter, r *http.Request) { rt.serveQuery(w, r, server.EpNeighbors) }))
	mux.Handle("/v1/topk", query(func(w http.ResponseWriter, r *http.Request) { rt.serveQuery(w, r, server.EpTopK) }))
	mux.Handle("/v1/recommend", query(func(w http.ResponseWriter, r *http.Request) { rt.serveQuery(w, r, server.EpRecommend) }))
	mux.Handle("/v1/upsert", query(rt.serveUpsert))
	mux.HandleFunc("/healthz", rt.serveHealthz)
	mux.HandleFunc("/statsz", rt.serveStatsz)
	mux.HandleFunc("/metrics", rt.serveMetrics)

	global := []middleware.Middleware{middleware.RequestID()}
	if cfg.AccessLogf != nil {
		global = append(global, middleware.AccessLog(cfg.AccessLogf))
	}
	global = append(global, middleware.Recover(cfg.Logf, func() {
		rt.stats.RecordPanic()
		rt.stats.RecordStatus(http.StatusInternalServerError)
	}))
	rt.handler = middleware.Chain(mux, global...)

	rt.healthCtx, rt.stop = context.WithCancel(context.Background())
	if cfg.HealthEvery > 0 {
		rt.healthWG.Add(1)
		go rt.healthLoop()
	}
	return rt, nil
}

// Handler returns the router's HTTP handler, wrapped in the hardening
// middleware stack.
func (rt *Router) Handler() http.Handler { return rt.handler }

// Stats exposes the router's counters.
func (rt *Router) Stats() *Stats { return rt.stats }

// Close stops the health loop. In-flight requests are unaffected.
func (rt *Router) Close() {
	rt.stop()
	rt.healthWG.Wait()
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

// ---- request handling ----

func (rt *Router) badRequest(w http.ResponseWriter, msg string) {
	rt.stats.RecordBadRequest()
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// upsertRefusal mirrors the shard daemon's typed 403 body so clients
// see one wire shape for "writes don't go here" across the tier.
type upsertRefusal struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// serveUpsert refuses writes with a typed 403: the router is a
// stateless read tier, and proxying an upsert to whichever replica a
// retry policy happened to pick would split the write stream across
// replicas — exactly the divergence the delta-skew probe exists to
// catch. Writes go to the shard's single writable daemon directly.
func (rt *Router) serveUpsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "upsert requires POST", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusForbidden, upsertRefusal{
		Error: "the router tier is read-only; send writes to the shard's writable daemon",
		Kind:  "read-only",
	})
}

func countParam(ep server.Endpoint) string {
	if ep == server.EpRecommend {
		return "n"
	}
	return "k"
}

func (rt *Router) serveQuery(w http.ResponseWriter, r *http.Request, ep server.Endpoint) {
	switch r.Method {
	case http.MethodGet:
		rt.serveSingle(w, r, ep)
	case http.MethodPost:
		rt.serveBatch(w, r, ep)
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "use GET for single queries, POST for batches", http.StatusMethodNotAllowed)
	}
}

// serveSingle answers a single-user GET: validate just enough to route,
// then proxy the owning shard's response verbatim — status, content
// type and body bytes — so a routed answer is indistinguishable from a
// direct one. Overlapping ownership (migration) takes the typed merge
// path; an unreachable shard degrades to an empty fill with the
// partial header.
func (rt *Router) serveSingle(w http.ResponseWriter, r *http.Request, ep server.Endpoint) {
	start := time.Now()
	q := r.URL.Query()
	user64, err := strconv.ParseInt(q.Get("user"), 10, 32)
	if err != nil {
		rt.badRequest(w, "user must be a 32-bit integer")
		return
	}
	u := int32(user64)
	owners := frh.OwnersOf(u, rt.cfg.Buckets, rt.ranges, nil)
	if len(owners) > 1 {
		rt.serveSingleMerged(w, r, ep, u, owners, start)
		return
	}
	if len(owners) == 0 {
		// A gap in the table (never the case for a validated manifest):
		// degrade rather than fail.
		rt.answerPartialSingle(w, ep, u, 1)
		rt.stats.RecordQuery(ep, time.Since(start), 1, false, false)
		return
	}
	res, err := rt.fetch(r.Context(), rt.shards[owners[0]], http.MethodGet, r.URL.Path, r.URL.RawQuery, nil, requestID(r))
	if err != nil {
		if wroteContextError(w, r, err, rt.stats) {
			return
		}
		rt.stats.RecordPartial()
		rt.answerPartialSingle(w, ep, u, 1)
		rt.stats.RecordQuery(ep, time.Since(start), 1, false, false)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	w.Write(res.body)
	if res.status == http.StatusOK {
		rt.stats.RecordQuery(ep, time.Since(start), 1, false, false)
	}
}

// serveSingleMerged fetches u's row from every owning shard (the
// overlap window of a migration) and merges deterministically.
func (rt *Router) serveSingleMerged(w http.ResponseWriter, r *http.Request, ep server.Endpoint, u int32, owners []int, start time.Time) {
	count, err := rt.parseCount(r.URL.Query().Get(countParam(ep)))
	if err != nil {
		rt.badRequest(w, countParam(ep)+" "+err.Error())
		return
	}
	bodies := make([][]byte, 0, len(owners))
	for _, o := range owners {
		res, ferr := rt.fetch(r.Context(), rt.shards[o], http.MethodGet, r.URL.Path, r.URL.RawQuery, nil, requestID(r))
		if ferr != nil || res.status != http.StatusOK {
			continue // merge what answered; partial if none did
		}
		bodies = append(bodies, res.body)
	}
	if len(bodies) == 0 {
		if err := r.Context().Err(); err != nil && wroteContextError(w, r, err, rt.stats) {
			return
		}
		rt.stats.RecordPartial()
		rt.answerPartialSingle(w, ep, u, 1)
		rt.stats.RecordQuery(ep, time.Since(start), 1, false, false)
		return
	}
	out, err := mergeBodies(ep, u, bodies, count)
	if err != nil {
		rt.logf("router: merge for user %d: %v", u, err)
		http.Error(w, "merge failure", http.StatusInternalServerError)
		return
	}
	if len(bodies) < len(owners) {
		rt.stats.RecordPartial()
		w.Header().Set(HeaderPartial, "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
	rt.stats.RecordQuery(ep, time.Since(start), 1, false, false)
}

// parseCount validates an explicit k/n parameter against the router's
// own bound; 0 means "absent, let the shard apply its default".
func (rt *Router) parseCount(raw string) (int, error) {
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("must be a positive integer, got %q", raw)
	}
	if v > rt.cfg.MaxResults {
		return 0, fmt.Errorf("exceeds the maximum of %d", rt.cfg.MaxResults)
	}
	return v, nil
}

// mergeBodies decodes per-shard single-user bodies and re-encodes the
// deterministic merge.
func mergeBodies(ep server.Endpoint, u int32, bodies [][]byte, count int) ([]byte, error) {
	if count == 0 {
		count = -1 // no explicit bound; merged length is bounded by shard defaults
	}
	switch ep {
	case server.EpNeighbors:
		rows := make([]neighborsResult, 0, len(bodies))
		for _, b := range bodies {
			var row neighborsResult
			if err := json.Unmarshal(b, &row); err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		return json.Marshal(mergeNeighbors(rows, u, count))
	case server.EpTopK:
		rows := make([]topkResult, 0, len(bodies))
		for _, b := range bodies {
			var row topkResult
			if err := json.Unmarshal(b, &row); err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		return json.Marshal(mergeTopK(rows, u, count))
	default:
		// Recommendation lists carry no scores to merge by; the first
		// owner (the user's pre-migration home) answers.
		return bodies[0], nil
	}
}

// answerPartialSingle writes the empty fill for one user: the exact
// bytes a shard serves for an unknown user, so degraded answers have
// the same shape as real ones.
func (rt *Router) answerPartialSingle(w http.ResponseWriter, ep server.Endpoint, u int32, n int) {
	w.Header().Set(HeaderPartial, strconv.Itoa(n))
	w.Header().Set("Content-Type", "application/json")
	w.Write(emptyFill(ep, u))
}

func emptyFill(ep server.Endpoint, u int32) []byte {
	var v any
	switch ep {
	case server.EpNeighbors:
		v = neighborsResult{User: u, IDs: []int32{}, Sims: []float32{}}
	case server.EpTopK:
		v = topkResult{User: u, Neighbors: []neighborJSON{}}
	default:
		v = recommendResult{User: u, Items: []int32{}}
	}
	b, _ := json.Marshal(v)
	return b
}

// serveBatch scatters a batched POST: users are grouped by owning
// shard, sub-batches fan out concurrently, and the response is
// stitched from the shards' own per-user result bytes in the caller's
// order. Shards that cannot be reached contribute empty fills and the
// partial header instead of failing the request.
func (rt *Router) serveBatch(w http.ResponseWriter, r *http.Request, ep server.Endpoint) {
	start := time.Now()
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			rt.stats.RecordTooLarge()
			w.Header().Set("Connection", "close")
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
				Error: fmt.Sprintf("request body exceeds the %d-byte limit", rt.cfg.MaxBodyBytes)})
			return
		}
		rt.badRequest(w, "invalid JSON body: "+err.Error())
		return
	}
	if len(req.Users) == 0 {
		rt.badRequest(w, `"users" must be a non-empty array`)
		return
	}
	if len(req.Users) > rt.cfg.MaxBatch {
		rt.badRequest(w, fmt.Sprintf("batch of %d users exceeds the maximum of %d", len(req.Users), rt.cfg.MaxBatch))
		return
	}
	count := req.K
	if ep == server.EpRecommend {
		count = req.N
	}
	if count < 0 || count > rt.cfg.MaxResults {
		rt.badRequest(w, fmt.Sprintf("%s must be in [1, %d]", countParam(ep), rt.cfg.MaxResults))
		return
	}

	// Group positions by owning shard. Overlap users (several owners)
	// are handled one by one through the merge path.
	type group struct{ users, positions []int32 }
	groups := make(map[int]*group)
	var overlapPos []int32
	var ownerScratch []int
	for i, u := range req.Users {
		ownerScratch = frh.OwnersOf(u, rt.cfg.Buckets, rt.ranges, ownerScratch[:0])
		switch len(ownerScratch) {
		case 1:
			g := groups[ownerScratch[0]]
			if g == nil {
				g = &group{}
				groups[ownerScratch[0]] = g
			}
			g.users = append(g.users, u)
			g.positions = append(g.positions, int32(i))
		default:
			overlapPos = append(overlapPos, int32(i))
		}
	}

	results := make([][]byte, len(req.Users))
	partial := 0
	var partialMu sync.Mutex
	var wg sync.WaitGroup
	for shardIdx, g := range groups {
		wg.Add(1)
		go func(shardIdx int, g *group) {
			defer wg.Done()
			raws, err := rt.fetchSubBatch(r.Context(), rt.shards[shardIdx], r.URL.Path, g.users, ep, count, requestID(r))
			if err != nil {
				rt.logf("router: shard %d unreachable for %d users: %v", rt.shards[shardIdx].spec.ID, len(g.users), err)
				partialMu.Lock()
				partial += len(g.users)
				partialMu.Unlock()
				for j, pos := range g.positions {
					results[pos] = emptyFill(ep, g.users[j])
				}
				return
			}
			for j, pos := range g.positions {
				results[pos] = raws[j]
			}
		}(shardIdx, g)
	}
	for _, pos := range overlapPos {
		wg.Add(1)
		go func(pos int32) {
			defer wg.Done()
			u := req.Users[pos]
			owners := frh.OwnersOf(u, rt.cfg.Buckets, rt.ranges, nil)
			body, degraded := rt.mergedUser(r.Context(), ep, u, owners, count, requestID(r))
			results[pos] = body
			if degraded {
				partialMu.Lock()
				partial++
				partialMu.Unlock()
			}
		}(pos)
	}
	wg.Wait()

	if err := r.Context().Err(); err != nil && partial > 0 {
		// The degradation was the router's own deadline, not a shard
		// failure: honor the hardening contract and refuse.
		if wroteContextError(w, r, err, rt.stats) {
			return
		}
	}

	// Stitch: the shards marshaled each element exactly as a single
	// snapshot would; concatenation in request order reproduces the
	// single-process body byte for byte.
	var buf bytes.Buffer
	buf.Grow(16 + len(results)*64)
	buf.WriteString(`{"results":[`)
	for i, raw := range results {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(raw)
	}
	buf.WriteString("]}")
	if partial > 0 {
		rt.stats.RecordPartial()
		w.Header().Set(HeaderPartial, strconv.Itoa(partial))
	}
	w.Header().Set("Content-Type", "application/json")
	buf.WriteTo(w)
	rt.stats.RecordQuery(ep, time.Since(start), len(req.Users), true, false)
}

// mergedUser answers one overlap user for the batch path; degraded is
// true when not every owner contributed.
func (rt *Router) mergedUser(ctx context.Context, ep server.Endpoint, u int32, owners []int, count int, rid string) (body []byte, degraded bool) {
	var bodies [][]byte
	for _, o := range owners {
		raws, err := rt.fetchSubBatch(ctx, rt.shards[o], "/v1/"+ep.String(), []int32{u}, ep, count, rid)
		if err != nil {
			continue
		}
		bodies = append(bodies, raws[0])
	}
	if len(bodies) == 0 {
		return emptyFill(ep, u), true
	}
	out, err := mergeBodies(ep, u, bodies, count)
	if err != nil {
		return emptyFill(ep, u), true
	}
	return out, len(bodies) < len(owners)
}

// batchEnvelope decodes a shard's batch response without touching the
// per-user payloads.
type batchEnvelope struct {
	Results []json.RawMessage `json:"results"`
}

// fetchSubBatch POSTs one shard's sub-batch and returns the per-user
// raw result bytes in the order of users.
func (rt *Router) fetchSubBatch(ctx context.Context, sh *shard, path string, users []int32, ep server.Endpoint, count int, rid string) ([]json.RawMessage, error) {
	sub := batchRequest{Users: users}
	if ep == server.EpRecommend {
		sub.N = count
	} else {
		sub.K = count
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return nil, err
	}
	res, err := rt.fetch(ctx, sh, http.MethodPost, path, "", body, rid)
	if err != nil {
		return nil, err
	}
	if res.status != http.StatusOK {
		return nil, fmt.Errorf("shard %d answered %d: %s", sh.spec.ID, res.status, truncate(res.body, 200))
	}
	var env batchEnvelope
	if err := json.Unmarshal(res.body, &env); err != nil {
		return nil, fmt.Errorf("shard %d batch response: %w", sh.spec.ID, err)
	}
	if len(env.Results) != len(users) {
		return nil, fmt.Errorf("shard %d returned %d results for %d users", sh.spec.ID, len(env.Results), len(users))
	}
	return env.Results, nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

// ---- upstream fetch: replica selection, failover, hedging ----

type upstreamResult struct {
	status int
	body   []byte
}

func requestID(r *http.Request) string {
	return middleware.GetRequestID(r.Context())
}

// wroteContextError maps the router's own deadline/cancellation onto
// the wire the way the shard tier does (503 / silent drop); returns
// false for other errors.
func wroteContextError(w http.ResponseWriter, r *http.Request, err error, st *Stats) bool {
	switch {
	case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() != nil:
		st.RecordTimeout()
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "request deadline expired"})
		return true
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		return true
	}
	return false
}

// fetch issues one logical upstream request to sh with failover and
// hedging: replicas are tried healthy-first in round-robin order; a
// failed try (transport error or 5xx) immediately launches the next
// replica; a try that is merely slow launches a hedge after
// Config.HedgeAfter. The first 2xx–4xx response wins. Every try is a
// fan-out latency observation.
func (rt *Router) fetch(ctx context.Context, sh *shard, method, path, rawQuery string, body []byte, rid string) (*upstreamResult, error) {
	order := rt.replicaOrder(sh)
	results := make(chan error, len(order))
	var winner atomic.Pointer[upstreamResult]
	tryCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	launched := 0
	launch := func() {
		rep := order[launched]
		launched++
		go func() {
			res, err := rt.tryOne(tryCtx, rep, method, path, rawQuery, body, rid)
			if err == nil {
				winner.CompareAndSwap(nil, res)
			}
			results <- err
		}()
	}

	launch()
	var hedgeC <-chan time.Time
	if rt.cfg.HedgeAfter > 0 && len(order) > 1 {
		t := time.NewTimer(rt.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	fails := 0
	var lastErr error
	for {
		select {
		case err := <-results:
			if err == nil {
				return winner.Load(), nil
			}
			lastErr = err
			rt.stats.upstreamErrs.Add(1)
			fails++
			if launched < len(order) {
				rt.stats.failovers.Add(1)
				launch()
			} else if fails == launched {
				return nil, lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < len(order) {
				rt.stats.hedges.Add(1)
				launch()
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// replicaOrder returns sh's replicas healthy-first, rotated by the
// round-robin cursor so load spreads across replicas.
func (rt *Router) replicaOrder(sh *shard) []*replica {
	n := len(sh.replicas)
	start := int(sh.cursor.Add(1)-1) % n
	order := make([]*replica, 0, n)
	var sick []*replica
	for i := 0; i < n; i++ {
		rep := sh.replicas[(start+i)%n]
		if rep.healthy.Load() {
			order = append(order, rep)
		} else {
			sick = append(sick, rep)
		}
	}
	return append(order, sick...) // sick replicas are last resorts, not excluded
}

// tryOne performs one HTTP try against one replica within the upstream
// timeout. 5xx and transport failures are errors (the caller fails
// over); anything else is a result to proxy.
func (rt *Router) tryOne(ctx context.Context, rep *replica, method, path, rawQuery string, body []byte, rid string) (*upstreamResult, error) {
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.UpstreamTimeout)
	defer cancel()
	url := rep.base + path
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if rid != "" {
		req.Header.Set(middleware.HeaderRequestID, rid)
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		rt.noteReplicaError(rep, err)
		rt.stats.Fanout.Record(time.Since(start))
		return nil, fmt.Errorf("replica %s: %w", rep.base, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	rt.stats.Fanout.Record(time.Since(start))
	if err != nil {
		rt.noteReplicaError(rep, err)
		return nil, fmt.Errorf("replica %s: read: %w", rep.base, err)
	}
	if resp.StatusCode >= 500 {
		return nil, fmt.Errorf("replica %s: status %d", rep.base, resp.StatusCode)
	}
	return &upstreamResult{status: resp.StatusCode, body: b}, nil
}

// noteReplicaError marks rep unhealthy (the health loop restores it)
// and remembers the error for /statsz.
func (rt *Router) noteReplicaError(rep *replica, err error) {
	if errors.Is(err, context.Canceled) {
		return // a lost hedge race, not a sick replica
	}
	rep.healthy.Store(false)
	rep.mu.Lock()
	rep.lastErr = err.Error()
	rep.mu.Unlock()
}
