package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// healthResponse mirrors the shard daemon's /healthz body.
type healthResponse struct {
	Status   string `json:"status"`
	Users    int    `json:"users"`
	K        int    `json:"k"`
	Epoch    uint64 `json:"epoch"`
	DeltaSeq uint64 `json:"delta_seq"`
}

// healthLoop polls every replica's /healthz on the configured period.
func (rt *Router) healthLoop() {
	defer rt.healthWG.Done()
	t := time.NewTicker(rt.cfg.HealthEvery)
	defer t.Stop()
	rt.PollHealth() // prime immediately so routing starts informed
	for {
		select {
		case <-t.C:
			rt.PollHealth()
		case <-rt.healthCtx.Done():
			return
		}
	}
}

// PollHealth probes every replica once, synchronously, updating health
// and epoch state. Exported so tests (and operators via a future admin
// hook) can force a poll instead of waiting a period.
//
// Epoch-skew detection lives here: after a hot swap, every replica of
// a shard must converge to the new snapshot epoch. A replica stuck on
// an old epoch while a sibling serves a newer one means the swap
// half-landed — users of that shard get answers from two different
// graph versions depending on which replica wins. That is the same
// operational failure class as a refused reload, so it is surfaced
// through the same plumbing: RecordReloadFailure with kind
// "epoch-skew", which /statsz and /metrics already expose. The record
// fires on the skewed→converged edges only, not per poll, so the
// counter counts incidents rather than polls.
func (rt *Router) PollHealth() {
	ctx, cancel := context.WithTimeout(rt.healthCtx, rt.cfg.UpstreamTimeout)
	defer cancel()

	skew := false
	var skewMsg string
	dSkew := false
	var dSkewMsg string
	for _, sh := range rt.shards {
		var lo, hi uint64
		seen := false
		var dLo, dHi uint64
		dSeen := false
		for _, rep := range sh.replicas {
			h, err := rt.probe(ctx, rep)
			if err != nil {
				rt.noteReplicaError(rep, err)
				continue
			}
			rep.healthy.Store(h.Status == "ok")
			rep.epoch.Store(h.Epoch)
			rep.users.Store(int64(h.Users))
			rep.deltaSeq.Store(h.DeltaSeq)
			rep.mu.Lock()
			rep.lastErr = ""
			rep.mu.Unlock()
			if h.Epoch > 0 {
				if !seen || h.Epoch < lo {
					lo = h.Epoch
				}
				if !seen || h.Epoch > hi {
					hi = h.Epoch
				}
				seen = true
				if !dSeen || h.DeltaSeq < dLo {
					dLo = h.DeltaSeq
				}
				if !dSeen || h.DeltaSeq > dHi {
					dHi = h.DeltaSeq
				}
				dSeen = true
			}
		}
		if seen && lo != hi && !skew {
			skew = true
			skewMsg = fmt.Sprintf("shard %d replicas disagree about the serving epoch (min %d, max %d): a hot swap half-landed", sh.spec.ID, lo, hi)
		} else if seen && lo != hi {
			skew = true
		}
		// Delta skew is only meaningful between replicas on the same
		// epoch: across a half-landed swap the sequence cursors restart,
		// and the epoch skew above already covers that incident.
		if dSeen && lo == hi && dLo != dHi {
			if !dSkew {
				dSkewMsg = fmt.Sprintf("shard %d replicas disagree about the upsert cursor (min %d, max %d): writes are landing on more than one replica, or a read replica missed a compaction", sh.spec.ID, dLo, dHi)
			}
			dSkew = true
		}
	}
	if skew && !rt.skewed.Swap(true) {
		rt.stats.RecordReloadFailure("epoch-skew", skewMsg)
		rt.logf("router: %s", skewMsg)
	} else if !skew {
		rt.skewed.Store(false)
	}
	if dSkew && !rt.deltaSkewed.Swap(true) {
		rt.stats.RecordReloadFailure("delta-skew", dSkewMsg)
		rt.logf("router: %s", dSkewMsg)
	} else if !dSkew {
		rt.deltaSkewed.Store(false)
	}
}

func (rt *Router) probe(ctx context.Context, rep *replica) (*healthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

// routerHealth is the router's own /healthz body: overall status
// ("ok" when every shard has at least one healthy replica, "degraded"
// otherwise), table shape, and replica health counts.
type routerHealth struct {
	Status          string `json:"status"`
	Shards          int    `json:"shards"`
	Buckets         int    `json:"buckets"`
	ReplicasHealthy int    `json:"replicas_healthy"`
	ReplicasTotal   int    `json:"replicas_total"`
}

func (rt *Router) serveHealthz(w http.ResponseWriter, r *http.Request) {
	h := routerHealth{Status: "ok", Shards: len(rt.shards), Buckets: rt.cfg.Buckets}
	for _, sh := range rt.shards {
		anyUp := false
		for _, rep := range sh.replicas {
			h.ReplicasTotal++
			if rep.healthy.Load() {
				h.ReplicasHealthy++
				anyUp = true
			}
		}
		if !anyUp {
			h.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, h)
}
