package router

import (
	"cmp"
	"slices"
)

// Wire shapes, mirrored from internal/server. The router re-marshals
// results only on the overlap (migration) path; everywhere else it
// moves the shard's bytes verbatim, so these structs exist for the
// rare merge case and for the empty fills of degraded responses. The
// JSON tags must stay byte-for-byte in sync with the server's — the
// equivalence tests in router_test.go enforce it.

type batchRequest struct {
	Users []int32 `json:"users"`
	K     int     `json:"k,omitempty"`
	N     int     `json:"n,omitempty"`
}

type neighborsResult struct {
	User int32     `json:"user"`
	IDs  []int32   `json:"ids"`
	Sims []float32 `json:"sims"`
}

type neighborJSON struct {
	ID  int32   `json:"id"`
	Sim float64 `json:"sim"`
}

type topkResult struct {
	User      int32          `json:"user"`
	Neighbors []neighborJSON `json:"neighbors"`
}

type recommendResult struct {
	User  int32   `json:"user"`
	Items []int32 `json:"items"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// mergeNeighbors combines several shards' adjacency rows for one user
// into the canonical single-snapshot ordering: similarity descending,
// ties by ascending id — exactly the Frozen CSR sort (knng
// sortNeighborsNarrowed), so a merged answer is bit-identical to what
// one snapshot holding all the edges would serve. Duplicate ids (the
// overlap window serves a user from both its old and new shard) are
// deduplicated; rows disagree only during a migration, in which case
// the higher similarity wins, keeping the result a valid top-k. The
// result is truncated to k.
func mergeNeighbors(rows []neighborsResult, user int32, k int) neighborsResult {
	type edge struct {
		id  int32
		sim float32
	}
	var edges []edge
	for _, r := range rows {
		for i := range r.IDs {
			edges = append(edges, edge{r.IDs[i], r.Sims[i]})
		}
	}
	edges = dedupSort(edges, func(e edge) int32 { return e.id }, func(a, b edge) int {
		if a.sim != b.sim {
			if a.sim > b.sim {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.id, b.id)
	})
	if k >= 0 && len(edges) > k {
		edges = edges[:k]
	}
	out := neighborsResult{User: user, IDs: []int32{}, Sims: []float32{}}
	for _, e := range edges {
		out.IDs = append(out.IDs, e.id)
		out.Sims = append(out.Sims, e.sim)
	}
	return out
}

// mergeTopK is mergeNeighbors for the /v1/topk float64 wire shape. The
// tie-break narrows to float32 before comparing, matching the frozen
// graph's stored precision so router and shard order ties identically.
func mergeTopK(rows []topkResult, user int32, k int) topkResult {
	var nbs []neighborJSON
	for _, r := range rows {
		nbs = append(nbs, r.Neighbors...)
	}
	nbs = dedupSort(nbs, func(n neighborJSON) int32 { return n.ID }, func(a, b neighborJSON) int {
		as, bs := float32(a.Sim), float32(b.Sim)
		if as != bs {
			if as > bs {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.ID, b.ID)
	})
	if k >= 0 && len(nbs) > k {
		nbs = nbs[:k]
	}
	if nbs == nil {
		nbs = []neighborJSON{}
	}
	return topkResult{User: user, Neighbors: nbs}
}

// dedupSort sorts es by less and drops later duplicates (same key).
// Sorting first makes "later" deterministic: the best-ranked copy of a
// key survives regardless of shard arrival order.
func dedupSort[E any](es []E, key func(E) int32, less func(a, b E) int) []E {
	slices.SortFunc(es, less)
	seen := make(map[int32]struct{}, len(es))
	out := es[:0]
	for _, e := range es {
		if _, dup := seen[key(e)]; dup {
			continue
		}
		seen[key(e)] = struct{}{}
		out = append(out, e)
	}
	return out
}
