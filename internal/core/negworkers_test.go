package core

import "testing"

func TestNegativeWorkersClamped(t *testing.T) {
	b, _ := testData(t)
	g, _ := Build(b.data, b.gf, Options{K: 10, B: 128, T: 4, MaxClusterSize: 100, Workers: -1, Seed: 3})
	if g.NumUsers() != b.data.NumUsers() {
		t.Fatal("negative workers broke the build")
	}
}
