// Package core implements Cluster-and-Conquer (C²), the paper's primary
// contribution (§II). C² computes an approximate KNN graph in three
// steps:
//
//  1. Clustering — FastRandomHash partitions users into t×b clusters
//     (recursively split above MaxClusterSize), giving the computation a
//     high initial graph locality instead of the greedy algorithms'
//     random start.
//  2. Scheduling and local KNN — clusters are processed largest-first by
//     a worker pool; each cluster's partial KNN graph is computed in
//     isolation, by brute force when |C| < ρ·k² and by Hyrec otherwise
//     (Algorithm 2).
//  3. Merging — partial graphs are folded user-by-user into bounded
//     k-heaps, reusing the similarities already computed (Algorithm 3).
//
// The three steps are pipelined: the t clustering configurations run
// concurrently and stream finalized clusters into a size-prioritized
// queue (schedule.Queue) consumed by the solver pool, so the first
// clusters are being solved and merged while later configurations are
// still hashing — the overlap the paper's cost model (§II-F) assumes.
// Options.DisablePipeline restores the historical barrier behaviour
// (cluster everything serially, then solve), kept as the baseline of
// the pipeline equivalence tests and overlap benchmarks.
//
// The package also exposes the ablations evaluated by the paper and by
// this repository's benchmarks: MinHash clustering in place of
// FastRandomHash (Table IV), splitting disabled, FIFO scheduling, and
// forced local solvers.
package core

import (
	"fmt"
	"sync"
	"time"

	"c2knn/internal/bruteforce"
	"c2knn/internal/dataset"
	"c2knn/internal/frh"
	"c2knn/internal/hyrec"
	"c2knn/internal/knng"
	"c2knn/internal/minhash"
	"c2knn/internal/schedule"
	"c2knn/internal/similarity"
)

// LocalSolver selects how each cluster's partial KNN graph is computed.
type LocalSolver int

const (
	// SolverHybrid applies the paper's rule: brute force when
	// |C| < ρ·k², Hyrec otherwise (Algorithm 2).
	SolverHybrid LocalSolver = iota
	// SolverBruteForce always brute-forces clusters (ablation).
	SolverBruteForce
	// SolverHyrec always runs Hyrec on clusters of more than k+1 users
	// (ablation).
	SolverHyrec
)

// String implements fmt.Stringer.
func (s LocalSolver) String() string {
	switch s {
	case SolverHybrid:
		return "hybrid"
	case SolverBruteForce:
		return "bruteforce"
	case SolverHyrec:
		return "hyrec"
	}
	return fmt.Sprintf("LocalSolver(%d)", int(s))
}

// Scheduling selects the order clusters are fed to the worker pool.
type Scheduling int

const (
	// ScheduleLargestFirst is the paper's decreasing-size priority
	// queue. Under the pipeline it applies to the clusters available at
	// pop time; with the pipeline disabled every cluster is available
	// and the order is the paper's global one.
	ScheduleLargestFirst Scheduling = iota
	// ScheduleFIFO processes clusters in production order (ablation).
	ScheduleFIFO
)

// String implements fmt.Stringer.
func (s Scheduling) String() string {
	if s == ScheduleFIFO {
		return "fifo"
	}
	return "largest-first"
}

// Options parameterizes a C² run. The zero value (after defaulting) is
// the paper's configuration: k=30, b=4096, t=8, N=2000, ρ=5, hybrid local
// solver, largest-first scheduling, recursive splitting on, pipelined
// clustering.
type Options struct {
	// K is the neighborhood size (default 30).
	K int
	// B is the number of clusters per hash function (default 4096).
	B int
	// T is the number of hash functions (default 8).
	T int
	// MaxClusterSize is the recursive-splitting threshold N
	// (default 2000). Ignored when DisableSplitting or UseMinHash is set.
	MaxClusterSize int
	// Rho is the ρ of the brute-force/Hyrec switch: brute force is chosen
	// when |C| < ρ·k² (default 5). It also caps the local Hyrec
	// iteration count, matching the cost model of §II-F.
	Rho int
	// Delta is the local Hyrec termination threshold (default 0.001).
	Delta float64
	// Workers sizes the cluster-processing pool (default 1).
	Workers int
	// Seed drives the hash family and local Hyrec initializations.
	Seed int64
	// DisableSplitting turns recursive splitting off (ablation).
	DisableSplitting bool
	// DisablePipeline restores the pre-pipeline barrier: every cluster
	// is materialized, serially, before the first worker starts
	// solving. For a fixed Seed the cluster set and each cluster's
	// local solution are identical with and without the pipeline; only
	// the merge interleaving (and therefore tie-breaking among
	// equal-similarity neighbors) can differ.
	DisablePipeline bool
	// Scheduling selects the cluster processing order.
	Scheduling Scheduling
	// LocalSolver selects the per-cluster algorithm.
	LocalSolver LocalSolver
	// UseMinHash replaces FastRandomHash with classic MinHash functions
	// (one bucket per distinct min-hash value, no splitting) — the
	// C²/MinHash variant of Table IV.
	UseMinHash bool
}

func (o *Options) setDefaults() {
	if o.K == 0 {
		o.K = 30
	}
	if o.B == 0 {
		o.B = frh.DefaultB
	}
	if o.T == 0 {
		o.T = frh.DefaultT
	}
	if o.MaxClusterSize == 0 {
		o.MaxClusterSize = frh.DefaultMaxSize
	}
	if o.Rho == 0 {
		o.Rho = 5
	}
	if o.Delta == 0 {
		o.Delta = 0.001
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
}

// Stats reports how a C² run unfolded, including the per-phase timings
// and clustering/solving overlap the paper's performance analysis
// (§II-F) rests on.
type Stats struct {
	// Clusters is the number of clusters produced by step 1.
	Clusters int
	// Splits counts recursive split operations.
	Splits int
	// MaxCluster is the largest produced cluster.
	MaxCluster int
	// BruteForced and Hyreced count solved clusters per local solver;
	// Skipped counts clusters of fewer than two users, which have no
	// pairs to evaluate. BruteForced + Hyreced + Skipped == Clusters.
	BruteForced int
	Hyreced     int
	Skipped     int
	// ClusterTime is the wall-clock duration of step 1 (first hash to
	// last emitted cluster). KNNTime is the wall-clock duration of
	// steps 2+3, measured from the first cluster a worker actually
	// popped — not from pool start, so time the pool spent blocked
	// waiting for the first cluster is excluded — to the last merge
	// (local KNN and merging overlap by design: each worker merges the
	// cluster it just solved).
	ClusterTime time.Duration
	KNNTime     time.Duration
	// TotalTime is the end-to-end wall-clock time of Build.
	TotalTime time.Duration
	// OverlapTime is how long clustering and solving were in progress
	// simultaneously: from the first solved cluster to the last emitted
	// one, clamped at zero — the serial latency the pipeline recovered.
	// Zero when DisablePipeline is set (solving starts after the last
	// emission by construction).
	OverlapTime time.Duration
	// MaxQueueDepth is the high-water mark of clusters waiting in the
	// pipeline queue — how far production ran ahead of the solver pool.
	// With DisablePipeline set it equals Clusters.
	MaxQueueDepth int
	// Pipelined records whether the streaming pipeline was used.
	Pipelined bool
}

// clusterJob is one unit of step-2 work: a finalized cluster plus the
// seed of its local solve. The seed derives from the cluster's
// configuration and per-configuration emission rank — both stable for a
// fixed Options.Seed regardless of worker count or pipeline
// interleaving — so the cluster set and every per-cluster solution are
// identical between the pipelined and barrier paths.
type clusterJob struct {
	users []int32
	seed  int64
}

// jobSeed derives the local-solver seed of the seq-th cluster emitted
// by configuration fn. Configurations are spaced 2³² apart, far beyond
// any per-configuration cluster count.
func jobSeed(seed int64, fn int, seq int64) int64 {
	return seed + int64(fn+1)<<32 + seq
}

// Build computes the approximate KNN graph of d under options o, using p
// for all similarity evaluations (GoldFinger estimates in the paper's
// default setup, exact Jaccard for the Table V "raw data" variant).
func Build(d *dataset.Dataset, p similarity.Provider, o Options) (*knng.Graph, Stats) {
	o.setDefaults()
	var stats Stats
	stats.Pipelined = !o.DisablePipeline
	start := time.Now()

	q := schedule.NewQueue[clusterJob](o.Scheduling == ScheduleFIFO)
	// seqs[fn] is only ever touched by configuration fn's producer
	// goroutine, so per-element access is race-free.
	seqs := make([]int64, o.T)
	emit := func(c frh.Cluster) {
		seed := jobSeed(o.Seed, c.Fn, seqs[c.Fn])
		seqs[c.Fn]++
		q.Push(clusterJob{users: c.Users, seed: seed}, len(c.Users))
	}

	var clusterStats frh.Stats
	var clusterEnd time.Time
	produce := func() {
		if o.UseMinHash {
			clusterStats = minhashProduce(d, o, emit)
		} else {
			fo := frh.Options{B: o.B, T: o.T, MaxSize: o.MaxClusterSize, Seed: o.Seed}
			if o.DisableSplitting {
				fo.MaxSize = -1
			}
			if o.DisablePipeline {
				fo.Parallelism = 1 // the historical serial step 1
			}
			clusterStats = frh.Stream(d, fo, emit)
		}
		clusterEnd = time.Now()
		q.Close()
	}

	g := knng.New(d.NumUsers(), o.K)
	shared := knng.NewShared(g)
	// Each worker owns a scratch bundle — the gathered cluster-local
	// similarity kernel plus the local solvers' reusable buffers, so
	// steady-state cluster processing allocates nothing — and private
	// counters aggregated after the pool drains.
	workers := make([]workerState, o.Workers)
	// solveStart marks the first cluster a worker actually popped; the
	// Once write is read by the main goroutine only after the pool's
	// WaitGroup, so no further synchronization is needed.
	var solveOnce sync.Once
	var solveStart time.Time
	consume := func(worker int) {
		ws := &workers[worker]
		for {
			job, ok := q.Pop()
			if !ok {
				return
			}
			solveOnce.Do(func() { solveStart = time.Now() })
			if len(job.users) < 2 {
				ws.skipped++
				continue
			}
			similarity.GatherInto(p, job.users, &ws.loc)
			var lists []knng.List
			if useHyrec(o, len(job.users)) {
				ws.hyreced++
				lists = hyrec.LocalInto(&ws.loc, o.K, hyrec.Options{
					Delta:   o.Delta,
					MaxIter: o.Rho,
					Seed:    job.seed,
				}, &ws.hy)
			} else {
				ws.bruteForced++
				lists = bruteforce.LocalInto(&ws.loc, o.K, &ws.bf)
			}
			for i := range lists {
				shared.MergeUser(job.users[i], lists[i].H)
			}
		}
	}

	if o.DisablePipeline {
		// Barrier: step 1 completes (and the queue holds every cluster,
		// so largest-first is global) before the pool starts.
		produce()
		runPool(o.Workers, consume)
	} else {
		var producerWG sync.WaitGroup
		producerWG.Add(1)
		go func() {
			defer producerWG.Done()
			produce()
		}()
		runPool(o.Workers, consume)
		producerWG.Wait()
	}
	end := time.Now()

	stats.Clusters = clusterStats.Clusters
	stats.Splits = clusterStats.Splits
	stats.MaxCluster = clusterStats.MaxCluster
	for i := range workers {
		stats.BruteForced += workers[i].bruteForced
		stats.Hyreced += workers[i].hyreced
		stats.Skipped += workers[i].skipped
	}
	stats.ClusterTime = clusterEnd.Sub(start)
	stats.TotalTime = end.Sub(start)
	if !solveStart.IsZero() {
		stats.KNNTime = end.Sub(solveStart)
		// Solving started before the last cluster was emitted ⇒ the two
		// phases genuinely ran concurrently for the difference. Under
		// the barrier solveStart follows clusterEnd, clamping to zero.
		if overlap := clusterEnd.Sub(solveStart); overlap > 0 {
			stats.OverlapTime = overlap
		}
	}
	stats.MaxQueueDepth = q.MaxDepth()
	return g, stats
}

// workerState is one worker's reusable state: the gathered similarity
// kernel, both local solvers' scratch buffers (each carrying the scored
// similarity row of its blocked sweep alongside the neighbor lists),
// and private counters.
type workerState struct {
	loc similarity.Local
	bf  bruteforce.Scratch
	hy  hyrec.Scratch

	bruteForced int
	hyreced     int
	skipped     int
}

// runPool runs consume(worker) on `workers` goroutines and returns when
// all have drained the queue.
func runPool(workers int, consume func(worker int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			consume(worker)
		}(w)
	}
	wg.Wait()
}

// useHyrec applies Algorithm 2's switch rule under the configured solver
// policy. Tiny clusters (≤ k+1 users) are always brute-forced: Hyrec's
// random initialization already connects everyone to everyone there.
func useHyrec(o Options, size int) bool {
	if size <= o.K+1 {
		return false
	}
	switch o.LocalSolver {
	case SolverBruteForce:
		return false
	case SolverHyrec:
		return true
	default:
		return size >= o.Rho*o.K*o.K
	}
}

// minhashProduce emits the clusters of the C²/MinHash ablation (§V-C):
// users bucketed by t MinHash functions, one bucket set per function,
// without splitting. Each configuration emits its buckets in increasing
// hash order (minhash.Buckets) through the same fan-out frh's producers
// use: concurrent configurations in pipeline mode, the historical
// serial loop under DisablePipeline.
func minhashProduce(d *dataset.Dataset, o Options, emit func(frh.Cluster)) frh.Stats {
	fam := minhash.New(o.T, o.Seed)
	parallelism := 0
	if o.DisablePipeline {
		parallelism = 1
	}
	return frh.MergeStats(frh.ForEachFn(o.T, parallelism, func(fn int) frh.Stats {
		var s frh.Stats
		for _, b := range fam.Buckets(fn, d.Profiles) {
			s.Clusters++
			if len(b.Users) > s.MaxCluster {
				s.MaxCluster = len(b.Users)
			}
			emit(frh.Cluster{Fn: fn, Index: b.Value, Users: b.Users})
		}
		return s
	}))
}
