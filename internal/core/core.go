// Package core implements Cluster-and-Conquer (C²), the paper's primary
// contribution (§II). C² computes an approximate KNN graph in three
// steps:
//
//  1. Clustering — FastRandomHash partitions users into t×b clusters
//     (recursively split above MaxClusterSize), giving the computation a
//     high initial graph locality instead of the greedy algorithms'
//     random start.
//  2. Scheduling and local KNN — clusters are processed largest-first by
//     a worker pool; each cluster's partial KNN graph is computed in
//     isolation, by brute force when |C| < ρ·k² and by Hyrec otherwise
//     (Algorithm 2).
//  3. Merging — partial graphs are folded user-by-user into bounded
//     k-heaps, reusing the similarities already computed (Algorithm 3).
//
// The package also exposes the ablations evaluated by the paper and by
// this repository's benchmarks: MinHash clustering in place of
// FastRandomHash (Table IV), splitting disabled, FIFO scheduling, and
// forced local solvers.
package core

import (
	"fmt"
	"sort"
	"time"

	"c2knn/internal/bruteforce"
	"c2knn/internal/dataset"
	"c2knn/internal/frh"
	"c2knn/internal/hyrec"
	"c2knn/internal/knng"
	"c2knn/internal/minhash"
	"c2knn/internal/schedule"
	"c2knn/internal/similarity"
)

// LocalSolver selects how each cluster's partial KNN graph is computed.
type LocalSolver int

const (
	// SolverHybrid applies the paper's rule: brute force when
	// |C| < ρ·k², Hyrec otherwise (Algorithm 2).
	SolverHybrid LocalSolver = iota
	// SolverBruteForce always brute-forces clusters (ablation).
	SolverBruteForce
	// SolverHyrec always runs Hyrec on clusters of more than k+1 users
	// (ablation).
	SolverHyrec
)

// String implements fmt.Stringer.
func (s LocalSolver) String() string {
	switch s {
	case SolverHybrid:
		return "hybrid"
	case SolverBruteForce:
		return "bruteforce"
	case SolverHyrec:
		return "hyrec"
	}
	return fmt.Sprintf("LocalSolver(%d)", int(s))
}

// Scheduling selects the order clusters are fed to the worker pool.
type Scheduling int

const (
	// ScheduleLargestFirst is the paper's decreasing-size priority queue.
	ScheduleLargestFirst Scheduling = iota
	// ScheduleFIFO processes clusters in production order (ablation).
	ScheduleFIFO
)

// String implements fmt.Stringer.
func (s Scheduling) String() string {
	if s == ScheduleFIFO {
		return "fifo"
	}
	return "largest-first"
}

// Options parameterizes a C² run. The zero value (after defaulting) is
// the paper's configuration: k=30, b=4096, t=8, N=2000, ρ=5, hybrid local
// solver, largest-first scheduling, recursive splitting on.
type Options struct {
	// K is the neighborhood size (default 30).
	K int
	// B is the number of clusters per hash function (default 4096).
	B int
	// T is the number of hash functions (default 8).
	T int
	// MaxClusterSize is the recursive-splitting threshold N
	// (default 2000). Ignored when DisableSplitting or UseMinHash is set.
	MaxClusterSize int
	// Rho is the ρ of the brute-force/Hyrec switch: brute force is chosen
	// when |C| < ρ·k² (default 5). It also caps the local Hyrec
	// iteration count, matching the cost model of §II-F.
	Rho int
	// Delta is the local Hyrec termination threshold (default 0.001).
	Delta float64
	// Workers sizes the cluster-processing pool (default 1).
	Workers int
	// Seed drives the hash family and local Hyrec initializations.
	Seed int64
	// DisableSplitting turns recursive splitting off (ablation).
	DisableSplitting bool
	// Scheduling selects the cluster processing order.
	Scheduling Scheduling
	// LocalSolver selects the per-cluster algorithm.
	LocalSolver LocalSolver
	// UseMinHash replaces FastRandomHash with classic MinHash functions
	// (one bucket per distinct min-hash value, no splitting) — the
	// C²/MinHash variant of Table IV.
	UseMinHash bool
}

func (o *Options) setDefaults() {
	if o.K == 0 {
		o.K = 30
	}
	if o.B == 0 {
		o.B = frh.DefaultB
	}
	if o.T == 0 {
		o.T = frh.DefaultT
	}
	if o.MaxClusterSize == 0 {
		o.MaxClusterSize = frh.DefaultMaxSize
	}
	if o.Rho == 0 {
		o.Rho = 5
	}
	if o.Delta == 0 {
		o.Delta = 0.001
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
}

// Stats reports how a C² run unfolded, including the per-step timings the
// paper's performance analysis rests on.
type Stats struct {
	// Clusters is the number of clusters processed.
	Clusters int
	// Splits counts recursive split operations.
	Splits int
	// MaxCluster is the largest processed cluster.
	MaxCluster int
	// BruteForced and Hyreced count clusters per local solver.
	BruteForced int
	Hyreced     int
	// ClusterTime, KNNTime are the durations of steps 1 and 2+3 (local
	// KNN and merging overlap by design: each worker merges the cluster
	// it just solved).
	ClusterTime time.Duration
	KNNTime     time.Duration
}

// Build computes the approximate KNN graph of d under options o, using p
// for all similarity evaluations (GoldFinger estimates in the paper's
// default setup, exact Jaccard for the Table V "raw data" variant).
func Build(d *dataset.Dataset, p similarity.Provider, o Options) (*knng.Graph, Stats) {
	o.setDefaults()
	var stats Stats

	start := time.Now()
	var clusters []frh.Cluster
	if o.UseMinHash {
		clusters = minhashClusters(d, o)
	} else {
		fo := frh.Options{B: o.B, T: o.T, MaxSize: o.MaxClusterSize, Seed: o.Seed}
		if o.DisableSplitting {
			fo.MaxSize = -1
		}
		var fstats frh.Stats
		clusters, fstats = frh.Build(d, fo)
		stats.Splits = fstats.Splits
	}
	stats.Clusters = len(clusters)
	for i := range clusters {
		if len(clusters[i].Users) > stats.MaxCluster {
			stats.MaxCluster = len(clusters[i].Users)
		}
	}
	stats.ClusterTime = time.Since(start)

	start = time.Now()
	g := knng.New(d.NumUsers(), o.K)
	shared := knng.NewShared(g)
	sizes := frh.Sizes(clusters)
	var order []int
	if o.Scheduling == ScheduleFIFO {
		order = schedule.FIFO(len(clusters))
	} else {
		order = schedule.LargestFirst(sizes)
	}
	// Per-solver counters are written by workers; aggregate through a
	// channel-free trick: each job is claimed by exactly one worker, so a
	// plain slice indexed by job is race-free.
	solver := make([]bool, len(clusters)) // true = Hyrec
	// Each worker owns a scratch bundle: the gathered cluster-local
	// similarity kernel plus the local solvers' reusable buffers, so
	// steady-state cluster processing allocates nothing.
	scratches := make([]clusterScratch, o.Workers)
	schedule.Run(o.Workers, order, func(worker, job int) {
		ids := clusters[job].Users
		if len(ids) < 2 {
			return
		}
		ws := &scratches[worker]
		similarity.GatherInto(p, ids, &ws.loc)
		var lists []knng.List
		if useHyrec(o, len(ids)) {
			solver[job] = true
			lists = hyrec.LocalInto(&ws.loc, o.K, hyrec.Options{
				Delta:   o.Delta,
				MaxIter: o.Rho,
				Seed:    o.Seed + int64(job),
			}, &ws.hy)
		} else {
			lists = bruteforce.LocalInto(&ws.loc, o.K, &ws.bf)
		}
		for i := range lists {
			shared.MergeUser(ids[i], lists[i].H)
		}
	})
	for job := range clusters {
		if len(clusters[job].Users) < 2 {
			continue
		}
		if solver[job] {
			stats.Hyreced++
		} else {
			stats.BruteForced++
		}
	}
	stats.KNNTime = time.Since(start)
	return g, stats
}

// clusterScratch is one worker's reusable state: the gathered
// similarity kernel and both local solvers' scratch buffers.
type clusterScratch struct {
	loc similarity.Local
	bf  bruteforce.Scratch
	hy  hyrec.Scratch
}

// useHyrec applies Algorithm 2's switch rule under the configured solver
// policy. Tiny clusters (≤ k+1 users) are always brute-forced: Hyrec's
// random initialization already connects everyone to everyone there.
func useHyrec(o Options, size int) bool {
	if size <= o.K+1 {
		return false
	}
	switch o.LocalSolver {
	case SolverBruteForce:
		return false
	case SolverHyrec:
		return true
	default:
		return size >= o.Rho*o.K*o.K
	}
}

// minhashClusters buckets users by t MinHash functions, one bucket set
// per function, without splitting — the clustering of the C²/MinHash
// ablation (§V-C).
func minhashClusters(d *dataset.Dataset, o Options) []frh.Cluster {
	fam := minhash.New(o.T, o.Seed)
	var clusters []frh.Cluster
	for fn := 0; fn < o.T; fn++ {
		byHash := make(map[uint32][]int32)
		for u := 0; u < d.NumUsers(); u++ {
			v, ok := fam.Value(fn, d.Profiles[u])
			if !ok {
				continue
			}
			byHash[v] = append(byHash[v], int32(u))
		}
		// Emit buckets in sorted key order: map iteration order would
		// make runs non-deterministic.
		keys := make([]uint32, 0, len(byHash))
		for idx := range byHash {
			keys = append(keys, idx)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, idx := range keys {
			// Singleton buckets contribute no pairs; skip them at
			// emission instead of allocating clusters Build would
			// immediately discard.
			if len(byHash[idx]) < 2 {
				continue
			}
			clusters = append(clusters, frh.Cluster{Fn: fn, Index: idx, Users: byHash[idx]})
		}
	}
	return clusters
}
