package core

import (
	"testing"

	"c2knn/internal/bruteforce"
	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/knng"
	"c2knn/internal/similarity"
	"c2knn/internal/synth"
)

// testData generates a small clustered dataset once per test binary.
func testData(t testing.TB) (*synthBundle, *similarity.Jaccard) {
	t.Helper()
	bundle := loadBundle()
	return bundle, bundle.raw
}

type synthBundle struct {
	data  *dataset.Dataset
	raw   *similarity.Jaccard
	gf    *goldfinger.Set
	exact *knng.Graph
}

var bundleCache *synthBundle

func loadBundle() *synthBundle {
	if bundleCache != nil {
		return bundleCache
	}
	cfg := synth.ML1M().Scale(0.08) // ≈ 480 users, small but structured
	d := synth.Generate(cfg)
	raw := similarity.NewJaccard(d)
	gf := goldfinger.MustNew(d, 512, 1)
	exact := bruteforce.Build(d.NumUsers(), 10, raw, 2)
	bundleCache = &synthBundle{data: d, raw: raw, gf: gf, exact: exact}
	return bundleCache
}

func TestBuildProducesReasonableGraph(t *testing.T) {
	b, raw := testData(t)
	g, stats := Build(b.data, b.gf, Options{K: 10, B: 256, T: 8, MaxClusterSize: 100, Workers: 2, Seed: 3})
	if g.NumUsers() != b.data.NumUsers() {
		t.Fatalf("graph size %d != users %d", g.NumUsers(), b.data.NumUsers())
	}
	q := knng.Quality(g, b.exact, raw)
	if q < 0.8 {
		t.Errorf("C2 quality = %.3f, want ≥ 0.8 on clustered data", q)
	}
	if stats.Clusters == 0 {
		t.Error("no clusters reported")
	}
	if stats.BruteForced+stats.Hyreced == 0 {
		t.Error("no clusters processed")
	}
}

func TestBuildBeatsRandomBaseline(t *testing.T) {
	b, raw := testData(t)
	g, _ := Build(b.data, b.gf, Options{K: 10, B: 256, T: 8, MaxClusterSize: 100, Workers: 2, Seed: 3})
	random := knng.New(b.data.NumUsers(), 10)
	knng.RandomInit(random, raw, 1)
	if g.AvgSim(raw) <= random.AvgSim(raw) {
		t.Error("C2 graph no better than a random graph")
	}
}

func TestSimilarityReuseNoRecomputation(t *testing.T) {
	// The number of similarity computations must not exceed the sum of
	// per-cluster pair counts (merging reuses stored values).
	b, _ := testData(t)
	counting := similarity.NewCounting(b.gf)
	_, stats := Build(b.data, counting, Options{K: 10, B: 256, T: 4, MaxClusterSize: 80, Workers: 2, Seed: 5})
	bound := int64(0)
	// Upper bound: every cluster at MaxClusterSize, brute forced.
	bound = int64(stats.Clusters) * bruteforce.PairCount(90)
	if counting.Count() > bound {
		t.Errorf("sims = %d exceed the cluster-pair bound %d", counting.Count(), bound)
	}
	if counting.Count() == 0 {
		t.Error("no similarities computed at all")
	}
}

func TestWorkerInvariance(t *testing.T) {
	b, raw := testData(t)
	opts := Options{K: 10, B: 256, T: 6, MaxClusterSize: 100, Seed: 7}
	o1 := opts
	o1.Workers = 1
	o4 := opts
	o4.Workers = 4
	g1, _ := Build(b.data, b.gf, o1)
	g4, _ := Build(b.data, b.gf, o4)
	q1 := knng.Quality(g1, b.exact, raw)
	q4 := knng.Quality(g4, b.exact, raw)
	if diff := q1 - q4; diff > 0.02 || diff < -0.02 {
		t.Errorf("quality depends on workers: %.3f vs %.3f", q1, q4)
	}
}

func TestSplittingImprovesBalance(t *testing.T) {
	b, _ := testData(t)
	_, withSplit := Build(b.data, b.gf, Options{K: 10, B: 64, T: 4, MaxClusterSize: 60, Workers: 2, Seed: 9})
	_, noSplit := Build(b.data, b.gf, Options{K: 10, B: 64, T: 4, DisableSplitting: true, Workers: 2, Seed: 9})
	if withSplit.Splits == 0 {
		t.Skip("dataset too small to trigger splitting at this B")
	}
	if withSplit.MaxCluster >= noSplit.MaxCluster {
		t.Errorf("splitting did not reduce the max cluster: %d vs %d",
			withSplit.MaxCluster, noSplit.MaxCluster)
	}
	if noSplit.Splits != 0 {
		t.Errorf("DisableSplitting still split %d times", noSplit.Splits)
	}
}

func TestSchedulingPolicies(t *testing.T) {
	b, raw := testData(t)
	for _, sched := range []Scheduling{ScheduleLargestFirst, ScheduleFIFO} {
		g, _ := Build(b.data, b.gf, Options{
			K: 10, B: 256, T: 4, MaxClusterSize: 100,
			Workers: 2, Seed: 11, Scheduling: sched,
		})
		if q := knng.Quality(g, b.exact, raw); q < 0.5 {
			t.Errorf("scheduling %v: quality %.3f collapsed", sched, q)
		}
	}
}

func TestLocalSolverPolicies(t *testing.T) {
	b, raw := testData(t)
	qualities := map[LocalSolver]float64{}
	for _, solver := range []LocalSolver{SolverHybrid, SolverBruteForce, SolverHyrec} {
		g, stats := Build(b.data, b.gf, Options{
			K: 10, B: 64, T: 4, MaxClusterSize: 2000, // large N keeps big clusters
			Workers: 2, Seed: 13, LocalSolver: solver,
		})
		qualities[solver] = knng.Quality(g, b.exact, raw)
		if solver == SolverBruteForce && stats.Hyreced != 0 {
			t.Error("SolverBruteForce still used Hyrec")
		}
	}
	for solver, q := range qualities {
		if q < 0.5 {
			t.Errorf("solver %v: quality %.3f collapsed", solver, q)
		}
	}
}

func TestUseMinHashVariant(t *testing.T) {
	b, raw := testData(t)
	g, stats := Build(b.data, b.gf, Options{K: 10, T: 6, UseMinHash: true, Workers: 2, Seed: 15})
	if stats.Splits != 0 {
		t.Error("MinHash variant must not split")
	}
	if q := knng.Quality(g, b.exact, raw); q < 0.5 {
		t.Errorf("MinHash variant quality %.3f collapsed", q)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	b, _ := testData(t)
	opts := Options{K: 10, B: 128, T: 4, MaxClusterSize: 100, Workers: 3, Seed: 17}
	g1, s1 := Build(b.data, b.gf, opts)
	g2, s2 := Build(b.data, b.gf, opts)
	if s1.Clusters != s2.Clusters || s1.Splits != s2.Splits {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	for u := 0; u < g1.NumUsers(); u++ {
		a, c := g1.Neighbors(int32(u)), g2.Neighbors(int32(u))
		if len(a) != len(c) {
			t.Fatalf("user %d: neighbor counts differ", u)
		}
		for i := range a {
			if a[i].Sim != c[i].Sim {
				t.Fatalf("user %d: sims differ across identical runs", u)
			}
		}
	}
}

func TestStringers(t *testing.T) {
	if SolverHybrid.String() != "hybrid" || SolverBruteForce.String() != "bruteforce" || SolverHyrec.String() != "hyrec" {
		t.Error("LocalSolver.String broken")
	}
	if LocalSolver(99).String() == "" {
		t.Error("unknown solver should still render")
	}
	if ScheduleLargestFirst.String() != "largest-first" || ScheduleFIFO.String() != "fifo" {
		t.Error("Scheduling.String broken")
	}
}

func TestUseHyrecSwitch(t *testing.T) {
	o := Options{}
	o.setDefaults()
	if useHyrec(o, o.K+1) {
		t.Error("tiny cluster should brute force")
	}
	if useHyrec(o, o.Rho*o.K*o.K-1) {
		t.Error("below ρk² should brute force")
	}
	if !useHyrec(o, o.Rho*o.K*o.K) {
		t.Error("at ρk² should use Hyrec")
	}
}

func BenchmarkBuildC2Small(b *testing.B) {
	bundle := loadBundle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(bundle.data, bundle.gf, Options{K: 10, B: 256, T: 8, MaxClusterSize: 100, Workers: 2, Seed: 3})
	}
}
