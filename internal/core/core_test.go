package core

import (
	"testing"

	"c2knn/internal/bruteforce"
	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/knng"
	"c2knn/internal/similarity"
	"c2knn/internal/synth"
)

// testData generates a small clustered dataset once per test binary.
func testData(t testing.TB) (*synthBundle, *similarity.Jaccard) {
	t.Helper()
	bundle := loadBundle()
	return bundle, bundle.raw
}

type synthBundle struct {
	data  *dataset.Dataset
	raw   *similarity.Jaccard
	gf    *goldfinger.Set
	exact *knng.Graph
}

var bundleCache *synthBundle

func loadBundle() *synthBundle {
	if bundleCache != nil {
		return bundleCache
	}
	cfg := synth.ML1M().Scale(0.08) // ≈ 480 users, small but structured
	d := synth.Generate(cfg)
	raw := similarity.NewJaccard(d)
	gf := goldfinger.MustNew(d, 512, 1)
	exact := bruteforce.Build(d.NumUsers(), 10, raw, 2)
	bundleCache = &synthBundle{data: d, raw: raw, gf: gf, exact: exact}
	return bundleCache
}

func TestBuildProducesReasonableGraph(t *testing.T) {
	b, raw := testData(t)
	g, stats := Build(b.data, b.gf, Options{K: 10, B: 256, T: 8, MaxClusterSize: 100, Workers: 2, Seed: 3})
	if g.NumUsers() != b.data.NumUsers() {
		t.Fatalf("graph size %d != users %d", g.NumUsers(), b.data.NumUsers())
	}
	q := knng.Quality(g, b.exact, raw)
	if q < 0.8 {
		t.Errorf("C2 quality = %.3f, want ≥ 0.8 on clustered data", q)
	}
	if stats.Clusters == 0 {
		t.Error("no clusters reported")
	}
	if stats.BruteForced+stats.Hyreced == 0 {
		t.Error("no clusters processed")
	}
	if got := stats.BruteForced + stats.Hyreced + stats.Skipped; got != stats.Clusters {
		t.Errorf("BruteForced+Hyreced+Skipped = %d, want Clusters = %d", got, stats.Clusters)
	}
}

func TestBuildBeatsRandomBaseline(t *testing.T) {
	b, raw := testData(t)
	g, _ := Build(b.data, b.gf, Options{K: 10, B: 256, T: 8, MaxClusterSize: 100, Workers: 2, Seed: 3})
	random := knng.New(b.data.NumUsers(), 10)
	knng.RandomInit(random, raw, 1)
	if g.AvgSim(raw) <= random.AvgSim(raw) {
		t.Error("C2 graph no better than a random graph")
	}
}

func TestSimilarityReuseNoRecomputation(t *testing.T) {
	// The number of similarity computations must not exceed the sum of
	// per-cluster pair counts (merging reuses stored values).
	b, _ := testData(t)
	counting := similarity.NewCounting(b.gf)
	_, stats := Build(b.data, counting, Options{K: 10, B: 256, T: 4, MaxClusterSize: 80, Workers: 2, Seed: 5})
	bound := int64(0)
	// Upper bound: every cluster at MaxClusterSize, brute forced.
	bound = int64(stats.Clusters) * bruteforce.PairCount(90)
	if counting.Count() > bound {
		t.Errorf("sims = %d exceed the cluster-pair bound %d", counting.Count(), bound)
	}
	if counting.Count() == 0 {
		t.Error("no similarities computed at all")
	}
}

func TestWorkerInvariance(t *testing.T) {
	b, raw := testData(t)
	opts := Options{K: 10, B: 256, T: 6, MaxClusterSize: 100, Seed: 7}
	o1 := opts
	o1.Workers = 1
	o4 := opts
	o4.Workers = 4
	g1, _ := Build(b.data, b.gf, o1)
	g4, _ := Build(b.data, b.gf, o4)
	q1 := knng.Quality(g1, b.exact, raw)
	q4 := knng.Quality(g4, b.exact, raw)
	if diff := q1 - q4; diff > 0.02 || diff < -0.02 {
		t.Errorf("quality depends on workers: %.3f vs %.3f", q1, q4)
	}
}

func TestSplittingImprovesBalance(t *testing.T) {
	b, _ := testData(t)
	_, withSplit := Build(b.data, b.gf, Options{K: 10, B: 64, T: 4, MaxClusterSize: 60, Workers: 2, Seed: 9})
	_, noSplit := Build(b.data, b.gf, Options{K: 10, B: 64, T: 4, DisableSplitting: true, Workers: 2, Seed: 9})
	if withSplit.Splits == 0 {
		t.Skip("dataset too small to trigger splitting at this B")
	}
	if withSplit.MaxCluster >= noSplit.MaxCluster {
		t.Errorf("splitting did not reduce the max cluster: %d vs %d",
			withSplit.MaxCluster, noSplit.MaxCluster)
	}
	if noSplit.Splits != 0 {
		t.Errorf("DisableSplitting still split %d times", noSplit.Splits)
	}
}

func TestSchedulingPolicies(t *testing.T) {
	b, raw := testData(t)
	for _, sched := range []Scheduling{ScheduleLargestFirst, ScheduleFIFO} {
		g, _ := Build(b.data, b.gf, Options{
			K: 10, B: 256, T: 4, MaxClusterSize: 100,
			Workers: 2, Seed: 11, Scheduling: sched,
		})
		if q := knng.Quality(g, b.exact, raw); q < 0.5 {
			t.Errorf("scheduling %v: quality %.3f collapsed", sched, q)
		}
	}
}

func TestLocalSolverPolicies(t *testing.T) {
	b, raw := testData(t)
	qualities := map[LocalSolver]float64{}
	for _, solver := range []LocalSolver{SolverHybrid, SolverBruteForce, SolverHyrec} {
		g, stats := Build(b.data, b.gf, Options{
			K: 10, B: 64, T: 4, MaxClusterSize: 2000, // large N keeps big clusters
			Workers: 2, Seed: 13, LocalSolver: solver,
		})
		qualities[solver] = knng.Quality(g, b.exact, raw)
		if solver == SolverBruteForce && stats.Hyreced != 0 {
			t.Error("SolverBruteForce still used Hyrec")
		}
	}
	for solver, q := range qualities {
		if q < 0.5 {
			t.Errorf("solver %v: quality %.3f collapsed", solver, q)
		}
	}
}

func TestUseMinHashVariant(t *testing.T) {
	b, raw := testData(t)
	g, stats := Build(b.data, b.gf, Options{K: 10, T: 6, UseMinHash: true, Workers: 2, Seed: 15})
	if stats.Splits != 0 {
		t.Error("MinHash variant must not split")
	}
	if q := knng.Quality(g, b.exact, raw); q < 0.5 {
		t.Errorf("MinHash variant quality %.3f collapsed", q)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	b, _ := testData(t)
	opts := Options{K: 10, B: 128, T: 4, MaxClusterSize: 100, Workers: 3, Seed: 17}
	g1, s1 := Build(b.data, b.gf, opts)
	g2, s2 := Build(b.data, b.gf, opts)
	if s1.Clusters != s2.Clusters || s1.Splits != s2.Splits {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	for u := 0; u < g1.NumUsers(); u++ {
		a, c := g1.Neighbors(int32(u)), g2.Neighbors(int32(u))
		if len(a) != len(c) {
			t.Fatalf("user %d: neighbor counts differ", u)
		}
		for i := range a {
			if a[i].Sim != c[i].Sim {
				t.Fatalf("user %d: sims differ across identical runs", u)
			}
		}
	}
}

func TestStringers(t *testing.T) {
	if SolverHybrid.String() != "hybrid" || SolverBruteForce.String() != "bruteforce" || SolverHyrec.String() != "hyrec" {
		t.Error("LocalSolver.String broken")
	}
	if LocalSolver(99).String() == "" {
		t.Error("unknown solver should still render")
	}
	if ScheduleLargestFirst.String() != "largest-first" || ScheduleFIFO.String() != "fifo" {
		t.Error("Scheduling.String broken")
	}
}

func TestUseHyrecSwitch(t *testing.T) {
	o := Options{}
	o.setDefaults()
	if useHyrec(o, o.K+1) {
		t.Error("tiny cluster should brute force")
	}
	if useHyrec(o, o.Rho*o.K*o.K-1) {
		t.Error("below ρk² should brute force")
	}
	if !useHyrec(o, o.Rho*o.K*o.K) {
		t.Error("at ρk² should use Hyrec")
	}
}

func BenchmarkBuildC2Small(b *testing.B) {
	bundle := loadBundle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(bundle.data, bundle.gf, Options{K: 10, B: 256, T: 8, MaxClusterSize: 100, Workers: 2, Seed: 3})
	}
}

// dispatchOnly hides a provider's Localizer implementation, forcing the
// generic Provider-dispatch kernel — the reference path the gathered
// kernels must match bit-for-bit.
type dispatchOnly struct{ p similarity.Provider }

func (d dispatchOnly) Sim(u, v int32) float64 { return d.p.Sim(u, v) }

func graphsIdentical(t *testing.T, a, b *knng.Graph) {
	t.Helper()
	if a.NumUsers() != b.NumUsers() {
		t.Fatalf("graph sizes differ: %d vs %d", a.NumUsers(), b.NumUsers())
	}
	for u := range a.Lists {
		ha, hb := a.Lists[u].H, b.Lists[u].H
		if len(ha) != len(hb) {
			t.Fatalf("user %d: neighbor counts differ (%d vs %d)", u, len(ha), len(hb))
		}
		for i := range ha {
			if ha[i].ID != hb[i].ID || ha[i].Sim != hb[i].Sim {
				t.Fatalf("user %d slot %d: (%d, %v) vs (%d, %v)",
					u, i, ha[i].ID, ha[i].Sim, hb[i].ID, hb[i].Sim)
			}
		}
	}
}

// TestKernelEquivalenceBuild: for a fixed seed, Build through the
// gathered fast-path kernels must produce a graph bit-identical — same
// heap layouts, same float64 similarities — to Build through plain
// Provider dispatch. Workers is 1 and the pipeline is disabled so the
// merge order is fully deterministic and the comparison is exact (the
// pipeline's arrival interleaving would make single-worker pop order
// scheduling-dependent).
func TestKernelEquivalenceBuild(t *testing.T) {
	b, _ := testData(t)
	opts := Options{K: 10, B: 128, T: 6, MaxClusterSize: 120, Workers: 1, Seed: 21, DisablePipeline: true}
	for _, tc := range []struct {
		name string
		p    similarity.Provider
	}{
		{"goldfinger", b.gf},
		{"jaccard", b.raw},
	} {
		if _, ok := tc.p.(similarity.Localizer); !ok {
			t.Fatalf("%s: provider lost its Localizer implementation", tc.name)
		}
		fast, _ := Build(b.data, tc.p, opts)
		slow, _ := Build(b.data, dispatchOnly{tc.p}, opts)
		graphsIdentical(t, fast, slow)
	}
}

// TestKernelEquivalenceSolvers repeats the bit-identity check with each
// local solver forced, so both the brute-force and the Hyrec kernels
// are exercised on large clusters.
func TestKernelEquivalenceSolvers(t *testing.T) {
	b, _ := testData(t)
	for _, solver := range []LocalSolver{SolverBruteForce, SolverHyrec} {
		opts := Options{
			K: 10, B: 32, T: 4, MaxClusterSize: 2000,
			Workers: 1, Seed: 23, LocalSolver: solver, DisablePipeline: true,
		}
		fast, _ := Build(b.data, b.gf, opts)
		slow, _ := Build(b.data, dispatchOnly{b.gf}, opts)
		graphsIdentical(t, fast, slow)
	}
}

// TestScratchReuseConcurrent hammers the per-worker scratch-reuse path
// with many workers and repeated runs; under -race it proves gathered
// kernels and solver scratch never leak across goroutines, and the
// runs must stay deterministic.
func TestScratchReuseConcurrent(t *testing.T) {
	b, _ := testData(t)
	opts := Options{K: 10, B: 128, T: 6, MaxClusterSize: 100, Workers: 8, Seed: 29}
	ref, _ := Build(b.data, b.gf, opts)
	for run := 0; run < 3; run++ {
		g, _ := Build(b.data, b.gf, opts)
		for u := range g.Lists {
			if len(g.Lists[u].H) != len(ref.Lists[u].H) {
				t.Fatalf("run %d user %d: neighbor count drifted", run, u)
			}
		}
		if q := knng.Quality(g, b.exact, b.raw); q < 0.8 {
			t.Fatalf("run %d: quality %.3f collapsed under concurrency", run, q)
		}
	}
	// MinHash clustering exercises the singleton-skip emission path.
	mh := Options{K: 10, T: 6, UseMinHash: true, Workers: 8, Seed: 31}
	if g, _ := Build(b.data, b.gf, mh); g.NumUsers() != b.data.NumUsers() {
		t.Fatal("minhash concurrent build lost users")
	}
}
