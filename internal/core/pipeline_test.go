package core

import (
	"testing"

	"c2knn/internal/knng"
)

// TestPipelineBarrierEquivalence is the pipeline's determinism
// contract: for a fixed seed, the pipelined and barrier paths cluster
// identically (same cluster set, so identical counting stats and solver
// decisions) and deliver the same quality. Bit-identity of the merged
// graph is NOT required — merge order is scheduling-dependent under
// ties — so the assertion is cluster-set identity plus Quality parity.
func TestPipelineBarrierEquivalence(t *testing.T) {
	b, raw := testData(t)
	base := Options{K: 10, B: 128, T: 6, MaxClusterSize: 100, Workers: 4, Seed: 37}
	variants := []struct {
		name string
		mod  func(*Options)
	}{
		{"default", func(*Options) {}},
		{"fifo", func(o *Options) { o.Scheduling = ScheduleFIFO }},
		{"no-splitting", func(o *Options) { o.DisableSplitting = true }},
		{"minhash", func(o *Options) { o.UseMinHash = true }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			po := base
			v.mod(&po)
			bo := po
			bo.DisablePipeline = true

			gp, sp := Build(b.data, b.gf, po)
			gb, sb := Build(b.data, b.gf, bo)

			if !sp.Pipelined || sb.Pipelined {
				t.Errorf("Pipelined flags wrong: pipeline=%v barrier=%v", sp.Pipelined, sb.Pipelined)
			}
			// Cluster-set identity: the streamed and materialized
			// producers must describe the same clustering.
			if sp.Clusters != sb.Clusters || sp.Splits != sb.Splits || sp.MaxCluster != sb.MaxCluster {
				t.Fatalf("cluster sets differ: pipeline %+v vs barrier %+v", sp, sb)
			}
			// Same clusters + same per-cluster seeds ⇒ same solver
			// decisions and skip counts.
			if sp.BruteForced != sb.BruteForced || sp.Hyreced != sb.Hyreced || sp.Skipped != sb.Skipped {
				t.Fatalf("solver counters differ: pipeline (%d,%d,%d) vs barrier (%d,%d,%d)",
					sp.BruteForced, sp.Hyreced, sp.Skipped, sb.BruteForced, sb.Hyreced, sb.Skipped)
			}
			qp := knng.Quality(gp, b.exact, raw)
			qb := knng.Quality(gb, b.exact, raw)
			if qp < 0.999*qb {
				t.Errorf("pipeline quality %.5f below 0.999× barrier quality %.5f", qp, qb)
			}
			if qb < 0.999*qp {
				t.Errorf("barrier quality %.5f below 0.999× pipeline quality %.5f", qb, qp)
			}
		})
	}
}

// TestSolverCountersInvariant: every produced cluster is accounted for —
// solved by exactly one solver or skipped as sub-2-user — in both
// pipeline modes.
func TestSolverCountersInvariant(t *testing.T) {
	b, _ := testData(t)
	for _, disable := range []bool{false, true} {
		for _, mh := range []bool{false, true} {
			_, s := Build(b.data, b.gf, Options{
				K: 10, B: 256, T: 4, MaxClusterSize: 80,
				Workers: 3, Seed: 41, DisablePipeline: disable, UseMinHash: mh,
			})
			if got := s.BruteForced + s.Hyreced + s.Skipped; got != s.Clusters {
				t.Errorf("pipeline=%v minhash=%v: BruteForced+Hyreced+Skipped = %d, want Clusters = %d",
					!disable, mh, got, s.Clusters)
			}
			if mh && s.Skipped != 0 {
				t.Errorf("minhash emission skips singletons, yet Skipped = %d", s.Skipped)
			}
		}
	}
}

// TestPipelineStatsFields sanity-checks the new per-phase reporting.
func TestPipelineStatsFields(t *testing.T) {
	b, _ := testData(t)
	opts := Options{K: 10, B: 128, T: 6, MaxClusterSize: 100, Workers: 4, Seed: 43}

	_, sp := Build(b.data, b.gf, opts)
	if !sp.Pipelined {
		t.Error("default build should be pipelined")
	}
	if sp.ClusterTime <= 0 || sp.KNNTime <= 0 || sp.TotalTime <= 0 {
		t.Errorf("phase timings not populated: %+v", sp)
	}
	if sp.OverlapTime < 0 || sp.OverlapTime > sp.ClusterTime || sp.OverlapTime > sp.KNNTime {
		t.Errorf("OverlapTime = %v exceeds a phase (cluster %v, knn %v)",
			sp.OverlapTime, sp.ClusterTime, sp.KNNTime)
	}
	if sp.MaxQueueDepth < 1 || sp.MaxQueueDepth > sp.Clusters {
		t.Errorf("MaxQueueDepth = %v out of [1, %d]", sp.MaxQueueDepth, sp.Clusters)
	}

	bo := opts
	bo.DisablePipeline = true
	_, sb := Build(b.data, b.gf, bo)
	if sb.OverlapTime != 0 {
		t.Errorf("barrier OverlapTime = %v, want 0", sb.OverlapTime)
	}
	if sb.MaxQueueDepth != sb.Clusters {
		t.Errorf("barrier MaxQueueDepth = %d, want every cluster queued (%d)", sb.MaxQueueDepth, sb.Clusters)
	}
}

// TestPipelineWorkerInvariance: the pipelined quality must not depend on
// the worker count (same contract the barrier path always had).
func TestPipelineWorkerInvariance(t *testing.T) {
	b, raw := testData(t)
	opts := Options{K: 10, B: 256, T: 6, MaxClusterSize: 100, Seed: 47}
	o1 := opts
	o1.Workers = 1
	o8 := opts
	o8.Workers = 8
	g1, _ := Build(b.data, b.gf, o1)
	g8, _ := Build(b.data, b.gf, o8)
	q1 := knng.Quality(g1, b.exact, raw)
	q8 := knng.Quality(g8, b.exact, raw)
	if diff := q1 - q8; diff > 0.02 || diff < -0.02 {
		t.Errorf("pipelined quality depends on workers: %.3f vs %.3f", q1, q8)
	}
}
